// Experiment X4: runtime scaling (google-benchmark).
//
// CBTC itself is a distributed algorithm; what scales here is our
// centralized oracle and the simulation substrate. Constant density is
// maintained by growing the region with the node count.
#include <benchmark/benchmark.h>

#include <cmath>

#include "algo/pipeline.h"
#include "baselines/baselines.h"
#include "geom/random_points.h"
#include "geom/spatial_grid.h"
#include "graph/euclidean.h"
#include "proto/runner.h"

namespace {

using namespace cbtc;

constexpr double density_side_for(std::int64_t nodes) {
  // 100 nodes <-> 1500^2 (the paper's density).
  return 1500.0 * std::sqrt(static_cast<double>(nodes) / 100.0);
}

std::vector<geom::vec2> make_positions(std::int64_t nodes) {
  const double side = density_side_for(nodes);
  return geom::uniform_points(static_cast<std::size_t>(nodes), geom::bbox::rect(side, side), 42);
}

const radio::power_model pm(2.0, 500.0);

void BM_CbtcOracle(benchmark::State& state) {
  const auto positions = make_positions(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::run_cbtc(positions, pm, {}));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CbtcOracle)->RangeMultiplier(2)->Range(100, 1600)->Complexity();

void BM_FullPipeline(benchmark::State& state) {
  const auto positions = make_positions(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        algo::build_topology(positions, pm, {}, algo::optimization_set::all()));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullPipeline)->RangeMultiplier(2)->Range(100, 1600)->Complexity();

void BM_MaxPowerGraphGrid(benchmark::State& state) {
  const auto positions = make_positions(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::build_max_power_graph(positions, pm.max_range()));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MaxPowerGraphGrid)->RangeMultiplier(2)->Range(100, 1600)->Complexity();

void BM_MaxPowerGraphBrute(benchmark::State& state) {
  const auto positions = make_positions(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::build_max_power_graph_brute(positions, pm.max_range()));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MaxPowerGraphBrute)->RangeMultiplier(2)->Range(100, 1600)->Complexity();

void BM_SpatialGridBuild(benchmark::State& state) {
  const auto positions = make_positions(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::spatial_grid(positions, pm.max_range()));
  }
}
BENCHMARK(BM_SpatialGridBuild)->RangeMultiplier(4)->Range(100, 6400);

void BM_SpatialGridQuery(benchmark::State& state) {
  const auto positions = make_positions(1600);
  const geom::spatial_grid grid(positions, pm.max_range());
  std::size_t i = 0;
  std::vector<geom::point_index> out;
  for (auto _ : state) {
    out.clear();
    grid.query_radius_into(positions[i++ % positions.size()], pm.max_range(),
                           geom::spatial_grid::npos, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SpatialGridQuery);

void BM_PairwiseRemoval(benchmark::State& state) {
  const auto positions = make_positions(state.range(0));
  const auto closure = algo::run_cbtc(positions, pm, {}).symmetric_closure();
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::apply_pairwise_removal(closure, positions, {}));
  }
}
BENCHMARK(BM_PairwiseRemoval)->RangeMultiplier(2)->Range(100, 800);

void BM_BaselineMst(benchmark::State& state) {
  const auto positions = make_positions(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::euclidean_mst(positions, pm.max_range()));
  }
}
BENCHMARK(BM_BaselineMst)->RangeMultiplier(2)->Range(100, 800);

void BM_DistributedProtocol(benchmark::State& state) {
  const auto positions = make_positions(state.range(0));
  proto::protocol_run_config cfg;
  cfg.agent.round_timeout = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::run_protocol(positions, pm, cfg));
  }
}
BENCHMARK(BM_DistributedProtocol)->RangeMultiplier(2)->Range(50, 200);

}  // namespace

BENCHMARK_MAIN();
