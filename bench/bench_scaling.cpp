// Experiment X4: runtime scaling (google-benchmark).
//
// CBTC itself is a distributed algorithm; what scales here is our
// centralized engine and the simulation substrate. Scenario execution
// goes through the cbtc::api façade (deploy + method + metrics);
// the remaining micro-benchmarks time the geometric substrate the
// engine is built on. Constant density is maintained by growing the
// region with the node count.
#include <benchmark/benchmark.h>

#include <cmath>

#include "api/api.h"
#include "geom/random_points.h"
#include "geom/spatial_grid.h"
#include "graph/euclidean.h"

namespace {

using namespace cbtc;

double density_side_for(std::int64_t nodes) {
  // 100 nodes <-> 1500^2 (the paper's density).
  return 1500.0 * std::sqrt(static_cast<double>(nodes) / 100.0);
}

/// Scenario at the paper's density with `nodes` nodes; metrics off so
/// the engine time is dominated by the algorithm under test.
api::scenario_spec scaling_spec(std::int64_t nodes) {
  api::scenario_spec spec;
  spec.deploy.nodes = static_cast<std::size_t>(nodes);
  spec.deploy.region_side = density_side_for(nodes);
  spec.base_seed = 42;
  spec.metrics = {.stretch = false, .interference = false, .robustness = false};
  return spec;
}

std::vector<geom::vec2> make_positions(std::int64_t nodes) {
  return scaling_spec(nodes).make_positions(0);
}

const radio::power_model pm(2.0, 500.0);
const api::engine eng;

void BM_EngineOracle(benchmark::State& state) {
  const api::scenario_spec spec = scaling_spec(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.run(spec));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EngineOracle)->RangeMultiplier(2)->Range(100, 1600)->Complexity();

void BM_EngineFullPipeline(benchmark::State& state) {
  api::scenario_spec spec = scaling_spec(state.range(0));
  spec.opts = algo::optimization_set::all();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.run(spec));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EngineFullPipeline)->RangeMultiplier(2)->Range(100, 1600)->Complexity();

void BM_EngineProtocol(benchmark::State& state) {
  api::scenario_spec spec = scaling_spec(state.range(0));
  spec.method = api::method_spec::protocol();
  spec.protocol.agent.round_timeout = 0.5;
  spec.protocol.channel.base_delay = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.run(spec));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EngineProtocol)->RangeMultiplier(2)->Range(50, 200)->Complexity();

/// Multi-seed batch throughput: 8 instances of the paper workload per
/// iteration, fanned over state.range(0) threads.
void BM_EngineBatch(benchmark::State& state) {
  api::scenario_spec spec = scaling_spec(100);
  spec.opts = algo::optimization_set::all();
  const auto threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.run_batch(spec, {0, 8}, threads));
  }
}
BENCHMARK(BM_EngineBatch)->Arg(1)->Arg(2)->Arg(4);

void BM_EngineBaselineMst(benchmark::State& state) {
  api::scenario_spec spec = scaling_spec(state.range(0));
  spec.method = api::method_spec::of_baseline(api::baseline_kind::euclidean_mst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.run(spec));
  }
}
BENCHMARK(BM_EngineBaselineMst)->RangeMultiplier(2)->Range(100, 800);

// -- substrate micro-benchmarks (not scenario orchestration) ----------

void BM_MaxPowerGraphGrid(benchmark::State& state) {
  const auto positions = make_positions(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::build_max_power_graph(positions, pm.max_range()));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MaxPowerGraphGrid)->RangeMultiplier(2)->Range(100, 1600)->Complexity();

void BM_MaxPowerGraphBrute(benchmark::State& state) {
  const auto positions = make_positions(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::build_max_power_graph_brute(positions, pm.max_range()));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MaxPowerGraphBrute)->RangeMultiplier(2)->Range(100, 1600)->Complexity();

void BM_SpatialGridBuild(benchmark::State& state) {
  const auto positions = make_positions(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::spatial_grid(positions, pm.max_range()));
  }
}
BENCHMARK(BM_SpatialGridBuild)->RangeMultiplier(4)->Range(100, 6400);

void BM_SpatialGridQuery(benchmark::State& state) {
  const auto positions = make_positions(1600);
  const geom::spatial_grid grid(positions, pm.max_range());
  std::size_t i = 0;
  std::vector<geom::point_index> out;
  for (auto _ : state) {
    out.clear();
    grid.query_radius_into(positions[i++ % positions.size()], pm.max_range(),
                           geom::spatial_grid::npos, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SpatialGridQuery);

}  // namespace

BENCHMARK_MAIN();
