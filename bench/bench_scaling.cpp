// Experiment X4: runtime scaling (google-benchmark).
//
// CBTC itself is a distributed algorithm; what scales here is our
// centralized engine and the simulation substrate. Scenario execution
// goes through the cbtc::api façade (deploy + method + metrics);
// the remaining micro-benchmarks time the geometric substrate the
// engine is built on. Constant density is maintained by growing the
// region with the node count.
// A machine-readable JSON record (google-benchmark's format) is
// written only when asked: pass `--out PATH` (or the standard
// --benchmark_out flags). Runs without an output flag leave no file
// behind.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "algo/gain_removal.h"
#include "algo/oracle.h"
#include "algo/pipeline.h"
#include "algo/stc.h"
#include "api/api.h"
#include "geom/random_points.h"
#include "geom/spatial_grid.h"
#include "graph/digraph.h"
#include "graph/euclidean.h"
#include "graph/live_index.h"
#include "radio/propagation.h"
#include "util/parallel.h"

namespace {

using namespace cbtc;

double density_side_for(std::int64_t nodes) {
  // 100 nodes <-> 1500^2 (the paper's density).
  return 1500.0 * std::sqrt(static_cast<double>(nodes) / 100.0);
}

/// Scenario at the paper's density with `nodes` nodes; metrics off so
/// the engine time is dominated by the algorithm under test.
api::scenario_spec scaling_spec(std::int64_t nodes) {
  api::scenario_spec spec;
  spec.deploy.nodes = static_cast<std::size_t>(nodes);
  spec.deploy.region_side = density_side_for(nodes);
  spec.base_seed = 42;
  spec.metrics = {.stretch = false, .interference = false, .robustness = false};
  return spec;
}

std::vector<geom::vec2> make_positions(std::int64_t nodes) {
  return scaling_spec(nodes).make_positions(0);
}

const radio::power_model pm(2.0, 500.0);
const api::engine eng;

void BM_EngineOracle(benchmark::State& state) {
  const api::scenario_spec spec = scaling_spec(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.run(spec));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EngineOracle)->RangeMultiplier(2)->Range(100, 1600)->Complexity();

void BM_EngineFullPipeline(benchmark::State& state) {
  api::scenario_spec spec = scaling_spec(state.range(0));
  spec.opts = algo::optimization_set::all();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.run(spec));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EngineFullPipeline)->RangeMultiplier(2)->Range(100, 1600)->Complexity();

void BM_EngineProtocol(benchmark::State& state) {
  api::scenario_spec spec = scaling_spec(state.range(0));
  spec.method = api::method_spec::protocol();
  spec.protocol.agent.round_timeout = 0.5;
  spec.protocol.channel.base_delay = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.run(spec));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EngineProtocol)->RangeMultiplier(2)->Range(50, 200)->Complexity();

/// Multi-seed batch throughput: 8 instances of the paper workload per
/// iteration, fanned over state.range(0) threads.
void BM_EngineBatch(benchmark::State& state) {
  api::scenario_spec spec = scaling_spec(100);
  spec.opts = algo::optimization_set::all();
  const auto threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.run_batch(spec, {0, 8}, threads));
  }
}
BENCHMARK(BM_EngineBatch)->Arg(1)->Arg(2)->Arg(4);

/// Executor nesting: a 48-seed batch of 400-node instances with
/// range(0) batch threads x range(1) intra threads, all drawing from
/// the one process-wide pool. The headline row is (4, 4) — before the
/// shared executor that combination stood up 16 competing threads;
/// now it composes (and the report is bitwise identical to (1, 1)).
void BM_EngineBatchNestedThreads(benchmark::State& state) {
  api::scenario_spec spec = scaling_spec(400);
  spec.opts = algo::optimization_set::all();
  spec.cbtc.intra_threads = static_cast<unsigned>(state.range(1));
  const auto threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.run_batch(spec, {0, 48}, threads));
  }
}
BENCHMARK(BM_EngineBatchNestedThreads)
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({1, 4})
    ->Args({4, 4})
    ->Args({8, 8})
    ->Unit(benchmark::kMillisecond);

// -- per-link propagation: isotropic vs shadowed ----------------------

/// The isotropic rows above gate "the propagation layer costs nothing
/// when unused" (they run the exact pre-propagation code path); these
/// rows measure what a non-uniform gain field adds: per-candidate gain
/// hashing in growth, per-link filtering in G_R and the dynamic index.
api::scenario_spec shadowed_scaling_spec(std::int64_t nodes) {
  api::scenario_spec spec = scaling_spec(nodes);
  spec.radio.propagation = {.kind = radio::propagation_kind::lognormal_shadowing,
                            .sigma_db = 4.0,
                            .clamp_db = 8.0};
  return spec;
}

const radio::link_model shadowed_link(pm, radio::propagation_model::lognormal_shadowing(4.0, 8.0,
                                                                                        42));

void BM_EngineOracleShadowed(benchmark::State& state) {
  const api::scenario_spec spec = shadowed_scaling_spec(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.run(spec));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EngineOracleShadowed)->RangeMultiplier(2)->Range(100, 1600)->Complexity();

void BM_MaxPowerGraphGridShadowed(benchmark::State& state) {
  const auto positions = make_positions(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::build_max_power_graph(positions, shadowed_link));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MaxPowerGraphGridShadowed)->RangeMultiplier(2)->Range(100, 1600)->Complexity();

// -- op3 passes: Theorem 3.6 angle witness vs gain-aware link power ---

/// Growth + shrink-back topology and candidate graph per (nodes,
/// shadowed) pair, built once and shared across the op3 rows so the
/// timed region is the removal / STC pass alone.
struct removal_fixture {
  std::vector<geom::vec2> positions;
  graph::undirected_graph topology;
  graph::undirected_graph candidates;
};

const removal_fixture& removal_instance(std::int64_t nodes, bool shadowed) {
  static std::map<std::pair<std::int64_t, bool>, removal_fixture> cache;
  const auto [it, fresh] = cache.try_emplace({nodes, shadowed});
  if (fresh) {
    removal_fixture& f = it->second;
    f.positions = make_positions(nodes);
    const radio::link_model link = shadowed ? shadowed_link : radio::link_model(pm);
    algo::cbtc_params params;
    params.mode = algo::growth_mode::continuous;
    params.intra_threads = 0;
    f.topology = algo::build_topology(f.positions, link, params, {.shrink_back = true}).topology;
    util::thread_pool pool(0);
    f.candidates = graph::build_max_power_graph(f.positions, link, pool);
  }
  return it->second;
}

/// Denominator row for the machine-independent gain-aware/pairwise
/// ratio gate in bench/baseline_scaling.json.
void BM_PairwiseRemoval(benchmark::State& state) {
  const removal_fixture& f = removal_instance(state.range(0), false);
  util::thread_pool pool(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::apply_pairwise_removal(f.topology, f.positions, {}, pool));
  }
}
BENCHMARK(BM_PairwiseRemoval)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_GainAwareRemoval(benchmark::State& state) {
  const removal_fixture& f = removal_instance(state.range(0), false);
  const radio::link_model link(pm);
  util::thread_pool pool(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        algo::apply_gain_aware_removal(f.topology, f.candidates, f.positions, link, {}, pool));
  }
}
BENCHMARK(BM_GainAwareRemoval)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_GainAwareRemovalShadowed(benchmark::State& state) {
  const removal_fixture& f = removal_instance(state.range(0), true);
  util::thread_pool pool(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::apply_gain_aware_removal(f.topology, f.candidates, f.positions,
                                                            shadowed_link, {}, pool));
  }
}
BENCHMARK(BM_GainAwareRemovalShadowed)->Arg(10000)->Unit(benchmark::kMillisecond);

/// Sethu-Gerety STC over the prebuilt shadowed candidate graph.
void BM_StcGrowth(benchmark::State& state) {
  const removal_fixture& f = removal_instance(state.range(0), true);
  util::thread_pool pool(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        algo::build_stc_topology(f.candidates, f.positions, shadowed_link, pool));
  }
}
BENCHMARK(BM_StcGrowth)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_EngineBaselineMst(benchmark::State& state) {
  api::scenario_spec spec = scaling_spec(state.range(0));
  spec.method = api::method_spec::of_baseline(api::baseline_kind::euclidean_mst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.run(spec));
  }
}
BENCHMARK(BM_EngineBaselineMst)->RangeMultiplier(2)->Range(100, 800);

// -- intra-instance parallel growth (serial vs threaded, large n) -----

/// Times the oracle growth loop alone (algo::run_cbtc) on one large
/// instance: range(0) nodes at the paper's density, range(1) intra
/// threads. The 10k x {1, 4} pair is the headline intra-parallel
/// speedup row; results are bitwise identical across the thread axis.
void BM_CbtcGrowthIntraThreads(benchmark::State& state) {
  const auto positions = make_positions(state.range(0));
  algo::cbtc_params params;
  params.mode = algo::growth_mode::continuous;
  params.intra_threads = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::run_cbtc(positions, pm, params));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CbtcGrowthIntraThreads)
    ->ArgsProduct({{10000, 50000}, {1, 2, 4}})
    ->Unit(benchmark::kMillisecond);

/// Full engine run (growth + optimizations + invariants + metrics) on
/// a large instance, serial vs 4 intra threads.
void BM_EngineOracleIntraThreads(benchmark::State& state) {
  api::scenario_spec spec = scaling_spec(state.range(0));
  spec.cbtc.intra_threads = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.run(spec));
  }
}
BENCHMARK(BM_EngineOracleIntraThreads)
    ->ArgsProduct({{10000}, {1, 4}})
    ->Unit(benchmark::kMillisecond);

// -- million-node static pipeline -------------------------------------

/// The growth-construction gate: one full oracle engine run at the
/// paper's density on a hardware-width pool. At these sizes the flat
/// CSR topology, the Morton relabeling pass (on by default above
/// relabel_min_nodes), and the parallel scatter passes all engage —
/// this is the configuration the million-node acceptance row times.
/// One iteration per measurement: the 1M row is seconds-scale, and the
/// machine-independent gate is the 1M/100k *ratio*, not the absolute.
void BM_Growth(benchmark::State& state) {
  api::scenario_spec spec = scaling_spec(state.range(0));
  spec.cbtc.intra_threads = 0;  // hardware width
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.run(spec));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Growth)->Arg(100000)->Arg(1000000)->Iterations(1)->Unit(benchmark::kMillisecond);

/// An asymmetric ~100k-node digraph for the closure rows: max-power
/// adjacency with a deterministic third of the arcs dropped, so the
/// in-neighbor scatter has real work (union of out- and in-lists).
graph::digraph closure_instance(std::int64_t nodes) {
  const auto positions = make_positions(nodes);
  util::thread_pool pool(0);
  const graph::undirected_graph gr = graph::build_max_power_graph(positions, pm.max_range(), pool);
  std::vector<std::vector<graph::node_id>> out(gr.num_nodes());
  for (graph::node_id u = 0; u < gr.num_nodes(); ++u) {
    for (const graph::node_id v : gr.neighbors(u)) {
      if ((u + 2u * v) % 3u != 0u) out[u].push_back(v);
    }
  }
  return graph::digraph::from_adjacency(std::move(out));
}

/// Serial baseline vs the two-pass parallel count/fill scatter for the
/// in-neighbor build inside symmetric_closure. The parallel/serial
/// ratio is the bench gate: the scatter rewrite must never regress
/// below the serial path (ratio stays near or under 1 even on
/// single-core runners, well under on multi-core ones).
void BM_SymmetricClosureSerial(benchmark::State& state) {
  const graph::digraph d = closure_instance(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.symmetric_closure());
  }
}
BENCHMARK(BM_SymmetricClosureSerial)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_SymmetricClosureParallel(benchmark::State& state) {
  const graph::digraph d = closure_instance(state.range(0));
  util::thread_pool pool(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.symmetric_closure(pool));
  }
}
BENCHMARK(BM_SymmetricClosureParallel)->Arg(100000)->Unit(benchmark::kMillisecond);

// -- dynamic sampling: per-tick full rebuild vs incremental index -----

namespace dynamic_tick {

/// One mobility tick: every node advances by its velocity, bouncing at
/// the region boundary — the motion the incremental index absorbs as
/// move() deltas and the rebuild strategy answers by reconstructing
/// G_R from scratch.
struct motion {
  explicit motion(std::int64_t nodes)
      : side(density_side_for(nodes)), positions(make_positions(nodes)) {
    velocities.reserve(positions.size());
    for (std::size_t i = 0; i < positions.size(); ++i) {
      // Deterministic per-node heading; speeds ~ a few units per tick.
      const double a = 0.7 * static_cast<double>(i % 97);
      velocities.push_back({3.0 * std::cos(a), 3.0 * std::sin(a)});
    }
  }

  void step() {
    for (std::size_t i = 0; i < positions.size(); ++i) {
      geom::vec2 p = positions[i] + velocities[i];
      if (p.x < 0.0 || p.x > side) {
        velocities[i].x = -velocities[i].x;
        p.x = std::clamp(p.x, 0.0, side);
      }
      if (p.y < 0.0 || p.y > side) {
        velocities[i].y = -velocities[i].y;
        p.y = std::clamp(p.y, 0.0, side);
      }
      positions[i] = p;
    }
  }

  double side;
  std::vector<geom::vec2> positions;
  std::vector<geom::vec2> velocities;
};

}  // namespace dynamic_tick

void BM_DynamicTickFullRebuild(benchmark::State& state) {
  dynamic_tick::motion m(state.range(0));
  for (auto _ : state) {
    m.step();
    benchmark::DoNotOptimize(graph::build_max_power_graph(m.positions, pm.max_range()));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DynamicTickFullRebuild)
    ->Arg(1000)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_DynamicTickIncrementalIndex(benchmark::State& state) {
  dynamic_tick::motion m(state.range(0));
  graph::live_neighbor_index index(m.positions, pm.max_range());
  for (auto _ : state) {
    m.step();
    for (std::size_t i = 0; i < m.positions.size(); ++i) {
      index.move(static_cast<graph::node_id>(i), m.positions[i]);
    }
    benchmark::DoNotOptimize(index.num_edges());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DynamicTickIncrementalIndex)
    ->Arg(1000)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

/// The same mobility ticks against a gain-aware index: every candidate
/// that enters a node's pruning radius pays one link filter.
void BM_DynamicTickIncrementalIndexShadowed(benchmark::State& state) {
  dynamic_tick::motion m(state.range(0));
  graph::live_neighbor_index index(m.positions, shadowed_link);
  for (auto _ : state) {
    m.step();
    for (std::size_t i = 0; i < m.positions.size(); ++i) {
      index.move(static_cast<graph::node_id>(i), m.positions[i]);
    }
    benchmark::DoNotOptimize(index.num_edges());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DynamicTickIncrementalIndexShadowed)
    ->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

/// Obstacle-field ticks: a gain-row miss costs one segment test per
/// obstacle, so this row gates the per-node gain cache — steady-state
/// ticks must re-filter mostly from cached rows (epoch-invalidated
/// only around the mover) instead of re-walking the obstacle list for
/// every candidate.
radio::link_model obstacle_tick_link(std::int64_t nodes) {
  const double side = density_side_for(nodes);
  std::vector<radio::obstacle> walls;
  for (int i = 0; i < 12; ++i) {
    // A deterministic scatter of long thin walls across the field.
    const double x = side * (0.08 + 0.077 * i);
    const double y = side * (0.13 + 0.061 * (i * 5 % 11));
    const bool horizontal = (i % 2) == 0;
    walls.push_back({.box = {{x, y}, {x + (horizontal ? side * 0.18 : 8.0),
                                      y + (horizontal ? 8.0 : side * 0.18)}},
                     .loss_db = 6.0});
  }
  return {pm, radio::propagation_model::obstacle_field(std::move(walls))};
}

void BM_DynamicTickIncrementalIndexObstacles(benchmark::State& state) {
  dynamic_tick::motion m(state.range(0));
  graph::live_neighbor_index index(m.positions, obstacle_tick_link(state.range(0)));
  for (auto _ : state) {
    m.step();
    for (std::size_t i = 0; i < m.positions.size(); ++i) {
      index.move(static_cast<graph::node_id>(i), m.positions[i]);
    }
    benchmark::DoNotOptimize(index.num_edges());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DynamicTickIncrementalIndexObstacles)
    ->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// -- dynamic runs: mirrored agent tables vs full table capture --------

/// A churn + mobility workload whose connectivity is re-evaluated at
/// every topology-changing event — the path the agent-table mirror
/// accelerates. range(0) nodes; `mirrored` picks the incremental
/// closure_mirror or the legacy full per-evaluation table re-read
/// (reports are bitwise identical either way; tests assert it).
void run_dynamic_capture(benchmark::State& state, bool mirrored) {
  api::scenario_spec spec = scaling_spec(state.range(0));
  spec.method = api::method_spec::protocol();
  spec.protocol.agent.round_timeout = 0.5;
  spec.protocol.channel.base_delay = 0.01;
  api::sim_spec dyn;
  dyn.horizon = 40.0;
  dyn.settle = 12.0;
  dyn.sample_every = 4.0;
  dyn.mobility = {.kind = api::mobility_kind::random_waypoint,
                  .min_speed = 2.0,
                  .max_speed = 8.0,
                  .tick = 0.5,
                  .start = 12.0};
  dyn.failures.random_crashes = state.range(0) / 20;
  dyn.failures.window_begin = 14.0;
  dyn.failures.window_end = 30.0;
  dyn.mirror_agent_tables = mirrored;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.run_dynamic(spec, dyn, 0));
  }
  state.SetComplexityN(state.range(0));
}

void BM_DynamicCaptureMirror(benchmark::State& state) { run_dynamic_capture(state, true); }
void BM_DynamicCaptureFull(benchmark::State& state) { run_dynamic_capture(state, false); }
BENCHMARK(BM_DynamicCaptureMirror)->Arg(150)->Arg(600)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DynamicCaptureFull)->Arg(150)->Arg(600)->Unit(benchmark::kMillisecond);

// -- convergecast data plane: traffic on vs off -----------------------

/// The registered convergecast preset (64-node lattice streaming
/// periodic readings to a corner sink) with and without the traffic
/// layer. The Base row runs the identical dynamic simulation minus
/// traffic, so the machine-independent gate is the Tick/Base *ratio*:
/// the packet layer (routing refreshes, queueing, per-hop forwarding)
/// must stay a bounded fraction on top of the protocol simulation, not
/// dominate it.
void run_convergecast(benchmark::State& state, bool traffic_on) {
  api::dynamic_scenario preset = api::get_dynamic_scenario("convergecast_grid");
  preset.scenario.deploy.nodes = static_cast<std::size_t>(state.range(0));
  if (!traffic_on) preset.sim.traffic = {};
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.run_dynamic(preset.scenario, preset.sim, 0));
  }
}

void BM_ConvergecastTick(benchmark::State& state) { run_convergecast(state, true); }
void BM_ConvergecastBase(benchmark::State& state) { run_convergecast(state, false); }
BENCHMARK(BM_ConvergecastTick)->Arg(64)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ConvergecastBase)->Arg(64)->Unit(benchmark::kMillisecond);

// -- partitioned dynamic engine: single queue vs regioned lanes -------

/// The 100k-node mobile-churn acceptance row for the spatially
/// partitioned event engine: a full dynamic run (protocol build-out,
/// NDP beaconing, waypoint mobility, crashes) on one queue versus 16
/// regions x 4 intra threads. Reports are bitwise identical (tests
/// assert it); the machine-independent gate is the partitioned/serial
/// *ratio*, which must show a real speedup, not parity. One iteration
/// per measurement — the rows are seconds-scale.
void run_dynamic_partitioned(benchmark::State& state, std::uint32_t regions, unsigned threads) {
  api::scenario_spec spec = scaling_spec(state.range(0));
  spec.method = api::method_spec::protocol();
  spec.protocol.agent.round_timeout = 0.5;
  spec.protocol.channel.base_delay = 0.01;
  spec.cbtc.intra_threads = threads;
  api::sim_spec dyn;
  dyn.horizon = 6.0;
  dyn.settle = 3.0;
  dyn.sample_every = 1.5;
  dyn.mobility = {.kind = api::mobility_kind::random_waypoint,
                  .min_speed = 2.0,
                  .max_speed = 8.0,
                  .tick = 0.5,
                  .start = 3.0};
  dyn.failures.random_crashes = state.range(0) / 100;
  dyn.failures.window_begin = 3.5;
  dyn.failures.window_end = 5.5;
  dyn.partition.regions = regions;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.run_dynamic(spec, dyn, 0));
  }
  state.SetComplexityN(state.range(0));
}

void BM_DynamicTickSerial(benchmark::State& state) { run_dynamic_partitioned(state, 1, 1); }
void BM_DynamicTickPartitioned(benchmark::State& state) {
  run_dynamic_partitioned(state, 16, 4);
}
BENCHMARK(BM_DynamicTickSerial)->Arg(100000)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DynamicTickPartitioned)->Arg(100000)->Iterations(1)->Unit(benchmark::kMillisecond);

// -- substrate micro-benchmarks (not scenario orchestration) ----------

void BM_MaxPowerGraphGrid(benchmark::State& state) {
  const auto positions = make_positions(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::build_max_power_graph(positions, pm.max_range()));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MaxPowerGraphGrid)->RangeMultiplier(2)->Range(100, 1600)->Complexity();

void BM_MaxPowerGraphBrute(benchmark::State& state) {
  const auto positions = make_positions(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::build_max_power_graph_brute(positions, pm.max_range()));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MaxPowerGraphBrute)->RangeMultiplier(2)->Range(100, 1600)->Complexity();

void BM_SpatialGridBuild(benchmark::State& state) {
  const auto positions = make_positions(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::spatial_grid(positions, pm.max_range()));
  }
}
BENCHMARK(BM_SpatialGridBuild)->RangeMultiplier(4)->Range(100, 6400);

void BM_SpatialGridQuery(benchmark::State& state) {
  const auto positions = make_positions(1600);
  const geom::spatial_grid grid(positions, pm.max_range());
  std::size_t i = 0;
  std::vector<geom::point_index> out;
  for (auto _ : state) {
    out.clear();
    grid.query_radius_into(positions[i++ % positions.size()], pm.max_range(),
                           geom::spatial_grid::npos, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SpatialGridQuery);

}  // namespace

/// BENCHMARK_MAIN with one addition: an explicit `--out PATH` (or
/// `--out=PATH`) flag for the JSON record — shorthand for
/// --benchmark_out=PATH --benchmark_out_format=json, so callers like
/// CI never depend on the process cwd. Without an output flag the run
/// writes no file (no more stray BENCH_scaling.json in the cwd).
int main(int argc, char** argv) {
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 2);
  std::string out_path;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (i > 0 && std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  std::string out_flag = "--benchmark_out=" + out_path;
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!out_path.empty()) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
