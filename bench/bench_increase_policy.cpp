// Experiment X1: the Increase() ablation.
//
// The paper (Section 2): "we do not investigate how to choose the
// initial power p0, nor ... how to increase the power at each step. We
// simply assume some function Increase ... an obvious choice is to take
// Increase(p) = 2p." This bench quantifies the tradeoff the paper
// leaves open: aggressive growth converges in fewer broadcast rounds
// but overshoots the minimal power (up to the growth factor), while
// fine-grained growth spends more rounds (and hence more messages and
// growth-phase energy) to land nearer the optimum. Each configuration
// is a scenario_spec run through engine::run; the per-node growth
// trace comes back in run_report::growth.
//
// It also measures the paper's Section 5 remark that CBTC(5pi/6)
// terminates sooner than CBTC(2pi/3) and so expends less power during
// execution.
//
// Usage: bench_increase_policy [networks]
#include <iostream>
#include <string>
#include <vector>

#include "api/api.h"
#include "exp/stats.h"
#include "exp/table.h"

int main(int argc, char** argv) {
  using namespace cbtc;
  const std::size_t networks = argc > 1 ? std::stoul(argv[1]) : 25;

  api::scenario_spec base;  // the paper's Section 5 workload, bare growth
  base.deploy = {.kind = api::deployment_kind::uniform, .nodes = 100, .region_side = 1500.0};
  base.base_seed = 20010601 + 4000;
  base.metrics = {.stretch = false, .interference = false, .robustness = false};

  struct policy {
    std::string name;
    algo::growth_mode mode;
    double factor;
  };
  const std::vector<policy> policies{
      {"Increase(p) = 1.5p", algo::growth_mode::discrete, 1.5},
      {"Increase(p) = 2p (paper)", algo::growth_mode::discrete, 2.0},
      {"Increase(p) = 4p", algo::growth_mode::discrete, 4.0},
      {"continuous (ideal)", algo::growth_mode::continuous, 2.0},
  };

  const api::engine eng;
  for (double alpha : {algo::alpha_five_pi_six, algo::alpha_two_pi_three}) {
    std::cout << "alpha = " << (alpha > 2.5 ? "5*pi/6" : "2*pi/3") << ", " << networks
              << " networks\n";
    exp::table out({"policy", "rounds/node", "growth energy/node", "final power/node",
                    "overshoot vs ideal", "avg degree (E_alpha)"});

    // Ideal (continuous) final power per alpha, for the overshoot column.
    exp::summary ideal_power;
    {
      api::scenario_spec spec = base;
      spec.cbtc.alpha = alpha;
      spec.cbtc.mode = algo::growth_mode::continuous;
      for (std::size_t net = 0; net < networks; ++net) {
        const api::run_report r = eng.run(spec, net);
        for (const auto& n : r.growth.nodes) ideal_power.add(n.final_power);
      }
    }

    for (const policy& p : policies) {
      api::scenario_spec spec = base;
      spec.cbtc.alpha = alpha;
      spec.cbtc.mode = p.mode;
      spec.cbtc.increase_factor = p.factor;
      exp::summary rounds, energy, final_power, degree;
      for (std::size_t net = 0; net < networks; ++net) {
        const api::run_report r = eng.run(spec, net);
        double net_rounds = 0.0, net_energy = 0.0, net_power = 0.0;
        for (const auto& n : r.growth.nodes) {
          net_rounds += static_cast<double>(n.level_powers.size());
          for (double lp : n.level_powers) net_energy += lp;  // one broadcast per level
          net_power += n.final_power;
        }
        const double nn = static_cast<double>(r.growth.num_nodes());
        rounds.add(net_rounds / nn);
        energy.add(net_energy / nn);
        final_power.add(net_power / nn);
        degree.add(r.avg_degree);
      }
      out.add_row({p.name, exp::table::num(rounds.mean(), 2), exp::table::num(energy.mean(), 0),
                   exp::table::num(final_power.mean(), 0),
                   exp::table::num(final_power.mean() / ideal_power.mean(), 3),
                   exp::table::num(degree.mean(), 1)});
    }
    out.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Note: the continuous row is the idealized reference; its rounds/energy count\n"
            << "one (infinitesimal) step per admitted neighbor, not real broadcasts.\n\n";
  std::cout << "Reading: larger factors converge in fewer rounds but overshoot the minimal\n"
            << "power; wide cones (5*pi/6) terminate sooner than narrow ones (2*pi/3), the\n"
            << "paper's argument for preferring 5*pi/6 when reconfiguration is frequent.\n";
  return 0;
}
