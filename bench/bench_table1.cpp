// Reproduces Table 1 of the paper:
//
//   "Average degree and radius of the cone-based topology control
//    algorithm with different alpha and optimizations
//    (op1 - shrink-back, op2 - asymmetric edge removal,
//     op3 - pairwise edge removal)."
//
// Workload (Section 5): 100 random networks, 100 nodes each, uniform in
// a 1500 x 1500 region, maximum transmission radius 500 — the
// `paper_table1` scenario of the cbtc::api registry. Metrics are
// averaged over nodes, then over networks; every row is one scenario
// variation run as a multi-seed batch through the parallel engine.
//
// Growth mode: continuous (idealized growth, power grows to exactly the
// next undiscovered neighbor). This reproduces the paper's basic-row
// numbers almost exactly (12.3/436.8 and 15.4/457.4), which indicates
// the authors' simulator modeled idealized growth rather than the
// Increase(p) = 2p schedule of Figure 1. Pass --discrete to measure the
// deployable doubling schedule instead (degrees rise by ~2 from the
// overshoot; see EXPERIMENTS.md).
//
// Usage: bench_table1 [networks] [csv_path] [--discrete] [--threads N]
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/api.h"
#include "exp/table.h"

namespace {

using namespace cbtc;

struct row_config {
  std::string name;
  double paper_degree;
  double paper_radius;
  double alpha;  // 0 = max power (no topology control)
  algo::optimization_set opts;
};

}  // namespace

int main(int argc, char** argv) {
  algo::growth_mode mode = algo::growth_mode::continuous;
  unsigned threads = 0;  // 0 = hardware concurrency
  std::uint64_t networks = 100;
  std::string csv_path = "table1.csv";
  try {
    std::vector<std::string> args(argv + 1, argv + argc);
    for (std::size_t i = 0; i < args.size();) {
      if (args[i] == "--discrete") {
        mode = algo::growth_mode::discrete;
        args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      } else if (args[i] == "--threads") {
        if (i + 1 >= args.size()) throw std::invalid_argument("--threads needs a value");
        threads = static_cast<unsigned>(std::stoul(args[i + 1]));
        args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                   args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      } else {
        ++i;
      }
    }
    if (!args.empty()) networks = std::stoul(args[0]);
    if (args.size() > 1) csv_path = args[1];
  } catch (const std::exception&) {
    std::cerr << "usage: bench_table1 [networks] [csv_path] [--discrete] [--threads N]\n";
    return 2;
  }

  // The paper's workload, shared by every row; rows vary alpha + opts.
  api::scenario_spec base = api::get_scenario("paper_table1");
  base.cbtc.mode = mode;
  base.metrics = {.stretch = false, .interference = false, .robustness = false};

  const double a56 = algo::alpha_five_pi_six;
  const double a23 = algo::alpha_two_pi_three;
  using opt = algo::optimization_set;
  const opt none{};
  const opt op1{.shrink_back = true};
  const opt op12{.shrink_back = true, .asymmetric_removal = true};
  const opt all = opt::all();

  // Paper values from Table 1 (degree, radius).
  std::vector<row_config> configs{
      {"basic a=5pi/6", 12.3, 436.8, a56, none},
      {"basic a=2pi/3", 15.4, 457.4, a23, none},
      {"op1 a=5pi/6", 10.3, 373.7, a56, op1},
      {"op1 a=2pi/3", 12.8, 398.1, a23, op1},
      {"op1+op2 a=2pi/3", 7.0, 276.8, a23, op12},
      {"all op a=5pi/6", 3.6, 155.9, a56, all},
      {"all op a=2pi/3", 3.6, 160.6, a23, all},
      {"max power", 25.6, 500.0, 0.0, none},
  };
  // Bonus row from the Section 5 text: basic + op2 radius 301.2.
  configs.push_back({"basic+op2 a=2pi/3 (text)", -1.0, 301.2, a23,
                     opt{.asymmetric_removal = true}});

  const api::engine eng;
  const api::seed_range seeds{0, networks};
  std::vector<api::batch_report> cells;
  cells.reserve(configs.size());
  std::size_t connectivity_failures = 0;

  for (const row_config& cfg : configs) {
    api::scenario_spec spec = base;
    if (cfg.alpha == 0.0) {  // max power: nominal radius R, as in the paper
      spec.method = api::method_spec::of_baseline(api::baseline_kind::max_power);
    } else {
      spec.cbtc.alpha = cfg.alpha;
      spec.opts = cfg.opts;
    }
    cells.push_back(eng.run_batch(spec, seeds, threads));
    connectivity_failures += cells.back().connectivity_failures;
  }

  std::cout << "Table 1 reproduction: " << networks << " networks x " << base.deploy.nodes
            << " nodes, region " << base.deploy.region_side << "^2, R = " << base.radio.max_range
            << ", growth: "
            << (mode == algo::growth_mode::continuous ? "continuous (paper-matching)"
                                                      : "discrete Increase(p)=2p")
            << "\n(paper values from Li et al., PODC 2001, Table 1)\n\n";

  exp::table out({"configuration", "degree (paper)", "degree (ours)", "radius (paper)",
                  "radius (ours)", "radius stddev"});
  for (std::size_t c = 0; c < configs.size(); ++c) {
    out.add_row({configs[c].name,
                 configs[c].paper_degree < 0 ? "-" : exp::table::num(configs[c].paper_degree),
                 exp::table::num(cells[c].degree.mean()),
                 exp::table::num(configs[c].paper_radius),
                 exp::table::num(cells[c].radius.mean()),
                 exp::table::num(cells[c].radius.stddev())});
  }
  out.print(std::cout);

  std::cout << "\nconnectivity preserved in all runs: "
            << (connectivity_failures == 0 ? "yes" : "NO -- " +
                    std::to_string(connectivity_failures) + " failures")
            << "\n";

  std::ofstream csv(csv_path);
  csv << "configuration,degree_paper,degree_ours,radius_paper,radius_ours,radius_std\n";
  for (std::size_t c = 0; c < configs.size(); ++c) {
    csv << configs[c].name << ',' << configs[c].paper_degree << ',' << cells[c].degree.mean()
        << ',' << configs[c].paper_radius << ',' << cells[c].radius.mean() << ','
        << cells[c].radius.stddev() << '\n';
  }
  std::cout << "wrote " << csv_path << "\n";
  return connectivity_failures == 0 ? 0 : 1;
}
