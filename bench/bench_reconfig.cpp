// Experiment X5: reconfiguration cost under churn (Section 4).
//
// Runs the full message-level protocol (CBTC growing phase + NDP
// beaconing + reconfiguration rules) while crashing nodes and moving
// nodes, and reports message/energy cost and whether the surviving
// topology still preserves the connectivity of the surviving G_R.
// Everything runs through the cbtc::api façade: each row is one
// scenario_spec + sim_spec pair handed to engine::run_dynamic.
//
// Usage: bench_reconfig [nodes] [horizon]
#include <iostream>
#include <string>
#include <vector>

#include "api/api.h"
#include "exp/table.h"

int main(int argc, char** argv) {
  using namespace cbtc;
  const std::size_t nodes = argc > 1 ? std::stoul(argv[1]) : 40;
  const double horizon = argc > 2 ? std::stod(argv[2]) : 120.0;

  api::scenario_spec spec;
  spec.deploy = {.kind = api::deployment_kind::uniform, .nodes = nodes, .region_side = 1200.0};
  spec.base_seed = 97531;
  spec.protocol.agent.round_timeout = 0.2;

  api::sim_spec dyn;
  dyn.settle = 15.0;
  dyn.horizon = horizon;
  dyn.sample_every = 5.0;
  dyn.beacons = {.interval = 1.0, .miss_limit = 3};

  struct scenario {
    std::string name;
    std::size_t crashes;
    double speed;
  };
  const std::vector<scenario> scenarios{
      {"static, no churn", 0, 0.0},
      {"crash 10% of nodes", nodes / 10, 0.0},
      {"crash 25% of nodes", nodes / 4, 0.0},
      {"slow mobility (3 u/t)", 0, 3.0},
      {"fast mobility (10 u/t)", 0, 10.0},
      {"crashes + mobility", nodes / 10, 3.0},
  };

  std::cout << "Reconfiguration under churn: " << nodes << " nodes, 1200^2 region, R = 500, "
            << horizon << " time units, beacons every " << dyn.beacons.interval << "\n\n";

  const api::engine eng;
  exp::table out({"scenario", "connectivity", "broadcasts", "unicasts", "tx energy", "leaves",
                  "aChanges", "regrows", "repair (max)"});
  for (const scenario& s : scenarios) {
    api::sim_spec d = dyn;
    d.failures = {.random_crashes = s.crashes, .window_begin = 16.0, .window_end = 20.0};
    if (s.speed > 0.0) {
      d.mobility = {.kind = api::mobility_kind::random_waypoint,
                    .min_speed = s.speed / 2.0,
                    .max_speed = s.speed,
                    .pause = 0.0,
                    .tick = 0.5,
                    .start = dyn.settle,
                    .until = horizon / 2.0};
    }
    const api::dynamic_report r = eng.run_dynamic(spec, d);
    out.add_row({s.name, r.final_connectivity_ok ? "preserved" : "BROKEN",
                 std::to_string(r.channel.broadcasts), std::to_string(r.channel.unicasts),
                 exp::table::num(r.channel.tx_energy, 0), std::to_string(r.leaves),
                 std::to_string(r.achanges), std::to_string(r.regrows),
                 exp::table::num(r.repair_latency_max, 1)});
  }
  out.print(std::cout);

  std::cout << "\nReading: beacons dominate message cost; leave/aChange events trigger\n"
            << "localized regrows rather than global re-runs (Section 4's design goal).\n";
  return 0;
}
