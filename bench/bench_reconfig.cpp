// Experiment X5: reconfiguration cost under churn (Section 4).
//
// Runs the full message-level protocol (CBTC growing phase + NDP
// beaconing + reconfiguration rules) while crashing nodes and moving
// nodes, and reports message/energy cost and whether the surviving
// topology still preserves the connectivity of the surviving G_R.
//
// Usage: bench_reconfig [nodes]
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "exp/table.h"
#include "exp/workload.h"
#include "geom/random_points.h"
#include "graph/euclidean.h"
#include "graph/traversal.h"
#include "proto/reconfig.h"
#include "sim/failure.h"
#include "sim/mobility.h"

namespace {

using namespace cbtc;

struct scenario_result {
  bool connectivity_ok{false};
  std::uint64_t broadcasts{0};
  std::uint64_t unicasts{0};
  double tx_energy{0.0};
  std::uint64_t regrows{0};
  std::uint64_t leaves{0};
  std::uint64_t achanges{0};
};

scenario_result run_scenario(std::size_t nodes, std::size_t crashes, double mobility_speed,
                             std::uint64_t seed) {
  const radio::power_model pm(2.0, 500.0);
  const geom::bbox region = geom::bbox::rect(1200.0, 1200.0);
  const auto positions = geom::uniform_points(nodes, region, seed);

  sim::simulator simulator;
  sim::medium medium(simulator, pm);
  std::vector<std::unique_ptr<proto::reconfig_agent>> agents;

  proto::reconfig_config cfg;
  cfg.agent.round_timeout = 0.2;
  cfg.ndp.beacon_interval = 1.0;
  cfg.ndp.miss_limit = 3;
  for (const auto& p : positions) {
    const auto id = medium.add_node(p, {});
    agents.push_back(std::make_unique<proto::reconfig_agent>(medium, id, cfg));
  }
  const double horizon = 120.0;
  for (auto& a : agents) a->start(horizon);
  simulator.run_until(15.0);  // initial topology settles

  sim::failure_injector injector(medium, seed ^ 0xdead);
  if (crashes > 0) injector.random_crashes(crashes, 16.0, 20.0);
  if (mobility_speed > 0.0) {
    static std::vector<std::unique_ptr<sim::random_waypoint>> keep_alive;
    keep_alive.push_back(std::make_unique<sim::random_waypoint>(
        medium,
        sim::waypoint_params{.region = region, .min_speed = mobility_speed / 2.0,
                             .max_speed = mobility_speed, .pause = 0.0},
        seed ^ 0xbeef));
    keep_alive.back()->start(0.5, 60.0);
  }
  simulator.run_until(horizon);

  // Surviving topology vs surviving G_R.
  graph::undirected_graph topo(nodes);
  for (graph::node_id u = 0; u < nodes; ++u) {
    if (!medium.is_up(u)) continue;
    for (const auto& [v, info] : agents[u]->cbtc().neighbors()) {
      if (medium.is_up(v)) topo.add_edge(u, v);
    }
  }
  const auto full_gr = graph::build_max_power_graph(medium.positions(), pm.max_range());
  std::vector<bool> up(nodes);
  for (graph::node_id u = 0; u < nodes; ++u) up[u] = medium.is_up(u);
  const graph::undirected_graph live_gr = full_gr.induced(up);

  scenario_result res;
  res.connectivity_ok = graph::same_connectivity(topo, live_gr);
  res.broadcasts = medium.stats().broadcasts;
  res.unicasts = medium.stats().unicasts;
  res.tx_energy = medium.stats().tx_energy;
  for (const auto& a : agents) {
    res.regrows += a->stats().regrows;
    res.leaves += a->stats().leaves;
    res.achanges += a->stats().achanges;
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t nodes = argc > 1 ? std::stoul(argv[1]) : 40;

  struct scenario {
    std::string name;
    std::size_t crashes;
    double speed;
  };
  const std::vector<scenario> scenarios{
      {"static, no churn", 0, 0.0},
      {"crash 10% of nodes", nodes / 10, 0.0},
      {"crash 25% of nodes", nodes / 4, 0.0},
      {"slow mobility (3 u/t)", 0, 3.0},
      {"fast mobility (10 u/t)", 0, 10.0},
      {"crashes + mobility", nodes / 10, 3.0},
  };

  std::cout << "Reconfiguration under churn: " << nodes
            << " nodes, 1200^2 region, R = 500, 120 time units, beacons every 1.0\n\n";

  exp::table out({"scenario", "connectivity", "broadcasts", "unicasts", "tx energy",
                  "leaves", "aChanges", "regrows"});
  for (const scenario& s : scenarios) {
    const scenario_result r = run_scenario(nodes, s.crashes, s.speed, 97531);
    out.add_row({s.name, r.connectivity_ok ? "preserved" : "BROKEN",
                 std::to_string(r.broadcasts), std::to_string(r.unicasts),
                 exp::table::num(r.tx_energy, 0), std::to_string(r.leaves),
                 std::to_string(r.achanges), std::to_string(r.regrows)});
  }
  out.print(std::cout);

  std::cout << "\nReading: beacons dominate message cost; leave/aChange events trigger\n"
            << "localized regrows rather than global re-runs (Section 4's design goal).\n";
  return 0;
}
