// Experiment X6: network lifetime under battery drain.
//
// The paper's Discussion (Section 6) argues that reducing transmission
// power tends to increase network lifetime, with the caveat that
// minimum-energy relaying can create hot spots. This bench makes the
// effect measurable through engine::run_lifetime: every node gets the
// same battery; each round every node beacons at its topology radius
// power and `flows` random source->sink messages are routed hop-by-hop
// along the topology, draining p(d) per transmitting relay; a node
// dies when its battery empties.
//
// Lifetime metrics (pure attrition — a live deployment would keep
// reconfiguring its topology as nodes die, so what matters is how long
// the node population itself lasts):
//   - rounds until the first death,
//   - rounds until 25% of nodes are dead,
//   - rounds until the *survivors' max-power graph* partitions (after
//     that, no topology control could reconnect the field).
//
// Usage: bench_lifetime [networks] [max_rounds]
#include <iostream>
#include <string>
#include <vector>

#include "api/api.h"
#include "exp/stats.h"
#include "exp/table.h"

int main(int argc, char** argv) {
  using namespace cbtc;
  const std::size_t networks = argc > 1 ? std::stoul(argv[1]) : 10;
  const std::size_t max_rounds = argc > 2 ? std::stoul(argv[2]) : 20000;

  api::scenario_spec base;  // the paper's Section 5 workload
  base.deploy = {.kind = api::deployment_kind::uniform, .nodes = 100, .region_side = 1500.0};
  base.base_seed = 20010601 + 5000;
  base.cbtc.mode = algo::growth_mode::continuous;

  const api::lifetime_spec life{.battery_rounds = 40.0, .flows = 30, .max_rounds = max_rounds};

  struct config {
    std::string name;
    api::method_spec method;
    algo::optimization_set opts;
  };
  const std::vector<config> configs{
      {"max power (G_R)", api::method_spec::of_baseline(api::baseline_kind::max_power), {}},
      {"CBTC basic a=5pi/6", api::method_spec::oracle(), {}},
      {"CBTC all-op a=5pi/6", api::method_spec::oracle(), algo::optimization_set::all()},
      {"Euclidean MST", api::method_spec::of_baseline(api::baseline_kind::euclidean_mst), {}},
  };

  std::cout << "Network lifetime: battery = " << life.battery_rounds << " max-power broadcasts, "
            << life.flows << " flows/round, " << networks << " networks x " << base.deploy.nodes
            << " nodes\n\n";

  const api::engine eng;
  exp::table out({"topology", "rounds to first death", "rounds to 25% dead",
                  "rounds to field partition", "lifetime vs max power"});
  double baseline_partition = 0.0;
  for (const config& cfg : configs) {
    api::scenario_spec spec = base;
    spec.method = cfg.method;
    spec.opts = cfg.opts;
    exp::summary first_death, quarter, partition;
    for (std::size_t net = 0; net < networks; ++net) {
      const api::lifetime_report r = eng.run_lifetime(spec, life, net);
      first_death.add(r.first_death);
      quarter.add(r.quarter_dead);
      partition.add(r.field_partition);
    }
    if (baseline_partition == 0.0) baseline_partition = partition.mean();
    out.add_row({cfg.name, exp::table::num(first_death.mean(), 0),
                 exp::table::num(quarter.mean(), 0), exp::table::num(partition.mean(), 0),
                 exp::table::num(partition.mean() / baseline_partition, 1) + "x"});
  }
  out.print(std::cout);

  std::cout << "\nReading: lower per-node radii stretch the same battery over many more\n"
            << "rounds; the field (survivors' max-power graph) stays whole far longer\n"
            << "under CBTC than under no topology control.\n";
  return 0;
}
