// Experiment X6: network lifetime under battery drain.
//
// The paper's Discussion (Section 6) argues that reducing transmission
// power tends to increase network lifetime, with the caveat that
// minimum-energy relaying can create hot spots. This bench makes the
// effect measurable:
//
//   - every node gets the same battery;
//   - each round, every node beacons at its topology radius power and
//     `flows` random source->sink messages are routed hop-by-hop along
//     the topology, draining p(d) per hop from each transmitting relay;
//   - a node dies when its battery empties.
//
// Lifetime metrics (pure attrition — a live deployment would keep
// reconfiguring its topology as nodes die, so what matters is how long
// the node population itself lasts):
//   - rounds until the first death,
//   - rounds until 25% of nodes are dead,
//   - rounds until the *survivors' max-power graph* partitions (after
//     that, no topology control could reconnect the field).
//
// Usage: bench_lifetime [networks]
#include <cmath>
#include <functional>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "algo/pipeline.h"
#include "baselines/baselines.h"
#include "exp/stats.h"
#include "exp/table.h"
#include "exp/workload.h"
#include "graph/euclidean.h"
#include "graph/metrics.h"
#include "graph/shortest_path.h"
#include "graph/traversal.h"

namespace {

using namespace cbtc;

struct lifetime_result {
  double first_death{0.0};
  double quarter_dead{0.0};
  double field_partition{0.0};
};

bool alive_subgraph_connected(const graph::undirected_graph& g, const std::vector<bool>& alive) {
  graph::undirected_graph live(g.num_nodes());
  graph::node_id first_alive = graph::invalid_node;
  std::size_t alive_count = 0;
  for (graph::node_id u = 0; u < g.num_nodes(); ++u) {
    if (alive[u]) {
      ++alive_count;
      if (first_alive == graph::invalid_node) first_alive = u;
    }
  }
  if (alive_count <= 1) return true;
  for (const graph::edge& e : g.edges()) {
    if (alive[e.u] && alive[e.v]) live.add_edge(e.u, e.v);
  }
  const auto comps = graph::connected_components(live);
  for (graph::node_id u = 0; u < g.num_nodes(); ++u) {
    if (alive[u] && !comps.same_component(u, first_alive)) return false;
  }
  return true;
}

lifetime_result simulate_lifetime(const graph::undirected_graph& topology,
                                  const graph::undirected_graph& gr,
                                  const std::vector<geom::vec2>& positions, double exponent,
                                  double battery, std::size_t flows, std::uint64_t seed,
                                  std::size_t max_rounds) {
  const std::size_t n = positions.size();
  std::vector<double> charge(n, battery);
  std::vector<bool> alive(n, true);
  std::mt19937_64 rng(seed);

  std::vector<double> beacon(n, 0.0);
  for (graph::node_id u = 0; u < n; ++u) {
    beacon[u] = std::pow(graph::node_radius(topology, positions, u, 0.0), exponent);
  }
  const graph::edge_cost_fn cost = graph::power_cost(positions, exponent);

  lifetime_result res;
  std::size_t deaths = 0;
  graph::undirected_graph live = topology;
  for (std::size_t round = 1; round <= max_rounds; ++round) {
    for (graph::node_id u = 0; u < n; ++u) {
      if (alive[u]) charge[u] -= beacon[u];
    }
    for (std::size_t f = 0; f < flows; ++f) {
      const auto s = static_cast<graph::node_id>(rng() % n);
      const auto t = static_cast<graph::node_id>(rng() % n);
      if (s == t || !alive[s] || !alive[t]) continue;
      const auto path = graph::bfs_path(live, s, t);
      for (std::size_t h = 0; h + 1 < path.size(); ++h) {
        charge[path[h]] -= cost(path[h], path[h + 1]);
      }
    }
    bool someone_died = false;
    for (graph::node_id u = 0; u < n; ++u) {
      if (alive[u] && charge[u] <= 0.0) {
        alive[u] = false;
        someone_died = true;
        ++deaths;
        if (res.first_death == 0.0) res.first_death = static_cast<double>(round);
        // Remove the dead node's edges from the routing topology.
        const std::vector<graph::node_id> nbrs(live.neighbors(u).begin(),
                                               live.neighbors(u).end());
        for (graph::node_id v : nbrs) live.remove_edge(u, v);
      }
    }
    if (res.quarter_dead == 0.0 && deaths * 4 >= n) {
      res.quarter_dead = static_cast<double>(round);
    }
    if (someone_died && !alive_subgraph_connected(gr, alive)) {
      res.field_partition = static_cast<double>(round);
      break;
    }
  }
  const auto cap = static_cast<double>(max_rounds);
  if (res.first_death == 0.0) res.first_death = cap;
  if (res.quarter_dead == 0.0) res.quarter_dead = cap;
  if (res.field_partition == 0.0) res.field_partition = cap;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t networks = argc > 1 ? std::stoul(argv[1]) : 10;

  exp::workload_params w = exp::paper_workload();
  const radio::power_model pm = exp::workload_power(w);
  const double battery = 40.0 * pm.max_power();  // ~40 max-power rounds
  const std::size_t flows = 30;
  const std::size_t max_rounds = 20000;

  struct config {
    std::string name;
    std::function<graph::undirected_graph(const std::vector<geom::vec2>&)> build;
  };
  const double R = w.max_range;
  const std::vector<config> configs{
      {"max power (G_R)",
       [R](const std::vector<geom::vec2>& p) { return graph::build_max_power_graph(p, R); }},
      {"CBTC basic a=5pi/6",
       [&pm](const std::vector<geom::vec2>& p) {
         algo::cbtc_params params;
         params.mode = algo::growth_mode::continuous;
         return algo::build_topology(p, pm, params, {}).topology;
       }},
      {"CBTC all-op a=5pi/6",
       [&pm](const std::vector<geom::vec2>& p) {
         algo::cbtc_params params;
         params.mode = algo::growth_mode::continuous;
         return algo::build_topology(p, pm, params, algo::optimization_set::all()).topology;
       }},
      {"Euclidean MST",
       [R](const std::vector<geom::vec2>& p) { return baselines::euclidean_mst(p, R); }},
  };

  std::cout << "Network lifetime: battery = 40 max-power broadcasts, " << flows
            << " flows/round, " << networks << " networks x " << w.nodes << " nodes\n\n";

  exp::table out({"topology", "rounds to first death", "rounds to 25% dead",
                  "rounds to field partition", "lifetime vs max power"});
  double baseline_partition = 0.0;
  for (const config& cfg : configs) {
    exp::summary first_death, quarter, partition;
    for (std::size_t net = 0; net < networks; ++net) {
      const auto positions = exp::network_positions(w, 5000 + net);
      const auto gr = graph::build_max_power_graph(positions, R);
      const auto topo = cfg.build(positions);
      const lifetime_result r = simulate_lifetime(topo, gr, positions, pm.exponent(), battery,
                                                  flows, 777 + net, max_rounds);
      first_death.add(r.first_death);
      quarter.add(r.quarter_dead);
      partition.add(r.field_partition);
    }
    if (baseline_partition == 0.0) baseline_partition = partition.mean();
    out.add_row({cfg.name, exp::table::num(first_death.mean(), 0),
                 exp::table::num(quarter.mean(), 0), exp::table::num(partition.mean(), 0),
                 exp::table::num(partition.mean() / baseline_partition, 1) + "x"});
  }
  out.print(std::cout);

  std::cout << "\nReading: lower per-node radii stretch the same battery over many more\n"
            << "rounds; the field (survivors' max-power graph) stays whole far longer\n"
            << "under CBTC than under no topology control.\n";
  return 0;
}
