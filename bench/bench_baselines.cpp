// Experiment X3: CBTC against position-based proximity graphs.
//
// CBTC's selling point is needing only directional information; the
// related work it cites (RNG, Gabriel graphs, theta/Yao graphs, MST)
// all need positions. This bench quantifies what that costs: degree,
// radius, transmit power, and route stretch on the paper's workload.
//
// Usage: bench_baselines [networks]
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "algo/augment.h"
#include "algo/pipeline.h"
#include "baselines/baselines.h"
#include "exp/stats.h"
#include "exp/table.h"
#include "exp/workload.h"
#include "graph/euclidean.h"
#include "graph/interference.h"
#include "graph/metrics.h"
#include "graph/robustness.h"
#include "graph/traversal.h"

int main(int argc, char** argv) {
  using namespace cbtc;
  const std::size_t networks = argc > 1 ? std::stoul(argv[1]) : 20;

  exp::workload_params w = exp::paper_workload();
  const radio::power_model pm = exp::workload_power(w);

  using builder = std::function<graph::undirected_graph(const std::vector<geom::vec2>&)>;
  auto cbtc_all = [&pm](double alpha) {
    return [&pm, alpha](const std::vector<geom::vec2>& pts) {
      algo::cbtc_params params;
      params.alpha = alpha;
      return algo::build_topology(pts, pm, params, algo::optimization_set::all()).topology;
    };
  };
  const double R = w.max_range;
  const std::vector<std::pair<std::string, builder>> rows{
      {"CBTC all-op a=5pi/6 (directional only)", cbtc_all(algo::alpha_five_pi_six)},
      {"CBTC all-op a=2pi/3 (directional only)", cbtc_all(algo::alpha_two_pi_three)},
      {"CBTC all-op + bridge augmentation (ext.)",
       [&pm, cbtc_all, R](const std::vector<geom::vec2>& pts) {
         return algo::augment_bridge_resilience(cbtc_all(algo::alpha_five_pi_six)(pts), pts, R)
             .topology;
       }},
      {"Euclidean MST (global positions)",
       [R](const std::vector<geom::vec2>& p) { return baselines::euclidean_mst(p, R); }},
      {"Relative neighborhood graph",
       [R](const std::vector<geom::vec2>& p) { return baselines::relative_neighborhood_graph(p, R); }},
      {"Gabriel graph",
       [R](const std::vector<geom::vec2>& p) { return baselines::gabriel_graph(p, R); }},
      {"Yao graph (6 cones)",
       [R](const std::vector<geom::vec2>& p) { return baselines::yao_graph(p, R, 6); }},
      {"kNN graph (k=3)",
       [R](const std::vector<geom::vec2>& p) { return baselines::knn_graph(p, R, 3); }},
      {"max power (G_R)",
       [R](const std::vector<geom::vec2>& p) { return graph::build_max_power_graph(p, R); }},
  };

  std::cout << "CBTC vs position-based baselines: " << networks << " networks x " << w.nodes
            << " nodes (paper workload)\n\n";

  exp::table out({"topology", "avg degree", "avg radius", "avg tx power", "power stretch",
                  "hop stretch", "interference", "cut vertices", "connectivity preserved"});
  for (const auto& [name, build] : rows) {
    exp::summary deg, rad, pow_, ps, hs, intf, cuts;
    std::size_t preserved = 0;
    for (std::size_t net = 0; net < networks; ++net) {
      const auto positions = exp::network_positions(w, 3000 + net);
      const auto gr = graph::build_max_power_graph(positions, R);
      const auto topo = build(positions);
      deg.add(graph::average_degree(topo));
      rad.add(graph::average_radius(topo, positions, R));
      pow_.add(graph::average_power(topo, positions, pm.exponent(), R));
      ps.add(graph::power_stretch(topo, gr, positions, pm.exponent(), 8).mean);
      hs.add(graph::hop_stretch(topo, gr, 8).mean);
      intf.add(graph::topology_interference(topo, positions).mean);
      cuts.add(static_cast<double>(graph::articulation_points(topo).size()));
      if (graph::same_connectivity(topo, gr)) ++preserved;
    }
    out.add_row({name, exp::table::num(deg.mean()), exp::table::num(rad.mean()),
                 exp::table::num(pow_.mean(), 0), exp::table::num(ps.mean(), 3),
                 exp::table::num(hs.mean(), 3), exp::table::num(intf.mean(), 1),
                 exp::table::num(cuts.mean(), 1),
                 exp::table::num(static_cast<double>(preserved) / networks, 2)});
  }
  out.print(std::cout);

  std::cout << "\nReading: CBTC reaches MST/RNG-like sparsity without any position\n"
            << "information; kNN is the cautionary tale (connectivity not guaranteed).\n";
  return 0;
}
