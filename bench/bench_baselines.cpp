// Experiment X3: CBTC against position-based proximity graphs.
//
// CBTC's selling point is needing only directional information; the
// related work it cites (RNG, Gabriel graphs, theta/Yao graphs, MST)
// all need positions. This bench quantifies what that costs: degree,
// radius, transmit power, and route stretch on the paper's workload.
// Every row is one cbtc::api scenario batched over the same seed range
// through the parallel engine.
//
// Usage: bench_baselines [networks] [--threads N]
#include <iostream>
#include <string>
#include <vector>

#include "api/api.h"
#include "exp/table.h"

int main(int argc, char** argv) {
  using namespace cbtc;
  std::uint64_t networks = 20;
  unsigned threads = 0;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--threads") {
        if (i + 1 >= argc) throw std::invalid_argument("--threads needs a value");
        threads = static_cast<unsigned>(std::stoul(argv[++i]));
      } else {
        networks = std::stoul(a);
      }
    }
  } catch (const std::exception&) {
    std::cerr << "usage: bench_baselines [networks] [--threads N]\n";
    return 2;
  }

  // Paper workload; rows swap the method (and one adds the bridge-
  // augmentation extension on top of CBTC). Discrete growth — the
  // deployable Increase(p) = 2p schedule this bench has always
  // measured (paper_table1 defaults to paper-matching continuous).
  api::scenario_spec base = api::get_scenario("paper_table1");
  base.cbtc.mode = algo::growth_mode::discrete;
  base.metrics.stretch_samples = 8;

  const auto cbtc_at = [&base](double alpha) {
    api::scenario_spec s = base;
    s.cbtc.alpha = alpha;
    return s;
  };
  const auto baseline = [&base](api::baseline_kind kind) {
    api::scenario_spec s = base;
    s.method = api::method_spec::of_baseline(kind);
    return s;
  };
  api::scenario_spec augmented = cbtc_at(algo::alpha_five_pi_six);
  augmented.post.bridge_augmentation = true;

  const std::vector<std::pair<std::string, api::scenario_spec>> rows{
      {"CBTC all-op a=5pi/6 (directional only)", cbtc_at(algo::alpha_five_pi_six)},
      {"CBTC all-op a=2pi/3 (directional only)", cbtc_at(algo::alpha_two_pi_three)},
      {"CBTC all-op + bridge augmentation (ext.)", augmented},
      {"Euclidean MST (global positions)", baseline(api::baseline_kind::euclidean_mst)},
      {"Relative neighborhood graph", baseline(api::baseline_kind::relative_neighborhood)},
      {"Gabriel graph", baseline(api::baseline_kind::gabriel)},
      {"Yao graph (6 cones)", baseline(api::baseline_kind::yao)},
      {"kNN graph (k=3)", baseline(api::baseline_kind::knn)},
      {"max power (G_R)", baseline(api::baseline_kind::max_power)},
  };

  std::cout << "CBTC vs position-based baselines: " << networks << " networks x "
            << base.deploy.nodes << " nodes (paper workload)\n\n";

  const api::engine eng;
  const api::seed_range seeds{3000, networks};

  exp::table out({"topology", "avg degree", "avg radius", "avg tx power", "power stretch",
                  "hop stretch", "interference", "cut vertices", "connectivity preserved"});
  for (const auto& [name, spec] : rows) {
    const api::batch_report b = eng.run_batch(spec, seeds, threads);
    out.add_row({name, exp::table::num(b.degree.mean()), exp::table::num(b.radius.mean()),
                 exp::table::num(b.tx_power.mean(), 0), exp::table::num(b.power_stretch.mean(), 3),
                 exp::table::num(b.hop_stretch.mean(), 3), exp::table::num(b.interference.mean(), 1),
                 exp::table::num(b.cut_vertices.mean(), 1),
                 exp::table::num(b.preserved_fraction(), 2)});
  }
  out.print(std::cout);

  std::cout << "\nReading: CBTC reaches MST/RNG-like sparsity without any position\n"
            << "information; kNN is the cautionary tale (connectivity not guaranteed).\n";
  return 0;
}
