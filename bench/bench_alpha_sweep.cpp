// The 5*pi/6 threshold (Theorems 2.1 and 2.4).
//
// Sweeps alpha across (0, pi] and reports, per alpha:
//   - the fraction of random networks whose connectivity G_alpha
//     preserves (Theorem 2.1 predicts 1.0 for alpha <= 5*pi/6) —
//     measured as a multi-seed engine::run_batch per alpha;
//   - whether the Figure 5 counterexample disconnects (constructible
//     exactly when alpha > 5*pi/6 — Theorem 2.4's tightness), run as a
//     fixed-position scenario through the same façade.
//
// Random networks almost never realize the adversarial geometry, so the
// random-network column typically stays at 1.0 slightly above the
// threshold too; the gadget column is what exhibits tightness.
//
// Usage: bench_alpha_sweep [networks_per_alpha]
#include <iostream>
#include <string>
#include <vector>

#include "algo/gadgets.h"
#include "api/api.h"
#include "exp/table.h"
#include "geom/angle.h"

int main(int argc, char** argv) {
  using namespace cbtc;
  const std::size_t networks = argc > 1 ? std::stoul(argv[1]) : 25;

  api::scenario_spec spec;  // the paper's Section 5 workload, bare growth
  spec.deploy = {.kind = api::deployment_kind::uniform, .nodes = 100, .region_side = 1500.0};
  spec.base_seed = 20010601 + 1000;
  spec.metrics = {.stretch = false, .interference = false, .robustness = false};

  const api::engine eng;
  std::cout << "Connectivity preservation vs alpha (" << networks
            << " random networks per point; threshold = 5*pi/6 ~ "
            << exp::table::num(algo::alpha_five_pi_six, 4) << " rad)\n\n";

  exp::table out({"alpha/pi", "alpha (rad)", "random nets preserved", "figure-5 gadget"});
  for (double frac = 0.45; frac <= 1.0001; frac += 0.05) {
    const double alpha = frac * geom::pi;

    spec.cbtc.alpha = alpha;
    const api::batch_report batch = eng.run_batch(spec, {0, networks});

    const double eps = alpha - algo::alpha_five_pi_six;
    std::string gadget = eps <= 1e-9 ? "n/a (alpha <= 5pi/6: none exists)"
                                     : "n/a (gadget needs eps < pi/6)";
    if (eps > 1e-9 && eps < geom::pi / 6.0) {
      const auto g = algo::gadgets::make_figure5(eps);
      api::scenario_spec gspec;
      gspec.deploy = api::deployment_spec::fixed_positions(g.positions);
      gspec.radio.max_range = g.max_range;
      gspec.cbtc.alpha = g.alpha;
      gspec.cbtc.mode = algo::growth_mode::continuous;
      gspec.metrics = {.stretch = false, .interference = false, .robustness = false};
      const api::run_report r = eng.run(gspec);
      gadget = r.invariants.connectivity_preserved ? "preserved (UNEXPECTED)"
                                                   : "DISCONNECTED (as proven)";
    }

    out.add_row({exp::table::num(frac, 2), exp::table::num(alpha, 4),
                 exp::table::num(batch.preserved_fraction(), 3), gadget});
  }
  out.print(std::cout);

  std::cout << "\nTheorem 2.1: every row with alpha <= 5*pi/6 (~0.833 pi) must read 1.000.\n"
            << "Theorem 2.4: above the threshold the adversarial gadget disconnects, even\n"
            << "though typical random networks still survive.\n";
  return 0;
}
