// The 5*pi/6 threshold (Theorems 2.1 and 2.4).
//
// Sweeps alpha across (0, pi] and reports, per alpha:
//   - the fraction of random networks whose connectivity G_alpha
//     preserves (Theorem 2.1 predicts 1.0 for alpha <= 5*pi/6);
//   - whether the Figure 5 counterexample disconnects (constructible
//     exactly when alpha > 5*pi/6 — Theorem 2.4's tightness).
//
// Random networks almost never realize the adversarial geometry, so the
// random-network column typically stays at 1.0 slightly above the
// threshold too; the gadget column is what exhibits tightness.
//
// Usage: bench_alpha_sweep [networks_per_alpha]
#include <iostream>
#include <string>
#include <vector>

#include "algo/gadgets.h"
#include "algo/oracle.h"
#include "exp/table.h"
#include "exp/workload.h"
#include "geom/angle.h"
#include "graph/euclidean.h"
#include "graph/traversal.h"

int main(int argc, char** argv) {
  using namespace cbtc;
  const std::size_t networks = argc > 1 ? std::stoul(argv[1]) : 25;

  exp::workload_params w = exp::paper_workload();
  const radio::power_model pm = exp::workload_power(w);

  std::cout << "Connectivity preservation vs alpha (" << networks
            << " random networks per point; threshold = 5*pi/6 ~ "
            << exp::table::num(algo::alpha_five_pi_six, 4) << " rad)\n\n";

  exp::table out({"alpha/pi", "alpha (rad)", "random nets preserved", "figure-5 gadget"});
  for (double frac = 0.45; frac <= 1.0001; frac += 0.05) {
    const double alpha = frac * geom::pi;

    std::size_t preserved = 0;
    for (std::size_t net = 0; net < networks; ++net) {
      const auto positions = exp::network_positions(w, 1000 + net);
      const auto gr = graph::build_max_power_graph(positions, w.max_range);
      algo::cbtc_params params;
      params.alpha = alpha;
      const auto closure = algo::run_cbtc(positions, pm, params).symmetric_closure();
      if (graph::same_connectivity(closure, gr)) ++preserved;
    }

    const double eps = alpha - algo::alpha_five_pi_six;
    std::string gadget = eps <= 1e-9 ? "n/a (alpha <= 5pi/6: none exists)"
                                     : "n/a (gadget needs eps < pi/6)";
    if (eps > 1e-9 && eps < geom::pi / 6.0) {
      const auto g = algo::gadgets::make_figure5(eps);
      const radio::power_model gpm(2.0, g.max_range);
      algo::cbtc_params params;
      params.alpha = g.alpha;
      params.mode = algo::growth_mode::continuous;
      const auto closure = algo::run_cbtc(g.positions, gpm, params).symmetric_closure();
      const auto ggr = graph::build_max_power_graph(g.positions, g.max_range);
      gadget = graph::same_connectivity(closure, ggr) ? "preserved (UNEXPECTED)"
                                                      : "DISCONNECTED (as proven)";
    }

    out.add_row({exp::table::num(frac, 2), exp::table::num(alpha, 4),
                 exp::table::num(static_cast<double>(preserved) / networks, 3), gadget});
  }
  out.print(std::cout);

  std::cout << "\nTheorem 2.1: every row with alpha <= 5*pi/6 (~0.833 pi) must read 1.000.\n"
            << "Theorem 2.4: above the threshold the adversarial gadget disconnects, even\n"
            << "though typical random networks still survive.\n";
  return 0;
}
