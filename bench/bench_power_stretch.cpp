// Experiment X2: route quality of G_alpha (power and hop stretch).
//
// The paper's introduction cites the competitiveness result of [16]:
// for alpha <= pi/2 the most power-efficient route in G_alpha costs at
// most (k + 2 k sin(alpha/2)) times the optimum in G_R (k = 1 for pure
// transmit power with p(d) = d^n). This bench measures the actual
// stretch across alpha values and optimization levels with one
// engine::run_batch per configuration.
//
// Usage: bench_power_stretch [networks]
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "api/api.h"
#include "exp/table.h"
#include "geom/angle.h"

int main(int argc, char** argv) {
  using namespace cbtc;
  const std::size_t networks = argc > 1 ? std::stoul(argv[1]) : 20;

  api::scenario_spec spec;  // the paper's Section 5 workload
  spec.deploy = {.kind = api::deployment_kind::uniform, .nodes = 100, .region_side = 1500.0};
  spec.base_seed = 20010601 + 2000;
  spec.metrics = {.stretch = true, .stretch_samples = 16, .interference = false,
                  .robustness = false};

  struct row {
    std::string name;
    double alpha;
    algo::optimization_set opts;
  };
  const std::vector<row> rows{
      {"basic a=pi/2", geom::pi / 2.0, {}},
      {"basic a=2pi/3", algo::alpha_two_pi_three, {}},
      {"basic a=5pi/6", algo::alpha_five_pi_six, {}},
      {"all op a=2pi/3", algo::alpha_two_pi_three, algo::optimization_set::all()},
      {"all op a=5pi/6", algo::alpha_five_pi_six, algo::optimization_set::all()},
  };

  std::cout << "Power / hop stretch vs G_R (quadratic power cost), " << networks
            << " networks, sampled sources\n"
            << "[16]'s bound for alpha <= pi/2: 1 + 2 sin(alpha/2) = "
            << exp::table::num(1.0 + 2.0 * std::sin(geom::pi / 4.0), 3) << "\n\n";

  const api::engine eng;
  exp::table out({"configuration", "power stretch (mean)", "power stretch (max)",
                  "hop stretch (mean)", "hop stretch (max)"});
  for (const row& r : rows) {
    api::scenario_spec s = spec;
    s.cbtc.alpha = r.alpha;
    s.opts = r.opts;
    const api::batch_report b = eng.run_batch(s, {0, networks});
    out.add_row({r.name, exp::table::num(b.power_stretch.mean(), 3),
                 exp::table::num(b.power_stretch_max.max(), 3),
                 exp::table::num(b.hop_stretch.mean(), 3),
                 exp::table::num(b.hop_stretch_max.max(), 3)});
  }
  out.print(std::cout);

  std::cout << "\nReading: smaller alpha keeps more short edges, so power stretch falls as\n"
            << "alpha shrinks; the optimizations trade a little stretch for much less power.\n";
  return 0;
}
