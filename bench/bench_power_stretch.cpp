// Experiment X2: route quality of G_alpha (power and hop stretch).
//
// The paper's introduction cites the competitiveness result of [16]:
// for alpha <= pi/2 the most power-efficient route in G_alpha costs at
// most (k + 2 k sin(alpha/2)) times the optimum in G_R (k = 1 for pure
// transmit power with p(d) = d^n). This bench measures the actual
// stretch across alpha values and optimization levels.
//
// Usage: bench_power_stretch [networks]
#include <cmath>
#include <iostream>
#include <string>

#include "algo/pipeline.h"
#include "exp/stats.h"
#include "exp/table.h"
#include "exp/workload.h"
#include "geom/angle.h"
#include "graph/euclidean.h"
#include "graph/metrics.h"

int main(int argc, char** argv) {
  using namespace cbtc;
  const std::size_t networks = argc > 1 ? std::stoul(argv[1]) : 20;

  exp::workload_params w = exp::paper_workload();
  const radio::power_model pm = exp::workload_power(w);

  struct row {
    std::string name;
    double alpha;
    algo::optimization_set opts;
  };
  const std::vector<row> rows{
      {"basic a=pi/2", geom::pi / 2.0, {}},
      {"basic a=2pi/3", algo::alpha_two_pi_three, {}},
      {"basic a=5pi/6", algo::alpha_five_pi_six, {}},
      {"all op a=2pi/3", algo::alpha_two_pi_three, algo::optimization_set::all()},
      {"all op a=5pi/6", algo::alpha_five_pi_six, algo::optimization_set::all()},
  };

  std::cout << "Power / hop stretch vs G_R (quadratic power cost), " << networks
            << " networks, sampled sources\n"
            << "[16]'s bound for alpha <= pi/2: 1 + 2 sin(alpha/2) = "
            << exp::table::num(1.0 + 2.0 * std::sin(geom::pi / 4.0), 3) << "\n\n";

  exp::table out({"configuration", "power stretch (mean)", "power stretch (max)",
                  "hop stretch (mean)", "hop stretch (max)"});
  for (const row& r : rows) {
    exp::summary ps_mean, ps_max, hs_mean, hs_max;
    for (std::size_t net = 0; net < networks; ++net) {
      const auto positions = exp::network_positions(w, 2000 + net);
      const auto gr = graph::build_max_power_graph(positions, w.max_range);
      algo::cbtc_params params;
      params.alpha = r.alpha;
      const auto topo = algo::build_topology(positions, pm, params, r.opts).topology;
      const auto ps = graph::power_stretch(topo, gr, positions, pm.exponent(), 16);
      const auto hs = graph::hop_stretch(topo, gr, 16);
      ps_mean.add(ps.mean);
      ps_max.add(ps.max);
      hs_mean.add(hs.mean);
      hs_max.add(hs.max);
    }
    out.add_row({r.name, exp::table::num(ps_mean.mean(), 3), exp::table::num(ps_max.max(), 3),
                 exp::table::num(hs_mean.mean(), 3), exp::table::num(hs_max.max(), 3)});
  }
  out.print(std::cout);

  std::cout << "\nReading: smaller alpha keeps more short edges, so power stretch falls as\n"
            << "alpha shrinks; the optimizations trade a little stretch for much less power.\n";
  return 0;
}
