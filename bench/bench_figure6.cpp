// Reproduces Figure 6 of the paper: the eight topology plots of one
// 100-node random network under increasing levels of optimization.
//
//   (a) no topology control        (b) basic, alpha = 2*pi/3
//   (c) basic, alpha = 5*pi/6      (d) 2*pi/3 + shrink-back
//   (e) 5*pi/6 + shrink-back       (f) 2*pi/3 + shrink-back + asym removal
//   (g) 5*pi/6, all optimizations  (h) 2*pi/3, all optimizations
//
// Emits one SVG per panel plus a stats table (edges / degree / radius),
// so the qualitative comparison in the paper (dense areas thin out,
// optimizations sparsify further) can be made visually and numerically.
//
// Usage: bench_figure6 [seed_index] [output_dir]
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "algo/pipeline.h"
#include "exp/table.h"
#include "exp/workload.h"
#include "graph/euclidean.h"
#include "graph/graph_io.h"
#include "graph/metrics.h"
#include "graph/traversal.h"

int main(int argc, char** argv) {
  using namespace cbtc;

  const exp::workload_params w = exp::paper_workload();
  const std::size_t seed_index = argc > 1 ? std::stoul(argv[1]) : 0;
  const std::string out_dir = argc > 2 ? argv[2] : "figure6";
  std::filesystem::create_directories(out_dir);

  const std::vector<geom::vec2> positions = exp::network_positions(w, seed_index);
  const radio::power_model pm = exp::workload_power(w);
  const geom::bbox region = geom::bbox::rect(w.region_side, w.region_side);
  const auto gr = graph::build_max_power_graph(positions, w.max_range);

  const double a56 = algo::alpha_five_pi_six;
  const double a23 = algo::alpha_two_pi_three;
  using opt = algo::optimization_set;

  struct panel {
    std::string key;
    std::string title;
    double alpha;  // 0 = no topology control
    opt opts;
  };
  const std::vector<panel> panels{
      {"a", "(a) no topology control", 0.0, {}},
      {"b", "(b) basic, alpha=2pi/3", a23, {}},
      {"c", "(c) basic, alpha=5pi/6", a56, {}},
      {"d", "(d) alpha=2pi/3 + shrink-back", a23, {.shrink_back = true}},
      {"e", "(e) alpha=5pi/6 + shrink-back", a56, {.shrink_back = true}},
      {"f", "(f) alpha=2pi/3 + shrink-back + asym removal", a23,
       {.shrink_back = true, .asymmetric_removal = true}},
      {"g", "(g) alpha=5pi/6, all optimizations", a56, opt::all()},
      {"h", "(h) alpha=2pi/3, all optimizations", a23, opt::all()},
  };

  std::cout << "Figure 6 reproduction: network #" << seed_index << " (" << w.nodes
            << " nodes, region " << w.region_side << "^2, R = " << w.max_range << ")\n\n";

  exp::table stats({"panel", "edges", "avg degree", "avg radius", "max radius", "connected=G_R"});
  for (const panel& p : panels) {
    graph::undirected_graph topo;
    if (p.alpha == 0.0) {
      topo = gr;
    } else {
      algo::cbtc_params params;
      params.alpha = p.alpha;
      params.mode = algo::growth_mode::continuous;  // paper-matching growth
      topo = algo::build_topology(positions, pm, params, p.opts).topology;
    }
    graph::svg_style style;
    style.title = p.title;
    style.node_labels = true;
    const std::string path = out_dir + "/figure6_" + p.key + ".svg";
    graph::save_svg(path, topo, positions, region, style);

    stats.add_row({p.title, std::to_string(topo.num_edges()),
                   exp::table::num(graph::average_degree(topo)),
                   exp::table::num(graph::average_radius(topo, positions, w.max_range)),
                   exp::table::num(graph::max_radius(topo, positions, w.max_range)),
                   graph::same_connectivity(topo, gr) ? "yes" : "NO"});
  }
  stats.print(std::cout);
  std::cout << "\nwrote " << panels.size() << " SVGs to " << out_dir << "/\n";
  return 0;
}
