// Reproduces Figure 6 of the paper: the eight topology plots of one
// 100-node random network under increasing levels of optimization.
//
//   (a) no topology control        (b) basic, alpha = 2*pi/3
//   (c) basic, alpha = 5*pi/6      (d) 2*pi/3 + shrink-back
//   (e) 5*pi/6 + shrink-back       (f) 2*pi/3 + shrink-back + asym removal
//   (g) 5*pi/6, all optimizations  (h) 2*pi/3, all optimizations
//
// Every panel is the `figure6` registry scenario with its alpha /
// optimization set varied, run through the cbtc::api engine on the same
// network seed. Emits one SVG per panel plus a stats table (edges /
// degree / radius), so the qualitative comparison in the paper (dense
// areas thin out, optimizations sparsify further) can be made visually
// and numerically.
//
// Usage: bench_figure6 [seed_index] [output_dir]
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "api/api.h"
#include "exp/table.h"
#include "graph/graph_io.h"

int main(int argc, char** argv) {
  using namespace cbtc;

  const std::uint64_t seed_index = argc > 1 ? std::stoul(argv[1]) : 0;
  const std::string out_dir = argc > 2 ? argv[2] : "figure6";
  std::filesystem::create_directories(out_dir);

  const api::scenario_spec base = api::get_scenario("figure6");
  const geom::bbox region = base.region();
  const double a56 = algo::alpha_five_pi_six;
  const double a23 = algo::alpha_two_pi_three;
  using opt = algo::optimization_set;

  struct panel {
    std::string key;
    std::string title;
    double alpha;  // 0 = no topology control
    opt opts;
  };
  const std::vector<panel> panels{
      {"a", "(a) no topology control", 0.0, {}},
      {"b", "(b) basic, alpha=2pi/3", a23, {}},
      {"c", "(c) basic, alpha=5pi/6", a56, {}},
      {"d", "(d) alpha=2pi/3 + shrink-back", a23, {.shrink_back = true}},
      {"e", "(e) alpha=5pi/6 + shrink-back", a56, {.shrink_back = true}},
      {"f", "(f) alpha=2pi/3 + shrink-back + asym removal", a23,
       {.shrink_back = true, .asymmetric_removal = true}},
      {"g", "(g) alpha=5pi/6, all optimizations", a56, opt::all()},
      {"h", "(h) alpha=2pi/3, all optimizations", a23, opt::all()},
  };

  std::cout << "Figure 6 reproduction: network #" << seed_index << " (" << base.deploy.nodes
            << " nodes, region " << base.deploy.region_side << "^2, R = " << base.radio.max_range
            << ")\n\n";

  const api::engine eng;
  const std::vector<geom::vec2> positions = base.make_positions(seed_index);

  exp::table stats({"panel", "edges", "avg degree", "avg radius", "max radius", "connected=G_R"});
  for (const panel& p : panels) {
    api::scenario_spec spec = base;
    if (p.alpha == 0.0) {
      spec.method = api::method_spec::of_baseline(api::baseline_kind::max_power);
    } else {
      spec.cbtc.alpha = p.alpha;
      spec.opts = p.opts;
    }
    const api::run_report r = eng.run(spec, seed_index);

    graph::svg_style style;
    style.title = p.title;
    style.node_labels = true;
    const std::string path = out_dir + "/figure6_" + p.key + ".svg";
    graph::save_svg(path, r.topology, positions, region, style);

    stats.add_row({p.title, std::to_string(r.edges), exp::table::num(r.avg_degree),
                   exp::table::num(r.avg_radius), exp::table::num(r.max_radius),
                   r.invariants.connectivity_preserved ? "yes" : "NO"});
  }
  stats.print(std::cout);
  std::cout << "\nwrote " << panels.size() << " SVGs to " << out_dir << "/\n";
  return 0;
}
