#include "algo/pairwise.h"

#include <gtest/gtest.h>

#include "algo/oracle.h"
#include "algo/shrink_back.h"
#include "geom/angle.h"
#include "geom/random_points.h"
#include "graph/euclidean.h"
#include "graph/metrics.h"
#include "graph/traversal.h"
#include "radio/power_model.h"

namespace cbtc::algo {
namespace {

using geom::pi;
using geom::vec2;

const radio::power_model pm(2.0, 500.0);

// ------------------------------------------------------------- edge_id

TEST(EdgeId, OrderedByLengthFirst) {
  const std::vector<vec2> pts{{0, 0}, {10, 0}, {0, 20}};
  const edge_id short_edge = edge_id::of(0, 1, pts);
  const edge_id long_edge = edge_id::of(0, 2, pts);
  EXPECT_LT(short_edge, long_edge);
}

TEST(EdgeId, TieBrokenByIds) {
  // Two edges of identical length: lexicographic id comparison decides.
  const std::vector<vec2> pts{{0, 0}, {10, 0}, {-10, 0}, {30, 0}, {40, 0}};
  const edge_id a = edge_id::of(0, 1, pts);  // len 10, ids (1,0)
  const edge_id b = edge_id::of(0, 2, pts);  // len 10, ids (2,0)
  const edge_id c = edge_id::of(3, 4, pts);  // len 10, ids (4,3)
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, edge_id::of(1, 0, pts));  // symmetric
}

// -------------------------------------------------------- redundancy

TEST(Redundant, TriangleLongestEdgeIsRedundant) {
  // Near-equilateral triangle with angles < pi/3 at the witness: make
  // a thin triangle where the apex angle is small.
  const std::vector<vec2> pts{{0, 0}, {100, 0}, {95, 30}};
  graph::undirected_graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  // angle(1,0,2) = atan2(30, 95) ~ 17.5 deg < 60 deg: the longer of
  // (0,1), (0,2) is redundant.
  EXPECT_TRUE(is_redundant_edge(g, pts, 0, 1) || is_redundant_edge(g, pts, 0, 2));
  // The short edge (1,2) has no witness within pi/3 at either end.
  EXPECT_FALSE(is_redundant_edge(g, pts, 1, 2));
}

TEST(Redundant, WideAngleNotRedundant) {
  // 90-degree separation at u: neither edge redundant via u.
  const std::vector<vec2> pts{{0, 0}, {100, 0}, {0, 100}};
  graph::undirected_graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  EXPECT_FALSE(is_redundant_edge(g, pts, 0, 1));
  EXPECT_FALSE(is_redundant_edge(g, pts, 0, 2));
}

TEST(Redundant, WitnessAtEitherEndpointCounts) {
  // w is a neighbor of v (not of u); edge (u,v) is still redundant.
  const std::vector<vec2> pts{{0, 0}, {100, 0}, {95, 10}};
  graph::undirected_graph g(3);
  g.add_edge(0, 1);  // u=0, v=1: the long edge
  g.add_edge(1, 2);  // witness w=2 attached to v=1
  // angle(0,1,2) at node 1 between directions to 0 and 2 is small?
  // dir(1->0) = pi; dir(1->2) = atan2(10,-5) ~ 116.6 deg. Angle ~ 63 deg
  // — too wide. Move the witness nearer the line.
  const std::vector<vec2> pts2{{0, 0}, {100, 0}, {60, 10}};
  graph::undirected_graph g2(3);
  g2.add_edge(0, 1);
  g2.add_edge(1, 2);
  // dir(1->0)=pi, dir(1->2)=atan2(10,-40) ~ 166 deg; angle ~ 14 deg < 60.
  // d(1,2) ~ 41.2 < d(0,1) = 100: witness wins.
  EXPECT_TRUE(is_redundant_edge(g2, pts2, 0, 1));
  EXPECT_FALSE(is_redundant_edge(g2, pts2, 1, 2));
  (void)pts;
  (void)g;
}

TEST(Redundant, ExactlyPiOverThreeIsNotRedundant) {
  // Definition 3.5 requires angle *strictly* less than pi/3.
  const std::vector<vec2> pts{{0, 0}, {100, 0}, geom::polar({0, 0}, 50.0, pi / 3.0)};
  graph::undirected_graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  EXPECT_FALSE(is_redundant_edge(g, pts, 0, 1));
}

// ---------------------------------------------------------- removal

struct instance {
  std::vector<vec2> positions;
  graph::undirected_graph e_alpha;
  graph::undirected_graph gr;
};

instance make_instance(std::uint64_t seed, double alpha = alpha_five_pi_six) {
  instance in;
  in.positions = geom::uniform_points(100, geom::bbox::rect(1500, 1500), seed);
  cbtc_params p;
  p.alpha = alpha;
  in.e_alpha = apply_shrink_back(run_cbtc(in.positions, pm, p)).symmetric_closure();
  in.gr = graph::build_max_power_graph(in.positions, pm.max_range());
  return in;
}

TEST(PairwiseRemoval, RemoveAllPreservesConnectivity) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const instance in = make_instance(seed);
    pairwise_options opts;
    opts.remove_all = true;
    const pairwise_result pr = apply_pairwise_removal(in.e_alpha, in.positions, opts);
    EXPECT_TRUE(graph::same_connectivity(pr.topology, in.gr)) << "seed " << seed;
    EXPECT_EQ(pr.removed_edges, pr.redundant_edges);
    EXPECT_EQ(pr.topology.num_edges() + pr.removed_edges, in.e_alpha.num_edges());
  }
}

TEST(PairwiseRemoval, GatedVariantPreservesConnectivity) {
  for (std::uint64_t seed : {6u, 7u, 8u, 9u, 10u}) {
    const instance in = make_instance(seed);
    const pairwise_result pr = apply_pairwise_removal(in.e_alpha, in.positions);
    EXPECT_TRUE(graph::same_connectivity(pr.topology, in.gr)) << "seed " << seed;
    EXPECT_LE(pr.removed_edges, pr.redundant_edges);
  }
}

TEST(PairwiseRemoval, GatedRemovesOnlyLongEdges) {
  const instance in = make_instance(11);
  const pairwise_result pr = apply_pairwise_removal(in.e_alpha, in.positions);
  // Every node's radius after removal equals its longest kept edge and
  // never exceeds its radius before.
  for (graph::node_id u = 0; u < in.e_alpha.num_nodes(); ++u) {
    EXPECT_LE(graph::node_radius(pr.topology, in.positions, u),
              graph::node_radius(in.e_alpha, in.positions, u) + 1e-9);
  }
}

TEST(PairwiseRemoval, ReducesRadiusAndDegree) {
  const instance in = make_instance(12);
  const pairwise_result pr = apply_pairwise_removal(in.e_alpha, in.positions);
  EXPECT_LT(graph::average_radius(pr.topology, in.positions, pm.max_range()),
            graph::average_radius(in.e_alpha, in.positions, pm.max_range()));
  EXPECT_LT(graph::average_degree(pr.topology), graph::average_degree(in.e_alpha));
}

TEST(PairwiseRemoval, RemoveAllSparserThanGated) {
  const instance in = make_instance(13);
  pairwise_options all;
  all.remove_all = true;
  const auto pr_all = apply_pairwise_removal(in.e_alpha, in.positions, all);
  const auto pr_gated = apply_pairwise_removal(in.e_alpha, in.positions);
  EXPECT_LE(pr_all.topology.num_edges(), pr_gated.topology.num_edges());
}

TEST(PairwiseRemoval, NoRedundantEdgesInRemoveAllOutput) {
  // After removing all redundant edges, re-classifying on the original
  // graph finds none of the survivors redundant.
  const instance in = make_instance(14);
  pairwise_options opts;
  opts.remove_all = true;
  const auto pr = apply_pairwise_removal(in.e_alpha, in.positions, opts);
  for (const graph::edge& e : pr.topology.edges()) {
    EXPECT_FALSE(is_redundant_edge(in.e_alpha, in.positions, e.u, e.v))
        << "edge " << e.u << "-" << e.v;
  }
}

TEST(PairwiseRemoval, BothEndpointsGateKeepsMoreEdges) {
  // The alternative reading of the paper's length gate: the resulting
  // graph nests between the either-endpoint gate and the raw input.
  const instance in = make_instance(20);
  pairwise_options both;
  both.gate = pairwise_gate::both_endpoints;
  const auto pr_both = apply_pairwise_removal(in.e_alpha, in.positions, both);
  const auto pr_either = apply_pairwise_removal(in.e_alpha, in.positions);
  EXPECT_GE(pr_both.topology.num_edges(), pr_either.topology.num_edges());
  EXPECT_LE(pr_both.topology.num_edges(), in.e_alpha.num_edges());
  // Either-gate output is a subgraph of both-gate output.
  for (const graph::edge& e : pr_either.topology.edges()) {
    EXPECT_TRUE(pr_both.topology.has_edge(e.u, e.v));
  }
  EXPECT_TRUE(graph::same_connectivity(pr_both.topology, in.gr));
}

TEST(PairwiseRemoval, BothEndpointsGatePreservesConnectivity) {
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    const instance in = make_instance(seed);
    pairwise_options both;
    both.gate = pairwise_gate::both_endpoints;
    const auto pr = apply_pairwise_removal(in.e_alpha, in.positions, both);
    EXPECT_TRUE(graph::same_connectivity(pr.topology, in.gr)) << "seed " << seed;
  }
}

TEST(PairwiseRemoval, EmptyGraph) {
  const pairwise_result pr = apply_pairwise_removal(graph::undirected_graph(5), {}, {});
  EXPECT_EQ(pr.topology.num_nodes(), 5u);
  EXPECT_EQ(pr.redundant_edges, 0u);
}

TEST(PairwiseRemoval, WorksOnSymmetricCoreToo) {
  // The paper combines op3 with op2 at alpha = 2*pi/3.
  for (std::uint64_t seed : {15u, 16u, 17u}) {
    std::vector<vec2> positions = geom::uniform_points(100, geom::bbox::rect(1500, 1500), seed);
    cbtc_params p;
    p.alpha = alpha_two_pi_three;
    const auto core = apply_shrink_back(run_cbtc(positions, pm, p)).symmetric_core();
    const auto gr = graph::build_max_power_graph(positions, pm.max_range());
    const auto pr = apply_pairwise_removal(core, positions);
    EXPECT_TRUE(graph::same_connectivity(pr.topology, gr)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace cbtc::algo
