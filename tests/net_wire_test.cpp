// Wire-format contract: frames and messages must round-trip exactly
// (the dispatcher's bitwise-determinism rests on it), and malformed
// input — truncated frames, oversized prefixes, fuzzily corrupted
// JSON, version-mismatched handshakes — must be rejected with a typed
// error, never accepted or crashed on.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <thread>

#include "api/engine.h"
#include "api/registry.h"
#include "api/wire.h"
#include "net/frame.h"
#include "net/socket.h"

namespace cbtc {
namespace {

using api::batch_report;
using api::dynamic_batch_report;
using api::engine;
using api::lifetime_batch_report;
namespace wire = api::wire;

/// Exact equality of summary internals — the wire must reproduce the
/// accumulator bit for bit, not just to rounding.
void expect_same(const exp::summary& a, const exp::summary& b, const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.sum(), b.sum()) << what;
  EXPECT_EQ(a.sum_squares(), b.sum_squares()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
}

void expect_same(const batch_report& a, const batch_report& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.connectivity_failures, b.connectivity_failures);
  expect_same(a.edges, b.edges, "edges");
  expect_same(a.degree, b.degree, "degree");
  expect_same(a.radius, b.radius, "radius");
  expect_same(a.max_radius, b.max_radius, "max_radius");
  expect_same(a.tx_power, b.tx_power, "tx_power");
  expect_same(a.boundary, b.boundary, "boundary");
  expect_same(a.power_stretch, b.power_stretch, "power_stretch");
  expect_same(a.power_stretch_max, b.power_stretch_max, "power_stretch_max");
  expect_same(a.hop_stretch, b.hop_stretch, "hop_stretch");
  expect_same(a.hop_stretch_max, b.hop_stretch_max, "hop_stretch_max");
  expect_same(a.interference, b.interference, "interference");
  expect_same(a.cut_vertices, b.cut_vertices, "cut_vertices");
  expect_same(a.removed_edges, b.removed_edges, "removed_edges");
  EXPECT_EQ(a.has_protocol_stats, b.has_protocol_stats);
  expect_same(a.messages, b.messages, "messages");
  expect_same(a.deliveries, b.deliveries, "deliveries");
  expect_same(a.tx_energy, b.tx_energy, "tx_energy");
  expect_same(a.completion_time, b.completion_time, "completion_time");
}

TEST(WireTest, BatchReportPartialRoundTripsExactly) {
  api::scenario_spec spec = *api::find_scenario("paper_table1");
  spec.deploy.nodes = 40;
  const engine eng;
  batch_report original;
  eng.run_batch_blocks(spec, {0, 20}, {0, 2}, 1,
                       [&](std::uint64_t block, const batch_report& partial) {
                         const std::string payload = wire::encode_block_partial(block, partial);
                         batch_report decoded;
                         const std::uint64_t got =
                             wire::decode_block_partial(wire::decode_message(payload), decoded);
                         EXPECT_EQ(got, block);
                         expect_same(partial, decoded);
                         original.merge(partial);
                       });
  EXPECT_EQ(original.runs, 20u);
}

TEST(WireTest, LifetimeAndDynamicPartialsRoundTrip) {
  dynamic_batch_report dyn;
  {
    api::dynamic_report r;
    r.joins = 3;
    r.channel.broadcasts = 17;
    r.time_to_partition = 123.4375;
    dyn.accumulate(r);
  }
  const std::string dpayload = wire::encode_block_partial(7, dyn);
  dynamic_batch_report dyn2;
  EXPECT_EQ(wire::decode_block_partial(wire::decode_message(dpayload), dyn2), 7u);
  EXPECT_EQ(dyn2.runs, dyn.runs);
  expect_same(dyn.joins, dyn2.joins, "joins");
  expect_same(dyn.broadcasts, dyn2.broadcasts, "broadcasts");
  expect_same(dyn.time_to_partition, dyn2.time_to_partition, "time_to_partition");

  lifetime_batch_report life;
  {
    api::lifetime_report r;
    r.first_death = 12.25;
    r.quarter_dead = 19.5;
    r.field_partition = 31.0;
    life.accumulate(r);
  }
  const std::string lpayload = wire::encode_block_partial(3, life);
  lifetime_batch_report life2;
  EXPECT_EQ(wire::decode_block_partial(wire::decode_message(lpayload), life2), 3u);
  EXPECT_EQ(life2.runs, life.runs);
  expect_same(life.first_death, life2.first_death, "first_death");
  expect_same(life.quarter_dead, life2.quarter_dead, "quarter_dead");
  expect_same(life.field_partition, life2.field_partition, "field_partition");
}

TEST(WireTest, PartialModeTagIsChecked) {
  lifetime_batch_report life;
  const std::string payload = wire::encode_block_partial(0, life);
  batch_report wrong;
  EXPECT_THROW(wire::decode_block_partial(wire::decode_message(payload), wrong),
               std::invalid_argument);
}

TEST(WireTest, BatchRequestRoundTripsEveryMode) {
  wire::batch_request req;
  req.scenario = *api::find_scenario("paper_table1");
  req.seeds = {5, 1000};
  req.blocks = {3, 17};
  req.threads = 4;

  for (const wire::batch_mode mode :
       {wire::batch_mode::static_runs, wire::batch_mode::dynamic_runs,
        wire::batch_mode::lifetime_runs}) {
    req.mode = mode;
    req.sim.horizon = 250.0;
    req.lifetime.battery_rounds = 17.5;
    const wire::batch_request back =
        wire::decode_batch_request(wire::decode_message(wire::encode_batch_request(req)));
    EXPECT_EQ(back.mode, mode);
    EXPECT_EQ(back.seeds.first, 5u);
    EXPECT_EQ(back.seeds.count, 1000u);
    EXPECT_EQ(back.blocks.first, 3u);
    EXPECT_EQ(back.blocks.count, 17u);
    EXPECT_EQ(back.threads, 4u);
    EXPECT_EQ(back.scenario.deploy.nodes, req.scenario.deploy.nodes);
    EXPECT_EQ(back.scenario.base_seed, req.scenario.base_seed);
    EXPECT_EQ(back.scenario.cbtc.alpha, req.scenario.cbtc.alpha);
    if (mode == wire::batch_mode::dynamic_runs) EXPECT_EQ(back.sim.horizon, 250.0);
    if (mode == wire::batch_mode::lifetime_runs) {
      EXPECT_EQ(back.lifetime.battery_rounds, 17.5);
    }
  }
}

TEST(WireTest, HandshakeVersionMismatchIsRejected) {
  EXPECT_NO_THROW(wire::check_hello(wire::decode_message(wire::encode_hello())));
  EXPECT_THROW(wire::check_hello(wire::decode_message(
                   R"({"type": "hello", "protocol": "cbtc-wire", "version": 2})")),
               std::invalid_argument);
  EXPECT_THROW(wire::check_hello(wire::decode_message(
                   R"({"type": "hello", "protocol": "other-wire", "version": 1})")),
               std::invalid_argument);
  // Not a hello at all.
  EXPECT_THROW(wire::check_hello(wire::decode_message(R"({"type": "done", "blocks": 0})")),
               std::invalid_argument);
}

TEST(WireTest, ControlMessagesRoundTrip) {
  EXPECT_EQ(wire::decode_done(wire::decode_message(wire::encode_done(42))), 42u);
  EXPECT_EQ(wire::decode_error(wire::decode_message(wire::encode_error("boom"))), "boom");
  EXPECT_EQ(wire::decode_message(wire::encode_shutdown()).type, wire::message_type::shutdown);
}

TEST(WireTest, MalformedMessagesAreRejected) {
  EXPECT_THROW(wire::decode_message("not json"), std::invalid_argument);
  EXPECT_THROW(wire::decode_message("[1, 2, 3]"), std::invalid_argument);
  EXPECT_THROW(wire::decode_message(R"({"type": "nonsense"})"), std::invalid_argument);
  // Unknown keys are rejected, not ignored (strict-parse policy).
  EXPECT_THROW(wire::decode_done(wire::decode_message(
                   R"({"type": "done", "blocks": 1, "extra": true})")),
               std::invalid_argument);
}

// ---- frame transport over a loopback socket pair -------------------

struct socket_pair {
  net::tcp_listener listener{"127.0.0.1", 0};
  net::tcp_stream client;
  net::tcp_stream server;

  socket_pair() {
    std::thread t([this] { client = net::tcp_stream::connect("127.0.0.1", listener.port(), 2000); });
    auto accepted = listener.accept(2000);
    t.join();
    if (accepted) server = std::move(*accepted);
  }
};

TEST(FrameTest, RoundTripsPayloads) {
  socket_pair pair;
  ASSERT_TRUE(pair.server.valid());
  for (const std::string payload : {std::string(""), std::string("{}"),
                                    std::string(1000, 'x'), std::string("\0\x01\xff binary", 10)}) {
    net::write_frame(pair.client, payload, 2000);
    EXPECT_EQ(net::read_frame(pair.server, 2000), payload);
  }
}

TEST(FrameTest, OversizedFrameIsRejectedBeforeAllocation) {
  socket_pair pair;
  ASSERT_TRUE(pair.server.valid());
  // A length prefix claiming 256 MiB: read_frame must refuse without
  // trying to read (or allocate) the body.
  const unsigned char prefix[4] = {0x10, 0x00, 0x00, 0x00};
  pair.client.send_all(prefix, sizeof(prefix), 2000);
  EXPECT_THROW((void)net::read_frame(pair.server, 2000), net::net_error);
  EXPECT_THROW((void)net::encode_frame(std::string(net::max_frame_bytes + 1, 'x')),
               net::net_error);
}

TEST(FrameTest, TruncatedFrameSurfacesAsNetError) {
  socket_pair pair;
  ASSERT_TRUE(pair.server.valid());
  // Claim 100 bytes, deliver 10, hang up.
  const unsigned char prefix[4] = {0x00, 0x00, 0x00, 0x64};
  pair.client.send_all(prefix, sizeof(prefix), 2000);
  pair.client.send_all("0123456789", 10, 2000);
  pair.client.close();
  EXPECT_THROW((void)net::read_frame(pair.server, 2000), net::net_error);
}

TEST(FrameTest, SlowFrameTimesOut) {
  socket_pair pair;
  ASSERT_TRUE(pair.server.valid());
  const unsigned char prefix[4] = {0x00, 0x00, 0x00, 0x10};
  pair.client.send_all(prefix, sizeof(prefix), 2000);
  // Body never arrives: the read must give up in bounded time.
  EXPECT_THROW((void)net::read_frame(pair.server, 100), net::timeout_error);
}

TEST(FrameTest, CorruptedPayloadFuzzNeverCrashes) {
  // Deterministic mutation fuzz: flip/trim valid frames and require a
  // typed parse error or a clean decode — never a crash or hang.
  const std::string base = wire::encode_hello();
  std::mt19937 rng(20010601);
  for (int i = 0; i < 500; ++i) {
    std::string payload = base;
    const int op = static_cast<int>(rng() % 3);
    if (op == 0 && !payload.empty()) {
      payload[rng() % payload.size()] = static_cast<char>(rng() % 256);
    } else if (op == 1) {
      payload = payload.substr(0, rng() % (payload.size() + 1));
    } else {
      payload.insert(rng() % (payload.size() + 1), 1, static_cast<char>(rng() % 256));
    }
    try {
      const wire::message m = wire::decode_message(payload);
      (void)m;
    } catch (const std::invalid_argument&) {
      // Expected for most mutations.
    }
  }
}

}  // namespace
}  // namespace cbtc
