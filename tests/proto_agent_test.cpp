// The distributed protocol must compute exactly what the oracle
// computes (reliable channel), and degrade gracefully under loss,
// duplication, and direction noise.
#include <gtest/gtest.h>

#include <set>

#include "algo/oracle.h"
#include "geom/random_points.h"
#include "graph/euclidean.h"
#include "graph/traversal.h"
#include "proto/runner.h"
#include "radio/power_model.h"

namespace cbtc::proto {
namespace {

using geom::vec2;

const radio::power_model pm(2.0, 500.0);

protocol_run_config reliable_config(double alpha = algo::alpha_five_pi_six) {
  protocol_run_config cfg;
  cfg.agent.params.alpha = alpha;
  cfg.agent.round_timeout = 0.5;
  cfg.channel.base_delay = 0.01;  // << round_timeout: acks land in-round
  return cfg;
}

std::set<graph::node_id> ids(const algo::node_result& n) {
  std::set<graph::node_id> s;
  for (const auto& rec : n.neighbors) s.insert(rec.id);
  return s;
}

TEST(ProtocolAgent, MatchesOracleOnPaperWorkload) {
  const auto positions = geom::uniform_points(100, geom::bbox::rect(1500, 1500), 42);
  const protocol_run_result run = run_protocol(positions, pm, reliable_config());
  const algo::cbtc_result oracle = algo::run_cbtc(positions, pm, run.outcome.params);

  ASSERT_EQ(run.outcome.num_nodes(), oracle.num_nodes());
  for (std::size_t u = 0; u < oracle.num_nodes(); ++u) {
    EXPECT_EQ(ids(run.outcome.nodes[u]), ids(oracle.nodes[u])) << "node " << u;
    EXPECT_EQ(run.outcome.nodes[u].boundary, oracle.nodes[u].boundary) << "node " << u;
    EXPECT_NEAR(run.outcome.nodes[u].final_power, oracle.nodes[u].final_power,
                1e-6 * oracle.nodes[u].final_power)
        << "node " << u;
    EXPECT_EQ(run.outcome.nodes[u].level_powers.size(), oracle.nodes[u].level_powers.size())
        << "node " << u;
  }
}

TEST(ProtocolAgent, MatchesOracleAcrossAlphaAndSeeds) {
  for (double alpha : {algo::alpha_two_pi_three, algo::alpha_five_pi_six}) {
    for (std::uint64_t seed : {7u, 8u}) {
      const auto positions = geom::uniform_points(60, geom::bbox::rect(1200, 1200), seed);
      const protocol_run_result run = run_protocol(positions, pm, reliable_config(alpha));
      const algo::cbtc_result oracle = algo::run_cbtc(positions, pm, run.outcome.params);
      for (std::size_t u = 0; u < oracle.num_nodes(); ++u) {
        EXPECT_EQ(ids(run.outcome.nodes[u]), ids(oracle.nodes[u]))
            << "alpha=" << alpha << " seed=" << seed << " node=" << u;
      }
    }
  }
}

TEST(ProtocolAgent, NeighborDistancesRecoveredFromPowers) {
  // The agent never sees positions; its distance estimates derive from
  // (tx, rx) power pairs and must match the geometry exactly in the
  // noise-free model.
  const auto positions = geom::uniform_points(40, geom::bbox::rect(1000, 1000), 3);
  const protocol_run_result run = run_protocol(positions, pm, reliable_config());
  for (std::size_t u = 0; u < positions.size(); ++u) {
    for (const auto& rec : run.outcome.nodes[u].neighbors) {
      EXPECT_NEAR(rec.distance, geom::distance(positions[u], positions[rec.id]), 1e-6);
    }
  }
}

TEST(ProtocolAgent, DirectionsAreAnglesOfArrival) {
  const auto positions = geom::uniform_points(40, geom::bbox::rect(1000, 1000), 4);
  const protocol_run_result run = run_protocol(positions, pm, reliable_config());
  for (std::size_t u = 0; u < positions.size(); ++u) {
    for (const auto& rec : run.outcome.nodes[u].neighbors) {
      const double expected = (positions[rec.id] - positions[u]).bearing();
      EXPECT_NEAR(geom::angle_dist(rec.direction, expected), 0.0, 1e-9);
    }
  }
}

TEST(ProtocolAgent, ClosurePreservesConnectivity) {
  const auto positions = geom::uniform_points(80, geom::bbox::rect(1500, 1500), 11);
  const protocol_run_result run = run_protocol(positions, pm, reliable_config());
  const auto gr = graph::build_max_power_graph(positions, pm.max_range());
  EXPECT_TRUE(graph::same_connectivity(run.outcome.symmetric_closure(), gr));
}

TEST(ProtocolAgent, DropNoticesYieldSymmetricRelation) {
  // After the Section 3.2 notification round, the neighbor relation is
  // symmetric: the remaining digraph equals its own core and closure.
  protocol_run_config cfg = reliable_config(algo::alpha_two_pi_three);
  cfg.send_drop_notices = true;
  const auto positions = geom::uniform_points(80, geom::bbox::rect(1500, 1500), 13);
  const protocol_run_result run = run_protocol(positions, pm, cfg);
  const auto digraph = run.outcome.neighbor_digraph();
  EXPECT_EQ(digraph.symmetric_closure(), digraph.symmetric_core());
}

TEST(ProtocolAgent, DropNoticesMatchOracleCore) {
  protocol_run_config cfg = reliable_config(algo::alpha_two_pi_three);
  cfg.send_drop_notices = true;
  const auto positions = geom::uniform_points(70, geom::bbox::rect(1400, 1400), 17);
  const protocol_run_result run = run_protocol(positions, pm, cfg);
  const algo::cbtc_result oracle = algo::run_cbtc(positions, pm, run.outcome.params);
  EXPECT_EQ(run.outcome.symmetric_closure(), oracle.symmetric_core());
  const auto gr = graph::build_max_power_graph(positions, pm.max_range());
  EXPECT_TRUE(graph::same_connectivity(run.outcome.symmetric_closure(), gr));
}

TEST(ProtocolAgent, CompletesUnderMessageLossWithRetries) {
  // With per-level retries the growing phase finishes despite loss;
  // discovered sets may be supersets of nothing / subsets of the oracle
  // but every agent terminates.
  protocol_run_config cfg = reliable_config();
  cfg.channel.drop_prob = 0.2;
  cfg.agent.retries_per_level = 3;
  cfg.seed = 5;
  const auto positions = geom::uniform_points(60, geom::bbox::rect(1200, 1200), 19);
  const protocol_run_result run = run_protocol(positions, pm, cfg);
  EXPECT_EQ(run.outcome.num_nodes(), positions.size());
  EXPECT_GT(run.stats.drops, 0u);
}

TEST(ProtocolAgent, DuplicationIsIdempotent) {
  protocol_run_config cfg = reliable_config();
  cfg.channel.dup_prob = 0.5;
  cfg.seed = 6;
  const auto positions = geom::uniform_points(60, geom::bbox::rect(1200, 1200), 23);
  const protocol_run_result run = run_protocol(positions, pm, cfg);
  const algo::cbtc_result oracle = algo::run_cbtc(positions, pm, run.outcome.params);
  for (std::size_t u = 0; u < oracle.num_nodes(); ++u) {
    EXPECT_EQ(ids(run.outcome.nodes[u]), ids(oracle.nodes[u])) << "node " << u;
  }
}

TEST(ProtocolAgent, JitteredDeliveryStillMatchesOracle) {
  protocol_run_config cfg = reliable_config();
  cfg.channel.jitter_max = 0.05;  // well inside the 0.5 round timeout
  cfg.seed = 7;
  const auto positions = geom::uniform_points(50, geom::bbox::rect(1000, 1000), 29);
  const protocol_run_result run = run_protocol(positions, pm, cfg);
  const algo::cbtc_result oracle = algo::run_cbtc(positions, pm, run.outcome.params);
  for (std::size_t u = 0; u < oracle.num_nodes(); ++u) {
    EXPECT_EQ(ids(run.outcome.nodes[u]), ids(oracle.nodes[u])) << "node " << u;
  }
}

TEST(ProtocolAgent, DirectionNoiseKeepsConnectivity) {
  // Bounded AoA noise changes which cones look covered but, with the
  // symmetric closure, mild noise does not break connectivity in
  // practice (sensitivity knob for the substitution in DESIGN.md).
  protocol_run_config cfg = reliable_config();
  cfg.direction_noise = 0.02;
  cfg.seed = 8;
  const auto positions = geom::uniform_points(80, geom::bbox::rect(1500, 1500), 31);
  const protocol_run_result run = run_protocol(positions, pm, cfg);
  const auto gr = graph::build_max_power_graph(positions, pm.max_range());
  EXPECT_TRUE(graph::same_connectivity(run.outcome.symmetric_closure(), gr));
}

TEST(ProtocolAgent, MessageCountsScaleWithLevels) {
  const auto positions = geom::uniform_points(50, geom::bbox::rect(1200, 1200), 37);
  const protocol_run_result run = run_protocol(positions, pm, reliable_config());
  std::size_t total_levels = 0;
  for (const auto& n : run.outcome.nodes) total_levels += n.level_powers.size();
  EXPECT_EQ(run.stats.broadcasts, total_levels);  // one Hello per level
  EXPECT_GT(run.stats.unicasts, 0u);              // acks flowed
  EXPECT_GT(run.completion_time, 0.0);
}

TEST(ProtocolAgent, TwoIsolatedNodesFinish) {
  const std::vector<vec2> positions{{0, 0}, {5000, 5000}};
  const protocol_run_result run = run_protocol(positions, pm, reliable_config());
  for (const auto& n : run.outcome.nodes) {
    EXPECT_TRUE(n.boundary);
    EXPECT_TRUE(n.neighbors.empty());
  }
}

}  // namespace
}  // namespace cbtc::proto
