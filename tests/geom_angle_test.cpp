#include "geom/angle.h"

#include <gtest/gtest.h>

#include <array>
#include <random>
#include <vector>

namespace cbtc::geom {
namespace {

TEST(NormAngle, AlreadyNormalized) {
  EXPECT_DOUBLE_EQ(norm_angle(0.0), 0.0);
  EXPECT_DOUBLE_EQ(norm_angle(1.5), 1.5);
}

TEST(NormAngle, WrapsNegative) {
  EXPECT_NEAR(norm_angle(-pi / 2.0), 3.0 * pi / 2.0, 1e-12);
  EXPECT_NEAR(norm_angle(-two_pi - 0.5), two_pi - 0.5, 1e-12);
}

TEST(NormAngle, WrapsLarge) {
  EXPECT_NEAR(norm_angle(two_pi + 0.25), 0.25, 1e-12);
  EXPECT_NEAR(norm_angle(5.0 * two_pi + 1.0), 1.0, 1e-9);
}

TEST(NormAngle, ResultAlwaysInRange) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> u(-100.0, 100.0);
  for (int i = 0; i < 1000; ++i) {
    const double t = norm_angle(u(rng));
    EXPECT_GE(t, 0.0);
    EXPECT_LT(t, two_pi);
  }
}

TEST(AngleDiff, SignedShortestRotation) {
  EXPECT_NEAR(angle_diff(0.5, 0.25), 0.25, 1e-12);
  EXPECT_NEAR(angle_diff(0.25, 0.5), -0.25, 1e-12);
  // Across the wrap point.
  EXPECT_NEAR(angle_diff(0.1, two_pi - 0.1), 0.2, 1e-12);
  EXPECT_NEAR(angle_diff(two_pi - 0.1, 0.1), -0.2, 1e-12);
}

TEST(AngleDist, SymmetricAndBounded) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> u(-10.0, 10.0);
  for (int i = 0; i < 1000; ++i) {
    const double a = u(rng);
    const double b = u(rng);
    EXPECT_DOUBLE_EQ(angle_dist(a, b), angle_dist(b, a));
    EXPECT_LE(angle_dist(a, b), pi + 1e-12);
    EXPECT_GE(angle_dist(a, b), 0.0);
  }
}

TEST(AngleInCcwArc, BasicMembership) {
  EXPECT_TRUE(angle_in_ccw_arc(0.5, 0.0, 1.0));
  EXPECT_FALSE(angle_in_ccw_arc(1.5, 0.0, 1.0));
  EXPECT_TRUE(angle_in_ccw_arc(0.0, 0.0, 1.0));  // endpoints included
  EXPECT_TRUE(angle_in_ccw_arc(1.0, 0.0, 1.0));
}

TEST(AngleInCcwArc, WrappingArc) {
  // Arc from 3/2*pi counterclockwise to pi/2 passes through 0.
  EXPECT_TRUE(angle_in_ccw_arc(0.0, 3.0 * pi / 2.0, pi / 2.0));
  EXPECT_TRUE(angle_in_ccw_arc(two_pi - 0.1, 3.0 * pi / 2.0, pi / 2.0));
  EXPECT_FALSE(angle_in_ccw_arc(pi, 3.0 * pi / 2.0, pi / 2.0));
}

TEST(MaxCircularGap, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(max_circular_gap({}), two_pi);
  const std::array<double, 1> one{1.0};
  EXPECT_DOUBLE_EQ(max_circular_gap(one), two_pi);
}

TEST(MaxCircularGap, TwoOpposite) {
  const std::array<double, 2> dirs{0.0, pi};
  EXPECT_NEAR(max_circular_gap(dirs), pi, 1e-12);
}

TEST(MaxCircularGap, WrapAroundGapDetected) {
  // Directions huddled near 0: the wrap gap is nearly 2*pi.
  const std::array<double, 3> dirs{0.1, 0.2, 0.3};
  EXPECT_NEAR(max_circular_gap(dirs), two_pi - 0.2, 1e-12);
}

TEST(MaxCircularGap, UnsortedAndUnnormalizedInput) {
  const std::array<double, 3> dirs{pi + two_pi, -pi / 2.0, 0.0};
  // Normalized: {pi, 3*pi/2, 0} -> gaps pi, pi/2, pi/2.
  EXPECT_NEAR(max_circular_gap(dirs), pi, 1e-12);
}

TEST(MaxCircularGap, EvenSpreadHasEqualGaps) {
  std::vector<double> dirs;
  const int k = 8;
  for (int i = 0; i < k; ++i) dirs.push_back(two_pi * i / k);
  EXPECT_NEAR(max_circular_gap(dirs), two_pi / k, 1e-12);
}

TEST(HasAlphaGap, StrictComparison) {
  // Figure 1's gap test is strict: a gap of exactly alpha does not
  // count as an uncovered cone.
  std::vector<double> dirs;
  for (int i = 0; i < 3; ++i) dirs.push_back(two_pi * i / 3);
  const double gap = two_pi / 3;
  EXPECT_FALSE(has_alpha_gap(dirs, gap));
  EXPECT_TRUE(has_alpha_gap(dirs, gap - 1e-9));
}

TEST(HasAlphaGap, EmptyAlwaysGapped) {
  EXPECT_TRUE(has_alpha_gap({}, 5.0 * pi / 6.0));
  EXPECT_TRUE(has_alpha_gap({}, two_pi - 1e-9));
}

TEST(SortedNormalized, SortsAndNormalizes) {
  const std::array<double, 3> dirs{-0.5, two_pi + 0.25, 1.0};
  const std::vector<double> s = sorted_normalized(dirs);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_NEAR(s[0], 0.25, 1e-12);
  EXPECT_NEAR(s[1], 1.0, 1e-12);
  EXPECT_NEAR(s[2], two_pi - 0.5, 1e-12);
}

// Property: the max circular gap of n >= 2 random directions equals
// 2*pi minus the sum of the other gaps (gaps partition the circle).
TEST(MaxCircularGap, GapsPartitionCircleProperty) {
  std::mt19937_64 rng(23);
  std::uniform_real_distribution<double> u(0.0, two_pi);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> dirs;
    const int n = 2 + static_cast<int>(rng() % 20);
    for (int i = 0; i < n; ++i) dirs.push_back(u(rng));
    std::vector<double> s = sorted_normalized(dirs);
    double total = 0.0;
    for (std::size_t i = 0; i + 1 < s.size(); ++i) total += s[i + 1] - s[i];
    total += two_pi - s.back() + s.front();
    EXPECT_NEAR(total, two_pi, 1e-9);
    EXPECT_LE(max_circular_gap(dirs), total + 1e-9);
  }
}

}  // namespace
}  // namespace cbtc::geom
