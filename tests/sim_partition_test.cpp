// The partitioned dynamic engine's determinism contract: a dynamic
// run's report is bitwise-identical at every region count and every
// thread count — the single-queue canonical-tie simulator is the
// reference oracle, and regions {4, 16} x threads {1, 4} must
// reproduce it field for field, under uniform and lognormal-shadowed
// propagation, with boundary crossings (waypoint mobility across the
// region grid) and mid-run crashes/restarts in flight. Plus direct
// unit coverage of the conservative synchronizer itself: lookahead
// safety (no event created inside a phase below now + lookahead),
// parallel-phase telemetry, migration counting, and the per-region
// churn counters on the live index.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "api/api.h"
#include "geom/vec2.h"
#include "graph/live_index.h"
#include "sim/partition.h"
#include "sim/simulator.h"
#include "util/parallel.h"

namespace cbtc {
namespace {

using namespace cbtc::api;

/// Busy little field: waypoint mobility drags nodes across the region
/// grid while crashes and an explicit crash/restart pair flip liveness
/// mid-run.
scenario_spec partition_scenario() {
  scenario_spec spec;
  spec.deploy = {.kind = deployment_kind::uniform, .nodes = 28, .region_side = 1000.0};
  spec.base_seed = 77;
  spec.method = method_spec::protocol();
  spec.protocol.agent.round_timeout = 0.25;
  return spec;
}

sim_spec partition_sim() {
  sim_spec dyn;
  dyn.horizon = 30.0;
  dyn.settle = 8.0;
  dyn.sample_every = 2.0;
  dyn.beacons = {.interval = 1.0, .miss_limit = 3};
  dyn.mobility = {.kind = mobility_kind::random_waypoint,
                  .min_speed = 2.0,
                  .max_speed = 8.0,
                  .tick = 0.5,
                  .start = 9.0};
  dyn.failures = {.random_crashes = 2, .window_begin = 10.0, .window_end = 16.0};
  dyn.failures.events.push_back({.node = 3, .time = 12.0, .restart = false});
  dyn.failures.events.push_back({.node = 3, .time = 20.0, .restart = true});
  return dyn;
}

void expect_reports_identical(const dynamic_report& a, const dynamic_report& b) {
  EXPECT_EQ(a.final_topology, b.final_topology);
  EXPECT_EQ(a.initial_connectivity_ok, b.initial_connectivity_ok);
  EXPECT_EQ(a.final_connectivity_ok, b.final_connectivity_ok);
  EXPECT_EQ(a.disruptions, b.disruptions);
  EXPECT_EQ(a.unrepaired, b.unrepaired);
  EXPECT_EQ(a.repair_latency_mean, b.repair_latency_mean);  // bitwise: no tolerance
  EXPECT_EQ(a.repair_latency_max, b.repair_latency_max);
  EXPECT_EQ(a.field_disruptions, b.field_disruptions);
  EXPECT_EQ(a.field_downtime, b.field_downtime);
  EXPECT_EQ(a.partitioned, b.partitioned);
  EXPECT_EQ(a.time_to_partition, b.time_to_partition);
  EXPECT_EQ(a.joins, b.joins);
  EXPECT_EQ(a.leaves, b.leaves);
  EXPECT_EQ(a.achanges, b.achanges);
  EXPECT_EQ(a.regrows, b.regrows);
  EXPECT_EQ(a.prunes, b.prunes);
  EXPECT_EQ(a.channel.broadcasts, b.channel.broadcasts);
  EXPECT_EQ(a.channel.unicasts, b.channel.unicasts);
  EXPECT_EQ(a.channel.deliveries, b.channel.deliveries);
  EXPECT_EQ(a.channel.drops, b.channel.drops);
  EXPECT_EQ(a.channel.tx_energy, b.channel.tx_energy);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].edges, b.samples[i].edges) << "sample " << i;
    EXPECT_EQ(a.samples[i].avg_degree, b.samples[i].avg_degree) << "sample " << i;
    EXPECT_EQ(a.samples[i].avg_radius, b.samples[i].avg_radius) << "sample " << i;
    EXPECT_EQ(a.samples[i].connectivity_ok, b.samples[i].connectivity_ok) << "sample " << i;
    EXPECT_EQ(a.samples[i].field_connected, b.samples[i].field_connected) << "sample " << i;
  }
}

TEST(SimPartition, ReportBitwiseIdenticalAcrossRegionAndThreadCounts) {
  scenario_spec spec = partition_scenario();
  sim_spec dyn = partition_sim();
  const engine eng;

  for (const bool shadowed : {false, true}) {
    spec.radio.propagation =
        shadowed ? propagation_spec{.kind = radio::propagation_kind::lognormal_shadowing,
                                    .sigma_db = 3.0,
                                    .clamp_db = 6.0}
                 : propagation_spec{};

    // regions = 1 forces the single-queue reference engine.
    spec.cbtc.intra_threads = 1;
    dyn.partition.regions = 1;
    const dynamic_report reference = eng.run_dynamic(spec, dyn, 5);

    for (const std::uint32_t regions : {4u, 16u}) {
      for (const unsigned threads : {1u, 4u}) {
        spec.cbtc.intra_threads = threads;
        dyn.partition.regions = regions;
        const dynamic_report partitioned = eng.run_dynamic(spec, dyn, 5);
        SCOPED_TRACE(::testing::Message() << "shadowed=" << shadowed << " regions=" << regions
                                          << " threads=" << threads);
        expect_reports_identical(reference, partitioned);
      }
    }
  }
}

/// Every registered dynamic preset must reproduce its serial report
/// bitwise when forced onto the partitioned engine (the presets cover
/// crash-recovery, attrition, shadowing, and obstacle fields; the
/// draw-free gate may route some to the reference path — identity must
/// hold either way).
TEST(SimPartition, EveryDynamicPresetBitwiseIdenticalPartitioned) {
  const engine eng;
  for (const std::string& name : dynamic_scenario_names()) {
    dynamic_scenario preset = get_dynamic_scenario(name);
    preset.scenario.cbtc.intra_threads = 1;
    preset.sim.partition.regions = 1;
    const dynamic_report serial = eng.run_dynamic(preset.scenario, preset.sim, 0);
    preset.scenario.cbtc.intra_threads = 4;
    preset.sim.partition.regions = 16;
    const dynamic_report partitioned = eng.run_dynamic(preset.scenario, preset.sim, 0);
    SCOPED_TRACE(::testing::Message() << "preset " << name);
    expect_reports_identical(serial, partitioned);
  }
}

/// Auto mode (regions = 0) below the node threshold must run the
/// serial reference — same report as an explicit regions = 1 run.
TEST(SimPartition, AutoModeBelowThresholdMatchesSerialReference) {
  scenario_spec spec = partition_scenario();
  sim_spec dyn = partition_sim();
  const engine eng;

  dyn.partition.regions = 1;
  const dynamic_report serial = eng.run_dynamic(spec, dyn, 9);
  dyn.partition.regions = 0;  // auto; 28 nodes < min_nodes => serial
  const dynamic_report automatic = eng.run_dynamic(spec, dyn, 9);
  expect_reports_identical(serial, automatic);
}

/// Direct conservative-sync coverage: handlers fan across regions on a
/// real pool, self-schedule same-instant retries, and send deliveries
/// exactly one lookahead ahead. No event may be created inside a phase
/// below now + lookahead (violations == 0), and the phase/lane
/// telemetry must add up.
TEST(SimPartition, LookaheadSafetyAndPhaseTelemetry) {
  constexpr double delta = 0.01;
  constexpr std::uint32_t kRegions = 4;
  constexpr std::size_t kNodes = 8;  // two per region
  util::thread_pool pool(4);
  sim::partitioned_simulator psim(
      kNodes, {.regions = kRegions, .lookahead = delta, .pool = &pool, .serial_batch_limit = 0});
  for (graph::node_id u = 0; u < kNodes; ++u) {
    psim.set_region(u, static_cast<std::uint32_t>(u % kRegions));
  }
  EXPECT_EQ(psim.stats().migrations, 6u);  // every u with u % 4 != 0 left region 0

  std::vector<std::uint64_t> fired(kNodes, 0);
  std::vector<std::uint64_t> tx_seq(kNodes, 0);
  std::uint64_t retries = 0;

  // Every node ping-pongs a delivery to the node two regions over,
  // re-arming itself for a bounded number of rounds; the first firing
  // also self-schedules a same-instant retry (the stagger pattern).
  std::function<void(graph::node_id, std::size_t)> arm = [&](graph::node_id self,
                                                             std::size_t rounds) {
    psim.schedule_node(psim.now() + delta, self, [&, self, rounds] {
      ++fired[self];
      if (fired[self] == 1) {
        psim.schedule_node(psim.now(), self, [&] { ++retries; });
      }
      const auto peer = static_cast<graph::node_id>((self + 2) % kNodes);
      psim.schedule_delivery(psim.now() + delta, peer, self, tx_seq[self]++, 0,
                             [&, peer] { ++fired[peer]; });
      if (rounds > 1) arm(self, rounds - 1);
    });
  };
  for (graph::node_id u = 0; u < kNodes; ++u) arm(u, 20);
  psim.run_until(1.0);

  const sim::partition_stats& st = psim.stats();
  EXPECT_EQ(st.violations, 0u);
  EXPECT_GT(st.parallel_events, 0u);
  EXPECT_GT(st.parallel_phases, 0u);
  EXPECT_GT(st.instants, 0u);
  EXPECT_TRUE(psim.idle());
  std::uint64_t lane_total = 0;
  for (const std::uint64_t n : psim.region_events()) lane_total += n;
  EXPECT_EQ(lane_total, st.parallel_events);
  EXPECT_EQ(psim.events_processed(), st.parallel_events + st.serial_events);
  for (graph::node_id u = 0; u < kNodes; ++u) {
    EXPECT_EQ(fired[u], 40u) << "node " << u;  // 20 timer firings + 20 deliveries
  }
  EXPECT_EQ(retries, kNodes);
}

/// The canonical tie policy orders same-time events by their typed
/// keys (class, then owner), independent of insertion order; fifo
/// preserves insertion order. Both on the serial simulator.
TEST(SimPartition, SerialSimulatorTiePolicies) {
  std::vector<int> order;
  {
    sim::simulator s(sim::tie_policy::canonical);
    s.schedule_delivery(1.0, /*to=*/5, /*from=*/0, 0, 0, [&] { order.push_back(2); });
    s.schedule_node(1.0, /*owner=*/9, [&] { order.push_back(1); });
    s.schedule_at(1.0, [&] { order.push_back(0); });
    s.run_until(2.0);
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));  // class 0 < class 1 < class 2

  order.clear();
  {
    sim::simulator s;  // fifo: insertion order at equal times
    s.schedule_delivery(1.0, 5, 0, 0, 0, [&] { order.push_back(0); });
    s.schedule_node(1.0, 9, [&] { order.push_back(1); });
    s.schedule_at(1.0, [&] { order.push_back(2); });
    s.run_until(2.0);
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

/// Per-region churn telemetry on the live index: every move / erase /
/// insert of a live node is charged to its current region.
TEST(SimPartition, LiveIndexRegionChurnCounters) {
  const std::vector<geom::vec2> positions = {{0, 0}, {10, 0}, {500, 500}, {510, 500}};
  graph::live_neighbor_index index(positions, 50.0);
  index.set_region_map({0, 0, 1, 1}, 2);

  index.move(0, {1, 0});
  index.move(2, {501, 500});
  index.move(2, {502, 500});
  index.erase(3);
  index.move(3, {511, 500});  // down: not charged
  index.insert(3, {511, 500});

  ASSERT_EQ(index.region_churn().size(), 2u);
  EXPECT_EQ(index.region_churn()[0], 1u);
  EXPECT_EQ(index.region_churn()[1], 4u);

  index.set_node_region(0, 1);  // migrated: next churn lands in region 1
  index.move(0, {2, 0});
  EXPECT_EQ(index.region_churn()[0], 1u);
  EXPECT_EQ(index.region_churn()[1], 5u);
}

}  // namespace
}  // namespace cbtc
