// Cross-model preservation battery for the gain-aware removal pass:
// randomized fields x {isotropic, shadowing, obstacles}, asserting the
// paper's desiderata (subgraph of G_R, connectivity preservation,
// bounded power), drop-set dominance over Theorem 3.6 under isotropic
// propagation, bitwise determinism across pool widths, and bounded
// power stretch. Runs under the full ASan/UBSan suite and is listed in
// the TSan job's regex (it drives multi-width pools).
#include "algo/gain_removal.h"

#include <gtest/gtest.h>

#include <vector>

#include "algo/analysis.h"
#include "algo/pairwise.h"
#include "algo/pipeline.h"
#include "geom/random_points.h"
#include "graph/euclidean.h"
#include "graph/metrics.h"
#include "graph/traversal.h"
#include "radio/power_model.h"
#include "util/parallel.h"

namespace cbtc::algo {
namespace {

using geom::vec2;

const radio::power_model pm(2.0, 500.0);

/// The three propagation regimes of the radio layer, at paper-like
/// field scale (1500 x 1500, R = 500).
std::vector<std::pair<std::string, radio::link_model>> all_links(std::uint64_t seed) {
  std::vector<std::pair<std::string, radio::link_model>> links;
  links.emplace_back("isotropic", radio::link_model(pm));
  links.emplace_back(
      "shadowing",
      radio::link_model(pm, radio::propagation_model::lognormal_shadowing(4.0, 8.0, seed)));
  links.emplace_back(
      "obstacles",
      radio::link_model(pm, radio::propagation_model::obstacle_field({
                                {.box = {{300.0, 300.0}, {700.0, 650.0}}, .loss_db = 9.0},
                                {.box = {{900.0, 800.0}, {1300.0, 1200.0}}, .loss_db = 9.0},
                            })));
  return links;
}

std::vector<vec2> field(std::size_t n, std::uint64_t seed) {
  return geom::uniform_points(n, geom::bbox::rect(1500.0, 1500.0), seed);
}

/// Growth + shrink-back topology (no op3): the input every removal
/// pass in these tests prunes.
graph::undirected_graph grown_topology(std::span<const vec2> positions,
                                       const radio::link_model& link) {
  cbtc_params params;
  params.mode = growth_mode::continuous;
  return build_topology(positions, link, params, {.shrink_back = true}).topology;
}

// ------------------------------------------------------- gain_edge_id

TEST(GainEdgeId, OrderedByPowerThenIds) {
  const std::vector<vec2> pts{{0, 0}, {10, 0}, {0, 20}, {-10, 0}};
  const radio::link_model link(pm);
  const gain_edge_id cheap = gain_edge_id::of(0, 1, pts, link);
  const gain_edge_id dear = gain_edge_id::of(0, 2, pts, link);
  EXPECT_LT(cheap, dear);
  // Equal power (same length, isotropic): ids break the tie.
  const gain_edge_id tie = gain_edge_id::of(0, 3, pts, link);
  EXPECT_LT(cheap, tie);
  // Bitwise symmetric from both endpoints.
  EXPECT_EQ(cheap, gain_edge_id::of(1, 0, pts, link));
}

TEST(GainEdgeId, NonIsotropicReordersEdges) {
  // A wall across the short link makes it cost more than the long one.
  const std::vector<vec2> pts{{0, 0}, {100, 0}, {0, 300}};
  const radio::link_model wall(
      pm, radio::propagation_model::obstacle_field(
              {{.box = {{40.0, -10.0}, {60.0, 10.0}}, .loss_db = 20.0}}));
  EXPECT_LT(gain_edge_id::of(0, 2, pts, wall), gain_edge_id::of(0, 1, pts, wall));
}

// ----------------------------------------- preservation across models

TEST(GainRemoval, PreservesInvariantsAcrossModels) {
  util::thread_pool pool(4);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const std::vector<vec2> positions = field(90, seed);
    for (const auto& [name, link] : all_links(seed)) {
      const graph::undirected_graph g = grown_topology(positions, link);
      const graph::undirected_graph c = graph::build_max_power_graph(positions, link, pool);
      for (const bool remove_all : {false, true}) {
        const gain_removal_result res =
            apply_gain_aware_removal(g, c, positions, link, {.remove_all = remove_all}, pool);
        const invariant_report inv = check_invariants(res.topology, positions, link, c, pool);
        EXPECT_TRUE(inv.ok()) << name << " seed " << seed << " remove_all " << remove_all << ": "
                              << (inv.violations.empty() ? "" : inv.violations.front());
        // The pass only filters g's edge set (plus repair re-adds).
        EXPECT_EQ(res.topology.num_edges(), g.num_edges() - res.removed_edges);
        EXPECT_LE(res.removed_edges, res.redundant_edges);
        // Empirical on these fields: the repair pass never fires (the
        // drop set is already connectivity-safe). If a new seed ever
        // trips this, the pass still preserved connectivity above —
        // this assertion documents that restores are the exception.
        EXPECT_EQ(res.restored_edges, 0u) << name << " seed " << seed;
      }
    }
  }
}

// --------------------------------- isotropic dominance of Theorem 3.6

TEST(GainRemoval, IsotropicDropSetDominatesPairwise) {
  util::thread_pool pool(2);
  const radio::link_model link(pm);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const std::vector<vec2> positions = field(100, seed);
    const graph::undirected_graph g = grown_topology(positions, link);
    for (const bool remove_all : {false, true}) {
      const pairwise_result pw =
          apply_pairwise_removal(g, positions, {.remove_all = remove_all}, pool);
      const gain_removal_result ga =
          apply_gain_aware_removal(g, positions, link, {.remove_all = remove_all}, pool);
      EXPECT_GE(ga.redundant_edges, pw.redundant_edges) << "seed " << seed;
      EXPECT_GE(ga.removed_edges, pw.removed_edges) << "seed " << seed;
      // Superset of the drop set == subset of the kept set.
      for (const graph::edge e : ga.topology.edges()) {
        EXPECT_TRUE(pw.topology.has_edge(e.u, e.v))
            << "seed " << seed << ": gain-aware kept {" << e.u << "," << e.v
            << "} which Theorem 3.6 removed";
      }
    }
  }
}

// ------------------------------------------------ determinism by width

TEST(GainRemoval, BitwiseDeterministicAcrossPoolWidths) {
  for (std::uint64_t seed = 2; seed <= 3; ++seed) {
    const std::vector<vec2> positions = field(110, seed);
    for (const auto& [name, link] : all_links(seed)) {
      const graph::undirected_graph g = grown_topology(positions, link);
      util::thread_pool one(1);
      const gain_removal_result ref = apply_gain_aware_removal(g, positions, link, {}, one);
      for (const unsigned width : {3u, 8u}) {
        util::thread_pool pool(width);
        const gain_removal_result got = apply_gain_aware_removal(g, positions, link, {}, pool);
        EXPECT_TRUE(got.topology == ref.topology) << name << " width " << width;
        EXPECT_EQ(got.redundant_edges, ref.redundant_edges) << name << " width " << width;
        EXPECT_EQ(got.removed_edges, ref.removed_edges) << name << " width " << width;
        EXPECT_EQ(got.restored_edges, ref.restored_edges) << name << " width " << width;
      }
    }
  }
}

// ------------------------------------------------ power-stretch bound

TEST(GainRemoval, PowerStretchStaysBounded) {
  util::thread_pool pool(2);
  const radio::link_model link(pm);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const std::vector<vec2> positions = field(100, seed);
    const graph::undirected_graph g = grown_topology(positions, link);
    const gain_removal_result res = apply_gain_aware_removal(g, positions, link, {}, pool);
    const graph::stretch_stats st =
        graph::power_stretch(res.topology, g, positions, 2.0, positions.size());
    EXPECT_GE(st.mean, 1.0) << "seed " << seed;
    // Every dropped edge has a strictly cheaper 2-hop detour and the
    // radius gate caps per-node budgets, so sampled minimum-energy
    // routes stay within a small factor of the un-pruned topology.
    EXPECT_LE(st.max, 8.0) << "seed " << seed;
    EXPECT_GT(st.pairs, 0u) << "seed " << seed;
  }
}

// -------------------------------------------------------- edge cases

TEST(GainRemoval, CoincidentNodesNeverDropZeroPowerEdges) {
  const std::vector<vec2> pts{{0, 0}, {0, 0}, {10, 0}, {5, 1}};
  const radio::link_model link(pm);
  graph::undirected_graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  g.add_edge(2, 3);
  const gain_removal_result res = apply_gain_aware_removal(g, pts, link, {.remove_all = true});
  EXPECT_TRUE(res.topology.has_edge(0, 1));
  const invariant_report inv = check_invariants(res.topology, pts, pm.max_range(), 1);
  EXPECT_TRUE(inv.connectivity_preserved);
}

TEST(GainRemoval, EmptyAndSingletonGraphs) {
  const radio::link_model link(pm);
  const graph::undirected_graph empty(0);
  const std::vector<vec2> none;
  EXPECT_EQ(apply_gain_aware_removal(empty, none, link, {}).removed_edges, 0u);
  const graph::undirected_graph lone(1);
  const std::vector<vec2> one{{0, 0}};
  const gain_removal_result res = apply_gain_aware_removal(lone, one, link, {});
  EXPECT_EQ(res.topology.num_nodes(), 1u);
  EXPECT_EQ(res.topology.num_edges(), 0u);
}

TEST(GainRemoval, DeeperWitnessSearchDropsAtLeastAsMuch) {
  util::thread_pool pool(2);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const std::vector<vec2> positions = field(90, seed);
    for (const auto& [name, link] : all_links(seed)) {
      const graph::undirected_graph g = grown_topology(positions, link);
      const gain_removal_result two =
          apply_gain_aware_removal(g, positions, link, {.max_witness_hops = 2}, pool);
      const gain_removal_result four =
          apply_gain_aware_removal(g, positions, link, {.max_witness_hops = 4}, pool);
      EXPECT_GE(four.redundant_edges, two.redundant_edges) << name << " seed " << seed;
      const graph::undirected_graph c = graph::build_max_power_graph(positions, link, pool);
      EXPECT_TRUE(check_invariants(four.topology, positions, link, c, pool).ok())
          << name << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace cbtc::algo
