#include "algo/oracle.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geom/angle.h"
#include "geom/random_points.h"
#include "graph/euclidean.h"
#include "graph/traversal.h"
#include "radio/power_model.h"

namespace cbtc::algo {
namespace {

using geom::pi;
using geom::vec2;

const radio::power_model pm(2.0, 500.0);

TEST(Oracle, EmptyNetwork) {
  const cbtc_result r = run_cbtc({}, pm, {});
  EXPECT_EQ(r.num_nodes(), 0u);
}

TEST(Oracle, InvalidParamsThrow) {
  const std::vector<vec2> pts{{0, 0}};
  cbtc_params p;
  p.alpha = 0.0;
  EXPECT_THROW(run_cbtc(pts, pm, p), std::invalid_argument);
  p.alpha = geom::two_pi;
  EXPECT_THROW(run_cbtc(pts, pm, p), std::invalid_argument);
  p = {};
  p.increase_factor = 1.0;
  EXPECT_THROW(run_cbtc(pts, pm, p), std::invalid_argument);
}

TEST(Oracle, IsolatedNodeIsBoundaryAtMaxPower) {
  const std::vector<vec2> pts{{0, 0}, {5000, 5000}};
  for (growth_mode mode : {growth_mode::discrete, growth_mode::continuous}) {
    cbtc_params p;
    p.mode = mode;
    const cbtc_result r = run_cbtc(pts, pm, p);
    for (const node_result& n : r.nodes) {
      EXPECT_TRUE(n.boundary);
      EXPECT_TRUE(n.neighbors.empty());
      EXPECT_DOUBLE_EQ(n.final_power, pm.max_power());
    }
  }
}

TEST(Oracle, TwoNodesDiscoverEachOther) {
  const std::vector<vec2> pts{{0, 0}, {100, 0}};
  const cbtc_result r = run_cbtc(pts, pm, {});
  // Two nodes can never close every 5*pi/6 cone: both are boundary and
  // reach max power, but they do find each other.
  ASSERT_EQ(r.nodes[0].neighbors.size(), 1u);
  EXPECT_EQ(r.nodes[0].neighbors[0].id, 1u);
  EXPECT_TRUE(r.nodes[0].boundary);
  EXPECT_NEAR(r.nodes[0].neighbors[0].distance, 100.0, 1e-9);
  EXPECT_NEAR(r.nodes[0].neighbors[0].direction, 0.0, 1e-12);
  EXPECT_NEAR(r.nodes[1].neighbors[0].direction, pi, 1e-12);
  EXPECT_TRUE(r.symmetric_closure().has_edge(0, 1));
  EXPECT_TRUE(r.symmetric_core().has_edge(0, 1));
}

TEST(Oracle, SurroundedNodeStopsEarlyDiscrete) {
  // A center node ringed by 6 close nodes at distance 60 has no
  // alpha-gap long before max power.
  std::vector<vec2> pts{{0, 0}};
  for (int i = 0; i < 6; ++i) pts.push_back(geom::polar({0, 0}, 60.0, i * pi / 3.0));
  cbtc_params p;  // discrete doubling from p(500/16)
  const cbtc_result r = run_cbtc(pts, pm, p);
  const node_result& center = r.nodes[0];
  EXPECT_FALSE(center.boundary);
  EXPECT_EQ(center.neighbors.size(), 6u);
  EXPECT_LT(center.final_power, pm.max_power());
  // Discrete doubling: final power is one of the level powers and at
  // most a factor-2 overshoot of p(60).
  EXPECT_GE(center.final_power, pm.required_power(60.0));
  EXPECT_LE(center.final_power, 2.0 * pm.required_power(60.0));
}

TEST(Oracle, ContinuousModeStopsAtExactPower) {
  std::vector<vec2> pts{{0, 0}};
  for (int i = 0; i < 6; ++i) pts.push_back(geom::polar({0, 0}, 60.0 + i, i * pi / 3.0));
  cbtc_params p;
  p.mode = growth_mode::continuous;
  const cbtc_result r = run_cbtc(pts, pm, p);
  const node_result& center = r.nodes[0];
  EXPECT_FALSE(center.boundary);
  // Continuous growth stops at exactly the power reaching the last
  // neighbor needed for coverage. Ring nodes sit at 60..65 at 60-degree
  // spacing; after the first five (distances 60..64) the largest gap is
  // 120 degrees < alpha, so the 65-distance node is never needed.
  EXPECT_NEAR(center.final_power, pm.required_power(64.0), 1e-6);
  EXPECT_EQ(center.neighbors.size(), 5u);
}

TEST(Oracle, DiscreteNeighborsAreAllNodesWithinFinalRadius) {
  // The Figure 1 loop absorbs *everyone* discovered en route, not just
  // the nodes needed for coverage.
  std::vector<vec2> pts{{0, 0}};
  for (int i = 0; i < 6; ++i) pts.push_back(geom::polar({0, 0}, 60.0, i * pi / 3.0));
  pts.push_back({70.0, 5.0});  // extra node inside the final radius
  const cbtc_result r = run_cbtc(pts, pm, {});
  const node_result& center = r.nodes[0];
  const double final_radius = pm.range(center.final_power);
  std::size_t within = 0;
  for (std::size_t v = 1; v < pts.size(); ++v) {
    if (pts[v].norm() <= final_radius) ++within;
  }
  EXPECT_EQ(center.neighbors.size(), within);
}

TEST(Oracle, LevelPowersGrowByFactor) {
  const std::vector<vec2> pts = geom::uniform_points(60, geom::bbox::rect(1500, 1500), 5);
  cbtc_params p;
  p.increase_factor = 2.0;
  const cbtc_result r = run_cbtc(pts, pm, p);
  for (const node_result& n : r.nodes) {
    ASSERT_FALSE(n.level_powers.empty());
    for (std::size_t i = 0; i + 1 < n.level_powers.size(); ++i) {
      // Each level doubles, except the last which may clamp at P.
      if (i + 2 == n.level_powers.size()) {
        EXPECT_LE(n.level_powers[i + 1], 2.0 * n.level_powers[i] + 1e-9);
      } else {
        EXPECT_NEAR(n.level_powers[i + 1], 2.0 * n.level_powers[i], 1e-6);
      }
      EXPECT_GT(n.level_powers[i + 1], n.level_powers[i]);
    }
    EXPECT_LE(n.final_power, pm.max_power());
  }
}

TEST(Oracle, NeighborLevelsMatchLevelPowers) {
  const std::vector<vec2> pts = geom::uniform_points(80, geom::bbox::rect(1500, 1500), 9);
  const cbtc_result r = run_cbtc(pts, pm, {});
  for (const node_result& n : r.nodes) {
    for (const neighbor_record& rec : n.neighbors) {
      ASSERT_LT(rec.level, n.level_powers.size());
      EXPECT_DOUBLE_EQ(rec.discovery_power, n.level_powers[rec.level]);
      // The neighbor is reachable at its discovery level…
      EXPECT_LE(pm.required_power(rec.distance), rec.discovery_power + 1e-9);
      // …but not at the previous level (it would have been found earlier).
      if (rec.level > 0) {
        EXPECT_GT(pm.required_power(rec.distance), n.level_powers[rec.level - 1] - 1e-9);
      }
    }
  }
}

TEST(Oracle, BoundaryNodesBroadcastAtMaxPower) {
  const std::vector<vec2> pts = geom::uniform_points(100, geom::bbox::rect(1500, 1500), 3);
  const cbtc_result r = run_cbtc(pts, pm, {});
  for (const node_result& n : r.nodes) {
    if (n.boundary) {
      EXPECT_DOUBLE_EQ(n.final_power, pm.max_power());
    } else {
      EXPECT_FALSE(geom::has_alpha_gap(n.directions(), r.params.alpha));
    }
  }
  // In a 1500x1500 field with R=500, nodes near the border always have
  // an uncovered outward cone: boundary nodes must exist.
  EXPECT_GT(r.boundary_count(), 0u);
}

TEST(Oracle, SmallerAlphaNeedsMorePower) {
  const std::vector<vec2> pts = geom::uniform_points(100, geom::bbox::rect(1500, 1500), 17);
  cbtc_params narrow, wide;
  narrow.alpha = alpha_two_pi_three;
  wide.alpha = alpha_five_pi_six;
  const cbtc_result rn = run_cbtc(pts, pm, narrow);
  const cbtc_result rw = run_cbtc(pts, pm, wide);
  // Per node: covering narrower cones can only require equal-or-more
  // power (the paper: p_{u,5pi/6} <= p_{u,2pi/3}).
  for (std::size_t u = 0; u < pts.size(); ++u) {
    EXPECT_LE(rw.nodes[u].final_power, rn.nodes[u].final_power + 1e-9);
  }
}

TEST(Oracle, SymmetricClosurePreservesConnectivityOnPaperWorkload) {
  const std::vector<vec2> pts = geom::uniform_points(100, geom::bbox::rect(1500, 1500), 23);
  const graph::undirected_graph gr = graph::build_max_power_graph(pts, pm.max_range());
  for (growth_mode mode : {growth_mode::discrete, growth_mode::continuous}) {
    cbtc_params p;
    p.mode = mode;
    const cbtc_result r = run_cbtc(pts, pm, p);
    EXPECT_TRUE(graph::same_connectivity(r.symmetric_closure(), gr));
  }
}

TEST(Oracle, NeighborsSortedByDistance) {
  const std::vector<vec2> pts = geom::uniform_points(50, geom::bbox::rect(800, 800), 31);
  const cbtc_result r = run_cbtc(pts, pm, {});
  for (const node_result& n : r.nodes) {
    for (std::size_t i = 0; i + 1 < n.neighbors.size(); ++i) {
      EXPECT_LE(n.neighbors[i].distance, n.neighbors[i + 1].distance);
    }
  }
}

TEST(Oracle, OutRadiusMatchesFarthestNeighbor) {
  const std::vector<vec2> pts = geom::uniform_points(50, geom::bbox::rect(800, 800), 37);
  const cbtc_result r = run_cbtc(pts, pm, {});
  for (const node_result& n : r.nodes) {
    if (n.neighbors.empty()) {
      EXPECT_DOUBLE_EQ(n.out_radius(), 0.0);
    } else {
      EXPECT_DOUBLE_EQ(n.out_radius(), n.neighbors.back().distance);
      EXPECT_LE(pm.required_power(n.out_radius()), n.final_power + 1e-9);
    }
  }
}

TEST(Oracle, InitialPowerRespected) {
  const std::vector<vec2> pts{{0, 0}, {10, 0}, {-10, 5}, {0, -12}};
  cbtc_params p;
  p.initial_power = pm.required_power(100.0);
  const cbtc_result r = run_cbtc(pts, pm, p);
  // First level = Increase(p0) = 2 * p(100).
  ASSERT_FALSE(r.nodes[0].level_powers.empty());
  EXPECT_DOUBLE_EQ(r.nodes[0].level_powers[0], 2.0 * pm.required_power(100.0));
}

TEST(Oracle, KnowsLookup) {
  const std::vector<vec2> pts{{0, 0}, {50, 0}};
  const cbtc_result r = run_cbtc(pts, pm, {});
  EXPECT_TRUE(r.nodes[0].knows(1));
  EXPECT_FALSE(r.nodes[0].knows(0));
  EXPECT_FALSE(r.nodes[0].knows(99));
}

}  // namespace
}  // namespace cbtc::algo
