#include "geom/spatial_grid.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "geom/random_points.h"

namespace cbtc::geom {
namespace {

std::vector<point_index> sorted(std::vector<point_index> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(SpatialGrid, EmptyInput) {
  const spatial_grid grid(std::vector<vec2>{}, 10.0);
  EXPECT_EQ(grid.size(), 0u);
  EXPECT_TRUE(grid.query_radius({0, 0}, 100.0).empty());
}

TEST(SpatialGrid, RejectsNonPositiveCellSize) {
  const std::vector<vec2> pts{{0, 0}};
  EXPECT_THROW(spatial_grid(pts, 0.0), std::invalid_argument);
  EXPECT_THROW(spatial_grid(pts, -1.0), std::invalid_argument);
}

TEST(SpatialGrid, SinglePoint) {
  const std::vector<vec2> pts{{5.0, 5.0}};
  const spatial_grid grid(pts, 1.0);
  EXPECT_EQ(grid.query_radius({5.0, 5.0}, 0.1), std::vector<point_index>{0});
  EXPECT_TRUE(grid.query_radius({50.0, 50.0}, 1.0).empty());
}

TEST(SpatialGrid, BoundaryInclusive) {
  const std::vector<vec2> pts{{0.0, 0.0}, {3.0, 4.0}};
  const spatial_grid grid(pts, 2.0);
  // Distance exactly 5: included (<= semantics, matching p(d) <= p).
  const auto res = grid.query_radius({0.0, 0.0}, 5.0, 0);
  EXPECT_EQ(res, std::vector<point_index>{1});
  EXPECT_TRUE(grid.query_radius({0.0, 0.0}, 4.999, 0).empty());
}

TEST(SpatialGrid, ExcludeParameter) {
  const std::vector<vec2> pts{{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}};
  const spatial_grid grid(pts, 1.0);
  const auto with = sorted(grid.query_radius({0.0, 0.0}, 2.0));
  EXPECT_EQ(with, (std::vector<point_index>{0, 1, 2}));
  const auto without = sorted(grid.query_radius({0.0, 0.0}, 2.0, 0));
  EXPECT_EQ(without, (std::vector<point_index>{1, 2}));
}

TEST(SpatialGrid, NegativeRadiusFindsNothing) {
  const std::vector<vec2> pts{{0.0, 0.0}};
  const spatial_grid grid(pts, 1.0);
  EXPECT_TRUE(grid.query_radius({0.0, 0.0}, -1.0).empty());
}

TEST(SpatialGrid, CoincidentPoints) {
  const std::vector<vec2> pts{{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}};
  const spatial_grid grid(pts, 1.0);
  EXPECT_EQ(grid.query_radius({1.0, 1.0}, 0.0).size(), 3u);
}

TEST(SpatialGrid, QueryOutsideBounds) {
  const std::vector<vec2> pts{{0.0, 0.0}, {10.0, 10.0}};
  const spatial_grid grid(pts, 5.0);
  // d((-100,-100),(0,0)) ~ 141.4; d to (10,10) ~ 155.6.
  EXPECT_EQ(grid.query_radius({-100.0, -100.0}, 150.0).size(), 1u);
  EXPECT_EQ(grid.query_radius({-100.0, -100.0}, 160.0).size(), 2u);
}

// Property: grid query == brute force on random clouds, across radii,
// cell sizes, and query centers (including off-grid centers).
struct grid_case {
  std::uint64_t seed;
  double cell;
};

class SpatialGridProperty : public ::testing::TestWithParam<grid_case> {};

TEST_P(SpatialGridProperty, MatchesBruteForce) {
  const auto [seed, cell] = GetParam();
  const bbox region = bbox::rect(1000.0, 800.0);
  const std::vector<vec2> pts = uniform_points(300, region, seed);
  const spatial_grid grid(pts, cell);

  std::mt19937_64 rng(seed ^ 0x9e3779b9);
  std::uniform_real_distribution<double> ux(-100.0, 1100.0);
  std::uniform_real_distribution<double> uy(-100.0, 900.0);
  std::uniform_real_distribution<double> ur(0.0, 400.0);
  for (int q = 0; q < 50; ++q) {
    const vec2 center{ux(rng), uy(rng)};
    const double radius = ur(rng);
    const auto expected = sorted(brute_force_radius_query(pts, center, radius));
    const auto actual = sorted(grid.query_radius(center, radius));
    ASSERT_EQ(actual, expected) << "seed=" << seed << " cell=" << cell << " r=" << radius;
  }
}

INSTANTIATE_TEST_SUITE_P(Cells, SpatialGridProperty,
                         ::testing::Values(grid_case{1, 10.0}, grid_case{2, 50.0},
                                           grid_case{3, 123.0}, grid_case{4, 500.0},
                                           grid_case{5, 2000.0}, grid_case{6, 33.3}));

TEST(SpatialGrid, QueryRadiusIntoAppends) {
  const std::vector<vec2> pts{{0.0, 0.0}, {1.0, 0.0}};
  const spatial_grid grid(pts, 1.0);
  std::vector<point_index> out{99};
  grid.query_radius_into({0.0, 0.0}, 10.0, spatial_grid::npos, out);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 99u);
}

}  // namespace
}  // namespace cbtc::geom
