// The named-scenario registry: built-ins resolve, registration is one
// call, unknown names fail loudly.
#include <gtest/gtest.h>

#include <algorithm>
#include <initializer_list>

#include "api/api.h"

namespace cbtc::api {
namespace {

TEST(ApiRegistry, BuiltInsArePresent) {
  const auto names = scenario_names();
  for (const char* expected : {"paper_table1", "paper_basic", "paper_protocol", "figure6",
                               "dense_sensor_field", "sparse_adhoc", "grid_mesh", "shadowed_field",
                               "urban_obstacles", "shadowed_field_stc", "urban_obstacles_stc"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), expected) != names.end())
        << "missing built-in scenario: " << expected;
  }
}

TEST(ApiRegistry, PaperTable1MatchesSection5Workload) {
  const scenario_spec s = get_scenario("paper_table1");
  EXPECT_EQ(s.deploy.kind, deployment_kind::uniform);
  EXPECT_EQ(s.deploy.nodes, 100u);
  EXPECT_DOUBLE_EQ(s.deploy.region_side, 1500.0);
  EXPECT_DOUBLE_EQ(s.radio.max_range, 500.0);
  EXPECT_DOUBLE_EQ(s.radio.path_loss_exponent, 2.0);
  EXPECT_TRUE(s.opts.shrink_back);
  EXPECT_TRUE(s.opts.pairwise_removal);
  EXPECT_EQ(s.method.k, method_spec::kind::oracle);
}

TEST(ApiRegistry, UnknownNamesFail) {
  EXPECT_FALSE(find_scenario("no_such_scenario").has_value());
  EXPECT_THROW((void)get_scenario("no_such_scenario"), std::out_of_range);
}

TEST(ApiRegistry, RegistrationIsOneCall) {
  scenario_spec s = get_scenario("paper_table1");
  s.name = "registry_test_tiny";
  s.deploy.nodes = 12;
  register_scenario(s);

  const auto found = find_scenario("registry_test_tiny");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->deploy.nodes, 12u);

  // Registration overwrites.
  s.deploy.nodes = 13;
  register_scenario(s);
  EXPECT_EQ(get_scenario("registry_test_tiny").deploy.nodes, 13u);
}

TEST(ApiRegistry, EmptyNameRejected) {
  EXPECT_THROW(register_scenario(scenario_spec{}), std::invalid_argument);
}

TEST(ApiRegistry, MethodNamesRoundTrip) {
  for (const char* name : {"oracle", "protocol", "stc", "mst", "rng", "gabriel", "yao", "knn",
                           "max-power"}) {
    EXPECT_EQ(method_name(parse_method(name)), name);
  }
  EXPECT_EQ(method_name(parse_method("sethu-gerety")), "stc");
  EXPECT_THROW((void)parse_method("carrier-pigeon"), std::invalid_argument);
}

// Pins every preset's optimization flags, so a preset silently losing
// its op3-class pass (the pre-gain-aware state of the non-isotropic
// presets) fails loudly.
TEST(ApiRegistry, PresetOptimizationFlagsPinned) {
  struct pin {
    const char* name;
    bool shrink_back;
    bool pairwise_removal;
    bool gain_aware;
  };
  for (const pin& p : std::initializer_list<pin>{
           {"paper_table1", true, true, false},
           {"paper_basic", false, false, false},
           {"figure6", true, true, false},
           {"paper_protocol", true, true, false},
           {"dense_sensor_field", true, true, false},
           {"sparse_adhoc", true, true, false},
           {"grid_mesh", true, true, false},
           {"shadowed_field", true, false, true},
           {"urban_obstacles", true, false, true},
       }) {
    const scenario_spec s = get_scenario(p.name);
    EXPECT_EQ(s.opts.shrink_back, p.shrink_back) << p.name;
    EXPECT_EQ(s.opts.pairwise_removal, p.pairwise_removal) << p.name;
    EXPECT_EQ(s.opts.gain_aware, p.gain_aware) << p.name;
    // Every non-isotropic preset must run an op3-class removal pass.
    if (s.radio.propagation.kind != radio::propagation_kind::isotropic) {
      EXPECT_TRUE(s.opts.gain_aware || s.opts.pairwise_removal) << p.name;
    }
  }
  // The STC presets pair the same fields with the stc method.
  for (const char* name : {"shadowed_field_stc", "urban_obstacles_stc"}) {
    const scenario_spec s = get_scenario(name);
    EXPECT_EQ(s.method.k, method_spec::kind::stc) << name;
    EXPECT_NE(s.radio.propagation.kind, radio::propagation_kind::isotropic) << name;
  }
}

}  // namespace
}  // namespace cbtc::api
