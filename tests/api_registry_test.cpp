// The named-scenario registry: built-ins resolve, registration is one
// call, unknown names fail loudly.
#include <gtest/gtest.h>

#include <algorithm>

#include "api/api.h"

namespace cbtc::api {
namespace {

TEST(ApiRegistry, BuiltInsArePresent) {
  const auto names = scenario_names();
  for (const char* expected : {"paper_table1", "paper_basic", "paper_protocol", "figure6",
                               "dense_sensor_field", "sparse_adhoc", "grid_mesh"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), expected) != names.end())
        << "missing built-in scenario: " << expected;
  }
}

TEST(ApiRegistry, PaperTable1MatchesSection5Workload) {
  const scenario_spec s = get_scenario("paper_table1");
  EXPECT_EQ(s.deploy.kind, deployment_kind::uniform);
  EXPECT_EQ(s.deploy.nodes, 100u);
  EXPECT_DOUBLE_EQ(s.deploy.region_side, 1500.0);
  EXPECT_DOUBLE_EQ(s.radio.max_range, 500.0);
  EXPECT_DOUBLE_EQ(s.radio.path_loss_exponent, 2.0);
  EXPECT_TRUE(s.opts.shrink_back);
  EXPECT_TRUE(s.opts.pairwise_removal);
  EXPECT_EQ(s.method.k, method_spec::kind::oracle);
}

TEST(ApiRegistry, UnknownNamesFail) {
  EXPECT_FALSE(find_scenario("no_such_scenario").has_value());
  EXPECT_THROW((void)get_scenario("no_such_scenario"), std::out_of_range);
}

TEST(ApiRegistry, RegistrationIsOneCall) {
  scenario_spec s = get_scenario("paper_table1");
  s.name = "registry_test_tiny";
  s.deploy.nodes = 12;
  register_scenario(s);

  const auto found = find_scenario("registry_test_tiny");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->deploy.nodes, 12u);

  // Registration overwrites.
  s.deploy.nodes = 13;
  register_scenario(s);
  EXPECT_EQ(get_scenario("registry_test_tiny").deploy.nodes, 13u);
}

TEST(ApiRegistry, EmptyNameRejected) {
  EXPECT_THROW(register_scenario(scenario_spec{}), std::invalid_argument);
}

TEST(ApiRegistry, MethodNamesRoundTrip) {
  for (const char* name : {"oracle", "protocol", "mst", "rng", "gabriel", "yao", "knn",
                           "max-power"}) {
    EXPECT_EQ(method_name(parse_method(name)), name);
  }
  EXPECT_THROW((void)parse_method("carrier-pigeon"), std::invalid_argument);
}

}  // namespace
}  // namespace cbtc::api
