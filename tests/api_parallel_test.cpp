// Intra-instance parallelism must be invisible in the results: one
// scenario instance run with 1 thread and with 4 threads produces
// bitwise-identical reports (growth, topology, every floating-point
// metric), statically and dynamically. Plus unit coverage for the
// util::thread_pool primitives the engine builds on.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "api/api.h"
#include "util/parallel.h"

namespace cbtc::api {
namespace {

/// A 2000-node instance at the paper's density — big enough that the
/// parallel growth loop spans many work chunks and the metric
/// reductions span multiple fixed-size blocks.
scenario_spec big_spec(unsigned intra_threads) {
  scenario_spec spec;
  spec.deploy = {.kind = deployment_kind::uniform, .nodes = 2000, .region_side = 6708.0};
  spec.base_seed = 2024;
  spec.cbtc.mode = algo::growth_mode::continuous;
  spec.cbtc.intra_threads = intra_threads;
  spec.opts = algo::optimization_set::all();
  spec.metrics = {.stretch = false, .interference = false, .robustness = false};
  return spec;
}

void expect_bitwise_equal(const run_report& a, const run_report& b) {
  ASSERT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.topology, b.topology);
  EXPECT_EQ(a.node_powers, b.node_powers);  // element-wise bitwise doubles
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.avg_degree, b.avg_degree);
  EXPECT_EQ(a.avg_radius, b.avg_radius);
  EXPECT_EQ(a.max_radius, b.max_radius);
  EXPECT_EQ(a.avg_power, b.avg_power);
  EXPECT_EQ(a.boundary_nodes, b.boundary_nodes);
  EXPECT_EQ(a.removed_edges, b.removed_edges);
  EXPECT_EQ(a.invariants.ok(), b.invariants.ok());
  EXPECT_EQ(a.invariants.violations, b.invariants.violations);
  ASSERT_EQ(a.has_growth, b.has_growth);
  ASSERT_EQ(a.growth.nodes.size(), b.growth.nodes.size());
  for (std::size_t u = 0; u < a.growth.nodes.size(); ++u) {
    const auto& na = a.growth.nodes[u];
    const auto& nb = b.growth.nodes[u];
    EXPECT_EQ(na.boundary, nb.boundary) << "node " << u;
    EXPECT_EQ(na.final_power, nb.final_power) << "node " << u;
    ASSERT_EQ(na.neighbors.size(), nb.neighbors.size()) << "node " << u;
    for (std::size_t i = 0; i < na.neighbors.size(); ++i) {
      EXPECT_EQ(na.neighbors[i].id, nb.neighbors[i].id) << "node " << u;
      EXPECT_EQ(na.neighbors[i].distance, nb.neighbors[i].distance) << "node " << u;
    }
  }
}

TEST(ApiParallel, StaticRunIsBitwiseIdenticalAcrossIntraThreads) {
  const engine eng;
  const run_report serial = eng.run(big_spec(1), 0);
  const run_report parallel = eng.run(big_spec(4), 0);
  expect_bitwise_equal(serial, parallel);
  EXPECT_TRUE(serial.invariants.ok());
}

TEST(ApiParallel, DiscreteGrowthAlsoThreadCountInvariant) {
  scenario_spec one = big_spec(1);
  one.cbtc.mode = algo::growth_mode::discrete;
  scenario_spec four = big_spec(4);
  four.cbtc.mode = algo::growth_mode::discrete;
  const engine eng;
  expect_bitwise_equal(eng.run(one, 3), eng.run(four, 3));
}

TEST(ApiParallel, DynamicRunIsBitwiseIdenticalAcrossIntraThreads) {
  scenario_spec spec;
  spec.deploy = {.kind = deployment_kind::uniform, .nodes = 30, .region_side = 1100.0};
  spec.base_seed = 515;
  spec.method = method_spec::protocol();
  spec.protocol.agent.round_timeout = 0.25;

  sim_spec dyn;
  dyn.horizon = 30.0;
  dyn.settle = 10.0;
  dyn.sample_every = 2.0;
  dyn.mobility = {.kind = mobility_kind::random_waypoint,
                  .min_speed = 1.0,
                  .max_speed = 3.0,
                  .tick = 0.5,
                  .start = 10.0};
  dyn.failures = {.random_crashes = 3, .window_begin = 12.0, .window_end = 20.0};

  const engine eng;
  scenario_spec four = spec;
  four.cbtc.intra_threads = 4;
  const dynamic_report a = eng.run_dynamic(spec, dyn, 1);
  const dynamic_report b = eng.run_dynamic(four, dyn, 1);

  EXPECT_EQ(a.final_topology, b.final_topology);
  EXPECT_EQ(a.disruptions, b.disruptions);
  EXPECT_EQ(a.repair_latency_mean, b.repair_latency_mean);
  EXPECT_EQ(a.repair_latency_max, b.repair_latency_max);
  EXPECT_EQ(a.field_disruptions, b.field_disruptions);
  EXPECT_EQ(a.field_downtime, b.field_downtime);
  EXPECT_EQ(a.time_to_partition, b.time_to_partition);
  EXPECT_EQ(a.channel.broadcasts, b.channel.broadcasts);
  EXPECT_EQ(a.channel.tx_energy, b.channel.tx_energy);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].edges, b.samples[i].edges) << "sample " << i;
    EXPECT_EQ(a.samples[i].avg_radius, b.samples[i].avg_radius) << "sample " << i;  // bitwise
    EXPECT_EQ(a.samples[i].connectivity_ok, b.samples[i].connectivity_ok) << "sample " << i;
    EXPECT_EQ(a.samples[i].field_connected, b.samples[i].field_connected) << "sample " << i;
  }
}

TEST(ApiParallel, LifetimeIsThreadCountInvariant) {
  scenario_spec spec;
  spec.deploy = {.kind = deployment_kind::uniform, .nodes = 50, .region_side = 1200.0};
  spec.base_seed = 88;
  spec.cbtc.mode = algo::growth_mode::continuous;
  spec.opts = algo::optimization_set::all();
  const lifetime_spec life{.battery_rounds = 25.0, .flows = 15, .max_rounds = 2000};
  const engine eng;

  const lifetime_report serial = eng.run_lifetime(spec, life, 0);
  scenario_spec four = spec;
  four.cbtc.intra_threads = 4;
  const lifetime_report parallel = eng.run_lifetime(four, life, 0);
  EXPECT_EQ(serial.first_death, parallel.first_death);
  EXPECT_EQ(serial.quarter_dead, parallel.quarter_dead);
  EXPECT_EQ(serial.field_partition, parallel.field_partition);
}

void expect_identical_summary(const exp::summary& a, const exp::summary& b, const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;  // bitwise: no tolerance
  EXPECT_EQ(a.stddev(), b.stddev()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
}

// ---- per-link propagation: same contracts, non-uniform gains --------

/// An explicit isotropic propagation block must be a no-op: the spec
/// resolves to the identical link model, so the report is
/// bitwise-identical to the default (pre-propagation) path.
TEST(ApiParallel, ExplicitIsotropicPropagationIsInvisible) {
  scenario_spec with = big_spec(1);
  with.radio.propagation.kind = radio::propagation_kind::isotropic;
  const engine eng;
  expect_bitwise_equal(eng.run(big_spec(1), 0), eng.run(with, 0));
}

scenario_spec shadowed_big_spec(unsigned intra_threads) {
  scenario_spec spec = big_spec(intra_threads);
  spec.deploy.nodes = 900;
  spec.deploy.region_side = 4500.0;
  spec.radio.propagation = {.kind = radio::propagation_kind::lognormal_shadowing,
                            .sigma_db = 4.0,
                            .clamp_db = 8.0};
  spec.opts = {.shrink_back = true};  // op3's proof is unit-disk-only
  return spec;
}

TEST(ApiParallel, ShadowedStaticRunIsBitwiseIdenticalAcrossIntraThreads) {
  const engine eng;
  for (const std::uint64_t seed : {0ull, 7ull}) {
    expect_bitwise_equal(eng.run(shadowed_big_spec(1), seed), eng.run(shadowed_big_spec(4), seed));
  }
}

TEST(ApiParallel, ShadowedBatchIsBitwiseIdenticalAcrossThreadCounts) {
  scenario_spec spec = shadowed_big_spec(1);
  spec.deploy.nodes = 150;
  spec.deploy.region_side = 1837.0;
  const engine eng;
  const seed_range seeds{0, 40};
  const batch_report reference = eng.run_batch(spec, seeds, 1);
  ASSERT_EQ(reference.runs, 40u);
  for (const unsigned threads : {4u, 8u}) {
    spec.cbtc.intra_threads = threads == 4 ? 2 : 1;
    const batch_report b = eng.run_batch(spec, seeds, threads);
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    EXPECT_EQ(reference.connectivity_failures, b.connectivity_failures);
    expect_identical_summary(reference.edges, b.edges, "edges");
    expect_identical_summary(reference.radius, b.radius, "radius");
    expect_identical_summary(reference.tx_power, b.tx_power, "tx_power");
    expect_identical_summary(reference.boundary, b.boundary, "boundary");
  }
}

TEST(ApiParallel, ShadowedDynamicRunIsBitwiseIdenticalAcrossIntraThreads) {
  scenario_spec spec;
  spec.deploy = {.kind = deployment_kind::uniform, .nodes = 30, .region_side = 1100.0};
  spec.base_seed = 515;
  spec.method = method_spec::protocol();
  spec.protocol.agent.round_timeout = 0.25;
  spec.radio.propagation = {.kind = radio::propagation_kind::lognormal_shadowing,
                            .sigma_db = 3.0,
                            .clamp_db = 6.0};

  sim_spec dyn;
  dyn.horizon = 25.0;
  dyn.settle = 8.0;
  dyn.sample_every = 2.0;
  dyn.mobility = {.kind = mobility_kind::random_waypoint,
                  .min_speed = 1.0,
                  .max_speed = 3.0,
                  .tick = 0.5,
                  .start = 8.0};
  dyn.failures = {.random_crashes = 2, .window_begin = 10.0, .window_end = 16.0};

  const engine eng;
  scenario_spec four = spec;
  four.cbtc.intra_threads = 4;
  const dynamic_report a = eng.run_dynamic(spec, dyn, 1);
  const dynamic_report b = eng.run_dynamic(four, dyn, 1);
  EXPECT_EQ(a.final_topology, b.final_topology);
  EXPECT_EQ(a.disruptions, b.disruptions);
  EXPECT_EQ(a.field_downtime, b.field_downtime);
  EXPECT_EQ(a.time_to_partition, b.time_to_partition);
  EXPECT_EQ(a.channel.broadcasts, b.channel.broadcasts);
  EXPECT_EQ(a.channel.tx_energy, b.channel.tx_energy);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].edges, b.samples[i].edges) << "sample " << i;
    EXPECT_EQ(a.samples[i].avg_radius, b.samples[i].avg_radius) << "sample " << i;  // bitwise
  }
}

TEST(ApiParallel, ShadowedLifetimeIsThreadCountInvariant) {
  scenario_spec spec;
  spec.deploy = {.kind = deployment_kind::uniform, .nodes = 50, .region_side = 1200.0};
  spec.base_seed = 88;
  spec.cbtc.mode = algo::growth_mode::continuous;
  spec.opts = {.shrink_back = true};
  spec.radio.propagation = {.kind = radio::propagation_kind::lognormal_shadowing,
                            .sigma_db = 4.0,
                            .clamp_db = 8.0};
  const lifetime_spec life{.battery_rounds = 25.0, .flows = 15, .max_rounds = 2000};
  const engine eng;
  const lifetime_report serial = eng.run_lifetime(spec, life, 0);
  scenario_spec four = spec;
  four.cbtc.intra_threads = 4;
  const lifetime_report parallel = eng.run_lifetime(four, life, 0);
  EXPECT_EQ(serial.first_death, parallel.first_death);
  EXPECT_EQ(serial.quarter_dead, parallel.quarter_dead);
  EXPECT_EQ(serial.field_partition, parallel.field_partition);
}

// ---- spatial relabeling: invisible in every report ------------------

/// Forcing the Morton relabeling pass on (threshold 0) must not change
/// a single bit of the static report relative to the default
/// label-order pipeline, at any thread count: the permutation is
/// inverted before reporting and tie-free geometry makes the growth
/// order label-independent.
TEST(ApiParallel, RelabelingIsInvisibleInStaticReports) {
  const engine eng;
  const run_report reference = eng.run(big_spec(1), 0);
  for (const unsigned threads : {1u, 4u}) {
    scenario_spec relabeled = big_spec(threads);
    relabeled.cbtc.relabel_min_nodes = 0;
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    expect_bitwise_equal(reference, eng.run(relabeled, 0));
  }
}

/// Shadowing gains hash *node ids*, so this exercises the propagation
/// relabeling layer: the permuted pipeline must draw the exact gains of
/// the original labels or edges flip.
TEST(ApiParallel, ShadowedRelabelingIsInvisible) {
  const engine eng;
  for (const std::uint64_t seed : {0ull, 7ull}) {
    const run_report reference = eng.run(shadowed_big_spec(1), seed);
    for (const unsigned threads : {1u, 4u}) {
      scenario_spec relabeled = shadowed_big_spec(threads);
      relabeled.cbtc.relabel_min_nodes = 0;
      SCOPED_TRACE(::testing::Message() << "seed=" << seed << " threads=" << threads);
      expect_bitwise_equal(reference, eng.run(relabeled, seed));
    }
  }
}

/// Discrete growth mode runs the same relabeled build path.
TEST(ApiParallel, RelabelingIsInvisibleInDiscreteGrowth) {
  scenario_spec off = big_spec(4);
  off.cbtc.mode = algo::growth_mode::discrete;
  scenario_spec on = off;
  on.cbtc.relabel_min_nodes = 0;
  const engine eng;
  expect_bitwise_equal(eng.run(off, 3), eng.run(on, 3));
}

/// Lifetime rebuilds the static topology every epoch; relabeling must
/// not shift a death time.
TEST(ApiParallel, RelabelingIsInvisibleInLifetimeReports) {
  scenario_spec spec;
  spec.deploy = {.kind = deployment_kind::uniform, .nodes = 50, .region_side = 1200.0};
  spec.base_seed = 88;
  spec.cbtc.mode = algo::growth_mode::continuous;
  spec.opts = algo::optimization_set::all();
  const lifetime_spec life{.battery_rounds = 25.0, .flows = 15, .max_rounds = 2000};
  const engine eng;
  const lifetime_report reference = eng.run_lifetime(spec, life, 0);
  scenario_spec relabeled = spec;
  relabeled.cbtc.relabel_min_nodes = 0;
  relabeled.cbtc.intra_threads = 4;
  const lifetime_report permuted = eng.run_lifetime(relabeled, life, 0);
  EXPECT_EQ(reference.first_death, permuted.first_death);
  EXPECT_EQ(reference.quarter_dead, permuted.quarter_dead);
  EXPECT_EQ(reference.field_partition, permuted.field_partition);
}

// ---- executor nesting: batch x intra threads ------------------------

/// Every (batch threads, intra threads) combination — including
/// oversubscribed ones far beyond the machine — must produce the
/// bitwise-identical batch report, because both levels draw tasks
/// from the one process-wide executor and all reductions are
/// block-ordered. 40 seeds = 3 seed blocks, so batch threading is
/// genuinely exercised.
TEST(ApiParallel, BatchTimesIntraThreadMatrixIsBitwiseIdentical) {
  scenario_spec spec;
  spec.deploy = {.kind = deployment_kind::uniform, .nodes = 250, .region_side = 2372.0};
  spec.base_seed = 777;
  spec.cbtc.mode = algo::growth_mode::continuous;
  spec.opts = algo::optimization_set::all();
  spec.metrics = {.stretch = false, .interference = false, .robustness = false};

  const engine eng;
  const seed_range seeds{0, 40};
  spec.cbtc.intra_threads = 1;
  const batch_report reference = eng.run_batch(spec, seeds, 1);
  ASSERT_EQ(reference.runs, 40u);
  EXPECT_EQ(reference.connectivity_failures, 0u);

  for (const unsigned threads : {2u, 4u, 8u}) {
    for (const unsigned intra : {1u, 2u, 8u}) {
      spec.cbtc.intra_threads = intra;
      const batch_report b = eng.run_batch(spec, seeds, threads);
      SCOPED_TRACE(::testing::Message() << "threads=" << threads << " intra=" << intra);
      EXPECT_EQ(reference.runs, b.runs);
      EXPECT_EQ(reference.connectivity_failures, b.connectivity_failures);
      expect_identical_summary(reference.edges, b.edges, "edges");
      expect_identical_summary(reference.degree, b.degree, "degree");
      expect_identical_summary(reference.radius, b.radius, "radius");
      expect_identical_summary(reference.max_radius, b.max_radius, "max_radius");
      expect_identical_summary(reference.tx_power, b.tx_power, "tx_power");
      expect_identical_summary(reference.boundary, b.boundary, "boundary");
      expect_identical_summary(reference.removed_edges, b.removed_edges, "removed_edges");
    }
  }
}

// ---- util::thread_pool unit coverage --------------------------------

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  util::thread_pool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ReduceIsIndependentOfThreadCount) {
  // Sum of doubles whose result depends on association: blocked
  // reduction must give the same bits for every pool size.
  const std::size_t n = 10000;
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }
  const auto sum_with = [&](unsigned threads) {
    util::thread_pool pool(threads);
    return pool.reduce<double>(
        n, 0.0,
        [&](std::size_t lo, std::size_t hi) {
          double s = 0.0;
          for (std::size_t i = lo; i < hi; ++i) s += values[i];
          return s;
        },
        [](double& total, const double& part) { total += part; });
  };
  const double one = sum_with(1);
  EXPECT_EQ(one, sum_with(2));
  EXPECT_EQ(one, sum_with(4));
  EXPECT_EQ(one, sum_with(8));
}

TEST(ThreadPool, PropagatesExceptions) {
  util::thread_pool pool(4);
  EXPECT_THROW(
      pool.parallel_for(1000,
                        [&](std::size_t i) {
                          if (i == 567) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<int> count{0};
  pool.parallel_for(100, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  util::thread_pool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  int sum = 0;  // no synchronization needed: everything is inline
  pool.parallel_for(100, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 4950);
}

}  // namespace
}  // namespace cbtc::api
