#include "graph/interference.h"

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "geom/random_points.h"
#include "graph/euclidean.h"

namespace cbtc::graph {
namespace {

TEST(EdgeInterference, IsolatedPairIsZero) {
  const std::vector<geom::vec2> pts{{0, 0}, {100, 0}};
  undirected_graph g(2);
  g.add_edge(0, 1);
  EXPECT_EQ(edge_interference(g, pts, 0, 1), 0u);
}

TEST(EdgeInterference, CountsCoveredNodes) {
  // Edge 0-1 of length 100; node 2 inside u's disk, node 3 inside v's
  // disk, node 4 outside both.
  const std::vector<geom::vec2> pts{{0, 0}, {100, 0}, {-50, 0}, {150, 0}, {300, 0}};
  undirected_graph g(5);
  g.add_edge(0, 1);
  EXPECT_EQ(edge_interference(g, pts, 0, 1), 2u);
}

TEST(EdgeInterference, NodeInBothDisksCountedOnce) {
  const std::vector<geom::vec2> pts{{0, 0}, {100, 0}, {50, 10}};
  undirected_graph g(3);
  g.add_edge(0, 1);
  EXPECT_EQ(edge_interference(g, pts, 0, 1), 1u);
}

TEST(EdgeInterference, LongerEdgesInterfereMore) {
  // Same node cloud: a long edge covers at least as many nodes as a
  // short co-located one.
  const auto pts = geom::uniform_points(80, geom::bbox::rect(500, 500), 3);
  undirected_graph g(pts.size());
  g.add_edge(0, 1);
  const std::size_t direct = edge_interference(g, pts, 0, 1);
  // A much shorter edge from node 0 to its nearest neighbor.
  node_id nearest = 1;
  double best = geom::distance(pts[0], pts[1]);
  for (node_id v = 2; v < pts.size(); ++v) {
    const double d = geom::distance(pts[0], pts[v]);
    if (d < best) {
      best = d;
      nearest = v;
    }
  }
  const std::size_t short_edge = edge_interference(g, pts, 0, nearest);
  EXPECT_LE(short_edge, direct + pts.size() / 10);  // sanity: no blow-up
}

TEST(TopologyInterference, EmptyGraph) {
  const interference_stats s = topology_interference(undirected_graph(3), {});
  EXPECT_EQ(s.edges, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(TopologyInterference, MeanAndMax) {
  const std::vector<geom::vec2> pts{{0, 0}, {100, 0}, {-50, 0}, {150, 0}};
  undirected_graph g(4);
  g.add_edge(0, 1);   // covers 2 and 3
  g.add_edge(0, 2);   // length 50 disk: covers nobody else
  const interference_stats s = topology_interference(g, pts);
  EXPECT_EQ(s.edges, 2u);
  EXPECT_EQ(s.max, 2u);
  EXPECT_DOUBLE_EQ(s.mean, 1.0);
}

TEST(TopologyInterference, TopologyControlReducesInterference) {
  // The paper's Section 1 motivation, measured: the max-power graph
  // interferes far more than the MST on the same nodes.
  const auto pts = geom::uniform_points(100, geom::bbox::rect(1500, 1500), 7);
  const auto gr = build_max_power_graph(pts, 500.0);
  const auto mst = baselines::euclidean_mst(pts, 500.0);
  const auto i_gr = topology_interference(gr, pts);
  const auto i_mst = topology_interference(mst, pts);
  EXPECT_GT(i_gr.mean, 2.0 * i_mst.mean);
  EXPECT_GE(i_gr.max, i_mst.max);
}

TEST(TopologyInterference, MatchesPerEdgeComputation) {
  const auto pts = geom::uniform_points(40, geom::bbox::rect(800, 800), 11);
  const auto gr = build_max_power_graph(pts, 300.0);
  const auto stats = topology_interference(gr, pts);
  double total = 0.0;
  std::size_t max_cov = 0;
  for (const edge& e : gr.edges()) {
    const std::size_t cov = edge_interference(gr, pts, e.u, e.v);
    total += static_cast<double>(cov);
    max_cov = std::max(max_cov, cov);
  }
  EXPECT_DOUBLE_EQ(stats.mean, total / static_cast<double>(gr.num_edges()));
  EXPECT_EQ(stats.max, max_cov);
}

}  // namespace
}  // namespace cbtc::graph
