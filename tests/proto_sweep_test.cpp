// Parameterized protocol-vs-oracle conformance sweep: the distributed
// growing phase must match the centralized specification across alpha
// values, growth factors, network densities, and benign channel
// variation; and must keep terminating + preserving connectivity under
// hostile channels.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "algo/oracle.h"
#include "geom/random_points.h"
#include "graph/euclidean.h"
#include "graph/traversal.h"
#include "proto/runner.h"
#include "radio/power_model.h"

namespace cbtc::proto {
namespace {

const radio::power_model pm(2.0, 500.0);

struct sweep_case {
  std::uint64_t seed;
  std::size_t nodes;
  double alpha;
  double increase_factor;
  double jitter;
};

std::string sweep_name(const ::testing::TestParamInfo<sweep_case>& info) {
  const sweep_case& c = info.param;
  return "s" + std::to_string(c.seed) + "_n" + std::to_string(c.nodes) + "_a" +
         std::to_string(static_cast<int>(c.alpha * 100)) + "_f" +
         std::to_string(static_cast<int>(c.increase_factor * 10)) + "_j" +
         std::to_string(static_cast<int>(c.jitter * 1000));
}

class ProtocolConformance : public ::testing::TestWithParam<sweep_case> {};

TEST_P(ProtocolConformance, NeighborSetsMatchOracle) {
  const sweep_case& c = GetParam();
  const auto positions = geom::uniform_points(c.nodes, geom::bbox::rect(1300, 1300), c.seed);

  protocol_run_config cfg;
  cfg.agent.params.alpha = c.alpha;
  cfg.agent.params.increase_factor = c.increase_factor;
  cfg.agent.round_timeout = 0.5;
  cfg.channel.base_delay = 0.01;
  cfg.channel.jitter_max = c.jitter;
  cfg.seed = c.seed;

  const protocol_run_result run = run_protocol(positions, pm, cfg);
  const algo::cbtc_result oracle = algo::run_cbtc(positions, pm, cfg.agent.params);

  for (std::size_t u = 0; u < positions.size(); ++u) {
    std::set<graph::node_id> got, want;
    for (const auto& r : run.outcome.nodes[u].neighbors) got.insert(r.id);
    for (const auto& r : oracle.nodes[u].neighbors) want.insert(r.id);
    ASSERT_EQ(got, want) << "node " << u;
    EXPECT_EQ(run.outcome.nodes[u].boundary, oracle.nodes[u].boundary) << "node " << u;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ProtocolConformance,
    ::testing::Values(sweep_case{1, 50, algo::alpha_five_pi_six, 2.0, 0.0},
                      sweep_case{2, 50, algo::alpha_two_pi_three, 2.0, 0.0},
                      sweep_case{3, 50, geom::pi / 2.0, 2.0, 0.0},
                      sweep_case{4, 50, algo::alpha_five_pi_six, 1.5, 0.0},
                      sweep_case{5, 50, algo::alpha_five_pi_six, 4.0, 0.0},
                      sweep_case{6, 120, algo::alpha_five_pi_six, 2.0, 0.0},
                      sweep_case{7, 120, algo::alpha_two_pi_three, 2.0, 0.05},
                      sweep_case{8, 30, algo::alpha_five_pi_six, 2.0, 0.1},
                      sweep_case{9, 80, algo::alpha_two_pi_three, 3.0, 0.02}),
    sweep_name);

// Hostile-channel sweep: heavy loss with retries. Termination and
// closure connectivity are required; exact oracle equality is not
// (hellos can vanish), so the assertions are liveness + safety.
class LossyChannel : public ::testing::TestWithParam<double> {};

TEST_P(LossyChannel, TerminatesAndClosureKeepsInvariants) {
  const double drop = GetParam();
  const auto positions = geom::uniform_points(60, geom::bbox::rect(1200, 1200), 99);

  protocol_run_config cfg;
  cfg.agent.round_timeout = 0.5;
  cfg.agent.retries_per_level = 4;
  cfg.channel.drop_prob = drop;
  cfg.seed = 7;

  const protocol_run_result run = run_protocol(positions, pm, cfg);
  EXPECT_EQ(run.outcome.num_nodes(), positions.size());
  // Safety: everything discovered is a real G_R neighbor.
  const auto gr = graph::build_max_power_graph(positions, pm.max_range());
  for (std::size_t u = 0; u < positions.size(); ++u) {
    for (const auto& r : run.outcome.nodes[u].neighbors) {
      EXPECT_TRUE(gr.has_edge(static_cast<graph::node_id>(u), r.id))
          << "drop=" << drop << " node " << u << " ghost neighbor " << r.id;
    }
  }
  // Discovered subset implies the closure is a subgraph of G_R; with
  // retries, moderate loss should still find most neighborhoods.
  if (drop <= 0.3) {
    EXPECT_TRUE(graph::same_connectivity(run.outcome.symmetric_closure(), gr)) << "drop=" << drop;
  }
}

INSTANTIATE_TEST_SUITE_P(DropRates, LossyChannel, ::testing::Values(0.05, 0.15, 0.3, 0.6));

// Overshoot property of discrete growth: the final power never exceeds
// increase_factor times the idealized (continuous) requirement — the
// factor-2 bound stated in Section 2 for Increase(p) = 2p.
class OvershootBound : public ::testing::TestWithParam<double> {};

TEST_P(OvershootBound, DiscreteWithinFactorOfContinuous) {
  const double factor = GetParam();
  const auto positions = geom::uniform_points(90, geom::bbox::rect(1400, 1400), 55);

  algo::cbtc_params discrete;
  discrete.increase_factor = factor;
  const algo::cbtc_result d = algo::run_cbtc(positions, pm, discrete);

  algo::cbtc_params continuous;
  continuous.mode = algo::growth_mode::continuous;
  const algo::cbtc_result c = algo::run_cbtc(positions, pm, continuous);

  const double p0 = pm.required_power(pm.max_range() / 16.0);
  for (std::size_t u = 0; u < positions.size(); ++u) {
    const double ideal = std::max(c.nodes[u].final_power, p0);
    EXPECT_LE(d.nodes[u].final_power, factor * ideal * (1.0 + 1e-9))
        << "factor=" << factor << " node " << u;
    EXPECT_GE(d.nodes[u].final_power + 1e-9, std::min(c.nodes[u].final_power, pm.max_power()))
        << "factor=" << factor << " node " << u;
  }
}

INSTANTIATE_TEST_SUITE_P(Factors, OvershootBound, ::testing::Values(1.3, 2.0, 3.0, 4.0));

}  // namespace
}  // namespace cbtc::proto
