#include "algo/alpha_search.h"

#include <gtest/gtest.h>

#include "algo/gadgets.h"
#include "geom/random_points.h"
#include "radio/power_model.h"

namespace cbtc::algo {
namespace {

const radio::power_model pm(2.0, 500.0);

TEST(AlphaScan, RandomInstancesSafeThroughTheorem) {
  // Theorem 2.1: every scanned alpha <= 5*pi/6 preserves connectivity.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto pts = geom::uniform_points(80, geom::bbox::rect(1500, 1500), seed);
    const auto scan = scan_alpha(pts, pm, geom::pi / 3.0, alpha_five_pi_six, 12);
    EXPECT_TRUE(scan.all_preserved) << "seed " << seed;
    EXPECT_NEAR(scan.safe_prefix_max, alpha_five_pi_six, 1e-9);
  }
}

TEST(AlphaScan, GadgetBreaksJustAboveThreshold) {
  const auto g = gadgets::make_figure5(0.15);
  const radio::power_model gpm(2.0, g.max_range);
  const auto scan = scan_alpha(g.positions, gpm, alpha_five_pi_six - 0.2, g.alpha + 0.01, 24);
  EXPECT_FALSE(scan.all_preserved);
  // The safe prefix ends between 5*pi/6 and the gadget's alpha.
  EXPECT_GE(scan.safe_prefix_max, alpha_five_pi_six - 0.2);
  EXPECT_LT(scan.safe_prefix_max, g.alpha);
}

TEST(AlphaScan, SamplesAscendAndCoverRange) {
  const auto pts = geom::uniform_points(20, geom::bbox::rect(600, 600), 5);
  const auto scan = scan_alpha(pts, pm, 1.0, 3.0, 5);
  ASSERT_EQ(scan.samples.size(), 5u);
  EXPECT_DOUBLE_EQ(scan.samples.front().alpha, 1.0);
  EXPECT_DOUBLE_EQ(scan.samples.back().alpha, 3.0);
  for (std::size_t i = 0; i + 1 < scan.samples.size(); ++i) {
    EXPECT_LT(scan.samples[i].alpha, scan.samples[i + 1].alpha);
  }
}

TEST(AlphaScan, ZeroSteps) {
  const auto pts = geom::uniform_points(10, geom::bbox::rect(400, 400), 9);
  const auto scan = scan_alpha(pts, pm, 1.0, 2.0, 0);
  EXPECT_TRUE(scan.samples.empty());
}

TEST(MaxPreservingAlpha, GadgetThresholdLocated) {
  // For the Figure 5 gadget the exact breaking alpha is known by
  // construction: it disconnects for its alpha = 5*pi/6 + eps but stays
  // connected at 5*pi/6. The bisection must land inside (5*pi/6, alpha).
  const double eps = 0.2;
  const auto g = gadgets::make_figure5(eps);
  const radio::power_model gpm(2.0, g.max_range);
  const double t =
      max_preserving_alpha(g.positions, gpm, alpha_five_pi_six, g.alpha + 0.05, 1e-4);
  EXPECT_GE(t, alpha_five_pi_six - 1e-9);
  EXPECT_LT(t, g.alpha);
}

TEST(MaxPreservingAlpha, AllPreservedReturnsHi) {
  const auto pts = geom::uniform_points(30, geom::bbox::rect(500, 500), 13);
  // Dense network: even wide alphas stay connected through closure.
  const double t = max_preserving_alpha(pts, pm, 2.0, 2.6, 1e-3);
  EXPECT_GT(t, 2.0);
}

TEST(MaxPreservingAlpha, RandomInstancesExceedTheTheorem) {
  // The per-instance empirical threshold is at least 5*pi/6 — usually
  // far beyond (the theorem is worst-case).
  for (std::uint64_t seed : {21u, 22u}) {
    const auto pts = geom::uniform_points(60, geom::bbox::rect(1200, 1200), seed);
    const double t = max_preserving_alpha(pts, pm, alpha_five_pi_six, 1.99 * geom::pi, 1e-2);
    EXPECT_GE(t, alpha_five_pi_six);
  }
}

}  // namespace
}  // namespace cbtc::algo
