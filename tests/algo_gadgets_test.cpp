#include "algo/gadgets.h"

#include <gtest/gtest.h>

#include "algo/oracle.h"
#include "algo/params.h"
#include "geom/angle.h"
#include "graph/euclidean.h"
#include "graph/traversal.h"
#include "radio/power_model.h"

namespace cbtc::algo {
namespace {

using geom::pi;

cbtc_params continuous_params(double alpha) {
  cbtc_params p;
  p.alpha = alpha;
  p.mode = growth_mode::continuous;  // the proofs' idealized growth
  return p;
}

// ------------------------------------------------- Example 2.1 (Fig 2)

TEST(Example21, ConstructionValidates) {
  for (double alpha : {2.2, 2.4, alpha_five_pi_six}) {
    const auto g = gadgets::make_example21(alpha);
    EXPECT_TRUE(g.validate());
    EXPECT_EQ(g.positions.size(), 5u);
  }
}

TEST(Example21, RejectsOutOfRangeAlpha) {
  EXPECT_THROW(gadgets::make_example21(alpha_two_pi_three), std::invalid_argument);
  EXPECT_THROW(gadgets::make_example21(alpha_five_pi_six + 0.05), std::invalid_argument);
}

TEST(Example21, NAlphaIsAsymmetric) {
  // The headline claim: (v, u0) in N_alpha but (u0, v) not in N_alpha.
  const auto g = gadgets::make_example21(alpha_five_pi_six);
  const radio::power_model pm(2.0, g.max_range);
  const cbtc_result r = run_cbtc(g.positions, pm, continuous_params(g.alpha));

  EXPECT_TRUE(r.nodes[g.v].knows(g.u0));    // v discovered u0
  EXPECT_FALSE(r.nodes[g.u0].knows(g.v));   // u0 stopped before reaching v
  // u0 discovered exactly u1, u2, u3.
  EXPECT_TRUE(r.nodes[g.u0].knows(g.u1));
  EXPECT_TRUE(r.nodes[g.u0].knows(g.u2));
  EXPECT_TRUE(r.nodes[g.u0].knows(g.u3));
  // v found nothing else: it is a boundary node at max power.
  EXPECT_EQ(r.nodes[g.v].neighbors.size(), 1u);
  EXPECT_TRUE(r.nodes[g.v].boundary);
  EXPECT_DOUBLE_EQ(r.nodes[g.v].final_power, pm.max_power());
}

TEST(Example21, SymmetricClosureRestoresTheEdge) {
  // Why E_alpha must be the symmetric *closure*: without it u0 and v
  // would be disconnected even though (u0, v) is in G_R.
  const auto g = gadgets::make_example21(alpha_five_pi_six);
  const radio::power_model pm(2.0, g.max_range);
  const cbtc_result r = run_cbtc(g.positions, pm, continuous_params(g.alpha));

  const auto closure = r.symmetric_closure();
  EXPECT_TRUE(closure.has_edge(g.u0, g.v));
  const auto gr = graph::build_max_power_graph(g.positions, g.max_range);
  EXPECT_TRUE(graph::same_connectivity(closure, gr));

  // The symmetric core drops the (u0,v) edge — for alpha > 2*pi/3 that
  // breaks connectivity, which is why op2 is restricted to <= 2*pi/3.
  const auto core = r.symmetric_core();
  EXPECT_FALSE(core.has_edge(g.u0, g.v));
  EXPECT_FALSE(graph::same_connectivity(core, gr));
}

TEST(Example21, HoldsAcrossTheAlphaWindow) {
  // The construction works for all 2*pi/3 < alpha <= 5*pi/6.
  for (double alpha = alpha_two_pi_three + 0.05; alpha <= alpha_five_pi_six;
       alpha += 0.05) {
    const auto g = gadgets::make_example21(alpha);
    const radio::power_model pm(2.0, g.max_range);
    const cbtc_result r = run_cbtc(g.positions, pm, continuous_params(alpha));
    EXPECT_TRUE(r.nodes[g.v].knows(g.u0)) << "alpha=" << alpha;
    EXPECT_FALSE(r.nodes[g.u0].knows(g.v)) << "alpha=" << alpha;
  }
}

TEST(Example21, PaperDistanceInequalities) {
  // d(u1, v) > R > d(u0, u1), as derived in the example.
  const auto g = gadgets::make_example21(alpha_five_pi_six);
  const auto& P = g.positions;
  EXPECT_GT(geom::distance(P[g.u1], P[g.v]), g.max_range);
  EXPECT_LT(geom::distance(P[g.u0], P[g.u1]), g.max_range);
  EXPECT_GT(geom::distance(P[g.u2], P[g.v]), g.max_range);
  EXPECT_NEAR(geom::distance(P[g.u0], P[g.u3]), g.max_range / 2.0, 1e-9);
}

// ---------------------------------------------- Figure 5 (Theorem 2.4)

TEST(Figure5, ConstructionValidates) {
  for (double eps : {0.01, 0.05, 0.1, 0.3}) {
    const auto g = gadgets::make_figure5(eps);
    EXPECT_TRUE(g.validate()) << "eps=" << eps;
    EXPECT_EQ(g.positions.size(), 8u);
    EXPECT_NEAR(g.alpha, alpha_five_pi_six + eps, 1e-12);
  }
}

TEST(Figure5, RejectsBadEps) {
  EXPECT_THROW(gadgets::make_figure5(0.0), std::invalid_argument);
  EXPECT_THROW(gadgets::make_figure5(-0.1), std::invalid_argument);
  EXPECT_THROW(gadgets::make_figure5(pi / 6.0), std::invalid_argument);
}

TEST(Figure5, GRIsConnected) {
  const auto g = gadgets::make_figure5(0.05);
  const auto gr = graph::build_max_power_graph(g.positions, g.max_range);
  EXPECT_TRUE(graph::is_connected(gr));
  // And (u0, v0) is the *only* inter-cluster edge.
  EXPECT_TRUE(gr.has_edge(g.u0, g.v0));
  std::size_t cross = 0;
  for (const graph::edge& e : gr.edges()) {
    const bool u_side_u = e.u <= g.u3;
    const bool v_side_u = e.v <= g.u3;
    if (u_side_u != v_side_u) ++cross;
  }
  EXPECT_EQ(cross, 1u);
}

TEST(Figure5, CbtcDisconnectsAboveThreshold) {
  // Theorem 2.4: for alpha = 5*pi/6 + eps the algorithm's G_alpha loses
  // the (u0, v0) bridge and the clusters separate.
  for (double eps : {0.02, 0.1, 0.25}) {
    const auto g = gadgets::make_figure5(eps);
    const radio::power_model pm(2.0, g.max_range);
    const cbtc_result r = run_cbtc(g.positions, pm, continuous_params(g.alpha));

    EXPECT_FALSE(r.nodes[g.u0].knows(g.v0)) << "eps=" << eps;
    EXPECT_FALSE(r.nodes[g.v0].knows(g.u0)) << "eps=" << eps;
    EXPECT_LT(r.nodes[g.u0].final_power, pm.max_power());
    EXPECT_LT(r.nodes[g.v0].final_power, pm.max_power());

    const auto closure = r.symmetric_closure();
    EXPECT_FALSE(closure.has_edge(g.u0, g.v0));
    const auto gr = graph::build_max_power_graph(g.positions, g.max_range);
    EXPECT_FALSE(graph::same_connectivity(closure, gr)) << "eps=" << eps;
    EXPECT_FALSE(graph::reachable(closure, g.u0, g.v0)) << "eps=" << eps;
  }
}

TEST(Figure5, SameLayoutConnectedAtFivePiSix) {
  // The same 8 nodes run with alpha = 5*pi/6 stay connected — the
  // disconnection is caused by alpha, not by the layout: at 5*pi/6 the
  // gap between u1 and u2 (constructed to be ~5*pi/6 + eps wide) now
  // exceeds alpha, so u0 keeps growing and reaches v0.
  const auto g = gadgets::make_figure5(0.2);
  const radio::power_model pm(2.0, g.max_range);
  const cbtc_result r = run_cbtc(g.positions, pm, continuous_params(alpha_five_pi_six));
  const auto closure = r.symmetric_closure();
  const auto gr = graph::build_max_power_graph(g.positions, g.max_range);
  EXPECT_TRUE(graph::same_connectivity(closure, gr));
  EXPECT_TRUE(graph::reachable(closure, g.u0, g.v0));
}

TEST(Figure5, HubsCoverWithoutCrossEdge) {
  // The construction's essence: u0's three satellites close every
  // alpha-cone, so u0 never needs v0.
  const auto g = gadgets::make_figure5(0.1);
  const auto& P = g.positions;
  const double dirs[] = {(P[g.u1] - P[g.u0]).bearing(), (P[g.u2] - P[g.u0]).bearing(),
                         (P[g.u3] - P[g.u0]).bearing()};
  EXPECT_FALSE(geom::has_alpha_gap(dirs, g.alpha));
  EXPECT_TRUE(geom::has_alpha_gap(dirs, alpha_five_pi_six));
}

}  // namespace
}  // namespace cbtc::algo
