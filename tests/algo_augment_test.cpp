#include "algo/augment.h"

#include <gtest/gtest.h>

#include "algo/pipeline.h"
#include "geom/random_points.h"
#include "graph/euclidean.h"
#include "graph/metrics.h"
#include "graph/robustness.h"
#include "graph/traversal.h"
#include "radio/power_model.h"

namespace cbtc::algo {
namespace {

using geom::vec2;

const radio::power_model pm(2.0, 500.0);

TEST(Augment, FixesASimpleAvoidableBridge) {
  // Square with one diagonal path: topology is the 3-edge path
  // 0-1-2-3, G_R contains the closing edge 3-0 (and 0-2, 1-3 are too
  // long). Every path edge is an avoidable bridge.
  const std::vector<vec2> pts{{0, 0}, {400, 0}, {400, 400}, {0, 400}};
  graph::undirected_graph path(4);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  path.add_edge(2, 3);
  const augment_result res = augment_bridge_resilience(path, pts, 500.0);
  EXPECT_TRUE(res.topology.has_edge(0, 3));
  EXPECT_TRUE(graph::bridges(res.topology).empty());
  EXPECT_EQ(res.edges_added, 1u);
  EXPECT_EQ(res.unavoidable_bridges, 0u);
}

TEST(Augment, LeavesUnavoidableBridges) {
  // A dumbbell: two triangles joined by one long link that G_R cannot
  // bypass. The bridge must survive and be reported.
  const std::vector<vec2> pts{{0, 0},    {100, 0},   {50, 80},     // left triangle
                              {1000, 0}, {1100, 0},  {1050, 80}};  // right triangle
  graph::undirected_graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(3, 5);
  // The long bridge: d(1,3) = 900 — pretend an out-of-band relay made
  // it possible by testing with a larger range for this single link.
  // Instead keep it in-range: use max_range 1000 for this test.
  g.add_edge(1, 3);
  const augment_result res = augment_bridge_resilience(g, pts, 1000.0);
  EXPECT_TRUE(res.topology.has_edge(1, 3));
  // G_R at range 1000 contains more cross edges (e.g. 2-5 at ~953)…
  // so the bridge may actually be avoidable. Tighten: use range 940,
  // where only 0/1/2 x 3 distances up to 940 qualify.
  const augment_result tight = augment_bridge_resilience(g, pts, 940.0);
  // Cross-pair distances: (1,3)=900, (2,3)=~953, (1,4)=1000, others more.
  // Only (1,3) crosses at range 940: the bridge is unavoidable.
  EXPECT_EQ(tight.edges_added, 0u);
  EXPECT_GE(tight.unavoidable_bridges, 1u);
  (void)res;
}

TEST(Augment, NoBridgesIsNoOp) {
  const std::vector<vec2> pts{{0, 0}, {100, 0}, {50, 80}};
  graph::undirected_graph tri(3);
  tri.add_edge(0, 1);
  tri.add_edge(1, 2);
  tri.add_edge(0, 2);
  const augment_result res = augment_bridge_resilience(tri, pts, 500.0);
  EXPECT_EQ(res.edges_added, 0u);
  EXPECT_EQ(res.topology, tri);
}

TEST(Augment, OutputIsSubgraphOfGrAndSuperset) {
  const auto pts = geom::uniform_points(80, geom::bbox::rect(1400, 1400), 3);
  cbtc_params params;
  const auto base = build_topology(pts, pm, params, optimization_set::all()).topology;
  const augment_result res = augment_bridge_resilience(base, pts, pm.max_range());

  const auto gr = graph::build_max_power_graph(pts, pm.max_range());
  for (const graph::edge& e : res.topology.edges()) {
    EXPECT_TRUE(gr.has_edge(e.u, e.v));
  }
  for (const graph::edge& e : base.edges()) {
    EXPECT_TRUE(res.topology.has_edge(e.u, e.v));
  }
  EXPECT_EQ(res.topology.num_edges(), base.num_edges() + res.edges_added);
}

TEST(Augment, EveryRemainingBridgeIsUnavoidable) {
  for (std::uint64_t seed : {5u, 6u, 7u}) {
    const auto pts = geom::uniform_points(70, geom::bbox::rect(1300, 1300), seed);
    cbtc_params params;
    const auto base = build_topology(pts, pm, params, optimization_set::all()).topology;
    const augment_result res = augment_bridge_resilience(base, pts, pm.max_range());
    const auto gr = graph::build_max_power_graph(pts, pm.max_range());

    for (const graph::edge& b : graph::bridges(res.topology)) {
      // Removing the bridge must split G_R's corresponding region too:
      // no G_R edge (other than b itself) crosses the topology cut.
      graph::undirected_graph cut = res.topology;
      cut.remove_edge(b.u, b.v);
      const auto sides = graph::connected_components(cut);
      for (const graph::edge& ge : gr.edges()) {
        if (ge == b || res.topology.has_edge(ge.u, ge.v)) continue;
        EXPECT_TRUE(sides.same_component(ge.u, ge.v))
            << "seed " << seed << ": G_R edge " << ge.u << "-" << ge.v
            << " could have bypassed bridge " << b.u << "-" << b.v;
      }
    }
  }
}

TEST(Augment, SharplyReducesBridgeCountOnCbtcOutput) {
  const auto pts = geom::uniform_points(100, geom::bbox::rect(1500, 1500), 11);
  cbtc_params params;
  const auto base = build_topology(pts, pm, params, optimization_set::all()).topology;
  const augment_result res = augment_bridge_resilience(base, pts, pm.max_range());
  EXPECT_LT(graph::bridges(res.topology).size(), graph::bridges(base).size());
  // Cost: modest degree increase.
  EXPECT_LT(graph::average_degree(res.topology), graph::average_degree(base) + 2.0);
}

TEST(Augment, ConnectivityUnchanged) {
  const auto pts = geom::uniform_points(60, geom::bbox::rect(1300, 1300), 13);
  cbtc_params params;
  const auto base = build_topology(pts, pm, params, optimization_set::all()).topology;
  const augment_result res = augment_bridge_resilience(base, pts, pm.max_range());
  EXPECT_TRUE(graph::same_connectivity(res.topology, base));
}

}  // namespace
}  // namespace cbtc::algo
