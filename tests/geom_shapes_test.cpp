#include <gtest/gtest.h>

#include <cmath>

#include "geom/angle.h"
#include "geom/bbox.h"
#include "geom/circle.h"
#include "geom/cone.h"
#include "geom/vec2.h"

namespace cbtc::geom {
namespace {

// ---------------------------------------------------------------- cone

TEST(Cone, BisectedByAimsAtTarget) {
  const vec2 u{0.0, 0.0};
  const vec2 v{10.0, 0.0};
  const cone c = cone::bisected_by(u, pi / 2.0, v);
  EXPECT_NEAR(c.axis, 0.0, 1e-12);
  EXPECT_TRUE(c.contains(v));
}

TEST(Cone, ContainsRespectsHalfAngle) {
  const cone c = cone::bisected_by({0.0, 0.0}, pi / 2.0, {1.0, 0.0});
  EXPECT_TRUE(c.contains(polar({0, 0}, 1.0, pi / 4.0)));    // on the edge
  EXPECT_TRUE(c.contains(polar({0, 0}, 1.0, -pi / 4.0)));   // other edge
  EXPECT_FALSE(c.contains(polar({0, 0}, 1.0, pi / 3.0)));   // outside
  EXPECT_FALSE(c.contains(polar({0, 0}, 1.0, pi)));         // behind
}

TEST(Cone, ApexIsInside) {
  const cone c = cone::bisected_by({3.0, 4.0}, 0.5, {10.0, 4.0});
  EXPECT_TRUE(c.contains({3.0, 4.0}));
}

TEST(Cone, ContainsDirection) {
  const cone c{{0, 0}, pi, pi / 3.0};
  EXPECT_TRUE(c.contains_direction(pi));
  EXPECT_TRUE(c.contains_direction(pi + pi / 6.0));
  EXPECT_FALSE(c.contains_direction(pi + pi / 4.0));
}

TEST(Cone, WideConesWrapAroundZero) {
  const cone c{{0, 0}, 0.1, 5.0 * pi / 6.0};
  // axis 0.1, half width 5*pi/12 ~ 1.308; two_pi-0.5 is within.
  EXPECT_TRUE(c.contains_direction(two_pi - 0.5));
  EXPECT_FALSE(c.contains_direction(pi));
}

// -------------------------------------------------------------- circle

TEST(Circle, Contains) {
  const circle c{{0.0, 0.0}, 5.0};
  EXPECT_TRUE(c.contains({3.0, 4.0}));   // on the boundary
  EXPECT_TRUE(c.contains({1.0, 1.0}));
  EXPECT_FALSE(c.contains({4.0, 4.0}));
}

TEST(Circle, BoundaryDistanceSign) {
  const circle c{{0.0, 0.0}, 5.0};
  EXPECT_LT(c.boundary_distance({0.0, 0.0}), 0.0);
  EXPECT_NEAR(c.boundary_distance({5.0, 0.0}), 0.0, 1e-12);
  EXPECT_GT(c.boundary_distance({10.0, 0.0}), 0.0);
}

TEST(CircleIntersect, TwoPoints) {
  // The Figure 5 construction: circles of radius R around u0 = (0,0)
  // and v0 = (R,0) intersect at s, s' = (R/2, +-sqrt(3)/2 R).
  const double R = 500.0;
  const auto pts = intersect({{0.0, 0.0}, R}, {{R, 0.0}, R});
  ASSERT_TRUE(pts.has_value());
  auto [a, b] = *pts;
  if (a.y < b.y) std::swap(a, b);
  EXPECT_NEAR(a.x, R / 2.0, 1e-9);
  EXPECT_NEAR(a.y, R * std::sqrt(3.0) / 2.0, 1e-9);
  EXPECT_NEAR(b.x, R / 2.0, 1e-9);
  EXPECT_NEAR(b.y, -R * std::sqrt(3.0) / 2.0, 1e-9);
}

TEST(CircleIntersect, TangentCirclesTouchOnce) {
  const auto pts = intersect({{0.0, 0.0}, 1.0}, {{2.0, 0.0}, 1.0});
  ASSERT_TRUE(pts.has_value());
  EXPECT_NEAR(distance(pts->first, pts->second), 0.0, 1e-9);
  EXPECT_NEAR(pts->first.x, 1.0, 1e-9);
}

TEST(CircleIntersect, DisjointReturnsNullopt) {
  EXPECT_FALSE(intersect({{0.0, 0.0}, 1.0}, {{5.0, 0.0}, 1.0}).has_value());
}

TEST(CircleIntersect, NestedReturnsNullopt) {
  EXPECT_FALSE(intersect({{0.0, 0.0}, 5.0}, {{0.5, 0.0}, 1.0}).has_value());
}

TEST(CircleIntersect, ConcentricReturnsNullopt) {
  EXPECT_FALSE(intersect({{0.0, 0.0}, 2.0}, {{0.0, 0.0}, 3.0}).has_value());
}

TEST(CircleIntersect, PointsLieOnBothCircles) {
  const circle a{{1.0, 2.0}, 3.0};
  const circle b{{4.0, -1.0}, 4.0};
  const auto pts = intersect(a, b);
  ASSERT_TRUE(pts.has_value());
  for (const vec2& p : {pts->first, pts->second}) {
    EXPECT_NEAR(distance(p, a.center), a.radius, 1e-9);
    EXPECT_NEAR(distance(p, b.center), b.radius, 1e-9);
  }
}

// ---------------------------------------------------------------- bbox

TEST(Bbox, RectFactory) {
  constexpr bbox r = bbox::rect(1500.0, 1000.0);
  EXPECT_DOUBLE_EQ(r.width(), 1500.0);
  EXPECT_DOUBLE_EQ(r.height(), 1000.0);
  EXPECT_DOUBLE_EQ(r.area(), 1.5e6);
}

TEST(Bbox, Contains) {
  constexpr bbox r = bbox::rect(10.0, 10.0);
  EXPECT_TRUE(r.contains({5.0, 5.0}));
  EXPECT_TRUE(r.contains({0.0, 0.0}));
  EXPECT_TRUE(r.contains({10.0, 10.0}));
  EXPECT_FALSE(r.contains({10.1, 5.0}));
  EXPECT_FALSE(r.contains({5.0, -0.1}));
}

TEST(Bbox, ClampProjectsOntoBox) {
  constexpr bbox r = bbox::rect(10.0, 10.0);
  EXPECT_EQ(r.clamp({-5.0, 5.0}), vec2(0.0, 5.0));
  EXPECT_EQ(r.clamp({12.0, 15.0}), vec2(10.0, 10.0));
  EXPECT_EQ(r.clamp({3.0, 4.0}), vec2(3.0, 4.0));
}

}  // namespace
}  // namespace cbtc::geom
