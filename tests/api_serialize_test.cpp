// JSON scenario files: a saved scenario_spec + sim_spec must round-trip
// field for field, sparse files fall back to spec defaults, and
// malformed input (bad JSON, unknown keys, wrong types) fails loudly.
#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <string>

#include "api/api.h"

namespace cbtc::api {
namespace {

scenario_file busy_file() {
  scenario_file f;
  scenario_spec& s = f.scenario;
  s.name = "round_trip";
  s.deploy = {.kind = deployment_kind::cluster,
              .nodes = 77,
              .region_side = 1234.5,
              .clusters = 3,
              .cluster_sigma = 99.5,
              .grid_jitter = 0.25};
  s.radio = {.path_loss_exponent = 4.0, .max_range = 321.0};
  s.method = method_spec::of_baseline(baseline_kind::yao);
  s.method.yao_cones = 8;
  s.cbtc.alpha = 2.0;
  s.cbtc.mode = algo::growth_mode::continuous;
  s.cbtc.initial_power = 17.5;
  s.cbtc.increase_factor = 3.0;
  s.opts = {.shrink_back = true,
            .asymmetric_removal = false,
            .pairwise_removal = true,
            .gain_aware = true};
  s.protocol.agent.round_timeout = 0.75;
  s.protocol.agent.reply_margin = 1.25;
  s.protocol.agent.retries_per_level = 4;
  s.protocol.direction_noise = 0.01;
  s.protocol.max_events = 123456;
  s.protocol.channel = {.drop_prob = 0.05,
                        .dup_prob = 0.01,
                        .base_delay = 0.02,
                        .delay_per_unit = 0.001,
                        .jitter_max = 0.03};
  s.base_seed = 0xdeadbeefcafef00dULL;  // must survive as an exact u64
  s.metrics = {.stretch = false, .stretch_samples = 5, .interference = false, .robustness = true};
  s.post.bridge_augmentation = true;

  sim_spec dyn;
  dyn.horizon = 99.0;
  dyn.settle = 11.0;
  dyn.sample_every = 3.5;
  dyn.beacons = {.interval = 0.8, .miss_limit = 5, .achange_threshold = 0.1, .shrink_back = false};
  dyn.mobility = {.kind = mobility_kind::random_waypoint,
                  .min_speed = 2.5,
                  .max_speed = 7.5,
                  .pause = 1.5,
                  .tick = 0.25,
                  .start = 10.0,
                  .until = 80.0};
  dyn.mirror_agent_tables = false;  // non-default: must survive the trip
  dyn.partition = {.regions = 9, .min_nodes = 2048};
  dyn.failures.random_crashes = 6;
  dyn.failures.window_begin = 15.0;
  dyn.failures.window_end = 45.0;
  dyn.failures.events.push_back({.node = 12, .time = 33.0, .restart = false});
  dyn.failures.events.push_back({.node = 12, .time = 44.0, .restart = true});
  f.sim = dyn;
  return f;
}

TEST(ApiSerialize, RoundTripPreservesEveryField) {
  const scenario_file original = busy_file();
  const scenario_file parsed = parse_scenario_json(to_json(original));

  const scenario_spec& a = original.scenario;
  const scenario_spec& b = parsed.scenario;
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.deploy.kind, b.deploy.kind);
  EXPECT_EQ(a.deploy.nodes, b.deploy.nodes);
  EXPECT_DOUBLE_EQ(a.deploy.region_side, b.deploy.region_side);
  EXPECT_EQ(a.deploy.clusters, b.deploy.clusters);
  EXPECT_DOUBLE_EQ(a.deploy.cluster_sigma, b.deploy.cluster_sigma);
  EXPECT_DOUBLE_EQ(a.deploy.grid_jitter, b.deploy.grid_jitter);
  EXPECT_DOUBLE_EQ(a.radio.path_loss_exponent, b.radio.path_loss_exponent);
  EXPECT_DOUBLE_EQ(a.radio.max_range, b.radio.max_range);
  EXPECT_EQ(a.method.k, b.method.k);
  EXPECT_EQ(a.method.baseline, b.method.baseline);
  EXPECT_EQ(a.method.yao_cones, b.method.yao_cones);
  EXPECT_DOUBLE_EQ(a.cbtc.alpha, b.cbtc.alpha);
  EXPECT_EQ(a.cbtc.mode, b.cbtc.mode);
  EXPECT_DOUBLE_EQ(a.cbtc.initial_power, b.cbtc.initial_power);
  EXPECT_DOUBLE_EQ(a.cbtc.increase_factor, b.cbtc.increase_factor);
  EXPECT_EQ(a.opts.shrink_back, b.opts.shrink_back);
  EXPECT_EQ(a.opts.asymmetric_removal, b.opts.asymmetric_removal);
  EXPECT_EQ(a.opts.pairwise_removal, b.opts.pairwise_removal);
  EXPECT_EQ(a.opts.gain_aware, b.opts.gain_aware);
  EXPECT_DOUBLE_EQ(a.protocol.agent.round_timeout, b.protocol.agent.round_timeout);
  EXPECT_DOUBLE_EQ(a.protocol.agent.reply_margin, b.protocol.agent.reply_margin);
  EXPECT_EQ(a.protocol.agent.retries_per_level, b.protocol.agent.retries_per_level);
  EXPECT_DOUBLE_EQ(a.protocol.direction_noise, b.protocol.direction_noise);
  EXPECT_EQ(a.protocol.max_events, b.protocol.max_events);
  EXPECT_DOUBLE_EQ(a.protocol.channel.drop_prob, b.protocol.channel.drop_prob);
  EXPECT_DOUBLE_EQ(a.protocol.channel.dup_prob, b.protocol.channel.dup_prob);
  EXPECT_DOUBLE_EQ(a.protocol.channel.base_delay, b.protocol.channel.base_delay);
  EXPECT_DOUBLE_EQ(a.protocol.channel.delay_per_unit, b.protocol.channel.delay_per_unit);
  EXPECT_DOUBLE_EQ(a.protocol.channel.jitter_max, b.protocol.channel.jitter_max);
  EXPECT_EQ(a.base_seed, b.base_seed);
  EXPECT_EQ(a.metrics.stretch, b.metrics.stretch);
  EXPECT_EQ(a.metrics.stretch_samples, b.metrics.stretch_samples);
  EXPECT_EQ(a.metrics.interference, b.metrics.interference);
  EXPECT_EQ(a.metrics.robustness, b.metrics.robustness);
  EXPECT_EQ(a.post.bridge_augmentation, b.post.bridge_augmentation);

  ASSERT_TRUE(parsed.sim.has_value());
  const sim_spec& x = *original.sim;
  const sim_spec& y = *parsed.sim;
  EXPECT_DOUBLE_EQ(x.horizon, y.horizon);
  EXPECT_DOUBLE_EQ(x.settle, y.settle);
  EXPECT_DOUBLE_EQ(x.sample_every, y.sample_every);
  EXPECT_EQ(x.mirror_agent_tables, y.mirror_agent_tables);
  EXPECT_EQ(x.partition.regions, y.partition.regions);
  EXPECT_EQ(x.partition.min_nodes, y.partition.min_nodes);
  EXPECT_DOUBLE_EQ(x.beacons.interval, y.beacons.interval);
  EXPECT_EQ(x.beacons.miss_limit, y.beacons.miss_limit);
  EXPECT_DOUBLE_EQ(x.beacons.achange_threshold, y.beacons.achange_threshold);
  EXPECT_EQ(x.beacons.shrink_back, y.beacons.shrink_back);
  EXPECT_EQ(x.mobility.kind, y.mobility.kind);
  EXPECT_DOUBLE_EQ(x.mobility.min_speed, y.mobility.min_speed);
  EXPECT_DOUBLE_EQ(x.mobility.max_speed, y.mobility.max_speed);
  EXPECT_DOUBLE_EQ(x.mobility.pause, y.mobility.pause);
  EXPECT_DOUBLE_EQ(x.mobility.tick, y.mobility.tick);
  EXPECT_DOUBLE_EQ(x.mobility.start, y.mobility.start);
  EXPECT_DOUBLE_EQ(x.mobility.until, y.mobility.until);
  EXPECT_EQ(x.failures.random_crashes, y.failures.random_crashes);
  EXPECT_DOUBLE_EQ(x.failures.window_begin, y.failures.window_begin);
  EXPECT_DOUBLE_EQ(x.failures.window_end, y.failures.window_end);
  ASSERT_EQ(y.failures.events.size(), 2u);
  EXPECT_EQ(y.failures.events[0].node, 12u);
  EXPECT_DOUBLE_EQ(y.failures.events[0].time, 33.0);
  EXPECT_FALSE(y.failures.events[0].restart);
  EXPECT_TRUE(y.failures.events[1].restart);
}

TEST(ApiSerialize, FixedPositionsRoundTrip) {
  scenario_file f;
  f.scenario.deploy = deployment_spec::fixed_positions(
      {{0.0, 0.0}, {100.5, -3.25}, {7.0, 42.0}});
  const scenario_file parsed = parse_scenario_json(to_json(f));
  ASSERT_EQ(parsed.scenario.deploy.kind, deployment_kind::fixed);
  ASSERT_EQ(parsed.scenario.deploy.fixed.size(), 3u);
  EXPECT_DOUBLE_EQ(parsed.scenario.deploy.fixed[1].x, 100.5);
  EXPECT_DOUBLE_EQ(parsed.scenario.deploy.fixed[1].y, -3.25);
  EXPECT_EQ(parsed.scenario.deploy.nodes, 3u);
  EXPECT_FALSE(parsed.sim.has_value());
}

TEST(ApiSerialize, SparseFilesFallBackToDefaults) {
  const scenario_file f = parse_scenario_json(R"({
    "scenario": {"deployment": {"nodes": 12}, "method": "gabriel"},
    "sim": {"horizon": 50}
  })");
  EXPECT_EQ(f.scenario.deploy.nodes, 12u);
  EXPECT_EQ(f.scenario.deploy.kind, deployment_kind::uniform);
  EXPECT_EQ(f.scenario.method.k, method_spec::kind::baseline);
  EXPECT_EQ(f.scenario.method.baseline, baseline_kind::gabriel);
  EXPECT_DOUBLE_EQ(f.scenario.radio.max_range, scenario_spec{}.radio.max_range);
  ASSERT_TRUE(f.sim.has_value());
  EXPECT_DOUBLE_EQ(f.sim->horizon, 50.0);
  EXPECT_DOUBLE_EQ(f.sim->settle, sim_spec{}.settle);
}

TEST(ApiSerialize, StcMethodRoundTrips) {
  // String form in, canonical object form out, stable thereafter.
  const scenario_file f = parse_scenario_json(R"({"scenario": {"method": "stc"}})");
  EXPECT_EQ(f.scenario.method.k, method_spec::kind::stc);
  const std::string json = to_json(f);
  const scenario_file again = parse_scenario_json(json);
  EXPECT_EQ(again.scenario.method.k, method_spec::kind::stc);
  EXPECT_EQ(to_json(again), json);
  // The gain_aware optimization knob rides the same round trip.
  const scenario_file g = parse_scenario_json(
      R"({"scenario": {"optimizations": {"shrink_back": true, "gain_aware": true}}})");
  EXPECT_TRUE(g.scenario.opts.gain_aware);
  EXPECT_TRUE(parse_scenario_json(to_json(g)).scenario.opts.gain_aware);
}

TEST(ApiSerialize, MalformedMethodRejected) {
  EXPECT_THROW(parse_scenario_json(R"({"scenario": {"method": "carrier-pigeon"}})"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario_json(R"({"scenario": {"method": {"name": "carrier-pigeon"}}})"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario_json(R"({"scenario": {"method": {"typo": "stc"}}})"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario_json(R"({"scenario": {"method": 7}})"), std::invalid_argument);
}

TEST(ApiSerialize, BareScenarioObjectIsAccepted) {
  const scenario_file f = parse_scenario_json(R"({"name": "bare", "base_seed": 5})");
  EXPECT_EQ(f.scenario.name, "bare");
  EXPECT_EQ(f.scenario.base_seed, 5u);
  EXPECT_FALSE(f.sim.has_value());
}

TEST(ApiSerialize, MalformedInputFailsLoudly) {
  EXPECT_THROW(parse_scenario_json("{"), std::invalid_argument);
  EXPECT_THROW(parse_scenario_json("[1, 2]"), std::invalid_argument);
  EXPECT_THROW(parse_scenario_json(R"({"scenario": {"typo_key": 1}})"), std::invalid_argument);
  EXPECT_THROW(parse_scenario_json(R"({"scenario": {}, "sim": {"mobility": {"kind": "warp"}}})"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario_json(R"({"scenario": {"cbtc": {"mode": "sideways"}}})"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario_json(R"({"scenario": {"base_seed": "not-a-number"}})"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario_json(R"({"scenario": {}, "extra": 1})"), std::invalid_argument);
  // Fractional counts must be rejected, not truncated.
  EXPECT_THROW(parse_scenario_json(R"({"scenario": {"deployment": {"nodes": 12.7}}})"),
               std::invalid_argument);
  EXPECT_THROW(
      parse_scenario_json(R"({"scenario": {}, "sim": {"beacons": {"miss_limit": 2.5}}})"),
      std::invalid_argument);
  // Unknown or fractional partition knobs fail loudly too.
  EXPECT_THROW(
      parse_scenario_json(R"({"scenario": {}, "sim": {"partition": {"lanes": 4}}})"),
      std::invalid_argument);
  EXPECT_THROW(
      parse_scenario_json(R"({"scenario": {}, "sim": {"partition": {"regions": 4.5}}})"),
      std::invalid_argument);
  // Positions without kind "fixed" would silently run a different
  // network than the file describes.
  EXPECT_THROW(parse_scenario_json(R"({"scenario": {"deployment": {"positions": [[0, 0]]}}})"),
               std::invalid_argument);
  // Exact integers in scientific notation are still fine.
  const scenario_file sci =
      parse_scenario_json(R"({"scenario": {"deployment": {"nodes": 1e2}}})");
  EXPECT_EQ(sci.scenario.deploy.nodes, 100u);
}

TEST(ApiSerialize, PropagationRoundTripsAllKinds) {
  // Shadowing: every knob, including an exact-u64 seed.
  scenario_file f;
  f.scenario.radio.propagation = {.kind = radio::propagation_kind::lognormal_shadowing,
                                  .sigma_db = 5.5,
                                  .clamp_db = 11.0,
                                  .seed = 0xfeedfacecafebeefULL};
  scenario_file parsed = parse_scenario_json(to_json(f));
  EXPECT_EQ(parsed.scenario.radio.propagation.kind,
            radio::propagation_kind::lognormal_shadowing);
  EXPECT_DOUBLE_EQ(parsed.scenario.radio.propagation.sigma_db, 5.5);
  EXPECT_DOUBLE_EQ(parsed.scenario.radio.propagation.clamp_db, 11.0);
  EXPECT_EQ(parsed.scenario.radio.propagation.seed, 0xfeedfacecafebeefULL);

  // Obstacles: boxes and losses survive exactly.
  f.scenario.radio.propagation = {};
  f.scenario.radio.propagation.kind = radio::propagation_kind::obstacle_field;
  f.scenario.radio.propagation.obstacles = {
      {.box = {{1.5, 2.5}, {30.0, 40.0}}, .loss_db = 7.25},
      {.box = {{-10.0, -20.0}, {-1.0, -2.0}}, .loss_db = 3.0},
  };
  parsed = parse_scenario_json(to_json(f));
  EXPECT_EQ(parsed.scenario.radio.propagation.kind, radio::propagation_kind::obstacle_field);
  ASSERT_EQ(parsed.scenario.radio.propagation.obstacles.size(), 2u);
  EXPECT_EQ(parsed.scenario.radio.propagation.obstacles[0],
            f.scenario.radio.propagation.obstacles[0]);
  EXPECT_EQ(parsed.scenario.radio.propagation.obstacles[1],
            f.scenario.radio.propagation.obstacles[1]);

  // Isotropic is the default and is never written out.
  f.scenario.radio.propagation = {};
  EXPECT_EQ(to_json(f).find("propagation"), std::string::npos);
  EXPECT_EQ(parse_scenario_json(to_json(f)).scenario.radio.propagation.kind,
            radio::propagation_kind::isotropic);
}

/// Property/fuzz pass: a pseudo-random walk over the spec space. The
/// invariant is idempotence at the JSON level — parse(to_json(x))
/// serializes to the identical string — which catches any field that
/// is written but not read, read but not written, or lossily encoded.
TEST(ApiSerialize, RandomSpecsRoundTripIdempotently) {
  std::mt19937_64 rng(20260729);
  const auto pick_double = [&](double lo, double hi) {
    return lo + (hi - lo) * static_cast<double>(rng() >> 11) * 0x1.0p-53;
  };
  for (int round = 0; round < 200; ++round) {
    scenario_file f;
    scenario_spec& s = f.scenario;
    s.name = "fuzz_" + std::to_string(round);
    s.deploy.kind = static_cast<deployment_kind>(rng() % 3);  // fixed handled elsewhere
    s.deploy.nodes = 1 + rng() % 500;
    s.deploy.region_side = pick_double(10.0, 5000.0);
    s.deploy.clusters = 1 + rng() % 9;
    s.deploy.cluster_sigma = pick_double(1.0, 400.0);
    s.deploy.grid_jitter = pick_double(0.0, 1.0);
    s.radio.path_loss_exponent = pick_double(1.0, 6.0);
    s.radio.max_range = pick_double(10.0, 2000.0);
    switch (rng() % 3) {
      case 0:
        break;  // isotropic
      case 1:
        s.radio.propagation = {.kind = radio::propagation_kind::lognormal_shadowing,
                               .sigma_db = pick_double(0.0, 12.0),
                               .clamp_db = pick_double(0.0, 20.0),
                               .seed = rng()};
        break;
      default: {
        s.radio.propagation.kind = radio::propagation_kind::obstacle_field;
        const std::size_t count = 1 + rng() % 5;
        for (std::size_t i = 0; i < count; ++i) {
          const double x0 = pick_double(-100.0, 1000.0);
          const double y0 = pick_double(-100.0, 1000.0);
          s.radio.propagation.obstacles.push_back(
              {.box = {{x0, y0}, {x0 + pick_double(0.0, 500.0), y0 + pick_double(0.0, 500.0)}},
               .loss_db = pick_double(0.1, 30.0)});
        }
        break;
      }
    }
    switch (rng() % 3) {
      case 0:
        s.method = method_spec::protocol();
        break;
      case 1:
        s.method = method_spec::stc();
        break;
      default:
        s.method = method_spec::of_baseline(static_cast<baseline_kind>(rng() % 6));
        break;
    }
    s.opts.gain_aware = rng() % 2 == 0;
    s.cbtc.alpha = pick_double(0.1, 6.0);
    s.cbtc.increase_factor = pick_double(1.1, 4.0);
    s.cbtc.intra_threads = static_cast<unsigned>(rng() % 9);
    s.base_seed = rng();
    s.metrics.stretch = rng() % 2 == 0;
    s.metrics.stretch_samples = rng() % 64;
    if (rng() % 2 == 0) {
      sim_spec dyn;
      dyn.horizon = pick_double(1.0, 500.0);
      dyn.settle = pick_double(0.0, 50.0);
      dyn.mirror_agent_tables = rng() % 2 == 0;
      dyn.partition.regions = static_cast<std::uint32_t>(rng() % 17);
      dyn.partition.min_nodes = rng() % 10000;
      dyn.mobility.kind = static_cast<mobility_kind>(rng() % 3);
      dyn.mobility.max_speed = pick_double(0.0, 20.0);
      dyn.failures.random_crashes = rng() % 10;
      f.sim = dyn;
    }

    const std::string once = to_json(f);
    const std::string twice = to_json(parse_scenario_json(once));
    ASSERT_EQ(once, twice) << "round " << round;
  }
}

TEST(ApiSerialize, MalformedPropagationFailsLoudly) {
  // Unknown kind.
  EXPECT_THROW(parse_scenario_json(
                   R"({"scenario": {"radio": {"propagation": {"kind": "tachyonic"}}}})"),
               std::invalid_argument);
  // Unknown key inside the propagation object.
  EXPECT_THROW(parse_scenario_json(
                   R"({"scenario": {"radio": {"propagation": {"kind": "isotropic", "x": 1}}}})"),
               std::invalid_argument);
  // Wrong type for sigma_db.
  EXPECT_THROW(
      parse_scenario_json(
          R"({"scenario": {"radio": {"propagation": {"kind": "shadowing", "sigma_db": "big"}}}})"),
      std::invalid_argument);
  // Shadowing-only keys on a foreign kind are rejected, not silently
  // dropped (a stray sigma_db almost always means the kind is wrong).
  EXPECT_THROW(
      parse_scenario_json(
          R"({"scenario": {"radio": {"propagation": {"kind": "isotropic", "sigma_db": 6}}}})"),
      std::invalid_argument);
  EXPECT_THROW(
      parse_scenario_json(
          R"({"scenario": {"radio": {"propagation": {"kind": "obstacles", "seed": 3,
              "obstacles": [{"box": [0, 0, 1, 1], "loss_db": 3}]}}}})"),
      std::invalid_argument);
  // Negative sigma / clamp.
  EXPECT_THROW(
      parse_scenario_json(
          R"({"scenario": {"radio": {"propagation": {"kind": "shadowing", "sigma_db": -4}}}})"),
      std::invalid_argument);
  EXPECT_THROW(
      parse_scenario_json(
          R"({"scenario": {"radio": {"propagation": {"kind": "shadowing", "clamp_db": -1}}}})"),
      std::invalid_argument);
  // Obstacles on a non-obstacle kind.
  EXPECT_THROW(
      parse_scenario_json(
          R"({"scenario": {"radio": {"propagation": {"kind": "isotropic",
              "obstacles": [{"box": [0, 0, 1, 1], "loss_db": 3}]}}}})"),
      std::invalid_argument);
  // Obstacle box with the wrong arity, inverted corners, bad loss.
  EXPECT_THROW(
      parse_scenario_json(
          R"({"scenario": {"radio": {"propagation": {"kind": "obstacles",
              "obstacles": [{"box": [0, 0, 1], "loss_db": 3}]}}}})"),
      std::invalid_argument);
  EXPECT_THROW(
      parse_scenario_json(
          R"({"scenario": {"radio": {"propagation": {"kind": "obstacles",
              "obstacles": [{"box": [5, 0, 1, 1], "loss_db": 3}]}}}})"),
      std::invalid_argument);
  EXPECT_THROW(
      parse_scenario_json(
          R"({"scenario": {"radio": {"propagation": {"kind": "obstacles",
              "obstacles": [{"box": [0, 0, 1, 1], "loss_db": 0}]}}}})"),
      std::invalid_argument);
  // Empty obstacle list for an obstacle field.
  EXPECT_THROW(
      parse_scenario_json(
          R"({"scenario": {"radio": {"propagation": {"kind": "obstacles", "obstacles": []}}}})"),
      std::invalid_argument);
  // The short aliases parse.
  EXPECT_EQ(parse_scenario_json(
                R"({"scenario": {"radio": {"propagation": {"kind": "shadowing"}}}})")
                .scenario.radio.propagation.kind,
            radio::propagation_kind::lognormal_shadowing);
}

TEST(ApiSerialize, SaveAndLoadFile) {
  const std::string path = "/tmp/cbtc_serialize_test.json";
  const scenario_file original = busy_file();
  save_scenario_file(path, original);
  const scenario_file loaded = load_scenario_file(path);
  EXPECT_EQ(loaded.scenario.name, original.scenario.name);
  EXPECT_EQ(loaded.scenario.base_seed, original.scenario.base_seed);
  ASSERT_TRUE(loaded.sim.has_value());
  EXPECT_DOUBLE_EQ(loaded.sim->horizon, original.sim->horizon);
  std::remove(path.c_str());
  EXPECT_THROW(load_scenario_file("/nonexistent/dir/x.json"), std::runtime_error);
}

}  // namespace
}  // namespace cbtc::api
