// CSR-vs-nested equivalence battery: the flat (offsets + neighbors)
// representation must be logically indistinguishable from nested
// adjacency — same edges, same neighbor spans, same iteration order —
// across round-trips, mutation (which converts back to nested), and
// the parallel constructions that now assemble CSR directly.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "algo/pairwise.h"
#include "geom/spatial_order.h"
#include "geom/vec2.h"
#include "graph/digraph.h"
#include "graph/euclidean.h"
#include "graph/graph.h"
#include "radio/propagation.h"
#include "util/parallel.h"

namespace cbtc::graph {
namespace {

undirected_graph random_graph(std::size_t n, double p, std::mt19937_64& rng) {
  undirected_graph g(n);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (node_id u = 0; u < n; ++u) {
    for (node_id v = u + 1; v < n; ++v) {
      if (coin(rng) < p) g.add_edge(u, v);
    }
  }
  return g;
}

digraph random_digraph(std::size_t n, double p, std::mt19937_64& rng) {
  digraph d(n);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (node_id u = 0; u < n; ++u) {
    for (node_id v = 0; v < n; ++v) {
      if (u != v && coin(rng) < p) d.add_arc(u, v);
    }
  }
  return d;
}

std::vector<geom::vec2> random_positions(std::size_t n, double side, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> coord(0.0, side);
  std::vector<geom::vec2> p(n);
  for (auto& q : p) q = {coord(rng), coord(rng)};
  return p;
}

void expect_identical(const undirected_graph& a, const undirected_graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_TRUE(a == b);
  for (node_id u = 0; u < a.num_nodes(); ++u) {
    const auto na = a.neighbors(u);
    const auto nb = b.neighbors(u);
    ASSERT_EQ(na.size(), nb.size()) << "node " << u;
    for (std::size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]) << "node " << u;
  }
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(CsrGraph, FlattenedRoundTripRandomGraphs) {
  std::mt19937_64 rng(20260808);
  std::uniform_real_distribution<double> density(0.0, 0.2);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng() % 60);
    const undirected_graph g = random_graph(n, density(rng), rng);
    const undirected_graph flat = g.flattened();
    EXPECT_TRUE(flat.is_flat());
    EXPECT_FALSE(g.is_flat());
    expect_identical(g, flat);
    // And the round trip back through from_csr of a flat copy.
    expect_identical(flat, flat.flattened());
  }
}

TEST(CsrGraph, HasEdgeAndInducedMatchAcrossRepresentations) {
  std::mt19937_64 rng(7);
  const undirected_graph g = random_graph(40, 0.15, rng);
  const undirected_graph flat = g.flattened();
  for (node_id u = 0; u < 40; ++u) {
    for (node_id v = 0; v < 40; ++v) EXPECT_EQ(g.has_edge(u, v), flat.has_edge(u, v));
  }
  std::vector<bool> mask(40);
  for (std::size_t i = 0; i < mask.size(); ++i) mask[i] = rng() % 2 == 0;
  expect_identical(g.induced(mask), flat.induced(mask));
}

TEST(CsrGraph, MutationConvertsBackToNested) {
  std::mt19937_64 rng(99);
  undirected_graph nested = random_graph(30, 0.2, rng);
  undirected_graph flat = nested.flattened();
  // Apply the same random edit script to both representations.
  std::uniform_int_distribution<node_id> pick(0, 29);
  for (int i = 0; i < 200; ++i) {
    const node_id u = pick(rng);
    const node_id v = pick(rng);
    if (rng() % 2 == 0) {
      EXPECT_EQ(nested.add_edge(u, v), flat.add_edge(u, v));
    } else {
      EXPECT_EQ(nested.remove_edge(u, v), flat.remove_edge(u, v));
    }
  }
  EXPECT_FALSE(flat.is_flat());
  expect_identical(nested, flat);
}

TEST(CsrGraph, FromCsrEmptyAndIsolatedNodes) {
  const undirected_graph g =
      undirected_graph::from_csr(std::vector<std::size_t>(6, 0), {});
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.neighbors(3).empty());
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(CsrDigraph, ClosureAndCoreIdenticalSerialVsPool) {
  std::mt19937_64 rng(20010601);
  util::thread_pool pool(4);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng() % 80);
    const digraph d = random_digraph(n, 0.1, rng);
    const undirected_graph closure = d.symmetric_closure();
    const undirected_graph core = d.symmetric_core();
    expect_identical(closure, d.symmetric_closure(pool));
    expect_identical(core, d.symmetric_core(pool));
    // Reference semantics: closure = or, core = and.
    for (node_id u = 0; u < n; ++u) {
      for (node_id v = u + 1; v < n; ++v) {
        EXPECT_EQ(closure.has_edge(u, v), d.has_arc(u, v) || d.has_arc(v, u));
        EXPECT_EQ(core.has_edge(u, v), d.has_arc(u, v) && d.has_arc(v, u));
      }
    }
  }
}

TEST(CsrDigraph, FlattenedDigraphMatchesAndMutates) {
  std::mt19937_64 rng(31337);
  util::thread_pool pool(3);
  digraph d = random_digraph(50, 0.08, rng);
  std::vector<std::size_t> off(51, 0);
  std::vector<node_id> arcs;
  for (node_id u = 0; u < 50; ++u) {
    const auto nb = d.out_neighbors(u);
    arcs.insert(arcs.end(), nb.begin(), nb.end());
    off[u + 1] = arcs.size();
  }
  digraph flat = digraph::from_csr(std::move(off), std::move(arcs));
  EXPECT_TRUE(flat.is_flat());
  EXPECT_TRUE(flat == d);
  expect_identical(d.symmetric_closure(pool), flat.symmetric_closure(pool));
  expect_identical(d.symmetric_core(pool), flat.symmetric_core(pool));
  // Mutation converts the CSR digraph back to nested lists.
  EXPECT_EQ(d.add_arc(0, 49), flat.add_arc(0, 49));
  EXPECT_FALSE(flat.is_flat());
  EXPECT_TRUE(flat == d);
}

TEST(CsrGraph, PairwiseRemovalIdenticalOnCsrInputAndAnyWidth) {
  std::mt19937_64 rng(424242);
  util::thread_pool four(4);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t n = 60 + rng() % 60;
    const std::vector<geom::vec2> pos = random_positions(n, 900.0, rng);
    const undirected_graph g = build_max_power_graph(pos, 320.0);
    const algo::pairwise_options opts{.remove_all = trial % 2 == 0};
    const algo::pairwise_result serial = algo::apply_pairwise_removal(g, pos, opts);
    const algo::pairwise_result wide = algo::apply_pairwise_removal(g, pos, opts, four);
    const algo::pairwise_result flat_in = algo::apply_pairwise_removal(g.flattened(), pos, opts, four);
    EXPECT_EQ(serial.redundant_edges, wide.redundant_edges);
    EXPECT_EQ(serial.removed_edges, wide.removed_edges);
    expect_identical(serial.topology, wide.topology);
    expect_identical(serial.topology, flat_in.topology);
  }
}

TEST(CsrGraph, PooledMaxPowerGraphMatchesSerial) {
  std::mt19937_64 rng(5150);
  util::thread_pool four(4);
  util::thread_pool one(1);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t n = 50 + rng() % 150;
    const std::vector<geom::vec2> pos = random_positions(n, 1200.0, rng);
    expect_identical(build_max_power_graph(pos, 400.0),
                     build_max_power_graph(pos, 400.0, four));
    expect_identical(build_max_power_graph(pos, 400.0),
                     build_max_power_graph(pos, 400.0, one));
    const radio::link_model shadowed(
        radio::power_model(2.0, 400.0),
        radio::propagation_model::lognormal_shadowing(4.0, 8.0, 77 + trial));
    expect_identical(build_max_power_graph(pos, shadowed),
                     build_max_power_graph(pos, shadowed, four));
  }
}

TEST(SpatialOrder, PermutationIsValidAndSpatiallyCoherent) {
  std::mt19937_64 rng(8);
  const std::vector<geom::vec2> pos = random_positions(500, 3000.0, rng);
  const std::vector<std::uint32_t> perm = geom::spatial_order(pos, 400.0);
  ASSERT_EQ(perm.size(), pos.size());
  std::vector<bool> seen(pos.size(), false);
  for (const std::uint32_t id : perm) {
    ASSERT_LT(id, pos.size());
    EXPECT_FALSE(seen[id]);
    seen[id] = true;
  }
  // Consecutive new ids should be far closer on average than random
  // pairs: a weak but robust locality assertion.
  double ordered = 0.0;
  double shuffled = 0.0;
  for (std::size_t k = 1; k < perm.size(); ++k) {
    ordered += geom::distance(pos[perm[k - 1]], pos[perm[k]]);
    shuffled += geom::distance(pos[k - 1], pos[k]);
  }
  EXPECT_LT(ordered, 0.5 * shuffled);
  // Degenerate cells fall back to the identity.
  const std::vector<std::uint32_t> identity = geom::spatial_order(pos, 0.0);
  for (std::size_t k = 0; k < identity.size(); ++k) EXPECT_EQ(identity[k], k);
}

}  // namespace
}  // namespace cbtc::graph
