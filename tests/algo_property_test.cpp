// Randomized property sweeps for the paper's theorems.
//
//   Theorem 2.1: alpha <= 5*pi/6  =>  G_alpha preserves connectivity.
//   Theorem 3.1: shrink-back (op1) preserves connectivity.
//   Theorem 3.2: alpha <= 2*pi/3  =>  E^-_alpha preserves connectivity.
//   Theorem 3.6: pairwise removal (op3) preserves connectivity.
//
// Each is exercised across node counts, densities, growth modes and
// alpha values on seeded random instances, plus the full pipeline.
#include <gtest/gtest.h>

#include <string>

#include "algo/analysis.h"
#include "algo/gadgets.h"
#include "algo/oracle.h"
#include "algo/pipeline.h"
#include "geom/random_points.h"
#include "graph/euclidean.h"
#include "graph/metrics.h"
#include "graph/traversal.h"
#include "radio/power_model.h"

namespace cbtc::algo {
namespace {

using geom::vec2;

struct sweep_case {
  std::uint64_t seed;
  std::size_t nodes;
  double region;
  double alpha;
  growth_mode mode;

  friend std::ostream& operator<<(std::ostream& os, const sweep_case& c) {
    return os << "seed=" << c.seed << " n=" << c.nodes << " region=" << c.region
              << " alpha=" << c.alpha << " mode=" << static_cast<int>(c.mode);
  }
};

std::string case_name(const ::testing::TestParamInfo<sweep_case>& info) {
  const sweep_case& c = info.param;
  std::string s = "s" + std::to_string(c.seed) + "_n" + std::to_string(c.nodes) + "_r" +
                  std::to_string(static_cast<int>(c.region)) + "_a" +
                  std::to_string(static_cast<int>(c.alpha * 100)) +
                  (c.mode == growth_mode::discrete ? "_disc" : "_cont");
  return s;
}

class ConnectivitySweep : public ::testing::TestWithParam<sweep_case> {
 protected:
  void SetUp() override {
    const sweep_case& c = GetParam();
    positions_ = geom::uniform_points(c.nodes, geom::bbox::rect(c.region, c.region), c.seed);
    gr_ = graph::build_max_power_graph(positions_, pm_.max_range());
    params_.alpha = c.alpha;
    params_.mode = c.mode;
  }

  radio::power_model pm_{2.0, 500.0};
  std::vector<vec2> positions_;
  graph::undirected_graph gr_;
  cbtc_params params_;
};

TEST_P(ConnectivitySweep, Theorem21_SymmetricClosurePreservesConnectivity) {
  const cbtc_result r = run_cbtc(positions_, pm_, params_);
  const auto g_alpha = r.symmetric_closure();
  EXPECT_TRUE(graph::same_connectivity(g_alpha, gr_)) << GetParam();
  // G_alpha is a subgraph of G_R with per-node radius <= R.
  const invariant_report rep = check_invariants(g_alpha, positions_, pm_.max_range());
  EXPECT_TRUE(rep.ok()) << GetParam() << (rep.violations.empty() ? "" : ": " + rep.violations[0]);
}

TEST_P(ConnectivitySweep, Theorem31_ShrinkBackPreservesConnectivity) {
  optimization_set opts;
  opts.shrink_back = true;
  const topology_result t = build_topology(positions_, pm_, params_, opts);
  EXPECT_TRUE(graph::same_connectivity(t.topology, gr_)) << GetParam();
}

TEST_P(ConnectivitySweep, Theorem32_SymmetricCorePreservesConnectivityForSmallAlpha) {
  if (!asymmetric_removal_applicable(GetParam().alpha)) {
    GTEST_SKIP() << "asymmetric removal requires alpha <= 2*pi/3";
  }
  const cbtc_result r = run_cbtc(positions_, pm_, params_);
  EXPECT_TRUE(graph::same_connectivity(r.symmetric_core(), gr_)) << GetParam();
}

TEST_P(ConnectivitySweep, Theorem36_PairwiseRemovalPreservesConnectivity) {
  optimization_set opts;
  opts.shrink_back = true;
  opts.pairwise_removal = true;
  const topology_result t = build_topology(positions_, pm_, params_, opts);
  EXPECT_TRUE(graph::same_connectivity(t.topology, gr_)) << GetParam();

  optimization_set all_opts;
  all_opts.shrink_back = true;
  all_opts.pairwise_removal = true;
  all_opts.pairwise.remove_all = true;
  const topology_result t_all = build_topology(positions_, pm_, params_, all_opts);
  EXPECT_TRUE(graph::same_connectivity(t_all.topology, gr_)) << GetParam();
}

TEST_P(ConnectivitySweep, FullPipelinePreservesConnectivityAndInvariants) {
  const topology_result t = build_topology(positions_, pm_, params_, optimization_set::all());
  const invariant_report rep = check_invariants(t.topology, positions_, pm_.max_range());
  EXPECT_TRUE(rep.ok()) << GetParam() << (rep.violations.empty() ? "" : ": " + rep.violations[0]);
  EXPECT_EQ(t.asymmetric_applied, asymmetric_removal_applicable(GetParam().alpha));
}

TEST_P(ConnectivitySweep, OptimizationsOnlyRemoveEdges) {
  const cbtc_result r = run_cbtc(positions_, pm_, params_);
  const auto basic = r.symmetric_closure();
  const topology_result all = build_topology(positions_, pm_, params_, optimization_set::all());
  for (const graph::edge& e : all.topology.edges()) {
    EXPECT_TRUE(basic.has_edge(e.u, e.v)) << GetParam();
  }
  EXPECT_LE(graph::average_degree(all.topology), graph::average_degree(basic) + 1e-12);
  EXPECT_LE(graph::average_radius(all.topology, positions_, pm_.max_range()),
            graph::average_radius(basic, positions_, pm_.max_range()) + 1e-9);
}

constexpr double a56 = alpha_five_pi_six;
constexpr double a23 = alpha_two_pi_three;

INSTANTIATE_TEST_SUITE_P(
    PaperWorkload, ConnectivitySweep,
    ::testing::Values(
        // The paper's evaluation shape: 100 nodes, 1500x1500, R = 500.
        sweep_case{101, 100, 1500.0, a56, growth_mode::discrete},
        sweep_case{102, 100, 1500.0, a56, growth_mode::discrete},
        sweep_case{103, 100, 1500.0, a56, growth_mode::continuous},
        sweep_case{104, 100, 1500.0, a23, growth_mode::discrete},
        sweep_case{105, 100, 1500.0, a23, growth_mode::continuous},
        // Sparse (barely connected) and dense regimes.
        sweep_case{106, 40, 1500.0, a56, growth_mode::discrete},
        sweep_case{107, 40, 1500.0, a23, growth_mode::discrete},
        sweep_case{108, 250, 1500.0, a56, growth_mode::discrete},
        sweep_case{109, 250, 1500.0, a23, growth_mode::continuous},
        // Small alpha (stronger coverage demands; op2 applies).
        sweep_case{110, 100, 1500.0, geom::pi / 2.0, growth_mode::discrete},
        sweep_case{111, 100, 1500.0, geom::pi / 3.0, growth_mode::discrete},
        // Larger field: multiple G_R components likely.
        sweep_case{112, 100, 4000.0, a56, growth_mode::discrete},
        sweep_case{113, 100, 4000.0, a23, growth_mode::discrete},
        sweep_case{114, 60, 3000.0, a56, growth_mode::continuous},
        // Tiny networks.
        sweep_case{115, 2, 600.0, a56, growth_mode::discrete},
        sweep_case{116, 5, 600.0, a56, growth_mode::discrete},
        sweep_case{117, 10, 800.0, a23, growth_mode::continuous}),
    case_name);

// Clustered, non-uniform placements stress the boundary-node paths.
class ClusteredSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusteredSweep, FullPipelineOnClusteredPlacements) {
  const radio::power_model pm(2.0, 500.0);
  const auto positions =
      geom::clustered_points(120, 6, 180.0, geom::bbox::rect(2000.0, 2000.0), GetParam());
  const auto gr = graph::build_max_power_graph(positions, pm.max_range());
  for (double alpha : {a56, a23}) {
    cbtc_params params;
    params.alpha = alpha;
    const topology_result t = build_topology(positions, pm, params, optimization_set::all());
    EXPECT_TRUE(graph::same_connectivity(t.topology, gr)) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusteredSweep, ::testing::Range<std::uint64_t>(200, 210));

// Path-loss exponents other than 2 (the paper allows any n >= 2).
class ExponentSweep : public ::testing::TestWithParam<double> {};

TEST_P(ExponentSweep, ConnectivityHoldsForAnyPathLossExponent) {
  const radio::power_model pm(GetParam(), 500.0);
  const auto positions = geom::uniform_points(100, geom::bbox::rect(1500.0, 1500.0), 314);
  const auto gr = graph::build_max_power_graph(positions, pm.max_range());
  const topology_result t = build_topology(positions, pm, {}, optimization_set::all());
  EXPECT_TRUE(graph::same_connectivity(t.topology, gr));
}

INSTANTIATE_TEST_SUITE_P(Exponents, ExponentSweep, ::testing::Values(2.0, 3.0, 4.0));

// Degenerate/adversarial placements.
TEST(ConnectivityEdgeCases, CollinearNodes) {
  const radio::power_model pm(2.0, 500.0);
  std::vector<vec2> line;
  for (int i = 0; i < 20; ++i) line.push_back({i * 300.0, 0.0});
  const auto gr = graph::build_max_power_graph(line, pm.max_range());
  const topology_result t = build_topology(line, pm, {}, optimization_set::all());
  EXPECT_TRUE(graph::same_connectivity(t.topology, gr));
  EXPECT_TRUE(graph::is_connected(t.topology));  // 300 < 500: a chain
}

TEST(ConnectivityEdgeCases, CoincidentNodes) {
  const radio::power_model pm(2.0, 500.0);
  const std::vector<vec2> pts{{0, 0}, {0, 0}, {100, 0}, {100, 0}};
  const auto gr = graph::build_max_power_graph(pts, pm.max_range());
  const topology_result t = build_topology(pts, pm, {}, optimization_set::all());
  EXPECT_TRUE(graph::same_connectivity(t.topology, gr));
}

TEST(ConnectivityEdgeCases, RegularGridPlacement) {
  const radio::power_model pm(2.0, 500.0);
  const auto pts = geom::jittered_grid_points(100, 0.0, geom::bbox::rect(1500, 1500), 1);
  const auto gr = graph::build_max_power_graph(pts, pm.max_range());
  for (double alpha : {a56, a23}) {
    cbtc_params params;
    params.alpha = alpha;
    const topology_result t = build_topology(pts, pm, params, optimization_set::all());
    EXPECT_TRUE(graph::same_connectivity(t.topology, gr)) << "alpha " << alpha;
  }
}

// The tightness boundary: alpha slightly above 5*pi/6 *can* disconnect
// (gadget), while alpha = 5*pi/6 on the same layout cannot.
TEST(ConnectivityEdgeCases, ThresholdTightnessViaGadget) {
  const auto g = gadgets::make_figure5(0.05);
  const radio::power_model pm(2.0, g.max_range);
  const auto gr = graph::build_max_power_graph(g.positions, g.max_range);

  cbtc_params above;
  above.alpha = g.alpha;
  above.mode = growth_mode::continuous;
  EXPECT_FALSE(
      graph::same_connectivity(run_cbtc(g.positions, pm, above).symmetric_closure(), gr));

  cbtc_params at;
  at.alpha = alpha_five_pi_six;
  at.mode = growth_mode::continuous;
  EXPECT_TRUE(graph::same_connectivity(run_cbtc(g.positions, pm, at).symmetric_closure(), gr));
}

}  // namespace
}  // namespace cbtc::algo
