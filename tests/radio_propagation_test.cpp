// The per-link propagation layer (radio/propagation.h) and its
// consumers, cross-checked against the pre-propagation reference path:
//
//   * isotropic link_model arithmetic is bitwise-identical to the bare
//     power_model (required power, rx power, decodability, G_R, oracle
//     growth) — the refactor must be invisible when gains are 1;
//   * shadowing gains are symmetric, reproducible, bounded by the
//     clamp, and independent of call order and thread count;
//   * obstacle gains follow segment-rectangle intersections exactly;
//   * the gain-aware max-power graph (grid) matches the O(n^2) brute
//     reference, and the live_neighbor_index maintains it exactly
//     through arbitrary churn (moves, crashes, restarts);
//   * the medium's delivery decisions and reception powers carry the
//     per-link budget, so a receiver's power estimate equals the true
//     per-link required power.
#include <gtest/gtest.h>

#include <algorithm>
#include <any>
#include <cmath>
#include <random>
#include <vector>

#include "algo/oracle.h"
#include "geom/random_points.h"
#include "graph/euclidean.h"
#include "graph/live_index.h"
#include "radio/propagation.h"
#include "sim/medium.h"
#include "sim/simulator.h"
#include "util/parallel.h"

namespace cbtc {
namespace {

using geom::vec2;

std::vector<vec2> random_field(std::size_t n, double side, std::uint64_t seed) {
  return geom::uniform_points(n, geom::bbox::rect(side, side), seed);
}

radio::propagation_model shadowing(std::uint64_t seed = 7) {
  return radio::propagation_model::lognormal_shadowing(4.0, 8.0, seed);
}

radio::propagation_model two_blocks() {
  return radio::propagation_model::obstacle_field({
      {.box = {{200.0, 200.0}, {500.0, 450.0}}, .loss_db = 9.0},
      {.box = {{600.0, 500.0}, {900.0, 800.0}}, .loss_db = 6.0},
  });
}

// ---- isotropic: the refactor must be invisible ----------------------

TEST(Propagation, IsotropicLinkModelMatchesPowerModelBitwise) {
  const radio::power_model pm(2.5, 437.0);
  const radio::link_model link(pm);  // implicit isotropic propagation
  ASSERT_TRUE(link.is_isotropic());
  EXPECT_EQ(link.max_candidate_range(), pm.max_range());
  EXPECT_EQ(link.max_power(), pm.max_power());

  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> coord(0.0, 1000.0);
  for (int i = 0; i < 500; ++i) {
    const vec2 a{coord(rng), coord(rng)};
    const vec2 b{coord(rng), coord(rng)};
    const double d = geom::distance(a, b);
    const double tx = pm.required_power(coord(rng) + 1.0);
    EXPECT_EQ(link.gain(0, 1, a, b), 1.0);
    EXPECT_EQ(link.required_power(0, 1, a, b), pm.required_power(d));  // bitwise
    EXPECT_EQ(link.rx_power_at(tx, d, 0, 1, a, b), pm.rx_power(tx, d));
    EXPECT_EQ(link.reaches_at(tx, d, 0, 1, a, b), pm.reaches(tx, d));
  }
}

TEST(Propagation, IsotropicMaxPowerGraphIdenticalToDistancePath) {
  const auto positions = random_field(300, 2000.0, 41);
  const radio::link_model link(radio::power_model(2.0, 500.0));
  EXPECT_EQ(graph::build_max_power_graph(positions, link),
            graph::build_max_power_graph(positions, 500.0));
  EXPECT_EQ(graph::build_max_power_graph_brute(positions, link),
            graph::build_max_power_graph_brute(positions, 500.0));
}

TEST(Propagation, IsotropicOracleGrowthBitwiseIdentical) {
  const auto positions = random_field(200, 1800.0, 5);
  const radio::power_model pm(2.0, 500.0);
  const radio::link_model link(pm);
  for (const auto mode : {algo::growth_mode::discrete, algo::growth_mode::continuous}) {
    algo::cbtc_params params;
    params.mode = mode;
    const algo::cbtc_result ref = algo::run_cbtc(positions, pm, params);
    const algo::cbtc_result via_link = algo::run_cbtc(positions, link, params);
    ASSERT_EQ(ref.nodes.size(), via_link.nodes.size());
    for (std::size_t u = 0; u < ref.nodes.size(); ++u) {
      const algo::node_result& a = ref.nodes[u];
      const algo::node_result& b = via_link.nodes[u];
      EXPECT_EQ(a.final_power, b.final_power) << "node " << u;  // bitwise
      EXPECT_EQ(a.boundary, b.boundary) << "node " << u;
      EXPECT_EQ(a.level_powers, b.level_powers) << "node " << u;
      ASSERT_EQ(a.neighbors.size(), b.neighbors.size()) << "node " << u;
      for (std::size_t i = 0; i < a.neighbors.size(); ++i) {
        EXPECT_EQ(a.neighbors[i].id, b.neighbors[i].id) << "node " << u;
        EXPECT_EQ(a.neighbors[i].distance, b.neighbors[i].distance) << "node " << u;
        EXPECT_EQ(a.neighbors[i].discovery_power, b.neighbors[i].discovery_power) << "node " << u;
      }
    }
  }
}

// ---- shadowing gains ------------------------------------------------

TEST(Propagation, ShadowingGainIsSymmetricDeterministicAndClamped) {
  const radio::propagation_model m = shadowing();
  const double lo = std::pow(10.0, -8.0 / 10.0);
  const double hi = std::pow(10.0, 8.0 / 10.0);
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<std::uint32_t> id(0, 5000);
  const vec2 p{0.0, 0.0};
  const vec2 q{10.0, 10.0};
  bool saw_non_unit = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint32_t u = id(rng);
    const std::uint32_t v = id(rng);
    if (u == v) continue;
    const double g = m.gain(u, v, p, q);
    EXPECT_EQ(g, m.gain(v, u, q, p)) << u << "," << v;  // symmetric, bitwise
    EXPECT_EQ(g, m.gain(u, v, p, q));                   // reproducible
    EXPECT_GE(g, lo);
    EXPECT_LE(g, hi);
    EXPECT_LE(g, m.max_gain());
    if (g != 1.0) saw_non_unit = true;
  }
  EXPECT_TRUE(saw_non_unit);
  // A different seed draws a different field.
  EXPECT_NE(m.gain(1, 2, p, q), shadowing(8).gain(1, 2, p, q));
}

TEST(Propagation, ShadowingGainIndependentOfCallOrderAndThreads) {
  const radio::propagation_model m = shadowing(11);
  const vec2 p{1.0, 2.0};
  const vec2 q{3.0, 4.0};
  const std::size_t n = 4000;

  const auto collect = [&](unsigned threads, bool reversed) {
    std::vector<double> gains(n);
    util::thread_pool pool(threads);
    pool.parallel_for(n, [&](std::size_t i) {
      const std::size_t k = reversed ? n - 1 - i : i;
      gains[k] = m.gain(static_cast<std::uint32_t>(k), static_cast<std::uint32_t>(k + 17), p, q);
    });
    return gains;
  };
  const std::vector<double> serial = collect(1, false);
  EXPECT_EQ(serial, collect(1, true));   // call order
  EXPECT_EQ(serial, collect(4, false));  // thread count
  EXPECT_EQ(serial, collect(8, true));
}

// ---- obstacle fields ------------------------------------------------

TEST(Propagation, ObstacleAttenuatesExactlyCrossingLinks) {
  const radio::propagation_model m = two_blocks();
  EXPECT_EQ(m.max_gain(), 1.0);
  const double g9 = std::pow(10.0, -9.0 / 10.0);
  const double g6 = std::pow(10.0, -6.0 / 10.0);

  // Clear line far from both rectangles.
  EXPECT_EQ(m.gain(0, 1, {0.0, 0.0}, {100.0, 0.0}), 1.0);
  // Straight through the first block.
  EXPECT_EQ(m.gain(0, 1, {100.0, 300.0}, {600.0, 300.0}), g9);
  // Endpoint inside the first block counts as crossing.
  EXPECT_EQ(m.gain(0, 1, {300.0, 300.0}, {1000.0, 300.0}), g9);
  // Diagonal through both blocks compounds the losses (dB add before
  // the single conversion, hence the exact 15 dB expectation).
  EXPECT_EQ(m.gain(0, 1, {150.0, 150.0}, {950.0, 850.0}), std::pow(10.0, -15.0 / 10.0));
  // Grazing exactly along a rectangle edge intersects (closed boxes).
  EXPECT_EQ(m.gain(0, 1, {0.0, 200.0}, {600.0, 200.0}), g9);
  // Vertical segment left of every block.
  EXPECT_EQ(m.gain(0, 1, {50.0, 0.0}, {50.0, 900.0}), 1.0);
}

TEST(Propagation, SegmentBoxIntersectionEdgeCases) {
  const geom::bbox box{{10.0, 10.0}, {20.0, 20.0}};
  EXPECT_TRUE(radio::segment_intersects_box(box, {0.0, 15.0}, {30.0, 15.0}));   // through
  EXPECT_TRUE(radio::segment_intersects_box(box, {15.0, 15.0}, {15.0, 15.0}));  // point inside
  EXPECT_TRUE(radio::segment_intersects_box(box, {0.0, 0.0}, {15.0, 15.0}));    // ends inside
  EXPECT_TRUE(radio::segment_intersects_box(box, {0.0, 10.0}, {30.0, 10.0}));   // along the edge
  EXPECT_TRUE(radio::segment_intersects_box(box, {5.0, 5.0}, {25.0, 25.0}));    // corner diagonal
  EXPECT_FALSE(radio::segment_intersects_box(box, {0.0, 0.0}, {30.0, 5.0}));    // below
  EXPECT_FALSE(radio::segment_intersects_box(box, {25.0, 0.0}, {25.0, 30.0}));  // right of it
  EXPECT_FALSE(radio::segment_intersects_box(box, {0.0, 25.0}, {9.0, 25.0}));   // short, above
  EXPECT_FALSE(radio::segment_intersects_box(box, {0.0, 21.0}, {9.0, 9.0}));    // near corner miss
}

TEST(Propagation, ObstacleValidationRejectsBadInput) {
  EXPECT_THROW(radio::propagation_model::obstacle_field(
                   {{.box = {{5.0, 0.0}, {1.0, 1.0}}, .loss_db = 3.0}}),
               std::invalid_argument);
  EXPECT_THROW(radio::propagation_model::obstacle_field(
                   {{.box = {{0.0, 0.0}, {1.0, 1.0}}, .loss_db = 0.0}}),
               std::invalid_argument);
  EXPECT_THROW(radio::propagation_model::lognormal_shadowing(-1.0, 8.0, 1),
               std::invalid_argument);
  EXPECT_THROW(radio::propagation_model::lognormal_shadowing(4.0, -1.0, 1),
               std::invalid_argument);
}

// ---- gain-aware reachability consumers ------------------------------

TEST(Propagation, MaxCandidateRangeBoundsEveryFeasibleLink) {
  const radio::link_model link(radio::power_model(2.0, 500.0), shadowing(21));
  EXPECT_GT(link.max_candidate_range(), link.max_range());  // gains can exceed 1
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<double> coord(0.0, 1500.0);
  for (std::uint32_t i = 0; i < 3000; ++i) {
    const vec2 a{coord(rng), coord(rng)};
    const vec2 b{coord(rng), coord(rng)};
    if (link.reaches(link.max_power(), i, i + 1, a, b)) {
      EXPECT_LE(geom::distance(a, b), link.max_candidate_range());
    }
  }
}

TEST(Propagation, GainAwareMaxPowerGraphMatchesBruteReference) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto positions = random_field(250, 1800.0, seed);
    const radio::link_model shadowed(radio::power_model(2.0, 500.0), shadowing(seed));
    EXPECT_EQ(graph::build_max_power_graph(positions, shadowed),
              graph::build_max_power_graph_brute(positions, shadowed));
    const radio::link_model blocked(radio::power_model(2.0, 500.0), two_blocks());
    EXPECT_EQ(graph::build_max_power_graph(positions, blocked),
              graph::build_max_power_graph_brute(positions, blocked));
  }
}

TEST(Propagation, OracleUnderShadowingIsThreadCountInvariantAndFeasible) {
  const auto positions = random_field(400, 2600.0, 17);
  const radio::link_model link(radio::power_model(2.0, 500.0), shadowing(17));
  for (const auto mode : {algo::growth_mode::discrete, algo::growth_mode::continuous}) {
    algo::cbtc_params params;
    params.mode = mode;
    params.intra_threads = 1;
    const algo::cbtc_result serial = algo::run_cbtc(positions, link, params);
    params.intra_threads = 4;
    const algo::cbtc_result parallel = algo::run_cbtc(positions, link, params);

    ASSERT_EQ(serial.nodes.size(), parallel.nodes.size());
    for (std::size_t u = 0; u < serial.nodes.size(); ++u) {
      EXPECT_EQ(serial.nodes[u].final_power, parallel.nodes[u].final_power) << u;
      EXPECT_EQ(serial.nodes[u].level_powers, parallel.nodes[u].level_powers) << u;
      ASSERT_EQ(serial.nodes[u].neighbors.size(), parallel.nodes[u].neighbors.size()) << u;
      for (std::size_t i = 0; i < serial.nodes[u].neighbors.size(); ++i) {
        EXPECT_EQ(serial.nodes[u].neighbors[i].id, parallel.nodes[u].neighbors[i].id) << u;
      }
      // Every discovered neighbor's link closes within the maximum
      // power, and at the node's final broadcast power.
      for (const algo::neighbor_record& rec : serial.nodes[u].neighbors) {
        const double req = link.required_power(static_cast<graph::node_id>(u), rec.id,
                                               positions[u], positions[rec.id]);
        EXPECT_LE(req, link.max_power() * (1.0 + 1e-12)) << u << "->" << rec.id;
        EXPECT_LE(req, serial.nodes[u].final_power * (1.0 + 1e-12)) << u << "->" << rec.id;
      }
    }
  }
}

// ---- live index under non-uniform gains -----------------------------

/// Applies a random churn script (moves, crashes, restarts) to a
/// link-aware index and checks, after every batch, that its edge set
/// equals a fresh gain-aware G_R over the surviving nodes.
void churn_identity(const radio::link_model& link) {
  const std::size_t n = 120;
  const double side = 1200.0;
  std::vector<vec2> positions = random_field(n, side, 77);
  graph::live_neighbor_index index(positions, link);
  std::vector<bool> up(n, true);

  std::mt19937_64 rng(123);
  std::uniform_real_distribution<double> coord(0.0, side);
  std::uniform_int_distribution<std::uint32_t> pick(0, n - 1);
  for (int batch = 0; batch < 15; ++batch) {
    for (int ev = 0; ev < 40; ++ev) {
      const graph::node_id u = pick(rng);
      switch (rng() % 4) {
        case 0:
        case 1: {  // move (crashed nodes keep moving, like the medium)
          positions[u] = {coord(rng), coord(rng)};
          if (up[u]) {
            index.move(u, positions[u]);
          }
          break;
        }
        case 2:
          if (up[u]) {
            index.erase(u);
            up[u] = false;
          }
          break;
        default:
          if (!up[u]) {
            index.insert(u, positions[u]);
            up[u] = true;
          }
      }
    }
    // Fresh reference: gain-aware G_R over current positions, with
    // down nodes isolated.
    graph::undirected_graph ref = graph::build_max_power_graph_brute(positions, link);
    for (graph::node_id u = 0; u < n; ++u) {
      if (up[u]) continue;
      const std::vector<graph::node_id> nbrs(ref.neighbors(u).begin(), ref.neighbors(u).end());
      for (const graph::node_id v : nbrs) ref.remove_edge(u, v);
    }
    ASSERT_EQ(index.graph(), ref) << "batch " << batch;
  }
}

TEST(Propagation, LiveIndexChurnMatchesFreshRebuildUnderShadowing) {
  churn_identity(radio::link_model(radio::power_model(2.0, 400.0), shadowing(31)));
}

TEST(Propagation, LiveIndexChurnMatchesFreshRebuildUnderObstacles) {
  churn_identity(radio::link_model(radio::power_model(2.0, 400.0), two_blocks()));
}

TEST(Propagation, GainCacheHitsDominateUnderJitter) {
  // Shadowing gains are position-independent, so once a pair has been
  // filtered its gain must come from the cache forever: under small
  // per-tick jitter (mostly re-filtering known pairs) lookups grow a
  // tick at a time while misses barely move.
  const auto positions = random_field(150, 1000.0, 5);
  const radio::link_model link(radio::power_model(2.0, 400.0), shadowing(11));
  graph::live_neighbor_index index(positions, link);
  EXPECT_GT(index.gain_lookups(), 0u);

  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> jitter(-5.0, 5.0);
  std::vector<vec2> pos(positions.begin(), positions.end());
  for (int tick = 0; tick < 10; ++tick) {
    for (graph::node_id u = 0; u < pos.size(); ++u) {
      pos[u] = {pos[u].x + jitter(rng), pos[u].y + jitter(rng)};
      index.move(u, pos[u]);
    }
  }
  EXPECT_GT(index.gain_lookups(), 2 * index.gain_misses());

  // A distance index never consults the gain path at all.
  const graph::live_neighbor_index plain(positions, 400.0);
  EXPECT_EQ(plain.gain_lookups(), 0u);
}

TEST(Propagation, LiveIndexIsotropicCtorEquivalentToDistanceCtor) {
  const auto positions = random_field(200, 1500.0, 9);
  const radio::link_model link(radio::power_model(2.0, 450.0));
  graph::live_neighbor_index a(positions, link);
  graph::live_neighbor_index b(positions, 450.0);
  EXPECT_EQ(a.graph(), b.graph());
}

// ---- the medium carries the per-link budget -------------------------

TEST(Propagation, MediumDeliveryAndEstimateFollowLinkBudget) {
  // One 9 dB wall between nodes 0 and 1; node 2 is in the clear.
  const radio::power_model pm(2.0, 500.0);
  const radio::propagation_model wall = radio::propagation_model::obstacle_field(
      {{.box = {{40.0, -10.0}, {60.0, 10.0}}, .loss_db = 9.0}});
  const radio::link_model link(pm, wall);

  sim::simulator simulator;
  sim::medium medium(simulator, link);
  std::vector<sim::rx_info> at_1;
  std::vector<sim::rx_info> at_2;
  medium.add_node({0.0, 0.0}, {});
  medium.add_node({100.0, 0.0}, {});  // behind the wall
  medium.add_node({0.0, 100.0}, {});  // clear line of sight
  medium.set_handler(1, [&](const sim::rx_info& rx, const std::any&) { at_1.push_back(rx); });
  medium.set_handler(2, [&](const sim::rx_info& rx, const std::any&) { at_2.push_back(rx); });

  // Enough for 100 units in the clear, not through a 9 dB wall.
  medium.broadcast(0, pm.required_power(100.0), 0);
  simulator.run();
  EXPECT_TRUE(at_1.empty());
  ASSERT_EQ(at_2.size(), 1u);
  // The receiver's estimate reconstructs the *isotropic* requirement
  // on the clear link.
  EXPECT_NEAR(pm.estimate_required_power(at_2[0].tx_power, at_2[0].rx_power),
              pm.required_power(100.0), 1e-9);

  // Through the wall the estimate equals the gain-adjusted budget.
  const double through = link.required_power(0, 1, {0.0, 0.0}, {100.0, 0.0});
  EXPECT_GT(through, pm.required_power(100.0));
  at_2.clear();
  medium.broadcast(0, through, 0);
  simulator.run();
  ASSERT_EQ(at_1.size(), 1u);
  EXPECT_NEAR(pm.estimate_required_power(at_1[0].tx_power, at_1[0].rx_power), through,
              through * 1e-9);
}

// ---- in-place mirror connectivity (adjacency views) -----------------

TEST(Propagation, InPlaceMirrorConnectivityMatchesSnapshotComparison) {
  // Random mirrors + indexes; verdicts of the adjacency-view
  // comparison must equal the materialized-graph comparison.
  std::mt19937_64 rng(55);
  for (int round = 0; round < 50; ++round) {
    const std::size_t n = 30;
    const auto positions = random_field(n, 900.0, 1000 + round);
    const radio::link_model link(radio::power_model(2.0, 350.0),
                                 round % 2 == 0 ? shadowing(round) : two_blocks());
    graph::live_neighbor_index index(positions, link);
    graph::closure_mirror mirror(n);
    std::uniform_int_distribution<std::uint32_t> pick(0, n - 1);
    for (int arc = 0; arc < 80; ++arc) mirror.add_arc(pick(rng), pick(rng));
    for (int drops = 0; drops < 4; ++drops) {
      const graph::node_id u = pick(rng);
      mirror.set_live(u, false);
      index.erase(u);
    }
    graph::connectivity_scratch scratch;
    EXPECT_EQ(graph::same_connectivity(mirror, index, scratch),
              graph::same_connectivity(mirror.live_graph(), index.graph()))
        << "round " << round;
  }
}

}  // namespace
}  // namespace cbtc
