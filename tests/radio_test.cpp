#include <gtest/gtest.h>

#include <cmath>

#include "geom/angle.h"
#include "radio/channel.h"
#include "radio/direction.h"
#include "radio/power_model.h"

namespace cbtc::radio {
namespace {

// --------------------------------------------------------- power_model

TEST(PowerModel, RequiredPowerIsDistancePower) {
  const power_model pm(2.0, 500.0);
  EXPECT_DOUBLE_EQ(pm.required_power(10.0), 100.0);
  EXPECT_DOUBLE_EQ(pm.required_power(0.0), 0.0);
  EXPECT_DOUBLE_EQ(pm.max_power(), 500.0 * 500.0);
  EXPECT_DOUBLE_EQ(pm.max_range(), 500.0);
}

TEST(PowerModel, HigherExponentCostsMore) {
  const power_model quad(4.0, 500.0);
  EXPECT_DOUBLE_EQ(quad.required_power(10.0), 10000.0);
  EXPECT_GT(quad.max_power(), power_model(2.0, 500.0).max_power());
}

TEST(PowerModel, RangeInvertsRequiredPower) {
  for (double n : {1.0, 2.0, 3.0, 4.0}) {
    const power_model pm(n, 500.0);
    for (double d : {1.0, 17.0, 250.0, 500.0}) {
      EXPECT_NEAR(pm.range(pm.required_power(d)), d, 1e-9) << "n=" << n << " d=" << d;
    }
  }
}

TEST(PowerModel, RangeOfNonPositivePowerIsZero) {
  const power_model pm(2.0, 500.0);
  EXPECT_DOUBLE_EQ(pm.range(0.0), 0.0);
  EXPECT_DOUBLE_EQ(pm.range(-5.0), 0.0);
}

TEST(PowerModel, ReachesBoundary) {
  const power_model pm(2.0, 500.0);
  EXPECT_TRUE(pm.reaches(pm.required_power(100.0), 100.0));  // exact
  EXPECT_TRUE(pm.reaches(pm.required_power(100.0), 99.0));
  EXPECT_FALSE(pm.reaches(pm.required_power(100.0), 101.0));
}

TEST(PowerModel, RxPowerDecaysWithDistance) {
  const power_model pm(2.0, 500.0);
  const double p = 10000.0;
  EXPECT_GT(pm.rx_power(p, 10.0), pm.rx_power(p, 20.0));
  // At the exact reachable distance, rx power hits the unit threshold.
  EXPECT_NEAR(pm.rx_power(pm.required_power(123.0), 123.0), 1.0, 1e-12);
}

TEST(PowerModel, EstimateRequiredPowerRoundTrip) {
  // The Section 2 assumption: from (tx power, rx power) the receiver
  // recovers p(d) exactly in our model.
  const power_model pm(2.0, 500.0);
  const double d = 321.0;
  const double tx = pm.max_power();
  const double rx = pm.rx_power(tx, d);
  EXPECT_NEAR(pm.estimate_required_power(tx, rx), pm.required_power(d), 1e-6);
}

TEST(PowerModel, InvalidArguments) {
  EXPECT_THROW(power_model(0.5, 500.0), std::invalid_argument);
  EXPECT_THROW(power_model(2.0, 0.0), std::invalid_argument);
  const power_model pm(2.0, 500.0);
  EXPECT_THROW((void)pm.estimate_required_power(100.0, 0.0), std::invalid_argument);
}

// ---------------------------------------------------------- direction

TEST(DirectionEstimator, ExactWhenNoiseless) {
  direction_estimator de;
  const geom::vec2 rx{0.0, 0.0};
  EXPECT_NEAR(de.measure(rx, {1.0, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(de.measure(rx, {0.0, 5.0}), geom::pi / 2.0, 1e-12);
  EXPECT_NEAR(de.measure(rx, {-2.0, 0.0}), geom::pi, 1e-12);
}

TEST(DirectionEstimator, NoiseBounded) {
  direction_estimator de(0.1, 42);
  const geom::vec2 rx{0.0, 0.0};
  const geom::vec2 tx{100.0, 0.0};
  for (int i = 0; i < 500; ++i) {
    const double m = de.measure(rx, tx);
    EXPECT_LE(geom::angle_dist(m, 0.0), 0.1 + 1e-12);
  }
}

TEST(DirectionEstimator, NoisyMeasurementsNormalized) {
  direction_estimator de(0.5, 1);
  const geom::vec2 rx{0.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    const double m = de.measure(rx, {1.0, -0.001});  // bearing near 2*pi
    EXPECT_GE(m, 0.0);
    EXPECT_LT(m, geom::two_pi);
  }
}

// ------------------------------------------------------------ channel

TEST(Channel, ReliableByDefault) {
  channel ch;
  for (int i = 0; i < 100; ++i) {
    const auto d = ch.sample_deliveries(100.0);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_DOUBLE_EQ(d[0], 0.01);  // base delay only
  }
}

TEST(Channel, DropAllWhenProbabilityOne) {
  channel ch({.drop_prob = 1.0}, 3);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(ch.sample_deliveries(10.0).empty());
}

TEST(Channel, DropRateApproximatesProbability) {
  channel ch({.drop_prob = 0.3}, 5);
  int dropped = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    if (ch.sample_deliveries(10.0).empty()) ++dropped;
  }
  EXPECT_NEAR(dropped / static_cast<double>(trials), 0.3, 0.03);
}

TEST(Channel, DuplicationProducesTwoCopies) {
  channel ch({.dup_prob = 1.0}, 7);
  const auto d = ch.sample_deliveries(10.0);
  EXPECT_EQ(d.size(), 2u);
}

TEST(Channel, PropagationAndJitter) {
  channel ch({.base_delay = 1.0, .delay_per_unit = 0.5, .jitter_max = 0.25}, 11);
  for (int i = 0; i < 200; ++i) {
    const auto d = ch.sample_deliveries(10.0);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_GE(d[0], 6.0);          // 1 + 0.5*10
    EXPECT_LE(d[0], 6.25 + 1e-12); // + jitter
  }
  EXPECT_DOUBLE_EQ(ch.max_delay(10.0), 6.25);
}

TEST(Channel, InvalidParamsThrow) {
  EXPECT_THROW(channel({.drop_prob = -0.1}), std::invalid_argument);
  EXPECT_THROW(channel({.drop_prob = 1.1}), std::invalid_argument);
  EXPECT_THROW(channel({.dup_prob = 2.0}), std::invalid_argument);
  EXPECT_THROW(channel({.base_delay = -1.0}), std::invalid_argument);
}

TEST(Channel, DeterministicPerSeed) {
  channel a({.drop_prob = 0.5, .jitter_max = 1.0}, 99);
  channel b({.drop_prob = 0.5, .jitter_max = 1.0}, 99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.sample_deliveries(5.0), b.sample_deliveries(5.0));
  }
}

}  // namespace
}  // namespace cbtc::radio
