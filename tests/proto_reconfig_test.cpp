// NDP + reconfiguration (Section 4): joins, leaves, aChange, crash
// recovery, and mobility, all on the event-driven simulator.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "geom/random_points.h"
#include "graph/euclidean.h"
#include "graph/traversal.h"
#include "proto/reconfig.h"
#include "radio/power_model.h"
#include "sim/failure.h"
#include "sim/mobility.h"

namespace cbtc::proto {
namespace {

using geom::vec2;

const radio::power_model pm(2.0, 500.0);

struct reconfig_net {
  sim::simulator simulator;
  sim::medium medium;
  std::vector<std::unique_ptr<reconfig_agent>> agents;

  explicit reconfig_net(const std::vector<vec2>& positions, reconfig_config cfg = default_config())
      : medium(simulator, pm) {
    for (const vec2& p : positions) {
      const node_id id = medium.add_node(p, {});
      agents.push_back(std::make_unique<reconfig_agent>(medium, id, cfg));
    }
  }

  static reconfig_config default_config() {
    reconfig_config cfg;
    cfg.agent.round_timeout = 0.2;
    cfg.ndp.beacon_interval = 1.0;
    cfg.ndp.miss_limit = 3;
    cfg.ndp.achange_threshold = 0.05;
    return cfg;
  }

  void start(double ndp_until) {
    for (std::size_t i = 0; i < agents.size(); ++i) {
      // Stagger beacons so they do not all collide on the same tick.
      reconfig_agent* a = agents[i].get();
      a->start(ndp_until);
    }
  }

  /// Topology = symmetric closure of live agents' neighbor tables,
  /// restricted to live nodes.
  [[nodiscard]] graph::undirected_graph live_topology() const {
    graph::undirected_graph g(agents.size());
    for (node_id u = 0; u < agents.size(); ++u) {
      if (!medium.is_up(u)) continue;
      for (const auto& [v, info] : agents[u]->cbtc().neighbors()) {
        if (medium.is_up(v)) g.add_edge(u, v);
      }
    }
    return g;
  }

  /// G_R over live nodes only (dead nodes isolated).
  [[nodiscard]] graph::undirected_graph live_gr() const {
    const auto full = graph::build_max_power_graph(medium.positions(), pm.max_range());
    std::vector<bool> up(agents.size());
    for (node_id u = 0; u < agents.size(); ++u) up[u] = medium.is_up(u);
    return full.induced(up);
  }
};

TEST(Ndp, BeaconsPopulateTables) {
  reconfig_net net({{0, 0}, {200, 0}, {900, 0}});
  net.start(10.0);
  net.simulator.run_until(10.0);
  // 0 and 1 hear each other; 2 is out of range of both (> 500).
  EXPECT_TRUE(net.agents[0]->ndp().table().contains(1));
  EXPECT_TRUE(net.agents[1]->ndp().table().contains(0));
  EXPECT_FALSE(net.agents[0]->ndp().table().contains(2));
  EXPECT_GT(net.agents[0]->ndp().beacons_sent(), 5u);
}

TEST(Ndp, InitialJoinsFire) {
  reconfig_net net({{0, 0}, {200, 0}});
  net.start(10.0);
  net.simulator.run_until(10.0);
  EXPECT_GE(net.agents[0]->stats().joins, 1u);
  EXPECT_GE(net.agents[1]->stats().joins, 1u);
}

TEST(Ndp, LeaveFiresAfterMissedBeacons) {
  reconfig_net net({{0, 0}, {200, 0}});
  net.start(30.0);
  net.simulator.run_until(10.0);
  ASSERT_TRUE(net.agents[0]->ndp().table().contains(1));

  net.medium.crash(1);
  net.simulator.run_until(20.0);  // > miss_limit * interval after crash
  EXPECT_FALSE(net.agents[0]->ndp().table().contains(1));
  EXPECT_GE(net.agents[0]->stats().leaves, 1u);
  EXPECT_FALSE(net.agents[0]->cbtc().neighbors().contains(1));
}

TEST(Ndp, BeaconPowerCoversNeighbors) {
  // Each node's beacon power must reach its farthest E_alpha neighbor
  // (Section 4's requirement for reconfiguration to work).
  const auto positions = geom::uniform_points(40, geom::bbox::rect(1200, 1200), 5);
  reconfig_net net(positions);
  net.start(15.0);
  net.simulator.run_until(15.0);
  for (node_id u = 0; u < positions.size(); ++u) {
    const double beacon = net.agents[u]->beacon_power();
    for (const auto& [v, info] : net.agents[u]->cbtc().neighbors()) {
      EXPECT_GE(beacon + 1e-9, info.required_power) << "u=" << u << " v=" << v;
    }
    if (net.agents[u]->cbtc().boundary()) {
      EXPECT_DOUBLE_EQ(beacon, pm.max_power());
    }
  }
}

TEST(Reconfig, InitialRunMatchesConnectivity) {
  const auto positions = geom::uniform_points(50, geom::bbox::rect(1200, 1200), 7);
  reconfig_net net(positions);
  net.start(20.0);
  net.simulator.run_until(20.0);
  EXPECT_TRUE(graph::same_connectivity(net.live_topology(), net.live_gr()));
}

TEST(Reconfig, CrashesHealViaLeaveAndRegrow) {
  const auto positions = geom::uniform_points(50, geom::bbox::rect(1200, 1200), 11);
  reconfig_net net(positions);
  net.start(80.0);
  net.simulator.run_until(15.0);  // initial topology settled

  sim::failure_injector inj(net.medium, 3);
  inj.random_crashes(6, 16.0, 18.0);
  net.simulator.run_until(80.0);  // leaves detected, regrows settled

  EXPECT_TRUE(graph::same_connectivity(net.live_topology(), net.live_gr()));
  std::uint64_t regrows = 0;
  for (const auto& a : net.agents) regrows += a->stats().regrows;
  // Crashing 6 of 50 nodes almost surely opened someone's cone.
  EXPECT_GT(regrows, 0u);
}

TEST(Reconfig, RestartedNodeRejoins) {
  const auto positions = geom::uniform_points(30, geom::bbox::rect(900, 900), 13);
  reconfig_net net(positions);
  net.start(100.0);
  net.simulator.run_until(15.0);

  net.medium.crash(0);
  net.simulator.run_until(40.0);
  EXPECT_FALSE(net.live_topology().degree(0) > 0);

  net.medium.restart(0);
  net.simulator.run_until(100.0);
  EXPECT_TRUE(graph::same_connectivity(net.live_topology(), net.live_gr()));
  // The restarted node is wired back in (it has G_R neighbors).
  if (net.live_gr().degree(0) > 0) {
    EXPECT_GT(net.live_topology().degree(0), 0u);
  }
}

TEST(Reconfig, MobilityTriggersAChangeAndPreservesConnectivity) {
  const auto positions = geom::uniform_points(40, geom::bbox::rect(1000, 1000), 17);
  reconfig_net net(positions);
  net.start(120.0);
  net.simulator.run_until(15.0);

  // Drift all nodes slowly (speed 2/time-unit for 40 units: each node
  // moves ~80 units, plenty for aChange events at 0.05 rad threshold).
  sim::random_waypoint rw(net.medium,
                          {.region = geom::bbox::rect(1000, 1000), .min_speed = 1.0,
                           .max_speed = 3.0, .pause = 0.0},
                          23);
  rw.start(0.5, 55.0);
  net.simulator.run_until(120.0);  // motion stopped at 55; settle after

  std::uint64_t achanges = 0;
  for (const auto& a : net.agents) achanges += a->stats().achanges;
  EXPECT_GT(achanges, 0u);
  EXPECT_TRUE(graph::same_connectivity(net.live_topology(), net.live_gr()));
}

TEST(Reconfig, PartitionRejoinHealsViaBoundaryBeacons) {
  // Section 4's subtle scenario: two groups start out of range (two
  // G_R components), then one group moves into range. If boundary
  // nodes beaconed at their shrunk power the groups would never hear
  // each other; the paper's rule (boundary nodes beacon at the basic
  // algorithm's power, i.e. max power) makes the rejoin observable.
  std::vector<vec2> positions;
  // Group A: triangle near the origin.
  positions.push_back({0, 0});
  positions.push_back({150, 0});
  positions.push_back({75, 130});
  // Group B: triangle 1400 units away (out of range R=500).
  positions.push_back({1400, 0});
  positions.push_back({1550, 0});
  positions.push_back({1475, 130});

  reconfig_net net(positions);
  net.start(200.0);
  net.simulator.run_until(15.0);

  // Initially: two components, both in G_R and in the protocol state.
  EXPECT_EQ(graph::connected_components(net.live_gr()).count, 2u);
  EXPECT_TRUE(graph::same_connectivity(net.live_topology(), net.live_gr()));
  // Everyone is a boundary node here (6 nodes cannot close 5pi/6
  // cones), so everyone beacons at max power — the paper's rule.
  for (const auto& a : net.agents) {
    EXPECT_DOUBLE_EQ(a->beacon_power(), pm.max_power());
  }

  // Group B drifts toward group A: teleport in small steps (the NDP
  // only ever samples positions at beacon time anyway).
  for (int step = 1; step <= 10; ++step) {
    for (node_id u = 3; u < 6; ++u) {
      geom::vec2 p = net.medium.position(u);
      p.x -= 100.0;
      net.medium.set_position(u, p);
    }
    net.simulator.run_until(15.0 + 4.0 * step);
  }
  net.simulator.run_until(200.0);

  // Now the field is one component and the protocol noticed: joins
  // fired across the old partition boundary and the topology reconnects.
  EXPECT_EQ(graph::connected_components(net.live_gr()).count, 1u);
  EXPECT_TRUE(graph::same_connectivity(net.live_topology(), net.live_gr()));
  EXPECT_TRUE(graph::reachable(net.live_topology(), 0, 3));
}

TEST(Reconfig, StationaryNetworkStaysQuiet) {
  // No churn: after the initial joins, no leaves / regrows happen.
  const auto positions = geom::uniform_points(30, geom::bbox::rect(900, 900), 19);
  reconfig_net net(positions);
  net.start(40.0);
  net.simulator.run_until(40.0);
  for (const auto& a : net.agents) {
    EXPECT_EQ(a->stats().leaves, 0u);
    EXPECT_EQ(a->stats().achanges, 0u);
  }
}

}  // namespace
}  // namespace cbtc::proto
