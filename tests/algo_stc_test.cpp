// Sethu-Gerety STC vs CBTC: degree / stretch / connectivity on the
// shadowed and obstacle presets, plus engine-level determinism of the
// stc method across intra-thread widths.
#include "algo/stc.h"

#include <gtest/gtest.h>

#include <vector>

#include "algo/analysis.h"
#include "api/api.h"
#include "geom/random_points.h"
#include "graph/euclidean.h"
#include "graph/metrics.h"
#include "radio/power_model.h"
#include "util/parallel.h"

namespace cbtc::algo {
namespace {

using geom::vec2;

const radio::power_model pm(2.0, 500.0);

std::vector<vec2> field(std::size_t n, std::uint64_t seed) {
  return geom::uniform_points(n, geom::bbox::rect(1500.0, 1500.0), seed);
}

// --------------------------------------------------- algorithm level

TEST(Stc, PreservesInvariantsUnderEveryModel) {
  util::thread_pool pool(4);
  const std::vector<radio::link_model> links{
      radio::link_model(pm),
      {pm, radio::propagation_model::lognormal_shadowing(4.0, 8.0, 17)},
      {pm, radio::propagation_model::obstacle_field(
               {{.box = {{400.0, 400.0}, {900.0, 800.0}}, .loss_db = 9.0}})},
  };
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const std::vector<vec2> positions = field(100, seed);
    for (const radio::link_model& link : links) {
      const graph::undirected_graph c = graph::build_max_power_graph(positions, link, pool);
      const stc_result res = build_stc_topology(c, positions, link, pool);
      const invariant_report inv = check_invariants(res.topology, positions, link, c, pool);
      EXPECT_TRUE(inv.ok()) << "seed " << seed << ": "
                            << (inv.violations.empty() ? "" : inv.violations.front());
      // STC prunes: it never exceeds the candidate graph and should
      // shed edges on any non-trivial field.
      EXPECT_LE(res.topology.num_edges(), c.num_edges());
      EXPECT_EQ(res.kept_links + res.pruned_links, c.num_edges() * 2);
    }
  }
}

TEST(Stc, DeterministicAcrossPoolWidths) {
  const std::vector<vec2> positions = field(120, 5);
  const radio::link_model link(pm,
                               radio::propagation_model::lognormal_shadowing(4.0, 8.0, 5));
  util::thread_pool one(1);
  const stc_result ref = build_stc_topology(positions, link, one);
  for (const unsigned width : {2u, 8u}) {
    util::thread_pool pool(width);
    const stc_result got = build_stc_topology(positions, link, pool);
    EXPECT_TRUE(got.topology == ref.topology) << "width " << width;
    EXPECT_EQ(got.kept_links, ref.kept_links) << "width " << width;
    EXPECT_EQ(got.pruned_links, ref.pruned_links) << "width " << width;
  }
}

// ------------------------------------------- STC vs CBTC, via engine

TEST(Stc, ComparableToCbtcOnNonIsotropicPresets) {
  const api::engine eng;
  for (const char* preset : {"shadowed_field", "urban_obstacles"}) {
    api::scenario_spec cbtc = api::get_scenario(preset);
    api::scenario_spec stc = cbtc;
    stc.method = api::method_spec::stc();
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      const api::run_report a = eng.run(cbtc, seed);
      const api::run_report b = eng.run(stc, seed);
      // Both methods must meet the paper's desiderata...
      EXPECT_TRUE(a.invariants.ok()) << preset << " cbtc seed " << seed;
      EXPECT_TRUE(b.invariants.ok()) << preset << " stc seed " << seed;
      // ...and both must actually sparsify the candidate graph.
      EXPECT_LT(a.edges, a.max_power_edges) << preset << " seed " << seed;
      EXPECT_LT(b.edges, b.max_power_edges) << preset << " seed " << seed;
      // Stretch is measured against the same G_R for both methods, so
      // finite values mean both kept every component routable.
      EXPECT_GE(a.power_stretch, 1.0);
      EXPECT_GE(b.power_stretch, 1.0);
    }
  }
}

TEST(Stc, EngineReportsBitwiseIdenticalAcrossIntraThreads) {
  const api::engine eng;
  for (const char* preset : {"shadowed_field_stc", "urban_obstacles_stc"}) {
    api::scenario_spec serial = api::get_scenario(preset);
    ASSERT_EQ(serial.method.k, api::method_spec::kind::stc) << preset;
    api::scenario_spec wide = serial;
    serial.cbtc.intra_threads = 1;
    wide.cbtc.intra_threads = 4;
    for (std::uint64_t seed = 0; seed < 2; ++seed) {
      const api::run_report a = eng.run(serial, seed);
      const api::run_report b = eng.run(wide, seed);
      EXPECT_TRUE(a.topology == b.topology) << preset << " seed " << seed;
      EXPECT_EQ(a.node_powers, b.node_powers) << preset << " seed " << seed;
      EXPECT_EQ(a.edges, b.edges);
      EXPECT_EQ(a.avg_degree, b.avg_degree);
      EXPECT_EQ(a.avg_power, b.avg_power);
      EXPECT_EQ(a.power_stretch, b.power_stretch);
      EXPECT_EQ(a.hop_stretch, b.hop_stretch);
    }
  }
}

}  // namespace
}  // namespace cbtc::algo
