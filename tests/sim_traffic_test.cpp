// The convergecast data plane and the lifetime-policy layer.
//
// Conservation: every generated packet is accounted for exactly once
// (delivered + dropped + lost in flight + still queued). Determinism:
// a traffic-enabled dynamic run's report — traffic counters included —
// is bitwise identical across region counts and thread counts, with
// the single-queue canonical-tie simulator as the reference oracle.
// Policies: energy-balanced routing delays the first battery death
// relative to plain CBTC routing under the same convergecast workload.
// Plus invariants of the structured (seed-free) deployment generators
// and JSON round-trips of the new traffic / lifetime / deployment
// schema.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/api.h"
#include "api/serialize.h"
#include "geom/bbox.h"
#include "geom/structured_points.h"
#include "geom/vec2.h"

namespace cbtc {
namespace {

using namespace cbtc::api;

/// The partition-test field plus a convergecast stream: waypoint
/// mobility drags relays around while crashes (including an explicit
/// crash/restart pair) flip liveness mid-stream.
scenario_spec traffic_scenario() {
  scenario_spec spec;
  spec.deploy = {.kind = deployment_kind::uniform, .nodes = 28, .region_side = 1000.0};
  spec.base_seed = 77;
  spec.method = method_spec::protocol();
  spec.protocol.agent.round_timeout = 0.25;
  return spec;
}

sim_spec traffic_sim() {
  sim_spec dyn;
  dyn.horizon = 30.0;
  dyn.settle = 8.0;
  dyn.sample_every = 2.0;
  dyn.beacons = {.interval = 1.0, .miss_limit = 3};
  dyn.mobility = {.kind = mobility_kind::random_waypoint,
                  .min_speed = 2.0,
                  .max_speed = 8.0,
                  .tick = 0.5,
                  .start = 9.0};
  dyn.failures = {.random_crashes = 2, .window_begin = 10.0, .window_end = 16.0};
  dyn.failures.events.push_back({.node = 3, .time = 12.0, .restart = false});
  dyn.failures.events.push_back({.node = 3, .time = 20.0, .restart = true});
  dyn.traffic = {.period = 0.5, .sink = 0, .start = 9.0};
  return dyn;
}

void expect_traffic_identical(const traffic_report& a, const traffic_report& b) {
  EXPECT_EQ(a.enabled, b.enabled);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.forwards, b.forwards);
  EXPECT_EQ(a.queue_drops, b.queue_drops);
  EXPECT_EQ(a.no_route_drops, b.no_route_drops);
  EXPECT_EQ(a.dead_drops, b.dead_drops);
  EXPECT_EQ(a.lost_in_air, b.lost_in_air);
  EXPECT_EQ(a.queued_at_end, b.queued_at_end);
  EXPECT_EQ(a.route_refreshes, b.route_refreshes);
  EXPECT_EQ(a.queue_peak, b.queue_peak);
  EXPECT_EQ(a.delivery_ratio, b.delivery_ratio);  // bitwise: no tolerance
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.avg_delay, b.avg_delay);
  EXPECT_EQ(a.forwarding_energy, b.forwarding_energy);
  EXPECT_EQ(a.energy_mean, b.energy_mean);
  EXPECT_EQ(a.energy_max, b.energy_max);
  EXPECT_EQ(a.energy_stddev, b.energy_stddev);
}

/// Every packet the sources generate must be accounted for exactly
/// once: delivered, dropped (full queue / no route / dead node), lost
/// in the air (down or out-of-range receiver, or still in flight at
/// the horizon), or sitting in a queue when the run ends.
TEST(SimTraffic, PacketConservation) {
  const engine eng;
  const scenario_spec spec = traffic_scenario();
  const sim_spec dyn = traffic_sim();
  for (const std::uint64_t seed : {0u, 3u, 11u}) {
    const dynamic_report r = eng.run_dynamic(spec, dyn, seed);
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    ASSERT_TRUE(r.traffic.enabled);
    EXPECT_GT(r.traffic.generated, 0u);
    EXPECT_GT(r.traffic.delivered, 0u);
    EXPECT_EQ(r.traffic.generated,
              r.traffic.delivered + r.traffic.queue_drops + r.traffic.no_route_drops +
                  r.traffic.dead_drops + r.traffic.lost_in_air + r.traffic.queued_at_end);
    // Derived metrics stay consistent with the raw counters.
    EXPECT_DOUBLE_EQ(r.traffic.delivery_ratio,
                     static_cast<double>(r.traffic.delivered) /
                         static_cast<double>(r.traffic.generated));
    EXPECT_GT(r.traffic.throughput, 0.0);
    EXPECT_GT(r.traffic.avg_delay, 0.0);
    EXPECT_GT(r.traffic.forwarding_energy, 0.0);
    EXPECT_GE(r.traffic.energy_max, r.traffic.energy_mean);
    EXPECT_GE(r.traffic.energy_stddev, 0.0);
    EXPECT_GE(r.traffic.forwards, r.traffic.delivered);
  }
}

/// A convergecast run's report — traffic counters included — must be
/// bitwise identical on the partitioned engine at every region x
/// thread combination.
TEST(SimTraffic, ConvergecastBitwiseIdenticalAcrossRegionAndThreadCounts) {
  scenario_spec spec = traffic_scenario();
  sim_spec dyn = traffic_sim();
  const engine eng;

  spec.cbtc.intra_threads = 1;
  dyn.partition.regions = 1;  // the single-queue reference engine
  const dynamic_report reference = eng.run_dynamic(spec, dyn, 5);
  ASSERT_TRUE(reference.traffic.enabled);
  ASSERT_GT(reference.traffic.delivered, 0u);

  for (const std::uint32_t regions : {4u, 16u}) {
    for (const unsigned threads : {1u, 4u}) {
      spec.cbtc.intra_threads = threads;
      dyn.partition.regions = regions;
      const dynamic_report partitioned = eng.run_dynamic(spec, dyn, 5);
      SCOPED_TRACE(::testing::Message() << "regions=" << regions << " threads=" << threads);
      EXPECT_EQ(reference.final_topology, partitioned.final_topology);
      EXPECT_EQ(reference.channel.unicasts, partitioned.channel.unicasts);
      EXPECT_EQ(reference.channel.tx_energy, partitioned.channel.tx_energy);
      expect_traffic_identical(reference.traffic, partitioned.traffic);
    }
  }
}

/// The registered convergecast preset produces a healthy stream: most
/// packets reach the sink and the forwarding load is visibly unequal
/// (relays near the sink carry more — the imbalance the lifetime
/// policies exist to correct).
TEST(SimTraffic, ConvergecastGridPresetDelivers) {
  const dynamic_scenario preset = get_dynamic_scenario("convergecast_grid");
  const engine eng;
  const dynamic_report r = eng.run_dynamic(preset.scenario, preset.sim, 0);
  ASSERT_TRUE(r.traffic.enabled);
  EXPECT_GT(r.traffic.delivery_ratio, 0.5);
  EXPECT_GT(r.traffic.throughput, 0.0);
  EXPECT_GT(r.traffic.energy_stddev, 0.0);
  EXPECT_GT(r.traffic.route_refreshes, 0u);
}

/// Energy-balanced routing must not die earlier than plain CBTC
/// routing under the identical convergecast workload: spreading the
/// relay load delays the first battery death.
TEST(SimTraffic, EnergyBalancedDelaysFirstDeath) {
  scenario_spec spec;
  spec.deploy = {.kind = deployment_kind::uniform, .nodes = 100, .region_side = 1500.0};
  spec.cbtc.mode = algo::growth_mode::continuous;
  spec.opts = algo::optimization_set::all();

  lifetime_spec life;
  life.convergecast = true;
  life.sink = 0;

  const engine eng;
  for (const std::uint64_t seed : {0u, 1u, 2u}) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    life.policy = lifetime_policy::plain_cbtc;
    const lifetime_report plain = eng.run_lifetime(spec, life, seed);
    life.policy = lifetime_policy::energy_balanced;
    const lifetime_report balanced = eng.run_lifetime(spec, life, seed);
    EXPECT_GT(plain.first_death, 0.0);
    EXPECT_GE(balanced.first_death, plain.first_death);
  }
}

/// All three policies run to completion and report ordered milestones
/// (first death <= 25% dead <= partition, partition capped at
/// max_rounds).
TEST(SimTraffic, AllPoliciesProduceOrderedMilestones) {
  scenario_spec spec;
  spec.deploy = {.kind = deployment_kind::uniform, .nodes = 60, .region_side = 1200.0};
  spec.cbtc.mode = algo::growth_mode::continuous;

  const engine eng;
  for (const lifetime_policy policy :
       {lifetime_policy::plain_cbtc, lifetime_policy::energy_balanced,
        lifetime_policy::cooperative_adaptation}) {
    SCOPED_TRACE(lifetime_policy_name(policy));
    lifetime_spec life;
    life.policy = policy;
    life.convergecast = true;
    life.sink = 2;
    const lifetime_report r = eng.run_lifetime(spec, life, 0);
    EXPECT_GT(r.first_death, 0.0);
    EXPECT_LE(r.first_death, r.quarter_dead);
    EXPECT_LE(r.first_death, r.field_partition);
    EXPECT_LE(r.field_partition, static_cast<double>(life.max_rounds));
  }
}

/// The historical random-flows experiment (plain policy, no
/// convergecast) still runs and the batch aggregates still merge.
TEST(SimTraffic, LegacyLifetimeBatchStillRuns) {
  scenario_spec spec;
  spec.deploy = {.kind = deployment_kind::uniform, .nodes = 40, .region_side = 1000.0};
  spec.cbtc.mode = algo::growth_mode::continuous;
  const engine eng;
  const lifetime_batch_report b = eng.run_batch(spec, lifetime_spec{}, {0, 4}, 2);
  EXPECT_EQ(b.runs, 4u);
  EXPECT_GT(b.first_death.mean(), 0.0);
  EXPECT_GE(b.field_partition.max(), b.first_death.min());
}

// ---- structured deployment generators ------------------------------

bool inside(const geom::vec2& p, const geom::bbox& box) {
  return p.x >= box.min.x && p.x <= box.max.x && p.y >= box.min.y && p.y <= box.max.y;
}

TEST(StructuredPoints, ExactCountInsideRegion) {
  const geom::bbox box = geom::bbox::rect(1000.0, 600.0);
  for (const std::size_t n : {1u, 2u, 7u, 16u, 61u}) {
    SCOPED_TRACE(::testing::Message() << "n " << n);
    for (const auto& pts :
         {geom::grid_points(n, box), geom::ring_points(n, box), geom::tree_points(n, 3, box),
          geom::star_points(n, 5, box)}) {
      EXPECT_EQ(pts.size(), n);
      for (const geom::vec2& p : pts) EXPECT_TRUE(inside(p, box));
    }
  }
}

TEST(StructuredPoints, RingIsEquidistantFromCenter) {
  const geom::bbox box = geom::bbox::rect(800.0, 800.0);
  const geom::vec2 center{400.0, 400.0};
  const std::vector<geom::vec2> pts = geom::ring_points(24, box);
  const double expected = 0.42 * 800.0;
  for (const geom::vec2& p : pts) {
    const double r = std::hypot(p.x - center.x, p.y - center.y);
    EXPECT_NEAR(r, expected, 1e-9);
  }
}

TEST(StructuredPoints, StarHubSitsAtCenterWithCollinearArms) {
  const geom::bbox box = geom::bbox::rect(1000.0, 1000.0);
  const std::size_t arms = 4;
  const std::vector<geom::vec2> pts = geom::star_points(13, arms, box);
  EXPECT_NEAR(pts[0].x, 500.0, 1e-9);
  EXPECT_NEAR(pts[0].y, 500.0, 1e-9);
  // Spokes i and i + arms lie on the same ray: cross product vanishes.
  for (std::size_t i = 1; i + arms < pts.size(); ++i) {
    const geom::vec2 a{pts[i].x - pts[0].x, pts[i].y - pts[0].y};
    const geom::vec2 b{pts[i + arms].x - pts[0].x, pts[i + arms].y - pts[0].y};
    EXPECT_NEAR(a.x * b.y - a.y * b.x, 0.0, 1e-6) << "spoke " << i;
  }
}

TEST(StructuredPoints, StructuredDeploymentsIgnoreTheSeed) {
  scenario_spec spec;
  spec.deploy = {.kind = deployment_kind::ring, .nodes = 20, .region_side = 900.0};
  const std::vector<geom::vec2> a = spec.make_positions(0);
  const std::vector<geom::vec2> b = spec.make_positions(12345);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x);
    EXPECT_EQ(a[i].y, b[i].y);
  }
}

// ---- JSON schema ----------------------------------------------------

TEST(SimTraffic, ScenarioFileRoundTripsTrafficAndLifetime) {
  scenario_file file;
  file.scenario.name = "rt";
  file.scenario.deploy = {.kind = deployment_kind::tree, .nodes = 31, .region_side = 1200.0};
  file.scenario.deploy.tree_branching = 3;
  sim_spec dyn;
  dyn.horizon = 40.0;
  dyn.traffic = {.period = 1.5, .sink = 4, .start = 10.0, .queue_capacity = 12};
  file.sim = dyn;
  lifetime_spec life;
  life.policy = lifetime_policy::cooperative_adaptation;
  life.convergecast = true;
  life.sink = 4;
  file.lifetime = life;

  const std::string text = to_json(file);
  const scenario_file parsed = parse_scenario_json(text);
  EXPECT_EQ(parsed.scenario.deploy.kind, deployment_kind::tree);
  EXPECT_EQ(parsed.scenario.deploy.tree_branching, 3u);
  ASSERT_TRUE(parsed.sim.has_value());
  EXPECT_EQ(parsed.sim->traffic.period, 1.5);
  EXPECT_EQ(parsed.sim->traffic.sink, 4u);
  EXPECT_EQ(parsed.sim->traffic.queue_capacity, 12u);
  ASSERT_TRUE(parsed.lifetime.has_value());
  EXPECT_EQ(parsed.lifetime->policy, lifetime_policy::cooperative_adaptation);
  EXPECT_TRUE(parsed.lifetime->convergecast);
  EXPECT_EQ(parsed.lifetime->sink, 4u);
  EXPECT_EQ(to_json(parsed), text);  // fixed point
}

TEST(SimTraffic, PolicyNamesParseWithAliases) {
  EXPECT_EQ(parse_lifetime_policy("plain"), lifetime_policy::plain_cbtc);
  EXPECT_EQ(parse_lifetime_policy("balanced"), lifetime_policy::energy_balanced);
  EXPECT_EQ(parse_lifetime_policy("cooperative"), lifetime_policy::cooperative_adaptation);
  for (const lifetime_policy p :
       {lifetime_policy::plain_cbtc, lifetime_policy::energy_balanced,
        lifetime_policy::cooperative_adaptation}) {
    EXPECT_EQ(parse_lifetime_policy(lifetime_policy_name(p)), p);
  }
  EXPECT_THROW((void)parse_lifetime_policy("greedy"), std::invalid_argument);
}

TEST(SimTraffic, UnknownTrafficKeysAreRejected) {
  EXPECT_THROW(
      parse_scenario_json(R"({"scenario": {"name": "x"},
                              "sim": {"traffic": {"period": 1.0, "snik": 3}}})"),
      std::invalid_argument);
  EXPECT_THROW(
      parse_scenario_json(R"({"scenario": {"name": "x"},
                              "lifetime": {"policy": "warp_drive"}})"),
      std::invalid_argument);
}

}  // namespace
}  // namespace cbtc
