#include "geom/arc_set.h"

#include <gtest/gtest.h>

#include <array>
#include <random>
#include <vector>

#include "geom/angle.h"

namespace cbtc::geom {
namespace {

TEST(ArcSet, EmptyByDefault) {
  const arc_set s;
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.is_full_circle());
  EXPECT_DOUBLE_EQ(s.measure(), 0.0);
  EXPECT_FALSE(s.contains(1.0));
}

TEST(ArcSet, SingleArc) {
  const std::array<arc, 1> in{arc{1.0, 2.0}};
  const arc_set s = arc_set::from_arcs(in);
  EXPECT_NEAR(s.measure(), 1.0, 1e-12);
  EXPECT_TRUE(s.contains(1.5));
  EXPECT_TRUE(s.contains(1.0));
  EXPECT_TRUE(s.contains(2.0));
  EXPECT_FALSE(s.contains(0.5));
  EXPECT_FALSE(s.contains(3.0));
}

TEST(ArcSet, OverlappingArcsMerge) {
  const std::array<arc, 2> in{arc{1.0, 2.0}, arc{1.5, 3.0}};
  const arc_set s = arc_set::from_arcs(in);
  EXPECT_EQ(s.arcs().size(), 1u);
  EXPECT_NEAR(s.measure(), 2.0, 1e-12);
}

TEST(ArcSet, DisjointArcsStaySeparate) {
  const std::array<arc, 2> in{arc{0.5, 1.0}, arc{2.0, 3.0}};
  const arc_set s = arc_set::from_arcs(in);
  EXPECT_EQ(s.arcs().size(), 2u);
  EXPECT_NEAR(s.measure(), 1.5, 1e-12);
  EXPECT_TRUE(s.contains(0.75));
  EXPECT_FALSE(s.contains(1.5));
  EXPECT_TRUE(s.contains(2.5));
}

TEST(ArcSet, WrappingArc) {
  const std::array<arc, 1> in{arc{two_pi - 0.5, 0.5}};
  const arc_set s = arc_set::from_arcs(in);
  EXPECT_NEAR(s.measure(), 1.0, 1e-12);
  EXPECT_TRUE(s.contains(0.0));
  EXPECT_TRUE(s.contains(two_pi - 0.25));
  EXPECT_TRUE(s.contains(0.25));
  EXPECT_FALSE(s.contains(pi));
}

TEST(ArcSet, FullCircleFromCoveringArcs) {
  const std::array<arc, 3> in{arc{0.0, 2.5}, arc{2.0, 5.0}, arc{4.5, 0.5}};
  const arc_set s = arc_set::from_arcs(in);
  EXPECT_TRUE(s.is_full_circle());
  EXPECT_NEAR(s.measure(), two_pi, 1e-12);
  EXPECT_TRUE(s.contains(3.0));
}

TEST(ArcSet, CoverAlphaSemantics) {
  // cover_alpha({d}, alpha) is the closed arc of half-width alpha/2.
  const std::array<double, 1> dirs{pi};
  const arc_set s = arc_set::cover(dirs, pi / 2.0);
  EXPECT_TRUE(s.contains(pi));
  EXPECT_TRUE(s.contains(pi - pi / 4.0));
  EXPECT_TRUE(s.contains(pi + pi / 4.0));
  EXPECT_FALSE(s.contains(pi + pi / 3.0));
  EXPECT_NEAR(s.measure(), pi / 2.0, 1e-12);
}

TEST(ArcSet, CoverOfNoDirectionsIsEmpty) {
  const arc_set s = arc_set::cover({}, pi);
  EXPECT_TRUE(s.empty());
}

TEST(ArcSet, CoverBecomesFullWhenGapsClose) {
  // Three evenly spread directions with alpha = 2*pi/3 + margin tile
  // the circle; the paper's no-alpha-gap condition.
  std::vector<double> dirs{0.0, two_pi / 3.0, 2.0 * two_pi / 3.0};
  EXPECT_TRUE(arc_set::cover(dirs, two_pi / 3.0 + 0.01).is_full_circle());
  EXPECT_FALSE(arc_set::cover(dirs, two_pi / 3.0 - 0.01).is_full_circle());
}

TEST(ArcSet, FullCircleFactory) {
  const arc_set s = arc_set::full_circle();
  EXPECT_TRUE(s.is_full_circle());
  EXPECT_TRUE(s.contains(0.0));
  EXPECT_TRUE(s.contains(5.0));
}

TEST(ArcSet, ApproxEqualsTolerant) {
  const std::array<arc, 1> a{arc{1.0, 2.0}};
  const std::array<arc, 1> b{arc{1.0 + 1e-12, 2.0 - 1e-12}};
  EXPECT_TRUE(arc_set::from_arcs(a).approx_equals(arc_set::from_arcs(b), 1e-9));
  const std::array<arc, 1> c{arc{1.0, 2.1}};
  EXPECT_FALSE(arc_set::from_arcs(a).approx_equals(arc_set::from_arcs(c), 1e-9));
}

TEST(ArcSet, ApproxEqualsDifferentCardinality) {
  const std::array<arc, 1> a{arc{1.0, 2.0}};
  const std::array<arc, 2> b{arc{1.0, 1.4}, arc{1.6, 2.0}};
  EXPECT_FALSE(arc_set::from_arcs(a).approx_equals(arc_set::from_arcs(b)));
}

TEST(ArcSet, AlmostFullEqualsFull) {
  // A set missing only an eps-sliver compares equal to the full circle
  // under a tolerance larger than the sliver.
  const std::array<arc, 1> nearly{arc{1e-12, two_pi - 1e-12}};
  EXPECT_TRUE(arc_set::from_arcs(nearly).approx_equals(arc_set::full_circle(), 1e-9));
  const std::array<arc, 1> notfull{arc{0.5, two_pi - 0.5}};
  EXPECT_FALSE(arc_set::from_arcs(notfull).approx_equals(arc_set::full_circle(), 1e-9));
}

// Property: measure(cover(dirs, alpha)) <= min(n * alpha, 2*pi) and the
// cover always contains every direction.
TEST(ArcSet, CoverMeasureBoundsProperty) {
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> u(0.0, two_pi);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 1 + static_cast<int>(rng() % 8);
    std::vector<double> dirs;
    for (int i = 0; i < n; ++i) dirs.push_back(u(rng));
    const double alpha = u(rng) / 2.0 + 0.1;
    const arc_set cover = arc_set::cover(dirs, alpha);
    EXPECT_LE(cover.measure(), std::min(n * alpha, two_pi) + 1e-9);
    EXPECT_GE(cover.measure(), std::min(alpha, two_pi) - 1e-9);
    for (double d : dirs) EXPECT_TRUE(cover.contains(d));
  }
}

// Property: cover is monotone — adding directions never shrinks it.
TEST(ArcSet, CoverMonotoneProperty) {
  std::mt19937_64 rng(6);
  std::uniform_real_distribution<double> u(0.0, two_pi);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> dirs;
    const double alpha = 1.0;
    double prev_measure = 0.0;
    for (int i = 0; i < 6; ++i) {
      dirs.push_back(u(rng));
      const double m = arc_set::cover(dirs, alpha).measure();
      EXPECT_GE(m, prev_measure - 1e-9);
      prev_measure = m;
    }
  }
}

TEST(Arc, LengthOfPlainAndWrappingArcs) {
  EXPECT_NEAR((arc{1.0, 2.5}).length(), 1.5, 1e-12);
  EXPECT_NEAR((arc{two_pi - 0.5, 0.5}).length(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ((arc{1.0, 1.0}).length(), 0.0);
}

}  // namespace
}  // namespace cbtc::geom
