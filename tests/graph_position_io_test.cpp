#include "graph/position_io.h"

#include "graph/graph.h"

#include <gtest/gtest.h>

#include <sstream>

namespace cbtc::graph {
namespace {

TEST(PositionIo, RoundTrip) {
  const std::vector<geom::vec2> pts{{1.5, -2.25}, {0.0, 0.0}, {1500.0, 733.125}};
  std::stringstream ss;
  write_positions_csv(ss, pts);
  const auto back = read_positions_csv(ss);
  ASSERT_EQ(back.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i].x, pts[i].x);
    EXPECT_DOUBLE_EQ(back[i].y, pts[i].y);
  }
}

TEST(PositionIo, HeaderOptional) {
  std::istringstream with_header("x,y\n1,2\n3,4\n");
  EXPECT_EQ(read_positions_csv(with_header).size(), 2u);
  std::istringstream without("1,2\n3,4\n");
  EXPECT_EQ(read_positions_csv(without).size(), 2u);
}

TEST(PositionIo, SkipsCommentsAndBlanks) {
  std::istringstream in("# deployment A\n\n1,2\n\n# trailing comment\n3,4\n");
  const auto pts = read_positions_csv(in);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[1].x, 3.0);
}

TEST(PositionIo, WhitespaceTolerant) {
  std::istringstream in("  1.5 , 2.5  \r\n");
  const auto pts = read_positions_csv(in);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_DOUBLE_EQ(pts[0].x, 1.5);
  EXPECT_DOUBLE_EQ(pts[0].y, 2.5);
}

TEST(PositionIo, MalformedRowThrowsWithLineNumber) {
  std::istringstream in("1,2\nnot-a-row\n");
  try {
    (void)read_positions_csv(in);
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(PositionIo, MissingCommaThrows) {
  std::istringstream in("12\n");
  EXPECT_THROW(read_positions_csv(in), std::runtime_error);
}

TEST(PositionIo, BadNumberThrows) {
  std::istringstream in("1,abc\n");
  EXPECT_THROW(read_positions_csv(in), std::runtime_error);
}

TEST(PositionIo, FileRoundTripAndErrors) {
  const std::string path = ::testing::TempDir() + "/cbtc_positions.csv";
  const std::vector<geom::vec2> pts{{10.0, 20.0}};
  save_positions_csv(path, pts);
  const auto back = load_positions_csv(path);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_DOUBLE_EQ(back[0].x, 10.0);
  EXPECT_THROW(load_positions_csv("/no/such/dir/file.csv"), std::runtime_error);
  EXPECT_THROW(save_positions_csv("/no/such/dir/file.csv", pts), std::runtime_error);
}

TEST(PositionIo, EmptyInput) {
  std::istringstream in("");
  EXPECT_TRUE(read_positions_csv(in).empty());
}

// --------------------------------------------------- induced subgraph

TEST(InducedSubgraph, MasksEdges) {
  undirected_graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto sub = g.induced({true, false, true, true});
  EXPECT_EQ(sub.num_nodes(), 4u);
  EXPECT_EQ(sub.num_edges(), 1u);
  EXPECT_TRUE(sub.has_edge(2, 3));
  EXPECT_FALSE(sub.has_edge(0, 1));
}

TEST(InducedSubgraph, FullMaskIsIdentity) {
  undirected_graph g(3);
  g.add_edge(0, 2);
  EXPECT_EQ(g.induced({true, true, true}), g);
}

TEST(InducedSubgraph, ShortMaskDropsTail) {
  undirected_graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto sub = g.induced({true, true});  // node 2 implicitly masked out
  EXPECT_EQ(sub.num_edges(), 1u);
  EXPECT_TRUE(sub.has_edge(0, 1));
}

TEST(InducedSubgraph, EmptyMask) {
  undirected_graph g(2);
  g.add_edge(0, 1);
  EXPECT_EQ(g.induced({}).num_edges(), 0u);
}

}  // namespace
}  // namespace cbtc::graph
