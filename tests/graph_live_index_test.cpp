// The incremental live-neighbor index must be indistinguishable from a
// fresh max-power graph build: after ANY sequence of moves, crashes,
// and restarts, its edge set equals
// build_max_power_graph(positions).induced(up), and the event-driven
// union-find monitor agrees with component analysis of that graph.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "geom/dynamic_grid.h"
#include "geom/random_points.h"
#include "graph/euclidean.h"
#include "graph/live_index.h"
#include "graph/traversal.h"

namespace cbtc::graph {
namespace {

constexpr double kRange = 320.0;

std::vector<geom::vec2> deployment(std::size_t n, std::uint64_t seed) {
  return geom::uniform_points(n, geom::bbox::rect(1000.0, 1000.0), seed);
}

undirected_graph reference_graph(const std::vector<geom::vec2>& positions,
                                 const std::vector<bool>& up) {
  return build_max_power_graph(positions, kRange).induced(up);
}

bool reference_field_connected(const undirected_graph& gr, const std::vector<bool>& up) {
  node_id first = invalid_node;
  const component_labels comps = connected_components(gr);
  for (node_id u = 0; u < up.size(); ++u) {
    if (!up[u]) continue;
    if (first == invalid_node) {
      first = u;
    } else if (!comps.same_component(u, first)) {
      return false;
    }
  }
  return true;
}

TEST(LiveIndex, InitialBuildMatchesMaxPowerGraph) {
  const auto positions = deployment(80, 11);
  const live_neighbor_index index(positions, kRange);
  const std::vector<bool> up(positions.size(), true);
  EXPECT_EQ(index.graph(), reference_graph(positions, up));
  EXPECT_EQ(index.live_count(), positions.size());
}

TEST(LiveIndex, CrashDropsEdgesAndRestartRestoresThem) {
  const auto positions = deployment(60, 5);
  live_neighbor_index index(positions, kRange);
  std::vector<bool> up(positions.size(), true);

  index.erase(7);
  up[7] = false;
  EXPECT_FALSE(index.is_live(7));
  EXPECT_EQ(index.graph(), reference_graph(positions, up));
  EXPECT_TRUE(index.neighbors(7).empty());

  index.insert(7, positions[7]);
  up[7] = true;
  EXPECT_EQ(index.graph(), reference_graph(positions, up));
}

TEST(LiveIndex, MoveAcrossTheFieldRewiresNeighborhoods) {
  const auto positions = deployment(60, 6);
  live_neighbor_index index(positions, kRange);
  std::vector<geom::vec2> current = positions;
  const std::vector<bool> up(positions.size(), true);

  // Teleport a node corner to corner, then drift it back in steps.
  current[4] = {999.0, 999.0};
  index.move(4, current[4]);
  EXPECT_EQ(index.graph(), reference_graph(current, up));
  for (int step = 0; step < 12; ++step) {
    current[4] = current[4] + geom::vec2{-80.0, -71.0};
    index.move(4, current[4]);
    EXPECT_EQ(index.graph(), reference_graph(current, up));
  }
}

/// The property test the tentpole asks for: random mobility / crash /
/// restart sequences, with edge-identity and monitor agreement checked
/// after every batch of events.
TEST(LiveIndex, RandomChurnStaysEdgeIdenticalToFreshBuild) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto positions = deployment(50, 100 + seed);
    live_neighbor_index index(positions, kRange);
    connectivity_monitor monitor(index);
    std::vector<geom::vec2> current = positions;
    std::vector<bool> up(positions.size(), true);

    std::mt19937_64 rng(seed * 7919 + 1);
    std::uniform_int_distribution<std::size_t> pick_node(0, positions.size() - 1);
    std::uniform_real_distribution<double> coord(-50.0, 1050.0);  // may leave the region
    std::uniform_real_distribution<double> jitter(-60.0, 60.0);
    std::uniform_int_distribution<int> pick_op(0, 9);

    for (int step = 0; step < 300; ++step) {
      const auto u = static_cast<node_id>(pick_node(rng));
      const int op = pick_op(rng);
      if (op < 6) {  // local drift (the common mobility-tick case)
        current[u] = current[u] + geom::vec2{jitter(rng), jitter(rng)};
        index.move(u, current[u]);
      } else if (op < 8) {  // teleport (waypoint arrival, big hop)
        current[u] = {coord(rng), coord(rng)};
        index.move(u, current[u]);
      } else if (up[u]) {  // crash
        index.erase(u);
        up[u] = false;
      } else {  // restart where the node meanwhile drifted
        index.insert(u, current[u]);
        up[u] = true;
      }

      if (step % 10 == 0 || step + 1 == 300) {
        const undirected_graph expected = reference_graph(current, up);
        ASSERT_EQ(index.graph(), expected) << "seed " << seed << " step " << step;
        ASSERT_EQ(monitor.connected(), reference_field_connected(expected, up))
            << "seed " << seed << " step " << step;
      }
    }
  }
}

TEST(LiveIndex, MonitorIsIncrementalOnPureEdgeAdditions) {
  // Start fully crashed, then bring nodes up one at a time: every edge
  // arrives as an addition, so the monitor unions incrementally and
  // must agree with the reference at each stage.
  const auto positions = deployment(40, 3);
  live_neighbor_index index(positions, kRange);
  connectivity_monitor monitor(index);
  std::vector<bool> up(positions.size(), true);
  for (node_id u = 0; u < positions.size(); ++u) {
    index.erase(u);
    up[u] = false;
  }
  for (node_id u = 0; u < positions.size(); ++u) {
    index.insert(u, positions[u]);
    up[u] = true;
    ASSERT_EQ(monitor.connected(), reference_field_connected(reference_graph(positions, up), up))
        << "after insert " << u;
  }
}

TEST(DynamicGrid, QueriesMatchBruteForceUnderChurn) {
  const auto positions = deployment(70, 21);
  geom::dynamic_grid grid(kRange);
  std::vector<geom::vec2> current;
  std::vector<bool> present(positions.size(), false);
  for (geom::point_index i = 0; i < positions.size(); ++i) {
    grid.insert(i, positions[i]);
    present[i] = true;
    current.push_back(positions[i]);
  }

  std::mt19937_64 rng(17);
  std::uniform_int_distribution<std::size_t> pick(0, positions.size() - 1);
  std::uniform_real_distribution<double> coord(-200.0, 1200.0);
  for (int step = 0; step < 200; ++step) {
    const auto i = static_cast<geom::point_index>(pick(rng));
    if (step % 3 == 0 && present[i]) {
      grid.erase(i);
      present[i] = false;
    } else if (!present[i]) {
      grid.insert(i, current[i]);
      present[i] = true;
    } else {
      current[i] = {coord(rng), coord(rng)};
      grid.move(i, current[i]);
    }

    // Compare against brute force over the present points.
    const geom::vec2 center{coord(rng), coord(rng)};
    std::vector<geom::point_index> got;
    grid.query_radius_into(center, kRange, geom::spatial_grid::npos, got);
    std::sort(got.begin(), got.end());
    std::vector<geom::point_index> want;
    for (geom::point_index j = 0; j < current.size(); ++j) {
      if (present[j] && geom::distance_sq(current[j], center) <= kRange * kRange) {
        want.push_back(j);
      }
    }
    ASSERT_EQ(got, want) << "step " << step;
  }
}

}  // namespace
}  // namespace cbtc::graph
