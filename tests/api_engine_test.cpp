// The cbtc::api façade must be a faithful front door: the engine's
// oracle and protocol methods agree on the neighbor relation (the same
// invariant tests/proto_agent_test.cpp asserts on the raw layers),
// baseline methods match direct baselines::* calls, and multi-seed
// batches reduce to bitwise-identical aggregates for any thread count.
#include <gtest/gtest.h>

#include <set>

#include "api/api.h"
#include "baselines/baselines.h"
#include "graph/euclidean.h"

namespace cbtc::api {
namespace {

std::set<graph::node_id> ids(const algo::node_result& n) {
  std::set<graph::node_id> s;
  for (const auto& rec : n.neighbors) s.insert(rec.id);
  return s;
}

/// Paper-style workload small enough for protocol simulation in tests;
/// discrete growth (what the distributed agents actually run) and a
/// reliable low-latency channel so the protocol matches the oracle.
scenario_spec parity_spec() {
  scenario_spec spec;
  spec.deploy = {.kind = deployment_kind::uniform, .nodes = 60, .region_side = 1200.0};
  spec.base_seed = 42;
  spec.cbtc.mode = algo::growth_mode::discrete;
  spec.protocol.agent.round_timeout = 0.5;
  spec.protocol.channel.base_delay = 0.01;
  spec.metrics = {.stretch = false, .interference = false, .robustness = false};
  return spec;
}

TEST(ApiEngine, OracleAndProtocolAgreeOnNeighborRelation) {
  scenario_spec spec = parity_spec();
  const engine eng;

  spec.method = method_spec::oracle();
  const run_report oracle = eng.run(spec);
  spec.method = method_spec::protocol();
  const run_report protocol = eng.run(spec);

  ASSERT_TRUE(oracle.has_growth);
  ASSERT_TRUE(protocol.has_growth);
  ASSERT_EQ(oracle.growth.num_nodes(), protocol.growth.num_nodes());
  for (std::size_t u = 0; u < oracle.growth.num_nodes(); ++u) {
    EXPECT_EQ(ids(oracle.growth.nodes[u]), ids(protocol.growth.nodes[u])) << "node " << u;
    EXPECT_EQ(oracle.growth.nodes[u].boundary, protocol.growth.nodes[u].boundary) << "node " << u;
  }
  EXPECT_EQ(oracle.topology, protocol.topology);
  EXPECT_TRUE(protocol.has_protocol_stats);
  EXPECT_GT(protocol.protocol_stats.broadcasts, 0u);
  EXPECT_FALSE(oracle.has_protocol_stats);
}

TEST(ApiEngine, OracleAndProtocolAgreeWithOptimizations) {
  scenario_spec spec = parity_spec();
  spec.cbtc.alpha = algo::alpha_two_pi_three;
  spec.opts = algo::optimization_set::all();
  const engine eng;

  spec.method = method_spec::oracle();
  const run_report oracle = eng.run(spec);
  spec.method = method_spec::protocol();
  const run_report protocol = eng.run(spec);

  EXPECT_EQ(oracle.topology, protocol.topology);
  EXPECT_EQ(oracle.removed_edges, protocol.removed_edges);
}

TEST(ApiEngine, BaselinesMatchDirectCalls) {
  scenario_spec spec;
  spec.deploy = {.kind = deployment_kind::uniform, .nodes = 80, .region_side = 1400.0};
  spec.base_seed = 7;
  spec.metrics = {.stretch = false, .interference = false, .robustness = false};
  const engine eng;

  const auto positions = spec.make_positions(0);
  const double R = spec.radio.max_range;

  spec.method = method_spec::of_baseline(baseline_kind::euclidean_mst);
  EXPECT_EQ(eng.run(spec).topology, baselines::euclidean_mst(positions, R));

  spec.method = method_spec::of_baseline(baseline_kind::relative_neighborhood);
  EXPECT_EQ(eng.run(spec).topology, baselines::relative_neighborhood_graph(positions, R));

  spec.method = method_spec::of_baseline(baseline_kind::gabriel);
  EXPECT_EQ(eng.run(spec).topology, baselines::gabriel_graph(positions, R));

  spec.method = method_spec::of_baseline(baseline_kind::yao);
  spec.method.yao_cones = 6;
  EXPECT_EQ(eng.run(spec).topology, baselines::yao_graph(positions, R, 6));

  spec.method = method_spec::of_baseline(baseline_kind::knn);
  spec.method.knn_k = 3;
  EXPECT_EQ(eng.run(spec).topology, baselines::knn_graph(positions, R, 3));

  spec.method = method_spec::of_baseline(baseline_kind::max_power);
  EXPECT_EQ(eng.run(spec).topology, graph::build_max_power_graph(positions, R));
}

TEST(ApiEngine, MaxPowerBaselineUsesNominalRadius) {
  scenario_spec spec;
  spec.deploy.nodes = 50;
  spec.method = method_spec::of_baseline(baseline_kind::max_power);
  spec.metrics = {.stretch = false, .interference = false, .robustness = false};
  const run_report r = engine{}.run(spec);
  EXPECT_DOUBLE_EQ(r.avg_radius, spec.radio.max_range);
  EXPECT_DOUBLE_EQ(r.max_radius, spec.radio.max_range);
  ASSERT_EQ(r.node_powers.size(), 50u);
  for (const double p : r.node_powers) EXPECT_DOUBLE_EQ(p, spec.power().max_power());
}

void expect_identical(const exp::summary& a, const exp::summary& b, const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;       // bitwise: no tolerance
  EXPECT_EQ(a.stddev(), b.stddev()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
}

TEST(ApiEngine, BatchAggregatesAreThreadCountInvariant) {
  scenario_spec spec = get_scenario("paper_table1");
  spec.deploy.nodes = 40;  // keep 24 runs quick
  spec.metrics.stretch_samples = 4;
  const engine eng;

  const seed_range seeds{0, 24};
  const batch_report serial = eng.run_batch(spec, seeds, 1);
  const batch_report parallel = eng.run_batch(spec, seeds, 4);

  ASSERT_EQ(serial.runs, 24u);
  ASSERT_EQ(parallel.runs, 24u);
  EXPECT_EQ(serial.connectivity_failures, parallel.connectivity_failures);
  expect_identical(serial.edges, parallel.edges, "edges");
  expect_identical(serial.degree, parallel.degree, "degree");
  expect_identical(serial.radius, parallel.radius, "radius");
  expect_identical(serial.max_radius, parallel.max_radius, "max_radius");
  expect_identical(serial.tx_power, parallel.tx_power, "tx_power");
  expect_identical(serial.boundary, parallel.boundary, "boundary");
  expect_identical(serial.power_stretch, parallel.power_stretch, "power_stretch");
  expect_identical(serial.hop_stretch, parallel.hop_stretch, "hop_stretch");
  expect_identical(serial.interference, parallel.interference, "interference");
  expect_identical(serial.cut_vertices, parallel.cut_vertices, "cut_vertices");
  expect_identical(serial.removed_edges, parallel.removed_edges, "removed_edges");
}

TEST(ApiEngine, BatchReportsComeBackInSeedOrder) {
  scenario_spec spec;
  spec.deploy.nodes = 30;
  spec.metrics = {.stretch = false, .interference = false, .robustness = false};
  const auto reports = engine{}.run_all(spec, {5, 6}, 3);
  ASSERT_EQ(reports.size(), 6u);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].seed, 5 + i);
  }
}

TEST(ApiEngine, RunIsDeterministicPerSeed) {
  scenario_spec spec = get_scenario("paper_table1");
  spec.deploy.nodes = 40;
  const engine eng;
  const run_report a = eng.run(spec, 3);
  const run_report b = eng.run(spec, 3);
  EXPECT_EQ(a.topology, b.topology);
  EXPECT_EQ(a.node_powers, b.node_powers);
  EXPECT_EQ(a.avg_radius, b.avg_radius);
}

TEST(ApiEngine, FixedDeploymentIgnoresSeed) {
  scenario_spec spec;
  spec.deploy = deployment_spec::fixed_positions(
      {{0.0, 0.0}, {100.0, 0.0}, {0.0, 100.0}, {300.0, 300.0}});
  spec.metrics = {.stretch = false, .interference = false, .robustness = false};
  const engine eng;
  EXPECT_EQ(eng.run(spec, 0).topology, eng.run(spec, 99).topology);
  EXPECT_EQ(eng.run(spec).nodes, 4u);
}

}  // namespace
}  // namespace cbtc::api
