#include "geom/random_points.h"

#include <gtest/gtest.h>

namespace cbtc::geom {
namespace {

TEST(UniformPoints, CountAndBounds) {
  const bbox region = bbox::rect(1500.0, 1500.0);
  const auto pts = uniform_points(100, region, 42);
  ASSERT_EQ(pts.size(), 100u);
  for (const vec2& p : pts) EXPECT_TRUE(region.contains(p));
}

TEST(UniformPoints, DeterministicPerSeed) {
  const bbox region = bbox::rect(100.0, 100.0);
  EXPECT_EQ(uniform_points(50, region, 7), uniform_points(50, region, 7));
  EXPECT_NE(uniform_points(50, region, 7), uniform_points(50, region, 8));
}

TEST(UniformPoints, ZeroPoints) {
  EXPECT_TRUE(uniform_points(0, bbox::rect(10, 10), 1).empty());
}

TEST(UniformPoints, RoughlyUniformQuadrants) {
  // Sanity: with 4000 points, each quadrant holds 1000 +- 40%.
  const bbox region = bbox::rect(100.0, 100.0);
  const auto pts = uniform_points(4000, region, 99);
  int counts[4] = {0, 0, 0, 0};
  for (const vec2& p : pts) {
    counts[(p.x >= 50.0 ? 1 : 0) + (p.y >= 50.0 ? 2 : 0)]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 600);
    EXPECT_LT(c, 1400);
  }
}

TEST(ClusteredPoints, CountBoundsAndDeterminism) {
  const bbox region = bbox::rect(1000.0, 1000.0);
  const auto pts = clustered_points(200, 5, 50.0, region, 3);
  ASSERT_EQ(pts.size(), 200u);
  for (const vec2& p : pts) EXPECT_TRUE(region.contains(p));
  EXPECT_EQ(pts, clustered_points(200, 5, 50.0, region, 3));
}

TEST(ClusteredPoints, ZeroClustersTreatedAsOne) {
  const auto pts = clustered_points(10, 0, 1.0, bbox::rect(10, 10), 1);
  EXPECT_EQ(pts.size(), 10u);
}

TEST(ClusteredPoints, TightClustersAreTight) {
  const bbox region = bbox::rect(10000.0, 10000.0);
  const auto pts = clustered_points(100, 1, 1.0, region, 17);
  // Single cluster with sigma=1: spread well below the region size.
  double max_d = 0.0;
  for (const vec2& p : pts) max_d = std::max(max_d, distance(p, pts[0]));
  EXPECT_LT(max_d, 50.0);
}

TEST(JitteredGrid, CountBoundsAndDeterminism) {
  const bbox region = bbox::rect(900.0, 400.0);
  const auto pts = jittered_grid_points(60, 0.4, region, 11);
  ASSERT_EQ(pts.size(), 60u);
  for (const vec2& p : pts) EXPECT_TRUE(region.contains(p));
  EXPECT_EQ(pts, jittered_grid_points(60, 0.4, region, 11));
}

TEST(JitteredGrid, ZeroJitterIsRegular) {
  const bbox region = bbox::rect(100.0, 100.0);
  const auto a = jittered_grid_points(16, 0.0, region, 1);
  const auto b = jittered_grid_points(16, 0.0, region, 2);
  EXPECT_EQ(a, b);  // no randomness left
}

}  // namespace
}  // namespace cbtc::geom
