#include <gtest/gtest.h>

#include "graph/digraph.h"
#include "graph/graph.h"
#include "graph/union_find.h"

namespace cbtc::graph {
namespace {

// ----------------------------------------------------- undirected_graph

TEST(UndirectedGraph, EmptyGraph) {
  const undirected_graph g(5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.edges().empty());
  EXPECT_EQ(g.degree(0), 0u);
}

TEST(UndirectedGraph, AddEdgeSymmetric) {
  undirected_graph g(3);
  EXPECT_TRUE(g.add_edge(0, 2));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_EQ(g.degree(1), 0u);
}

TEST(UndirectedGraph, DuplicateAndSelfLoopIgnored) {
  undirected_graph g(3);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(1, 0));
  EXPECT_FALSE(g.add_edge(2, 2));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(UndirectedGraph, RemoveEdge) {
  undirected_graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.remove_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.remove_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(UndirectedGraph, NeighborsSorted) {
  undirected_graph g(5);
  g.add_edge(2, 4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  const auto n = g.neighbors(2);
  ASSERT_EQ(n.size(), 3u);
  EXPECT_EQ(n[0], 0u);
  EXPECT_EQ(n[1], 3u);
  EXPECT_EQ(n[2], 4u);
}

TEST(UndirectedGraph, EdgesCanonical) {
  undirected_graph g(4);
  g.add_edge(3, 1);
  g.add_edge(0, 2);
  const auto es = g.edges();
  ASSERT_EQ(es.size(), 2u);
  EXPECT_EQ(es[0], (edge{0, 2}));
  EXPECT_EQ(es[1], (edge{1, 3}));
}

TEST(UndirectedGraph, HasEdgeOutOfRange) {
  const undirected_graph g(2);
  EXPECT_FALSE(g.has_edge(0, 7));
  EXPECT_FALSE(g.has_edge(9, 0));
}

TEST(UndirectedGraph, Equality) {
  undirected_graph a(3), b(3);
  a.add_edge(0, 1);
  b.add_edge(0, 1);
  EXPECT_EQ(a, b);
  b.add_edge(1, 2);
  EXPECT_NE(a, b);
}

// ------------------------------------------------------------- digraph

TEST(Digraph, ArcsAreDirected) {
  digraph d(3);
  EXPECT_TRUE(d.add_arc(0, 1));
  EXPECT_TRUE(d.has_arc(0, 1));
  EXPECT_FALSE(d.has_arc(1, 0));
  EXPECT_EQ(d.num_arcs(), 1u);
  EXPECT_EQ(d.out_degree(0), 1u);
  EXPECT_EQ(d.out_degree(1), 0u);
}

TEST(Digraph, DuplicateAndSelfLoopIgnored) {
  digraph d(2);
  EXPECT_TRUE(d.add_arc(0, 1));
  EXPECT_FALSE(d.add_arc(0, 1));
  EXPECT_FALSE(d.add_arc(1, 1));
  EXPECT_EQ(d.num_arcs(), 1u);
}

TEST(Digraph, RemoveArc) {
  digraph d(2);
  d.add_arc(0, 1);
  EXPECT_TRUE(d.remove_arc(0, 1));
  EXPECT_FALSE(d.remove_arc(0, 1));
  EXPECT_EQ(d.num_arcs(), 0u);
}

TEST(Digraph, SymmetricClosureKeepsAnyDirection) {
  // Example 2.1's lesson: (v,u0) in N_alpha without (u0,v) still must
  // produce the undirected edge in E_alpha.
  digraph d(3);
  d.add_arc(0, 1);  // one-directional
  d.add_arc(1, 2);
  d.add_arc(2, 1);  // bidirectional
  const undirected_graph closure = d.symmetric_closure();
  EXPECT_TRUE(closure.has_edge(0, 1));
  EXPECT_TRUE(closure.has_edge(1, 2));
  EXPECT_EQ(closure.num_edges(), 2u);
}

TEST(Digraph, SymmetricCoreKeepsOnlyMutual) {
  // Section 3.2: E^-_alpha keeps only mutual arcs.
  digraph d(3);
  d.add_arc(0, 1);
  d.add_arc(1, 2);
  d.add_arc(2, 1);
  const undirected_graph core = d.symmetric_core();
  EXPECT_FALSE(core.has_edge(0, 1));
  EXPECT_TRUE(core.has_edge(1, 2));
  EXPECT_EQ(core.num_edges(), 1u);
}

TEST(Digraph, CoreSubsetOfClosure) {
  digraph d(6);
  d.add_arc(0, 1);
  d.add_arc(1, 0);
  d.add_arc(2, 3);
  d.add_arc(4, 5);
  d.add_arc(5, 4);
  d.add_arc(3, 5);
  const auto closure = d.symmetric_closure();
  const auto core = d.symmetric_core();
  for (const edge& e : core.edges()) EXPECT_TRUE(closure.has_edge(e.u, e.v));
  EXPECT_LE(core.num_edges(), closure.num_edges());
}

// ---------------------------------------------------------- union_find

TEST(UnionFind, InitiallyDisjoint) {
  union_find uf(4);
  EXPECT_EQ(uf.num_sets(), 4u);
  EXPECT_FALSE(uf.same(0, 1));
  EXPECT_EQ(uf.size_of(2), 1u);
}

TEST(UnionFind, UniteMerges) {
  union_find uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));  // already merged
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_EQ(uf.size_of(0), 2u);
}

TEST(UnionFind, TransitiveMerging) {
  union_find uf(6);
  uf.unite(0, 1);
  uf.unite(2, 3);
  uf.unite(1, 2);
  EXPECT_TRUE(uf.same(0, 3));
  EXPECT_FALSE(uf.same(0, 4));
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_EQ(uf.size_of(3), 4u);
}

TEST(UnionFind, ChainOfUnions) {
  const std::size_t n = 1000;
  union_find uf(n);
  for (node_id i = 0; i + 1 < n; ++i) uf.unite(i, i + 1);
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_TRUE(uf.same(0, static_cast<node_id>(n - 1)));
  EXPECT_EQ(uf.size_of(500), n);
}

}  // namespace
}  // namespace cbtc::graph
