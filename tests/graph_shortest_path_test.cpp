// Edge cases of graph::dijkstra_tree left untested by the metrics
// suite: unreachable sinks, zero-weight and duplicate edges, trivial
// graphs, and tie-break determinism (including graphs assembled at
// different pool widths).
#include "graph/shortest_path.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "geom/random_points.h"
#include "graph/euclidean.h"
#include "util/parallel.h"

namespace cbtc::graph {
namespace {

using geom::vec2;

const edge_cost_fn unit_cost = [](node_id, node_id) { return 1.0; };

TEST(DijkstraTree, UnreachableSinkKeepsInfinityAndNoParent) {
  undirected_graph g(4);  // {0,1} connected, {2,3} connected, no bridge
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const shortest_path_tree t = dijkstra_tree(g, 0, unit_cost);
  EXPECT_EQ(t.dist[0], 0.0);
  EXPECT_EQ(t.dist[1], 1.0);
  EXPECT_TRUE(std::isinf(t.dist[2]));
  EXPECT_TRUE(std::isinf(t.dist[3]));
  EXPECT_EQ(t.parent[0], invalid_node);
  EXPECT_EQ(t.parent[1], 0u);
  EXPECT_EQ(t.parent[2], invalid_node);
  EXPECT_EQ(t.parent[3], invalid_node);
}

TEST(DijkstraTree, ZeroWeightEdgesSettleDeterministically) {
  // A 4-cycle where every edge costs 0: all nodes at distance 0, and
  // the (distance, node id) heap order makes the parents reproducible
  // — each node's parent is its smallest-id zero-distance neighbor
  // settled first.
  undirected_graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  const edge_cost_fn zero = [](node_id, node_id) { return 0.0; };
  const shortest_path_tree a = dijkstra_tree(g, 0, zero);
  for (const double d : a.dist) EXPECT_EQ(d, 0.0);
  EXPECT_EQ(a.parent[0], invalid_node);
  // Identical on every rerun (pure function of graph + cost).
  const shortest_path_tree b = dijkstra_tree(g, 0, zero);
  EXPECT_EQ(a.dist, b.dist);
  EXPECT_EQ(a.parent, b.parent);
}

TEST(DijkstraTree, DuplicateEdgeInsertionsDoNotSkewDistances) {
  // add_edge ignores duplicates (and self-loops), so hammering the
  // same edge leaves one adjacency entry and one relaxation per hop.
  undirected_graph g(3);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(g.add_edge(0, 1), i == 0);
    EXPECT_EQ(g.add_edge(1, 0), false);
    EXPECT_EQ(g.add_edge(1, 2), i == 0);
    EXPECT_FALSE(g.add_edge(1, 1));
  }
  EXPECT_EQ(g.num_edges(), 2u);
  const shortest_path_tree t = dijkstra_tree(g, 0, unit_cost);
  EXPECT_EQ(t.dist[2], 2.0);
  EXPECT_EQ(t.parent[2], 1u);
}

TEST(DijkstraTree, SingleNodeGraph) {
  const undirected_graph g(1);
  const shortest_path_tree t = dijkstra_tree(g, 0, unit_cost);
  ASSERT_EQ(t.dist.size(), 1u);
  EXPECT_EQ(t.dist[0], 0.0);
  EXPECT_EQ(t.parent[0], invalid_node);
}

TEST(DijkstraTree, EqualCostTiesBreakTowardSmallerIds) {
  // Two equal-cost routes to node 3: via 1 and via 2. The heap's
  // (distance, id) order settles 1 first, so 3's parent must be 1.
  undirected_graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const shortest_path_tree t = dijkstra_tree(g, 0, unit_cost);
  EXPECT_EQ(t.dist[3], 2.0);
  EXPECT_EQ(t.parent[3], 1u);
}

TEST(DijkstraTree, IdenticalOnGraphsBuiltAtAnyPoolWidth) {
  // The trees must agree bit for bit whether the input CSR was
  // assembled serially or by a wide pool — the graphs are equal, and
  // dijkstra_tree is a pure function of the adjacency.
  const std::vector<vec2> positions =
      geom::uniform_points(150, geom::bbox::rect(1500.0, 1500.0), 11);
  util::thread_pool one(1);
  util::thread_pool wide(8);
  const undirected_graph a = build_max_power_graph(positions, 500.0, one);
  const undirected_graph b = build_max_power_graph(positions, 500.0, wide);
  ASSERT_TRUE(a == b);
  const edge_cost_fn cost = power_cost(positions, 2.0);
  const shortest_path_tree ta = dijkstra_tree(a, 7, cost);
  const shortest_path_tree tb = dijkstra_tree(b, 7, cost);
  EXPECT_EQ(ta.dist, tb.dist);
  EXPECT_EQ(ta.parent, tb.parent);
}

}  // namespace
}  // namespace cbtc::graph
