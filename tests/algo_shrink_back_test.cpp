#include "algo/shrink_back.h"

#include <gtest/gtest.h>

#include "geom/arc_set.h"
#include "geom/random_points.h"
#include "graph/euclidean.h"
#include "graph/metrics.h"
#include "graph/traversal.h"
#include "radio/power_model.h"

namespace cbtc::algo {
namespace {

using geom::vec2;

const radio::power_model pm(2.0, 500.0);

cbtc_result paper_instance(std::uint64_t seed, growth_mode mode = growth_mode::discrete) {
  cbtc_params p;
  p.mode = mode;
  return run_cbtc(geom::uniform_points(100, geom::bbox::rect(1500, 1500), seed), pm, p);
}

TEST(ShrinkBack, NeverIncreasesPowerOrNeighbors) {
  const cbtc_result before = paper_instance(1);
  const cbtc_result after = apply_shrink_back(before);
  ASSERT_EQ(after.num_nodes(), before.num_nodes());
  for (std::size_t u = 0; u < before.num_nodes(); ++u) {
    EXPECT_LE(after.nodes[u].final_power, before.nodes[u].final_power + 1e-12);
    EXPECT_LE(after.nodes[u].neighbors.size(), before.nodes[u].neighbors.size());
    EXPECT_EQ(after.nodes[u].boundary, before.nodes[u].boundary);
  }
}

TEST(ShrinkBack, PreservesConeCoverage) {
  // The defining property (Theorem 3.1's premise): cover_alpha of the
  // kept directions equals cover_alpha of all directions.
  const cbtc_result before = paper_instance(2);
  const cbtc_result after = apply_shrink_back(before);
  for (std::size_t u = 0; u < before.num_nodes(); ++u) {
    const auto cover_before =
        geom::arc_set::cover(before.nodes[u].directions(), before.params.alpha);
    const auto cover_after = geom::arc_set::cover(after.nodes[u].directions(), after.params.alpha);
    EXPECT_TRUE(cover_after.approx_equals(cover_before, 1e-6)) << "node " << u;
  }
}

TEST(ShrinkBack, OnlyBoundaryNodesAffectedByDefault) {
  const cbtc_result before = paper_instance(3);
  const cbtc_result after = apply_shrink_back(before);
  for (std::size_t u = 0; u < before.num_nodes(); ++u) {
    if (!before.nodes[u].boundary) {
      EXPECT_EQ(after.nodes[u].neighbors.size(), before.nodes[u].neighbors.size());
      EXPECT_DOUBLE_EQ(after.nodes[u].final_power, before.nodes[u].final_power);
    }
  }
}

TEST(ShrinkBack, NonBoundaryNodesAreNoOpsEvenWhenProcessed) {
  // Provable no-op: a non-boundary node's earlier levels all had a gap,
  // so no strictly smaller level can reproduce the final coverage.
  const cbtc_result before = paper_instance(4);
  shrink_back_options opts;
  opts.boundary_only = false;
  const cbtc_result after = apply_shrink_back(before, opts);
  for (std::size_t u = 0; u < before.num_nodes(); ++u) {
    if (!before.nodes[u].boundary) {
      EXPECT_EQ(after.nodes[u].neighbors.size(), before.nodes[u].neighbors.size()) << "node " << u;
    }
  }
}

TEST(ShrinkBack, ActuallyShrinksSomeone) {
  // On the paper's workload the shrink-back savings are substantial
  // (Table 1: radius 436.8 -> 373.7 for alpha = 5*pi/6); at minimum,
  // someone must shrink.
  const cbtc_result before = paper_instance(5);
  const cbtc_result after = apply_shrink_back(before);
  double saved = 0.0;
  for (std::size_t u = 0; u < before.num_nodes(); ++u) {
    saved += before.nodes[u].final_power - after.nodes[u].final_power;
  }
  EXPECT_GT(saved, 0.0);
}

TEST(ShrinkBack, DroppedNeighborsAreHighestLevels) {
  const cbtc_result before = paper_instance(6);
  const cbtc_result after = apply_shrink_back(before);
  for (std::size_t u = 0; u < before.num_nodes(); ++u) {
    if (after.nodes[u].level_powers.size() == before.nodes[u].level_powers.size()) continue;
    // Every kept neighbor's level fits in the kept prefix of levels.
    const std::size_t kept_levels = after.nodes[u].level_powers.size();
    for (const neighbor_record& r : after.nodes[u].neighbors) {
      EXPECT_LT(r.level, kept_levels);
    }
    // final_power equals the last kept level's power.
    EXPECT_DOUBLE_EQ(after.nodes[u].final_power, after.nodes[u].level_powers.back());
  }
}

TEST(ShrinkBack, GsAlphaPreservesConnectivity) {
  // Theorem 3.1 on random instances, both growth modes.
  for (std::uint64_t seed : {10u, 11u, 12u, 13u}) {
    for (growth_mode mode : {growth_mode::discrete, growth_mode::continuous}) {
      const cbtc_result shrunk = apply_shrink_back(paper_instance(seed, mode));
      const auto positions = geom::uniform_points(100, geom::bbox::rect(1500, 1500), seed);
      const auto gr = graph::build_max_power_graph(positions, pm.max_range());
      EXPECT_TRUE(graph::same_connectivity(shrunk.symmetric_closure(), gr))
          << "seed " << seed << " mode " << static_cast<int>(mode);
    }
  }
}

TEST(ShrinkBack, ReducesAverageRadiusOnPaperWorkload) {
  const auto positions = geom::uniform_points(100, geom::bbox::rect(1500, 1500), 77);
  cbtc_params p;
  const cbtc_result before = run_cbtc(positions, pm, p);
  const cbtc_result after = apply_shrink_back(before);
  const double r_before =
      graph::average_radius(before.symmetric_closure(), positions, pm.max_range());
  const double r_after = graph::average_radius(after.symmetric_closure(), positions, pm.max_range());
  EXPECT_LT(r_after, r_before);
}

TEST(ShrinkBack, EmptyAndTrivialNodesUntouched) {
  const std::vector<vec2> pts{{0, 0}, {5000, 0}, {100, 100}};
  const cbtc_result before = run_cbtc(pts, pm, {});
  const cbtc_result after = apply_shrink_back(before);
  EXPECT_EQ(after.num_nodes(), before.num_nodes());
  // Node 1 is isolated (boundary, no neighbors): nothing to shrink.
  EXPECT_TRUE(after.nodes[1].neighbors.empty());
}

}  // namespace
}  // namespace cbtc::algo
