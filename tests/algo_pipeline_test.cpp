// Direct contract tests for the build_topology pipeline: flag
// combinations, the alpha-gating of asymmetric removal, and the
// relationships between stages.
#include "algo/pipeline.h"

#include <gtest/gtest.h>

#include "geom/random_points.h"
#include "graph/euclidean.h"
#include "graph/metrics.h"
#include "radio/power_model.h"

namespace cbtc::algo {
namespace {

const radio::power_model pm(2.0, 500.0);

std::vector<geom::vec2> instance(std::uint64_t seed) {
  return geom::uniform_points(90, geom::bbox::rect(1400, 1400), seed);
}

TEST(Pipeline, NoOptsEqualsOracleClosure) {
  const auto pts = instance(1);
  cbtc_params params;
  const topology_result t = build_topology(pts, pm, params, optimization_set::none());
  EXPECT_EQ(t.topology, run_cbtc(pts, pm, params).symmetric_closure());
  EXPECT_FALSE(t.asymmetric_applied);
  EXPECT_EQ(t.redundant_edges, 0u);
  EXPECT_EQ(t.removed_edges, 0u);
}

TEST(Pipeline, AsymRequestIgnoredAboveTwoPiThree) {
  const auto pts = instance(2);
  cbtc_params params;  // alpha = 5*pi/6
  optimization_set opts;
  opts.asymmetric_removal = true;
  const topology_result t = build_topology(pts, pm, params, opts);
  EXPECT_FALSE(t.asymmetric_applied);
  // Without op2 the topology equals the closure.
  EXPECT_EQ(t.topology, run_cbtc(pts, pm, params).symmetric_closure());
}

TEST(Pipeline, AsymAppliedAtTwoPiThree) {
  const auto pts = instance(3);
  cbtc_params params;
  params.alpha = alpha_two_pi_three;
  optimization_set opts;
  opts.asymmetric_removal = true;
  const topology_result t = build_topology(pts, pm, params, opts);
  EXPECT_TRUE(t.asymmetric_applied);
  EXPECT_EQ(t.topology, run_cbtc(pts, pm, params).symmetric_core());
}

TEST(Pipeline, ShrinkBackFlagReflectedInGrowth) {
  const auto pts = instance(4);
  cbtc_params params;
  optimization_set opts;
  opts.shrink_back = true;
  const topology_result with = build_topology(pts, pm, params, opts);
  const topology_result without = build_topology(pts, pm, params, optimization_set::none());
  double power_with = 0.0, power_without = 0.0;
  for (const auto& n : with.growth.nodes) power_with += n.final_power;
  for (const auto& n : without.growth.nodes) power_without += n.final_power;
  EXPECT_LT(power_with, power_without);
}

TEST(Pipeline, PairwiseStatsConsistent) {
  const auto pts = instance(5);
  cbtc_params params;
  optimization_set opts;
  opts.shrink_back = true;
  opts.pairwise_removal = true;
  const topology_result t = build_topology(pts, pm, params, opts);
  EXPECT_GT(t.redundant_edges, 0u);
  EXPECT_LE(t.removed_edges, t.redundant_edges);

  // remove_all removes exactly the redundant count.
  optimization_set all = opts;
  all.pairwise.remove_all = true;
  const topology_result ta = build_topology(pts, pm, params, all);
  EXPECT_EQ(ta.removed_edges, ta.redundant_edges);
  EXPECT_LE(ta.topology.num_edges(), t.topology.num_edges());
}

TEST(Pipeline, StagesOnlyShrinkMetrics) {
  // Each additional optimization can only reduce degree and radius.
  const auto pts = instance(6);
  cbtc_params params;
  params.alpha = alpha_two_pi_three;

  optimization_set o0;                                  // basic
  optimization_set o1{.shrink_back = true};             // +op1
  optimization_set o12 = o1;
  o12.asymmetric_removal = true;                        // +op2
  optimization_set oall = optimization_set::all();      // +op3

  double prev_deg = 1e18, prev_rad = 1e18;
  for (const optimization_set& o : {o0, o1, o12, oall}) {
    const topology_result t = build_topology(pts, pm, params, o);
    const double deg = graph::average_degree(t.topology);
    const double rad = graph::average_radius(t.topology, pts, pm.max_range());
    EXPECT_LE(deg, prev_deg + 1e-12);
    EXPECT_LE(rad, prev_rad + 1e-9);
    prev_deg = deg;
    prev_rad = rad;
  }
}

TEST(Pipeline, EmptyAndSingleNode) {
  const topology_result empty = build_topology({}, pm, {}, optimization_set::all());
  EXPECT_EQ(empty.topology.num_nodes(), 0u);

  const std::vector<geom::vec2> one{{10.0, 10.0}};
  const topology_result single = build_topology(one, pm, {}, optimization_set::all());
  EXPECT_EQ(single.topology.num_nodes(), 1u);
  EXPECT_EQ(single.topology.num_edges(), 0u);
  EXPECT_TRUE(single.growth.nodes[0].boundary);
}

TEST(Pipeline, GrowthModePropagates) {
  const auto pts = instance(7);
  cbtc_params cont;
  cont.mode = growth_mode::continuous;
  const topology_result t = build_topology(pts, pm, cont, optimization_set::none());
  EXPECT_EQ(t.growth.params.mode, growth_mode::continuous);
  // Continuous basic graphs are sparser than discrete ones (no
  // doubling overshoot).
  cbtc_params disc;
  const topology_result td = build_topology(pts, pm, disc, optimization_set::none());
  EXPECT_LE(t.topology.num_edges(), td.topology.num_edges());
}

}  // namespace
}  // namespace cbtc::algo
