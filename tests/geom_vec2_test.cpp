#include "geom/vec2.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "geom/angle.h"

namespace cbtc::geom {
namespace {

TEST(Vec2, DefaultIsZero) {
  constexpr vec2 v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
}

TEST(Vec2, Arithmetic) {
  constexpr vec2 a{1.0, 2.0};
  constexpr vec2 b{3.0, -4.0};
  EXPECT_EQ(a + b, vec2(4.0, -2.0));
  EXPECT_EQ(a - b, vec2(-2.0, 6.0));
  EXPECT_EQ(a * 2.0, vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, vec2(2.0, 4.0));
  EXPECT_EQ(b / 2.0, vec2(1.5, -2.0));
  EXPECT_EQ(-a, vec2(-1.0, -2.0));
}

TEST(Vec2, CompoundAssignment) {
  vec2 v{1.0, 1.0};
  v += {2.0, 3.0};
  EXPECT_EQ(v, vec2(3.0, 4.0));
  v -= {1.0, 1.0};
  EXPECT_EQ(v, vec2(2.0, 3.0));
  v *= 2.0;
  EXPECT_EQ(v, vec2(4.0, 6.0));
  v /= 4.0;
  EXPECT_EQ(v, vec2(1.0, 1.5));
}

TEST(Vec2, DotAndCross) {
  constexpr vec2 a{1.0, 0.0};
  constexpr vec2 b{0.0, 1.0};
  EXPECT_EQ(a.dot(b), 0.0);
  EXPECT_EQ(a.cross(b), 1.0);
  EXPECT_EQ(b.cross(a), -1.0);
  EXPECT_EQ(vec2(2.0, 3.0).dot(vec2(4.0, 5.0)), 23.0);
}

TEST(Vec2, Norms) {
  const vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm_sq(), 25.0);
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  const vec2 u = v.unit();
  EXPECT_NEAR(u.norm(), 1.0, 1e-12);
  EXPECT_NEAR(u.x, 0.6, 1e-12);
}

TEST(Vec2, Distance) {
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq({1.0, 1.0}, {4.0, 5.0}), 25.0);
}

TEST(Vec2, RotatedQuarterTurn) {
  const vec2 v = vec2{1.0, 0.0}.rotated(pi / 2.0);
  EXPECT_NEAR(v.x, 0.0, 1e-12);
  EXPECT_NEAR(v.y, 1.0, 1e-12);
}

TEST(Vec2, RotationPreservesNorm) {
  const vec2 v{2.5, -1.5};
  for (double theta : {0.1, 1.0, 2.0, 4.0, 6.0}) {
    EXPECT_NEAR(v.rotated(theta).norm(), v.norm(), 1e-12);
  }
}

TEST(Vec2, BearingQuadrants) {
  EXPECT_NEAR(vec2(1.0, 0.0).bearing(), 0.0, 1e-12);
  EXPECT_NEAR(vec2(0.0, 1.0).bearing(), pi / 2.0, 1e-12);
  EXPECT_NEAR(vec2(-1.0, 0.0).bearing(), pi, 1e-12);
  EXPECT_NEAR(vec2(0.0, -1.0).bearing(), 3.0 * pi / 2.0, 1e-12);
}

TEST(Vec2, BearingIsNormalized) {
  for (double theta = 0.05; theta < two_pi; theta += 0.37) {
    const vec2 v = from_bearing(theta);
    EXPECT_NEAR(v.bearing(), theta, 1e-9);
  }
}

TEST(Vec2, PolarPlacesAtDistanceAndBearing) {
  const vec2 origin{10.0, 20.0};
  const vec2 p = polar(origin, 5.0, pi / 3.0);
  EXPECT_NEAR(distance(origin, p), 5.0, 1e-12);
  EXPECT_NEAR((p - origin).bearing(), pi / 3.0, 1e-12);
}

TEST(Vec2, StreamOutput) {
  std::ostringstream os;
  os << vec2{1.5, -2.0};
  EXPECT_EQ(os.str(), "(1.5, -2)");
}

}  // namespace
}  // namespace cbtc::geom
