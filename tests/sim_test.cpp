#include <gtest/gtest.h>

#include <any>
#include <set>
#include <string>
#include <vector>

#include "geom/angle.h"

#include "radio/channel.h"
#include "radio/power_model.h"
#include "sim/failure.h"
#include "sim/medium.h"
#include "sim/mobility.h"
#include "sim/simulator.h"

namespace cbtc::sim {
namespace {

// ----------------------------------------------------------- simulator

TEST(Simulator, RunsEventsInTimeOrder) {
  simulator s;
  std::vector<int> order;
  s.schedule_in(3.0, [&] { order.push_back(3); });
  s.schedule_in(1.0, [&] { order.push_back(1); });
  s.schedule_in(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
}

TEST(Simulator, FifoAtEqualTimes) {
  simulator s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, EventsCanScheduleEvents) {
  simulator s;
  int fired = 0;
  s.schedule_in(1.0, [&] {
    ++fired;
    s.schedule_in(1.0, [&] { ++fired; });
  });
  s.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(s.now(), 2.0);
}

TEST(Simulator, PastSchedulingClampsToNow) {
  simulator s;
  s.schedule_in(5.0, [&] {
    s.schedule_at(1.0, [] {});  // in the past: runs "now"
  });
  s.run();
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
  simulator s;
  int fired = 0;
  s.schedule_in(1.0, [&] { ++fired; });
  s.schedule_in(10.0, [&] { ++fired; });
  EXPECT_EQ(s.run_until(5.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, MaxEventsCap) {
  simulator s;
  // A self-perpetuating event chain.
  std::function<void()> tick = [&] { s.schedule_in(1.0, tick); };
  s.schedule_in(1.0, tick);
  EXPECT_EQ(s.run(100), 100u);
  EXPECT_FALSE(s.idle());
}

// -------------------------------------------------------------- medium

struct test_net {
  simulator sim;
  medium med;
  std::vector<std::vector<std::pair<rx_info, std::string>>> inbox;

  explicit test_net(std::vector<geom::vec2> positions,
                    radio::channel_params ch = {})
      : med(sim, radio::power_model(2.0, 500.0), radio::channel(ch, 1)) {
    inbox.resize(positions.size());
    for (std::size_t i = 0; i < positions.size(); ++i) {
      med.add_node(positions[i], [this, i](const rx_info& rx, const std::any& payload) {
        inbox[i].push_back({rx, std::any_cast<std::string>(payload)});
      });
    }
  }
};

TEST(Medium, BroadcastReachesOnlyNodesInRange) {
  test_net net({{0, 0}, {100, 0}, {300, 0}});
  net.med.broadcast(0, net.med.power().required_power(150.0), std::string("hi"));
  net.sim.run();
  EXPECT_EQ(net.inbox[1].size(), 1u);
  EXPECT_TRUE(net.inbox[2].empty());
  EXPECT_TRUE(net.inbox[0].empty());  // no self-delivery
  EXPECT_EQ(net.inbox[1][0].second, "hi");
}

TEST(Medium, BroadcastAtExactRangeDelivered) {
  test_net net({{0, 0}, {150, 0}});
  net.med.broadcast(0, net.med.power().required_power(150.0), std::string("edge"));
  net.sim.run();
  EXPECT_EQ(net.inbox[1].size(), 1u);
}

TEST(Medium, RxInfoMetadata) {
  test_net net({{0, 0}, {100, 0}});
  const double p = net.med.power().required_power(200.0);
  net.med.broadcast(0, p, std::string("m"));
  net.sim.run();
  ASSERT_EQ(net.inbox[1].size(), 1u);
  const rx_info& rx = net.inbox[1][0].first;
  EXPECT_EQ(rx.sender, 0u);
  EXPECT_DOUBLE_EQ(rx.tx_power, p);
  // Receiver at (100,0) sees the sender toward bearing pi.
  EXPECT_NEAR(rx.direction, geom::pi, 1e-12);
  // Required-power estimate recovers p(100) = 10000.
  EXPECT_NEAR(net.med.power().estimate_required_power(rx.tx_power, rx.rx_power), 10000.0, 1e-6);
}

TEST(Medium, UnicastOnlyTarget) {
  test_net net({{0, 0}, {100, 0}, {100, 10}});
  net.med.unicast(0, 1, net.med.power().max_power(), std::string("u"));
  net.sim.run();
  EXPECT_EQ(net.inbox[1].size(), 1u);
  EXPECT_TRUE(net.inbox[2].empty());
}

TEST(Medium, UnicastOutOfRangeSilentlyLost) {
  test_net net({{0, 0}, {400, 0}});
  net.med.unicast(0, 1, net.med.power().required_power(100.0), std::string("far"));
  net.sim.run();
  EXPECT_TRUE(net.inbox[1].empty());
}

TEST(Medium, CrashedNodesNeitherSendNorReceive) {
  test_net net({{0, 0}, {100, 0}});
  net.med.crash(1);
  net.med.broadcast(0, net.med.power().max_power(), std::string("a"));
  net.sim.run();
  EXPECT_TRUE(net.inbox[1].empty());

  net.med.crash(0);
  net.med.broadcast(0, net.med.power().max_power(), std::string("b"));
  net.sim.run();
  EXPECT_TRUE(net.inbox[1].empty());

  net.med.restart(0);
  net.med.restart(1);
  net.med.broadcast(0, net.med.power().max_power(), std::string("c"));
  net.sim.run();
  EXPECT_EQ(net.inbox[1].size(), 1u);
}

TEST(Medium, CrashWhileInFlightDropsDelivery) {
  test_net net({{0, 0}, {100, 0}});
  net.med.broadcast(0, net.med.power().max_power(), std::string("x"));
  // Crash the receiver before the (base_delay) delivery fires.
  net.med.crash(1);
  net.sim.run();
  EXPECT_TRUE(net.inbox[1].empty());
}

TEST(Medium, StatsCountTraffic) {
  test_net net({{0, 0}, {100, 0}, {200, 0}});
  net.med.broadcast(0, net.med.power().max_power(), std::string("a"));
  net.med.unicast(1, 2, net.med.power().max_power(), std::string("b"));
  net.sim.run();
  EXPECT_EQ(net.med.stats().broadcasts, 1u);
  EXPECT_EQ(net.med.stats().unicasts, 1u);
  EXPECT_EQ(net.med.stats().deliveries, 3u);  // bcast to 2 + unicast to 1
  EXPECT_GT(net.med.stats().tx_energy, 0.0);
}

TEST(Medium, LossyChannelDrops) {
  test_net net({{0, 0}, {10, 0}}, {.drop_prob = 1.0});
  net.med.broadcast(0, net.med.power().max_power(), std::string("gone"));
  net.sim.run();
  EXPECT_TRUE(net.inbox[1].empty());
  EXPECT_EQ(net.med.stats().drops, 1u);
}

TEST(Medium, DuplicatingChannelDeliversTwice) {
  test_net net({{0, 0}, {10, 0}}, {.dup_prob = 1.0});
  net.med.broadcast(0, net.med.power().max_power(), std::string("twice"));
  net.sim.run();
  EXPECT_EQ(net.inbox[1].size(), 2u);
}

// ------------------------------------------------------------ mobility

TEST(RandomWaypoint, KeepsNodesInRegionAndMovesThem) {
  simulator sim;
  medium med(sim, radio::power_model(2.0, 100.0));
  const geom::bbox region = geom::bbox::rect(200.0, 200.0);
  med.add_node({100.0, 100.0}, {});
  med.add_node({50.0, 50.0}, {});
  const geom::vec2 start0 = med.position(0);

  random_waypoint rw(med, {.region = region, .min_speed = 5.0, .max_speed = 10.0}, 42);
  rw.start(0.5, 50.0);
  sim.run();

  EXPECT_TRUE(region.contains(med.position(0)));
  EXPECT_TRUE(region.contains(med.position(1)));
  EXPECT_GT(geom::distance(start0, med.position(0)), 0.0);
}

TEST(BouncingMobility, ReflectsAtWalls) {
  simulator sim;
  medium med(sim, radio::power_model(2.0, 100.0));
  const geom::bbox region = geom::bbox::rect(100.0, 100.0);
  med.add_node({95.0, 50.0}, {});
  bouncing_mobility bm(med, region, {{10.0, 0.0}});
  bm.start(1.0, 10.0);
  sim.run();
  // Node hit the right wall and bounced back inside.
  EXPECT_TRUE(region.contains(med.position(0)));
  EXPECT_LT(med.position(0).x, 100.0);
}

// ------------------------------------------------------------- failure

TEST(FailureInjector, CrashAndRestartAtTimes) {
  simulator sim;
  medium med(sim, radio::power_model(2.0, 100.0));
  med.add_node({0, 0}, {});
  failure_injector inj(med);
  inj.crash_at(0, 5.0);
  inj.restart_at(0, 10.0);

  sim.run_until(6.0);
  EXPECT_FALSE(med.is_up(0));
  sim.run_until(11.0);
  EXPECT_TRUE(med.is_up(0));
}

TEST(FailureInjector, RandomCrashesDistinctVictims) {
  simulator sim;
  medium med(sim, radio::power_model(2.0, 100.0));
  for (int i = 0; i < 20; ++i) med.add_node({double(i), 0.0}, {});
  failure_injector inj(med, 7);
  const auto victims = inj.random_crashes(5, 0.0, 1.0);
  EXPECT_EQ(victims.size(), 5u);
  std::set<node_id> unique(victims.begin(), victims.end());
  EXPECT_EQ(unique.size(), 5u);
  sim.run();
  for (node_id v : victims) EXPECT_FALSE(med.is_up(v));
}

}  // namespace
}  // namespace cbtc::sim
