#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "graph/graph.h"

namespace cbtc::graph {
namespace {

struct fixture {
  std::vector<geom::vec2> pts{{0, 0}, {100, 0}, {50, 80}};
  undirected_graph g{3};
  geom::bbox region = geom::bbox::rect(100.0, 100.0);

  fixture() {
    g.add_edge(0, 1);
    g.add_edge(1, 2);
  }
};

TEST(WriteSvg, WellFormedDocument) {
  fixture f;
  std::ostringstream os;
  write_svg(os, f.g, f.pts, f.region);
  const std::string s = os.str();
  EXPECT_NE(s.find("<svg"), std::string::npos);
  EXPECT_NE(s.find("</svg>"), std::string::npos);
  // 2 edges and 3 nodes.
  std::size_t lines = 0, circles = 0, pos = 0;
  while ((pos = s.find("<line", pos)) != std::string::npos) { ++lines; pos += 5; }
  pos = 0;
  while ((pos = s.find("<circle", pos)) != std::string::npos) { ++circles; pos += 7; }
  EXPECT_EQ(lines, 2u);
  EXPECT_EQ(circles, 3u);
}

TEST(WriteSvg, TitleAndLabels) {
  fixture f;
  std::ostringstream os;
  svg_style style;
  style.title = "basic algorithm";
  style.node_labels = true;
  write_svg(os, f.g, f.pts, f.region, style);
  EXPECT_NE(os.str().find("basic algorithm"), std::string::npos);
  EXPECT_NE(os.str().find(">2<"), std::string::npos);  // node id label
}

TEST(WriteSvg, EmptyGraph) {
  std::ostringstream os;
  write_svg(os, undirected_graph(0), {}, geom::bbox::rect(10, 10));
  EXPECT_NE(os.str().find("</svg>"), std::string::npos);
}

TEST(WriteDot, ContainsNodesAndEdges) {
  fixture f;
  std::ostringstream os;
  write_dot(os, f.g, f.pts, "test_graph");
  const std::string s = os.str();
  EXPECT_NE(s.find("graph test_graph {"), std::string::npos);
  EXPECT_NE(s.find("n0 -- n1;"), std::string::npos);
  EXPECT_NE(s.find("n1 -- n2;"), std::string::npos);
  EXPECT_EQ(s.find("n0 -- n2;"), std::string::npos);
  EXPECT_NE(s.find("pos=\"100,0!\""), std::string::npos);
}

TEST(WriteEdgeCsv, RowsWithLengths) {
  fixture f;
  std::ostringstream os;
  write_edge_csv(os, f.g, f.pts);
  const std::string s = os.str();
  EXPECT_NE(s.find("u,v,length\n"), std::string::npos);
  EXPECT_NE(s.find("0,1,100\n"), std::string::npos);
}

TEST(SaveSvg, WritesFileAndThrowsOnBadPath) {
  fixture f;
  const std::string path = ::testing::TempDir() + "/cbtc_io_test.svg";
  save_svg(path, f.g, f.pts, f.region);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  EXPECT_THROW(save_svg("/nonexistent_dir_xyz/out.svg", f.g, f.pts, f.region), std::runtime_error);
}

}  // namespace
}  // namespace cbtc::graph
