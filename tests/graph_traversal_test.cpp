#include "graph/traversal.h"

#include <gtest/gtest.h>

#include <limits>
#include <random>

#include "graph/euclidean.h"
#include "graph/graph.h"

namespace cbtc::graph {
namespace {

undirected_graph path_graph(std::size_t n) {
  undirected_graph g(n);
  for (node_id i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

TEST(ConnectedComponents, SingletonNodes) {
  const component_labels c = connected_components(undirected_graph(4));
  EXPECT_EQ(c.count, 4u);
  EXPECT_FALSE(c.same_component(0, 1));
}

TEST(ConnectedComponents, PathIsOneComponent) {
  const component_labels c = connected_components(path_graph(10));
  EXPECT_EQ(c.count, 1u);
  EXPECT_TRUE(c.same_component(0, 9));
}

TEST(ConnectedComponents, TwoIslands) {
  undirected_graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  const component_labels c = connected_components(g);
  EXPECT_EQ(c.count, 3u);  // {0,1,2}, {3,4}, {5}
  EXPECT_TRUE(c.same_component(0, 2));
  EXPECT_TRUE(c.same_component(3, 4));
  EXPECT_FALSE(c.same_component(2, 3));
  EXPECT_FALSE(c.same_component(4, 5));
}

TEST(IsConnected, EmptyAndSingleton) {
  EXPECT_TRUE(is_connected(undirected_graph(0)));
  EXPECT_TRUE(is_connected(undirected_graph(1)));
  EXPECT_FALSE(is_connected(undirected_graph(2)));
}

TEST(Reachable, Basics) {
  undirected_graph g(4);
  g.add_edge(0, 1);
  EXPECT_TRUE(reachable(g, 0, 1));
  EXPECT_TRUE(reachable(g, 1, 0));
  EXPECT_FALSE(reachable(g, 0, 2));
  EXPECT_TRUE(reachable(g, 3, 3));
}

TEST(SameConnectivity, IdenticalPartitions) {
  undirected_graph a(4), b(4);
  a.add_edge(0, 1);
  a.add_edge(2, 3);
  // Different edges, same partition.
  b.add_edge(1, 0);
  b.add_edge(3, 2);
  EXPECT_TRUE(same_connectivity(a, b));
}

TEST(SameConnectivity, DifferentPartitionsSameCount) {
  // Both have 2 components but group nodes differently.
  undirected_graph a(4), b(4);
  a.add_edge(0, 1);
  a.add_edge(2, 3);
  b.add_edge(0, 2);
  b.add_edge(1, 3);
  EXPECT_FALSE(same_connectivity(a, b));
}

TEST(SameConnectivity, ExtraEdgeInsideComponentIsFine) {
  undirected_graph a(3), b(3);
  a.add_edge(0, 1);
  a.add_edge(1, 2);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);  // chord
  EXPECT_TRUE(same_connectivity(a, b));
}

TEST(SameConnectivity, SplitDetected) {
  undirected_graph a(3), b(3);
  a.add_edge(0, 1);
  a.add_edge(1, 2);
  b.add_edge(0, 1);
  EXPECT_FALSE(same_connectivity(a, b));
}

TEST(SameConnectivity, NodeCountMismatch) {
  EXPECT_FALSE(same_connectivity(undirected_graph(2), undirected_graph(3)));
}

TEST(BfsDistances, PathGraph) {
  const auto d = bfs_distances(path_graph(5), 0);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(d[i], i);
}

TEST(BfsDistances, UnreachableIsMax) {
  undirected_graph g(3);
  g.add_edge(0, 1);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[2], std::numeric_limits<std::uint32_t>::max());
}

TEST(BfsPath, FindsShortestPath) {
  // 0-1-2-3 plus shortcut 0-2.
  undirected_graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(0, 2);
  const auto p = bfs_path(g, 0, 3);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.front(), 0u);
  EXPECT_EQ(p[1], 2u);
  EXPECT_EQ(p.back(), 3u);
}

TEST(BfsPath, NoPathReturnsEmpty) {
  undirected_graph g(3);
  g.add_edge(0, 1);
  EXPECT_TRUE(bfs_path(g, 0, 2).empty());
}

TEST(BfsPath, TrivialSelfPath) {
  const auto p = bfs_path(path_graph(3), 1, 1);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], 1u);
}

TEST(BfsPath, EdgesExistAlongPath) {
  std::mt19937_64 rng(13);
  undirected_graph g(50);
  for (int i = 0; i < 120; ++i) {
    g.add_edge(static_cast<node_id>(rng() % 50), static_cast<node_id>(rng() % 50));
  }
  const auto p = bfs_path(g, 0, 42);
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    EXPECT_TRUE(g.has_edge(p[i], p[i + 1]));
  }
}

// ------------------------------------------------ euclidean G_R builder

TEST(MaxPowerGraph, MatchesBruteForce) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> u(0.0, 1000.0);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<geom::vec2> pts;
    for (int i = 0; i < 150; ++i) pts.push_back({u(rng), u(rng)});
    const double R = 150.0 + 100.0 * trial;
    EXPECT_EQ(build_max_power_graph(pts, R), build_max_power_graph_brute(pts, R));
  }
}

TEST(MaxPowerGraph, EdgeIffWithinRange) {
  const std::vector<geom::vec2> pts{{0, 0}, {100, 0}, {250, 0}};
  const auto g = build_max_power_graph(pts, 150.0);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(MaxPowerGraph, ExactRangeBoundaryIncluded) {
  const std::vector<geom::vec2> pts{{0, 0}, {150, 0}};
  EXPECT_TRUE(build_max_power_graph(pts, 150.0).has_edge(0, 1));
}

TEST(MaxPowerGraph, EmptyAndDegenerate) {
  EXPECT_EQ(build_max_power_graph({}, 100.0).num_nodes(), 0u);
  const std::vector<geom::vec2> pts{{0, 0}, {1, 1}};
  EXPECT_EQ(build_max_power_graph(pts, 0.0).num_edges(), 0u);
}

TEST(EdgeLength, MatchesDistance) {
  const std::vector<geom::vec2> pts{{0, 0}, {3, 4}};
  EXPECT_DOUBLE_EQ(edge_length(pts, 0, 1), 5.0);
}

}  // namespace
}  // namespace cbtc::graph
