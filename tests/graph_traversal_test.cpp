#include "graph/traversal.h"

#include <gtest/gtest.h>

#include <limits>
#include <random>
#include <vector>

#include "graph/euclidean.h"
#include "graph/graph.h"
#include "util/parallel.h"

namespace cbtc::graph {
namespace {

undirected_graph path_graph(std::size_t n) {
  undirected_graph g(n);
  for (node_id i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

TEST(ConnectedComponents, SingletonNodes) {
  const component_labels c = connected_components(undirected_graph(4));
  EXPECT_EQ(c.count, 4u);
  EXPECT_FALSE(c.same_component(0, 1));
}

TEST(ConnectedComponents, PathIsOneComponent) {
  const component_labels c = connected_components(path_graph(10));
  EXPECT_EQ(c.count, 1u);
  EXPECT_TRUE(c.same_component(0, 9));
}

TEST(ConnectedComponents, TwoIslands) {
  undirected_graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  const component_labels c = connected_components(g);
  EXPECT_EQ(c.count, 3u);  // {0,1,2}, {3,4}, {5}
  EXPECT_TRUE(c.same_component(0, 2));
  EXPECT_TRUE(c.same_component(3, 4));
  EXPECT_FALSE(c.same_component(2, 3));
  EXPECT_FALSE(c.same_component(4, 5));
}

TEST(IsConnected, EmptyAndSingleton) {
  EXPECT_TRUE(is_connected(undirected_graph(0)));
  EXPECT_TRUE(is_connected(undirected_graph(1)));
  EXPECT_FALSE(is_connected(undirected_graph(2)));
}

TEST(Reachable, Basics) {
  undirected_graph g(4);
  g.add_edge(0, 1);
  EXPECT_TRUE(reachable(g, 0, 1));
  EXPECT_TRUE(reachable(g, 1, 0));
  EXPECT_FALSE(reachable(g, 0, 2));
  EXPECT_TRUE(reachable(g, 3, 3));
}

TEST(SameConnectivity, IdenticalPartitions) {
  undirected_graph a(4), b(4);
  a.add_edge(0, 1);
  a.add_edge(2, 3);
  // Different edges, same partition.
  b.add_edge(1, 0);
  b.add_edge(3, 2);
  EXPECT_TRUE(same_connectivity(a, b));
}

TEST(SameConnectivity, DifferentPartitionsSameCount) {
  // Both have 2 components but group nodes differently.
  undirected_graph a(4), b(4);
  a.add_edge(0, 1);
  a.add_edge(2, 3);
  b.add_edge(0, 2);
  b.add_edge(1, 3);
  EXPECT_FALSE(same_connectivity(a, b));
}

TEST(SameConnectivity, ExtraEdgeInsideComponentIsFine) {
  undirected_graph a(3), b(3);
  a.add_edge(0, 1);
  a.add_edge(1, 2);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);  // chord
  EXPECT_TRUE(same_connectivity(a, b));
}

TEST(SameConnectivity, SplitDetected) {
  undirected_graph a(3), b(3);
  a.add_edge(0, 1);
  a.add_edge(1, 2);
  b.add_edge(0, 1);
  EXPECT_FALSE(same_connectivity(a, b));
}

TEST(SameConnectivity, NodeCountMismatch) {
  EXPECT_FALSE(same_connectivity(undirected_graph(2), undirected_graph(3)));
}

/// The pre-union-find implementation, kept verbatim as the reference:
/// BFS labels on both graphs, then a consistent label bijection.
bool same_connectivity_bfs(const undirected_graph& a, const undirected_graph& b) {
  if (a.num_nodes() != b.num_nodes()) return false;
  const component_labels ca = connected_components(a);
  const component_labels cb = connected_components(b);
  if (ca.count != cb.count) return false;
  std::vector<node_id> a_to_b(ca.count, invalid_node);
  std::vector<node_id> b_to_a(cb.count, invalid_node);
  for (node_id u = 0; u < a.num_nodes(); ++u) {
    const node_id la = ca.label[u];
    const node_id lb = cb.label[u];
    if (a_to_b[la] == invalid_node) a_to_b[la] = lb;
    if (b_to_a[lb] == invalid_node) b_to_a[lb] = la;
    if (a_to_b[la] != lb || b_to_a[lb] != la) return false;
  }
  return true;
}

undirected_graph random_graph(std::size_t n, double p, std::mt19937_64& rng) {
  undirected_graph g(n);
  std::bernoulli_distribution edge(p);
  for (node_id u = 0; u < n; ++u) {
    for (node_id v = u + 1; v < n; ++v) {
      if (edge(rng)) g.add_edge(u, v);
    }
  }
  return g;
}

TEST(SameConnectivity, UnionFindAgreesWithBfsOnRandomGraphs) {
  std::mt19937_64 rng(20260729);
  util::thread_pool pool(4);
  connectivity_scratch scratch;
  std::uniform_int_distribution<std::size_t> size(1, 60);
  std::uniform_real_distribution<double> density(0.0, 0.12);
  std::size_t agreements_true = 0;
  std::size_t agreements_false = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t n = size(rng);
    const undirected_graph a = random_graph(n, density(rng), rng);
    // Mix of cases: an independent random graph, a copy with one edge
    // toggled, and an exact copy — all compared against the reference.
    undirected_graph b = trial % 3 == 0 ? random_graph(n, density(rng), rng) : a;
    if (trial % 3 == 1 && n >= 2) {
      std::uniform_int_distribution<node_id> node(0, static_cast<node_id>(n - 1));
      const node_id u = node(rng);
      const node_id v = node(rng);
      if (u != v && !b.remove_edge(u, v)) b.add_edge(u, v);
    }
    const bool expected = same_connectivity_bfs(a, b);
    EXPECT_EQ(expected, same_connectivity(a, b)) << "trial " << trial;
    EXPECT_EQ(expected, same_connectivity(a, b, scratch)) << "trial " << trial;
    EXPECT_EQ(expected, same_connectivity(a, b, pool, scratch)) << "trial " << trial;
    ++(expected ? agreements_true : agreements_false);
  }
  // The trial mix must exercise both verdicts for the comparison to
  // mean anything.
  EXPECT_GT(agreements_true, 0u);
  EXPECT_GT(agreements_false, 0u);
}

TEST(SameConnectivity, ScratchIsReusableAcrossDifferentSizes) {
  connectivity_scratch scratch;
  const undirected_graph big = path_graph(50);
  EXPECT_TRUE(same_connectivity(big, big, scratch));
  const undirected_graph small = path_graph(3);
  EXPECT_TRUE(same_connectivity(small, small, scratch));
  undirected_graph split = path_graph(3);
  split.remove_edge(1, 2);
  EXPECT_FALSE(same_connectivity(small, split, scratch));
}

TEST(BfsDistances, PathGraph) {
  const auto d = bfs_distances(path_graph(5), 0);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(d[i], i);
}

TEST(BfsDistances, UnreachableIsMax) {
  undirected_graph g(3);
  g.add_edge(0, 1);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[2], std::numeric_limits<std::uint32_t>::max());
}

TEST(BfsPath, FindsShortestPath) {
  // 0-1-2-3 plus shortcut 0-2.
  undirected_graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(0, 2);
  const auto p = bfs_path(g, 0, 3);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.front(), 0u);
  EXPECT_EQ(p[1], 2u);
  EXPECT_EQ(p.back(), 3u);
}

TEST(BfsPath, NoPathReturnsEmpty) {
  undirected_graph g(3);
  g.add_edge(0, 1);
  EXPECT_TRUE(bfs_path(g, 0, 2).empty());
}

TEST(BfsPath, TrivialSelfPath) {
  const auto p = bfs_path(path_graph(3), 1, 1);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], 1u);
}

TEST(BfsPath, EdgesExistAlongPath) {
  std::mt19937_64 rng(13);
  undirected_graph g(50);
  for (int i = 0; i < 120; ++i) {
    g.add_edge(static_cast<node_id>(rng() % 50), static_cast<node_id>(rng() % 50));
  }
  const auto p = bfs_path(g, 0, 42);
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    EXPECT_TRUE(g.has_edge(p[i], p[i + 1]));
  }
}

// ------------------------------------------------ euclidean G_R builder

TEST(MaxPowerGraph, MatchesBruteForce) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> u(0.0, 1000.0);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<geom::vec2> pts;
    for (int i = 0; i < 150; ++i) pts.push_back({u(rng), u(rng)});
    const double R = 150.0 + 100.0 * trial;
    EXPECT_EQ(build_max_power_graph(pts, R), build_max_power_graph_brute(pts, R));
  }
}

TEST(MaxPowerGraph, EdgeIffWithinRange) {
  const std::vector<geom::vec2> pts{{0, 0}, {100, 0}, {250, 0}};
  const auto g = build_max_power_graph(pts, 150.0);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(MaxPowerGraph, ExactRangeBoundaryIncluded) {
  const std::vector<geom::vec2> pts{{0, 0}, {150, 0}};
  EXPECT_TRUE(build_max_power_graph(pts, 150.0).has_edge(0, 1));
}

TEST(MaxPowerGraph, EmptyAndDegenerate) {
  EXPECT_EQ(build_max_power_graph({}, 100.0).num_nodes(), 0u);
  const std::vector<geom::vec2> pts{{0, 0}, {1, 1}};
  EXPECT_EQ(build_max_power_graph(pts, 0.0).num_edges(), 0u);
}

TEST(EdgeLength, MatchesDistance) {
  const std::vector<geom::vec2> pts{{0, 0}, {3, 4}};
  EXPECT_DOUBLE_EQ(edge_length(pts, 0, 1), 5.0);
}

}  // namespace
}  // namespace cbtc::graph
