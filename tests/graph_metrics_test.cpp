#include "graph/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/euclidean.h"
#include "graph/graph.h"
#include "graph/shortest_path.h"

namespace cbtc::graph {
namespace {

TEST(AverageDegree, HandshakeLemma) {
  undirected_graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  EXPECT_DOUBLE_EQ(average_degree(g), 2.0 * 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(average_degree(undirected_graph(0)), 0.0);
}

TEST(NodeRadius, FarthestNeighbor) {
  const std::vector<geom::vec2> pts{{0, 0}, {100, 0}, {0, 300}};
  undirected_graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  EXPECT_DOUBLE_EQ(node_radius(g, pts, 0), 300.0);
  EXPECT_DOUBLE_EQ(node_radius(g, pts, 1), 100.0);
  EXPECT_DOUBLE_EQ(node_radius(g, pts, 2), 300.0);
}

TEST(NodeRadius, IsolatedUsesFallback) {
  const std::vector<geom::vec2> pts{{0, 0}, {10, 0}};
  const undirected_graph g(2);
  EXPECT_DOUBLE_EQ(node_radius(g, pts, 0, 500.0), 500.0);
  EXPECT_DOUBLE_EQ(node_radius(g, pts, 0), 0.0);
}

TEST(AverageRadius, MeanOfNodeRadii) {
  const std::vector<geom::vec2> pts{{0, 0}, {100, 0}, {0, 300}};
  undirected_graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  EXPECT_DOUBLE_EQ(average_radius(g, pts), (300.0 + 100.0 + 300.0) / 3.0);
}

TEST(MaxRadius, LargestAnywhere) {
  const std::vector<geom::vec2> pts{{0, 0}, {100, 0}, {0, 300}};
  undirected_graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  EXPECT_DOUBLE_EQ(max_radius(g, pts), 300.0);
}

TEST(DegreeHistogram, CountsPerDegree) {
  undirected_graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  const auto h = degree_histogram(g);
  ASSERT_EQ(h.size(), 4u);  // max degree 3
  EXPECT_EQ(h[0], 0u);
  EXPECT_EQ(h[1], 3u);
  EXPECT_EQ(h[3], 1u);
}

TEST(AveragePower, QuadraticCost) {
  const std::vector<geom::vec2> pts{{0, 0}, {10, 0}};
  undirected_graph g(2);
  g.add_edge(0, 1);
  EXPECT_DOUBLE_EQ(average_power(g, pts, 2.0), 100.0);
  EXPECT_DOUBLE_EQ(average_power(g, pts, 3.0), 1000.0);
}

// ----------------------------------------------------------- dijkstra

TEST(Dijkstra, PowerCostPrefersRelaying) {
  // Quadratic cost makes two 100-hops (2 * 100^2) cheaper than one
  // 200-hop (200^2) — the paper's motivation for topology control.
  const std::vector<geom::vec2> pts{{0, 0}, {100, 0}, {200, 0}};
  undirected_graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  const auto d = dijkstra(g, 0, power_cost(pts, 2.0));
  EXPECT_DOUBLE_EQ(d[2], 2.0 * 100.0 * 100.0);
}

TEST(Dijkstra, EuclideanCostPrefersDirect) {
  const std::vector<geom::vec2> pts{{0, 0}, {100, 50}, {200, 0}};
  undirected_graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  const auto d = dijkstra(g, 0, euclidean_cost(pts));
  EXPECT_DOUBLE_EQ(d[2], 200.0);
}

TEST(Dijkstra, UnreachableIsInfinite) {
  undirected_graph g(3);
  g.add_edge(0, 1);
  const std::vector<geom::vec2> pts{{0, 0}, {1, 0}, {2, 0}};
  const auto d = dijkstra(g, 0, euclidean_cost(pts));
  EXPECT_TRUE(std::isinf(d[2]));
  EXPECT_DOUBLE_EQ(d[0], 0.0);
}

// ------------------------------------------------------------ stretch

TEST(Stretch, IdenticalGraphsHaveUnitStretch) {
  const std::vector<geom::vec2> pts{{0, 0}, {100, 0}, {200, 0}, {300, 0}};
  const auto g = build_max_power_graph(pts, 150.0);
  const auto s = power_stretch(g, g, pts, 2.0, pts.size());
  EXPECT_DOUBLE_EQ(s.mean, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1.0);
  EXPECT_GT(s.pairs, 0u);
}

TEST(Stretch, RemovingShortcutIncreasesHops) {
  const std::vector<geom::vec2> pts{{0, 0}, {100, 0}, {200, 0}};
  undirected_graph dense(3);
  dense.add_edge(0, 1);
  dense.add_edge(1, 2);
  dense.add_edge(0, 2);
  undirected_graph sparse(3);
  sparse.add_edge(0, 1);
  sparse.add_edge(1, 2);
  const auto s = hop_stretch(sparse, dense, 3);
  EXPECT_GT(s.max, 1.0);
  EXPECT_GE(s.mean, 1.0);
}

TEST(Stretch, PowerStretchCanBeBelowOneNever) {
  // The sparse graph is a subgraph, so its optimal routes can never be
  // cheaper; stretch >= 1 always.
  const std::vector<geom::vec2> pts{{0, 0}, {80, 10}, {160, -10}, {240, 0}, {120, 90}};
  const auto dense = build_max_power_graph(pts, 200.0);
  undirected_graph sparse(5);
  sparse.add_edge(0, 1);
  sparse.add_edge(1, 2);
  sparse.add_edge(2, 3);
  sparse.add_edge(1, 4);
  const auto s = power_stretch(sparse, dense, pts, 2.0, 5);
  EXPECT_GE(s.mean, 1.0 - 1e-12);
  EXPECT_GE(s.max, s.mean);
}

TEST(Stretch, EmptyGraphsYieldDefaults) {
  const std::vector<geom::vec2> pts;
  const auto s = power_stretch(undirected_graph(0), undirected_graph(0), pts, 2.0);
  EXPECT_DOUBLE_EQ(s.mean, 1.0);
  EXPECT_EQ(s.pairs, 0u);
}

}  // namespace
}  // namespace cbtc::graph
