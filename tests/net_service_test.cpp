// The dispatcher's determinism contract, exercised over real loopback
// sockets: dispatched run_batch must be bitwise identical to
// in-process run_batch for 1, 2, and 3 shards — including when a
// shard is killed mid-batch (connection severed after a few partials)
// and when a shard duplicates every partial. Failures may only move
// blocks between shards, never change results.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/dispatch.h"
#include "api/engine.h"
#include "api/registry.h"
#include "net/service.h"

namespace cbtc {
namespace {

using api::batch_report;
using api::dispatch_config;
using api::dynamic_batch_report;
using api::engine;
using api::lifetime_batch_report;
using api::shard_dispatcher;

/// Exact equality of summary internals.
void expect_same(const exp::summary& a, const exp::summary& b, const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.sum(), b.sum()) << what;
  EXPECT_EQ(a.sum_squares(), b.sum_squares()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
}

void expect_same(const batch_report& a, const batch_report& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.connectivity_failures, b.connectivity_failures);
  expect_same(a.edges, b.edges, "edges");
  expect_same(a.degree, b.degree, "degree");
  expect_same(a.radius, b.radius, "radius");
  expect_same(a.max_radius, b.max_radius, "max_radius");
  expect_same(a.tx_power, b.tx_power, "tx_power");
  expect_same(a.boundary, b.boundary, "boundary");
  expect_same(a.power_stretch, b.power_stretch, "power_stretch");
  expect_same(a.hop_stretch, b.hop_stretch, "hop_stretch");
  expect_same(a.interference, b.interference, "interference");
  expect_same(a.cut_vertices, b.cut_vertices, "cut_vertices");
  expect_same(a.removed_edges, b.removed_edges, "removed_edges");
}

/// A fleet of in-process servers, each on its own ephemeral loopback
/// port with its own serving thread.
class shard_fleet {
 public:
  explicit shard_fleet(const std::vector<net::serve_config>& configs) {
    for (net::serve_config cfg : configs) {
      cfg.bind_address = "127.0.0.1";
      cfg.port = 0;
      servers_.push_back(std::make_unique<net::scenario_server>(cfg));
      endpoints_.push_back({"127.0.0.1", servers_.back()->port()});
      threads_.emplace_back([s = servers_.back().get()] { s->run(); });
    }
  }

  ~shard_fleet() {
    for (auto& s : servers_) s->stop();
    for (auto& t : threads_) t.join();
  }

  [[nodiscard]] const std::vector<api::endpoint>& endpoints() const { return endpoints_; }

 private:
  std::vector<std::unique_ptr<net::scenario_server>> servers_;
  std::vector<std::thread> threads_;
  std::vector<api::endpoint> endpoints_;
};

/// Small but non-trivial scenario: several blocks, every metric on.
api::scenario_spec test_spec() {
  api::scenario_spec spec = *api::find_scenario("paper_table1");
  spec.deploy.nodes = 40;
  spec.metrics.stretch_samples = 32;
  return spec;
}

dispatch_config config_for(const shard_fleet& fleet) {
  dispatch_config cfg;
  cfg.endpoints = fleet.endpoints();
  cfg.shard_threads = 2;
  cfg.connect_timeout_ms = 2000;
  cfg.io_timeout_ms = 20000;
  cfg.backoff_base_ms = 10;
  // Small requests so multi-shard runs actually interleave and a
  // killed connection leaves work to re-dispatch.
  cfg.blocks_per_request = 1;
  return cfg;
}

TEST(ShardDispatchTest, MatchesInProcessForOneTwoAndThreeShards) {
  const api::scenario_spec spec = test_spec();
  const api::seed_range seeds{0, 72};  // 5 blocks (72 = 4.5 * 16)
  const engine eng;
  const batch_report reference = eng.run_batch(spec, seeds, 2);

  for (const std::size_t shards : {1u, 2u, 3u}) {
    shard_fleet fleet{std::vector<net::serve_config>(shards)};
    shard_dispatcher dispatcher(config_for(fleet));
    const batch_report dispatched = dispatcher.run_batch(spec, seeds);
    expect_same(reference, dispatched);
    EXPECT_EQ(dispatcher.stats().blocks, 5u) << shards << " shards";
    EXPECT_EQ(dispatcher.stats().connection_failures, 0u) << shards << " shards";
  }
}

TEST(ShardDispatchTest, ShardKilledMidBatchDegradesThroughputNotResults) {
  const api::scenario_spec spec = test_spec();
  const api::seed_range seeds{0, 72};
  const engine eng;
  const batch_report reference = eng.run_batch(spec, seeds, 2);

  // Three shards; the first two connections (to whichever shards get
  // them) are severed after a single partial — no done frame, exactly
  // like a crash mid-request.
  net::serve_config faulty;
  faulty.drop_after_partials = 1;
  faulty.drop_connections = 2;
  shard_fleet fleet({faulty, net::serve_config{}, net::serve_config{}});

  dispatch_config cfg = config_for(fleet);
  cfg.blocks_per_request = 3;  // a kill strands multiple claimed blocks
  shard_dispatcher dispatcher(cfg);
  const batch_report dispatched = dispatcher.run_batch(spec, seeds);
  expect_same(reference, dispatched);
  // The retry path must actually have run.
  EXPECT_GE(dispatcher.stats().connection_failures, 1u);
  EXPECT_GE(dispatcher.stats().requeued_blocks, 1u);
}

TEST(ShardDispatchTest, DuplicatePartialsAreSuppressed) {
  const api::scenario_spec spec = test_spec();
  const api::seed_range seeds{0, 48};  // 3 blocks
  const engine eng;
  const batch_report reference = eng.run_batch(spec, seeds, 2);

  net::serve_config duplicating;
  duplicating.duplicate_partials = true;
  shard_fleet fleet({duplicating});
  shard_dispatcher dispatcher(config_for(fleet));
  const batch_report dispatched = dispatcher.run_batch(spec, seeds);
  expect_same(reference, dispatched);
  EXPECT_EQ(dispatcher.stats().duplicate_partials, 3u);
}

TEST(ShardDispatchTest, AllShardsDeadFailsWithBoundedRetries) {
  // Nothing listens on this port (a listener bound then destroyed).
  std::uint16_t dead_port = 0;
  {
    net::tcp_listener probe("127.0.0.1", 0);
    dead_port = probe.port();
  }
  dispatch_config cfg;
  cfg.endpoints = {{"127.0.0.1", dead_port}};
  cfg.connect_timeout_ms = 200;
  cfg.io_timeout_ms = 500;
  cfg.backoff_base_ms = 1;
  cfg.max_endpoint_failures = 2;
  shard_dispatcher dispatcher(cfg);
  EXPECT_THROW((void)dispatcher.run_batch(test_spec(), {0, 32}), std::runtime_error);
  EXPECT_GE(dispatcher.stats().connection_failures, 1u);
}

TEST(ShardDispatchTest, DynamicAndLifetimeBatchesMatchInProcess) {
  const api::dynamic_scenario dyn = *api::find_dynamic_scenario("mobile_churn");
  api::scenario_spec spec = dyn.scenario;
  spec.deploy.nodes = 30;
  api::sim_spec sim = dyn.sim;
  sim.horizon = std::min(sim.horizon, 40.0);
  const api::seed_range seeds{0, 20};  // 2 blocks

  const engine eng;
  shard_fleet fleet{std::vector<net::serve_config>(2)};
  shard_dispatcher dispatcher(config_for(fleet));

  const dynamic_batch_report ref_dyn = eng.run_batch(spec, sim, seeds, 2);
  const dynamic_batch_report got_dyn = dispatcher.run_batch(spec, sim, seeds);
  EXPECT_EQ(ref_dyn.runs, got_dyn.runs);
  EXPECT_EQ(ref_dyn.final_connectivity_failures, got_dyn.final_connectivity_failures);
  expect_same(ref_dyn.broadcasts, got_dyn.broadcasts, "broadcasts");
  expect_same(ref_dyn.joins, got_dyn.joins, "joins");
  expect_same(ref_dyn.repair_latency, got_dyn.repair_latency, "repair_latency");
  expect_same(ref_dyn.time_to_partition, got_dyn.time_to_partition, "time_to_partition");
  expect_same(ref_dyn.final_edges, got_dyn.final_edges, "final_edges");

  api::lifetime_spec life;
  life.battery_rounds = 20.0;
  life.flows = 10;
  life.max_rounds = 2000;
  const lifetime_batch_report ref_life = eng.run_batch(test_spec(), life, seeds, 2);
  const lifetime_batch_report got_life = dispatcher.run_batch(test_spec(), life, seeds);
  EXPECT_EQ(ref_life.runs, got_life.runs);
  expect_same(ref_life.first_death, got_life.first_death, "first_death");
  expect_same(ref_life.quarter_dead, got_life.quarter_dead, "quarter_dead");
  expect_same(ref_life.field_partition, got_life.field_partition, "field_partition");
}

TEST(ShardDispatchTest, EndpointParsing) {
  const api::endpoint ep = api::parse_endpoint("example.com:8080");
  EXPECT_EQ(ep.host, "example.com");
  EXPECT_EQ(ep.port, 8080);
  const auto list = api::parse_endpoint_list("a:1,b:2,c:3");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[1].host, "b");
  EXPECT_EQ(list[2].port, 3);
  EXPECT_THROW((void)api::parse_endpoint("no-port"), std::invalid_argument);
  EXPECT_THROW((void)api::parse_endpoint("host:"), std::invalid_argument);
  EXPECT_THROW((void)api::parse_endpoint("host:99999"), std::invalid_argument);
  EXPECT_THROW((void)api::parse_endpoint_list(""), std::invalid_argument);
}

}  // namespace
}  // namespace cbtc
