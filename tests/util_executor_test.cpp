// The process-wide executor: nested pools must compose through task
// submission (no per-pool thread spawns, no width x width explosion),
// results must be independent of every width combination, and
// exceptions must cross nesting levels. thread_pool is the only
// public surface — these tests drive the executor through it exactly
// the way the engine layers do.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "util/executor.h"
#include "util/parallel.h"

namespace cbtc::util {
namespace {

/// The deterministic nested computation used throughout: outer index i
/// fans an inner reduce over [0, inner_n) on its own pool. Mirrors the
/// engine's structure (batch seed-blocks outside, metric reduce
/// inside).
double nested_sum(unsigned outer_threads, unsigned inner_threads, std::size_t outer_n,
                  std::size_t inner_n) {
  thread_pool outer(outer_threads);
  std::vector<double> per_outer(outer_n, 0.0);
  outer.parallel_for_chunks(outer_n, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      thread_pool inner(inner_threads);
      per_outer[i] = inner.reduce<double>(
          inner_n, 0.0,
          [&](std::size_t a, std::size_t b) {
            double s = 0.0;
            for (std::size_t k = a; k < b; ++k) {
              s += 1.0 / static_cast<double>(i * inner_n + k + 1);
            }
            return s;
          },
          [](double& total, const double& part) { total += part; });
    }
  });
  double total = 0.0;
  for (const double v : per_outer) total += v;  // fixed order
  return total;
}

TEST(Executor, NestedPoolsProduceSerialResultForEveryWidthCombo) {
  const double reference = nested_sum(1, 1, 12, 5000);
  for (const unsigned outer : {1u, 2u, 4u, 8u}) {
    for (const unsigned inner : {1u, 3u, 8u}) {
      EXPECT_EQ(reference, nested_sum(outer, inner, 12, 5000))
          << "outer=" << outer << " inner=" << inner;
    }
  }
}

TEST(Executor, OversubscribedNestingCompletesAndSpawnsNoThreadExplosion) {
  // 8 x 8 on any machine: the old per-pool spawning would have stood
  // up 8 * 8 threads; the executor grows to at most the largest single
  // width ever requested (minus the caller), here 8 - 1 = 7 — plus
  // whatever earlier tests in this process already requested, which is
  // also <= 8 wide. Never anything like 64.
  const double reference = nested_sum(1, 1, 16, 2000);
  EXPECT_EQ(reference, nested_sum(8, 8, 16, 2000));
  EXPECT_LE(executor::instance().workers(), 7u);
}

TEST(Executor, ThreeLevelNestingWorks) {
  thread_pool outer(4);
  std::atomic<std::size_t> hits{0};
  outer.parallel_for_chunks(4, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      thread_pool mid(4);
      mid.parallel_for_chunks(4, 1, [&](std::size_t mlo, std::size_t mhi) {
        for (std::size_t j = mlo; j < mhi; ++j) {
          thread_pool leaf(2);
          leaf.parallel_for(64, [&](std::size_t) { hits.fetch_add(1); });
        }
      });
    }
  });
  EXPECT_EQ(hits.load(), 4u * 4u * 64u);
}

TEST(Executor, ExceptionInNestedBodyPropagatesToOuterCaller) {
  thread_pool outer(4);
  EXPECT_THROW(outer.parallel_for_chunks(8, 1,
                                         [&](std::size_t lo, std::size_t) {
                                           thread_pool inner(4);
                                           inner.parallel_for(100, [&](std::size_t k) {
                                             if (lo == 3 && k == 57) {
                                               throw std::runtime_error("nested boom");
                                             }
                                           });
                                         }),
               std::runtime_error);
  // Both levels stay usable afterwards.
  std::atomic<int> count{0};
  outer.parallel_for(100, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(Executor, ManyConcurrentPoolsShareTheSingleton) {
  // Two sibling pools inside one outer loop: chunks of both interleave
  // on the same workers; every index is still covered exactly once.
  thread_pool outer(2);
  std::vector<std::atomic<int>> hits(20000);
  outer.parallel_for_chunks(2, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t half = lo; half < hi; ++half) {
      thread_pool inner(4);
      const std::size_t base = half * 10000;
      inner.parallel_for(10000, [&](std::size_t i) { hits[base + i].fetch_add(1); });
    }
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

}  // namespace
}  // namespace cbtc::util
