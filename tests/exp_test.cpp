#include <gtest/gtest.h>

#include <sstream>

#include "exp/stats.h"
#include "exp/table.h"
#include "exp/workload.h"

namespace cbtc::exp {
namespace {

TEST(Summary, EmptyDefaults) {
  const summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, MeanMinMax) {
  summary s;
  for (double x : {2.0, 4.0, 6.0}) s.add(x);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(Summary, SampleStddev) {
  summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // known sample sd
}

TEST(Summary, SingleValue) {
  summary s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(Summary, NegativeValues) {
  summary s;
  s.add(-5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
}

TEST(Percentile, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99.0), 7.0);
}

TEST(Table, AlignsColumns) {
  table t({"name", "value"});
  t.add_row({"alpha", "0.5"});
  t.add_row({"very-long-name", "12345.678"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("very-long-name"), std::string::npos);
  EXPECT_NE(s.find("| name"), std::string::npos);
  // Header separator row present.
  EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(Table, ShortAndLongRowsHandled) {
  table t({"a", "b", "c"});
  t.add_row({"1"});                       // padded
  t.add_row({"1", "2", "3", "dropped"});  // truncated
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str().find("dropped"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(table::num(3.14159, 2), "3.14");
  EXPECT_EQ(table::num(436.82, 1), "436.8");
  EXPECT_EQ(table::num(25.6, 0), "26");
}

TEST(Workload, PaperDefaults) {
  const workload_params w = paper_workload();
  EXPECT_EQ(w.nodes, 100u);
  EXPECT_DOUBLE_EQ(w.region_side, 1500.0);
  EXPECT_DOUBLE_EQ(w.max_range, 500.0);
  EXPECT_EQ(w.networks, 100u);
}

TEST(Workload, NetworksAreDeterministicAndDistinct) {
  const workload_params w = paper_workload();
  EXPECT_EQ(network_positions(w, 3), network_positions(w, 3));
  EXPECT_NE(network_positions(w, 3), network_positions(w, 4));
  EXPECT_EQ(network_positions(w, 0).size(), 100u);
}

TEST(Workload, PowerModelMatches) {
  const radio::power_model pm = workload_power(paper_workload());
  EXPECT_DOUBLE_EQ(pm.max_range(), 500.0);
  EXPECT_DOUBLE_EQ(pm.exponent(), 2.0);
}

}  // namespace
}  // namespace cbtc::exp
