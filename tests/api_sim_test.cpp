// The dynamic-simulation layer of the cbtc::api façade: dynamic batch
// aggregates must be bitwise identical for any thread count (the same
// guarantee the static engine gives), a crashed node's neighborhood
// must repair itself within the NDP's failure-detection bound, and the
// streaming static reduction must agree with the reference reduce().
#include <gtest/gtest.h>

#include <algorithm>

#include "api/api.h"

namespace cbtc::api {
namespace {

/// Small-but-busy dynamic workload: 24 nodes under crashes, short
/// horizon so 16 seeds stay fast.
scenario_spec churn_scenario() {
  scenario_spec spec;
  spec.deploy = {.kind = deployment_kind::uniform, .nodes = 24, .region_side = 1000.0};
  spec.base_seed = 1234;
  spec.method = method_spec::protocol();
  spec.protocol.agent.round_timeout = 0.25;
  return spec;
}

sim_spec churn_sim() {
  sim_spec dyn;
  dyn.horizon = 30.0;
  dyn.settle = 8.0;
  dyn.sample_every = 2.0;
  dyn.beacons = {.interval = 1.0, .miss_limit = 3};
  dyn.failures = {.random_crashes = 3, .window_begin = 10.0, .window_end = 16.0};
  return dyn;
}

void expect_identical(const exp::summary& a, const exp::summary& b, const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;  // bitwise: no tolerance
  EXPECT_EQ(a.stddev(), b.stddev()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
}

TEST(ApiSim, DynamicBatchAggregatesAreThreadCountInvariant) {
  const scenario_spec spec = churn_scenario();
  const sim_spec dyn = churn_sim();
  const engine eng;

  const seed_range seeds{0, 16};
  const dynamic_batch_report serial = eng.run_batch(spec, dyn, seeds, 1);
  const dynamic_batch_report parallel = eng.run_batch(spec, dyn, seeds, 4);

  ASSERT_EQ(serial.runs, 16u);
  ASSERT_EQ(parallel.runs, 16u);
  EXPECT_EQ(serial.initial_connectivity_failures, parallel.initial_connectivity_failures);
  EXPECT_EQ(serial.final_connectivity_failures, parallel.final_connectivity_failures);
  EXPECT_EQ(serial.partitioned_runs, parallel.partitioned_runs);
  EXPECT_EQ(serial.unrepaired_disruptions, parallel.unrepaired_disruptions);
  expect_identical(serial.broadcasts, parallel.broadcasts, "broadcasts");
  expect_identical(serial.unicasts, parallel.unicasts, "unicasts");
  expect_identical(serial.deliveries, parallel.deliveries, "deliveries");
  expect_identical(serial.drops, parallel.drops, "drops");
  expect_identical(serial.tx_energy, parallel.tx_energy, "tx_energy");
  expect_identical(serial.joins, parallel.joins, "joins");
  expect_identical(serial.leaves, parallel.leaves, "leaves");
  expect_identical(serial.achanges, parallel.achanges, "achanges");
  expect_identical(serial.regrows, parallel.regrows, "regrows");
  expect_identical(serial.prunes, parallel.prunes, "prunes");
  expect_identical(serial.beacons, parallel.beacons, "beacons");
  expect_identical(serial.disruptions, parallel.disruptions, "disruptions");
  expect_identical(serial.repair_latency, parallel.repair_latency, "repair_latency");
  expect_identical(serial.repair_latency_max, parallel.repair_latency_max, "repair_latency_max");
  expect_identical(serial.time_to_partition, parallel.time_to_partition, "time_to_partition");
  expect_identical(serial.final_edges, parallel.final_edges, "final_edges");
  expect_identical(serial.final_degree, parallel.final_degree, "final_degree");
  expect_identical(serial.final_radius, parallel.final_radius, "final_radius");
  expect_identical(serial.live_nodes, parallel.live_nodes, "live_nodes");
}

/// The incremental closure mirror must be observationally invisible:
/// a run that maintains the agents' topology from table deltas and a
/// run that re-reads every neighbor table at each evaluation produce
/// the bitwise-identical dynamic_report — same samples, same exact
/// disruption windows, same final topology.
TEST(ApiSim, MirroredAgentTablesMatchFullCaptureBitwise) {
  const scenario_spec spec = churn_scenario();
  sim_spec dyn = churn_sim();
  // Add mobility on top of the crashes so joins/leaves/aChanges,
  // regrows, and shrink-back prunes all stream table deltas.
  dyn.mobility = {.kind = mobility_kind::random_waypoint,
                  .min_speed = 1.0,
                  .max_speed = 4.0,
                  .tick = 0.5,
                  .start = 9.0};
  const engine eng;

  for (const std::uint64_t seed : {0ull, 1ull, 2ull, 3ull}) {
    dyn.mirror_agent_tables = true;
    const dynamic_report mirrored = eng.run_dynamic(spec, dyn, seed);
    dyn.mirror_agent_tables = false;
    const dynamic_report full = eng.run_dynamic(spec, dyn, seed);
    SCOPED_TRACE(::testing::Message() << "seed " << seed);

    EXPECT_EQ(mirrored.final_topology, full.final_topology);
    EXPECT_EQ(mirrored.initial_connectivity_ok, full.initial_connectivity_ok);
    EXPECT_EQ(mirrored.final_connectivity_ok, full.final_connectivity_ok);
    EXPECT_EQ(mirrored.disruptions, full.disruptions);
    EXPECT_EQ(mirrored.unrepaired, full.unrepaired);
    EXPECT_EQ(mirrored.repair_latency_mean, full.repair_latency_mean);  // bitwise
    EXPECT_EQ(mirrored.repair_latency_max, full.repair_latency_max);
    EXPECT_EQ(mirrored.field_disruptions, full.field_disruptions);
    EXPECT_EQ(mirrored.field_downtime, full.field_downtime);
    EXPECT_EQ(mirrored.partitioned, full.partitioned);
    EXPECT_EQ(mirrored.time_to_partition, full.time_to_partition);
    EXPECT_EQ(mirrored.joins, full.joins);
    EXPECT_EQ(mirrored.leaves, full.leaves);
    EXPECT_EQ(mirrored.achanges, full.achanges);
    EXPECT_EQ(mirrored.regrows, full.regrows);
    EXPECT_EQ(mirrored.prunes, full.prunes);
    EXPECT_EQ(mirrored.channel.broadcasts, full.channel.broadcasts);
    EXPECT_EQ(mirrored.channel.tx_energy, full.channel.tx_energy);
    ASSERT_EQ(mirrored.samples.size(), full.samples.size());
    for (std::size_t i = 0; i < mirrored.samples.size(); ++i) {
      EXPECT_EQ(mirrored.samples[i].edges, full.samples[i].edges) << "sample " << i;
      EXPECT_EQ(mirrored.samples[i].avg_degree, full.samples[i].avg_degree) << "sample " << i;
      EXPECT_EQ(mirrored.samples[i].avg_radius, full.samples[i].avg_radius) << "sample " << i;
      EXPECT_EQ(mirrored.samples[i].connectivity_ok, full.samples[i].connectivity_ok)
          << "sample " << i;
      EXPECT_EQ(mirrored.samples[i].field_connected, full.samples[i].field_connected)
          << "sample " << i;
    }
  }
}

/// The mirrored path now compares connectivity *in place* (adjacency
/// views over closure_mirror + live_neighbor_index, no per-evaluation
/// graph snapshots); the full-capture path still materializes
/// snapshots. Their dynamic_reports must stay bitwise identical — also
/// under non-uniform per-link gains, where the live index filters
/// every candidate link.
TEST(ApiSim, InPlaceMirrorConnectivityMatchesSnapshotPathUnderPropagation) {
  scenario_spec spec = churn_scenario();
  sim_spec dyn = churn_sim();
  dyn.mobility = {.kind = mobility_kind::random_waypoint,
                  .min_speed = 1.0,
                  .max_speed = 4.0,
                  .tick = 0.5,
                  .start = 9.0};
  const engine eng;

  for (const bool shadowed : {false, true}) {
    spec.radio.propagation =
        shadowed ? propagation_spec{.kind = radio::propagation_kind::lognormal_shadowing,
                                    .sigma_db = 3.0,
                                    .clamp_db = 6.0}
                 : propagation_spec{};
    for (const std::uint64_t seed : {0ull, 1ull}) {
      dyn.mirror_agent_tables = true;
      const dynamic_report in_place = eng.run_dynamic(spec, dyn, seed);
      dyn.mirror_agent_tables = false;
      const dynamic_report snapshot = eng.run_dynamic(spec, dyn, seed);
      SCOPED_TRACE(::testing::Message() << "shadowed=" << shadowed << " seed " << seed);

      EXPECT_EQ(in_place.final_topology, snapshot.final_topology);
      EXPECT_EQ(in_place.disruptions, snapshot.disruptions);
      EXPECT_EQ(in_place.unrepaired, snapshot.unrepaired);
      EXPECT_EQ(in_place.repair_latency_mean, snapshot.repair_latency_mean);  // bitwise
      EXPECT_EQ(in_place.repair_latency_max, snapshot.repair_latency_max);
      EXPECT_EQ(in_place.field_disruptions, snapshot.field_disruptions);
      EXPECT_EQ(in_place.field_downtime, snapshot.field_downtime);
      EXPECT_EQ(in_place.partitioned, snapshot.partitioned);
      EXPECT_EQ(in_place.time_to_partition, snapshot.time_to_partition);
      ASSERT_EQ(in_place.samples.size(), snapshot.samples.size());
      for (std::size_t i = 0; i < in_place.samples.size(); ++i) {
        EXPECT_EQ(in_place.samples[i].connectivity_ok, snapshot.samples[i].connectivity_ok)
            << "sample " << i;
        EXPECT_EQ(in_place.samples[i].edges, snapshot.samples[i].edges) << "sample " << i;
      }
    }
  }
}

TEST(ApiSim, RunDynamicIsDeterministicPerSeed) {
  const scenario_spec spec = churn_scenario();
  const sim_spec dyn = churn_sim();
  const engine eng;
  const dynamic_report a = eng.run_dynamic(spec, dyn, 2);
  const dynamic_report b = eng.run_dynamic(spec, dyn, 2);
  EXPECT_EQ(a.channel.broadcasts, b.channel.broadcasts);
  EXPECT_EQ(a.channel.tx_energy, b.channel.tx_energy);
  EXPECT_EQ(a.leaves, b.leaves);
  EXPECT_EQ(a.regrows, b.regrows);
  EXPECT_EQ(a.final_topology, b.final_topology);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].edges, b.samples[i].edges) << "sample " << i;
    EXPECT_EQ(a.samples[i].connectivity_ok, b.samples[i].connectivity_ok) << "sample " << i;
  }
}

// Crash a quarter of the nodes after the topology settles: the NDP
// must notice within its failure-detection time tau = miss_limit *
// interval, the survivors must regrow around the holes, and every
// observed disruption must be repaired within tau plus one beacon of
// slack and a small regrow allowance. Several of these seeds are known
// to produce a genuine topology disruption (survivors' topology split
// while their G_R stayed whole), so the latency bound is exercised for
// real, not vacuously.
TEST(ApiSim, ReconfigRepairsCrashesWithinBeaconBound) {
  scenario_spec spec;
  spec.deploy = {.kind = deployment_kind::uniform, .nodes = 24, .region_side = 1200.0};
  spec.base_seed = 97531;
  spec.method = method_spec::protocol();
  spec.protocol.agent.round_timeout = 0.2;

  sim_spec dyn;
  dyn.horizon = 40.0;
  dyn.settle = 12.0;
  dyn.sample_every = 1.0;  // fine-grained so repair latency is sharp
  dyn.beacons = {.interval = 1.0, .miss_limit = 3};
  dyn.failures = {.random_crashes = 6, .window_begin = 14.0, .window_end = 18.0};

  // tau to notice + one beacon of slack + time to regrow the cones.
  const double bound = dyn.beacons.failure_detection_time() + dyn.beacons.interval + 5.0;

  const engine eng;
  std::uint64_t total_disruptions = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const dynamic_report r = eng.run_dynamic(spec, dyn, seed);
    EXPECT_TRUE(r.initial_connectivity_ok) << "seed " << seed;
    EXPECT_EQ(r.live_nodes, 18u) << "seed " << seed;
    EXPECT_GE(r.leaves, 1u) << "seed " << seed;  // NDP noticed the crashes
    EXPECT_TRUE(r.final_connectivity_ok) << "seed " << seed;
    EXPECT_EQ(r.unrepaired, 0u) << "seed " << seed;
    EXPECT_LE(r.repair_latency_max, bound) << "seed " << seed;
    total_disruptions += r.disruptions;
  }
  // The bound above must have been tested against real breakage.
  EXPECT_GE(total_disruptions, 1u);
}

// Section 4's partition-rejoin scenario: a node crashes, its neighbors
// drop it, it restarts — because beacon powers never fall below the
// basic algorithm's level, both sides re-discover each other and the
// rejoined node ends up wired back into the topology.
TEST(ApiSim, RestartedNodeRejoinsTopology) {
  scenario_spec spec;
  spec.deploy = {.kind = deployment_kind::uniform, .nodes = 30, .region_side = 1000.0};
  spec.base_seed = 77;
  spec.method = method_spec::protocol();
  spec.protocol.agent.round_timeout = 0.2;

  sim_spec dyn;
  dyn.horizon = 45.0;
  dyn.settle = 12.0;
  dyn.sample_every = 1.0;
  dyn.beacons = {.interval = 1.0, .miss_limit = 3};
  const graph::node_id victim = 3;
  dyn.failures.events.push_back({.node = victim, .time = 20.0, .restart = false});
  dyn.failures.events.push_back({.node = victim, .time = 28.0, .restart = true});

  const dynamic_report r = engine{}.run_dynamic(spec, dyn, 0);
  EXPECT_EQ(r.live_nodes, 30u);
  EXPECT_GE(r.leaves, 1u);
  EXPECT_TRUE(r.final_connectivity_ok);
  EXPECT_EQ(r.unrepaired, 0u);
  ASSERT_TRUE(r.up[victim]);
  EXPECT_GE(r.final_topology.degree(victim), 1u);  // wired back in
}

TEST(ApiSim, StreamingBatchMatchesReferenceReduce) {
  scenario_spec spec;
  spec.deploy = {.kind = deployment_kind::uniform, .nodes = 40, .region_side = 1200.0};
  spec.metrics = {.stretch = false, .interference = false, .robustness = false};
  const engine eng;

  // 20 seeds spans two 16-seed streaming blocks.
  const seed_range seeds{0, 20};
  const batch_report streamed = eng.run_batch(spec, seeds, 2);
  const std::vector<run_report> all = eng.run_all(spec, seeds, 2);
  const batch_report reference = reduce(all);

  ASSERT_EQ(streamed.runs, reference.runs);
  EXPECT_EQ(streamed.connectivity_failures, reference.connectivity_failures);
  // min/max/count are order-independent, so they match bitwise; sums
  // are re-associated across blocks, so means agree to rounding only.
  EXPECT_EQ(streamed.edges.min(), reference.edges.min());
  EXPECT_EQ(streamed.edges.max(), reference.edges.max());
  EXPECT_EQ(streamed.radius.count(), reference.radius.count());
  EXPECT_NEAR(streamed.edges.mean(), reference.edges.mean(), 1e-9);
  EXPECT_NEAR(streamed.degree.mean(), reference.degree.mean(), 1e-12);
  EXPECT_NEAR(streamed.radius.mean(), reference.radius.mean(), 1e-9);
  EXPECT_NEAR(streamed.tx_power.stddev(), reference.tx_power.stddev(), 1e-6);
}

TEST(ApiSim, LifetimeOrderingMatchesPaperDiscussion) {
  scenario_spec spec;
  spec.deploy = {.kind = deployment_kind::uniform, .nodes = 60, .region_side = 1200.0};
  spec.base_seed = 9;
  spec.cbtc.mode = algo::growth_mode::continuous;
  const lifetime_spec life{.battery_rounds = 30.0, .flows = 20, .max_rounds = 3000};
  const engine eng;

  scenario_spec max_power = spec;
  max_power.method = method_spec::of_baseline(baseline_kind::max_power);
  const lifetime_report no_control = eng.run_lifetime(max_power, life, 0);

  scenario_spec all_op = spec;
  all_op.opts = algo::optimization_set::all();
  const lifetime_report cbtc = eng.run_lifetime(all_op, life, 0);

  // Section 6: reduced transmit power extends the time until the field
  // partitions.
  EXPECT_GT(cbtc.field_partition, no_control.field_partition);
  EXPECT_GE(cbtc.quarter_dead, no_control.quarter_dead);
  // Determinism: same seed, same result.
  const lifetime_report again = eng.run_lifetime(all_op, life, 0);
  EXPECT_EQ(cbtc.field_partition, again.field_partition);
  EXPECT_EQ(cbtc.first_death, again.first_death);
}

}  // namespace
}  // namespace cbtc::api
