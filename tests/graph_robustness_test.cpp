#include "graph/robustness.h"

#include <gtest/gtest.h>

#include <random>

#include "baselines/baselines.h"
#include "geom/random_points.h"
#include "graph/euclidean.h"
#include "graph/traversal.h"

namespace cbtc::graph {
namespace {

undirected_graph path_graph(std::size_t n) {
  undirected_graph g(n);
  for (node_id i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

undirected_graph cycle_graph(std::size_t n) {
  undirected_graph g = path_graph(n);
  g.add_edge(0, static_cast<node_id>(n - 1));
  return g;
}

TEST(Articulation, PathInteriorIsAllCuts) {
  const auto cuts = articulation_points(path_graph(5));
  EXPECT_EQ(cuts, (std::vector<node_id>{1, 2, 3}));
}

TEST(Articulation, CycleHasNone) {
  EXPECT_TRUE(articulation_points(cycle_graph(6)).empty());
}

TEST(Articulation, BridgeNodeBetweenTriangles) {
  // Two triangles joined at node 2: node 2 is the unique cut vertex.
  undirected_graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(2, 4);
  EXPECT_EQ(articulation_points(g), std::vector<node_id>{2});
}

TEST(Articulation, StarCenter) {
  undirected_graph g(5);
  for (node_id i = 1; i < 5; ++i) g.add_edge(0, i);
  EXPECT_EQ(articulation_points(g), std::vector<node_id>{0});
}

TEST(Articulation, DisconnectedComponentsHandled) {
  undirected_graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);  // path: 1 is a cut
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(3, 5);  // triangle: no cuts
  EXPECT_EQ(articulation_points(g), std::vector<node_id>{1});
}

TEST(Bridges, PathAllBridges) {
  const auto b = bridges(path_graph(4));
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0], (edge{0, 1}));
  EXPECT_EQ(b[2], (edge{2, 3}));
}

TEST(Bridges, CycleHasNone) {
  EXPECT_TRUE(bridges(cycle_graph(5)).empty());
}

TEST(Bridges, MixedGraph) {
  // Triangle 0-1-2 with a pendant 2-3: only (2,3) is a bridge.
  undirected_graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  const auto b = bridges(g);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], (edge{2, 3}));
}

TEST(Biconnected, SmallCases) {
  EXPECT_TRUE(is_biconnected(undirected_graph(0)));
  EXPECT_TRUE(is_biconnected(undirected_graph(1)));
  EXPECT_FALSE(is_biconnected(undirected_graph(2)));  // disconnected
  undirected_graph k2(2);
  k2.add_edge(0, 1);
  EXPECT_TRUE(is_biconnected(k2));
  EXPECT_TRUE(is_biconnected(cycle_graph(4)));
  EXPECT_FALSE(is_biconnected(path_graph(3)));
}

TEST(Biconnected, DisconnectedNever) {
  undirected_graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(is_biconnected(g));
}

// Property: removing an articulation point disconnects its component;
// removing a non-articulation vertex does not change the count of
// components among the remaining vertices.
TEST(Articulation, RemovalProperty) {
  std::mt19937_64 rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 12;
    undirected_graph g(n);
    for (int e = 0; e < 18; ++e) {
      g.add_edge(static_cast<node_id>(rng() % n), static_cast<node_id>(rng() % n));
    }
    const auto cuts = articulation_points(g);
    std::vector<bool> is_cut(n, false);
    for (node_id c : cuts) is_cut[c] = true;

    const auto base = connected_components(g);
    for (node_id victim = 0; victim < n; ++victim) {
      // Build g minus victim (victim kept as isolated vertex).
      undirected_graph h(n);
      for (const edge& e : g.edges()) {
        if (e.u != victim && e.v != victim) h.add_edge(e.u, e.v);
      }
      const auto after = connected_components(h);
      // Components among the other vertices: subtract the victim's
      // singleton (it had degree >= 1 iff it was in some component).
      const std::size_t before_others = base.count;
      const std::size_t after_others = after.count - (g.degree(victim) > 0 ? 1 : 0);
      if (is_cut[victim]) {
        EXPECT_GT(after_others, before_others) << "victim " << victim << " trial " << trial;
      } else {
        EXPECT_EQ(after_others, before_others) << "victim " << victim << " trial " << trial;
      }
    }
  }
}

// Property: every bridge's removal increases the component count.
TEST(Bridges, RemovalProperty) {
  std::mt19937_64 rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 14;
    undirected_graph g(n);
    for (int e = 0; e < 16; ++e) {
      g.add_edge(static_cast<node_id>(rng() % n), static_cast<node_id>(rng() % n));
    }
    const std::size_t base = connected_components(g).count;
    for (const edge& b : bridges(g)) {
      undirected_graph h = g;
      h.remove_edge(b.u, b.v);
      EXPECT_EQ(connected_components(h).count, base + 1)
          << "bridge " << b.u << "-" << b.v << " trial " << trial;
    }
    // And non-bridges do not split.
    const auto bs = bridges(g);
    auto is_bridge = [&bs](const edge& e) {
      return std::find(bs.begin(), bs.end(), e) != bs.end();
    };
    for (const edge& e : g.edges()) {
      if (is_bridge(e)) continue;
      undirected_graph h = g;
      h.remove_edge(e.u, e.v);
      EXPECT_EQ(connected_components(h).count, base);
    }
  }
}

TEST(Robustness, MstIsMaximallyFragile) {
  // Every MST edge is a bridge; every internal MST node is a cut.
  const auto pts = geom::uniform_points(60, geom::bbox::rect(1000, 1000), 5);
  const auto mst = baselines::euclidean_mst(pts, 500.0);
  EXPECT_EQ(bridges(mst).size(), mst.num_edges());
}

}  // namespace
}  // namespace cbtc::graph
