#include "baselines/baselines.h"

#include <gtest/gtest.h>

#include "geom/random_points.h"
#include "graph/euclidean.h"
#include "graph/metrics.h"
#include "graph/traversal.h"

namespace cbtc::baselines {
namespace {

using geom::vec2;
using graph::node_id;

constexpr double R = 500.0;

std::vector<vec2> paper_positions(std::uint64_t seed) {
  return geom::uniform_points(100, geom::bbox::rect(1500, 1500), seed);
}

// ----------------------------------------------------------------- MST

TEST(Mst, TreeEdgeCountAndConnectivity) {
  const auto pts = paper_positions(1);
  const auto gr = graph::build_max_power_graph(pts, R);
  const auto mst = euclidean_mst(pts, R);
  const auto comps = graph::connected_components(gr);
  EXPECT_EQ(mst.num_edges(), pts.size() - comps.count);
  EXPECT_TRUE(graph::same_connectivity(mst, gr));
}

TEST(Mst, SubgraphOfGr) {
  const auto pts = paper_positions(2);
  const auto gr = graph::build_max_power_graph(pts, R);
  for (const graph::edge& e : euclidean_mst(pts, R).edges()) {
    EXPECT_TRUE(gr.has_edge(e.u, e.v));
  }
}

TEST(Mst, MinimizesMaxEdge) {
  // The MST's longest edge is the minimax bottleneck: every spanning
  // connected subgraph must use an edge at least that long somewhere.
  const auto pts = paper_positions(3);
  const auto mst = euclidean_mst(pts, R);
  const auto rng = relative_neighborhood_graph(pts, R);
  EXPECT_LE(graph::max_radius(mst, pts), graph::max_radius(rng, pts) + 1e-9);
}

TEST(Mst, KnownSquareCase) {
  // Unit square + center: MST has 4 edges, all center-to-corner or
  // corner-to-corner shortest.
  const std::vector<vec2> pts{{0, 0}, {100, 0}, {0, 100}, {100, 100}, {50, 50}};
  const auto mst = euclidean_mst(pts, 500.0);
  EXPECT_EQ(mst.num_edges(), 4u);
  EXPECT_TRUE(graph::is_connected(mst));
  // All four corners attach to the center (70.7 < 100).
  EXPECT_EQ(mst.degree(4), 4u);
}

// ----------------------------------------------------------------- RNG

TEST(Rng, SupersetOfMstSubsetOfGabriel) {
  // Classic sandwich: MST ⊆ RNG ⊆ Gabriel ⊆ Delaunay.
  const auto pts = paper_positions(4);
  const auto mst = euclidean_mst(pts, R);
  const auto rng = relative_neighborhood_graph(pts, R);
  const auto gg = gabriel_graph(pts, R);
  for (const graph::edge& e : mst.edges()) {
    EXPECT_TRUE(rng.has_edge(e.u, e.v)) << e.u << "-" << e.v;
  }
  for (const graph::edge& e : rng.edges()) {
    EXPECT_TRUE(gg.has_edge(e.u, e.v)) << e.u << "-" << e.v;
  }
}

TEST(Rng, PreservesConnectivity) {
  for (std::uint64_t seed : {5u, 6u, 7u}) {
    const auto pts = paper_positions(seed);
    const auto gr = graph::build_max_power_graph(pts, R);
    EXPECT_TRUE(graph::same_connectivity(relative_neighborhood_graph(pts, R), gr));
  }
}

TEST(Rng, BlocksLuneWitness) {
  // Witness inside the lune of (0,1): edge removed.
  const std::vector<vec2> pts{{0, 0}, {100, 0}, {50, 10}};
  const auto rng = relative_neighborhood_graph(pts, 500.0);
  EXPECT_FALSE(rng.has_edge(0, 1));
  EXPECT_TRUE(rng.has_edge(0, 2));
  EXPECT_TRUE(rng.has_edge(1, 2));
}

// -------------------------------------------------------------- Gabriel

TEST(Gabriel, PreservesConnectivity) {
  for (std::uint64_t seed : {8u, 9u}) {
    const auto pts = paper_positions(seed);
    const auto gr = graph::build_max_power_graph(pts, R);
    EXPECT_TRUE(graph::same_connectivity(gabriel_graph(pts, R), gr));
  }
}

TEST(Gabriel, DiameterCircleWitness) {
  // Witness inside the circle with diameter (0,1) blocks the edge; a
  // witness in the lune but outside that circle does not.
  const std::vector<vec2> in_circle{{0, 0}, {100, 0}, {50, 20}};
  EXPECT_FALSE(gabriel_graph(in_circle, 500.0).has_edge(0, 1));
  const std::vector<vec2> outside{{0, 0}, {100, 0}, {50, 60}};
  EXPECT_TRUE(gabriel_graph(outside, 500.0).has_edge(0, 1));
}

// ------------------------------------------------------------------ Yao

TEST(Yao, PreservesConnectivityWithSixCones) {
  for (std::uint64_t seed : {10u, 11u}) {
    const auto pts = paper_positions(seed);
    const auto gr = graph::build_max_power_graph(pts, R);
    EXPECT_TRUE(graph::same_connectivity(yao_graph(pts, R, 6), gr));
  }
}

TEST(Yao, KeepsNearestPerCone) {
  // Two nodes in the same cone: only the nearest is linked.
  const std::vector<vec2> pts{{0, 0}, {100, 1.0}, {200, 2.0}};
  const auto yao = yao_graph(pts, 500.0, 6);
  EXPECT_TRUE(yao.has_edge(0, 1));
  EXPECT_TRUE(yao.has_edge(1, 2));
  EXPECT_FALSE(yao.has_edge(0, 2));
}

TEST(Yao, SparserThanGr) {
  const auto pts = paper_positions(12);
  const auto gr = graph::build_max_power_graph(pts, R);
  const auto yao = yao_graph(pts, R, 8);
  EXPECT_LT(yao.num_edges(), gr.num_edges());
  EXPECT_LE(graph::average_degree(yao), graph::average_degree(gr));
}

TEST(Yao, DegenerateConeCounts) {
  const std::vector<vec2> pts{{0, 0}, {10, 0}};
  EXPECT_EQ(yao_graph(pts, 500.0, 0).num_edges(), 0u);
  EXPECT_EQ(yao_graph(pts, 500.0, 1).num_edges(), 1u);
}

// ------------------------------------------------------------------ kNN

TEST(Knn, DegreeBounds) {
  const auto pts = paper_positions(13);
  const auto knn = knn_graph(pts, R, 3);
  // Out-degree <= 3 before closure; closure can raise a node's degree
  // but every node has at least min(3, reachable) incident edges.
  for (node_id u = 0; u < pts.size(); ++u) {
    const auto gr_deg = graph::build_max_power_graph(pts, R).degree(u);
    EXPECT_GE(knn.degree(u), std::min<std::size_t>(3, gr_deg));
  }
}

TEST(Knn, CanDisconnect) {
  // Two tight pairs far apart (but within R): 1-NN links only pair
  // members, losing the long bridge — the classic kNN failure.
  const std::vector<vec2> pts{{0, 0}, {10, 0}, {400, 0}, {410, 0}};
  const auto gr = graph::build_max_power_graph(pts, 500.0);
  EXPECT_TRUE(graph::is_connected(gr));
  const auto knn = knn_graph(pts, 500.0, 1);
  EXPECT_FALSE(graph::is_connected(knn));
}

TEST(Knn, ZeroK) {
  const auto pts = paper_positions(14);
  EXPECT_EQ(knn_graph(pts, R, 0).num_edges(), 0u);
}

// --------------------------------------------------------- comparative

TEST(Baselines, SparsityOrdering) {
  // On the paper's workload: MST <= RNG <= Gabriel <= GR in edge count.
  const auto pts = paper_positions(15);
  const auto mst = euclidean_mst(pts, R);
  const auto rng = relative_neighborhood_graph(pts, R);
  const auto gg = gabriel_graph(pts, R);
  const auto gr = graph::build_max_power_graph(pts, R);
  EXPECT_LE(mst.num_edges(), rng.num_edges());
  EXPECT_LE(rng.num_edges(), gg.num_edges());
  EXPECT_LE(gg.num_edges(), gr.num_edges());
}

TEST(Baselines, AllSubgraphsOfGr) {
  const auto pts = paper_positions(16);
  const auto gr = graph::build_max_power_graph(pts, R);
  for (const auto& g : {euclidean_mst(pts, R), relative_neighborhood_graph(pts, R),
                        gabriel_graph(pts, R), yao_graph(pts, R, 6), knn_graph(pts, R, 3)}) {
    for (const graph::edge& e : g.edges()) {
      EXPECT_TRUE(gr.has_edge(e.u, e.v));
    }
  }
}

}  // namespace
}  // namespace cbtc::baselines
