// cbtc_serve — scenario shard daemon.
//
//   cbtc_serve [--port P] [--bind ADDR] [--threads T] [--io-timeout-ms N]
//
// Accepts batch requests over the cbtc wire protocol (api/wire.h) and
// streams seed-block partials back; cbtc_cli dispatch fans a sweep
// across any number of these. --port 0 (the default) binds an
// ephemeral port; the actual address is printed on startup as
//
//   cbtc_serve listening on ADDR:PORT
//
// SECURITY: the listener has no authentication or encryption — bind
// trusted-network interfaces only. The default bind is loopback;
// pass --bind explicitly to expose a LAN interface.
//
// Stops gracefully on SIGINT/SIGTERM or a client shutdown frame.
#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>

#include "net/service.h"

namespace {

std::atomic<cbtc::net::scenario_server*> active_server{nullptr};

void handle_signal(int) {
  if (cbtc::net::scenario_server* s = active_server.load()) s->stop();
}

int usage() {
  std::cout << "usage: cbtc_serve [--port P] [--bind ADDR] [--threads T] [--io-timeout-ms N]\n"
            << "scenario shard daemon for cbtc_cli dispatch (trusted networks only)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  cbtc::net::serve_config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      cfg.port = static_cast<std::uint16_t>(std::stoul(value()));
    } else if (arg == "--bind") {
      cfg.bind_address = value();
    } else if (arg == "--threads") {
      cfg.threads = static_cast<unsigned>(std::stoul(value()));
    } else if (arg == "--io-timeout-ms") {
      cfg.io_timeout_ms = static_cast<int>(std::stol(value()));
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else {
      std::cerr << "error: unknown option " << arg << "\n";
      return usage();
    }
  }

  try {
    cbtc::net::scenario_server server(cfg);
    active_server.store(&server);
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    std::cout << "cbtc_serve listening on " << cfg.bind_address << ":" << server.port()
              << std::endl;
    server.run();
    active_server.store(nullptr);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
