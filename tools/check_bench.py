#!/usr/bin/env python3
"""Perf-regression gate: compare a google-benchmark JSON run against a
committed baseline.

Two kinds of checks, because CI runners and dev boxes differ in raw
speed:

  * absolute: each baseline benchmark's real time may grow by at most
    a multiplicative tolerance (default from the baseline file,
    overridable per benchmark and from the command line). Generous on
    purpose — it catches order-of-magnitude regressions (an accidental
    O(n^2), a lost parallel path), not scheduler noise.
  * ratios: named time ratios computed *within the new run* (e.g.
    "oracle 400 nodes / oracle 100 nodes"), which are machine-
    independent and can therefore be tight. This is where scaling
    regressions fail loudly even on a runner 3x slower than the
    machine that produced the baseline.

Absolute reference times come from the committed baseline by default.
With --history, prior run artifacts (BENCH_*.json files kept by CI)
supply a rolling median instead: each benchmark present in at least
--history-min prior runs is compared against the median of its last
--history-window measurements, which tracks the runner's real speed
far more tightly than a baseline produced on another machine. Names
absent from the history fall back to the committed baseline times.

Usage:
  check_bench.py --bench BENCH_scaling.json --baseline bench/baseline_scaling.json
  check_bench.py ... --tolerance 4.0     # override every absolute tolerance
  check_bench.py ... --update            # rewrite baseline times from the run
  check_bench.py ... --require-row BM_Growth/1000000/iterations:1
                                         # fail unless the run contains the row
  check_bench.py ... --history prev1.json prev2.json ...
                                         # roll the reference times from history

Exit status: 0 = all checks pass, 1 = regression or missing benchmark,
2 = bad invocation / malformed input.
"""

import argparse
import json
import statistics
import sys

UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_run(path):
    """name -> real time in ns, iteration entries only (no aggregates)."""
    with open(path) as f:
        data = json.load(f)
    times = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue  # BigO / RMS / mean aggregates
        unit = b.get("time_unit", "ns")
        if unit not in UNIT_TO_NS:
            raise ValueError(f"unknown time_unit {unit!r} for {b.get('name')}")
        times[b["name"]] = float(b["real_time"]) * UNIT_TO_NS[unit]
    return times


def fmt_ns(ns):
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f}us"
    return f"{ns:.0f}ns"


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--bench", required=True, help="google-benchmark JSON output of the new run")
    ap.add_argument("--baseline", required=True, help="committed baseline JSON")
    ap.add_argument("--tolerance", type=float, default=None,
                    help="override the absolute-time tolerance for every benchmark")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline's benchmark times from the run and exit")
    ap.add_argument("--require-row", action="append", default=[], metavar="NAME",
                    help="fail unless the run contains this benchmark row "
                         "(repeatable; guards against a filter silently dropping "
                         "the row a gate depends on)")
    ap.add_argument("--history", nargs="+", default=[], metavar="RUN_JSON",
                    help="prior run artifacts; reference times become the rolling "
                         "median over the last --history-window of them")
    ap.add_argument("--history-window", type=int, default=5,
                    help="use at most the last K history runs per benchmark (default 5)")
    ap.add_argument("--history-min", type=int, default=3,
                    help="minimum history samples before the median replaces the "
                         "committed baseline time for a benchmark (default 3)")
    args = ap.parse_args()

    try:
        run = load_run(args.bench)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
        print(f"error: cannot read benchmark run {args.bench}: {e}", file=sys.stderr)
        return 2
    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read baseline {args.baseline}: {e}", file=sys.stderr)
        return 2

    if args.update:
        # Refresh times but keep any extra per-benchmark keys (e.g. a
        # "tolerance" override) for benchmarks that stay in the set.
        old = baseline.get("benchmarks", {})
        baseline["benchmarks"] = {
            name: {**old.get(name, {}), "real_time_ns": round(t, 1)}
            for name, t in sorted(run.items())
        }
        with open(args.baseline, "w") as f:
            json.dump(baseline, f, indent=2)
            f.write("\n")
        print(f"baseline updated: {len(run)} benchmarks -> {args.baseline}")
        return 0

    # Rolling-median reference: per benchmark, the median real time over
    # the last --history-window prior runs (arguments in oldest-to-
    # newest order). Medians shrug off one anomalous prior run, which a
    # mean or a single-run reference would drag along.
    history = {}
    for path in args.history:
        try:
            prior = load_run(path)
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
            print(f"warning: skipping history run {path}: {e}", file=sys.stderr)
            continue
        for name, t in prior.items():
            history.setdefault(name, []).append(t)
    rolled = {
        name: statistics.median(samples[-args.history_window:])
        for name, samples in history.items()
        if len(samples[-args.history_window:]) >= args.history_min
    }

    default_tol = args.tolerance or float(baseline.get("default_tolerance", 4.0))
    failures = []
    absolute_rows = 0

    for name in args.require_row:
        if name not in run:
            failures.append(f"required row {name!r} missing from the run "
                            f"(filter changed or bench dropped?)")
            print(f"required row {name}: MISSING")

    ref_label = "rolled" if rolled else "baseline"
    print(f"{'benchmark':62} {ref_label:>10} {'now':>10} {'ratio':>7} {'limit':>7}  status")

    for name, entry in baseline.get("benchmarks", {}).items():
        absolute_rows += 1
        base_ns = rolled.get(name, float(entry["real_time_ns"]))
        tol = args.tolerance or float(entry.get("tolerance", default_tol))
        if name not in run:
            failures.append(f"{name}: missing from the run (filter changed or bench dropped?)")
            print(f"{name:62} {fmt_ns(base_ns):>10} {'-':>10} {'-':>7} {tol:>6.2f}x  MISSING")
            continue
        ratio = run[name] / base_ns if base_ns > 0 else float("inf")
        status = "ok" if ratio <= tol else "FAIL"
        print(f"{name:62} {fmt_ns(base_ns):>10} {fmt_ns(run[name]):>10} "
              f"{ratio:>6.2f}x {tol:>6.2f}x  {status}")
        if ratio > tol:
            failures.append(f"{name}: measured {fmt_ns(run[name])} vs baseline {fmt_ns(base_ns)} "
                            f"({ratio:.2f}x > {tol:.2f}x allowed)")

    ratios = baseline.get("ratios", [])
    if ratios:
        print(f"\n{'ratio check (within this run)':62} {'num':>10} {'den':>10} "
              f"{'value':>7} {'limit':>7}  status")
    for r in ratios:
        num, den = r["num"], r["den"]
        if num not in run or den not in run:
            missing = num if num not in run else den
            failures.append(f"ratio {r['name']!r}: {missing} missing from the run")
            print(f"{r['name']:62} {'-':>10} {'-':>10} {'-':>7} "
                  f"{float(r['max']):>6.2f}x  MISSING ({missing})")
            continue
        value = run[num] / run[den] if run[den] > 0 else float("inf")
        status = "ok" if value <= float(r["max"]) else "FAIL"
        print(f"{r['name']:62} {fmt_ns(run[num]):>10} {fmt_ns(run[den]):>10} "
              f"{value:>6.2f}x {float(r['max']):>6.2f}x  {status}")
        if value > float(r["max"]):
            failures.append(f"ratio {r['name']!r}: {value:.2f}x > {float(r['max']):.2f}x allowed "
                            f"[{num} = {fmt_ns(run[num])}, {den} = {fmt_ns(run[den])}]")

    extra = sorted(set(run) - set(baseline.get("benchmarks", {})))
    if extra:
        print(f"\nnote: {len(extra)} benchmark(s) in the run but not in the baseline: "
              + ", ".join(extra))

    checked = absolute_rows + len(ratios)
    if failures:
        print(f"\nperf gate: {len(failures)} of {checked} checks FAILED "
              f"({absolute_rows} absolute, {len(ratios)} ratio):", file=sys.stderr)
        for f_ in failures:
            print(f"  - {f_}", file=sys.stderr)
        return 1
    print(f"\nperf gate: all {checked} checks passed "
          f"({absolute_rows} absolute, {len(ratios)} ratio)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
