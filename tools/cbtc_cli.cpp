// cbtc — command-line topology-control workbench.
//
//   cbtc generate --nodes 100 --region 1500 --seed 1 --out nodes.csv
//   cbtc build    --in nodes.csv --alpha 2.618 --all-opts --svg topo.svg
//   cbtc analyze  --in nodes.csv
//   cbtc compare  --in nodes.csv
//   cbtc sweep    --scenario paper_table1 --seeds 100 --threads 4
//   cbtc sweep    --file scenario.json --seeds 50
//   cbtc sweep    --scenario paper_table1 --save scenario.json
//
// generate: write a random deployment as CSV (uniform | cluster | grid)
// build:    run one scenario through cbtc::api and export the topology
// analyze:  per-instance alpha threshold scan + invariant checks
// compare:  metrics table against the position-based baselines
// sweep:    multi-seed batch of a (named or JSON-file) scenario on the
//           parallel engine; a "sim" section in the file switches the
//           sweep to dynamic (churn / mobility) simulation. --save
//           writes the resolved scenario back out as JSON, so named
//           scenarios can be pinned as experiment config files.
#include <charconv>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "algo/alpha_search.h"
#include "api/api.h"
#include "api/dispatch.h"
#include "exp/table.h"
#include "geom/random_points.h"
#include "geom/structured_points.h"
#include "graph/graph_io.h"
#include "graph/position_io.h"
#include "net/service.h"

namespace {

using namespace cbtc;

/// A bad command line: print the message, then usage, exit 2.
struct usage_error : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct cli_args {
  std::string command;
  std::map<std::string, std::string> options;
  std::vector<std::string> flags;

  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  /// Numeric option; rejects anything that is not a full number instead
  /// of letting std::stod throw a bare std::invalid_argument.
  [[nodiscard]] double num(const std::string& key, double fallback) const {
    const auto it = options.find(key);
    if (it == options.end()) return fallback;
    const std::string& text = it->second;
    double value = 0.0;
    const auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || end != text.data() + text.size()) {
      throw usage_error("option --" + key + ": expected a number, got '" + text + "'");
    }
    return value;
  }
  /// Integer option parsed directly (no double round-trip, so 64-bit
  /// seeds survive exactly).
  [[nodiscard]] std::size_t count(const std::string& key, std::size_t fallback) const {
    const auto it = options.find(key);
    if (it == options.end()) return fallback;
    const std::string& text = it->second;
    std::uint64_t value = 0;
    const auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || end != text.data() + text.size()) {
      throw usage_error("option --" + key + ": expected a non-negative integer, got '" + text +
                        "'");
    }
    return static_cast<std::size_t>(value);
  }
  [[nodiscard]] bool has_flag(const std::string& f) const {
    return std::find(flags.begin(), flags.end(), f) != flags.end();
  }
};

cli_args parse(int argc, char** argv) {
  cli_args args;
  if (argc > 1) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      throw usage_error("unexpected argument: '" + a + "' (options start with --)");
    }
    a = a.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.options[a] = argv[++i];
    } else {
      args.flags.push_back(a);
    }
  }
  return args;
}

int usage() {
  std::cout <<
      "usage: cbtc_cli <command> [options]\n"
      "\n"
      "commands:\n"
      "  generate  --nodes N --region S\n"
      "            [--layout uniform|cluster|grid|ring|tree|star]\n"
      "            [--clusters K --sigma S] [--branching B] [--arms A]\n"
      "            [--seed N] --out FILE.csv\n"
      "  build     --in FILE.csv [--alpha RAD] [--range R] [--exponent N]\n"
      "            [--all-opts | --shrink-back --asym --pairwise]\n"
      "            [--continuous] [--svg FILE] [--dot FILE] [--edges FILE]\n"
      "  analyze   --in FILE.csv [--range R] [--exponent N]\n"
      "  compare   --in FILE.csv [--range R] [--exponent N]\n"
      "  sweep     --scenario NAME | --file SCENARIO.json\n"
      "            [--seeds N] [--first N] [--threads T] [--intra-threads T]\n"
      "            [--regions R]  (dynamic: event-engine region count, 0 = auto)\n"
      "            (both thread knobs share one process-wide pool: T x T\n"
      "             nests via work-stealing, it never multiplies threads)\n"
      "            [--method oracle|protocol|stc|mst|rng|gabriel|yao|knn|max-power]\n"
      "            [--methods m1,m2,...]  (static only: run every method over\n"
      "             the same seeds and print one comparison row per method)\n"
      "            [--gain-aware]  (force the gain-aware op3 pass; non-isotropic\n"
      "             scenarios with --pairwise-style opts route to it anyway)\n"
      "            [--alpha RAD] [--nodes N] [--region S] [--range R]\n"
      "            [--propagation isotropic|shadowing|obstacles]\n"
      "            [--shadow-sigma DB] [--shadow-clamp DB]\n"
      "            [--lifetime] [--policy plain|balanced|cooperative]\n"
      "            [--sink N] [--battery-rounds X]\n"
      "            (a lifetime block — from the JSON file or any of these\n"
      "             four flags — switches the sweep to the battery-attrition\n"
      "             experiment; --sink also selects convergecast rounds)\n"
      "            [--save FILE.json]  (write the resolved scenario, don't run)\n"
      "  sweep     --list           (show registered scenarios)\n"
      "  serve     [--port P] [--bind ADDR] [--threads T]\n"
      "            (scenario shard daemon; trusted networks only — no auth.\n"
      "             --port 0 picks an ephemeral port, printed on startup)\n"
      "  dispatch  --endpoints host:port,host:port,...\n"
      "            + the sweep scenario options; runs the sweep across the\n"
      "            given cbtc_serve shards with results bitwise identical\n"
      "            to the in-process sweep\n"
      "            [--retries N] [--connect-timeout-ms N] [--io-timeout-ms N]\n"
      "  scenarios                  (list static and dynamic registries)\n";
  return 2;
}

int cmd_generate(const cli_args& args) {
  const std::size_t nodes = args.count("nodes", 100);
  const double side = args.num("region", 1500.0);
  const auto seed = static_cast<std::uint64_t>(args.count("seed", 1));
  const std::string layout = args.get("layout", "uniform");
  const std::string out = args.get("out", "nodes.csv");
  const geom::bbox region = geom::bbox::rect(side, side);

  std::vector<geom::vec2> positions;
  if (layout == "uniform") {
    positions = geom::uniform_points(nodes, region, seed);
  } else if (layout == "cluster") {
    positions = geom::clustered_points(nodes, args.count("clusters", 5),
                                       args.num("sigma", side / 10.0), region, seed);
  } else if (layout == "grid") {
    const double jitter = args.num("jitter", 0.3);
    positions = jitter <= 0.0 ? geom::grid_points(nodes, region)
                              : geom::jittered_grid_points(nodes, jitter, region, seed);
  } else if (layout == "ring") {
    positions = geom::ring_points(nodes, region);
  } else if (layout == "tree") {
    positions = geom::tree_points(nodes, args.count("branching", 2), region);
  } else if (layout == "star") {
    positions = geom::star_points(nodes, args.count("arms", 4), region);
  } else {
    throw usage_error("unknown layout: " + layout);
  }
  graph::save_positions_csv(out, positions);
  std::cout << "wrote " << positions.size() << " positions to " << out << "\n";
  return 0;
}

/// Scenario skeleton shared by the CSV-driven commands: fixed
/// positions, radio from --range / --exponent.
api::scenario_spec csv_spec(const cli_args& args) {
  api::scenario_spec spec;
  spec.deploy = api::deployment_spec::fixed_positions(
      graph::load_positions_csv(args.get("in", "nodes.csv")));
  spec.radio.max_range = args.num("range", 500.0);
  spec.radio.path_loss_exponent = args.num("exponent", 2.0);
  spec.metrics.stretch = false;  // build/compare/analyze never print stretch
  return spec;
}

int cmd_build(const cli_args& args) {
  api::scenario_spec spec = csv_spec(args);
  spec.cbtc.alpha = args.num("alpha", algo::alpha_five_pi_six);
  if (args.has_flag("continuous")) spec.cbtc.mode = algo::growth_mode::continuous;
  if (args.has_flag("all-opts")) {
    spec.opts = algo::optimization_set::all();
  } else {
    spec.opts.shrink_back = args.has_flag("shrink-back");
    spec.opts.asymmetric_removal = args.has_flag("asym");
    spec.opts.pairwise_removal = args.has_flag("pairwise");
  }

  const api::engine eng;
  const api::run_report report = eng.run(spec);

  api::scenario_spec max_power = spec;
  max_power.method = api::method_spec::of_baseline(api::baseline_kind::max_power);
  const api::run_report reference = eng.run(max_power);

  exp::table t({"metric", "topology", "max power"});
  t.add_row({"edges", std::to_string(report.edges), std::to_string(reference.edges)});
  t.add_row({"avg degree", exp::table::num(report.avg_degree),
             exp::table::num(reference.avg_degree)});
  t.add_row({"avg radius", exp::table::num(report.avg_radius),
             exp::table::num(reference.avg_radius)});
  t.add_row({"interference", exp::table::num(report.interference_mean),
             exp::table::num(reference.interference_mean)});
  t.add_row({"cut vertices", std::to_string(report.cut_vertices),
             std::to_string(reference.cut_vertices)});
  t.add_row({"connectivity preserved",
             report.invariants.connectivity_preserved ? "yes" : "NO", "-"});
  t.print(std::cout);
  for (const std::string& v : report.invariants.violations) {
    std::cout << "violation: " << v << "\n";
  }

  const auto& positions = spec.deploy.fixed;
  const geom::bbox region = spec.region();
  if (const std::string svg = args.get("svg", ""); !svg.empty()) {
    graph::save_svg(svg, report.topology, positions, region, {.title = "CBTC topology"});
    std::cout << "wrote " << svg << "\n";
  }
  if (const std::string dot = args.get("dot", ""); !dot.empty()) {
    std::ofstream f(dot);
    graph::write_dot(f, report.topology, positions);
    std::cout << "wrote " << dot << "\n";
  }
  if (const std::string edges = args.get("edges", ""); !edges.empty()) {
    std::ofstream f(edges);
    graph::write_edge_csv(f, report.topology, positions);
    std::cout << "wrote " << edges << "\n";
  }
  return report.invariants.ok() ? 0 : 1;
}

int cmd_analyze(const cli_args& args) {
  const api::scenario_spec spec = csv_spec(args);
  const auto& positions = spec.deploy.fixed;
  const radio::power_model pm = spec.power();

  const auto scan = algo::scan_alpha(positions, pm, geom::pi / 3.0, 1.2 * geom::pi, 16);
  exp::table t({"alpha/pi", "connectivity preserved"});
  for (const auto& s : scan.samples) {
    t.add_row({exp::table::num(s.alpha / geom::pi, 3), s.preserved ? "yes" : "no"});
  }
  t.print(std::cout);

  const double threshold = algo::max_preserving_alpha(positions, pm, algo::alpha_five_pi_six,
                                                      1.99 * geom::pi, 1e-3);
  std::cout << "\nempirical per-instance threshold: alpha = " << threshold << " ("
            << exp::table::num(threshold / geom::pi, 3) << " pi)\n"
            << "theorem guarantee (worst case):   alpha = 5*pi/6 (0.833 pi)\n";
  return 0;
}

int cmd_compare(const cli_args& args) {
  api::scenario_spec base = csv_spec(args);
  base.cbtc.mode = algo::growth_mode::continuous;
  base.opts = algo::optimization_set::all();

  std::vector<std::pair<std::string, api::method_spec>> rows{
      {"CBTC all-op 5pi/6", api::method_spec::oracle()},
      {"Euclidean MST", api::method_spec::of_baseline(api::baseline_kind::euclidean_mst)},
      {"RNG", api::method_spec::of_baseline(api::baseline_kind::relative_neighborhood)},
      {"Gabriel", api::method_spec::of_baseline(api::baseline_kind::gabriel)},
      {"Yao (6 cones)", api::method_spec::of_baseline(api::baseline_kind::yao)},
      {"max power", api::method_spec::of_baseline(api::baseline_kind::max_power)},
  };

  const api::engine eng;
  exp::table t({"topology", "edges", "avg degree", "avg radius", "interference", "preserved"});
  for (const auto& [name, method] : rows) {
    api::scenario_spec spec = base;
    spec.method = method;
    const api::run_report r = eng.run(spec);
    t.add_row({name, std::to_string(r.edges), exp::table::num(r.avg_degree),
               exp::table::num(r.avg_radius), exp::table::num(r.interference_mean, 1),
               r.invariants.connectivity_preserved ? "yes" : "no"});
  }
  t.print(std::cout);
  return 0;
}

/// Prints a dynamic sweep's aggregates and returns the process exit code.
int print_dynamic_sweep(const api::scenario_spec& spec, const api::dynamic_batch_report& b,
                        api::seed_range seeds) {
  std::cout << "dynamic scenario " << spec.name << " (" << api::method_name(spec.method)
            << "), seeds [" << seeds.first << ", " << seeds.first + seeds.count << "), " << b.runs
            << " runs\n\n";

  exp::table t({"metric", "mean", "stddev", "min", "max"});
  const auto row = [&t](const std::string& label, const exp::summary& s, int precision = 2) {
    t.add_row({label, exp::table::num(s.mean(), precision), exp::table::num(s.stddev(), precision),
               exp::table::num(s.min(), precision), exp::table::num(s.max(), precision)});
  };
  row("broadcasts", b.broadcasts, 0);
  row("unicasts", b.unicasts, 0);
  row("tx energy", b.tx_energy, 0);
  row("beacons", b.beacons, 0);
  row("joins", b.joins, 1);
  row("leaves", b.leaves, 1);
  row("aChanges", b.achanges, 1);
  row("regrows", b.regrows, 1);
  row("disruptions", b.disruptions, 1);
  row("repair latency (mean)", b.repair_latency);
  row("repair latency (max)", b.repair_latency_max);
  row("field disruptions", b.field_disruptions, 1);
  row("field downtime", b.field_downtime);
  row("time to partition", b.time_to_partition, 1);
  row("final edges", b.final_edges, 1);
  row("final avg degree", b.final_degree);
  row("final avg radius", b.final_radius, 1);
  row("live nodes", b.live_nodes, 1);
  if (b.traffic_runs > 0) {
    row("traffic generated", b.traffic_generated, 0);
    row("traffic delivered", b.traffic_delivered, 0);
    row("delivery ratio", b.traffic_delivery_ratio, 3);
    row("throughput", b.traffic_throughput, 2);
    row("delivery delay", b.traffic_delay, 3);
    row("forwarding energy", b.traffic_energy, 0);
    row("energy spread", b.traffic_energy_spread, 1);
    row("traffic drops", b.traffic_drops, 1);
    row("queue peak", b.traffic_queue_peak, 1);
  }
  t.print(std::cout);

  std::cout << "\nfinal connectivity preserved: " << (b.runs - b.final_connectivity_failures)
            << "/" << b.runs << "\npartitioned runs: " << b.partitioned_runs
            << ", unrepaired disruptions: " << b.unrepaired_disruptions << "\n";
  return b.final_connectivity_failures == 0 ? 0 : 1;
}

/// Prints a lifetime sweep's aggregates; always exits 0 (lifetime runs
/// have no pass/fail invariant — the rounds are the result).
int print_lifetime_sweep(const api::scenario_spec& spec, const api::lifetime_spec& life,
                         const api::lifetime_batch_report& b, api::seed_range seeds) {
  std::cout << "lifetime scenario " << spec.name << " (" << api::method_name(spec.method)
            << ", policy " << api::lifetime_policy_name(life.policy)
            << (life.convergecast ? ", convergecast sink " + std::to_string(life.sink) : "")
            << "), seeds [" << seeds.first << ", " << seeds.first + seeds.count << "), " << b.runs
            << " runs\n\n";

  exp::table t({"rounds until", "mean", "stddev", "min", "max"});
  const auto row = [&t](const std::string& label, const exp::summary& s) {
    t.add_row({label, exp::table::num(s.mean(), 1), exp::table::num(s.stddev(), 1),
               exp::table::num(s.min(), 1), exp::table::num(s.max(), 1)});
  };
  row("first death", b.first_death);
  row("25% dead", b.quarter_dead);
  row("field partition", b.field_partition);
  t.print(std::cout);
  return 0;
}

/// Lists both registries (also serves `sweep --list`).
int cmd_scenarios() {
  std::cout << "static scenarios:\n";
  for (const std::string& name : api::scenario_names()) std::cout << "  " << name << "\n";
  std::cout << "dynamic scenarios (scenario + sim presets):\n";
  for (const std::string& name : api::dynamic_scenario_names()) std::cout << "  " << name << "\n";
  return 0;
}

/// Scenario + optional sim + optional lifetime resolved from
/// --scenario/--file plus the command-line overrides (shared by sweep
/// and dispatch).
struct sweep_setup {
  api::scenario_spec spec;
  std::optional<api::sim_spec> sim;
  std::optional<api::lifetime_spec> lifetime;
};

sweep_setup resolve_sweep(const cli_args& args) {
  std::optional<api::sim_spec> sim;
  std::optional<api::lifetime_spec> lifetime;
  api::scenario_spec spec;
  if (const std::string file = args.get("file", ""); !file.empty()) {
    api::scenario_file loaded = api::load_scenario_file(file);
    spec = std::move(loaded.scenario);
    sim = loaded.sim;
    lifetime = loaded.lifetime;
    if (spec.name.empty()) spec.name = file;
  } else {
    const std::string name = args.get("scenario", "paper_table1");
    if (auto found = api::find_scenario(name)) {
      spec = *std::move(found);
    } else if (auto dyn = api::find_dynamic_scenario(name)) {
      spec = std::move(dyn->scenario);
      sim = dyn->sim;
    } else {
      std::ostringstream msg;
      msg << "unknown scenario '" << name << "'; try one of:";
      for (const std::string& n : api::scenario_names()) msg << " " << n;
      for (const std::string& n : api::dynamic_scenario_names()) msg << " " << n;
      throw usage_error(msg.str());
    }
  }

  // Command-line overrides on top of the named scenario.
  if (args.options.contains("method")) {
    try {
      spec.method = api::parse_method(args.get("method", ""));
    } catch (const std::invalid_argument& e) {
      throw usage_error(e.what());
    }
  }
  if (args.has_flag("gain-aware")) spec.opts.gain_aware = true;
  if (args.options.contains("alpha")) spec.cbtc.alpha = args.num("alpha", spec.cbtc.alpha);
  if (args.options.contains("nodes")) spec.deploy.nodes = args.count("nodes", spec.deploy.nodes);
  if (args.options.contains("region")) {
    spec.deploy.region_side = args.num("region", spec.deploy.region_side);
  }
  if (args.options.contains("range")) {
    spec.radio.max_range = args.num("range", spec.radio.max_range);
  }
  if (args.options.contains("propagation")) {
    const std::string kind = args.get("propagation", "isotropic");
    if (kind == "isotropic") {
      spec.radio.propagation = {};
    } else if (kind == "shadowing" || kind == "lognormal_shadowing") {
      // Only the kind flips; sigma/clamp/seed already in the scenario
      // (or the spec defaults) survive, with --shadow-* on top below.
      spec.radio.propagation.kind = radio::propagation_kind::lognormal_shadowing;
    } else if (kind == "obstacles" || kind == "obstacle_field") {
      // Obstacle geometry comes from the scenario (registry preset or
      // JSON file); the flag only re-selects the kind.
      if (spec.radio.propagation.obstacles.empty()) {
        throw usage_error("--propagation obstacles needs a scenario that defines obstacles "
                          "(e.g. --scenario urban_obstacles or a JSON file)");
      }
      spec.radio.propagation.kind = radio::propagation_kind::obstacle_field;
    } else {
      throw usage_error("unknown propagation kind: " + kind +
                        " (expected isotropic | shadowing | obstacles)");
    }
  }
  if (spec.radio.propagation.kind == radio::propagation_kind::lognormal_shadowing) {
    spec.radio.propagation.sigma_db =
        args.num("shadow-sigma", spec.radio.propagation.sigma_db);
    spec.radio.propagation.clamp_db =
        args.num("shadow-clamp", spec.radio.propagation.clamp_db);
  } else if (args.options.contains("shadow-sigma") || args.options.contains("shadow-clamp")) {
    throw usage_error("--shadow-sigma/--shadow-clamp need shadowing propagation "
                      "(pass --propagation shadowing or a shadowed scenario)");
  }
  if (args.options.contains("intra-threads")) {
    spec.cbtc.intra_threads =
        static_cast<unsigned>(args.count("intra-threads", spec.cbtc.intra_threads));
  }
  if (args.options.contains("regions")) {
    if (!sim) {
      throw usage_error("--regions applies to dynamic scenarios only "
                        "(pick a dynamic preset or a JSON file with a sim block)");
    }
    sim->partition.regions = static_cast<std::uint32_t>(args.count("regions", 0));
  }

  // Lifetime flags: any of them switches the sweep to the
  // battery-attrition experiment (on top of a file's lifetime block).
  const bool lifetime_flags = args.has_flag("lifetime") || args.options.contains("policy") ||
                              args.options.contains("sink") ||
                              args.options.contains("battery-rounds");
  if (lifetime_flags && !lifetime) lifetime.emplace();
  if (lifetime) {
    if (args.options.contains("policy")) {
      try {
        lifetime->policy = api::parse_lifetime_policy(args.get("policy", ""));
      } catch (const std::invalid_argument& e) {
        throw usage_error(e.what());
      }
    }
    if (args.options.contains("sink")) {
      lifetime->sink = static_cast<graph::node_id>(args.count("sink", lifetime->sink));
      lifetime->convergecast = true;
    }
    lifetime->battery_rounds = args.num("battery-rounds", lifetime->battery_rounds);
  }
  return {std::move(spec), sim, lifetime};
}

/// Seed range of a sweep/dispatch invocation (--first / --seeds).
api::seed_range sweep_seeds(const cli_args& args) {
  return {static_cast<std::uint64_t>(args.count("first", 0)),
          static_cast<std::uint64_t>(args.count("seeds", 20))};
}

/// Prints a static sweep's aggregates and returns the process exit
/// code. Shared by sweep and dispatch so their outputs diff clean.
int print_static_sweep(const api::scenario_spec& spec, const api::batch_report& b,
                       api::seed_range seeds) {
  std::cout << "scenario " << spec.name << " (" << api::method_name(spec.method) << "), seeds ["
            << seeds.first << ", " << seeds.first + seeds.count << "), " << b.runs << " runs\n\n";

  exp::table t({"metric", "mean", "stddev", "min", "max"});
  const auto row = [&t](const std::string& label, const exp::summary& s, int precision = 2) {
    t.add_row({label, exp::table::num(s.mean(), precision), exp::table::num(s.stddev(), precision),
               exp::table::num(s.min(), precision), exp::table::num(s.max(), precision)});
  };
  row("edges", b.edges, 1);
  row("avg degree", b.degree);
  row("avg radius", b.radius, 1);
  row("max radius", b.max_radius, 1);
  row("avg tx power", b.tx_power, 0);
  row("boundary nodes", b.boundary, 1);
  row("power stretch", b.power_stretch, 3);
  row("hop stretch", b.hop_stretch, 3);
  row("interference", b.interference, 1);
  row("cut vertices", b.cut_vertices, 1);
  if (b.has_protocol_stats) {
    row("protocol messages", b.messages, 0);
    row("protocol deliveries", b.deliveries, 0);
    row("protocol tx energy", b.tx_energy, 0);
    row("completion time", b.completion_time, 2);
  }
  t.print(std::cout);

  std::cout << "\nconnectivity preserved: " << (b.runs - b.connectivity_failures) << "/" << b.runs
            << "\n";
  return b.connectivity_failures == 0 ? 0 : 1;
}

/// --methods m1,m2,...: one static batch per method over the same
/// seeds and scenario, one comparison row per method (the CBTC-vs-STC
/// degree / power stretch / connectivity race across propagation
/// presets).
int print_method_comparison(api::scenario_spec spec, const std::string& list,
                            api::seed_range seeds, unsigned threads) {
  std::vector<api::method_spec> methods;
  std::stringstream ss(list);
  for (std::string tok; std::getline(ss, tok, ',');) {
    if (tok.empty()) continue;
    try {
      methods.push_back(api::parse_method(tok));
    } catch (const std::invalid_argument& e) {
      throw usage_error(e.what());
    }
  }
  if (methods.empty()) throw usage_error("--methods needs a comma-separated method list");

  std::cout << "scenario " << spec.name << ", seeds [" << seeds.first << ", "
            << seeds.first + seeds.count << "), method comparison\n\n";
  exp::table t({"method", "edges", "avg degree", "avg tx power", "power stretch", "stretch max",
                "hop stretch", "preserved"});
  const api::engine eng;
  std::size_t failures = 0;
  for (const api::method_spec& m : methods) {
    spec.method = m;
    const api::batch_report b = eng.run_batch(spec, seeds, threads);
    t.add_row({api::method_name(m), exp::table::num(b.edges.mean(), 1),
               exp::table::num(b.degree.mean(), 2), exp::table::num(b.tx_power.mean(), 0),
               exp::table::num(b.power_stretch.mean(), 3),
               exp::table::num(b.power_stretch.max(), 3), exp::table::num(b.hop_stretch.mean(), 3),
               std::to_string(b.runs - b.connectivity_failures) + "/" + std::to_string(b.runs)});
    failures += b.connectivity_failures;
  }
  t.print(std::cout);
  std::cout << "\nconnectivity preserved: all methods" << (failures == 0 ? " ok" : ": FAILURES")
            << "\n";
  return failures == 0 ? 0 : 1;
}

int cmd_sweep(const cli_args& args) {
  if (args.has_flag("list")) return cmd_scenarios();
  auto [spec, sim, lifetime] = resolve_sweep(args);

  if (const std::string save = args.get("save", ""); !save.empty()) {
    api::save_scenario_file(save, {.scenario = spec, .sim = sim, .lifetime = lifetime});
    std::cout << "wrote scenario '" << spec.name << "' to " << save << "\n";
    return 0;
  }

  const api::seed_range seeds = sweep_seeds(args);
  const auto threads = static_cast<unsigned>(args.count("threads", 0));

  if (args.options.contains("methods")) {
    if (sim || lifetime) {
      throw usage_error("--methods compares static sweeps only (no sim/lifetime block)");
    }
    return print_method_comparison(std::move(spec), args.get("methods", ""), seeds, threads);
  }

  const api::engine eng;
  if (lifetime) {
    return print_lifetime_sweep(spec, *lifetime, eng.run_batch(spec, *lifetime, seeds, threads),
                                seeds);
  }
  if (sim) {
    return print_dynamic_sweep(spec, eng.run_batch(spec, *sim, seeds, threads), seeds);
  }
  return print_static_sweep(spec, eng.run_batch(spec, seeds, threads), seeds);
}

int cmd_serve(const cli_args& args) {
  net::serve_config cfg;
  cfg.bind_address = args.get("bind", "127.0.0.1");
  cfg.port = static_cast<std::uint16_t>(args.count("port", 0));
  cfg.threads = static_cast<unsigned>(args.count("threads", 0));
  net::scenario_server server(cfg);
  // Machine-readable startup line (the smoke scripts scrape the port).
  std::cout << "cbtc_serve listening on " << cfg.bind_address << ":" << server.port()
            << std::endl;
  server.run();
  return 0;
}

int cmd_dispatch(const cli_args& args) {
  const std::string endpoints = args.get("endpoints", "");
  if (endpoints.empty()) {
    throw usage_error("dispatch needs --endpoints host:port[,host:port...]");
  }
  auto [spec, sim, lifetime] = resolve_sweep(args);

  api::dispatch_config cfg;
  try {
    cfg.endpoints = api::parse_endpoint_list(endpoints);
  } catch (const std::invalid_argument& e) {
    throw usage_error(e.what());
  }
  cfg.shard_threads = static_cast<unsigned>(args.count("threads", 0));
  cfg.max_block_retries = args.count("retries", cfg.max_block_retries);
  cfg.connect_timeout_ms = static_cast<int>(
      args.count("connect-timeout-ms", static_cast<std::size_t>(cfg.connect_timeout_ms)));
  cfg.io_timeout_ms = static_cast<int>(
      args.count("io-timeout-ms", static_cast<std::size_t>(cfg.io_timeout_ms)));

  const api::seed_range seeds = sweep_seeds(args);
  api::shard_dispatcher dispatcher(cfg);

  // stdout carries exactly the sweep's report (so a dispatched run
  // diffs clean against an in-process one); dispatch telemetry goes
  // to stderr.
  int rc = 0;
  if (lifetime) {
    rc = print_lifetime_sweep(spec, *lifetime, dispatcher.run_batch(spec, *lifetime, seeds),
                              seeds);
  } else if (sim) {
    rc = print_dynamic_sweep(spec, dispatcher.run_batch(spec, *sim, seeds), seeds);
  } else {
    rc = print_static_sweep(spec, dispatcher.run_batch(spec, seeds), seeds);
  }
  const api::dispatch_stats& st = dispatcher.stats();
  std::cerr << "dispatch: " << st.blocks << " blocks over " << cfg.endpoints.size()
            << " endpoints, " << st.requests << " requests, " << st.requeued_blocks
            << " requeued, " << st.duplicate_partials << " duplicate partials, "
            << st.connection_failures << " connection failures, " << st.dead_endpoints
            << " dead endpoints\n";
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const cli_args args = parse(argc, argv);
    if (args.command == "generate") return cmd_generate(args);
    if (args.command == "build") return cmd_build(args);
    if (args.command == "analyze") return cmd_analyze(args);
    if (args.command == "compare") return cmd_compare(args);
    if (args.command == "sweep") return cmd_sweep(args);
    if (args.command == "serve") return cmd_serve(args);
    if (args.command == "dispatch") return cmd_dispatch(args);
    if (args.command == "scenarios") return cmd_scenarios();
  } catch (const usage_error& e) {
    std::cerr << "error: " << e.what() << "\n\n";
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
