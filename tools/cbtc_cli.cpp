// cbtc — command-line topology-control workbench.
//
//   cbtc generate --nodes 100 --region 1500 --seed 1 --out nodes.csv
//   cbtc build    --in nodes.csv --alpha 2.618 --all-opts --svg topo.svg
//   cbtc analyze  --in nodes.csv
//   cbtc compare  --in nodes.csv
//
// generate: write a random deployment as CSV (uniform | cluster | grid)
// build:    run CBTC(alpha) (+ optimizations) and export the topology
// analyze:  per-instance alpha threshold scan + invariant checks
// compare:  metrics table against the position-based baselines
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "algo/alpha_search.h"
#include "algo/analysis.h"
#include "algo/pipeline.h"
#include "baselines/baselines.h"
#include "exp/table.h"
#include "geom/random_points.h"
#include "graph/euclidean.h"
#include "graph/graph_io.h"
#include "graph/interference.h"
#include "graph/metrics.h"
#include "graph/position_io.h"
#include "graph/robustness.h"
#include "graph/traversal.h"

namespace {

using namespace cbtc;

struct cli_args {
  std::string command;
  std::map<std::string, std::string> options;
  std::vector<std::string> flags;

  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  [[nodiscard]] double num(const std::string& key, double fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::stod(it->second);
  }
  [[nodiscard]] bool has_flag(const std::string& f) const {
    return std::find(flags.begin(), flags.end(), f) != flags.end();
  }
};

cli_args parse(int argc, char** argv) {
  cli_args args;
  if (argc > 1) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0) continue;
    a = a.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.options[a] = argv[++i];
    } else {
      args.flags.push_back(a);
    }
  }
  return args;
}

int usage() {
  std::cout <<
      "usage: cbtc_cli <command> [options]\n"
      "\n"
      "commands:\n"
      "  generate  --nodes N --region S [--layout uniform|cluster|grid]\n"
      "            [--clusters K --sigma S] [--seed N] --out FILE.csv\n"
      "  build     --in FILE.csv [--alpha RAD] [--range R] [--exponent N]\n"
      "            [--all-opts | --shrink-back --asym --pairwise]\n"
      "            [--continuous] [--svg FILE] [--dot FILE] [--edges FILE]\n"
      "  analyze   --in FILE.csv [--range R] [--exponent N]\n"
      "  compare   --in FILE.csv [--range R] [--exponent N]\n";
  return 2;
}

int cmd_generate(const cli_args& args) {
  const auto nodes = static_cast<std::size_t>(args.num("nodes", 100));
  const double side = args.num("region", 1500.0);
  const auto seed = static_cast<std::uint64_t>(args.num("seed", 1));
  const std::string layout = args.get("layout", "uniform");
  const std::string out = args.get("out", "nodes.csv");
  const geom::bbox region = geom::bbox::rect(side, side);

  std::vector<geom::vec2> positions;
  if (layout == "uniform") {
    positions = geom::uniform_points(nodes, region, seed);
  } else if (layout == "cluster") {
    positions = geom::clustered_points(nodes, static_cast<std::size_t>(args.num("clusters", 5)),
                                       args.num("sigma", side / 10.0), region, seed);
  } else if (layout == "grid") {
    positions = geom::jittered_grid_points(nodes, args.num("jitter", 0.3), region, seed);
  } else {
    std::cerr << "unknown layout: " << layout << "\n";
    return 2;
  }
  graph::save_positions_csv(out, positions);
  std::cout << "wrote " << positions.size() << " positions to " << out << "\n";
  return 0;
}

radio::power_model model_from(const cli_args& args) {
  return radio::power_model(args.num("exponent", 2.0), args.num("range", 500.0));
}

int cmd_build(const cli_args& args) {
  const auto positions = graph::load_positions_csv(args.get("in", "nodes.csv"));
  const radio::power_model pm = model_from(args);

  algo::cbtc_params params;
  params.alpha = args.num("alpha", algo::alpha_five_pi_six);
  if (args.has_flag("continuous")) params.mode = algo::growth_mode::continuous;

  algo::optimization_set opts;
  if (args.has_flag("all-opts")) {
    opts = algo::optimization_set::all();
  } else {
    opts.shrink_back = args.has_flag("shrink-back");
    opts.asymmetric_removal = args.has_flag("asym");
    opts.pairwise_removal = args.has_flag("pairwise");
  }

  const algo::topology_result result = algo::build_topology(positions, pm, params, opts);
  const auto gr = graph::build_max_power_graph(positions, pm.max_range());
  const auto report = algo::check_invariants(result.topology, positions, pm.max_range());

  exp::table t({"metric", "topology", "max power"});
  t.add_row({"edges", std::to_string(result.topology.num_edges()), std::to_string(gr.num_edges())});
  t.add_row({"avg degree", exp::table::num(graph::average_degree(result.topology)),
             exp::table::num(graph::average_degree(gr))});
  t.add_row({"avg radius",
             exp::table::num(graph::average_radius(result.topology, positions, pm.max_range())),
             exp::table::num(pm.max_range())});
  t.add_row({"interference",
             exp::table::num(graph::topology_interference(result.topology, positions).mean),
             exp::table::num(graph::topology_interference(gr, positions).mean)});
  t.add_row({"cut vertices", std::to_string(graph::articulation_points(result.topology).size()),
             std::to_string(graph::articulation_points(gr).size())});
  t.add_row({"connectivity preserved", report.connectivity_preserved ? "yes" : "NO", "-"});
  t.print(std::cout);
  for (const std::string& v : report.violations) std::cout << "violation: " << v << "\n";

  geom::bbox region{positions.front(), positions.front()};
  for (const auto& p : positions) {
    region.min.x = std::min(region.min.x, p.x);
    region.min.y = std::min(region.min.y, p.y);
    region.max.x = std::max(region.max.x, p.x);
    region.max.y = std::max(region.max.y, p.y);
  }
  if (const std::string svg = args.get("svg", ""); !svg.empty()) {
    graph::save_svg(svg, result.topology, positions, region, {.title = "CBTC topology"});
    std::cout << "wrote " << svg << "\n";
  }
  if (const std::string dot = args.get("dot", ""); !dot.empty()) {
    std::ofstream f(dot);
    graph::write_dot(f, result.topology, positions);
    std::cout << "wrote " << dot << "\n";
  }
  if (const std::string edges = args.get("edges", ""); !edges.empty()) {
    std::ofstream f(edges);
    graph::write_edge_csv(f, result.topology, positions);
    std::cout << "wrote " << edges << "\n";
  }
  return report.ok() ? 0 : 1;
}

int cmd_analyze(const cli_args& args) {
  const auto positions = graph::load_positions_csv(args.get("in", "nodes.csv"));
  const radio::power_model pm = model_from(args);

  const auto scan =
      algo::scan_alpha(positions, pm, geom::pi / 3.0, 1.2 * geom::pi, 16);
  exp::table t({"alpha/pi", "connectivity preserved"});
  for (const auto& s : scan.samples) {
    t.add_row({exp::table::num(s.alpha / geom::pi, 3), s.preserved ? "yes" : "no"});
  }
  t.print(std::cout);

  const double threshold = algo::max_preserving_alpha(positions, pm, algo::alpha_five_pi_six,
                                                      1.99 * geom::pi, 1e-3);
  std::cout << "\nempirical per-instance threshold: alpha = " << threshold << " ("
            << exp::table::num(threshold / geom::pi, 3) << " pi)\n"
            << "theorem guarantee (worst case):   alpha = 5*pi/6 (0.833 pi)\n";
  return 0;
}

int cmd_compare(const cli_args& args) {
  const auto positions = graph::load_positions_csv(args.get("in", "nodes.csv"));
  const radio::power_model pm = model_from(args);
  const double R = pm.max_range();
  const auto gr = graph::build_max_power_graph(positions, R);

  algo::cbtc_params params;
  params.mode = algo::growth_mode::continuous;
  const auto cbtc_topo =
      algo::build_topology(positions, pm, params, algo::optimization_set::all()).topology;

  const std::vector<std::pair<std::string, graph::undirected_graph>> rows{
      {"CBTC all-op 5pi/6", cbtc_topo},
      {"Euclidean MST", baselines::euclidean_mst(positions, R)},
      {"RNG", baselines::relative_neighborhood_graph(positions, R)},
      {"Gabriel", baselines::gabriel_graph(positions, R)},
      {"Yao (6 cones)", baselines::yao_graph(positions, R, 6)},
      {"max power", gr},
  };
  exp::table t({"topology", "edges", "avg degree", "avg radius", "interference", "preserved"});
  for (const auto& [name, g] : rows) {
    t.add_row({name, std::to_string(g.num_edges()), exp::table::num(graph::average_degree(g)),
               exp::table::num(graph::average_radius(g, positions, R)),
               exp::table::num(graph::topology_interference(g, positions).mean, 1),
               graph::same_connectivity(g, gr) ? "yes" : "no"});
  }
  t.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const cli_args args = parse(argc, argv);
  try {
    if (args.command == "generate") return cmd_generate(args);
    if (args.command == "build") return cmd_build(args);
    if (args.command == "analyze") return cmd_analyze(args);
    if (args.command == "compare") return cmd_compare(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
