file(REMOVE_RECURSE
  "CMakeFiles/cbtc_cli.dir/tools/cbtc_cli.cpp.o"
  "CMakeFiles/cbtc_cli.dir/tools/cbtc_cli.cpp.o.d"
  "cbtc_cli"
  "cbtc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbtc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
