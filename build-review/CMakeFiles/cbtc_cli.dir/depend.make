# Empty dependencies file for cbtc_cli.
# This may be replaced when dependencies are built.
