# Empty compiler generated dependencies file for geom_angle_test.
# This may be replaced when dependencies are built.
