file(REMOVE_RECURSE
  "CMakeFiles/geom_angle_test.dir/tests/geom_angle_test.cpp.o"
  "CMakeFiles/geom_angle_test.dir/tests/geom_angle_test.cpp.o.d"
  "geom_angle_test"
  "geom_angle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_angle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
