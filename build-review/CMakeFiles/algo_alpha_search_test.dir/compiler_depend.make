# Empty compiler generated dependencies file for algo_alpha_search_test.
# This may be replaced when dependencies are built.
