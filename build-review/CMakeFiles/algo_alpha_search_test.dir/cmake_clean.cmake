file(REMOVE_RECURSE
  "CMakeFiles/algo_alpha_search_test.dir/tests/algo_alpha_search_test.cpp.o"
  "CMakeFiles/algo_alpha_search_test.dir/tests/algo_alpha_search_test.cpp.o.d"
  "algo_alpha_search_test"
  "algo_alpha_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_alpha_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
