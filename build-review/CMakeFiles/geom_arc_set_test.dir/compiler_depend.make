# Empty compiler generated dependencies file for geom_arc_set_test.
# This may be replaced when dependencies are built.
