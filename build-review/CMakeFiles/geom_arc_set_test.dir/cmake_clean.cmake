file(REMOVE_RECURSE
  "CMakeFiles/geom_arc_set_test.dir/tests/geom_arc_set_test.cpp.o"
  "CMakeFiles/geom_arc_set_test.dir/tests/geom_arc_set_test.cpp.o.d"
  "geom_arc_set_test"
  "geom_arc_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_arc_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
