file(REMOVE_RECURSE
  "CMakeFiles/bench_increase_policy.dir/bench/bench_increase_policy.cpp.o"
  "CMakeFiles/bench_increase_policy.dir/bench/bench_increase_policy.cpp.o.d"
  "bench_increase_policy"
  "bench_increase_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_increase_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
