# Empty dependencies file for bench_increase_policy.
# This may be replaced when dependencies are built.
