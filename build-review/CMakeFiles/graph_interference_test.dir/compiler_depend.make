# Empty compiler generated dependencies file for graph_interference_test.
# This may be replaced when dependencies are built.
