file(REMOVE_RECURSE
  "CMakeFiles/graph_interference_test.dir/tests/graph_interference_test.cpp.o"
  "CMakeFiles/graph_interference_test.dir/tests/graph_interference_test.cpp.o.d"
  "graph_interference_test"
  "graph_interference_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_interference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
