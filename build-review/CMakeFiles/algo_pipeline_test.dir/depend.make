# Empty dependencies file for algo_pipeline_test.
# This may be replaced when dependencies are built.
