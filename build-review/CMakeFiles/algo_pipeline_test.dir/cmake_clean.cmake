file(REMOVE_RECURSE
  "CMakeFiles/algo_pipeline_test.dir/tests/algo_pipeline_test.cpp.o"
  "CMakeFiles/algo_pipeline_test.dir/tests/algo_pipeline_test.cpp.o.d"
  "algo_pipeline_test"
  "algo_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
