# Empty dependencies file for proto_agent_test.
# This may be replaced when dependencies are built.
