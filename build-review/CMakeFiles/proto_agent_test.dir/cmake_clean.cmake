file(REMOVE_RECURSE
  "CMakeFiles/proto_agent_test.dir/tests/proto_agent_test.cpp.o"
  "CMakeFiles/proto_agent_test.dir/tests/proto_agent_test.cpp.o.d"
  "proto_agent_test"
  "proto_agent_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proto_agent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
