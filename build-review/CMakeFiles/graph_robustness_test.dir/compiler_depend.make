# Empty compiler generated dependencies file for graph_robustness_test.
# This may be replaced when dependencies are built.
