file(REMOVE_RECURSE
  "CMakeFiles/graph_robustness_test.dir/tests/graph_robustness_test.cpp.o"
  "CMakeFiles/graph_robustness_test.dir/tests/graph_robustness_test.cpp.o.d"
  "graph_robustness_test"
  "graph_robustness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
