file(REMOVE_RECURSE
  "CMakeFiles/geom_shapes_test.dir/tests/geom_shapes_test.cpp.o"
  "CMakeFiles/geom_shapes_test.dir/tests/geom_shapes_test.cpp.o.d"
  "geom_shapes_test"
  "geom_shapes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_shapes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
