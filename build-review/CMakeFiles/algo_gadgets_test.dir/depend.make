# Empty dependencies file for algo_gadgets_test.
# This may be replaced when dependencies are built.
