file(REMOVE_RECURSE
  "CMakeFiles/algo_gadgets_test.dir/tests/algo_gadgets_test.cpp.o"
  "CMakeFiles/algo_gadgets_test.dir/tests/algo_gadgets_test.cpp.o.d"
  "algo_gadgets_test"
  "algo_gadgets_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_gadgets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
