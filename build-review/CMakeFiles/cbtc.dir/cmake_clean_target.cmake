file(REMOVE_RECURSE
  "libcbtc.a"
)
