
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/alpha_search.cpp" "CMakeFiles/cbtc.dir/src/algo/alpha_search.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/algo/alpha_search.cpp.o.d"
  "/root/repo/src/algo/analysis.cpp" "CMakeFiles/cbtc.dir/src/algo/analysis.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/algo/analysis.cpp.o.d"
  "/root/repo/src/algo/augment.cpp" "CMakeFiles/cbtc.dir/src/algo/augment.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/algo/augment.cpp.o.d"
  "/root/repo/src/algo/gadgets.cpp" "CMakeFiles/cbtc.dir/src/algo/gadgets.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/algo/gadgets.cpp.o.d"
  "/root/repo/src/algo/oracle.cpp" "CMakeFiles/cbtc.dir/src/algo/oracle.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/algo/oracle.cpp.o.d"
  "/root/repo/src/algo/pairwise.cpp" "CMakeFiles/cbtc.dir/src/algo/pairwise.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/algo/pairwise.cpp.o.d"
  "/root/repo/src/algo/pipeline.cpp" "CMakeFiles/cbtc.dir/src/algo/pipeline.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/algo/pipeline.cpp.o.d"
  "/root/repo/src/algo/shrink_back.cpp" "CMakeFiles/cbtc.dir/src/algo/shrink_back.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/algo/shrink_back.cpp.o.d"
  "/root/repo/src/api/engine.cpp" "CMakeFiles/cbtc.dir/src/api/engine.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/api/engine.cpp.o.d"
  "/root/repo/src/api/registry.cpp" "CMakeFiles/cbtc.dir/src/api/registry.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/api/registry.cpp.o.d"
  "/root/repo/src/api/scenario.cpp" "CMakeFiles/cbtc.dir/src/api/scenario.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/api/scenario.cpp.o.d"
  "/root/repo/src/baselines/baselines.cpp" "CMakeFiles/cbtc.dir/src/baselines/baselines.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/baselines/baselines.cpp.o.d"
  "/root/repo/src/exp/stats.cpp" "CMakeFiles/cbtc.dir/src/exp/stats.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/exp/stats.cpp.o.d"
  "/root/repo/src/exp/table.cpp" "CMakeFiles/cbtc.dir/src/exp/table.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/exp/table.cpp.o.d"
  "/root/repo/src/geom/angle.cpp" "CMakeFiles/cbtc.dir/src/geom/angle.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/geom/angle.cpp.o.d"
  "/root/repo/src/geom/arc_set.cpp" "CMakeFiles/cbtc.dir/src/geom/arc_set.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/geom/arc_set.cpp.o.d"
  "/root/repo/src/geom/circle.cpp" "CMakeFiles/cbtc.dir/src/geom/circle.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/geom/circle.cpp.o.d"
  "/root/repo/src/geom/random_points.cpp" "CMakeFiles/cbtc.dir/src/geom/random_points.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/geom/random_points.cpp.o.d"
  "/root/repo/src/geom/spatial_grid.cpp" "CMakeFiles/cbtc.dir/src/geom/spatial_grid.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/geom/spatial_grid.cpp.o.d"
  "/root/repo/src/geom/vec2.cpp" "CMakeFiles/cbtc.dir/src/geom/vec2.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/geom/vec2.cpp.o.d"
  "/root/repo/src/graph/digraph.cpp" "CMakeFiles/cbtc.dir/src/graph/digraph.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/graph/digraph.cpp.o.d"
  "/root/repo/src/graph/euclidean.cpp" "CMakeFiles/cbtc.dir/src/graph/euclidean.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/graph/euclidean.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "CMakeFiles/cbtc.dir/src/graph/graph.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/graph/graph.cpp.o.d"
  "/root/repo/src/graph/graph_io.cpp" "CMakeFiles/cbtc.dir/src/graph/graph_io.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/graph/graph_io.cpp.o.d"
  "/root/repo/src/graph/interference.cpp" "CMakeFiles/cbtc.dir/src/graph/interference.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/graph/interference.cpp.o.d"
  "/root/repo/src/graph/metrics.cpp" "CMakeFiles/cbtc.dir/src/graph/metrics.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/graph/metrics.cpp.o.d"
  "/root/repo/src/graph/position_io.cpp" "CMakeFiles/cbtc.dir/src/graph/position_io.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/graph/position_io.cpp.o.d"
  "/root/repo/src/graph/robustness.cpp" "CMakeFiles/cbtc.dir/src/graph/robustness.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/graph/robustness.cpp.o.d"
  "/root/repo/src/graph/shortest_path.cpp" "CMakeFiles/cbtc.dir/src/graph/shortest_path.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/graph/shortest_path.cpp.o.d"
  "/root/repo/src/graph/traversal.cpp" "CMakeFiles/cbtc.dir/src/graph/traversal.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/graph/traversal.cpp.o.d"
  "/root/repo/src/graph/union_find.cpp" "CMakeFiles/cbtc.dir/src/graph/union_find.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/graph/union_find.cpp.o.d"
  "/root/repo/src/proto/cbtc_agent.cpp" "CMakeFiles/cbtc.dir/src/proto/cbtc_agent.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/proto/cbtc_agent.cpp.o.d"
  "/root/repo/src/proto/ndp.cpp" "CMakeFiles/cbtc.dir/src/proto/ndp.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/proto/ndp.cpp.o.d"
  "/root/repo/src/proto/reconfig.cpp" "CMakeFiles/cbtc.dir/src/proto/reconfig.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/proto/reconfig.cpp.o.d"
  "/root/repo/src/proto/runner.cpp" "CMakeFiles/cbtc.dir/src/proto/runner.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/proto/runner.cpp.o.d"
  "/root/repo/src/radio/channel.cpp" "CMakeFiles/cbtc.dir/src/radio/channel.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/radio/channel.cpp.o.d"
  "/root/repo/src/radio/direction.cpp" "CMakeFiles/cbtc.dir/src/radio/direction.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/radio/direction.cpp.o.d"
  "/root/repo/src/radio/power_model.cpp" "CMakeFiles/cbtc.dir/src/radio/power_model.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/radio/power_model.cpp.o.d"
  "/root/repo/src/sim/failure.cpp" "CMakeFiles/cbtc.dir/src/sim/failure.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/sim/failure.cpp.o.d"
  "/root/repo/src/sim/medium.cpp" "CMakeFiles/cbtc.dir/src/sim/medium.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/sim/medium.cpp.o.d"
  "/root/repo/src/sim/mobility.cpp" "CMakeFiles/cbtc.dir/src/sim/mobility.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/sim/mobility.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "CMakeFiles/cbtc.dir/src/sim/simulator.cpp.o" "gcc" "CMakeFiles/cbtc.dir/src/sim/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
