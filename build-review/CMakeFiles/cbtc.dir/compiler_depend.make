# Empty compiler generated dependencies file for cbtc.
# This may be replaced when dependencies are built.
