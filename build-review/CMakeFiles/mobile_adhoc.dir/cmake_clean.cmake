file(REMOVE_RECURSE
  "CMakeFiles/mobile_adhoc.dir/examples/mobile_adhoc.cpp.o"
  "CMakeFiles/mobile_adhoc.dir/examples/mobile_adhoc.cpp.o.d"
  "mobile_adhoc"
  "mobile_adhoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_adhoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
