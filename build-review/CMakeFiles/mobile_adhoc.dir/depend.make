# Empty dependencies file for mobile_adhoc.
# This may be replaced when dependencies are built.
