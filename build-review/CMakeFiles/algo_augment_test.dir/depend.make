# Empty dependencies file for algo_augment_test.
# This may be replaced when dependencies are built.
