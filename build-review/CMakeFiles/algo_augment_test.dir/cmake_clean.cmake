file(REMOVE_RECURSE
  "CMakeFiles/algo_augment_test.dir/tests/algo_augment_test.cpp.o"
  "CMakeFiles/algo_augment_test.dir/tests/algo_augment_test.cpp.o.d"
  "algo_augment_test"
  "algo_augment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_augment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
