# Empty compiler generated dependencies file for bench_power_stretch.
# This may be replaced when dependencies are built.
