file(REMOVE_RECURSE
  "CMakeFiles/bench_power_stretch.dir/bench/bench_power_stretch.cpp.o"
  "CMakeFiles/bench_power_stretch.dir/bench/bench_power_stretch.cpp.o.d"
  "bench_power_stretch"
  "bench_power_stretch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_power_stretch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
