file(REMOVE_RECURSE
  "CMakeFiles/algo_shrink_back_test.dir/tests/algo_shrink_back_test.cpp.o"
  "CMakeFiles/algo_shrink_back_test.dir/tests/algo_shrink_back_test.cpp.o.d"
  "algo_shrink_back_test"
  "algo_shrink_back_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_shrink_back_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
