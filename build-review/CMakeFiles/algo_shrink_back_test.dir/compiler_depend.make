# Empty compiler generated dependencies file for algo_shrink_back_test.
# This may be replaced when dependencies are built.
