file(REMOVE_RECURSE
  "CMakeFiles/counterexample_tour.dir/examples/counterexample_tour.cpp.o"
  "CMakeFiles/counterexample_tour.dir/examples/counterexample_tour.cpp.o.d"
  "counterexample_tour"
  "counterexample_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counterexample_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
