# Empty compiler generated dependencies file for counterexample_tour.
# This may be replaced when dependencies are built.
