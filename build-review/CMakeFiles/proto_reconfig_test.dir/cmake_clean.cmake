file(REMOVE_RECURSE
  "CMakeFiles/proto_reconfig_test.dir/tests/proto_reconfig_test.cpp.o"
  "CMakeFiles/proto_reconfig_test.dir/tests/proto_reconfig_test.cpp.o.d"
  "proto_reconfig_test"
  "proto_reconfig_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proto_reconfig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
