# Empty dependencies file for proto_reconfig_test.
# This may be replaced when dependencies are built.
