# Empty compiler generated dependencies file for geom_spatial_grid_test.
# This may be replaced when dependencies are built.
