file(REMOVE_RECURSE
  "CMakeFiles/geom_spatial_grid_test.dir/tests/geom_spatial_grid_test.cpp.o"
  "CMakeFiles/geom_spatial_grid_test.dir/tests/geom_spatial_grid_test.cpp.o.d"
  "geom_spatial_grid_test"
  "geom_spatial_grid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_spatial_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
