# Empty dependencies file for graph_traversal_test.
# This may be replaced when dependencies are built.
