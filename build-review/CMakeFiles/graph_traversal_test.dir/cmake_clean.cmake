file(REMOVE_RECURSE
  "CMakeFiles/graph_traversal_test.dir/tests/graph_traversal_test.cpp.o"
  "CMakeFiles/graph_traversal_test.dir/tests/graph_traversal_test.cpp.o.d"
  "graph_traversal_test"
  "graph_traversal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_traversal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
