file(REMOVE_RECURSE
  "CMakeFiles/geom_vec2_test.dir/tests/geom_vec2_test.cpp.o"
  "CMakeFiles/geom_vec2_test.dir/tests/geom_vec2_test.cpp.o.d"
  "geom_vec2_test"
  "geom_vec2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_vec2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
