# Empty dependencies file for geom_vec2_test.
# This may be replaced when dependencies are built.
