file(REMOVE_RECURSE
  "CMakeFiles/algo_oracle_test.dir/tests/algo_oracle_test.cpp.o"
  "CMakeFiles/algo_oracle_test.dir/tests/algo_oracle_test.cpp.o.d"
  "algo_oracle_test"
  "algo_oracle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
