# Empty dependencies file for algo_oracle_test.
# This may be replaced when dependencies are built.
