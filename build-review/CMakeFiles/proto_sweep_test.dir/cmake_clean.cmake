file(REMOVE_RECURSE
  "CMakeFiles/proto_sweep_test.dir/tests/proto_sweep_test.cpp.o"
  "CMakeFiles/proto_sweep_test.dir/tests/proto_sweep_test.cpp.o.d"
  "proto_sweep_test"
  "proto_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proto_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
