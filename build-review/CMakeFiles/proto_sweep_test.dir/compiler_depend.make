# Empty compiler generated dependencies file for proto_sweep_test.
# This may be replaced when dependencies are built.
