# Empty dependencies file for graph_metrics_test.
# This may be replaced when dependencies are built.
