file(REMOVE_RECURSE
  "CMakeFiles/graph_metrics_test.dir/tests/graph_metrics_test.cpp.o"
  "CMakeFiles/graph_metrics_test.dir/tests/graph_metrics_test.cpp.o.d"
  "graph_metrics_test"
  "graph_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
