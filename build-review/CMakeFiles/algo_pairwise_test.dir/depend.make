# Empty dependencies file for algo_pairwise_test.
# This may be replaced when dependencies are built.
