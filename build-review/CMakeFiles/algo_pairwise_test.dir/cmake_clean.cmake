file(REMOVE_RECURSE
  "CMakeFiles/algo_pairwise_test.dir/tests/algo_pairwise_test.cpp.o"
  "CMakeFiles/algo_pairwise_test.dir/tests/algo_pairwise_test.cpp.o.d"
  "algo_pairwise_test"
  "algo_pairwise_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_pairwise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
