# Empty dependencies file for api_engine_test.
# This may be replaced when dependencies are built.
