file(REMOVE_RECURSE
  "CMakeFiles/api_engine_test.dir/tests/api_engine_test.cpp.o"
  "CMakeFiles/api_engine_test.dir/tests/api_engine_test.cpp.o.d"
  "api_engine_test"
  "api_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
