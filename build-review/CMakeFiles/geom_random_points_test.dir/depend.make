# Empty dependencies file for geom_random_points_test.
# This may be replaced when dependencies are built.
