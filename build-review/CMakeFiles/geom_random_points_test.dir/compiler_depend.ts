# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for geom_random_points_test.
