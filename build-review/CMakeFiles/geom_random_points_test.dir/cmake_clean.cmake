file(REMOVE_RECURSE
  "CMakeFiles/geom_random_points_test.dir/tests/geom_random_points_test.cpp.o"
  "CMakeFiles/geom_random_points_test.dir/tests/geom_random_points_test.cpp.o.d"
  "geom_random_points_test"
  "geom_random_points_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_random_points_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
