// Discrete-event simulator core.
//
// A minimal, deterministic event loop: events are (time, sequence)
// ordered callbacks on a virtual clock. The paper's synchronous rounds
// (Section 2) are realized by deadlines on this loop; its asynchronous
// model (Section 4) by unbounded-but-finite random delays injected at
// the channel layer.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace cbtc::sim {

/// Virtual time, in abstract "seconds".
using time_point = double;

class simulator {
 public:
  using action = std::function<void()>;

  /// Current virtual time.
  [[nodiscard]] time_point now() const { return now_; }

  /// Schedules `fn` to run at absolute time `t` (clamped to now()).
  /// Events at equal times run in scheduling order (FIFO).
  void schedule_at(time_point t, action fn);

  /// Schedules `fn` to run `delay` from now.
  void schedule_in(time_point delay, action fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Runs until the queue is empty or `max_events` have been processed.
  /// Returns the number of events processed.
  std::size_t run(std::size_t max_events = static_cast<std::size_t>(-1));

  /// Runs events with time <= `t`, then advances the clock to `t`.
  /// Returns the number of events processed.
  std::size_t run_until(time_point t);

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::size_t events_processed() const { return processed_; }

 private:
  struct event {
    time_point t;
    std::uint64_t seq;
    action fn;
  };
  struct later {
    bool operator()(const event& a, const event& b) const {
      return a.t > b.t || (a.t == b.t && a.seq > b.seq);
    }
  };

  std::priority_queue<event, std::vector<event>, later> queue_;
  time_point now_{0.0};
  std::uint64_t next_seq_{0};
  std::size_t processed_{0};
};

}  // namespace cbtc::sim
