// Discrete-event simulator core.
//
// A minimal, deterministic event loop: events are key-ordered
// callbacks on a virtual clock (sim/scheduler.h). The paper's
// synchronous rounds (Section 2) are realized by deadlines on this
// loop; its asynchronous model (Section 4) by unbounded-but-finite
// random delays injected at the channel layer.
//
// Two tie policies at equal times:
//   * fifo (default) — every schedule call, whatever its type, gets
//     the next global sequence number, so ties run in scheduling
//     order. Byte-identical to the historical behavior; the static
//     protocol runner stays on this.
//   * canonical — typed keys (global < node timer < delivery, then
//     ids / per-node counters). This is the one total order the
//     partitioned engine reproduces region-by-region, so the dynamic
//     engine uses canonical mode for its single-queue reference path.
#pragma once

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "sim/scheduler.h"

namespace cbtc::sim {

enum class tie_policy { fifo, canonical };

class simulator final : public scheduler {
 public:
  explicit simulator(tie_policy ties = tie_policy::fifo) : ties_(ties) {}

  [[nodiscard]] time_point now() const override { return now_; }

  /// Schedules `fn` to run at absolute time `t` (clamped to now()).
  void schedule_at(time_point t, action fn) override;
  void schedule_node(time_point t, graph::node_id owner, action fn) override;
  void schedule_delivery(time_point t, graph::node_id to, graph::node_id from,
                         std::uint64_t tx_seq, std::uint32_t copy, action fn) override;

  /// Runs until the queue is empty or `max_events` have been processed.
  /// Returns the number of events processed.
  std::size_t run(std::size_t max_events = static_cast<std::size_t>(-1));

  /// Runs events with time <= `t`, then advances the clock to `t`.
  /// Returns the number of events processed.
  std::size_t run_until(time_point t) override;

  void set_instant_hook(action fn) override { instant_hook_ = std::move(fn); }
  void request_instant_hook() override { hook_requested_ = true; }

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::size_t events_processed() const override { return processed_; }

 private:
  struct event {
    event_key key;
    action fn;
  };
  struct later {
    bool operator()(const event& a, const event& b) const { return b.key < a.key; }
  };

  event_key make_key(time_point t, std::uint8_t cls, graph::node_id a, graph::node_id b,
                     std::uint64_t seq, std::uint32_t copy);
  void pop_run_top();
  void fire_instant_hook_if_due();

  std::priority_queue<event, std::vector<event>, later> queue_;
  tie_policy ties_;
  time_point now_{0.0};
  std::uint64_t global_seq_{0};
  std::vector<std::uint64_t> node_seq_;
  std::size_t processed_{0};
  bool hook_requested_{false};
  action instant_hook_;
};

}  // namespace cbtc::sim
