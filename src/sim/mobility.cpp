#include "sim/mobility.h"

#include <algorithm>
#include <cmath>

namespace cbtc::sim {

random_waypoint::random_waypoint(medium& m, waypoint_params params, std::uint64_t seed)
    : medium_(m), params_(params), rng_(seed), states_(m.num_nodes()) {
  for (std::size_t i = 0; i < states_.size(); ++i) retarget(i);
}

void random_waypoint::retarget(std::size_t i) {
  std::uniform_real_distribution<double> ux(params_.region.min.x, params_.region.max.x);
  std::uniform_real_distribution<double> uy(params_.region.min.y, params_.region.max.y);
  std::uniform_real_distribution<double> us(params_.min_speed, params_.max_speed);
  states_[i].target = {ux(rng_), uy(rng_)};
  states_[i].speed = us(rng_);
}

void random_waypoint::start(time_point tick, time_point until) {
  medium_.sim().schedule_in(tick, [this, tick, until] { step(tick, until); });
}

void random_waypoint::step(time_point tick, time_point until) {
  const time_point now = medium_.sim().now();
  for (std::size_t i = 0; i < states_.size(); ++i) {
    node_state& st = states_[i];
    if (now < st.pause_until) continue;
    const geom::vec2 pos = medium_.position(static_cast<node_id>(i));
    const geom::vec2 to_target = st.target - pos;
    const double dist = to_target.norm();
    const double step_len = st.speed * tick;
    if (dist <= step_len) {
      medium_.set_position(static_cast<node_id>(i), st.target);
      st.pause_until = now + params_.pause;
      retarget(i);
    } else {
      medium_.set_position(static_cast<node_id>(i), pos + to_target * (step_len / dist));
    }
  }
  if (now + tick <= until) {
    medium_.sim().schedule_in(tick, [this, tick, until] { step(tick, until); });
  }
}

bouncing_mobility::bouncing_mobility(medium& m, geom::bbox region,
                                     std::vector<geom::vec2> velocities)
    : medium_(m), region_(region), velocities_(std::move(velocities)) {
  velocities_.resize(m.num_nodes());
}

void bouncing_mobility::start(time_point tick, time_point until) {
  medium_.sim().schedule_in(tick, [this, tick, until] { step(tick, until); });
}

void bouncing_mobility::step(time_point tick, time_point until) {
  const time_point now = medium_.sim().now();
  for (std::size_t i = 0; i < velocities_.size(); ++i) {
    geom::vec2 p = medium_.position(static_cast<node_id>(i)) + velocities_[i] * tick;
    geom::vec2& v = velocities_[i];
    if (p.x < region_.min.x || p.x > region_.max.x) {
      v.x = -v.x;
      p.x = std::clamp(p.x, region_.min.x, region_.max.x);
    }
    if (p.y < region_.min.y || p.y > region_.max.y) {
      v.y = -v.y;
      p.y = std::clamp(p.y, region_.min.y, region_.max.y);
    }
    medium_.set_position(static_cast<node_id>(i), p);
  }
  if (now + tick <= until) {
    medium_.sim().schedule_in(tick, [this, tick, until] { step(tick, until); });
  }
}

}  // namespace cbtc::sim
