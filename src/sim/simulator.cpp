#include "sim/simulator.h"

#include <utility>

namespace cbtc::sim {

event_key simulator::make_key(time_point t, std::uint8_t cls, graph::node_id a, graph::node_id b,
                              std::uint64_t seq, std::uint32_t copy) {
  if (t < now_) t = now_;
  if (ties_ == tie_policy::fifo) {
    // Degenerate key: (t, global scheduling order) — the historical
    // FIFO comparator, whatever the event's type.
    return event_key{t, 0, 0, 0, global_seq_++, 0};
  }
  return event_key{t, cls, a, b, seq, copy};
}

void simulator::schedule_at(time_point t, action fn) {
  const std::uint64_t seq = ties_ == tie_policy::canonical ? global_seq_++ : 0;
  queue_.push({make_key(t, 0, 0, 0, seq, 0), std::move(fn)});
}

void simulator::schedule_node(time_point t, graph::node_id owner, action fn) {
  std::uint64_t seq = 0;
  if (ties_ == tie_policy::canonical) {
    if (owner >= node_seq_.size()) node_seq_.resize(owner + 1, 0);
    seq = node_seq_[owner]++;
  }
  queue_.push({make_key(t, 1, owner, 0, seq, 0), std::move(fn)});
}

void simulator::schedule_delivery(time_point t, graph::node_id to, graph::node_id from,
                                  std::uint64_t tx_seq, std::uint32_t copy, action fn) {
  queue_.push({make_key(t, 2, to, from, tx_seq, copy), std::move(fn)});
}

void simulator::pop_run_top() {
  // priority_queue::top returns const&; the action must be moved out
  // before pop, so copy the metadata and move the closure.
  event ev = std::move(const_cast<event&>(queue_.top()));
  queue_.pop();
  now_ = ev.key.t;
  ++processed_;
  ev.fn();
}

void simulator::fire_instant_hook_if_due() {
  // The instant at now_ is settled once no pending event shares it.
  while (hook_requested_ && (queue_.empty() || queue_.top().key.t > now_)) {
    hook_requested_ = false;
    if (!instant_hook_) break;
    instant_hook_();
  }
}

std::size_t simulator::run(std::size_t max_events) {
  std::size_t count = 0;
  while (!queue_.empty() && count < max_events) {
    pop_run_top();
    ++count;
    fire_instant_hook_if_due();
  }
  return count;
}

std::size_t simulator::run_until(time_point t) {
  std::size_t count = 0;
  while (!queue_.empty() && queue_.top().key.t <= t) {
    pop_run_top();
    ++count;
    fire_instant_hook_if_due();
  }
  fire_instant_hook_if_due();
  if (now_ < t) now_ = t;
  return count;
}

}  // namespace cbtc::sim
