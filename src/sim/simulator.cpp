#include "sim/simulator.h"

#include <utility>

namespace cbtc::sim {

void simulator::schedule_at(time_point t, action fn) {
  if (t < now_) t = now_;
  queue_.push({t, next_seq_++, std::move(fn)});
}

std::size_t simulator::run(std::size_t max_events) {
  std::size_t count = 0;
  while (!queue_.empty() && count < max_events) {
    // priority_queue::top returns const&; the action must be moved out
    // before pop, so copy the metadata and move the closure.
    event ev = std::move(const_cast<event&>(queue_.top()));
    queue_.pop();
    now_ = ev.t;
    ++count;
    ++processed_;
    ev.fn();
  }
  return count;
}

std::size_t simulator::run_until(time_point t) {
  std::size_t count = 0;
  while (!queue_.empty() && queue_.top().t <= t) {
    event ev = std::move(const_cast<event&>(queue_.top()));
    queue_.pop();
    now_ = ev.t;
    ++count;
    ++processed_;
    ev.fn();
  }
  if (now_ < t) now_ = t;
  return count;
}

}  // namespace cbtc::sim
