// Convergecast data plane: periodic per-node sensor readings routed
// hop-by-hop toward a sink over the *current* reconfigured topology.
//
// This is the workload the paper's energy argument is about — the
// reduced topology still has to carry traffic. Each non-sink node
// generates one reading every `period`, enqueues it into a bounded
// FIFO, and a per-node service timer forwards one packet every
// `service_time` (the link-contention model: a radio transmits at most
// one packet per service interval). Forwarding goes through
// medium::unicast at the real power required for the hop, so channel
// delays, loss, and per-node energy accounting are shared with the
// protocol stack. Next-hop tables are shortest-power-path trees rooted
// at the sink, recomputed lazily: topology / liveness / position
// deltas only mark the tables stale (a relaxed atomic flag), and a
// periodic class-0 refresh event rebuilds them off the live
// symmetric-closure view — the incremental pattern the closure_mirror
// already provides.
//
// Determinism contract (see docs/ARCHITECTURE.md): every mutation is
// owned by exactly one event lane. Generation and service timers are
// class-1 events of the owning node; packet receptions are class-2
// events of the receiver; route refreshes are class-0 (serial). All
// per-node counters, queues, and energy ledgers are therefore touched
// only by their owner's events, which both engines execute in the one
// canonical key order — so every statistic, including the
// floating-point delay and energy folds, is bitwise-identical at any
// region count x thread count. The driver draws no randomness, so it
// never perturbs the engine-selection gate or the channel RNG.
#pragma once

#include <any>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "graph/types.h"
#include "sim/medium.h"
#include "sim/scheduler.h"

namespace cbtc::sim {

struct convergecast_config {
  node_id sink{0};
  double period{5.0};        // seconds between readings at each node
  double start{0.0};         // traffic plane arms at this instant
  double until{0.0};         // last instant new readings may be generated
  double horizon{0.0};       // end of run (in-flight packets may still land)
  double service_time{0.05}; // one transmission per node per interval
  double route_refresh{1.0}; // cadence of the stale-table rebuild
  std::size_t queue_capacity{8};
};

/// Raw counters folded in node order by finish(); derived metrics
/// (delivery ratio, throughput, average delay) live in api::traffic_report.
struct convergecast_stats {
  std::uint64_t generated{0};
  std::uint64_t delivered{0};
  std::uint64_t forwards{0};        // transmissions, origin sends included
  std::uint64_t queue_drops{0};     // bounded-FIFO overflow
  std::uint64_t no_route_drops{0};  // no path to the sink at service time
  std::uint64_t dead_drops{0};      // queue flushed because the node crashed
  std::uint64_t lost_in_air{0};     // sent but never received (range, channel, in flight)
  std::uint64_t queued_at_end{0};
  std::uint64_t route_refreshes{0};
  std::uint64_t queue_peak{0};      // max queue depth seen at any node
  double delay_sum{0.0};            // over delivered packets
  double forwarding_energy{0.0};    // traffic-only energy, all nodes
  double energy_mean{0.0};          // over non-sink nodes
  double energy_max{0.0};
  double energy_stddev{0.0};
};

class convergecast {
 public:
  /// Enumerates the current live neighbors of a node (nothing when the
  /// node is down). Called only from class-0 refresh events, so a
  /// closure_mirror / live index view is safe to read.
  using neighbor_fn = std::function<void(node_id, const std::function<void(node_id)>&)>;
  /// Power node `tx` must spend to reach node `rx` right now.
  using cost_fn = std::function<double(node_id tx, node_id rx)>;

  /// The medium must already have every node registered and the
  /// protocol handlers installed: start() wraps them, passing foreign
  /// payloads through untouched.
  convergecast(medium& m, convergecast_config cfg, neighbor_fn neighbors, cost_fn cost);

  /// Wraps handlers and schedules the generation timers and the first
  /// route refresh. Call before scheduler::run_until.
  void start();

  /// Thread-safe: marks the next-hop tables stale. Chain this into
  /// topology / liveness / move hooks.
  void mark_routes_stale() { dirty_.store(true, std::memory_order_relaxed); }

  /// Optional: runs (serially) right before each actual route
  /// recompute — lets a caller without an incremental closure mirror
  /// snapshot the topology its neighbor_fn will then read.
  void set_refresh_prepare(std::function<void()> fn) { prepare_ = std::move(fn); }

  /// Folds the per-node ledgers into stats() in node order. Call once
  /// after the run completes.
  void finish();

  [[nodiscard]] const convergecast_stats& stats() const { return stats_; }
  [[nodiscard]] double energy(node_id u) const { return energy_[u]; }
  [[nodiscard]] const convergecast_config& config() const { return cfg_; }

  /// The payload carried through medium::unicast.
  struct packet {
    node_id origin{0};
    time_point created{0.0};
  };

 private:
  void refresh_routes();
  void on_generate(node_id u);
  void ensure_service(node_id u);
  void on_service(node_id u);
  void on_receive(node_id u, const packet& p);
  void enqueue(node_id u, const packet& p);

  medium& medium_;
  convergecast_config cfg_;
  neighbor_fn neighbors_;
  cost_fn cost_;
  std::function<void()> prepare_;
  std::size_t n_;

  std::atomic<bool> dirty_{true};
  std::vector<node_id> next_hop_;   // invalid_node = unrouted
  std::vector<double> hop_power_;   // cost of the hop to next_hop_
  std::vector<double> dist_;        // refresh scratch

  // Per-node state, touched only by the owner's events (uint8_t, not
  // vector<bool>: adjacent bits would share bytes across lanes).
  std::vector<std::deque<packet>> queue_;
  std::vector<std::uint8_t> service_pending_;
  std::vector<std::uint64_t> generated_;
  std::vector<std::uint64_t> queue_drops_;
  std::vector<std::uint64_t> no_route_drops_;
  std::vector<std::uint64_t> dead_drops_;
  std::vector<std::uint64_t> forwards_;
  std::vector<std::uint64_t> sent_;
  std::vector<std::uint64_t> arrived_;
  std::vector<std::uint64_t> queue_peak_;
  std::vector<double> energy_;

  // Written only from the sink's delivery lane / class-0 events.
  std::uint64_t delivered_{0};
  double delay_sum_{0.0};
  std::uint64_t route_refreshes_{0};

  convergecast_stats stats_;
};

}  // namespace cbtc::sim
