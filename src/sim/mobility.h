// Mobility drivers.
//
// Section 4 of the paper handles mobile nodes via reconfiguration
// events (join / leave / aChange). These drivers move nodes registered
// with a medium on periodic ticks, deterministically from a seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "geom/bbox.h"
#include "geom/vec2.h"
#include "sim/medium.h"
#include "sim/simulator.h"

namespace cbtc::sim {

struct waypoint_params {
  geom::bbox region;
  double min_speed{1.0};   // distance units per time unit
  double max_speed{10.0};
  double pause{0.0};       // dwell time at each waypoint
};

/// Random-waypoint mobility: each node walks to a uniformly random
/// target at a uniformly random speed, pauses, and repeats.
class random_waypoint {
 public:
  random_waypoint(medium& m, waypoint_params params, std::uint64_t seed);

  /// Starts moving nodes: positions are updated every `tick` time units
  /// until `until` (simulation time).
  void start(time_point tick, time_point until);

  [[nodiscard]] const waypoint_params& params() const { return params_; }

 private:
  struct node_state {
    geom::vec2 target;
    double speed{0.0};
    time_point pause_until{0.0};
  };

  void step(time_point tick, time_point until);
  void retarget(std::size_t i);

  medium& medium_;
  waypoint_params params_;
  std::mt19937_64 rng_;
  std::vector<node_state> states_;
};

/// Constant-velocity mobility with elastic reflection at the region
/// boundary; handy for tests that need predictable motion.
class bouncing_mobility {
 public:
  bouncing_mobility(medium& m, geom::bbox region, std::vector<geom::vec2> velocities);

  void start(time_point tick, time_point until);

 private:
  void step(time_point tick, time_point until);

  medium& medium_;
  geom::bbox region_;
  std::vector<geom::vec2> velocities_;
};

}  // namespace cbtc::sim
