#include "sim/medium.h"

#include <utility>

namespace cbtc::sim {

medium::medium(simulator& sim, radio::link_model lm, radio::channel ch,
               radio::direction_estimator de)
    : sim_(sim), link_(std::move(lm)), channel_(std::move(ch)), direction_(std::move(de)) {}

node_id medium::add_node(const geom::vec2& position, rx_handler handler) {
  const auto id = static_cast<node_id>(positions_.size());
  positions_.push_back(position);
  handlers_.push_back(std::move(handler));
  up_.push_back(true);
  node_energy_.push_back(0.0);
  return id;
}

void medium::broadcast(node_id from, double tx_power, std::any payload) {
  if (!up_[from]) return;
  ++stats_.broadcasts;
  stats_.tx_energy += tx_power;
  node_energy_[from] += tx_power;
  const geom::vec2 origin = positions_[from];
  for (node_id to = 0; to < positions_.size(); ++to) {
    if (to == from || !up_[to]) continue;
    const double d = geom::distance(origin, positions_[to]);
    if (!link_.reaches_at(tx_power, d, from, to, origin, positions_[to])) continue;
    deliver(from, to, tx_power, d, payload);
  }
}

void medium::unicast(node_id from, node_id to, double tx_power, std::any payload) {
  if (!up_[from]) return;
  ++stats_.unicasts;
  stats_.tx_energy += tx_power;
  node_energy_[from] += tx_power;
  if (to >= positions_.size() || !up_[to]) return;
  const double d = geom::distance(positions_[from], positions_[to]);
  if (!link_.reaches_at(tx_power, d, from, to, positions_[from], positions_[to])) {
    return;  // out of range: radio silence
  }
  deliver(from, to, tx_power, d, payload);
}

void medium::deliver(node_id from, node_id to, double tx_power, double distance,
                     const std::any& payload) {
  const std::vector<double> delays = channel_.sample_deliveries(distance);
  if (delays.empty()) {
    ++stats_.drops;
    return;
  }
  for (double delay : delays) {
    rx_info info;
    info.sender = from;
    info.tx_power = tx_power;
    // Gain-adjusted reception power: the receiver's estimate tx/rx
    // then equals the true per-link required power p(d)/gain, so the
    // protocol's power arithmetic works unchanged under any model.
    info.rx_power = link_.rx_power_at(tx_power, distance, from, to, positions_[from],
                                      positions_[to]);
    info.direction = direction_.measure(positions_[to], positions_[from]);
    sim_.schedule_in(delay, [this, to, info, payload]() mutable {
      if (!up_[to]) return;  // crashed while the message was in flight
      info.time = sim_.now();
      ++stats_.deliveries;
      if (handlers_[to]) handlers_[to](info, payload);
    });
  }
}

}  // namespace cbtc::sim
