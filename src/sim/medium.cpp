#include "sim/medium.h"

#include <utility>

namespace cbtc::sim {

medium::medium(scheduler& sim, radio::link_model lm, radio::channel ch,
               radio::direction_estimator de)
    : sim_(sim), link_(std::move(lm)), channel_(std::move(ch)), direction_(std::move(de)) {}

node_id medium::add_node(const geom::vec2& position, rx_handler handler) {
  const auto id = static_cast<node_id>(positions_.size());
  positions_.push_back(position);
  handlers_.push_back(std::move(handler));
  up_.push_back(true);
  node_energy_.push_back(0.0);
  node_tx_seq_.push_back(0);
  return id;
}

void medium::broadcast(node_id from, double tx_power, std::any payload) {
  if (!up_[from]) return;
  broadcasts_.fetch_add(1, std::memory_order_relaxed);
  node_energy_[from] += tx_power;
  const std::uint64_t tx_seq = node_tx_seq_[from]++;
  const geom::vec2 origin = positions_[from];
  const auto try_deliver = [&](node_id to) {
    if (to == from || !up_[to]) return;
    const double d = geom::distance(origin, positions_[to]);
    if (!link_.reaches_at(tx_power, d, from, to, origin, positions_[to])) return;
    deliver(from, to, tx_power, tx_seq, d, payload);
  };
  if (directory_) {
    // Directory candidates come sorted ascending, so delivery order
    // matches the full scan's to = 0..n sweep exactly.
    for (const node_id to : directory_(from)) try_deliver(to);
  } else {
    for (node_id to = 0; to < positions_.size(); ++to) try_deliver(to);
  }
}

void medium::unicast(node_id from, node_id to, double tx_power, std::any payload) {
  if (!up_[from]) return;
  unicasts_.fetch_add(1, std::memory_order_relaxed);
  node_energy_[from] += tx_power;
  const std::uint64_t tx_seq = node_tx_seq_[from]++;
  if (to >= positions_.size() || !up_[to]) return;
  const double d = geom::distance(positions_[from], positions_[to]);
  if (!link_.reaches_at(tx_power, d, from, to, positions_[from], positions_[to])) {
    return;  // out of range: radio silence
  }
  deliver(from, to, tx_power, tx_seq, d, payload);
}

void medium::deliver(node_id from, node_id to, double tx_power, std::uint64_t tx_seq,
                     double distance, const std::any& payload) {
  const std::vector<double> delays = channel_.sample_deliveries(distance);
  if (delays.empty()) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::uint32_t copy = 0;
  for (const double delay : delays) {
    rx_info info;
    info.sender = from;
    info.tx_power = tx_power;
    // Gain-adjusted reception power: the receiver's estimate tx/rx
    // then equals the true per-link required power p(d)/gain, so the
    // protocol's power arithmetic works unchanged under any model.
    info.rx_power = link_.rx_power_at(tx_power, distance, from, to, positions_[from],
                                      positions_[to]);
    info.direction = direction_.measure(positions_[to], positions_[from]);
    sim_.schedule_delivery(sim_.now() + delay, to, from, tx_seq, copy++,
                           [this, to, info, payload]() mutable {
                             if (!up_[to]) return;  // crashed while in flight
                             info.time = sim_.now();
                             deliveries_.fetch_add(1, std::memory_order_relaxed);
                             if (handlers_[to]) handlers_[to](info, payload);
                           });
  }
}

medium_stats medium::stats() const {
  medium_stats s;
  s.broadcasts = broadcasts_.load(std::memory_order_relaxed);
  s.unicasts = unicasts_.load(std::memory_order_relaxed);
  s.deliveries = deliveries_.load(std::memory_order_relaxed);
  s.drops = drops_.load(std::memory_order_relaxed);
  double energy = 0.0;
  for (const double e : node_energy_) energy += e;
  s.tx_energy = energy;
  return s;
}

}  // namespace cbtc::sim
