// The shared wireless medium.
//
// Implements the paper's three communication primitives (Section 2):
//   bcast(u, p, m) — delivered to every v with p(d(u,v)) <= p,
//   send(u, p, m, v) — point-to-point, delivered if p(d(u,v)) <= p,
//   recv(u, m, v) — the receiver learns the reception power p' and can
//                   estimate p(d(u,v)) from (p, p'), plus the direction
//                   of arrival (the Angle-of-Arrival assumption).
//
// Crash failures (Section 4) are modeled by marking nodes down: a down
// node neither transmits nor receives. Message loss / duplication /
// latency come from the radio::channel. Positions may change between
// events (mobility); range membership is evaluated at transmit time.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <vector>

#include "geom/vec2.h"
#include "graph/types.h"
#include "radio/channel.h"
#include "radio/direction.h"
#include "radio/power_model.h"
#include "radio/propagation.h"
#include "sim/simulator.h"

namespace cbtc::sim {

using graph::node_id;

/// Physical-layer metadata handed to a receiver along with a message.
struct rx_info {
  node_id sender{graph::invalid_node};
  double tx_power{0.0};    // advertised in every message header (paper, Fig. 1)
  double rx_power{0.0};    // measured reception power
  double direction{0.0};   // angle of arrival at the receiver, [0, 2*pi)
  time_point time{0.0};    // delivery time
};

/// Per-node message handler.
using rx_handler = std::function<void(const rx_info&, const std::any& payload)>;

struct medium_stats {
  std::uint64_t broadcasts{0};
  std::uint64_t unicasts{0};
  std::uint64_t deliveries{0};
  std::uint64_t drops{0};       // channel losses
  double tx_energy{0.0};        // sum of tx_power over transmissions
};

class medium {
 public:
  /// `lm` carries the power model plus the per-link propagation; a
  /// bare radio::power_model converts implicitly (isotropic gains,
  /// bitwise-identical delivery decisions).
  medium(simulator& sim, radio::link_model lm, radio::channel ch = radio::channel{},
         radio::direction_estimator de = radio::direction_estimator{});

  /// Registers a node; returns its id (dense, starting at 0).
  node_id add_node(const geom::vec2& position, rx_handler handler);

  [[nodiscard]] std::size_t num_nodes() const { return positions_.size(); }
  [[nodiscard]] const geom::vec2& position(node_id u) const { return positions_[u]; }
  [[nodiscard]] const std::vector<geom::vec2>& positions() const { return positions_; }
  void set_position(node_id u, const geom::vec2& p) {
    positions_[u] = p;
    if (move_hook_) move_hook_(u, p);
  }
  void set_handler(node_id u, rx_handler handler) { handlers_[u] = std::move(handler); }

  /// Observation hooks for engines that mirror medium state (e.g. an
  /// incremental live-neighbor index): `move` fires after every
  /// position update, `liveness` after every actual up/down flip.
  using move_hook = std::function<void(node_id, const geom::vec2&)>;
  using liveness_hook = std::function<void(node_id, bool)>;
  void set_move_hook(move_hook h) { move_hook_ = std::move(h); }
  void set_liveness_hook(liveness_hook h) { liveness_hook_ = std::move(h); }

  /// bcast(u, p, m): schedules delivery to every live node in range.
  void broadcast(node_id from, double tx_power, std::any payload);

  /// send(u, p, m, v): schedules point-to-point delivery (silently
  /// undeliverable if v is out of range — the radio cannot know).
  void unicast(node_id from, node_id to, double tx_power, std::any payload);

  /// Crash / recover (Section 4 failure model).
  void crash(node_id u) {
    const bool was_up = up_[u];
    up_[u] = false;
    if (was_up && liveness_hook_) liveness_hook_(u, false);
  }
  void restart(node_id u) {
    const bool was_up = up_[u];
    up_[u] = true;
    if (!was_up && liveness_hook_) liveness_hook_(u, true);
  }
  [[nodiscard]] bool is_up(node_id u) const { return up_[u]; }

  [[nodiscard]] const radio::power_model& power() const { return link_.power(); }
  [[nodiscard]] const radio::link_model& link() const { return link_; }
  [[nodiscard]] const medium_stats& stats() const { return stats_; }
  /// Cumulative transmit energy spent by one node (sum of tx powers).
  [[nodiscard]] double tx_energy(node_id u) const { return node_energy_[u]; }
  [[nodiscard]] simulator& sim() { return sim_; }

 private:
  void deliver(node_id from, node_id to, double tx_power, double distance,
               const std::any& payload);

  simulator& sim_;
  radio::link_model link_;
  radio::channel channel_;
  radio::direction_estimator direction_;
  std::vector<geom::vec2> positions_;
  std::vector<rx_handler> handlers_;
  std::vector<bool> up_;
  std::vector<double> node_energy_;
  medium_stats stats_;
  move_hook move_hook_;
  liveness_hook liveness_hook_;
};

}  // namespace cbtc::sim
