// The shared wireless medium.
//
// Implements the paper's three communication primitives (Section 2):
//   bcast(u, p, m) — delivered to every v with p(d(u,v)) <= p,
//   send(u, p, m, v) — point-to-point, delivered if p(d(u,v)) <= p,
//   recv(u, m, v) — the receiver learns the reception power p' and can
//                   estimate p(d(u,v)) from (p, p'), plus the direction
//                   of arrival (the Angle-of-Arrival assumption).
//
// Crash failures (Section 4) are modeled by marking nodes down: a down
// node neither transmits nor receives. Message loss / duplication /
// latency come from the radio::channel. Positions may change between
// events (mobility); range membership is evaluated at transmit time.
//
// The medium schedules through the sim::scheduler interface with typed
// events (timers via schedule_self, deliveries via schedule_delivery
// with per-sender transmission counters), so the same protocol stack
// runs on the serial simulator and the partitioned engine. Transmit /
// delivery counters are relaxed atomics — their sums are independent
// of event interleaving — and stats() folds per-node energy in node
// order, so reported totals are bitwise engine-independent.
#pragma once

#include <any>
#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "geom/vec2.h"
#include "graph/types.h"
#include "radio/channel.h"
#include "radio/direction.h"
#include "radio/power_model.h"
#include "radio/propagation.h"
#include "sim/scheduler.h"

namespace cbtc::sim {

using graph::node_id;

/// Physical-layer metadata handed to a receiver along with a message.
struct rx_info {
  node_id sender{graph::invalid_node};
  double tx_power{0.0};    // advertised in every message header (paper, Fig. 1)
  double rx_power{0.0};    // measured reception power
  double direction{0.0};   // angle of arrival at the receiver, [0, 2*pi)
  time_point time{0.0};    // delivery time
};

/// Per-node message handler.
using rx_handler = std::function<void(const rx_info&, const std::any& payload)>;

struct medium_stats {
  std::uint64_t broadcasts{0};
  std::uint64_t unicasts{0};
  std::uint64_t deliveries{0};
  std::uint64_t drops{0};       // channel losses
  double tx_energy{0.0};        // sum of tx_power over transmissions
};

class medium {
 public:
  /// `lm` carries the power model plus the per-link propagation; a
  /// bare radio::power_model converts implicitly (isotropic gains,
  /// bitwise-identical delivery decisions).
  medium(scheduler& sim, radio::link_model lm, radio::channel ch = radio::channel{},
         radio::direction_estimator de = radio::direction_estimator{});

  /// Registers a node; returns its id (dense, starting at 0).
  node_id add_node(const geom::vec2& position, rx_handler handler);

  [[nodiscard]] std::size_t num_nodes() const { return positions_.size(); }
  [[nodiscard]] const geom::vec2& position(node_id u) const { return positions_[u]; }
  [[nodiscard]] const std::vector<geom::vec2>& positions() const { return positions_; }
  void set_position(node_id u, const geom::vec2& p) {
    positions_[u] = p;
    if (move_hook_) move_hook_(u, p);
  }
  void set_handler(node_id u, rx_handler handler) { handlers_[u] = std::move(handler); }
  /// Current handler of `u` — lets layered protocols (e.g. the traffic
  /// data plane) wrap an installed handler instead of replacing it.
  [[nodiscard]] const rx_handler& handler(node_id u) const { return handlers_[u]; }

  /// Observation hooks for engines that mirror medium state (e.g. an
  /// incremental live-neighbor index): `move` fires after every
  /// position update, `liveness` after every actual up/down flip.
  using move_hook = std::function<void(node_id, const geom::vec2&)>;
  using liveness_hook = std::function<void(node_id, bool)>;
  void set_move_hook(move_hook h) { move_hook_ = std::move(h); }
  void set_liveness_hook(liveness_hook h) { liveness_hook_ = std::move(h); }

  /// Optional broadcast routing directory: returns, for a sender, an
  /// ascending-id superset of every node any transmit power can reach
  /// (e.g. live_neighbor_index::neighbors — the live max-power
  /// neighborhood). The per-candidate range check still applies, so
  /// deliveries are bitwise-identical to the full O(n) scan, just
  /// O(degree). Cleared with an empty function.
  using broadcast_directory = std::function<std::span<const node_id>(node_id)>;
  void set_broadcast_directory(broadcast_directory d) { directory_ = std::move(d); }

  /// bcast(u, p, m): schedules delivery to every live node in range.
  void broadcast(node_id from, double tx_power, std::any payload);

  /// send(u, p, m, v): schedules point-to-point delivery (silently
  /// undeliverable if v is out of range — the radio cannot know).
  void unicast(node_id from, node_id to, double tx_power, std::any payload);

  /// Schedules a class-1 timer event owned by `owner` — the one safe
  /// way for protocol code to self-schedule on either engine.
  void schedule_self(node_id owner, time_point delay, scheduler::action fn) {
    sim_.schedule_node(sim_.now() + delay, owner, std::move(fn));
  }

  /// Crash / recover (Section 4 failure model).
  void crash(node_id u) {
    const bool was_up = up_[u];
    up_[u] = false;
    if (was_up && liveness_hook_) liveness_hook_(u, false);
  }
  void restart(node_id u) {
    const bool was_up = up_[u];
    up_[u] = true;
    if (!was_up && liveness_hook_) liveness_hook_(u, true);
  }
  [[nodiscard]] bool is_up(node_id u) const { return up_[u]; }

  [[nodiscard]] const radio::power_model& power() const { return link_.power(); }
  [[nodiscard]] const radio::link_model& link() const { return link_; }
  /// Materialized counters; tx_energy = sum of per-node energies in
  /// node order (engine-independent by construction).
  [[nodiscard]] medium_stats stats() const;
  /// Cumulative transmit energy spent by one node (sum of tx powers).
  [[nodiscard]] double tx_energy(node_id u) const { return node_energy_[u]; }
  [[nodiscard]] scheduler& sim() { return sim_; }

 private:
  void deliver(node_id from, node_id to, double tx_power, std::uint64_t tx_seq, double distance,
               const std::any& payload);

  scheduler& sim_;
  radio::link_model link_;
  radio::channel channel_;
  radio::direction_estimator direction_;
  std::vector<geom::vec2> positions_;
  std::vector<rx_handler> handlers_;
  std::vector<bool> up_;
  std::vector<double> node_energy_;
  std::vector<std::uint64_t> node_tx_seq_;
  std::atomic<std::uint64_t> broadcasts_{0};
  std::atomic<std::uint64_t> unicasts_{0};
  std::atomic<std::uint64_t> deliveries_{0};
  std::atomic<std::uint64_t> drops_{0};
  broadcast_directory directory_;
  move_hook move_hook_;
  liveness_hook liveness_hook_;
};

}  // namespace cbtc::sim
