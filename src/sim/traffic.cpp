#include "sim/traffic.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <utility>

namespace cbtc::sim {

convergecast::convergecast(medium& m, convergecast_config cfg, neighbor_fn neighbors,
                           cost_fn cost)
    : medium_(m),
      cfg_(cfg),
      neighbors_(std::move(neighbors)),
      cost_(std::move(cost)),
      n_(m.num_nodes()),
      next_hop_(n_, graph::invalid_node),
      hop_power_(n_, 0.0),
      queue_(n_),
      service_pending_(n_, 0),
      generated_(n_, 0),
      queue_drops_(n_, 0),
      no_route_drops_(n_, 0),
      dead_drops_(n_, 0),
      forwards_(n_, 0),
      sent_(n_, 0),
      arrived_(n_, 0),
      queue_peak_(n_, 0),
      energy_(n_, 0.0) {}

void convergecast::start() {
  for (node_id u = 0; u < n_; ++u) {
    rx_handler prev = medium_.handler(u);
    medium_.set_handler(
        u, [this, u, prev = std::move(prev)](const rx_info& info, const std::any& payload) {
          if (payload.type() == typeid(packet)) {
            on_receive(u, std::any_cast<const packet&>(payload));
            return;
          }
          if (prev) prev(info, payload);
        });
  }
  medium_.sim().schedule_at(cfg_.start, [this] { refresh_routes(); });
  const time_point first = cfg_.start + cfg_.period;
  if (first > cfg_.until) return;
  for (node_id u = 0; u < n_; ++u) {
    if (u == cfg_.sink) continue;
    medium_.sim().schedule_node(first, u, [this, u] { on_generate(u); });
  }
}

void convergecast::refresh_routes() {
  if (dirty_.exchange(false, std::memory_order_relaxed)) {
    ++route_refreshes_;
    if (prepare_) prepare_();
    constexpr double inf = std::numeric_limits<double>::infinity();
    dist_.assign(n_, inf);
    std::fill(next_hop_.begin(), next_hop_.end(), graph::invalid_node);
    std::fill(hop_power_.begin(), hop_power_.end(), 0.0);
    using entry = std::pair<double, node_id>;
    std::priority_queue<entry, std::vector<entry>, std::greater<>> heap;
    dist_[cfg_.sink] = 0.0;
    heap.push({0.0, cfg_.sink});
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (d > dist_[u]) continue;
      neighbors_(u, [&](node_id v) {
        const double w = cost_(v, u);  // v transmits toward the sink via u
        const double nd = d + w;
        if (nd < dist_[v]) {
          dist_[v] = nd;
          next_hop_[v] = u;
          hop_power_[v] = w;
          heap.push({nd, v});
        }
      });
    }
  }
  const time_point next = medium_.sim().now() + cfg_.route_refresh;
  if (next <= cfg_.horizon) medium_.sim().schedule_at(next, [this] { refresh_routes(); });
}

void convergecast::on_generate(node_id u) {
  if (medium_.is_up(u)) {
    ++generated_[u];
    enqueue(u, packet{u, medium_.sim().now()});
    ensure_service(u);
  }
  const time_point next = medium_.sim().now() + cfg_.period;
  if (next <= cfg_.until) medium_.schedule_self(u, cfg_.period, [this, u] { on_generate(u); });
}

void convergecast::enqueue(node_id u, const packet& p) {
  if (queue_[u].size() >= cfg_.queue_capacity) {
    ++queue_drops_[u];
    return;
  }
  queue_[u].push_back(p);
  queue_peak_[u] = std::max<std::uint64_t>(queue_peak_[u], queue_[u].size());
}

void convergecast::ensure_service(node_id u) {
  if (service_pending_[u] || queue_[u].empty()) return;
  service_pending_[u] = 1;
  medium_.schedule_self(u, cfg_.service_time, [this, u] { on_service(u); });
}

void convergecast::on_service(node_id u) {
  service_pending_[u] = 0;
  if (!medium_.is_up(u)) {
    dead_drops_[u] += queue_[u].size();
    queue_[u].clear();
    return;
  }
  if (queue_[u].empty()) return;
  const node_id next = next_hop_[u];
  if (next == graph::invalid_node) {
    ++no_route_drops_[u];
    queue_[u].pop_front();
  } else {
    const packet p = queue_[u].front();
    queue_[u].pop_front();
    ++forwards_[u];
    ++sent_[u];
    energy_[u] += hop_power_[u];
    medium_.unicast(u, next, hop_power_[u], std::any(p));
  }
  ensure_service(u);
}

void convergecast::on_receive(node_id u, const packet& p) {
  ++arrived_[u];
  if (u == cfg_.sink) {
    ++delivered_;
    delay_sum_ += medium_.sim().now() - p.created;
    return;
  }
  enqueue(u, p);
  ensure_service(u);
}

void convergecast::finish() {
  stats_ = convergecast_stats{};
  std::uint64_t sent_sum = 0;
  std::uint64_t arrived_sum = 0;
  double energy_sum = 0.0;
  double energy_sq = 0.0;
  for (node_id u = 0; u < n_; ++u) {
    stats_.generated += generated_[u];
    stats_.forwards += forwards_[u];
    stats_.queue_drops += queue_drops_[u];
    stats_.no_route_drops += no_route_drops_[u];
    stats_.dead_drops += dead_drops_[u];
    stats_.queued_at_end += queue_[u].size();
    stats_.queue_peak = std::max(stats_.queue_peak, queue_peak_[u]);
    sent_sum += sent_[u];
    arrived_sum += arrived_[u];
    stats_.forwarding_energy += energy_[u];
    if (u != cfg_.sink) {
      energy_sum += energy_[u];
      energy_sq += energy_[u] * energy_[u];
      stats_.energy_max = std::max(stats_.energy_max, energy_[u]);
    }
  }
  stats_.delivered = delivered_;
  stats_.delay_sum = delay_sum_;
  stats_.route_refreshes = route_refreshes_;
  // Never negative for non-duplicating channels; a duplicating channel
  // can deliver more copies than transmissions, so clamp at zero.
  stats_.lost_in_air = sent_sum >= arrived_sum ? sent_sum - arrived_sum : 0;
  if (n_ > 1) {
    const double m = energy_sum / static_cast<double>(n_ - 1);
    stats_.energy_mean = m;
    stats_.energy_stddev =
        std::sqrt(std::max(0.0, energy_sq / static_cast<double>(n_ - 1) - m * m));
  }
}

}  // namespace cbtc::sim
