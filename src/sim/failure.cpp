#include "sim/failure.h"

#include <algorithm>
#include <numeric>

namespace cbtc::sim {

failure_injector::failure_injector(medium& m, std::uint64_t seed) : medium_(m), rng_(seed) {}

void failure_injector::crash_at(node_id u, time_point t) {
  medium_.sim().schedule_at(t, [this, u] { medium_.crash(u); });
}

void failure_injector::restart_at(node_id u, time_point t) {
  medium_.sim().schedule_at(t, [this, u] { medium_.restart(u); });
}

std::vector<node_id> failure_injector::random_crashes(std::size_t count, time_point t_lo,
                                                      time_point t_hi) {
  std::vector<node_id> ids(medium_.num_nodes());
  std::iota(ids.begin(), ids.end(), node_id{0});
  std::shuffle(ids.begin(), ids.end(), rng_);
  count = std::min(count, ids.size());
  ids.resize(count);
  std::uniform_real_distribution<double> when(t_lo, t_hi);
  for (node_id u : ids) crash_at(u, when(rng_));
  return ids;
}

}  // namespace cbtc::sim
