#include "sim/partition.h"

#include <cassert>
#include <utility>

namespace cbtc::sim {

namespace {
// Identifies the lane a worker thread is draining, so schedule calls
// made from inside event handlers land in the right place without
// touching the (serial-only) main queue.
thread_local const partitioned_simulator* t_active_sim = nullptr;
thread_local std::uint32_t t_region = 0;
}  // namespace

partitioned_simulator::partitioned_simulator(std::size_t num_nodes, const config& cfg)
    : lanes_(cfg.regions > 0 ? cfg.regions : 1),
      region_of_(num_nodes, 0),
      node_seq_(num_nodes, 0),
      region_events_(cfg.regions > 0 ? cfg.regions : 1, 0),
      pool_(cfg.pool),
      lookahead_(cfg.lookahead),
      serial_batch_limit_(cfg.serial_batch_limit) {
  assert(lookahead_ > 0.0 && "conservative sync needs a positive lookahead");
}

bool partitioned_simulator::in_event_phase() { return t_active_sim != nullptr; }

std::uint32_t partitioned_simulator::current_region() { return t_region; }

void partitioned_simulator::set_region(graph::node_id u, std::uint32_t region) {
  assert(!in_phase_ && "region migration is a serial (class-0) operation");
  assert(region < lanes_.size());
  if (region_of_[u] == region) return;
  region_of_[u] = region;
  ++stats_.migrations;
}

void partitioned_simulator::schedule_at(time_point t, action fn) {
  // Global events mutate shared state; creating one from inside a
  // parallel phase would be a synchronization bug in the caller.
  assert(t_active_sim != this && "class-0 events must not be scheduled from handlers");
  if (t < now_) t = now_;
  main_.push({event_key{t, 0, 0, 0, global_seq_++, 0}, std::move(fn)});
}

void partitioned_simulator::schedule_node(time_point t, graph::node_id owner, action fn) {
  if (t < now_) t = now_;
  if (t_active_sim == this) {
    const std::uint64_t seq = node_seq_[owner]++;
    lane& L = lanes_[t_region];
    if (t <= now_) {
      // Same-instant self event (retry stagger): provably lane-local,
      // because the scheduling handler belongs to `owner` itself.
      if (region_of_[owner] != t_region) violations_.fetch_add(1, std::memory_order_relaxed);
      assert(region_of_[owner] == t_region);
      L.ready.push({event_key{now_, 1, owner, 0, seq, 0}, std::move(fn)});
    } else {
      L.outbox.push_back({event_key{t, 1, owner, 0, seq, 0}, std::move(fn)});
    }
    return;
  }
  if (owner >= node_seq_.size()) node_seq_.resize(owner + 1, 0);
  main_.push({event_key{t, 1, owner, 0, node_seq_[owner]++, 0}, std::move(fn)});
}

void partitioned_simulator::schedule_delivery(time_point t, graph::node_id to,
                                              graph::node_id from, std::uint64_t tx_seq,
                                              std::uint32_t copy, action fn) {
  if (t < now_) t = now_;
  if (t_active_sim == this) {
    // Cross-region influence must stay outside the conservative
    // window; the channel's minimum delay (== lookahead) guarantees it.
    if (t < now_ + lookahead_) violations_.fetch_add(1, std::memory_order_relaxed);
    lanes_[t_region].outbox.push_back({event_key{t, 2, to, from, tx_seq, copy}, std::move(fn)});
    return;
  }
  main_.push({event_key{t, 2, to, from, tx_seq, copy}, std::move(fn)});
}

void partitioned_simulator::drain_lane(std::uint32_t r) {
  lane& L = lanes_[r];
  t_active_sim = this;
  t_region = r;
  std::uint64_t n = 0;
  while (!L.ready.empty()) {
    event ev = std::move(const_cast<event&>(L.ready.top()));
    L.ready.pop();
    ev.fn();
    ++n;
  }
  t_active_sim = nullptr;
  L.executed = n;
  region_events_[r] += n;
}

void partitioned_simulator::step_instant() {
  const time_point t0 = main_.top().key.t;
  now_ = t0;
  ++stats_.instants;

  // 1. Serial class-0 prefix: global state (positions, liveness,
  // region membership) settles before any handler runs.
  while (!main_.empty() && main_.top().key.t <= t0 && main_.top().key.cls == 0) {
    event ev = std::move(const_cast<event&>(main_.top()));
    main_.pop();
    ++processed_;
    ++stats_.serial_events;
    ev.fn();
  }

  // 2. Route the instant's class-1/2 events to lanes by the current
  // region map (a node that just migrated takes its timers with it).
  std::size_t batch = 0;
  active_.clear();
  while (!main_.empty() && main_.top().key.t <= t0) {
    event ev = std::move(const_cast<event&>(main_.top()));
    main_.pop();
    const std::uint32_t r = region_of_[ev.key.a];
    if (lanes_[r].ready.empty()) active_.push_back(r);
    lanes_[r].ready.push(std::move(ev));
    ++batch;
  }

  if (batch > 0) {
    // 3. Parallel phase. Tiny instants drain inline: the order is the
    // same either way (lanes are independent), only the wall clock
    // differs.
    const bool inline_run = pool_ == nullptr || pool_->size() <= 1 || active_.size() <= 1 ||
                            batch <= serial_batch_limit_;
    in_phase_ = true;
    if (inline_run) {
      for (const std::uint32_t r : active_) drain_lane(r);
    } else {
      ++stats_.parallel_phases;
      pool_->parallel_for(active_.size(),
                          [this](std::size_t i) { drain_lane(active_[i]); });
    }
    in_phase_ = false;

    // 4. Barrier: merge outboxes into the main queue (keys are unique,
    // so merge order is irrelevant) and let the engine flush its
    // deferred per-region state.
    for (const std::uint32_t r : active_) {
      lane& L = lanes_[r];
      for (event& ev : L.outbox) main_.push(std::move(ev));
      L.outbox.clear();
      processed_ += L.executed;
      stats_.parallel_events += L.executed;
      L.executed = 0;
    }
    if (barrier_hook_) barrier_hook_();
  }

  // 5. Settled-instant hook (connectivity evaluation).
  if (hook_requested_.exchange(false, std::memory_order_relaxed) && instant_hook_) {
    instant_hook_();
  }
  stats_.violations = violations_.load(std::memory_order_relaxed);
}

std::size_t partitioned_simulator::run_until(time_point t) {
  const std::size_t before = processed_;
  while (!main_.empty() && main_.top().key.t <= t) step_instant();
  if (now_ < t) now_ = t;
  return processed_ - before;
}

}  // namespace cbtc::sim
