// Event-scheduling interface shared by the serial simulator and the
// spatially partitioned engine, plus the canonical event key that
// makes the two bitwise-interchangeable.
//
// Every event carries a key (time, class, a, b, seq, copy) that is
// unique across the whole run:
//
//   class 0 — global events (mobility steps, crash/restart, engine
//             arming): a = b = 0, seq = a global monotone counter.
//   class 1 — node timer events (beacon ticks, round timeouts,
//             retry staggers): a = owning node, seq = that node's
//             monotone timer counter.
//   class 2 — message deliveries: a = receiver, b = sender, seq = the
//             sender's transmission counter (assigned once per
//             broadcast/unicast call), copy = duplicate index when the
//             channel delivers one transmission more than once.
//
// Keys totally order all events (class 0 < 1 < 2 at equal times), so
// heap insertion order never affects pop order.  The partitioned
// engine executes, per instant, each region's slice of this one total
// order; a node's events therefore run in exactly the order the
// single-queue simulator would run them, which is what makes reports —
// including per-node floating-point energy folds — bitwise-identical
// at any region count and any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

#include "graph/types.h"

namespace cbtc::sim {

/// Virtual time, in abstract "seconds".
using time_point = double;

/// Canonical event ordering key; unique per event (see header comment).
struct event_key {
  time_point t{0.0};
  std::uint8_t cls{0};
  graph::node_id a{0};
  graph::node_id b{0};
  std::uint64_t seq{0};
  std::uint32_t copy{0};

  friend bool operator<(const event_key& x, const event_key& y) {
    if (x.t != y.t) return x.t < y.t;
    if (x.cls != y.cls) return x.cls < y.cls;
    if (x.a != y.a) return x.a < y.a;
    if (x.b != y.b) return x.b < y.b;
    if (x.seq != y.seq) return x.seq < y.seq;
    return x.copy < y.copy;
  }
};

/// Abstract scheduler: the medium, the protocol agents, mobility and
/// failure injection all talk to this, so one protocol stack runs
/// unchanged on either engine.
class scheduler {
 public:
  using action = std::function<void()>;

  virtual ~scheduler() = default;

  /// Current virtual time.
  [[nodiscard]] virtual time_point now() const = 0;

  /// Schedules a class-0 (global) event at absolute time `t` (clamped
  /// to now()).  Global events mutate shared state (positions,
  /// liveness); the partitioned engine runs them serially, so they
  /// must never be scheduled from inside a delivery or timer handler.
  virtual void schedule_at(time_point t, action fn) = 0;

  /// Schedules a class-0 event `delay` from now.
  void schedule_in(time_point delay, action fn) { schedule_at(now() + delay, std::move(fn)); }

  /// Schedules a class-1 timer event owned by `owner` (clamped to
  /// now()).  Safe to call from `owner`'s own handlers.
  virtual void schedule_node(time_point t, graph::node_id owner, action fn) = 0;

  /// Schedules a class-2 delivery event.  `tx_seq` is the sender's
  /// transmission counter, `copy` disambiguates channel duplicates.
  virtual void schedule_delivery(time_point t, graph::node_id to, graph::node_id from,
                                 std::uint64_t tx_seq, std::uint32_t copy, action fn) = 0;

  /// Runs all events with time <= `t`, then advances the clock to `t`.
  /// Returns the number of events processed.
  virtual std::size_t run_until(time_point t) = 0;

  /// End-of-instant hook: `fn` runs (serially) once for every instant
  /// during which request_instant_hook() was called, after all of that
  /// instant's events have executed.  The dynamic engine uses it for
  /// connectivity evaluations, which thereby observe settled instants.
  virtual void set_instant_hook(action fn) = 0;

  /// Requests the instant hook for the current instant.  Safe to call
  /// from any event handler, including inside a parallel region phase.
  virtual void request_instant_hook() = 0;

  [[nodiscard]] virtual std::size_t events_processed() const = 0;
};

}  // namespace cbtc::sim
