// Crash-failure injection (Section 4's failure model: crash-stop).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "sim/medium.h"
#include "sim/simulator.h"

namespace cbtc::sim {

class failure_injector {
 public:
  explicit failure_injector(medium& m, std::uint64_t seed = 0);

  /// Crashes `u` at time `t`.
  void crash_at(node_id u, time_point t);

  /// Restarts `u` at time `t`.
  void restart_at(node_id u, time_point t);

  /// Crashes `count` distinct random nodes at uniform times in [t_lo, t_hi].
  /// Returns the chosen victims.
  std::vector<node_id> random_crashes(std::size_t count, time_point t_lo, time_point t_hi);

 private:
  medium& medium_;
  std::mt19937_64 rng_;
};

}  // namespace cbtc::sim
