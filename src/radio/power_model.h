// Radio power model — the *isotropic* special case of the per-link
// propagation layer (see radio/propagation.h).
//
// The paper assumes every node has a power function p where p(d) is the
// minimum power needed to reach a node at distance d, that the power
// required grows as the n-th power of distance for some n >= 2
// [Rappaport 96], and that p(R) = P where R is the maximum
// communication radius and P the (common) maximum transmission power.
//
// We use the standard free-space/two-ray form p(d) = d^n with unit path
// loss constant and unit reception threshold, so that
//   rx_power = tx_power / d^n   and   "decodable" <=> rx_power >= 1.
// The algorithm only ever consumes *ratios* of powers, so the constants
// cancel and this loses no generality (see DESIGN.md, substitutions).
//
// Non-uniform fields (lognormal shadowing, obstacle attenuation) scale
// these quantities by a per-link gain; radio::link_model composes this
// class with a radio::propagation_model and is what reachability
// consumers take. A link_model with the default isotropic propagation
// reproduces this class's arithmetic bit for bit.
#pragma once

#include <cstdint>

namespace cbtc::radio {

class power_model {
 public:
  /// `exponent` is the path-loss exponent n (>= 1); `max_range` is R.
  /// The maximum power P is derived as p(R).
  power_model(double exponent, double max_range);

  /// p(d): minimum transmission power required to reach distance d.
  [[nodiscard]] double required_power(double distance) const;

  /// p^-1: the maximum distance reachable with transmission power `p`
  /// (not clamped to R; callers clamp when modeling hardware limits).
  [[nodiscard]] double range(double power) const;

  /// Power received at distance `d` from a transmitter using `tx_power`.
  /// Infinite at d == 0 is avoided by clamping to a tiny distance.
  [[nodiscard]] double rx_power(double tx_power, double distance) const;

  /// True if a signal transmitted with `tx_power` is decodable at
  /// distance `d` (reception power above the unit threshold).
  [[nodiscard]] bool reaches(double tx_power, double distance) const;

  /// The receiver-side estimate of p(d) from the advertised transmit
  /// power and the measured reception power (Section 2: "given the
  /// transmission power p and the reception power p', u can estimate
  /// p(d(u,v))").
  [[nodiscard]] double estimate_required_power(double tx_power, double rx_power) const;

  [[nodiscard]] double max_power() const { return max_power_; }
  [[nodiscard]] double max_range() const { return max_range_; }
  [[nodiscard]] double exponent() const { return exponent_; }

 private:
  double exponent_;
  double max_range_;
  double max_power_;
};

}  // namespace cbtc::radio
