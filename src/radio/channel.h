// Channel impairment model.
//
// Section 4 of the paper relaxes the reliable synchronous model:
// "messages may get lost or duplicated". This module decides, per
// transmission, how many copies of a message are delivered and with
// what latency. With default parameters the channel is reliable and
// delivery order is deterministic, recovering the Section 2 model.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace cbtc::radio {

struct channel_params {
  double drop_prob{0.0};       // probability a copy is lost
  double dup_prob{0.0};        // probability a delivered copy is duplicated
  double base_delay{0.01};     // fixed per-hop latency (sim time units)
  double delay_per_unit{0.0};  // propagation delay per distance unit
  double jitter_max{0.0};      // uniform extra delay in [0, jitter_max]
};

class channel {
 public:
  explicit channel(channel_params params = {}, std::uint64_t seed = 0);

  /// Delivery delays for one receiver at the given distance: empty if
  /// the message is dropped, one entry normally, two if duplicated.
  [[nodiscard]] std::vector<double> sample_deliveries(double distance);

  [[nodiscard]] const channel_params& params() const { return params_; }

  /// Upper bound on a single delivery latency for receivers within
  /// `max_distance`; protocols use this to size response deadlines.
  [[nodiscard]] double max_delay(double max_distance) const;

 private:
  channel_params params_;
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace cbtc::radio
