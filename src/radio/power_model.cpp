#include "radio/power_model.h"

#include <cmath>
#include <stdexcept>

namespace cbtc::radio {

namespace {
constexpr double min_distance = 1e-9;  // avoids a singular rx power at d == 0
}

power_model::power_model(double exponent, double max_range)
    : exponent_(exponent), max_range_(max_range), max_power_(std::pow(max_range, exponent)) {
  if (exponent < 1.0) throw std::invalid_argument("power_model: exponent must be >= 1");
  if (max_range <= 0.0) throw std::invalid_argument("power_model: max_range must be positive");
}

double power_model::required_power(double distance) const {
  if (distance <= 0.0) return 0.0;
  return std::pow(distance, exponent_);
}

double power_model::range(double power) const {
  if (power <= 0.0) return 0.0;
  return std::pow(power, 1.0 / exponent_);
}

double power_model::rx_power(double tx_power, double distance) const {
  const double d = distance < min_distance ? min_distance : distance;
  return tx_power / std::pow(d, exponent_);
}

bool power_model::reaches(double tx_power, double distance) const {
  // One-ulp tolerance: a receiver's power estimate tx/(tx/d^n) can
  // round marginally below d^n; physically the link budget is exact.
  return required_power(distance) <= tx_power * (1.0 + 1e-12);
}

double power_model::estimate_required_power(double tx_power, double rx_power) const {
  if (rx_power <= 0.0) throw std::invalid_argument("estimate_required_power: rx_power must be positive");
  return tx_power / rx_power;
}

}  // namespace cbtc::radio
