// Angle-of-Arrival (direction) estimation.
//
// CBTC's defining feature is that it needs only *directional*
// information, not positions (Section 1: the Angle-of-Arrival problem,
// solvable with more than one directional antenna). We model an AoA
// sensor that reports the true bearing of the transmitter, optionally
// perturbed by bounded uniform noise to study sensitivity.
#pragma once

#include <cstdint>
#include <random>

#include "geom/vec2.h"

namespace cbtc::radio {

class direction_estimator {
 public:
  /// `max_error_rad` bounds the absolute angular error per measurement
  /// (0 = ideal sensor, the paper's model).
  explicit direction_estimator(double max_error_rad = 0.0, std::uint64_t seed = 0);

  /// Bearing of `transmitter` as measured at `receiver`, in [0, 2*pi).
  [[nodiscard]] double measure(const geom::vec2& receiver, const geom::vec2& transmitter);

  [[nodiscard]] double max_error() const { return max_error_; }

 private:
  double max_error_;
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> noise_;
};

}  // namespace cbtc::radio
