#include "radio/channel.h"

#include <stdexcept>

namespace cbtc::radio {

channel::channel(channel_params params, std::uint64_t seed) : params_(params), rng_(seed) {
  if (params.drop_prob < 0.0 || params.drop_prob > 1.0)
    throw std::invalid_argument("channel: drop_prob must be in [0, 1]");
  if (params.dup_prob < 0.0 || params.dup_prob > 1.0)
    throw std::invalid_argument("channel: dup_prob must be in [0, 1]");
  if (params.base_delay < 0.0 || params.delay_per_unit < 0.0 || params.jitter_max < 0.0)
    throw std::invalid_argument("channel: delays must be non-negative");
}

std::vector<double> channel::sample_deliveries(double distance) {
  std::vector<double> delays;
  if (params_.drop_prob > 0.0 && unit_(rng_) < params_.drop_prob) return delays;

  auto one_delay = [&] {
    double d = params_.base_delay + params_.delay_per_unit * distance;
    if (params_.jitter_max > 0.0) d += unit_(rng_) * params_.jitter_max;
    return d;
  };
  delays.push_back(one_delay());
  if (params_.dup_prob > 0.0 && unit_(rng_) < params_.dup_prob) delays.push_back(one_delay());
  return delays;
}

double channel::max_delay(double max_distance) const {
  return params_.base_delay + params_.delay_per_unit * max_distance + params_.jitter_max;
}

}  // namespace cbtc::radio
