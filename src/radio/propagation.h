// Pluggable per-link propagation: gain models over node pairs.
//
// The paper (and radio::power_model) assumes an isotropic power law
// p(d) = d^n — every link of the same length has the same budget. Real
// fields do not: lognormal shadowing and obstructions make the
// required power a property of the *link*, not the distance
// [Rappaport 96; Sethu & Gerety, arXiv:0709.0961]. propagation_model
// captures that as a multiplicative per-link gain g(u, v) on the
// received power:
//
//   rx_power = g(u, v) * tx_power / d^n
//   required_power(u, v) = p(d(u, v)) / g(u, v)
//
// Three implementations:
//   * isotropic            — g == 1 everywhere; bitwise-equivalent to
//                            the plain power_model path (the default).
//   * lognormal_shadowing  — g = 10^(X/10) with X a clamped zero-mean
//                            gaussian drawn by hashing
//                            (seed, min(u,v), max(u,v)): symmetric,
//                            reproducible, independent of call order
//                            and thread count.
//   * obstacle_field       — axis-aligned attenuating rectangles; a
//                            link loses loss_db per rectangle its
//                            segment crosses.
//
// link_model composes a power_model with a propagation_model and is
// what reachability consumers (max-power graph, oracle growth, the
// medium, the live index, invariant checks) thread through. All gains
// are pure functions of (model, u, v, positions), so every
// deterministic-reduction contract of the engine survives unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "geom/bbox.h"
#include "geom/vec2.h"
#include "radio/power_model.h"

namespace cbtc::radio {

enum class propagation_kind { isotropic, lognormal_shadowing, obstacle_field };

/// An axis-aligned attenuating rectangle (a building, a wall, terrain):
/// any link whose segment crosses `box` loses `loss_db` dB of budget.
struct obstacle {
  geom::bbox box;
  double loss_db{6.0};

  [[nodiscard]] bool operator==(const obstacle& o) const {
    return box.min.x == o.box.min.x && box.min.y == o.box.min.y && box.max.x == o.box.max.x &&
           box.max.y == o.box.max.y && loss_db == o.loss_db;
  }
};

/// True if the closed segment [p, q] intersects `box` (shared with the
/// obstacle model and its tests).
[[nodiscard]] bool segment_intersects_box(const geom::bbox& box, const geom::vec2& p,
                                          const geom::vec2& q);

class propagation_model {
 public:
  /// The default model is isotropic (gain 1 on every link).
  propagation_model() = default;

  [[nodiscard]] static propagation_model isotropic() { return {}; }

  /// Per-link lognormal shadowing: gain 10^(X/10), X gaussian with
  /// standard deviation `sigma_db`, clamped to [-clamp_db, clamp_db]
  /// so the maximum feasible link length stays bounded (the spatial
  /// grids prune by it). X is drawn by hashing (seed, min(u,v),
  /// max(u,v)) — symmetric and reproducible by construction.
  [[nodiscard]] static propagation_model lognormal_shadowing(double sigma_db, double clamp_db,
                                                             std::uint64_t seed);

  /// Attenuating axis-aligned rectangles; gains are always <= 1.
  [[nodiscard]] static propagation_model obstacle_field(std::vector<obstacle> obstacles);

  /// The gain of link {u, v} (symmetric: gain(u, v) == gain(v, u)).
  /// Positions only matter for obstacle fields; ids only for shadowing.
  [[nodiscard]] double gain(std::uint32_t u, std::uint32_t v, const geom::vec2& pu,
                            const geom::vec2& pv) const;

  /// A view of this model under a node relabeling: gain(u, v) of the
  /// returned model equals gain(ids[u], ids[v]) of this one. This is
  /// how the engine's spatial-relabeling pass keeps shadowing gains —
  /// which hash *node ids* — bitwise-identical while the pipeline runs
  /// in permuted label space. Composes with an existing relabeling.
  [[nodiscard]] propagation_model relabeled(std::vector<std::uint32_t> ids) const;

  /// Upper bound on gain() over every possible link (exactly 1.0 for
  /// isotropic and obstacle fields).
  [[nodiscard]] double max_gain() const { return max_gain_; }

  [[nodiscard]] propagation_kind kind() const { return kind_; }
  [[nodiscard]] bool is_isotropic() const { return kind_ == propagation_kind::isotropic; }

  // Parameter accessors (serialization / introspection).
  [[nodiscard]] double sigma_db() const { return sigma_db_; }
  [[nodiscard]] double clamp_db() const { return clamp_db_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] const std::vector<obstacle>& obstacles() const;

 private:
  propagation_kind kind_{propagation_kind::isotropic};
  double sigma_db_{0.0};
  double clamp_db_{0.0};
  std::uint64_t seed_{0};
  // Shared so propagation_model stays cheap to copy into every
  // engine/medium/index that consumes it.
  std::shared_ptr<const std::vector<obstacle>> obstacles_;
  // Engaged by relabeled(): translates caller ids back to the original
  // labels before hashing, so relabeled runs draw the same gains.
  std::shared_ptr<const std::vector<std::uint32_t>> relabel_;
  double max_gain_{1.0};
};

/// A power model plus a propagation model: the per-link radio budget.
/// Implicitly constructible from a bare power_model (isotropic), so
/// every pre-propagation call site keeps compiling — and keeps its
/// bitwise behaviour, because isotropic gains short-circuit to the
/// plain power_model arithmetic.
class link_model {
 public:
  link_model(power_model pm, propagation_model prop = {});  // NOLINT(google-explicit-constructor)

  [[nodiscard]] const power_model& power() const { return power_; }
  [[nodiscard]] const propagation_model& propagation() const { return prop_; }
  [[nodiscard]] bool is_isotropic() const { return prop_.is_isotropic(); }
  [[nodiscard]] double max_power() const { return power_.max_power(); }
  [[nodiscard]] double max_range() const { return power_.max_range(); }

  [[nodiscard]] double gain(std::uint32_t u, std::uint32_t v, const geom::vec2& pu,
                            const geom::vec2& pv) const {
    return prop_.gain(u, v, pu, pv);
  }

  /// Minimum transmission power that closes link u -> v:
  /// p(d(u, v)) / gain(u, v).
  [[nodiscard]] double required_power(std::uint32_t u, std::uint32_t v, const geom::vec2& pu,
                                      const geom::vec2& pv) const;

  /// Same with the distance precomputed by the caller (`distance` must
  /// equal |pu - pv|; hot paths avoid a second sqrt).
  [[nodiscard]] double required_power_at(double distance, std::uint32_t u, std::uint32_t v,
                                         const geom::vec2& pu, const geom::vec2& pv) const;

  /// Gain-adjusted reception power of link u -> v.
  [[nodiscard]] double rx_power_at(double tx_power, double distance, std::uint32_t u,
                                   std::uint32_t v, const geom::vec2& pu,
                                   const geom::vec2& pv) const;

  /// Decodability of link u -> v at `tx_power` (same one-ulp tolerance
  /// as power_model::reaches; identical verdicts when isotropic).
  [[nodiscard]] bool reaches(double tx_power, std::uint32_t u, std::uint32_t v,
                             const geom::vec2& pu, const geom::vec2& pv) const;
  [[nodiscard]] bool reaches_at(double tx_power, double distance, std::uint32_t u, std::uint32_t v,
                                const geom::vec2& pu, const geom::vec2& pv) const;

  /// Conservative upper bound on the length of any feasible link:
  /// spatial indexes prune candidates by this radius, then filter
  /// per link. Exactly max_range() when gains cannot exceed 1.
  [[nodiscard]] double max_candidate_range() const { return max_candidate_range_; }

  /// The same radio budget under a node relabeling (see
  /// propagation_model::relabeled).
  [[nodiscard]] link_model relabeled(std::vector<std::uint32_t> ids) const {
    return {power_, prop_.relabeled(std::move(ids))};
  }

 private:
  power_model power_;
  propagation_model prop_;
  double max_candidate_range_;
};

}  // namespace cbtc::radio
