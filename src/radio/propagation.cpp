#include "radio/propagation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace cbtc::radio {

namespace {

constexpr double two_pi = 6.283185307179586476925286766559;

/// splitmix64: the standard 64-bit finalizer — every link draws its
/// gain from one hash invocation, so results cannot depend on call
/// order or thread placement.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform in (0, 1]: the top 53 bits of the hash, never zero (the log
/// below needs a strictly positive argument).
double unit_open(std::uint64_t h) {
  return static_cast<double>((h >> 11) + 1) * 0x1.0p-53;
}

/// Standard normal from one link hash (Box-Muller, first component).
double standard_normal(std::uint64_t h) {
  const double u1 = unit_open(h);
  const double u2 = unit_open(splitmix64(h ^ 0x6a09e667f3bcc909ULL));
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
}

double db_to_gain(double db) { return std::pow(10.0, db / 10.0); }

}  // namespace

bool segment_intersects_box(const geom::bbox& box, const geom::vec2& p, const geom::vec2& q) {
  // Liang-Barsky slab clipping of the parametric segment p + t (q - p),
  // t in [0, 1], against the closed box.
  double t0 = 0.0;
  double t1 = 1.0;
  const double d[2] = {q.x - p.x, q.y - p.y};
  const double lo[2] = {box.min.x, box.min.y};
  const double hi[2] = {box.max.x, box.max.y};
  const double s[2] = {p.x, p.y};
  for (int axis = 0; axis < 2; ++axis) {
    if (d[axis] == 0.0) {
      if (s[axis] < lo[axis] || s[axis] > hi[axis]) return false;
      continue;
    }
    double ta = (lo[axis] - s[axis]) / d[axis];
    double tb = (hi[axis] - s[axis]) / d[axis];
    if (ta > tb) std::swap(ta, tb);
    t0 = std::max(t0, ta);
    t1 = std::min(t1, tb);
    if (t0 > t1) return false;
  }
  return true;
}

propagation_model propagation_model::lognormal_shadowing(double sigma_db, double clamp_db,
                                                         std::uint64_t seed) {
  if (sigma_db < 0.0) {
    throw std::invalid_argument("propagation_model: sigma_db must be non-negative");
  }
  if (clamp_db < 0.0) {
    throw std::invalid_argument("propagation_model: clamp_db must be non-negative");
  }
  propagation_model m;
  m.kind_ = propagation_kind::lognormal_shadowing;
  m.sigma_db_ = sigma_db;
  m.clamp_db_ = clamp_db;
  m.seed_ = seed;
  m.max_gain_ = db_to_gain(clamp_db);
  return m;
}

propagation_model propagation_model::obstacle_field(std::vector<obstacle> obstacles) {
  for (const obstacle& o : obstacles) {
    if (o.box.min.x > o.box.max.x || o.box.min.y > o.box.max.y) {
      throw std::invalid_argument("propagation_model: obstacle box has min > max");
    }
    if (o.loss_db <= 0.0) {
      throw std::invalid_argument("propagation_model: obstacle loss_db must be positive");
    }
  }
  propagation_model m;
  m.kind_ = propagation_kind::obstacle_field;
  m.obstacles_ = std::make_shared<const std::vector<obstacle>>(std::move(obstacles));
  m.max_gain_ = 1.0;  // obstacles only ever attenuate
  return m;
}

const std::vector<obstacle>& propagation_model::obstacles() const {
  static const std::vector<obstacle> empty;
  return obstacles_ ? *obstacles_ : empty;
}

propagation_model propagation_model::relabeled(std::vector<std::uint32_t> ids) const {
  propagation_model m = *this;
  if (is_isotropic()) return m;  // identity gains: nothing to translate
  if (relabel_) {
    for (std::uint32_t& id : ids) id = (*relabel_)[id];
  }
  m.relabel_ = std::make_shared<const std::vector<std::uint32_t>>(std::move(ids));
  return m;
}

double propagation_model::gain(std::uint32_t u, std::uint32_t v, const geom::vec2& pu,
                               const geom::vec2& pv) const {
  if (relabel_) {
    u = (*relabel_)[u];
    v = (*relabel_)[v];
  }
  switch (kind_) {
    case propagation_kind::isotropic:
      return 1.0;
    case propagation_kind::lognormal_shadowing: {
      // Hash the *unordered* pair: gain(u, v) == gain(v, u) exactly.
      const std::uint64_t a = std::min(u, v);
      const std::uint64_t b = std::max(u, v);
      const std::uint64_t h = splitmix64(seed_ ^ splitmix64((a << 32) | b));
      const double x_db = std::clamp(sigma_db_ * standard_normal(h), -clamp_db_, clamp_db_);
      return db_to_gain(x_db);
    }
    case propagation_kind::obstacle_field: {
      double loss_db = 0.0;
      for (const obstacle& o : *obstacles_) {
        if (segment_intersects_box(o.box, pu, pv)) loss_db += o.loss_db;
      }
      return loss_db == 0.0 ? 1.0 : db_to_gain(-loss_db);
    }
  }
  return 1.0;
}

link_model::link_model(power_model pm, propagation_model prop)
    : power_(pm), prop_(std::move(prop)) {
  if (prop_.max_gain() <= 1.0) {
    // Gains never exceed 1: no link can outreach the isotropic radius.
    max_candidate_range_ = power_.max_range();
  } else {
    // d feasible => d^n <= P * g * (1 + tol); pad by a hair so the
    // grid prune stays a strict superset of the per-link filter.
    max_candidate_range_ =
        std::max(power_.max_range(), power_.range(power_.max_power() * prop_.max_gain()) *
                                         (1.0 + 1e-9));
  }
}

double link_model::required_power(std::uint32_t u, std::uint32_t v, const geom::vec2& pu,
                                  const geom::vec2& pv) const {
  return required_power_at(geom::distance(pu, pv), u, v, pu, pv);
}

double link_model::required_power_at(double distance, std::uint32_t u, std::uint32_t v,
                                     const geom::vec2& pu, const geom::vec2& pv) const {
  if (prop_.is_isotropic()) return power_.required_power(distance);
  return power_.required_power(distance) / prop_.gain(u, v, pu, pv);
}

double link_model::rx_power_at(double tx_power, double distance, std::uint32_t u, std::uint32_t v,
                               const geom::vec2& pu, const geom::vec2& pv) const {
  if (prop_.is_isotropic()) return power_.rx_power(tx_power, distance);
  return power_.rx_power(tx_power, distance) * prop_.gain(u, v, pu, pv);
}

bool link_model::reaches(double tx_power, std::uint32_t u, std::uint32_t v, const geom::vec2& pu,
                         const geom::vec2& pv) const {
  return reaches_at(tx_power, geom::distance(pu, pv), u, v, pu, pv);
}

bool link_model::reaches_at(double tx_power, double distance, std::uint32_t u, std::uint32_t v,
                            const geom::vec2& pu, const geom::vec2& pv) const {
  if (prop_.is_isotropic()) return power_.reaches(tx_power, distance);
  // Same one-ulp tolerance as power_model::reaches, applied to the
  // gain-adjusted budget.
  return required_power_at(distance, u, v, pu, pv) <= tx_power * (1.0 + 1e-12);
}

}  // namespace cbtc::radio
