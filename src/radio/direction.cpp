#include "radio/direction.h"

#include "geom/angle.h"

namespace cbtc::radio {

direction_estimator::direction_estimator(double max_error_rad, std::uint64_t seed)
    : max_error_(max_error_rad), rng_(seed), noise_(-max_error_rad, max_error_rad) {}

double direction_estimator::measure(const geom::vec2& receiver, const geom::vec2& transmitter) {
  const double truth = (transmitter - receiver).bearing();
  if (max_error_ == 0.0) return truth;
  return geom::norm_angle(truth + noise_(rng_));
}

}  // namespace cbtc::radio
