// Summary statistics over repeated experiment runs.
#pragma once

#include <cstddef>
#include <vector>

namespace cbtc::exp {

/// Streaming accumulator: mean / min / max / stddev.
class summary {
 public:
  void add(double x);

  /// Folds another accumulator in (parallel partial reduction). The
  /// result depends on partial boundaries, not on which thread built
  /// which partial — merge partials in a fixed order for determinism.
  void merge(const summary& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  [[nodiscard]] double stddev() const;

  // Raw internals, exposed so an accumulator can cross a process
  // boundary exactly: (n, sum, sum_sq, min, max) is the whole state,
  // and shortest-round-trip doubles reproduce it bit for bit.
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double sum_squares() const { return sum_sq_; }
  [[nodiscard]] static summary from_raw(std::size_t n, double sum, double sum_sq, double min,
                                        double max) {
    summary s;
    s.n_ = n;
    s.sum_ = sum;
    s.sum_sq_ = sum_sq;
    s.min_ = min;
    s.max_ = max;
    return s;
  }

 private:
  std::size_t n_{0};
  double sum_{0.0};
  double sum_sq_{0.0};
  double min_{0.0};
  double max_{0.0};
};

/// Percentile (0..100) by nearest-rank on a copy of the data.
[[nodiscard]] double percentile(std::vector<double> values, double pct);

}  // namespace cbtc::exp
