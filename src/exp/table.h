// Plain-text aligned tables for bench output (paper-vs-measured rows).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cbtc::exp {

class table {
 public:
  explicit table(std::vector<std::string> headers);

  /// Adds a row; missing cells render empty, extra cells are dropped.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  [[nodiscard]] static std::string num(double v, int precision = 1);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cbtc::exp
