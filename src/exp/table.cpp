#include "exp/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace cbtc::exp {

table::table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(width[c])) << cell << " | ";
    }
    os << '\n';
  };

  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace cbtc::exp
