#include "exp/stats.h"

#include <algorithm>
#include <cmath>

namespace cbtc::exp {

void summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  sum_sq_ += x * x;
}

void summary::merge(const summary& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

double summary::mean() const { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }

double summary::stddev() const {
  if (n_ < 2) return 0.0;
  const double n = static_cast<double>(n_);
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double percentile(std::vector<double> values, double pct) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = pct / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace cbtc::exp
