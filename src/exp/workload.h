// Canonical experiment workloads.
//
// Section 5 of the paper: "we generated 100 random networks, each with
// 100 nodes... randomly placed in a 1500 x 1500 rectangular region.
// Each node has a maximum transmission radius of 500."
#pragma once

#include <cstdint>
#include <vector>

#include "geom/bbox.h"
#include "geom/random_points.h"
#include "geom/vec2.h"
#include "radio/power_model.h"

namespace cbtc::exp {

struct workload_params {
  std::size_t nodes{100};
  double region_side{1500.0};
  double max_range{500.0};
  double path_loss_exponent{2.0};
  std::size_t networks{100};
  std::uint64_t base_seed{20010601};  // PODC 2001; any fixed seed works
};

/// The paper's Section 5 workload.
[[nodiscard]] inline workload_params paper_workload() { return {}; }

/// Positions for network number `i` of the workload.
[[nodiscard]] inline std::vector<geom::vec2> network_positions(const workload_params& w,
                                                               std::size_t i) {
  return geom::uniform_points(w.nodes, geom::bbox::rect(w.region_side, w.region_side),
                              w.base_seed + i);
}

/// Power model for the workload.
[[nodiscard]] inline radio::power_model workload_power(const workload_params& w) {
  return radio::power_model(w.path_loss_exponent, w.max_range);
}

}  // namespace cbtc::exp
