// Cones in the plane, as used throughout the paper's proofs.
//
// cone(u, alpha, v) is the cone of degree `alpha` with apex `u`,
// bisected by the ray from `u` through `v` (Figure 3 of the paper).
#pragma once

#include "geom/angle.h"
#include "geom/vec2.h"

namespace cbtc::geom {

/// An infinite cone with apex `apex`, axis bearing `axis` and full
/// opening angle `alpha` (the cone spans [axis - alpha/2, axis + alpha/2]).
struct cone {
  vec2 apex;
  double axis{0.0};
  double alpha{0.0};

  /// The cone of degree `alpha` with apex `u` bisected by the line u->v.
  [[nodiscard]] static cone bisected_by(const vec2& u, double alpha, const vec2& v) {
    return {u, (v - u).bearing(), alpha};
  }

  /// True if point `p` lies inside the (closed) cone. The apex itself
  /// is considered inside.
  [[nodiscard]] bool contains(const vec2& p) const {
    const vec2 d = p - apex;
    if (d.norm_sq() == 0.0) return true;
    return angle_dist(d.bearing(), axis) <= alpha / 2.0;
  }

  /// True if a direction (bearing from the apex) lies inside the cone.
  [[nodiscard]] bool contains_direction(double bearing) const {
    return angle_dist(bearing, axis) <= alpha / 2.0;
  }
};

}  // namespace cbtc::geom
