#include "geom/spatial_order.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace cbtc::geom {

namespace {

/// Spreads the 32 bits of `x` into the even bit positions of a 64-bit
/// word (the standard Morton interleave expansion).
std::uint64_t spread_bits(std::uint64_t v) {
  v &= 0xFFFFFFFFULL;
  v = (v | (v << 16)) & 0x0000FFFF0000FFFFULL;
  v = (v | (v << 8)) & 0x00FF00FF00FF00FFULL;
  v = (v | (v << 4)) & 0x0F0F0F0F0F0F0F0FULL;
  v = (v | (v << 2)) & 0x3333333333333333ULL;
  v = (v | (v << 1)) & 0x5555555555555555ULL;
  return v;
}

}  // namespace

std::vector<std::uint32_t> spatial_order(std::span<const vec2> positions, double cell) {
  const std::size_t n = positions.size();
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0U);
  if (n == 0 || !(cell > 0.0)) return perm;

  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  for (const vec2& p : positions) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
  }
  constexpr double max_cell = 4294967295.0;  // 32 bits per axis
  std::vector<std::uint64_t> key(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double cx = std::clamp(std::floor((positions[i].x - min_x) / cell), 0.0, max_cell);
    const double cy = std::clamp(std::floor((positions[i].y - min_y) / cell), 0.0, max_cell);
    key[i] = spread_bits(static_cast<std::uint64_t>(cx)) |
             (spread_bits(static_cast<std::uint64_t>(cy)) << 1);
  }
  std::sort(perm.begin(), perm.end(), [&](std::uint32_t a, std::uint32_t b) {
    return key[a] != key[b] ? key[a] < key[b] : a < b;
  });
  return perm;
}

}  // namespace cbtc::geom
