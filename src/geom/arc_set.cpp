#include "geom/arc_set.h"

#include <algorithm>
#include <cmath>

#include "geom/angle.h"

namespace cbtc::geom {

double arc::length() const { return norm_angle(hi - lo) == 0.0 && lo != hi ? two_pi : norm_angle(hi - lo); }

namespace {

// Splits a (possibly wrapping) arc into non-wrapping [lo, hi] pieces
// with lo <= hi on the real line [0, 2*pi].
void unroll(const arc& a, std::vector<arc>& out) {
  const double lo = norm_angle(a.lo);
  const double hi = norm_angle(a.hi);
  if (lo <= hi) {
    out.push_back({lo, hi});
  } else {
    out.push_back({lo, two_pi});
    out.push_back({0.0, hi});
  }
}

}  // namespace

arc_set arc_set::from_arcs(std::span<const arc> arcs) {
  arc_set result;
  if (arcs.empty()) return result;

  std::vector<arc> flat;
  flat.reserve(arcs.size() * 2);
  for (const arc& a : arcs) unroll(a, flat);
  std::sort(flat.begin(), flat.end(),
            [](const arc& a, const arc& b) { return a.lo < b.lo || (a.lo == b.lo && a.hi < b.hi); });

  std::vector<arc> merged;
  for (const arc& a : flat) {
    if (!merged.empty() && a.lo <= merged.back().hi) {
      merged.back().hi = std::max(merged.back().hi, a.hi);
    } else {
      merged.push_back(a);
    }
  }

  // Re-join a piece ending at 2*pi with a piece starting at 0 (wrap).
  if (merged.size() >= 2 && merged.front().lo == 0.0 && merged.back().hi >= two_pi) {
    if (merged.back().lo <= merged.front().hi + 0.0) {
      // Entire circle covered.
      result.full_ = true;
      return result;
    }
    // Merge into a single wrapping arc.
    arc wrap{merged.back().lo, merged.front().hi};
    merged.pop_back();
    merged.erase(merged.begin());
    merged.push_back(wrap);
  } else if (merged.size() == 1 && merged.front().lo == 0.0 && merged.front().hi >= two_pi) {
    result.full_ = true;
    return result;
  }

  // Normalize endpoints back into [0, 2*pi).
  for (arc& a : merged) {
    if (a.hi >= two_pi && a.lo > 0.0) a.hi -= two_pi;  // wrapping arc
    else if (a.hi >= two_pi) a.hi = two_pi;            // should not happen after the checks above
  }

  // Canonical order by normalized lo.
  std::sort(merged.begin(), merged.end(), [](const arc& a, const arc& b) { return a.lo < b.lo; });
  result.arcs_ = std::move(merged);
  return result;
}

arc_set arc_set::cover(std::span<const double> directions, double alpha) {
  if (alpha >= two_pi && !directions.empty()) return full_circle();
  std::vector<arc> arcs;
  arcs.reserve(directions.size());
  const double half = alpha / 2.0;
  for (double d : directions) {
    const double c = norm_angle(d);
    arcs.push_back({norm_angle(c - half), norm_angle(c + half)});
  }
  return from_arcs(arcs);
}

arc_set arc_set::full_circle() {
  arc_set s;
  s.full_ = true;
  return s;
}

double arc_set::measure() const {
  if (full_) return two_pi;
  double total = 0.0;
  for (const arc& a : arcs_) {
    const double len = norm_angle(a.hi - a.lo);
    total += (len == 0.0 && a.lo != a.hi) ? two_pi : len;
  }
  return std::min(total, two_pi);
}

bool arc_set::contains(double theta) const {
  if (full_) return true;
  const double t = norm_angle(theta);
  for (const arc& a : arcs_) {
    if (angle_in_ccw_arc(t, a.lo, a.hi)) return true;
  }
  return false;
}

bool arc_set::approx_equals(const arc_set& other, double eps) const {
  if (full_ || other.full_) {
    // Accept "full vs almost-full": every arc endpoint mismatch must be
    // within eps, which for a full circle means the other set's measure
    // is within arcs-count * eps of 2*pi.
    const arc_set& partial = full_ ? other : *this;
    if (partial.full_) return true;
    const double slack = eps * std::max<std::size_t>(1, partial.arcs_.size()) * 2.0;
    return partial.measure() >= two_pi - slack;
  }
  if (arcs_.size() != other.arcs_.size()) return false;
  for (std::size_t i = 0; i < arcs_.size(); ++i) {
    if (angle_dist(arcs_[i].lo, other.arcs_[i].lo) > eps) return false;
    if (angle_dist(arcs_[i].hi, other.arcs_[i].hi) > eps) return false;
  }
  return true;
}

}  // namespace cbtc::geom
