// Unions of circular arcs on [0, 2*pi).
//
// Section 3.1 of the paper defines
//   cover_alpha(dir) = { theta : exists theta' in dir, |theta - theta'| mod 2pi <= alpha/2 }
// i.e. the union of closed arcs of half-width alpha/2 around each known
// direction. The shrink-back optimization removes discovery power
// levels as long as this *set* is unchanged, so we need a normal form
// for arc unions plus epsilon-tolerant equality.
#pragma once

#include <span>
#include <vector>

namespace cbtc::geom {

/// A closed arc on the circle, counterclockwise from `lo` to `hi`
/// (both normalized to [0, 2*pi); an arc may wrap through 0).
struct arc {
  double lo{0.0};
  double hi{0.0};

  /// Counterclockwise extent of the arc in [0, 2*pi].
  [[nodiscard]] double length() const;
};

/// A union of circular arcs kept in a canonical normal form:
/// disjoint, sorted by starting angle, non-adjacent (merged), with the
/// full circle represented explicitly.
class arc_set {
 public:
  arc_set() = default;

  /// Builds the union of the given (possibly overlapping) arcs.
  static arc_set from_arcs(std::span<const arc> arcs);

  /// cover_alpha(dir): union of closed arcs [d - alpha/2, d + alpha/2]
  /// for each direction d. `alpha >= 2*pi` yields the full circle.
  static arc_set cover(std::span<const double> directions, double alpha);

  /// The full circle.
  static arc_set full_circle();

  [[nodiscard]] bool empty() const { return !full_ && arcs_.empty(); }
  [[nodiscard]] bool is_full_circle() const { return full_; }

  /// Total angular measure covered, in [0, 2*pi].
  [[nodiscard]] double measure() const;

  /// True if angle `theta` is covered.
  [[nodiscard]] bool contains(double theta) const;

  /// True if the two sets are equal up to boundary perturbations of at
  /// most `eps` per arc endpoint.
  [[nodiscard]] bool approx_equals(const arc_set& other, double eps = 1e-9) const;

  /// The canonical arcs (empty when the set is the full circle).
  [[nodiscard]] const std::vector<arc>& arcs() const { return arcs_; }

 private:
  std::vector<arc> arcs_;  // canonical form; unused when full_ is set
  bool full_{false};
};

}  // namespace cbtc::geom
