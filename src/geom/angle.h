// Angle arithmetic on the circle [0, 2*pi).
//
// CBTC reasons about *directions* (angles of arrival) rather than
// positions, so robust circular arithmetic is a core primitive: the
// gap-alpha test of Figure 1 and the cover-alpha sets of Section 3.1
// are both built on top of these helpers.
#pragma once

#include <numbers>
#include <span>
#include <vector>

namespace cbtc::geom {

inline constexpr double two_pi = 2.0 * std::numbers::pi;
inline constexpr double pi = std::numbers::pi;

/// Normalizes an angle to [0, 2*pi).
[[nodiscard]] double norm_angle(double theta);

/// Signed smallest rotation from `a` to `b`, in (-pi, pi].
[[nodiscard]] double angle_diff(double b, double a);

/// Absolute circular distance between two angles, in [0, pi].
[[nodiscard]] double angle_dist(double a, double b);

/// True if `theta` lies on the counterclockwise arc from `lo` to `hi`
/// (all normalized; the arc includes both endpoints).
[[nodiscard]] bool angle_in_ccw_arc(double theta, double lo, double hi);

/// The largest circular gap between consecutive directions.
///
/// Directions need not be sorted or normalized. Returns 2*pi for an
/// empty set (the whole circle is one gap) and for a single direction.
[[nodiscard]] double max_circular_gap(std::span<const double> directions);

/// The paper's gap-alpha test (Section 2): true iff some cone of degree
/// `alpha` centered at the node contains no direction, i.e. iff the
/// largest circular gap between consecutive directions exceeds `alpha`.
[[nodiscard]] bool has_alpha_gap(std::span<const double> directions, double alpha);

/// Sorted normalized copy of `directions`.
[[nodiscard]] std::vector<double> sorted_normalized(std::span<const double> directions);

}  // namespace cbtc::geom
