#include "geom/angle.h"

#include <algorithm>
#include <cmath>

#include "geom/vec2.h"

namespace cbtc::geom {

double norm_angle(double theta) {
  double t = std::fmod(theta, two_pi);
  if (t < 0.0) t += two_pi;
  // fmod of a value just below a multiple of 2*pi can round to 2*pi.
  if (t >= two_pi) t -= two_pi;
  return t;
}

double angle_diff(double b, double a) {
  double d = norm_angle(b - a);
  if (d > pi) d -= two_pi;
  return d;
}

double angle_dist(double a, double b) { return std::abs(angle_diff(a, b)); }

bool angle_in_ccw_arc(double theta, double lo, double hi) {
  const double t = norm_angle(theta - lo);
  const double span = norm_angle(hi - lo);
  if (span == 0.0) return t == 0.0;
  return t <= span;
}

double max_circular_gap(std::span<const double> directions) {
  if (directions.empty()) return two_pi;
  std::vector<double> sorted = sorted_normalized(directions);
  if (sorted.size() == 1) return two_pi;
  double max_gap = 0.0;
  for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
    max_gap = std::max(max_gap, sorted[i + 1] - sorted[i]);
  }
  // Wrap-around gap from the last direction back to the first.
  max_gap = std::max(max_gap, two_pi - sorted.back() + sorted.front());
  return max_gap;
}

bool has_alpha_gap(std::span<const double> directions, double alpha) {
  // Strict test per Figure 1, with a tiny epsilon so a gap of exactly
  // alpha (common in symmetric layouts) is not misclassified by the
  // last-ulp noise of summed angles.
  return max_circular_gap(directions) > alpha + 1e-12;
}

std::vector<double> sorted_normalized(std::span<const double> directions) {
  std::vector<double> sorted;
  sorted.reserve(directions.size());
  for (double d : directions) sorted.push_back(norm_angle(d));
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace cbtc::geom
