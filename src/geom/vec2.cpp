#include "geom/vec2.h"

#include <ostream>

#include "geom/angle.h"

namespace cbtc::geom {

double vec2::bearing() const { return norm_angle(std::atan2(y, x)); }

std::ostream& operator<<(std::ostream& os, const vec2& v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

}  // namespace cbtc::geom
