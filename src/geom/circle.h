// Circles and circle-circle intersection.
//
// Used by the Figure 5 counterexample construction, where s and s' are
// the intersection points of the radius-R circles centered at u0 and v0.
#pragma once

#include <optional>
#include <utility>

#include "geom/vec2.h"

namespace cbtc::geom {

/// circ(c, r): the circle centered at `c` with radius `r`.
struct circle {
  vec2 center;
  double radius{0.0};

  [[nodiscard]] bool contains(const vec2& p) const {
    return distance_sq(center, p) <= radius * radius;
  }
  /// Signed distance of `p` to the circle boundary (negative inside).
  [[nodiscard]] double boundary_distance(const vec2& p) const;
};

/// The (up to two) intersection points of two circles. Returns
/// std::nullopt when the circles do not intersect (or are identical).
/// When tangent, both points coincide.
[[nodiscard]] std::optional<std::pair<vec2, vec2>> intersect(const circle& a, const circle& b);

}  // namespace cbtc::geom
