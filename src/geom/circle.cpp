#include "geom/circle.h"

#include <cmath>

namespace cbtc::geom {

double circle::boundary_distance(const vec2& p) const {
  return distance(center, p) - radius;
}

std::optional<std::pair<vec2, vec2>> intersect(const circle& a, const circle& b) {
  const vec2 d = b.center - a.center;
  const double dist = d.norm();
  if (dist == 0.0) return std::nullopt;  // concentric (or identical)
  if (dist > a.radius + b.radius) return std::nullopt;
  if (dist < std::abs(a.radius - b.radius)) return std::nullopt;  // one inside the other

  // Distance from a.center to the chord midpoint along d.
  const double x = (dist * dist - b.radius * b.radius + a.radius * a.radius) / (2.0 * dist);
  const double h_sq = a.radius * a.radius - x * x;
  const double h = h_sq > 0.0 ? std::sqrt(h_sq) : 0.0;

  const vec2 u = d / dist;
  const vec2 mid = a.center + x * u;
  const vec2 perp{-u.y, u.x};
  return std::make_pair(mid + h * perp, mid - h * perp);
}

}  // namespace cbtc::geom
