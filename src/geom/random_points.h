// Deterministic random node placement.
//
// The paper's evaluation places 100 nodes uniformly at random in a
// 1500 x 1500 region (Section 5). All generators take an explicit seed
// so every experiment is reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "geom/bbox.h"
#include "geom/vec2.h"

namespace cbtc::geom {

/// `n` points uniform in `region`.
[[nodiscard]] std::vector<vec2> uniform_points(std::size_t n, const bbox& region, std::uint64_t seed);

/// `n` points in gaussian clusters: `clusters` centers uniform in the
/// region, points assigned round-robin with standard deviation `sigma`
/// (clamped to the region). Models non-uniform sensor deployments.
[[nodiscard]] std::vector<vec2> clustered_points(std::size_t n, std::size_t clusters, double sigma,
                                                 const bbox& region, std::uint64_t seed);

/// Roughly `n` points on a jittered grid: grid pitch chosen so that
/// ~n cells fit in the region, each point perturbed by +-jitter*pitch.
[[nodiscard]] std::vector<vec2> jittered_grid_points(std::size_t n, double jitter, const bbox& region,
                                                     std::uint64_t seed);

}  // namespace cbtc::geom
