#include "geom/structured_points.h"

#include <algorithm>
#include <cmath>

namespace cbtc::geom {
namespace {

constexpr double two_pi = 6.283185307179586476925286766559;

}  // namespace

std::vector<vec2> grid_points(std::size_t n, const bbox& region) {
  std::vector<vec2> points;
  points.reserve(n);
  if (n == 0) return points;
  const auto cols = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  const std::size_t rows = (n + cols - 1) / cols;
  const double dx = region.width() / static_cast<double>(cols);
  const double dy = region.height() / static_cast<double>(rows);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t row = i / cols;
    const std::size_t col = i % cols;
    points.push_back({region.min.x + (static_cast<double>(col) + 0.5) * dx,
                      region.min.y + (static_cast<double>(row) + 0.5) * dy});
  }
  return points;
}

std::vector<vec2> ring_points(std::size_t n, const bbox& region, double radius_frac) {
  std::vector<vec2> points;
  points.reserve(n);
  if (n == 0) return points;
  const vec2 center{region.min.x + region.width() / 2.0, region.min.y + region.height() / 2.0};
  const double radius = std::min(region.width(), region.height()) * radius_frac;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = two_pi * static_cast<double>(i) / static_cast<double>(n);
    points.push_back({center.x + radius * std::cos(a), center.y + radius * std::sin(a)});
  }
  return points;
}

std::vector<vec2> tree_points(std::size_t n, std::size_t branching, const bbox& region) {
  std::vector<vec2> points;
  points.reserve(n);
  if (n == 0) return points;
  const std::size_t b = std::max<std::size_t>(2, branching);
  // Number of complete levels needed to hold n nodes (root = level 0).
  std::size_t levels = 1;
  std::size_t capacity = 1;
  std::size_t width = 1;
  while (capacity < n) {
    width *= b;
    capacity += width;
    ++levels;
  }
  const double dy = region.height() / static_cast<double>(levels);
  std::size_t produced = 0;
  std::size_t level_width = 1;
  for (std::size_t level = 0; level < levels && produced < n; ++level) {
    const std::size_t count = std::min(level_width, n - produced);
    const double y = region.max.y - (static_cast<double>(level) + 0.5) * dy;
    const double dx = region.width() / static_cast<double>(count);
    for (std::size_t i = 0; i < count; ++i) {
      points.push_back({region.min.x + (static_cast<double>(i) + 0.5) * dx, y});
    }
    produced += count;
    level_width *= b;
  }
  return points;
}

std::vector<vec2> star_points(std::size_t n, std::size_t arms, const bbox& region) {
  std::vector<vec2> points;
  points.reserve(n);
  if (n == 0) return points;
  const vec2 center{region.min.x + region.width() / 2.0, region.min.y + region.height() / 2.0};
  points.push_back(center);  // the hub
  if (n == 1) return points;
  const std::size_t a = std::max<std::size_t>(1, arms);
  const double reach = std::min(region.width(), region.height()) * 0.45;
  // Round-robin over the arms: node i sits on arm i % a at rank i / a.
  const std::size_t spokes = n - 1;
  const std::size_t ranks = (spokes + a - 1) / a;
  const double step = reach / static_cast<double>(ranks);
  for (std::size_t i = 0; i < spokes; ++i) {
    const std::size_t arm = i % a;
    const auto rank = static_cast<double>(i / a + 1);
    const double angle = two_pi * static_cast<double>(arm) / static_cast<double>(a);
    points.push_back({center.x + rank * step * std::cos(angle),
                      center.y + rank * step * std::sin(angle)});
  }
  return points;
}

}  // namespace cbtc::geom
