#include "geom/dynamic_grid.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cbtc::geom {
namespace {

/// Packs a signed cell coordinate pair into one hashable key. The
/// offset keeps coordinates non-negative for any realistic region.
constexpr std::uint64_t pack(std::int64_t cx, std::int64_t cy) {
  constexpr std::int64_t offset = std::int64_t{1} << 31;
  return (static_cast<std::uint64_t>(cx + offset) << 32) |
         static_cast<std::uint64_t>((cy + offset) & 0xffffffff);
}

}  // namespace

dynamic_grid::dynamic_grid(double cell_size) : cell_(cell_size) {
  if (cell_size <= 0.0) throw std::invalid_argument("dynamic_grid: cell_size must be positive");
}

std::uint64_t dynamic_grid::cell_key_of(const vec2& p) const {
  return pack(static_cast<std::int64_t>(std::floor(p.x / cell_)),
              static_cast<std::int64_t>(std::floor(p.y / cell_)));
}

void dynamic_grid::insert(point_index i, const vec2& p) {
  if (contains(i)) throw std::logic_error("dynamic_grid::insert: point already present");
  if (i >= present_.size()) {
    positions_.resize(i + 1);
    present_.resize(i + 1, false);
    cell_key_.resize(i + 1, 0);
  }
  positions_[i] = p;
  present_[i] = true;
  const std::uint64_t key = cell_key_of(p);
  cell_key_[i] = key;
  cells_[key].push_back(i);
  ++count_;
}

void dynamic_grid::drop_from_cell(point_index i, std::uint64_t key) {
  const auto it = cells_.find(key);
  std::vector<point_index>& bucket = it->second;
  bucket.erase(std::find(bucket.begin(), bucket.end(), i));
  if (bucket.empty()) cells_.erase(it);
}

void dynamic_grid::erase(point_index i) {
  if (!contains(i)) throw std::logic_error("dynamic_grid::erase: point not present");
  drop_from_cell(i, cell_key_[i]);
  present_[i] = false;
  --count_;
}

void dynamic_grid::move(point_index i, const vec2& p) {
  if (!contains(i)) throw std::logic_error("dynamic_grid::move: point not present");
  positions_[i] = p;
  const std::uint64_t key = cell_key_of(p);
  if (key != cell_key_[i]) {
    drop_from_cell(i, cell_key_[i]);
    cell_key_[i] = key;
    cells_[key].push_back(i);
  }
}

void dynamic_grid::query_radius_into(const vec2& center, double radius, point_index exclude,
                                     std::vector<point_index>& out) const {
  if (count_ == 0 || radius < 0.0) return;
  const double r_sq = radius * radius;
  const auto cx_lo = static_cast<std::int64_t>(std::floor((center.x - radius) / cell_));
  const auto cx_hi = static_cast<std::int64_t>(std::floor((center.x + radius) / cell_));
  const auto cy_lo = static_cast<std::int64_t>(std::floor((center.y - radius) / cell_));
  const auto cy_hi = static_cast<std::int64_t>(std::floor((center.y + radius) / cell_));

  for (std::int64_t cy = cy_lo; cy <= cy_hi; ++cy) {
    for (std::int64_t cx = cx_lo; cx <= cx_hi; ++cx) {
      const auto it = cells_.find(pack(cx, cy));
      if (it == cells_.end()) continue;
      for (const point_index i : it->second) {
        if (i == exclude) continue;
        if (distance_sq(positions_[i], center) <= r_sq) out.push_back(i);
      }
    }
  }
}

}  // namespace cbtc::geom
