// Spatial (Morton / Z-order) node ordering.
//
// At large n the static pipeline is memory-bound: the growth loop and
// the scatter passes walk nodes in id order, so two ids that are
// neighbors in space can live megabytes apart in every column
// (positions, adjacency, powers). Relabeling nodes so that ascending
// ids follow a Z-order curve over grid cells of ~one radio range makes
// spatial neighbors cache neighbors — the per-node grid query and the
// candidate position reads then hit lines that the previous node just
// pulled in.
//
// The permutation is a pure function of the positions (ties broken by
// original id), so a relabeled run is reproducible, and the engine
// inverts it before reports are assembled (api/engine.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/vec2.h"

namespace cbtc::geom {

/// A permutation `perm` with perm[new_id] = old_id that visits grid
/// cells of side `cell` in Morton (Z-curve) order, ids within a cell in
/// ascending original order. `cell` must be positive; a non-positive
/// cell (or an empty span) yields the identity.
[[nodiscard]] std::vector<std::uint32_t> spatial_order(std::span<const vec2> positions,
                                                       double cell);

}  // namespace cbtc::geom
