// Structured (deterministic, seed-free) deployment generators.
//
// Complements random_points.h with the planned layouts real sensor
// deployments use: exact lattices, ring perimeters, hierarchical
// (tree) tiers, and hub-and-spoke stars. All generators produce
// exactly `n` points inside `region` and are pure functions of their
// arguments — the same spec yields the same field at every seed, so
// structured scenarios isolate the protocol's randomness from the
// deployment's.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/bbox.h"
#include "geom/vec2.h"

namespace cbtc::geom {

/// Exact row-major lattice: ceil(sqrt(n)) columns, filled row by row,
/// cell-centered so no point touches the region boundary.
[[nodiscard]] std::vector<vec2> grid_points(std::size_t n, const bbox& region);

/// Evenly spaced points on a circle centered in the region;
/// `radius_frac` scales the radius relative to the shorter region side
/// (0.42 leaves a margin inside the unit box).
[[nodiscard]] std::vector<vec2> ring_points(std::size_t n, const bbox& region,
                                            double radius_frac = 0.42);

/// Complete `branching`-ary tree laid out level by level: the root at
/// the top-center, each level a horizontal rank below the previous —
/// the hierarchical tiers of an aggregation deployment. `branching`
/// is clamped to at least 2.
[[nodiscard]] std::vector<vec2> tree_points(std::size_t n, std::size_t branching,
                                            const bbox& region);

/// Hub-and-spoke: one hub in the center, the rest distributed over
/// `arms` evenly rotated rays, spaced outward in round-robin order.
/// `arms` is clamped to at least 1.
[[nodiscard]] std::vector<vec2> star_points(std::size_t n, std::size_t arms,
                                            const bbox& region);

}  // namespace cbtc::geom
