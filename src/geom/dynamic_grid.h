// Mutable uniform-grid spatial index for fixed-radius neighbor queries
// under motion and churn.
//
// geom::spatial_grid is an immutable CSR snapshot — perfect for one
// static instance, useless when positions change every mobility tick.
// dynamic_grid keeps the same query semantics (distance <= radius,
// same arithmetic, so results match spatial_grid / the brute-force
// reference exactly) but supports O(k) incremental insert / erase /
// move. Cells are hashed, not laid out over a bounding box, so points
// may wander anywhere in the plane.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geom/spatial_grid.h"
#include "geom/vec2.h"

namespace cbtc::geom {

class dynamic_grid {
 public:
  /// `cell_size` should be on the order of the typical query radius;
  /// it must be positive.
  explicit dynamic_grid(double cell_size);

  /// Registers point `i` at `p`. `i` must not currently be present
  /// (ids may be re-inserted after erase).
  void insert(point_index i, const vec2& p);

  /// Removes point `i` from the index (its id may be re-inserted later).
  void erase(point_index i);

  /// Updates the position of present point `i`.
  void move(point_index i, const vec2& p);

  [[nodiscard]] bool contains(point_index i) const {
    return i < present_.size() && present_[i];
  }
  [[nodiscard]] const vec2& position(point_index i) const { return positions_[i]; }
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] double cell_size() const { return cell_; }

  /// Appends every present point with distance(center, p) <= radius to
  /// `out`, excluding `exclude` (pass spatial_grid::npos to keep all).
  void query_radius_into(const vec2& center, double radius, point_index exclude,
                         std::vector<point_index>& out) const;

 private:
  [[nodiscard]] std::uint64_t cell_key_of(const vec2& p) const;
  void drop_from_cell(point_index i, std::uint64_t key);

  double cell_;
  std::size_t count_{0};
  std::vector<vec2> positions_;          // indexed by point id
  std::vector<bool> present_;
  std::vector<std::uint64_t> cell_key_;  // current cell of each present point
  std::unordered_map<std::uint64_t, std::vector<point_index>> cells_;
};

}  // namespace cbtc::geom
