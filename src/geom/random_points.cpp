#include "geom/random_points.h"

#include <algorithm>
#include <cmath>

namespace cbtc::geom {

std::vector<vec2> uniform_points(std::size_t n, const bbox& region, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> ux(region.min.x, region.max.x);
  std::uniform_real_distribution<double> uy(region.min.y, region.max.y);
  std::vector<vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) pts.push_back({ux(rng), uy(rng)});
  return pts;
}

std::vector<vec2> clustered_points(std::size_t n, std::size_t clusters, double sigma,
                                   const bbox& region, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> ux(region.min.x, region.max.x);
  std::uniform_real_distribution<double> uy(region.min.y, region.max.y);
  std::normal_distribution<double> gauss(0.0, sigma);

  std::vector<vec2> centers;
  centers.reserve(std::max<std::size_t>(1, clusters));
  for (std::size_t c = 0; c < std::max<std::size_t>(1, clusters); ++c) {
    centers.push_back({ux(rng), uy(rng)});
  }

  std::vector<vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const vec2& c = centers[i % centers.size()];
    pts.push_back(region.clamp({c.x + gauss(rng), c.y + gauss(rng)}));
  }
  return pts;
}

std::vector<vec2> jittered_grid_points(std::size_t n, double jitter, const bbox& region,
                                       std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const double aspect = region.width() / region.height();
  const auto cols = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n) * aspect)));
  const auto rows = static_cast<std::size_t>(std::ceil(static_cast<double>(n) / static_cast<double>(cols)));
  const double px = region.width() / static_cast<double>(cols);
  const double py = region.height() / static_cast<double>(rows);
  std::uniform_real_distribution<double> jx(-jitter * px, jitter * px);
  std::uniform_real_distribution<double> jy(-jitter * py, jitter * py);

  std::vector<vec2> pts;
  pts.reserve(rows * cols);
  for (std::size_t r = 0; r < rows && pts.size() < n; ++r) {
    for (std::size_t c = 0; c < cols && pts.size() < n; ++c) {
      const vec2 base{region.min.x + (static_cast<double>(c) + 0.5) * px,
                      region.min.y + (static_cast<double>(r) + 0.5) * py};
      pts.push_back(region.clamp({base.x + jx(rng), base.y + jy(rng)}));
    }
  }
  return pts;
}

}  // namespace cbtc::geom
