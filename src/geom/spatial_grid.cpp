#include "geom/spatial_grid.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cbtc::geom {

spatial_grid::spatial_grid(std::span<const vec2> points, double cell_size)
    : points_(points.begin(), points.end()), cell_(cell_size) {
  if (cell_size <= 0.0) throw std::invalid_argument("spatial_grid: cell_size must be positive");

  if (points_.empty()) {
    nx_ = ny_ = 1;
    cell_start_.assign(2, 0);
    return;
  }

  bounds_.min = bounds_.max = points_[0];
  for (const vec2& p : points_) {
    bounds_.min.x = std::min(bounds_.min.x, p.x);
    bounds_.min.y = std::min(bounds_.min.y, p.y);
    bounds_.max.x = std::max(bounds_.max.x, p.x);
    bounds_.max.y = std::max(bounds_.max.y, p.y);
  }
  nx_ = std::max<std::int64_t>(1, static_cast<std::int64_t>(bounds_.width() / cell_) + 1);
  ny_ = std::max<std::int64_t>(1, static_cast<std::int64_t>(bounds_.height() / cell_) + 1);

  const std::size_t ncells = static_cast<std::size_t>(nx_ * ny_);
  std::vector<std::uint32_t> counts(ncells, 0);
  auto cell_index = [&](const vec2& p) {
    const std::int64_t cx = std::min(cell_of(p.x, bounds_.min.x), nx_ - 1);
    const std::int64_t cy = std::min(cell_of(p.y, bounds_.min.y), ny_ - 1);
    return static_cast<std::size_t>(cy * nx_ + cx);
  };
  for (const vec2& p : points_) ++counts[cell_index(p)];

  cell_start_.assign(ncells + 1, 0);
  for (std::size_t c = 0; c < ncells; ++c) cell_start_[c + 1] = cell_start_[c] + counts[c];
  cell_points_.resize(points_.size());
  std::vector<std::uint32_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (point_index i = 0; i < points_.size(); ++i) {
    cell_points_[cursor[cell_index(points_[i])]++] = i;
  }
}

std::int64_t spatial_grid::cell_of(double x, double lo) const {
  return static_cast<std::int64_t>(std::floor((x - lo) / cell_));
}

std::vector<point_index> spatial_grid::query_radius(const vec2& center, double radius,
                                                    point_index exclude) const {
  std::vector<point_index> out;
  query_radius_into(center, radius, exclude, out);
  return out;
}

void spatial_grid::query_radius_into(const vec2& center, double radius, point_index exclude,
                                     std::vector<point_index>& out) const {
  if (points_.empty() || radius < 0.0) return;
  const double r_sq = radius * radius;

  const std::int64_t cx_lo = std::clamp(cell_of(center.x - radius, bounds_.min.x), std::int64_t{0}, nx_ - 1);
  const std::int64_t cx_hi = std::clamp(cell_of(center.x + radius, bounds_.min.x), std::int64_t{0}, nx_ - 1);
  const std::int64_t cy_lo = std::clamp(cell_of(center.y - radius, bounds_.min.y), std::int64_t{0}, ny_ - 1);
  const std::int64_t cy_hi = std::clamp(cell_of(center.y + radius, bounds_.min.y), std::int64_t{0}, ny_ - 1);

  for (std::int64_t cy = cy_lo; cy <= cy_hi; ++cy) {
    for (std::int64_t cx = cx_lo; cx <= cx_hi; ++cx) {
      const std::size_t c = static_cast<std::size_t>(cy * nx_ + cx);
      for (std::uint32_t k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
        const point_index i = cell_points_[k];
        if (i == exclude) continue;
        if (distance_sq(points_[i], center) <= r_sq) out.push_back(i);
      }
    }
  }
}

std::vector<point_index> brute_force_radius_query(std::span<const vec2> points, const vec2& center,
                                                  double radius, point_index exclude) {
  std::vector<point_index> out;
  const double r_sq = radius * radius;
  for (point_index i = 0; i < points.size(); ++i) {
    if (i == exclude) continue;
    if (distance_sq(points[i], center) <= r_sq) out.push_back(i);
  }
  return out;
}

}  // namespace cbtc::geom
