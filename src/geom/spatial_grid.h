// Uniform-grid spatial index for fixed-radius neighbor queries.
//
// CBTC repeatedly asks "which nodes lie within distance r of u?". A
// uniform grid with cell size ~R answers this in O(k) per query instead
// of O(n), which matters for the scaling benchmarks (experiment X4).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/bbox.h"
#include "geom/vec2.h"

namespace cbtc::geom {

/// Index of a point in the input span (node id in callers).
using point_index = std::uint32_t;

class spatial_grid {
 public:
  /// Builds an index over `points`. `cell_size` should be on the order
  /// of the typical query radius; it must be positive.
  spatial_grid(std::span<const vec2> points, double cell_size);

  /// Indices of all points with distance(center, p) <= radius,
  /// excluding `exclude` (pass npos to keep all points).
  static constexpr point_index npos = static_cast<point_index>(-1);
  [[nodiscard]] std::vector<point_index> query_radius(const vec2& center, double radius,
                                                      point_index exclude = npos) const;

  /// Appends matches to `out` instead of allocating (hot-path variant).
  void query_radius_into(const vec2& center, double radius, point_index exclude,
                         std::vector<point_index>& out) const;

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] double cell_size() const { return cell_; }

 private:
  [[nodiscard]] std::int64_t cell_of(double x, double lo) const;

  std::vector<vec2> points_;
  double cell_{1.0};
  bbox bounds_{};
  std::int64_t nx_{0};
  std::int64_t ny_{0};
  // CSR-style layout: cell_start_[c]..cell_start_[c+1] indexes into cell_points_.
  std::vector<std::uint32_t> cell_start_;
  std::vector<point_index> cell_points_;
};

/// Reference O(n) implementation used to cross-check the grid in tests.
[[nodiscard]] std::vector<point_index> brute_force_radius_query(std::span<const vec2> points,
                                                                const vec2& center, double radius,
                                                                point_index exclude = spatial_grid::npos);

}  // namespace cbtc::geom
