// 2-D vector / point type used throughout the library.
//
// Positions are points in the Euclidean plane (the paper's model places
// every node at coordinates (x(u), y(u))). All angles are radians.
#pragma once

#include <cmath>
#include <iosfwd>

namespace cbtc::geom {

/// A 2-D vector (also used as a point in the plane).
struct vec2 {
  double x{0.0};
  double y{0.0};

  constexpr vec2() = default;
  constexpr vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr vec2& operator+=(const vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr vec2& operator-=(const vec2& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr vec2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }
  constexpr vec2& operator/=(double s) {
    x /= s;
    y /= s;
    return *this;
  }

  [[nodiscard]] friend constexpr vec2 operator+(vec2 a, const vec2& b) { return a += b; }
  [[nodiscard]] friend constexpr vec2 operator-(vec2 a, const vec2& b) { return a -= b; }
  [[nodiscard]] friend constexpr vec2 operator*(vec2 a, double s) { return a *= s; }
  [[nodiscard]] friend constexpr vec2 operator*(double s, vec2 a) { return a *= s; }
  [[nodiscard]] friend constexpr vec2 operator/(vec2 a, double s) { return a /= s; }
  [[nodiscard]] friend constexpr vec2 operator-(const vec2& a) { return {-a.x, -a.y}; }
  [[nodiscard]] friend constexpr bool operator==(const vec2& a, const vec2& b) {
    return a.x == b.x && a.y == b.y;
  }

  /// Dot product.
  [[nodiscard]] constexpr double dot(const vec2& o) const { return x * o.x + y * o.y; }
  /// 2-D cross product (z component of the 3-D cross product).
  [[nodiscard]] constexpr double cross(const vec2& o) const { return x * o.y - y * o.x; }
  /// Squared Euclidean norm.
  [[nodiscard]] constexpr double norm_sq() const { return x * x + y * y; }
  /// Euclidean norm.
  [[nodiscard]] double norm() const { return std::hypot(x, y); }
  /// Unit vector in the same direction. Undefined for the zero vector.
  [[nodiscard]] vec2 unit() const {
    const double n = norm();
    return {x / n, y / n};
  }
  /// Counterclockwise rotation by `theta` radians.
  [[nodiscard]] vec2 rotated(double theta) const {
    const double c = std::cos(theta);
    const double s = std::sin(theta);
    return {c * x - s * y, s * x + c * y};
  }
  /// Bearing of this vector in [0, 2*pi). Undefined for the zero vector.
  [[nodiscard]] double bearing() const;
};

/// Euclidean distance between two points.
[[nodiscard]] inline double distance(const vec2& a, const vec2& b) { return (b - a).norm(); }

/// Squared Euclidean distance between two points.
[[nodiscard]] constexpr double distance_sq(const vec2& a, const vec2& b) {
  return (b - a).norm_sq();
}

/// Point at unit distance from the origin with the given bearing.
[[nodiscard]] inline vec2 from_bearing(double theta) { return {std::cos(theta), std::sin(theta)}; }

/// Point at distance `r` from `origin` with the given bearing.
[[nodiscard]] inline vec2 polar(const vec2& origin, double r, double theta) {
  return origin + r * from_bearing(theta);
}

std::ostream& operator<<(std::ostream& os, const vec2& v);

}  // namespace cbtc::geom
