// Axis-aligned bounding boxes (deployment regions).
#pragma once

#include <algorithm>

#include "geom/vec2.h"

namespace cbtc::geom {

/// A closed axis-aligned rectangle [min.x, max.x] x [min.y, max.y].
struct bbox {
  vec2 min;
  vec2 max;

  /// The paper's deployment region: a w x h rectangle anchored at the origin.
  [[nodiscard]] static constexpr bbox rect(double w, double h) { return {{0.0, 0.0}, {w, h}}; }

  [[nodiscard]] constexpr double width() const { return max.x - min.x; }
  [[nodiscard]] constexpr double height() const { return max.y - min.y; }
  [[nodiscard]] constexpr double area() const { return width() * height(); }

  [[nodiscard]] constexpr bool contains(const vec2& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }

  /// Closest point of the box to `p`.
  [[nodiscard]] vec2 clamp(const vec2& p) const {
    return {std::clamp(p.x, min.x, max.x), std::clamp(p.y, min.y, max.y)};
  }
};

}  // namespace cbtc::geom
