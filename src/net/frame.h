// Length-prefixed message framing over a tcp_stream.
//
// Every frame is a 4-byte big-endian payload length followed by the
// payload (a JSON document at the layer above). The length bound
// rejects corrupt or hostile prefixes before allocating anything; a
// connection that dies mid-frame surfaces as net_error from the
// stream layer, never as a half-parsed message.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "net/socket.h"

namespace cbtc::net {

/// Largest accepted payload. Generous for this protocol: the biggest
/// legitimate frame is a batch_request embedding a fixed-position
/// scenario (a few bytes per node).
inline constexpr std::size_t max_frame_bytes = 16u << 20;

/// Returns the wire bytes for one frame (prefix + payload). Throws
/// net_error if the payload exceeds max_frame_bytes.
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Sends one frame within `timeout_ms`.
void write_frame(tcp_stream& stream, std::string_view payload, int timeout_ms);

/// Receives one frame within `timeout_ms`; throws net_error on an
/// oversized prefix, EOF mid-frame, or timeout (timeout_error).
[[nodiscard]] std::string read_frame(tcp_stream& stream, int timeout_ms);

}  // namespace cbtc::net
