#include "net/service.h"

#include <exception>
#include <utility>

#include "api/wire.h"
#include "net/frame.h"

namespace cbtc::net {
namespace {

/// Thrown by the partial sink to sever a fault-injected connection
/// mid-batch (distinct from net_error so handle() knows not to
/// attempt an error frame on a deliberately-killed connection).
struct injected_drop {};

}  // namespace

scenario_server::scenario_server(serve_config cfg)
    : cfg_(std::move(cfg)), listener_(cfg_.bind_address, cfg_.port) {}

void scenario_server::run() {
  while (!stop_.load()) {
    // Short accept timeout so stop() is honored promptly.
    std::optional<tcp_stream> conn = listener_.accept(200);
    if (!conn) continue;
    const bool inject =
        cfg_.drop_after_partials > 0 && dropped_connections_ < cfg_.drop_connections;
    handle(std::move(*conn), inject);
    if (inject) ++dropped_connections_;
  }
}

template <class Report, class RunBlocks>
void scenario_server::stream_and_reply(tcp_stream& conn, bool inject_drop,
                                       const RunBlocks& run_blocks) {
  std::uint64_t sent = 0;
  const auto sink = [&](std::uint64_t block, const Report& r) {
    const std::string payload = api::wire::encode_block_partial(block, r);
    write_frame(conn, payload, cfg_.io_timeout_ms);
    if (cfg_.duplicate_partials) write_frame(conn, payload, cfg_.io_timeout_ms);
    ++sent;
    if (inject_drop && sent >= cfg_.drop_after_partials) throw injected_drop{};
  };
  run_blocks(sink);
  write_frame(conn, api::wire::encode_done(sent), cfg_.io_timeout_ms);
}

void scenario_server::handle(tcp_stream conn, bool inject_drop) {
  using namespace api;  // wire messages + spec types
  try {
    wire::check_hello(wire::decode_message(read_frame(conn, cfg_.io_timeout_ms)));
    write_frame(conn, wire::encode_hello(), cfg_.io_timeout_ms);

    const wire::message msg = wire::decode_message(read_frame(conn, cfg_.io_timeout_ms));
    if (msg.type == wire::message_type::shutdown) {
      stop_.store(true);
      return;
    }
    const wire::batch_request req = wire::decode_batch_request(msg);
    const unsigned threads = req.threads != 0 ? req.threads : cfg_.threads;
    switch (req.mode) {
      case wire::batch_mode::static_runs:
        stream_and_reply<batch_report>(conn, inject_drop, [&](const auto& sink) {
          engine_.run_batch_blocks(req.scenario, req.seeds, req.blocks, threads, sink);
        });
        break;
      case wire::batch_mode::dynamic_runs:
        stream_and_reply<dynamic_batch_report>(conn, inject_drop, [&](const auto& sink) {
          engine_.run_batch_blocks(req.scenario, req.sim, req.seeds, req.blocks, threads, sink);
        });
        break;
      case wire::batch_mode::lifetime_runs:
        stream_and_reply<lifetime_batch_report>(conn, inject_drop, [&](const auto& sink) {
          engine_.run_batch_blocks(req.scenario, req.lifetime, req.seeds, req.blocks, threads,
                                   sink);
        });
        break;
    }
  } catch (const injected_drop&) {
    // Deliberate mid-batch kill: drop the connection with no done and
    // no error frame, exactly like a crashed shard.
  } catch (const net_error&) {
    // The peer vanished; nothing left to tell it.
  } catch (const std::exception& e) {
    // Request-level failure (bad request, engine error): report it if
    // the connection still works, then drop.
    try {
      write_frame(conn, api::wire::encode_error(e.what()), cfg_.io_timeout_ms);
    } catch (const net_error&) {
    }
  }
}

}  // namespace cbtc::net
