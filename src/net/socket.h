// Minimal blocking TCP transport with explicit timeouts.
//
// The service layer needs exactly four operations — connect, accept,
// send-everything, receive-exactly — each bounded by a deadline so a
// hung peer surfaces as a timeout_error the dispatcher can retry,
// never as a stuck thread. Implemented with plain POSIX sockets and
// poll(): no event loop, no extra dependency; one blocking connection
// per dispatcher worker is the intended concurrency model.
//
// Security: there is no authentication or encryption. Listeners must
// only ever bind trusted-network interfaces (the tools default to
// loopback).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace cbtc::net {

/// Transport failure (connection refused / reset / EOF mid-message).
class net_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A deadline expired. Subclass of net_error so "retry on any
/// transport failure" catches both.
class timeout_error : public net_error {
 public:
  using net_error::net_error;
};

/// One connected TCP stream (move-only; closes on destruction).
class tcp_stream {
 public:
  tcp_stream() = default;
  /// Adopts an already-connected file descriptor (listener side).
  explicit tcp_stream(int fd) : fd_(fd) {}
  ~tcp_stream() { close(); }

  tcp_stream(tcp_stream&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  tcp_stream& operator=(tcp_stream&& other) noexcept;
  tcp_stream(const tcp_stream&) = delete;
  tcp_stream& operator=(const tcp_stream&) = delete;

  /// Connects to host:port within `timeout_ms`. Numeric IPv4 addresses
  /// and hostnames both resolve (getaddrinfo).
  [[nodiscard]] static tcp_stream connect(const std::string& host, std::uint16_t port,
                                          int timeout_ms);

  /// Writes all `len` bytes or throws (timeout_error / net_error).
  /// The deadline covers the whole write, not each chunk.
  void send_all(const void* data, std::size_t len, int timeout_ms);

  /// Reads exactly `len` bytes or throws; EOF mid-read is a net_error
  /// ("peer closed the connection").
  void recv_all(void* data, std::size_t len, int timeout_ms);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void close();

 private:
  int fd_{-1};
};

/// A listening TCP socket. Port 0 binds an ephemeral port; `port()`
/// reports the actual one.
class tcp_listener {
 public:
  tcp_listener(const std::string& bind_address, std::uint16_t port);
  ~tcp_listener() { close(); }

  tcp_listener(const tcp_listener&) = delete;
  tcp_listener& operator=(const tcp_listener&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Waits up to `timeout_ms` for a connection; nullopt on timeout so
  /// an accept loop can poll a stop flag. Throws net_error once the
  /// listener is closed (the idiomatic cross-thread shutdown signal).
  [[nodiscard]] std::optional<tcp_stream> accept(int timeout_ms);

  void close();

 private:
  int fd_{-1};
  std::uint16_t port_{0};
};

}  // namespace cbtc::net
