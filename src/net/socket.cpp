#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace cbtc::net {
namespace {

using clock = std::chrono::steady_clock;

[[noreturn]] void fail_errno(const std::string& what) {
  throw net_error(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    fail_errno("fcntl(O_NONBLOCK)");
  }
}

/// Milliseconds left until `deadline`, clamped to >= 0.
int remaining_ms(clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(deadline - clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

/// Polls `fd` for `events` until the deadline; throws timeout_error on
/// expiry, net_error on poll failure.
void wait_for(int fd, short events, clock::time_point deadline, const char* what) {
  for (;;) {
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int ms = remaining_ms(deadline);
    const int rc = ::poll(&p, 1, ms);
    if (rc > 0) return;
    if (rc == 0) throw timeout_error(std::string(what) + " timed out");
    if (errno == EINTR) continue;
    fail_errno(what);
  }
}

}  // namespace

tcp_stream& tcp_stream::operator=(tcp_stream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void tcp_stream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

tcp_stream tcp_stream::connect(const std::string& host, std::uint16_t port, int timeout_ms) {
  const auto deadline = clock::now() + std::chrono::milliseconds(timeout_ms);

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  if (const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res); rc != 0) {
    throw net_error("resolve " + host + ": " + gai_strerror(rc));
  }

  std::string last_error = "no addresses for " + host;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    tcp_stream stream(fd);  // closes on any failure path below
    set_nonblocking(fd);
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(res);
      return stream;
    }
    if (errno != EINPROGRESS) {
      last_error = std::string("connect ") + host + ":" + service + ": " + std::strerror(errno);
      continue;
    }
    try {
      wait_for(fd, POLLOUT, deadline, "connect");
    } catch (const net_error& e) {
      last_error = e.what();
      continue;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      last_error =
          std::string("connect ") + host + ":" + service + ": " + std::strerror(err != 0 ? err : errno);
      continue;
    }
    ::freeaddrinfo(res);
    return stream;
  }
  ::freeaddrinfo(res);
  throw net_error(last_error);
}

void tcp_stream::send_all(const void* data, std::size_t len, int timeout_ms) {
  if (fd_ < 0) throw net_error("send on a closed stream");
  const auto deadline = clock::now() + std::chrono::milliseconds(timeout_ms);
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd_, p + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      wait_for(fd_, POLLOUT, deadline, "send");
      continue;
    }
    fail_errno("send");
  }
}

void tcp_stream::recv_all(void* data, std::size_t len, int timeout_ms) {
  if (fd_ < 0) throw net_error("recv on a closed stream");
  const auto deadline = clock::now() + std::chrono::milliseconds(timeout_ms);
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd_, p + got, len - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) throw net_error("peer closed the connection");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      wait_for(fd_, POLLIN, deadline, "recv");
      continue;
    }
    fail_errno("recv");
  }
}

tcp_listener::tcp_listener(const std::string& bind_address, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) fail_errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    close();
    throw net_error("bind address '" + bind_address + "' is not a numeric IPv4 address");
  }
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    close();
    throw net_error("bind " + bind_address + ":" + std::to_string(port) + ": " +
                    std::strerror(err));
  }
  if (::listen(fd_, 16) < 0) {
    const int err = errno;
    close();
    throw net_error(std::string("listen: ") + std::strerror(err));
  }
  set_nonblocking(fd_);

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int err = errno;
    close();
    throw net_error(std::string("getsockname: ") + std::strerror(err));
  }
  port_ = ntohs(bound.sin_port);
}

void tcp_listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<tcp_stream> tcp_listener::accept(int timeout_ms) {
  if (fd_ < 0) throw net_error("accept on a closed listener");
  const auto deadline = clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      tcp_stream stream(fd);
      set_nonblocking(fd);
      return stream;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      try {
        wait_for(fd_, POLLIN, deadline, "accept");
      } catch (const timeout_error&) {
        return std::nullopt;
      }
      continue;
    }
    fail_errno("accept");
  }
}

}  // namespace cbtc::net
