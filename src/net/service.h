// The cbtc_serve scenario service: accepts batch requests over the
// wire protocol (api/wire.h) and streams block partials back.
//
// Concurrency model: one connection at a time. A shard's parallelism
// lives *inside* a request — seed blocks fan across the process-wide
// executor — so serializing connections wastes nothing and keeps the
// failure model trivial (a dead connection aborts exactly one
// request; the dispatcher re-dispatches its unfinished blocks to any
// live shard).
//
// Security: no authentication, no encryption — bind trusted-network
// interfaces only (the default is loopback).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "api/engine.h"
#include "net/socket.h"

namespace cbtc::net {

struct serve_config {
  std::string bind_address{"127.0.0.1"};
  std::uint16_t port{0};  ///< 0 = ephemeral (see scenario_server::port)
  unsigned threads{0};    ///< engine threads per request; a request's own
                          ///< nonzero `threads` hint wins. 0 = hardware.
  int io_timeout_ms{30000};

  // -- fault injection (tests only) ---------------------------------
  // Deterministically simulates a shard killed mid-batch: the first
  // `drop_connections` request connections are severed (no done frame,
  // no further partials) after `drop_after_partials` partials went out.
  std::size_t drop_after_partials{0};
  std::size_t drop_connections{0};
  /// Sends every partial twice — exercises the dispatcher's
  /// duplicate-suppression path.
  bool duplicate_partials{false};
};

class scenario_server {
 public:
  /// Binds the listener (throws net_error on failure). Serving starts
  /// with run().
  explicit scenario_server(serve_config cfg);

  /// The bound port (the actual one when cfg.port was 0).
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  /// Accept-and-serve loop; returns after stop() (checked between
  /// connections) or a client's shutdown frame.
  void run();

  /// Signals run() to return. Safe from any thread; the current
  /// connection finishes first.
  void stop() { stop_.store(true); }

 private:
  void handle(tcp_stream conn, bool inject_drop);

  template <class Report, class RunBlocks>
  void stream_and_reply(tcp_stream& conn, bool inject_drop, const RunBlocks& run_blocks);

  serve_config cfg_;
  tcp_listener listener_;
  std::atomic<bool> stop_{false};
  std::size_t dropped_connections_{0};
  api::engine engine_;
};

}  // namespace cbtc::net
