#include "net/frame.h"

#include <array>
#include <cstdint>

namespace cbtc::net {
namespace {

std::array<unsigned char, 4> encode_length(std::size_t len) {
  const auto n = static_cast<std::uint32_t>(len);
  return {static_cast<unsigned char>(n >> 24), static_cast<unsigned char>(n >> 16),
          static_cast<unsigned char>(n >> 8), static_cast<unsigned char>(n)};
}

}  // namespace

std::string encode_frame(std::string_view payload) {
  if (payload.size() > max_frame_bytes) {
    throw net_error("frame payload of " + std::to_string(payload.size()) +
                    " bytes exceeds the " + std::to_string(max_frame_bytes) + "-byte limit");
  }
  const auto prefix = encode_length(payload.size());
  std::string out;
  out.reserve(prefix.size() + payload.size());
  out.append(reinterpret_cast<const char*>(prefix.data()), prefix.size());
  out.append(payload);
  return out;
}

void write_frame(tcp_stream& stream, std::string_view payload, int timeout_ms) {
  const std::string bytes = encode_frame(payload);
  stream.send_all(bytes.data(), bytes.size(), timeout_ms);
}

std::string read_frame(tcp_stream& stream, int timeout_ms) {
  std::array<unsigned char, 4> prefix{};
  stream.recv_all(prefix.data(), prefix.size(), timeout_ms);
  const std::uint32_t len = (static_cast<std::uint32_t>(prefix[0]) << 24) |
                            (static_cast<std::uint32_t>(prefix[1]) << 16) |
                            (static_cast<std::uint32_t>(prefix[2]) << 8) |
                            static_cast<std::uint32_t>(prefix[3]);
  if (len > max_frame_bytes) {
    throw net_error("incoming frame of " + std::to_string(len) + " bytes exceeds the " +
                    std::to_string(max_frame_bytes) + "-byte limit");
  }
  std::string payload(len, '\0');
  if (len > 0) stream.recv_all(payload.data(), payload.size(), timeout_ms);
  return payload;
}

}  // namespace cbtc::net
