#include "algo/shrink_back.h"

#include <algorithm>

#include "geom/arc_set.h"

namespace cbtc::algo {

namespace {

node_result shrink_node(const node_result& in, double alpha, const shrink_back_options& opts) {
  if (in.neighbors.empty() || in.level_powers.size() <= 1) return in;

  const std::vector<double> all_dirs = in.directions();
  const geom::arc_set full_cover = geom::arc_set::cover(all_dirs, alpha);

  // dir_i = directions discovered at level <= i; find the minimum i with
  // cover_alpha(dir_i) == cover_alpha(dir_k). Neighbors are not sorted
  // by level (they are sorted by distance), so accumulate per level.
  const std::size_t num_levels = in.level_powers.size();
  std::vector<std::vector<double>> dirs_at_level(num_levels);
  for (const neighbor_record& r : in.neighbors) {
    if (r.distance > 0.0) dirs_at_level[r.level].push_back(r.direction);  // coincident: no bearing
  }

  std::vector<double> prefix_dirs;
  std::size_t keep_level = num_levels - 1;
  for (std::size_t i = 0; i < num_levels; ++i) {
    prefix_dirs.insert(prefix_dirs.end(), dirs_at_level[i].begin(), dirs_at_level[i].end());
    const geom::arc_set cover_i = geom::arc_set::cover(prefix_dirs, alpha);
    if (cover_i.approx_equals(full_cover, opts.cover_epsilon)) {
      keep_level = i;
      break;
    }
  }
  if (keep_level == num_levels - 1) return in;

  node_result out;
  out.boundary = in.boundary;
  out.level_powers.assign(in.level_powers.begin(),
                          in.level_powers.begin() + static_cast<std::ptrdiff_t>(keep_level) + 1);
  out.final_power = out.level_powers.back();
  out.neighbors.reserve(in.neighbors.size());
  for (const neighbor_record& r : in.neighbors) {
    if (r.level <= keep_level) out.neighbors.push_back(r);
  }
  return out;
}

}  // namespace

cbtc_result apply_shrink_back(const cbtc_result& in, const shrink_back_options& opts) {
  cbtc_result out;
  out.params = in.params;
  out.nodes.reserve(in.nodes.size());
  for (const node_result& n : in.nodes) {
    if (opts.boundary_only && !n.boundary) {
      out.nodes.push_back(n);
    } else {
      out.nodes.push_back(shrink_node(n, in.params.alpha, opts));
    }
  }
  return out;
}

}  // namespace cbtc::algo
