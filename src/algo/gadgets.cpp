#include "algo/gadgets.h"

#include <cmath>
#include <stdexcept>

#include "geom/angle.h"

namespace cbtc::algo::gadgets {

using geom::distance;
using geom::pi;
using geom::polar;
using geom::vec2;

namespace {
// Angular guard so strict gap-alpha comparisons cannot flip on float
// rounding: constructed gaps sit `angle_guard` inside their bound.
constexpr double angle_guard = 1e-6;
}  // namespace

example21 make_example21(double alpha, double max_range) {
  if (!(alpha > 2.0 * pi / 3.0 && alpha <= 5.0 * pi / 6.0 + 1e-12))
    throw std::invalid_argument("make_example21: alpha must be in (2*pi/3, 5*pi/6]");

  const double R = max_range;
  // The paper sets angle(v,u0,u1) = angle(v,u0,u2) = pi/3 + eps = alpha/2.
  // We pull eps in by a guard so u0's cone toward v closes strictly.
  const double eps = (alpha / 2.0 - pi / 3.0) - angle_guard;
  if (eps <= 0.0) throw std::invalid_argument("make_example21: alpha too close to 2*pi/3");

  example21 g;
  g.alpha = alpha;
  g.max_range = R;

  const vec2 u0{0.0, 0.0};
  const vec2 v{R, 0.0};
  // Triangle u0-v-u1: angle at u0 = pi/3 + eps, at v = pi/3 - eps, so the
  // angle at u1 is pi/3. Law of sines gives d(u0,u1).
  const double d01 = R * std::sin(pi / 3.0 - eps) / std::sin(pi / 3.0);
  const vec2 u1 = polar(u0, d01, pi / 3.0 + eps);
  const vec2 u2 = polar(u0, d01, -(pi / 3.0 + eps));
  const vec2 u3 = polar(u0, R / 2.0, pi);  // angle(v,u0,u3) = pi

  g.positions = {u0, u1, u2, u3, v};
  if (!g.validate()) throw std::logic_error("make_example21: construction invariants failed");
  return g;
}

bool example21::validate() const {
  const vec2& pu0 = positions[u0];
  const vec2& pu1 = positions[u1];
  const vec2& pu2 = positions[u2];
  const vec2& pu3 = positions[u3];
  const vec2& pv = positions[v];
  const double R = max_range;

  // d(u0, v) = R: the critical G_R edge.
  if (std::abs(distance(pu0, pv) - R) > 1e-6) return false;
  // u1, u2, u3 are strictly inside u0's range…
  if (!(distance(pu0, pu1) < R && distance(pu0, pu2) < R && distance(pu0, pu3) < R)) return false;
  // …but outside v's range (so N_alpha(v) = {u0} even at max power).
  if (!(distance(pv, pu1) > R && distance(pv, pu2) > R && distance(pv, pu3) > R)) return false;

  // u0's three discovered directions leave no alpha-gap once u1,u2,u3
  // are found (Example 2.1's point: u0 stops short of v).
  const double a1 = (pu1 - pu0).bearing();
  const double a2 = (pu2 - pu0).bearing();
  const double a3 = (pu3 - pu0).bearing();
  const double dirs[] = {a1, a2, a3};
  if (geom::has_alpha_gap(dirs, alpha)) return false;

  // And v's direction from u0 lies inside the (closed) widest gap,
  // i.e. u0 genuinely does not need v for coverage.
  return true;
}

figure5 make_figure5(double eps, double max_range) {
  if (!(eps > 0.0 && eps < pi / 6.0))
    throw std::invalid_argument("make_figure5: eps must be in (0, pi/6)");

  const double R = max_range;
  const double alpha = 5.0 * pi / 6.0 + eps;

  figure5 g;
  g.alpha = alpha;
  g.max_range = R;

  const vec2 pu0{0.0, 0.0};
  const vec2 pv0{R, 0.0};

  // u1: angle(u1, u0, v0) = pi/2, small distance; u3 constraint below
  // forces d(u0,u1) to shrink, found by halving.
  // u2: next ray counterclockwise after u0->u1, at angle min(alpha, pi)
  //     from it, distance R/2 (as chosen in the proof).
  const double u2_bearing = pi / 2.0 + std::min(alpha, pi) - angle_guard;
  const vec2 pu2 = polar(pu0, R / 2.0, u2_bearing);

  // u3: on the horizontal line through s' = (R/2, -sqrt(3)/2 R) slightly
  // left of s', such that angle(u3, u0, u1) = 5*pi/6 + eps/2 < alpha.
  // Its bearing from u0 is -(pi/3 + eps/2).
  const double u3_bearing_down = pi / 3.0 + eps / 2.0;  // below the u0-v0 axis
  const double d03 = (R * std::sqrt(3.0) / 2.0) / std::sin(u3_bearing_down);
  const vec2 pu3 = polar(pu0, d03, -u3_bearing_down);

  // Mirror through the midpoint of u0 v0 (the construction is symmetric
  // under the point reflection u_i <-> v_i).
  auto mirror = [&](const vec2& p) { return vec2{R - p.x, -p.y}; };

  // d(u0,u1) = d(v0,v1) must be small enough that u3/v1 and v3/u1 stay
  // farther than R apart; halve until every validation holds.
  double d01 = R / 20.0;
  for (int attempt = 0; attempt < 60; ++attempt) {
    const vec2 pu1 = polar(pu0, d01, pi / 2.0);
    g.positions = {pu0, pu1, pu2, pu3, pv0, mirror(pu1), mirror(pu2), mirror(pu3)};
    if (g.validate()) return g;
    d01 /= 2.0;
  }
  throw std::logic_error("make_figure5: could not satisfy construction invariants");
}

bool figure5::validate() const {
  const double R = max_range;
  const vec2& pu0 = positions[u0];
  const vec2& pv0 = positions[v0];

  // The single inter-cluster G_R edge: d(u0, v0) = R.
  if (std::abs(distance(pu0, pv0) - R) > 1e-6) return false;

  // Intra-cluster: hubs reach their satellites.
  for (graph::node_id i : {u1, u2, u3}) {
    if (!(distance(pu0, positions[i]) < R)) return false;
  }
  for (graph::node_id i : {v1, v2, v3}) {
    if (!(distance(pv0, positions[i]) < R)) return false;
  }

  // Inter-cluster: every (u_i, v_j) with i + j >= 1 is out of range.
  const graph::node_id us[] = {u0, u1, u2, u3};
  const graph::node_id vs[] = {v0, v1, v2, v3};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i + j == 0) continue;
      if (!(distance(positions[us[i]], positions[vs[j]]) > R)) return false;
    }
  }

  // u0's satellites close its cones *without* v0: directions to
  // u1, u2, u3 must have no alpha-gap, and all three sit strictly
  // closer than R (so u0's final power stays below p(R)).
  const double dirs_u0[] = {(positions[u1] - pu0).bearing(), (positions[u2] - pu0).bearing(),
                            (positions[u3] - pu0).bearing()};
  if (geom::has_alpha_gap(dirs_u0, alpha)) return false;
  const double dirs_v0[] = {(positions[v1] - pv0).bearing(), (positions[v2] - pv0).bearing(),
                            (positions[v3] - pv0).bearing()};
  if (geom::has_alpha_gap(dirs_v0, alpha)) return false;

  // Satellites themselves cannot reach anyone but their own hub…
  // (checked above: inter-cluster all > R). Within a cluster the
  // satellites may or may not see each other; either way the u-cluster
  // and v-cluster stay internally connected through the hub.
  return true;
}

}  // namespace cbtc::algo::gadgets
