// Optimization 3: pairwise (redundant) edge removal (Section 3.3).
//
// Every edge gets an id eid(u,v) = (d(u,v), max(ID_u, ID_v),
// min(ID_u, ID_v)), compared lexicographically. Definition 3.5: if v
// and w are both neighbors of u, angle(v,u,w) < pi/3, and
// eid(u,v) > eid(u,w), then (u,v) is *redundant*. Theorem 3.6: all
// redundant edges can be removed simultaneously while preserving
// connectivity (for alpha <= 5*pi/6).
//
// The paper's practical variant keeps redundant edges that are not
// longer than the longest non-redundant edge (they cost no extra
// transmission power but help congestion); we implement both.
#pragma once

#include <compare>
#include <span>

#include "geom/vec2.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace cbtc::util {
class thread_pool;
}

namespace cbtc::algo {

/// Lexicographic edge id from Section 3.3.
struct edge_id {
  double length{0.0};
  graph::node_id hi{0};
  graph::node_id lo{0};

  [[nodiscard]] static edge_id of(graph::node_id u, graph::node_id v,
                                  std::span<const geom::vec2> positions);

  [[nodiscard]] friend constexpr auto operator<=>(const edge_id& a, const edge_id& b) = default;
};

/// How the length gate of the practical optimization is interpreted.
/// The paper says: "we remove only redundant edges with length greater
/// than the longest non-redundant edges" — ambiguous between:
enum class pairwise_gate {
  /// Remove a redundant edge if it exceeds the longest non-redundant
  /// edge at *either* endpoint. Every node's radius then equals its
  /// longest non-redundant edge — the maximum power saving (and the
  /// variant whose Table 1 radii match the paper's almost exactly).
  either_endpoint,
  /// Remove only if it exceeds the longest non-redundant edge at
  /// *both* endpoints — keeps more edges (less congestion) but leaves
  /// some nodes transmitting farther than they need.
  both_endpoints,
};

struct pairwise_options {
  /// When false (the paper's "pairwise edge removal optimization"),
  /// only redundant edges longer than the longest non-redundant edge
  /// (per `gate`) are removed. When true, every redundant edge is
  /// removed (the full strength of Theorem 3.6).
  bool remove_all{false};
  pairwise_gate gate{pairwise_gate::either_endpoint};
};

struct pairwise_result {
  graph::undirected_graph topology;
  std::size_t redundant_edges{0};  // edges classified redundant
  std::size_t removed_edges{0};    // edges actually removed
};

/// Classifies redundancy on `g` (typically E_alpha or E^s/E^- after the
/// earlier optimizations) and removes edges per `opts`.
[[nodiscard]] pairwise_result apply_pairwise_removal(const graph::undirected_graph& g,
                                                     std::span<const geom::vec2> positions,
                                                     const pairwise_options& opts = {});

/// Same, with the per-edge redundancy classification (the hot part —
/// one witness scan over both endpoints' neighborhoods per edge) run
/// as a deterministic block reduce on `pool`. Identical output for any
/// pool width: classifications land in per-edge slots and the
/// redundancy count folds in fixed block order.
[[nodiscard]] pairwise_result apply_pairwise_removal(const graph::undirected_graph& g,
                                                     std::span<const geom::vec2> positions,
                                                     const pairwise_options& opts,
                                                     util::thread_pool& pool);

/// True if edge {u, v} is redundant in `g` per Definition 3.5 (checked
/// from both endpoints; the witness w may sit at either end).
[[nodiscard]] bool is_redundant_edge(const graph::undirected_graph& g,
                                     std::span<const geom::vec2> positions, graph::node_id u,
                                     graph::node_id v);

}  // namespace cbtc::algo
