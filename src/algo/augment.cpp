#include "algo/augment.h"

#include <algorithm>
#include <limits>

#include "graph/euclidean.h"
#include "graph/robustness.h"
#include "graph/traversal.h"

namespace cbtc::algo {

namespace {

/// Component labels of `g` with edge {a, b} removed.
graph::component_labels split_without(const graph::undirected_graph& g, const graph::edge& e) {
  graph::undirected_graph cut = g;
  cut.remove_edge(e.u, e.v);
  return graph::connected_components(cut);
}

}  // namespace

augment_result augment_bridge_resilience(const graph::undirected_graph& topology,
                                         std::span<const geom::vec2> positions, double max_range) {
  augment_result res;
  res.topology = topology;
  const graph::undirected_graph gr = graph::build_max_power_graph(positions, max_range);

  // Iterate until no avoidable bridge remains. Each added edge kills at
  // least one bridge, so this terminates in O(#bridges) rounds.
  for (;;) {
    const std::vector<graph::edge> current_bridges = graph::bridges(res.topology);
    bool fixed_any = false;
    std::size_t unavoidable = 0;

    for (const graph::edge& bridge : current_bridges) {
      // Recompute the split for each bridge against the *current*
      // topology (earlier fixes may have already covered this one).
      if (!res.topology.has_edge(bridge.u, bridge.v)) continue;
      const graph::component_labels sides = split_without(res.topology, bridge);
      if (sides.same_component(bridge.u, bridge.v)) continue;  // no longer a bridge

      // Shortest G_R edge (other than the bridge) crossing the cut.
      graph::edge best{graph::invalid_node, graph::invalid_node};
      double best_len = std::numeric_limits<double>::infinity();
      for (const graph::edge& cand : gr.edges()) {
        if (cand == bridge) continue;
        if (res.topology.has_edge(cand.u, cand.v)) continue;
        if (sides.same_component(cand.u, cand.v)) continue;
        const double len = graph::edge_length(positions, cand.u, cand.v);
        if (len < best_len) {
          best_len = len;
          best = cand;
        }
      }
      if (best.u == graph::invalid_node) {
        ++unavoidable;  // G_R itself has no bypass for this cut
        continue;
      }
      res.topology.add_edge(best.u, best.v);
      ++res.edges_added;
      fixed_any = true;
    }

    if (!fixed_any) {
      res.unavoidable_bridges = unavoidable;
      break;
    }
  }
  return res;
}

}  // namespace cbtc::algo
