// End-to-end topology construction: CBTC growth + optional optimizations.
//
// This is the main entry point of the library: it strings together the
// basic algorithm (Section 2) and the three optimizations (Section 3)
// in the order the paper composes them:
//   growth -> shrink-back (op1) -> asymmetric removal (op2, alpha <=
//   2*pi/3 only) -> pairwise removal (op3).
#pragma once

#include <span>

#include "algo/gain_removal.h"
#include "algo/oracle.h"
#include "algo/pairwise.h"
#include "algo/params.h"
#include "algo/shrink_back.h"
#include "geom/vec2.h"
#include "graph/graph.h"
#include "radio/power_model.h"
#include "radio/propagation.h"

namespace cbtc::algo {

struct optimization_set {
  bool shrink_back{false};
  /// Requested asymmetric edge removal; silently skipped when
  /// alpha > 2*pi/3 (the paper's "all applicable optimizations").
  bool asymmetric_removal{false};
  bool pairwise_removal{false};
  /// Run the gain-aware removal (algo/gain_removal.h) as the op3 pass.
  /// Requires the link-aware apply_optimizations / build_topology
  /// overloads (the power-model-only paths have no gains to price
  /// witness paths with and throw std::invalid_argument). Note the
  /// link-aware paths also auto-route `pairwise_removal` to this pass
  /// whenever the propagation is non-isotropic — Theorem 3.6's angle
  /// witness is unit-disk-only — so this knob is for forcing the
  /// gain-aware pass under isotropic propagation.
  bool gain_aware{false};
  /// Shared op3 tuning: gain-aware removal reuses remove_all and the
  /// endpoint gate (over required link power instead of length).
  pairwise_options pairwise{};

  [[nodiscard]] static optimization_set none() { return {}; }
  [[nodiscard]] static optimization_set all() {
    return {.shrink_back = true, .asymmetric_removal = true, .pairwise_removal = true};
  }
};

struct topology_result {
  /// Growth outcome after shrink-back (== raw growth if op1 disabled).
  cbtc_result growth;
  /// The final symmetric topology.
  graph::undirected_graph topology;
  /// Whether op2 actually ran (requested *and* alpha <= 2*pi/3).
  bool asymmetric_applied{false};
  /// op3 statistics (zeros if op3 disabled).
  std::size_t redundant_edges{0};
  std::size_t removed_edges{0};
  /// Whether op3 ran as the gain-aware pass (requested explicitly or
  /// auto-routed for a non-isotropic link).
  bool gain_aware_applied{false};
  /// Edges the gain-aware repair pass re-added (0 for the angle pass).
  std::size_t restored_edges{0};
};

/// Applies the selected optimizations to an already-grown CBTC outcome
/// (from the centralized oracle or the distributed protocol) and builds
/// the final symmetric topology. `grown.params` decides whether the
/// asymmetric removal is applicable. Throws std::invalid_argument when
/// opts.gain_aware is set — pricing witness paths needs a link model;
/// use the overload below.
[[nodiscard]] topology_result apply_optimizations(cbtc_result grown,
                                                  std::span<const geom::vec2> positions,
                                                  const optimization_set& opts = {});

/// Link-aware variant: op3 runs as the gain-aware removal whenever
/// opts.gain_aware is set or the propagation is non-isotropic (and as
/// Theorem 3.6's angle pass otherwise, bit for bit the overload
/// above).
[[nodiscard]] topology_result apply_optimizations(cbtc_result grown,
                                                  std::span<const geom::vec2> positions,
                                                  const radio::link_model& link,
                                                  const optimization_set& opts = {});

/// Runs CBTC(alpha) and the selected optimizations over `positions`.
/// Equivalent to apply_optimizations(run_cbtc(...), positions, opts).
[[nodiscard]] topology_result build_topology(std::span<const geom::vec2> positions,
                                             const radio::power_model& power,
                                             const cbtc_params& params,
                                             const optimization_set& opts = {});

/// Gain-aware variant (isotropic propagation delegates to the plain
/// power-model path, bit for bit).
[[nodiscard]] topology_result build_topology(std::span<const geom::vec2> positions,
                                             const radio::link_model& link,
                                             const cbtc_params& params,
                                             const optimization_set& opts = {});

}  // namespace cbtc::algo
