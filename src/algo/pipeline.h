// End-to-end topology construction: CBTC growth + optional optimizations.
//
// This is the main entry point of the library: it strings together the
// basic algorithm (Section 2) and the three optimizations (Section 3)
// in the order the paper composes them:
//   growth -> shrink-back (op1) -> asymmetric removal (op2, alpha <=
//   2*pi/3 only) -> pairwise removal (op3).
#pragma once

#include <span>

#include "algo/oracle.h"
#include "algo/pairwise.h"
#include "algo/params.h"
#include "algo/shrink_back.h"
#include "geom/vec2.h"
#include "graph/graph.h"
#include "radio/power_model.h"
#include "radio/propagation.h"

namespace cbtc::algo {

struct optimization_set {
  bool shrink_back{false};
  /// Requested asymmetric edge removal; silently skipped when
  /// alpha > 2*pi/3 (the paper's "all applicable optimizations").
  bool asymmetric_removal{false};
  bool pairwise_removal{false};
  pairwise_options pairwise{};

  [[nodiscard]] static optimization_set none() { return {}; }
  [[nodiscard]] static optimization_set all() {
    return {.shrink_back = true, .asymmetric_removal = true, .pairwise_removal = true};
  }
};

struct topology_result {
  /// Growth outcome after shrink-back (== raw growth if op1 disabled).
  cbtc_result growth;
  /// The final symmetric topology.
  graph::undirected_graph topology;
  /// Whether op2 actually ran (requested *and* alpha <= 2*pi/3).
  bool asymmetric_applied{false};
  /// op3 statistics (zeros if op3 disabled).
  std::size_t redundant_edges{0};
  std::size_t removed_edges{0};
};

/// Applies the selected optimizations to an already-grown CBTC outcome
/// (from the centralized oracle or the distributed protocol) and builds
/// the final symmetric topology. `grown.params` decides whether the
/// asymmetric removal is applicable.
[[nodiscard]] topology_result apply_optimizations(cbtc_result grown,
                                                  std::span<const geom::vec2> positions,
                                                  const optimization_set& opts = {});

/// Runs CBTC(alpha) and the selected optimizations over `positions`.
/// Equivalent to apply_optimizations(run_cbtc(...), positions, opts).
[[nodiscard]] topology_result build_topology(std::span<const geom::vec2> positions,
                                             const radio::power_model& power,
                                             const cbtc_params& params,
                                             const optimization_set& opts = {});

/// Gain-aware variant (isotropic propagation delegates to the plain
/// power-model path, bit for bit).
[[nodiscard]] topology_result build_topology(std::span<const geom::vec2> positions,
                                             const radio::link_model& link,
                                             const cbtc_params& params,
                                             const optimization_set& opts = {});

}  // namespace cbtc::algo
