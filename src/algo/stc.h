// Sethu-Gerety step topology control (STC) for non-uniform path loss.
//
// Sethu & Gerety, "A new distributed topology control algorithm for
// wireless environments with non-uniform path loss and multipath
// propagation" (arXiv:0709.0961), give a topology-control rule that —
// unlike CBTC's cone argument — never reasons about geometry at all,
// only about per-link power. That makes it a natural yardstick for the
// gain-aware half of this codebase: it is correct under any
// propagation model the radio layer can produce, at the price of
// having no worst-case degree or stretch guarantee tied to alpha.
//
// Per node u, scan the candidate neighbors v in ascending
// gain_edge_id(u, v) order and keep the link unless some
// previously-kept neighbor k can reach v more cheaply than u can:
//
//     keep(u, v)  unless  exists k in kept(u) with (k, v) a candidate
//                         link and id(k, v) < id(u, v)
//
// (id(u, k) < id(u, v) holds automatically from the scan order.) The
// final topology is the symmetric union of the per-node kept sets.
//
// Connectivity relative to the candidate graph G_R is unconditional,
// by induction over the strict total order on edge ids: if (u, v) is
// rejected, the witnesses (u, k) and (k, v) both have strictly
// smaller ids, and expanding rejected witnesses recursively must
// terminate, so every candidate edge is spanned by a kept path. The
// per-node decisions are independent (each reads only the candidate
// graph), so the construction parallelizes as slot writes and is
// bitwise identical at any pool width.
#pragma once

#include <cstddef>
#include <span>

#include "geom/vec2.h"
#include "graph/graph.h"
#include "radio/propagation.h"
#include "util/parallel.h"

namespace cbtc::algo {

struct stc_result {
  /// Symmetric union of the per-node kept link sets.
  graph::undirected_graph topology;
  /// Directed keep decisions summed over all nodes (an edge kept from
  /// both sides counts twice).
  std::size_t kept_links{0};
  /// Directed reject decisions summed over all nodes.
  std::size_t pruned_links{0};
};

/// Runs STC over a prebuilt gain-aware candidate graph G_R.
[[nodiscard]] stc_result build_stc_topology(const graph::undirected_graph& candidates,
                                            std::span<const geom::vec2> positions,
                                            const radio::link_model& link,
                                            util::thread_pool& pool);

/// Convenience overload: builds the candidate graph itself.
[[nodiscard]] stc_result build_stc_topology(std::span<const geom::vec2> positions,
                                            const radio::link_model& link,
                                            util::thread_pool& pool);

}  // namespace cbtc::algo
