#include "algo/stc.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "algo/gain_removal.h"
#include "graph/euclidean.h"

namespace cbtc::algo {

stc_result build_stc_topology(std::span<const geom::vec2> positions,
                              const radio::link_model& link, util::thread_pool& pool) {
  const graph::undirected_graph candidates = graph::build_max_power_graph(positions, link, pool);
  return build_stc_topology(candidates, positions, link, pool);
}

stc_result build_stc_topology(const graph::undirected_graph& candidates,
                              std::span<const geom::vec2> positions,
                              const radio::link_model& link, util::thread_pool& pool) {
  stc_result res;
  const std::size_t n = candidates.num_nodes();

  // Per-node keep decisions: each slot written by exactly one task, so
  // the outcome is width-independent by construction. kept[u] ends up
  // sorted by node id (the output contract of from_adjacency), with
  // the scan itself running in ascending gain_edge_id order.
  std::vector<std::vector<graph::node_id>> kept(n);
  res.kept_links = pool.reduce<std::size_t>(
      n, 0,
      [&](std::size_t lo, std::size_t hi) {
        std::size_t count = 0;
        std::vector<std::pair<gain_edge_id, graph::node_id>> order;
        std::vector<graph::node_id> mine;
        for (std::size_t u = lo; u < hi; ++u) {
          const auto uid = static_cast<graph::node_id>(u);
          const std::span<const graph::node_id> nb = candidates.neighbors(uid);
          order.clear();
          order.reserve(nb.size());
          for (const graph::node_id v : nb) {
            order.emplace_back(gain_edge_id::of(uid, v, positions, link), v);
          }
          // gain_edge_id is a strict total order (power, then ids), so
          // the sort has no equal keys and the scan order is unique.
          std::sort(order.begin(), order.end());
          mine.clear();
          for (const auto& [eid_uv, v] : order) {
            bool covered = false;
            for (const graph::node_id k : mine) {
              const std::span<const graph::node_id> knb = candidates.neighbors(k);
              if (!std::binary_search(knb.begin(), knb.end(), v)) continue;
              if (gain_edge_id::of(k, v, positions, link) < eid_uv) {
                covered = true;
                break;
              }
            }
            if (!covered) mine.push_back(v);
          }
          count += mine.size();
          kept[u] = mine;
          std::sort(kept[u].begin(), kept[u].end());
        }
        return count;
      },
      [](std::size_t& total, const std::size_t& part) { total += part; });
  res.pruned_links = candidates.num_edges() * 2 - res.kept_links;

  // Symmetrize: edge {u, v} survives iff either endpoint kept it. The
  // reverse lists are gathered serially (push order ascending in u, so
  // they come out sorted), then merged per node in parallel.
  std::vector<std::vector<graph::node_id>> incoming(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (const graph::node_id v : kept[u]) {
      incoming[v].push_back(static_cast<graph::node_id>(u));
    }
  }
  std::vector<std::vector<graph::node_id>> adj(n);
  pool.parallel_for(n, [&](std::size_t u) {
    adj[u].resize(kept[u].size() + incoming[u].size());
    const auto end = std::set_union(kept[u].begin(), kept[u].end(), incoming[u].begin(),
                                    incoming[u].end(), adj[u].begin());
    adj[u].erase(end, adj[u].end());
  });
  res.topology = graph::undirected_graph::from_adjacency(std::move(adj));
  return res;
}

}  // namespace cbtc::algo
