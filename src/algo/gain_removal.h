// Gain-aware redundant-edge removal (op3 for non-isotropic links).
//
// Theorem 3.6's pairwise removal is a unit-disk argument: its witness
// is *geometric* (a neighbor inside the pi/3 cone is closer to the far
// endpoint by the law of cosines), which is only meaningful when the
// power needed for a link is a monotone function of its length. Under
// lognormal shadowing or obstacle fields that monotonicity is gone —
// a short link through a wall can cost more than a long free-space
// one — so since the propagation layer landed, non-isotropic presets
// could not run any op3-class pass at all.
//
// This pass replaces the angle witness with a *link-power* witness:
// the symmetric edge (u, v) is redundant iff the gain-aware candidate
// graph G_R contains a u-v path of at most `max_witness_hops` hops in
// which every hop's required link power is strictly smaller than the
// power required for (u, v) itself — strictly, in the total order
//
//     gain_edge_id = (required_power, max(u, v), min(u, v))
//
// which breaks power ties by node ids exactly like algo::edge_id
// breaks length ties. The strict descent makes the replacement
// argument well-founded: walking any dropped edge's witness path and
// recursively expanding dropped hops must terminate, because each
// expansion strictly decreases the largest gain_edge_id involved, so
// connectivity of the candidate graph is preserved by induction — the
// same induction that proves Theorem 3.6, with power substituted for
// length.
//
// Under isotropic propagation required power is a strictly increasing
// function of length, so the two total orders coincide, and every
// Definition 3.5 witness w of (u, v) yields the 2-hop candidate path
// u—w—v with strictly smaller ids ((u, w) is shorter by definition;
// (w, v) is strictly shorter than (u, v) by the law of cosines with
// the angle < pi/3). Hence the gain-aware drop set is a superset of
// the Theorem 3.6 drop set (with matching gate/remove_all settings) —
// the pass is a strict generalization, not a divergent heuristic.
//
// One caveat the angle pass does not have: Theorem 3.6 removes edges
// of a topology that the cone-coverage property already proved
// connected, while this pass's induction proves connectivity in the
// *candidate* graph — the witness path may use candidate edges the
// input topology dropped during growth/shrink-back. For alpha <=
// 2*pi/3 every such hop is again covered inside a cone and the
// argument closes; for the paper's alpha = 5*pi/6 default it can (in
// adversarial geometries) leave the surviving topology with more
// components than the input. A deterministic serial repair pass
// therefore re-adds dropped edges in ascending gain_edge_id order
// until the input's component partition is restored — in practice it
// restores nothing, but it turns "connected with overwhelming
// probability" into "connected, unconditionally".
#pragma once

#include <cstddef>
#include <span>

#include "algo/pairwise.h"
#include "geom/vec2.h"
#include "graph/graph.h"
#include "radio/propagation.h"
#include "util/parallel.h"

namespace cbtc::algo {

/// Total order on symmetric edges by required link power, ties broken
/// by node ids. The power is bitwise symmetric (distance and gain both
/// are), so both endpoints compute the identical id.
struct gain_edge_id {
  double power{0.0};
  graph::node_id hi{0};
  graph::node_id lo{0};

  [[nodiscard]] static gain_edge_id of(graph::node_id u, graph::node_id v,
                                       std::span<const geom::vec2> positions,
                                       const radio::link_model& link);

  [[nodiscard]] friend constexpr auto operator<=>(const gain_edge_id&,
                                                  const gain_edge_id&) = default;
};

struct gain_removal_options {
  /// Remove every redundant edge (ignore the radius gate), mirroring
  /// pairwise_options::remove_all.
  bool remove_all{false};
  /// Which endpoints' power budget must shrink for a removal to count
  /// (same semantics as the pairwise gate, with required link power in
  /// place of edge length).
  pairwise_gate gate{pairwise_gate::either_endpoint};
  /// Hop bound of the witness-path search. 2 keeps the pass
  /// Theorem-3.6-comparable and near-linear; larger bounds run a
  /// depth-limited breadth-first search per edge.
  std::size_t max_witness_hops{2};
};

struct gain_removal_result {
  graph::undirected_graph topology;
  /// Edges with a strictly cheaper witness path in the candidate graph.
  std::size_t redundant_edges{0};
  /// Edges actually removed (redundant, past the gate, minus restores).
  std::size_t removed_edges{0};
  /// Edges the connectivity repair pass re-added (0 in practice; see
  /// the header comment).
  std::size_t restored_edges{0};
};

/// Applies gain-aware removal to the symmetric topology `g`.
/// `candidates` is the gain-aware max-power graph G_R over the same
/// node set (graph::build_max_power_graph(positions, link, pool));
/// witness paths live there, so redundancy decisions are independent
/// of which edges earlier passes already pruned.
[[nodiscard]] gain_removal_result apply_gain_aware_removal(
    const graph::undirected_graph& g, const graph::undirected_graph& candidates,
    std::span<const geom::vec2> positions, const radio::link_model& link,
    const gain_removal_options& opts, util::thread_pool& pool);

/// Convenience overload: builds the candidate graph itself.
[[nodiscard]] gain_removal_result apply_gain_aware_removal(const graph::undirected_graph& g,
                                                           std::span<const geom::vec2> positions,
                                                           const radio::link_model& link,
                                                           const gain_removal_options& opts,
                                                           util::thread_pool& pool);

/// Serial convenience overload.
[[nodiscard]] gain_removal_result apply_gain_aware_removal(const graph::undirected_graph& g,
                                                           std::span<const geom::vec2> positions,
                                                           const radio::link_model& link,
                                                           const gain_removal_options& opts = {});

}  // namespace cbtc::algo
