// Analytic node constructions from the paper.
//
// - Example 2.1 (Figure 2): a 5-node layout where the neighbor relation
//   N_alpha is asymmetric for 2*pi/3 < alpha <= 5*pi/6 — (v, u0) is in
//   N_alpha but (u0, v) is not, demonstrating why G_alpha must be the
//   *symmetric closure*.
// - Figure 5 (Theorem 2.4): an 8-node layout, connected in G_R, that
//   CBTC(alpha) disconnects for alpha = 5*pi/6 + eps. This witnesses
//   tightness of the 5*pi/6 bound.
//
// Both constructions are exact trigonometric placements; `validate()`
// helpers re-check every inequality the proofs rely on so tests fail
// loudly if a placement drifts.
#pragma once

#include <vector>

#include "geom/vec2.h"
#include "graph/types.h"

namespace cbtc::algo::gadgets {

struct example21 {
  std::vector<geom::vec2> positions;  // [u0, u1, u2, u3, v]
  double alpha{0.0};
  double max_range{0.0};  // R; d(u0, v) == R

  static constexpr graph::node_id u0 = 0;
  static constexpr graph::node_id u1 = 1;
  static constexpr graph::node_id u2 = 2;
  static constexpr graph::node_id u3 = 3;
  static constexpr graph::node_id v = 4;

  /// Re-derives the distance/angle inequalities used in Example 2.1;
  /// returns false if any fails.
  [[nodiscard]] bool validate() const;
};

/// Builds Example 2.1 for a given alpha in (2*pi/3, 5*pi/6]. The
/// paper's epsilon is alpha/2 - pi/3 (so that angle(v,u0,u1) = alpha/2);
/// a small angular guard keeps the strict gap test robust in floating
/// point.
[[nodiscard]] example21 make_example21(double alpha, double max_range = 500.0);

struct figure5 {
  std::vector<geom::vec2> positions;  // [u0, u1, u2, u3, v0, v1, v2, v3]
  double alpha{0.0};  // 5*pi/6 + eps
  double max_range{0.0};

  static constexpr graph::node_id u0 = 0;
  static constexpr graph::node_id u1 = 1;
  static constexpr graph::node_id u2 = 2;
  static constexpr graph::node_id u3 = 3;
  static constexpr graph::node_id v0 = 4;
  static constexpr graph::node_id v1 = 5;
  static constexpr graph::node_id v2 = 6;
  static constexpr graph::node_id v3 = 7;

  /// Checks every construction property from the proof of Theorem 2.4:
  /// d(u0,v0) == R; within each cluster all nodes are < R from the hub;
  /// across clusters every pair other than (u0,v0) is > R apart; and
  /// the u0/v0 cone constraints hold.
  [[nodiscard]] bool validate() const;
};

/// Builds the Figure 5 counterexample for alpha = 5*pi/6 + eps
/// (0 < eps <= pi/6 - a small margin).
[[nodiscard]] figure5 make_figure5(double eps, double max_range = 500.0);

}  // namespace cbtc::algo::gadgets
