#include "algo/pairwise.h"

#include <algorithm>
#include <vector>

#include "geom/angle.h"
#include "util/parallel.h"

namespace cbtc::algo {

edge_id edge_id::of(graph::node_id u, graph::node_id v, std::span<const geom::vec2> positions) {
  return {geom::distance(positions[u], positions[v]), std::max(u, v), std::min(u, v)};
}

namespace {

/// True if some neighbor w of `apex` witnesses the redundancy of the
/// edge (apex, other): angle(other, apex, w) < pi/3 and smaller eid.
bool has_witness(const graph::undirected_graph& g, std::span<const geom::vec2> positions,
                 graph::node_id apex, graph::node_id other) {
  const edge_id eid_uv = edge_id::of(apex, other, positions);
  if (eid_uv.length == 0.0) return false;  // zero-length edges are never redundant
  const double dir_other = (positions[other] - positions[apex]).bearing();
  for (graph::node_id w : g.neighbors(apex)) {
    if (w == other) continue;
    // A coincident witness has no meaningful bearing and violates the
    // strict-triangle argument of Theorem 3.6 (d(w,v) would equal
    // d(u,v), not undercut it); skip it.
    if (positions[w] == positions[apex]) continue;
    const double dir_w = (positions[w] - positions[apex]).bearing();
    // Strictly less than pi/3 (Definition 3.5), with last-ulp guard.
    if (geom::angle_dist(dir_other, dir_w) >= geom::pi / 3.0 - 1e-12) continue;
    if (edge_id::of(apex, w, positions) < eid_uv) return true;
  }
  return false;
}

}  // namespace

bool is_redundant_edge(const graph::undirected_graph& g, std::span<const geom::vec2> positions,
                       graph::node_id u, graph::node_id v) {
  return has_witness(g, positions, u, v) || has_witness(g, positions, v, u);
}

pairwise_result apply_pairwise_removal(const graph::undirected_graph& g,
                                       std::span<const geom::vec2> positions,
                                       const pairwise_options& opts) {
  util::thread_pool serial(1);
  return apply_pairwise_removal(g, positions, opts, serial);
}

pairwise_result apply_pairwise_removal(const graph::undirected_graph& g,
                                       std::span<const geom::vec2> positions,
                                       const pairwise_options& opts, util::thread_pool& pool) {
  pairwise_result res;
  const std::vector<graph::edge> edges = g.edges();
  // Per-edge classification: each slot written exactly once (chars,
  // not vector<bool> — concurrent bit writes would race), the count
  // reduced in fixed block order.
  std::vector<unsigned char> redundant(edges.size(), 0);
  res.redundant_edges = pool.reduce<std::size_t>(
      edges.size(), 0,
      [&](std::size_t lo, std::size_t hi) {
        std::size_t count = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          redundant[i] = is_redundant_edge(g, positions, edges[i].u, edges[i].v) ? 1 : 0;
          count += redundant[i];
        }
        return count;
      },
      [](std::size_t& total, const std::size_t& part) { total += part; });

  // Longest non-redundant edge incident to each node: removing only
  // redundant edges longer than this cannot increase any node's radius
  // and brings every node's radius down to exactly this length.
  std::vector<double> longest_needed(g.num_nodes(), 0.0);
  if (!opts.remove_all) {
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (redundant[i]) continue;
      const double len = geom::distance(positions[edges[i].u], positions[edges[i].v]);
      longest_needed[edges[i].u] = std::max(longest_needed[edges[i].u], len);
      longest_needed[edges[i].v] = std::max(longest_needed[edges[i].v], len);
    }
  }

  res.topology = graph::undirected_graph(g.num_nodes());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const auto [u, v] = edges[i];
    bool drop = redundant[i];
    if (drop && !opts.remove_all) {
      const double len = geom::distance(positions[u], positions[v]);
      drop = opts.gate == pairwise_gate::either_endpoint
                 ? (len > longest_needed[u] || len > longest_needed[v])
                 : (len > longest_needed[u] && len > longest_needed[v]);
    }
    if (drop) {
      ++res.removed_edges;
    } else {
      res.topology.add_edge(u, v);
    }
  }
  return res;
}

}  // namespace cbtc::algo
