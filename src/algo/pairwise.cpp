#include "algo/pairwise.h"

#include <algorithm>
#include <vector>

#include "geom/angle.h"
#include "util/parallel.h"

namespace cbtc::algo {

edge_id edge_id::of(graph::node_id u, graph::node_id v, std::span<const geom::vec2> positions) {
  return {geom::distance(positions[u], positions[v]), std::max(u, v), std::min(u, v)};
}

namespace {

/// True if some neighbor w of `apex` witnesses the redundancy of the
/// edge (apex, other): angle(other, apex, w) < pi/3 and smaller eid.
/// `eid_uv` is the edge's id, precomputed by the caller (it is the
/// same from either apex: the distance is symmetric bit for bit and
/// hi/lo are order-normalized).
bool has_witness(const graph::undirected_graph& g, std::span<const geom::vec2> positions,
                 graph::node_id apex, graph::node_id other, const edge_id& eid_uv) {
  if (eid_uv.length == 0.0) return false;  // zero-length edges are never redundant
  const double dir_other = (positions[other] - positions[apex]).bearing();
  for (graph::node_id w : g.neighbors(apex)) {
    if (w == other) continue;
    // A coincident witness has no meaningful bearing and violates the
    // strict-triangle argument of Theorem 3.6 (d(w,v) would equal
    // d(u,v), not undercut it); skip it.
    if (positions[w] == positions[apex]) continue;
    const double dir_w = (positions[w] - positions[apex]).bearing();
    // Strictly less than pi/3 (Definition 3.5), with last-ulp guard.
    if (geom::angle_dist(dir_other, dir_w) >= geom::pi / 3.0 - 1e-12) continue;
    if (edge_id::of(apex, w, positions) < eid_uv) return true;
  }
  return false;
}

}  // namespace

bool is_redundant_edge(const graph::undirected_graph& g, std::span<const geom::vec2> positions,
                       graph::node_id u, graph::node_id v) {
  const edge_id eid = edge_id::of(u, v, positions);
  return has_witness(g, positions, u, v, eid) || has_witness(g, positions, v, u, eid);
}

pairwise_result apply_pairwise_removal(const graph::undirected_graph& g,
                                       std::span<const geom::vec2> positions,
                                       const pairwise_options& opts) {
  util::thread_pool serial(1);
  return apply_pairwise_removal(g, positions, opts, serial);
}

pairwise_result apply_pairwise_removal(const graph::undirected_graph& g,
                                       std::span<const geom::vec2> positions,
                                       const pairwise_options& opts, util::thread_pool& pool) {
  pairwise_result res;
  const std::size_t n = g.num_nodes();

  // Lex-sorted edge table with per-node offsets: node u's up-edges
  // {u, v > u} occupy indices [eoff[u], eoff[u + 1]), so the index of
  // any incident edge is computable locally — the per-node passes
  // below never need a serial scatter.
  std::vector<std::size_t> eoff(n + 1, 0);
  {
    std::vector<std::size_t> updeg(n);
    pool.parallel_for(n, [&](std::size_t u) {
      const std::span<const graph::node_id> nb = g.neighbors(static_cast<graph::node_id>(u));
      updeg[u] = static_cast<std::size_t>(
          nb.end() - std::upper_bound(nb.begin(), nb.end(), static_cast<graph::node_id>(u)));
    });
    for (std::size_t u = 0; u < n; ++u) eoff[u + 1] = eoff[u] + updeg[u];
  }
  const std::size_t m = eoff[n];
  std::vector<graph::edge> edges(m);
  pool.parallel_for(n, [&](std::size_t u) {
    const auto uid = static_cast<graph::node_id>(u);
    const std::span<const graph::node_id> nb = g.neighbors(uid);
    std::size_t w = eoff[u];
    for (auto it = std::upper_bound(nb.begin(), nb.end(), uid); it != nb.end(); ++it) {
      edges[w++] = {uid, *it};
    }
  });
  /// Index of edge {a, b} (a < b) in the table.
  const auto edge_index = [&](graph::node_id a, graph::node_id b) {
    const std::span<const graph::node_id> nb = g.neighbors(a);
    const auto first = std::upper_bound(nb.begin(), nb.end(), a);
    return eoff[a] + static_cast<std::size_t>(std::lower_bound(first, nb.end(), b) - first);
  };

  // Per-edge classification: each slot written exactly once (chars,
  // not vector<bool> — concurrent bit writes would race), the count
  // reduced in fixed block order. The edge length is the first field
  // of its id; carrying it into the fold/drop passes below saves a
  // distance recomputation per pass.
  std::vector<unsigned char> redundant(m, 0);
  std::vector<double> lengths(m);
  res.redundant_edges = pool.reduce<std::size_t>(
      m, 0,
      [&](std::size_t lo, std::size_t hi) {
        std::size_t count = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          const auto [u, v] = edges[i];
          const edge_id eid = edge_id::of(u, v, positions);
          lengths[i] = eid.length;
          redundant[i] = has_witness(g, positions, u, v, eid) || has_witness(g, positions, v, u, eid)
                             ? 1
                             : 0;
          count += redundant[i];
        }
        return count;
      },
      [](std::size_t& total, const std::size_t& part) { total += part; });

  // Longest non-redundant edge incident to each node: removing only
  // redundant edges longer than this cannot increase any node's radius
  // and brings every node's radius down to exactly this length. One
  // slot per node, each written by exactly one task; max over a fixed
  // set of doubles is exact, so the result is width-independent.
  std::vector<double> longest_needed(n, 0.0);
  if (!opts.remove_all) {
    pool.parallel_for(n, [&](std::size_t u) {
      const auto uid = static_cast<graph::node_id>(u);
      double best = 0.0;
      std::size_t up = eoff[u];
      for (const graph::node_id v : g.neighbors(uid)) {
        const std::size_t i = v > uid ? up++ : edge_index(v, uid);
        if (!redundant[i]) best = std::max(best, lengths[i]);
      }
      longest_needed[u] = best;
    });
  }

  // Drop verdicts per edge slot; the removal count folds in fixed
  // block order.
  std::vector<unsigned char> drop(m, 0);
  res.removed_edges = pool.reduce<std::size_t>(
      m, 0,
      [&](std::size_t lo, std::size_t hi) {
        std::size_t count = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          bool d = redundant[i] != 0;
          if (d && !opts.remove_all) {
            const auto [u, v] = edges[i];
            const double len = lengths[i];
            d = opts.gate == pairwise_gate::either_endpoint
                    ? (len > longest_needed[u] || len > longest_needed[v])
                    : (len > longest_needed[u] && len > longest_needed[v]);
          }
          drop[i] = d ? 1 : 0;
          count += drop[i];
        }
        return count;
      },
      [](std::size_t& total, const std::size_t& part) { total += part; });

  // Surviving topology assembled as flat CSR: per-node kept-degree
  // count, exclusive prefix sum, parallel fill.
  std::vector<std::size_t> koff(n + 1, 0);
  {
    std::vector<std::size_t> kdeg(n);
    pool.parallel_for(n, [&](std::size_t u) {
      const auto uid = static_cast<graph::node_id>(u);
      std::size_t up = eoff[u];
      std::size_t count = 0;
      for (const graph::node_id v : g.neighbors(uid)) {
        const std::size_t i = v > uid ? up++ : edge_index(v, uid);
        if (!drop[i]) ++count;
      }
      kdeg[u] = count;
    });
    for (std::size_t u = 0; u < n; ++u) koff[u + 1] = koff[u] + kdeg[u];
  }
  std::vector<graph::node_id> kflat(koff[n]);
  pool.parallel_for(n, [&](std::size_t u) {
    const auto uid = static_cast<graph::node_id>(u);
    std::size_t up = eoff[u];
    std::size_t w = koff[u];
    for (const graph::node_id v : g.neighbors(uid)) {
      const std::size_t i = v > uid ? up++ : edge_index(v, uid);
      if (!drop[i]) kflat[w++] = v;
    }
  });
  res.topology = graph::undirected_graph::from_csr(std::move(koff), std::move(kflat));
  return res;
}

}  // namespace cbtc::algo
