// Centralized "oracle" execution of CBTC(alpha).
//
// Computes, from node positions alone, exactly what the distributed
// protocol of Figure 1 computes per node: the discovered neighbor set
// N_alpha(u), the discovery power tag of every neighbor, the final
// broadcast power p_{u,alpha}, and whether u ended as a boundary node
// (still has an alpha-gap at maximum power).
//
// The oracle is the executable specification: proto/cbtc_agent runs the
// same algorithm with real messages on the simulator, and the test
// suite asserts the two produce identical neighbor relations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "algo/params.h"
#include "geom/vec2.h"
#include "graph/digraph.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "radio/power_model.h"
#include "radio/propagation.h"

namespace cbtc::util {
class thread_pool;
}

namespace cbtc::algo {

using graph::node_id;

/// One discovered neighbor of a node.
struct neighbor_record {
  node_id id{graph::invalid_node};
  double distance{0.0};
  double direction{0.0};        // bearing from the discovering node, [0, 2*pi)
  std::uint32_t level{0};       // index into node_result::level_powers
  double discovery_power{0.0};  // the power tag (Section 3.1 / Section 4)
};

/// Per-node outcome of CBTC(alpha).
struct node_result {
  std::vector<neighbor_record> neighbors;  // sorted by (distance, id)
  std::vector<double> level_powers;        // powers of the broadcasts performed
  double final_power{0.0};                 // p_{u,alpha}
  bool boundary{false};                    // alpha-gap remained at max power

  [[nodiscard]] bool knows(node_id v) const;
  /// Directions of all current neighbors (the set D_u).
  [[nodiscard]] std::vector<double> directions() const;
  /// rad^-_{u,alpha}: distance of the farthest node in N_alpha(u).
  [[nodiscard]] double out_radius() const;
};

/// Whole-network outcome.
struct cbtc_result {
  cbtc_params params;
  std::vector<node_result> nodes;

  [[nodiscard]] std::size_t num_nodes() const { return nodes.size(); }

  /// The directed neighbor relation N_alpha.
  [[nodiscard]] graph::digraph neighbor_digraph() const;

  /// E_alpha: the symmetric closure (the paper's G_alpha edge set).
  [[nodiscard]] graph::undirected_graph symmetric_closure() const;

  /// E^-_alpha: the symmetric core (Section 3.2).
  [[nodiscard]] graph::undirected_graph symmetric_core() const;

  /// Parallel variants (identical output for any pool width).
  [[nodiscard]] graph::undirected_graph symmetric_closure(util::thread_pool& pool) const;
  [[nodiscard]] graph::undirected_graph symmetric_core(util::thread_pool& pool) const;

  /// Number of boundary nodes.
  [[nodiscard]] std::size_t boundary_count() const;
};

/// Runs CBTC(alpha) for every node. `positions` defines the network;
/// the power model supplies p(d), its inverse, and the cap P = p(R).
[[nodiscard]] cbtc_result run_cbtc(std::span<const geom::vec2> positions,
                                   const radio::power_model& power, const cbtc_params& params);

/// Gain-aware growth: neighbors are discovered in order of *required
/// link power* (p(d) / gain), which generalizes distance order; a
/// broadcast at power p discovers exactly the nodes whose link closes
/// at p (the medium's decodability test). Delegates to the isotropic
/// overload — identical results bit for bit — when `link` carries no
/// per-link gains.
[[nodiscard]] cbtc_result run_cbtc(std::span<const geom::vec2> positions,
                                   const radio::link_model& link, const cbtc_params& params);

}  // namespace cbtc::algo
