#include "algo/pipeline.h"

#include <stdexcept>

#include "util/parallel.h"

namespace cbtc::algo {

namespace {

/// Shared growth -> op1 -> op2 front half; `link` selects which op3
/// pass (if any) closes the pipeline.
topology_result apply_optimizations_impl(cbtc_result grown, std::span<const geom::vec2> positions,
                                         const radio::link_model* link,
                                         const optimization_set& opts) {
  topology_result out;
  const cbtc_params params = grown.params;
  // The growth outcome carries the instance's intra-thread knob: the
  // symmetric core/closure construction and the op3 classification
  // run on the same process-wide executor as the growth loop did.
  util::thread_pool pool(params.intra_threads);
  out.growth = opts.shrink_back ? apply_shrink_back(grown) : std::move(grown);

  out.asymmetric_applied = opts.asymmetric_removal && asymmetric_removal_applicable(params.alpha);
  out.topology = out.asymmetric_applied ? out.growth.symmetric_core(pool)
                                        : out.growth.symmetric_closure(pool);

  // op3 dispatch: the angle-based Theorem 3.6 pass is only sound when
  // required power is monotone in length (unit disk), so a
  // non-isotropic link auto-routes a pairwise_removal request to the
  // gain-aware pass; opts.gain_aware forces that pass unconditionally.
  const bool want_op3 = opts.pairwise_removal || opts.gain_aware;
  const bool use_gain = opts.gain_aware || (opts.pairwise_removal && link && !link->is_isotropic());
  if (want_op3 && use_gain) {
    const gain_removal_options gopts{.remove_all = opts.pairwise.remove_all,
                                     .gate = opts.pairwise.gate};
    gain_removal_result gr = apply_gain_aware_removal(out.topology, positions, *link, gopts, pool);
    out.topology = std::move(gr.topology);
    out.redundant_edges = gr.redundant_edges;
    out.removed_edges = gr.removed_edges;
    out.restored_edges = gr.restored_edges;
    out.gain_aware_applied = true;
  } else if (want_op3) {
    pairwise_result pr = apply_pairwise_removal(out.topology, positions, opts.pairwise, pool);
    out.topology = std::move(pr.topology);
    out.redundant_edges = pr.redundant_edges;
    out.removed_edges = pr.removed_edges;
  }
  return out;
}

}  // namespace

topology_result apply_optimizations(cbtc_result grown, std::span<const geom::vec2> positions,
                                    const optimization_set& opts) {
  if (opts.gain_aware) {
    throw std::invalid_argument(
        "optimization_set.gain_aware needs a link model: use the link-aware "
        "apply_optimizations / build_topology overload");
  }
  return apply_optimizations_impl(std::move(grown), positions, nullptr, opts);
}

topology_result apply_optimizations(cbtc_result grown, std::span<const geom::vec2> positions,
                                    const radio::link_model& link, const optimization_set& opts) {
  return apply_optimizations_impl(std::move(grown), positions, &link, opts);
}

topology_result build_topology(std::span<const geom::vec2> positions,
                               const radio::power_model& power, const cbtc_params& params,
                               const optimization_set& opts) {
  // A bare power model is an isotropic link, so routing through the
  // link-aware overload keeps the Theorem 3.6 pass bit for bit and
  // lets opts.gain_aware work here too.
  return apply_optimizations(run_cbtc(positions, power, params), positions,
                             radio::link_model(power), opts);
}

topology_result build_topology(std::span<const geom::vec2> positions,
                               const radio::link_model& link, const cbtc_params& params,
                               const optimization_set& opts) {
  return apply_optimizations(run_cbtc(positions, link, params), positions, link, opts);
}

}  // namespace cbtc::algo
