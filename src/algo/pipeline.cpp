#include "algo/pipeline.h"

#include "util/parallel.h"

namespace cbtc::algo {

topology_result apply_optimizations(cbtc_result grown, std::span<const geom::vec2> positions,
                                    const optimization_set& opts) {
  topology_result out;
  const cbtc_params params = grown.params;
  // The growth outcome carries the instance's intra-thread knob: the
  // symmetric core/closure construction and the pairwise classification
  // run on the same process-wide executor as the growth loop did.
  util::thread_pool pool(params.intra_threads);
  out.growth = opts.shrink_back ? apply_shrink_back(grown) : std::move(grown);

  out.asymmetric_applied = opts.asymmetric_removal && asymmetric_removal_applicable(params.alpha);
  out.topology = out.asymmetric_applied ? out.growth.symmetric_core(pool)
                                        : out.growth.symmetric_closure(pool);

  if (opts.pairwise_removal) {
    pairwise_result pr = apply_pairwise_removal(out.topology, positions, opts.pairwise, pool);
    out.topology = std::move(pr.topology);
    out.redundant_edges = pr.redundant_edges;
    out.removed_edges = pr.removed_edges;
  }
  return out;
}

topology_result build_topology(std::span<const geom::vec2> positions,
                               const radio::power_model& power, const cbtc_params& params,
                               const optimization_set& opts) {
  return apply_optimizations(run_cbtc(positions, power, params), positions, opts);
}

topology_result build_topology(std::span<const geom::vec2> positions,
                               const radio::link_model& link, const cbtc_params& params,
                               const optimization_set& opts) {
  return apply_optimizations(run_cbtc(positions, link, params), positions, opts);
}

}  // namespace cbtc::algo
