// Optimization 1: the shrink-back operation (Section 3.1).
//
// A *boundary node* ends CBTC(alpha) still having an alpha-gap and
// therefore broadcasts at maximum power. Shrink-back lets it drop the
// highest discovery power levels whose removal does not change its cone
// coverage cover_alpha(D_u), and fall back to the power tag of the
// highest level kept. Theorem 3.1: the resulting graph G^s_alpha still
// preserves the connectivity of G_R for alpha <= 5*pi/6.
#pragma once

#include "algo/oracle.h"

namespace cbtc::algo {

struct shrink_back_options {
  /// The paper applies shrink-back to boundary nodes. For non-boundary
  /// nodes the operation is provably a no-op (their final level is the
  /// first with full coverage), so this flag only saves work.
  bool boundary_only{true};
  /// Tolerance for comparing cover_alpha arc sets.
  double cover_epsilon{1e-9};
};

/// Returns a copy of `in` with shrink-back applied per node: neighbors
/// tagged with a removed level disappear and final_power becomes the
/// power tag of the highest kept level.
[[nodiscard]] cbtc_result apply_shrink_back(const cbtc_result& in,
                                            const shrink_back_options& opts = {});

}  // namespace cbtc::algo
