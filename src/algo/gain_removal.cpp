#include "algo/gain_removal.h"

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "graph/euclidean.h"
#include "graph/union_find.h"

namespace cbtc::algo {

gain_edge_id gain_edge_id::of(graph::node_id u, graph::node_id v,
                              std::span<const geom::vec2> positions,
                              const radio::link_model& link) {
  return {link.required_power(u, v, positions[u], positions[v]), std::max(u, v), std::min(u, v)};
}

namespace {

/// Two-hop witness: a common candidate neighbor w of u and v with both
/// hop ids strictly below eid_uv. The scan runs from the endpoint with
/// the smaller candidate degree and prices the first hop before the
/// (binary-search) membership probe for the second.
bool two_hop_witness(const graph::undirected_graph& c, std::span<const geom::vec2> positions,
                     const radio::link_model& link, graph::node_id u, graph::node_id v,
                     const gain_edge_id& eid_uv) {
  const graph::node_id apex = c.degree(u) <= c.degree(v) ? u : v;
  const graph::node_id other = apex == u ? v : u;
  for (graph::node_id w : c.neighbors(apex)) {
    if (w == other) continue;
    if (!(gain_edge_id::of(apex, w, positions, link) < eid_uv)) continue;
    const std::span<const graph::node_id> nb = c.neighbors(w);
    if (!std::binary_search(nb.begin(), nb.end(), other)) continue;
    if (gain_edge_id::of(w, other, positions, link) < eid_uv) return true;
  }
  return false;
}

/// Depth-limited breadth-first reachability u -> v over the candidate
/// subgraph of edges with id strictly below eid_uv. Earliest-depth
/// marking is exact for "exists a path of <= max_hops hops". The
/// scratch is per OS thread and epoch-stamped, so the classification
/// reduce reuses it across edges without clearing O(n) state per query.
struct bfs_scratch {
  std::vector<std::uint32_t> mark;
  std::vector<graph::node_id> cur, nxt;
  std::uint32_t epoch{0};
};

bool bfs_witness(const graph::undirected_graph& c, std::span<const geom::vec2> positions,
                 const radio::link_model& link, graph::node_id u, graph::node_id v,
                 const gain_edge_id& eid_uv, std::size_t max_hops) {
  thread_local bfs_scratch s;
  if (s.mark.size() < c.num_nodes()) {
    s.mark.assign(c.num_nodes(), 0);
    s.epoch = 0;
  }
  if (++s.epoch == 0) {
    std::fill(s.mark.begin(), s.mark.end(), 0);
    s.epoch = 1;
  }
  s.cur.clear();
  s.cur.push_back(u);
  s.mark[u] = s.epoch;
  for (std::size_t depth = 1; depth <= max_hops && !s.cur.empty(); ++depth) {
    s.nxt.clear();
    for (const graph::node_id a : s.cur) {
      for (const graph::node_id w : c.neighbors(a)) {
        if (s.mark[w] == s.epoch) continue;
        if (!(gain_edge_id::of(a, w, positions, link) < eid_uv)) continue;
        if (w == v) return true;
        s.mark[w] = s.epoch;
        s.nxt.push_back(w);
      }
    }
    std::swap(s.cur, s.nxt);
  }
  return false;
}

bool has_power_witness(const graph::undirected_graph& c, std::span<const geom::vec2> positions,
                       const radio::link_model& link, graph::node_id u, graph::node_id v,
                       const gain_edge_id& eid_uv, std::size_t max_hops) {
  // A zero-power edge joins coincident nodes; a "cheaper" path exists
  // only by id tie-break, which proves nothing physical. Mirror the
  // pairwise pass: never redundant.
  if (eid_uv.power == 0.0) return false;
  if (max_hops < 2) return false;
  if (two_hop_witness(c, positions, link, u, v, eid_uv)) return true;
  if (max_hops == 2) return false;
  return bfs_witness(c, positions, link, u, v, eid_uv, max_hops);
}

}  // namespace

gain_removal_result apply_gain_aware_removal(const graph::undirected_graph& g,
                                             std::span<const geom::vec2> positions,
                                             const radio::link_model& link,
                                             const gain_removal_options& opts) {
  util::thread_pool serial(1);
  return apply_gain_aware_removal(g, positions, link, opts, serial);
}

gain_removal_result apply_gain_aware_removal(const graph::undirected_graph& g,
                                             std::span<const geom::vec2> positions,
                                             const radio::link_model& link,
                                             const gain_removal_options& opts,
                                             util::thread_pool& pool) {
  const graph::undirected_graph candidates = graph::build_max_power_graph(positions, link, pool);
  return apply_gain_aware_removal(g, candidates, positions, link, opts, pool);
}

gain_removal_result apply_gain_aware_removal(const graph::undirected_graph& g,
                                             const graph::undirected_graph& candidates,
                                             std::span<const geom::vec2> positions,
                                             const radio::link_model& link,
                                             const gain_removal_options& opts,
                                             util::thread_pool& pool) {
  gain_removal_result res;
  const std::size_t n = g.num_nodes();

  // Lex-sorted edge table with per-node offsets, exactly as in
  // apply_pairwise_removal: node u's up-edges {u, v > u} occupy
  // [eoff[u], eoff[u + 1]), so every per-node pass below locates any
  // incident edge's slot locally.
  std::vector<std::size_t> eoff(n + 1, 0);
  {
    std::vector<std::size_t> updeg(n);
    pool.parallel_for(n, [&](std::size_t u) {
      const std::span<const graph::node_id> nb = g.neighbors(static_cast<graph::node_id>(u));
      updeg[u] = static_cast<std::size_t>(
          nb.end() - std::upper_bound(nb.begin(), nb.end(), static_cast<graph::node_id>(u)));
    });
    for (std::size_t u = 0; u < n; ++u) eoff[u + 1] = eoff[u] + updeg[u];
  }
  const std::size_t m = eoff[n];
  std::vector<graph::edge> edges(m);
  pool.parallel_for(n, [&](std::size_t u) {
    const auto uid = static_cast<graph::node_id>(u);
    const std::span<const graph::node_id> nb = g.neighbors(uid);
    std::size_t w = eoff[u];
    for (auto it = std::upper_bound(nb.begin(), nb.end(), uid); it != nb.end(); ++it) {
      edges[w++] = {uid, *it};
    }
  });
  /// Index of edge {a, b} (a < b) in the table.
  const auto edge_index = [&](graph::node_id a, graph::node_id b) {
    const std::span<const graph::node_id> nb = g.neighbors(a);
    const auto first = std::upper_bound(nb.begin(), nb.end(), a);
    return eoff[a] + static_cast<std::size_t>(std::lower_bound(first, nb.end(), b) - first);
  };

  // Per-edge classification against the candidate graph. Slot writes
  // plus block-ordered count; the required power doubles as the gate
  // metric below, so it is computed once and carried.
  std::vector<unsigned char> redundant(m, 0);
  std::vector<double> powers(m);
  res.redundant_edges = pool.reduce<std::size_t>(
      m, 0,
      [&](std::size_t lo, std::size_t hi) {
        std::size_t count = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          const auto [u, v] = edges[i];
          const gain_edge_id eid = gain_edge_id::of(u, v, positions, link);
          powers[i] = eid.power;
          redundant[i] =
              has_power_witness(candidates, positions, link, u, v, eid, opts.max_witness_hops)
                  ? 1
                  : 0;
          count += redundant[i];
        }
        return count;
      },
      [](std::size_t& total, const std::size_t& part) { total += part; });

  // Costliest non-redundant link per node: removing only redundant
  // edges above this power cannot raise any node's transmit power and
  // brings it down to exactly this budget — the pairwise radius gate
  // with required link power in place of Euclidean length.
  std::vector<double> costliest_needed(n, 0.0);
  if (!opts.remove_all) {
    pool.parallel_for(n, [&](std::size_t u) {
      const auto uid = static_cast<graph::node_id>(u);
      double best = 0.0;
      std::size_t up = eoff[u];
      for (const graph::node_id v : g.neighbors(uid)) {
        const std::size_t i = v > uid ? up++ : edge_index(v, uid);
        if (!redundant[i]) best = std::max(best, powers[i]);
      }
      costliest_needed[u] = best;
    });
  }

  std::vector<unsigned char> drop(m, 0);
  res.removed_edges = pool.reduce<std::size_t>(
      m, 0,
      [&](std::size_t lo, std::size_t hi) {
        std::size_t count = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          bool d = redundant[i] != 0;
          if (d && !opts.remove_all) {
            const auto [u, v] = edges[i];
            const double p = powers[i];
            d = opts.gate == pairwise_gate::either_endpoint
                    ? (p > costliest_needed[u] || p > costliest_needed[v])
                    : (p > costliest_needed[u] && p > costliest_needed[v]);
          }
          drop[i] = d ? 1 : 0;
          count += drop[i];
        }
        return count;
      },
      [](std::size_t& total, const std::size_t& part) { total += part; });

  // Connectivity repair (see the header comment): witness paths live in
  // the candidate graph, so for alpha > 2*pi/3 the surviving subgraph
  // of `g` is not *provably* in one piece per component of `g`. Re-add
  // dropped edges in ascending gain_edge_id order until the kept
  // partition matches `g`'s partition again. Serial and keyed on the
  // width-independent drop verdicts, hence deterministic; a no-op
  // whenever the drop set was already safe.
  if (res.removed_edges > 0) {
    graph::union_find uf(n);
    std::vector<std::size_t> dropped;
    dropped.reserve(res.removed_edges);
    for (std::size_t i = 0; i < m; ++i) {
      if (drop[i]) {
        dropped.push_back(i);
      } else {
        uf.unite(edges[i].u, edges[i].v);
      }
    }
    std::sort(dropped.begin(), dropped.end(), [&](std::size_t a, std::size_t b) {
      return std::tie(powers[a], edges[a].v, edges[a].u) <
             std::tie(powers[b], edges[b].v, edges[b].u);
    });
    for (const std::size_t i : dropped) {
      if (uf.unite(edges[i].u, edges[i].v)) {
        drop[i] = 0;
        ++res.restored_edges;
      }
    }
    res.removed_edges -= res.restored_edges;
  }

  // Surviving topology as flat CSR: kept-degree count, prefix sum,
  // parallel fill.
  std::vector<std::size_t> koff(n + 1, 0);
  {
    std::vector<std::size_t> kdeg(n);
    pool.parallel_for(n, [&](std::size_t u) {
      const auto uid = static_cast<graph::node_id>(u);
      std::size_t up = eoff[u];
      std::size_t count = 0;
      for (const graph::node_id v : g.neighbors(uid)) {
        const std::size_t i = v > uid ? up++ : edge_index(v, uid);
        if (!drop[i]) ++count;
      }
      kdeg[u] = count;
    });
    for (std::size_t u = 0; u < n; ++u) koff[u + 1] = koff[u] + kdeg[u];
  }
  std::vector<graph::node_id> kflat(koff[n]);
  pool.parallel_for(n, [&](std::size_t u) {
    const auto uid = static_cast<graph::node_id>(u);
    std::size_t up = eoff[u];
    std::size_t w = koff[u];
    for (const graph::node_id v : g.neighbors(uid)) {
      const std::size_t i = v > uid ? up++ : edge_index(v, uid);
      if (!drop[i]) kflat[w++] = v;
    }
  });
  res.topology = graph::undirected_graph::from_csr(std::move(koff), std::move(kflat));
  return res;
}

}  // namespace cbtc::algo
