#include "algo/alpha_search.h"

#include "graph/euclidean.h"
#include "graph/traversal.h"

namespace cbtc::algo {

namespace {

bool preserved_at(std::span<const geom::vec2> positions, const radio::power_model& power,
                  const graph::undirected_graph& gr, double alpha, growth_mode mode) {
  cbtc_params params;
  params.alpha = alpha;
  params.mode = mode;
  return graph::same_connectivity(run_cbtc(positions, power, params).symmetric_closure(), gr);
}

}  // namespace

alpha_scan_result scan_alpha(std::span<const geom::vec2> positions,
                             const radio::power_model& power, double lo, double hi,
                             std::size_t steps, growth_mode mode) {
  alpha_scan_result result;
  if (steps == 0) return result;
  const graph::undirected_graph gr = graph::build_max_power_graph(positions, power.max_range());

  bool prefix_intact = true;
  result.all_preserved = true;
  for (std::size_t i = 0; i < steps; ++i) {
    const double alpha =
        steps == 1 ? lo : lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(steps - 1);
    const bool ok = preserved_at(positions, power, gr, alpha, mode);
    result.samples.push_back({alpha, ok});
    if (ok && prefix_intact) result.safe_prefix_max = alpha;
    if (!ok) {
      prefix_intact = false;
      result.all_preserved = false;
    }
  }
  return result;
}

double max_preserving_alpha(std::span<const geom::vec2> positions,
                            const radio::power_model& power, double lo, double hi, double tol,
                            growth_mode mode) {
  const graph::undirected_graph gr = graph::build_max_power_graph(positions, power.max_range());
  if (!preserved_at(positions, power, gr, lo, mode)) return 0.0;
  if (preserved_at(positions, power, gr, hi, mode)) return hi;
  // Invariant: lo preserves, hi does not.
  while (hi - lo > tol) {
    const double mid = (lo + hi) / 2.0;
    if (preserved_at(positions, power, gr, mid, mode)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace cbtc::algo
