// Cross-cutting invariant checks used by tests, examples, and benches.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "geom/vec2.h"
#include "graph/graph.h"
#include "radio/propagation.h"

namespace cbtc::util {
class thread_pool;
}

namespace cbtc::algo {

struct invariant_report {
  bool subgraph_of_max_power{false};    // every edge also in G_R
  bool connectivity_preserved{false};   // same component partition as G_R
  bool radii_within_max_range{false};   // no node needs more than R
  std::vector<std::string> violations;  // human-readable details

  [[nodiscard]] bool ok() const {
    return subgraph_of_max_power && connectivity_preserved && radii_within_max_range;
  }
};

/// Checks the paper's three desiderata for a topology-control output
/// (Section 1): subgraph of G_R, connectivity preservation, and no node
/// transmitting beyond R. Builds G_R internally; `intra_threads`
/// parallelizes the per-node radius scan (results are identical for
/// any thread count).
[[nodiscard]] invariant_report check_invariants(const graph::undirected_graph& topology,
                                                std::span<const geom::vec2> positions,
                                                double max_range, unsigned intra_threads = 1);

/// Same checks against a caller-supplied max-power graph, so engines
/// that already built G_R do not pay for a second construction.
[[nodiscard]] invariant_report check_invariants(const graph::undirected_graph& topology,
                                                std::span<const geom::vec2> positions,
                                                double max_range,
                                                const graph::undirected_graph& max_power_graph,
                                                unsigned intra_threads = 1);

/// Same checks on a caller-supplied thread pool (engines that already
/// hold one avoid a second worker spawn per instance).
[[nodiscard]] invariant_report check_invariants(const graph::undirected_graph& topology,
                                                std::span<const geom::vec2> positions,
                                                double max_range,
                                                const graph::undirected_graph& max_power_graph,
                                                util::thread_pool& pool);

/// Gain-aware checks: `max_power_graph` must be the link-aware G_R,
/// and the radius desideratum generalizes to "no node needs more than
/// the maximum power P on any incident link". Delegates to the
/// distance-based overload (identical report, including violation
/// strings) when the propagation is isotropic.
[[nodiscard]] invariant_report check_invariants(const graph::undirected_graph& topology,
                                                std::span<const geom::vec2> positions,
                                                const radio::link_model& link,
                                                const graph::undirected_graph& max_power_graph,
                                                util::thread_pool& pool);

}  // namespace cbtc::algo
