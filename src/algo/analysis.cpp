#include "algo/analysis.h"

#include <algorithm>
#include <string>
#include <utility>

#include "graph/euclidean.h"
#include "graph/metrics.h"
#include "graph/traversal.h"
#include "util/parallel.h"

namespace cbtc::algo {
namespace {

/// The first two desiderata — subgraph of G_R and partition equality —
/// are identical under every radio model; both public overloads share
/// this pass (violations land in the report in this order, before the
/// per-node radius/power scan).
void check_structure(const graph::undirected_graph& topology,
                     const graph::undirected_graph& gr, util::thread_pool& pool,
                     invariant_report& rep) {
  rep.subgraph_of_max_power = true;
  for (const graph::edge& e : topology.edges()) {
    if (!gr.has_edge(e.u, e.v)) {
      rep.subgraph_of_max_power = false;
      rep.violations.push_back("edge (" + std::to_string(e.u) + ", " + std::to_string(e.v) +
                               ") not in G_R");
    }
  }

  graph::connectivity_scratch scratch;
  rep.connectivity_preserved = graph::same_connectivity(topology, gr, pool, scratch);
  if (!rep.connectivity_preserved) {
    rep.violations.push_back("component partition differs: topology has " +
                             std::to_string(graph::connected_components(topology).count) +
                             " components, G_R has " +
                             std::to_string(graph::connected_components(gr).count));
  }
}

}  // namespace

invariant_report check_invariants(const graph::undirected_graph& topology,
                                  std::span<const geom::vec2> positions, double max_range,
                                  unsigned intra_threads) {
  return check_invariants(topology, positions, max_range,
                          graph::build_max_power_graph(positions, max_range), intra_threads);
}

invariant_report check_invariants(const graph::undirected_graph& topology,
                                  std::span<const geom::vec2> positions, double max_range,
                                  const graph::undirected_graph& max_power_graph,
                                  unsigned intra_threads) {
  util::thread_pool pool(intra_threads);
  return check_invariants(topology, positions, max_range, max_power_graph, pool);
}

invariant_report check_invariants(const graph::undirected_graph& topology,
                                  std::span<const geom::vec2> positions, double max_range,
                                  const graph::undirected_graph& max_power_graph,
                                  util::thread_pool& pool) {
  invariant_report rep;
  check_structure(topology, max_power_graph, pool, rep);

  // Per-node radius scan, reduced in fixed block order so the report
  // (flag and violation order) is identical for any thread count.
  constexpr double tol = 1e-9;
  struct radius_partial {
    bool ok{true};
    std::vector<std::string> violations;
  };
  const radius_partial radii = pool.reduce<radius_partial>(
      topology.num_nodes(), {},
      [&](std::size_t lo, std::size_t hi) {
        radius_partial part;
        for (std::size_t u = lo; u < hi; ++u) {
          const double r =
              graph::node_radius(topology, positions, static_cast<graph::node_id>(u), 0.0);
          if (r > max_range * (1.0 + tol)) {
            part.ok = false;
            part.violations.push_back("node " + std::to_string(u) + " needs radius " +
                                      std::to_string(r) + " > R = " + std::to_string(max_range));
          }
        }
        return part;
      },
      [](radius_partial& total, const radius_partial& p) {
        total.ok = total.ok && p.ok;
        total.violations.insert(total.violations.end(), p.violations.begin(),
                                p.violations.end());
      });
  rep.radii_within_max_range = radii.ok;
  rep.violations.insert(rep.violations.end(), radii.violations.begin(), radii.violations.end());
  return rep;
}

invariant_report check_invariants(const graph::undirected_graph& topology,
                                  std::span<const geom::vec2> positions,
                                  const radio::link_model& link,
                                  const graph::undirected_graph& max_power_graph,
                                  util::thread_pool& pool) {
  if (link.is_isotropic()) {
    return check_invariants(topology, positions, link.max_range(), max_power_graph, pool);
  }

  invariant_report rep;
  check_structure(topology, max_power_graph, pool, rep);

  // Power desideratum under per-link gains: the worst incident link of
  // every node must close within the maximum power P.
  constexpr double tol = 1e-9;
  const double max_power = link.max_power();
  struct power_partial {
    bool ok{true};
    std::vector<std::string> violations;
  };
  const power_partial powers = pool.reduce<power_partial>(
      topology.num_nodes(), {},
      [&](std::size_t lo, std::size_t hi) {
        power_partial part;
        for (std::size_t u = lo; u < hi; ++u) {
          double need = 0.0;
          for (const graph::node_id v : topology.neighbors(static_cast<graph::node_id>(u))) {
            need = std::max(need, link.required_power(static_cast<graph::node_id>(u), v,
                                                      positions[u], positions[v]));
          }
          if (need > max_power * (1.0 + tol)) {
            part.ok = false;
            part.violations.push_back("node " + std::to_string(u) + " needs power " +
                                      std::to_string(need) +
                                      " > P = " + std::to_string(max_power));
          }
        }
        return part;
      },
      [](power_partial& total, const power_partial& p) {
        total.ok = total.ok && p.ok;
        total.violations.insert(total.violations.end(), p.violations.begin(),
                                p.violations.end());
      });
  rep.radii_within_max_range = powers.ok;
  rep.violations.insert(rep.violations.end(), powers.violations.begin(), powers.violations.end());
  return rep;
}

}  // namespace cbtc::algo
