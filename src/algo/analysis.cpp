#include "algo/analysis.h"

#include <string>

#include "graph/euclidean.h"
#include "graph/metrics.h"
#include "graph/traversal.h"

namespace cbtc::algo {

invariant_report check_invariants(const graph::undirected_graph& topology,
                                  std::span<const geom::vec2> positions, double max_range) {
  invariant_report rep;
  const graph::undirected_graph gr = graph::build_max_power_graph(positions, max_range);

  rep.subgraph_of_max_power = true;
  for (const graph::edge& e : topology.edges()) {
    if (!gr.has_edge(e.u, e.v)) {
      rep.subgraph_of_max_power = false;
      rep.violations.push_back("edge (" + std::to_string(e.u) + ", " + std::to_string(e.v) +
                               ") not in G_R");
    }
  }

  rep.connectivity_preserved = graph::same_connectivity(topology, gr);
  if (!rep.connectivity_preserved) {
    rep.violations.push_back("component partition differs: topology has " +
                             std::to_string(graph::connected_components(topology).count) +
                             " components, G_R has " +
                             std::to_string(graph::connected_components(gr).count));
  }

  rep.radii_within_max_range = true;
  constexpr double tol = 1e-9;
  for (graph::node_id u = 0; u < topology.num_nodes(); ++u) {
    const double r = graph::node_radius(topology, positions, u, 0.0);
    if (r > max_range * (1.0 + tol)) {
      rep.radii_within_max_range = false;
      rep.violations.push_back("node " + std::to_string(u) + " needs radius " +
                               std::to_string(r) + " > R = " + std::to_string(max_range));
    }
  }
  return rep;
}

}  // namespace cbtc::algo
