// Per-instance alpha threshold analysis.
//
// Theorem 2.1 guarantees connectivity preservation for alpha <= 5*pi/6
// on *every* instance; Theorem 2.4 exhibits *one* instance breaking
// just above. For a concrete network the breaking point is usually much
// higher — these helpers measure that per-instance margin, which the
// alpha-sweep bench aggregates into an empirical threshold curve.
#pragma once

#include <span>
#include <vector>

#include "algo/oracle.h"
#include "algo/params.h"
#include "geom/vec2.h"
#include "radio/power_model.h"

namespace cbtc::algo {

/// One sample of the scan.
struct alpha_sample {
  double alpha{0.0};
  bool preserved{false};
};

struct alpha_scan_result {
  std::vector<alpha_sample> samples;  // ascending alpha
  /// Largest scanned alpha such that every scanned alpha' <= alpha
  /// preserved connectivity (the instance's empirical safe prefix).
  double safe_prefix_max{0.0};
  /// True if every scanned alpha preserved connectivity.
  bool all_preserved{false};
};

/// Evaluates connectivity preservation of G_alpha (symmetric closure)
/// on a grid of `steps` alphas in [lo, hi].
[[nodiscard]] alpha_scan_result scan_alpha(std::span<const geom::vec2> positions,
                                           const radio::power_model& power, double lo, double hi,
                                           std::size_t steps,
                                           growth_mode mode = growth_mode::continuous);

/// Bisects for the largest alpha in [lo, hi] whose G_alpha preserves
/// connectivity, assuming preservation is monotone in alpha on this
/// instance (true in practice; the scan can validate). Tolerance in
/// radians.
[[nodiscard]] double max_preserving_alpha(std::span<const geom::vec2> positions,
                                          const radio::power_model& power, double lo, double hi,
                                          double tol = 1e-3,
                                          growth_mode mode = growth_mode::continuous);

}  // namespace cbtc::algo
