// Parameters of the basic CBTC(alpha) algorithm (Figure 1 of the paper).
#pragma once

#include <cstddef>

#include "geom/angle.h"

namespace cbtc::algo {

/// How a node grows its transmission power while hunting for cone coverage.
enum class growth_mode {
  /// The paper's scheme: p <- Increase(p) with Increase(p) = factor * p,
  /// starting from p0 and capped at the maximum power P. Each broadcast
  /// discovers every node within the current radius.
  discrete,
  /// Idealized scheme that grows power continuously: neighbors are
  /// discovered one at a time in distance order and growth stops at the
  /// exact power where the alpha-gap disappears. This is the limiting
  /// behaviour of `discrete` as factor -> 1 and matches the geometric
  /// constructions in the proofs (Theorems 2.4, Example 2.1).
  continuous,
};

struct cbtc_params {
  /// The cone degree alpha. The paper proves alpha <= 5*pi/6 preserves
  /// connectivity and that the bound is tight.
  double alpha{5.0 * geom::pi / 6.0};

  growth_mode mode{growth_mode::discrete};

  /// Initial power p0. Non-positive means "default": the power that
  /// reaches max_range / 16.
  double initial_power{-1.0};

  /// Increase(p) = increase_factor * p. Must be > 1.
  double increase_factor{2.0};

  /// Threads used *inside* one instance (per-node cone growth, the
  /// optimization passes, metric loops). 1 = serial (the default),
  /// 0 = hardware concurrency. Composes with batch-level threads
  /// through the process-wide executor (util/executor.h) — nested, not
  /// multiplied. Results are bitwise identical for every value —
  /// growth is per-node independent and reductions merge fixed-size
  /// blocks in block order.
  unsigned intra_threads{1};

  /// Minimum instance size at which the engine relabels nodes into
  /// spatial (Morton) order before running the oracle pipeline — so at
  /// scale spatial neighbors are cache neighbors — and inverts the
  /// permutation before the report is assembled (geom/spatial_order.h,
  /// api/engine.cpp). On deployments without exact distance ties (any
  /// random field) reports are bitwise-identical with the pass on or
  /// off at every thread count; analytic gadgets with coincident
  /// distances may resolve ties by the permuted ids, which is why this
  /// defaults to a threshold no preset reaches instead of "always".
  /// 0 = relabel every instance (tests force this).
  std::size_t relabel_min_nodes{65536};
};

/// Canonical alpha values studied in the paper.
inline constexpr double alpha_five_pi_six = 5.0 * geom::pi / 6.0;
inline constexpr double alpha_two_pi_three = 2.0 * geom::pi / 3.0;

/// Asymmetric edge removal (Section 3.2) is proved correct only for
/// alpha <= 2*pi/3; this is the guard the pipeline uses (with a small
/// epsilon so alpha == 2*pi/3 computed in floating point qualifies).
[[nodiscard]] inline bool asymmetric_removal_applicable(double alpha) {
  return alpha <= alpha_two_pi_three + 1e-12;
}

}  // namespace cbtc::algo
