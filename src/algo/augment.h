// Fault-tolerance augmentation (extension beyond the paper).
//
// The paper's related work (Ramanathan & Rosales-Hain) targets
// *biconnected* topologies; CBTC's output is sparse and can contain
// bridges whose failure partitions the network even though G_R has
// alternate routes. This module greedily eliminates every avoidable
// bridge: for each bridge of the topology it adds the shortest G_R
// edge that reconnects the two sides without the bridge. Bridges that
// are also unavoidable in G_R (no alternate G_R edge crosses the cut)
// are left in place.
//
// The result stays a subgraph of G_R, preserves connectivity trivially
// (edges are only added), and increases per-node radii only as much as
// the added edges require.
#pragma once

#include <cstddef>
#include <span>

#include "geom/vec2.h"
#include "graph/graph.h"

namespace cbtc::algo {

struct augment_result {
  graph::undirected_graph topology;
  std::size_t edges_added{0};
  std::size_t unavoidable_bridges{0};  // bridges G_R cannot bypass either
};

/// Adds minimum-length G_R edges until every remaining bridge of the
/// topology is unavoidable (its endpoints' sides are connected in G_R
/// only through the bridge itself).
[[nodiscard]] augment_result augment_bridge_resilience(const graph::undirected_graph& topology,
                                                       std::span<const geom::vec2> positions,
                                                       double max_range);

}  // namespace cbtc::algo
