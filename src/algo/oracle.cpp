#include "algo/oracle.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "geom/angle.h"
#include "geom/spatial_grid.h"
#include "util/parallel.h"

namespace cbtc::algo {

bool node_result::knows(node_id v) const {
  return std::any_of(neighbors.begin(), neighbors.end(),
                     [v](const neighbor_record& r) { return r.id == v; });
}

std::vector<double> node_result::directions() const {
  std::vector<double> dirs;
  dirs.reserve(neighbors.size());
  for (const neighbor_record& r : neighbors) {
    // A neighbor at distance zero has no meaningful bearing (the paper
    // implicitly assumes distinct positions); it contributes no
    // directional coverage.
    if (r.distance > 0.0) dirs.push_back(r.direction);
  }
  return dirs;
}

double node_result::out_radius() const {
  double r = 0.0;
  for (const neighbor_record& rec : neighbors) r = std::max(r, rec.distance);
  return r;
}

graph::digraph cbtc_result::neighbor_digraph() const {
  graph::digraph d(nodes.size());
  for (node_id u = 0; u < nodes.size(); ++u) {
    for (const neighbor_record& r : nodes[u].neighbors) d.add_arc(u, r.id);
  }
  return d;
}

graph::undirected_graph cbtc_result::symmetric_closure() const {
  return neighbor_digraph().symmetric_closure();
}

graph::undirected_graph cbtc_result::symmetric_core() const {
  return neighbor_digraph().symmetric_core();
}

graph::undirected_graph cbtc_result::symmetric_closure(util::thread_pool& pool) const {
  return neighbor_digraph().symmetric_closure(pool);
}

graph::undirected_graph cbtc_result::symmetric_core(util::thread_pool& pool) const {
  return neighbor_digraph().symmetric_core(pool);
}

std::size_t cbtc_result::boundary_count() const {
  return static_cast<std::size_t>(
      std::count_if(nodes.begin(), nodes.end(), [](const node_result& n) { return n.boundary; }));
}

namespace {

/// One growth chunk: each worker refills one arena per 64 nodes
/// instead of allocating per node.
constexpr std::size_t growth_chunk = 64;

/// Candidate neighbors of one node, sorted by distance.
struct candidate {
  node_id id;
  double distance;
  double direction;
};

struct growth_arena;  // reused per-chunk growth buffers, defined below

/// Figure 1, executed exactly: p <- p0; while (p < P and gap-alpha(D)):
/// p <- min(Increase(p), P); broadcast and absorb everyone in range.
node_result run_discrete(std::span<const candidate> cands, const radio::power_model& power,
                         const cbtc_params& params, double p0, std::vector<double>& dirs) {
  node_result res;
  const double max_power = power.max_power();
  double p = p0;
  std::size_t next = 0;  // first candidate not yet discovered
  dirs.clear();

  while (p < max_power && geom::has_alpha_gap(dirs, params.alpha)) {
    p = std::min(p * params.increase_factor, max_power);
    res.level_powers.push_back(p);
    const auto level = static_cast<std::uint32_t>(res.level_powers.size() - 1);
    const double radius = power.range(p);
    while (next < cands.size() && cands[next].distance <= radius) {
      const candidate& c = cands[next];
      res.neighbors.push_back({c.id, c.distance, c.direction, level, p});
      if (c.distance > 0.0) dirs.push_back(c.direction);  // coincident: no bearing
      ++next;
    }
  }
  res.final_power = res.level_powers.empty() ? p0 : res.level_powers.back();
  res.boundary = geom::has_alpha_gap(dirs, params.alpha);
  return res;
}

/// Idealized continuous growth: admit candidates one at a time in
/// distance order; stop at the first prefix with no alpha-gap. Each
/// admission is its own power level, so shrink-back and reconfiguration
/// tags behave exactly like an infinitely fine discrete schedule.
node_result run_continuous(std::span<const candidate> cands, const radio::power_model& power,
                           const cbtc_params& params, std::vector<double>& dirs) {
  node_result res;
  dirs.clear();
  bool covered = false;
  for (const candidate& c : cands) {
    if (!geom::has_alpha_gap(dirs, params.alpha)) {
      covered = true;
      break;
    }
    const double p = power.required_power(c.distance);
    res.level_powers.push_back(p);
    const auto level = static_cast<std::uint32_t>(res.level_powers.size() - 1);
    res.neighbors.push_back({c.id, c.distance, c.direction, level, p});
    if (c.distance > 0.0) dirs.push_back(c.direction);  // coincident: no bearing
  }
  if (!covered) covered = !geom::has_alpha_gap(dirs, params.alpha);

  if (covered) {
    res.final_power = res.level_powers.empty() ? 0.0 : res.level_powers.back();
    res.boundary = false;
  } else {
    // Ran out of reachable nodes with a gap left: boundary node, which
    // per the algorithm broadcasts at maximum power.
    res.level_powers.push_back(power.max_power());
    res.final_power = power.max_power();
    res.boundary = true;
  }
  return res;
}

/// Candidates under a per-link gain model: every node whose link to
/// `u` closes at maximum power, sorted by (required link power, id) —
/// the order the Increase(p) schedule discovers them in.
struct link_candidate {
  node_id id;
  double distance;
  double direction;
  double req_power;  // p(d) / gain: what closes the link
};

/// Reused per-chunk growth buffers: candidate discovery refills these
/// flat arrays instead of materializing fresh vectors for every node,
/// which is where the allocator traffic went at 100k-1M nodes. Growth
/// results are per-slot, so the chunking cannot change them.
struct growth_arena {
  std::vector<geom::point_index> hits;
  std::vector<candidate> cands;
  std::vector<link_candidate> link_cands;
  std::vector<double> dirs;
};

void candidates_into(node_id u, std::span<const geom::vec2> positions,
                     const geom::spatial_grid& grid, double max_range, growth_arena& arena) {
  arena.hits.clear();
  arena.cands.clear();
  const geom::vec2 pu = positions[u];
  grid.query_radius_into(pu, max_range, u, arena.hits);
  for (geom::point_index v : arena.hits) {
    const geom::vec2 d = positions[v] - pu;
    arena.cands.push_back({v, d.norm(), d.bearing()});
  }
  std::sort(arena.cands.begin(), arena.cands.end(), [](const candidate& a, const candidate& b) {
    return a.distance < b.distance || (a.distance == b.distance && a.id < b.id);
  });
}

void link_candidates_into(node_id u, std::span<const geom::vec2> positions,
                          const geom::spatial_grid& grid, const radio::link_model& link,
                          growth_arena& arena) {
  arena.hits.clear();
  arena.link_cands.clear();
  const geom::vec2 pu = positions[u];
  const double max_power = link.max_power();
  grid.query_radius_into(pu, link.max_candidate_range(), u, arena.hits);
  for (geom::point_index v : arena.hits) {
    const geom::vec2 d = positions[v] - pu;
    const double dist = d.norm();
    const double req = link.required_power_at(dist, u, v, pu, positions[v]);
    if (req > max_power * (1.0 + 1e-12)) continue;  // never decodable
    arena.link_cands.push_back({v, dist, d.bearing(), req});
  }
  std::sort(arena.link_cands.begin(), arena.link_cands.end(),
            [](const link_candidate& a, const link_candidate& b) {
              return a.req_power < b.req_power || (a.req_power == b.req_power && a.id < b.id);
            });
}

/// Keeps the documented node_result invariant (neighbors sorted by
/// (distance, id)) after a growth pass that discovered them in
/// required-power order.
void sort_neighbors_by_distance(node_result& res) {
  std::sort(res.neighbors.begin(), res.neighbors.end(),
            [](const neighbor_record& a, const neighbor_record& b) {
              return a.distance < b.distance || (a.distance == b.distance && a.id < b.id);
            });
}

/// Figure 1 under per-link gains: a broadcast at power p is decoded by
/// exactly the candidates with req_power <= p (one-ulp tolerance, the
/// medium's decodability test).
node_result run_discrete_link(std::span<const link_candidate> cands,
                              const radio::link_model& link, const cbtc_params& params,
                              double p0, std::vector<double>& dirs) {
  node_result res;
  const double max_power = link.max_power();
  double p = p0;
  std::size_t next = 0;  // first candidate not yet discovered
  dirs.clear();

  while (p < max_power && geom::has_alpha_gap(dirs, params.alpha)) {
    p = std::min(p * params.increase_factor, max_power);
    res.level_powers.push_back(p);
    const auto level = static_cast<std::uint32_t>(res.level_powers.size() - 1);
    while (next < cands.size() && cands[next].req_power <= p * (1.0 + 1e-12)) {
      const link_candidate& c = cands[next];
      res.neighbors.push_back({c.id, c.distance, c.direction, level, p});
      if (c.distance > 0.0) dirs.push_back(c.direction);  // coincident: no bearing
      ++next;
    }
  }
  res.final_power = res.level_powers.empty() ? p0 : res.level_powers.back();
  res.boundary = geom::has_alpha_gap(dirs, params.alpha);
  sort_neighbors_by_distance(res);
  return res;
}

/// Continuous growth under per-link gains: admit candidates one at a
/// time in required-power order; stop at the first prefix with no
/// alpha-gap.
node_result run_continuous_link(std::span<const link_candidate> cands,
                                const radio::link_model& link, const cbtc_params& params,
                                std::vector<double>& dirs) {
  node_result res;
  dirs.clear();
  bool covered = false;
  for (const link_candidate& c : cands) {
    if (!geom::has_alpha_gap(dirs, params.alpha)) {
      covered = true;
      break;
    }
    const double p = std::min(c.req_power, link.max_power());
    res.level_powers.push_back(p);
    const auto level = static_cast<std::uint32_t>(res.level_powers.size() - 1);
    res.neighbors.push_back({c.id, c.distance, c.direction, level, p});
    if (c.distance > 0.0) dirs.push_back(c.direction);  // coincident: no bearing
  }
  if (!covered) covered = !geom::has_alpha_gap(dirs, params.alpha);

  if (covered) {
    res.final_power = res.level_powers.empty() ? 0.0 : res.level_powers.back();
    res.boundary = false;
  } else {
    res.level_powers.push_back(link.max_power());
    res.final_power = link.max_power();
    res.boundary = true;
  }
  sort_neighbors_by_distance(res);
  return res;
}

}  // namespace

cbtc_result run_cbtc(std::span<const geom::vec2> positions, const radio::power_model& power,
                     const cbtc_params& params) {
  if (params.alpha <= 0.0 || params.alpha >= geom::two_pi)
    throw std::invalid_argument("run_cbtc: alpha must be in (0, 2*pi)");
  if (params.increase_factor <= 1.0)
    throw std::invalid_argument("run_cbtc: increase_factor must be > 1");

  const double p0 =
      params.initial_power > 0.0 ? params.initial_power : power.required_power(power.max_range() / 16.0);

  cbtc_result result;
  result.params = params;
  if (positions.empty()) return result;

  // Growth is a pure per-node computation over the immutable grid, so
  // the parallel loop is deterministic by construction: node u's
  // outcome lands in slot u no matter which thread ran it.
  const geom::spatial_grid grid(positions, power.max_range());
  result.nodes.resize(positions.size());
  util::thread_pool pool(params.intra_threads);
  pool.parallel_for_chunks(positions.size(), growth_chunk, [&](std::size_t lo, std::size_t hi) {
    growth_arena arena;
    for (std::size_t u = lo; u < hi; ++u) {
      candidates_into(static_cast<node_id>(u), positions, grid, power.max_range(), arena);
      result.nodes[u] = params.mode == growth_mode::discrete
                            ? run_discrete(arena.cands, power, params, p0, arena.dirs)
                            : run_continuous(arena.cands, power, params, arena.dirs);
    }
  });
  return result;
}

cbtc_result run_cbtc(std::span<const geom::vec2> positions, const radio::link_model& link,
                     const cbtc_params& params) {
  // The isotropic fast path *is* the original algorithm — delegating
  // keeps its results (and its sorted-prefix discovery loop) bit for
  // bit.
  if (link.is_isotropic()) return run_cbtc(positions, link.power(), params);

  if (params.alpha <= 0.0 || params.alpha >= geom::two_pi)
    throw std::invalid_argument("run_cbtc: alpha must be in (0, 2*pi)");
  if (params.increase_factor <= 1.0)
    throw std::invalid_argument("run_cbtc: increase_factor must be > 1");

  const double p0 = params.initial_power > 0.0
                        ? params.initial_power
                        : link.power().required_power(link.max_range() / 16.0);

  cbtc_result result;
  result.params = params;
  if (positions.empty()) return result;

  // The grid prunes by the longest feasible link; the per-link filter
  // inside link_candidates_of decides. Per-node growth stays pure, so
  // the parallel loop is deterministic exactly as in the isotropic
  // path.
  const geom::spatial_grid grid(positions, link.max_candidate_range());
  result.nodes.resize(positions.size());
  util::thread_pool pool(params.intra_threads);
  pool.parallel_for_chunks(positions.size(), growth_chunk, [&](std::size_t lo, std::size_t hi) {
    growth_arena arena;
    for (std::size_t u = lo; u < hi; ++u) {
      link_candidates_into(static_cast<node_id>(u), positions, grid, link, arena);
      result.nodes[u] = params.mode == growth_mode::discrete
                            ? run_discrete_link(arena.link_cands, link, params, p0, arena.dirs)
                            : run_continuous_link(arena.link_cands, link, params, arena.dirs);
    }
  });
  return result;
}

}  // namespace cbtc::algo
