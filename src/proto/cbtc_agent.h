// The distributed CBTC(alpha) agent: one instance per node.
//
// Implements the growing phase of Figure 1 as an event-driven state
// machine on the simulated medium:
//
//   1. broadcast ("Hello", p) with p = Increase(previous p);
//   2. collect Acks until a response deadline expires;
//   3. if an alpha-gap remains and p < P, go to 1; otherwise stop.
//
// The agent also answers other nodes' Hellos with Acks (computing the
// required response power from the received power), tracks the nodes
// it acked (the inbound side of E_alpha), and — when asymmetric edge
// removal is enabled — sends drop notices after finishing (Section 3.2).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "algo/oracle.h"
#include "algo/params.h"
#include "proto/messages.h"
#include "sim/medium.h"

namespace cbtc::proto {

struct agent_config {
  algo::cbtc_params params{};
  /// Time the agent waits for Acks after each Hello; must exceed one
  /// round trip of the channel's worst-case latency.
  double round_timeout{0.5};
  /// Multiplier on the estimated required power for Acks and drop
  /// notices; >1 adds headroom against estimation noise.
  double reply_margin{1.0};
  /// Number of Hello re-broadcasts per power level (lossy channels).
  std::uint32_t retries_per_level{1};
};

/// What the agent knows about a discovered neighbor.
struct discovered_neighbor {
  double required_power{0.0};   // estimated p(d(u,v))
  double direction{0.0};        // angle of arrival
  double discovery_power{0.0};  // power tag: Hello power when first acked
  std::uint32_t level{0};       // growth round of first discovery
};

class cbtc_agent {
 public:
  cbtc_agent(sim::medium& m, node_id self, const agent_config& cfg);

  /// Begins the growing phase; `on_done` fires once (when coverage is
  /// reached or maximum power exhausted).
  void start(std::function<void()> on_done = {});

  /// Feeds a received message into the agent (wire up as the node's
  /// rx handler, or call from an owning composite agent).
  void handle(const sim::rx_info& rx, const message& msg);

  /// After finishing: unicasts a drop notice to every node this agent
  /// acked that it did not itself discover (enables E^-_alpha).
  void send_drop_notices();

  // -- results ------------------------------------------------------
  [[nodiscard]] bool done() const { return phase_ == phase::done; }
  [[nodiscard]] bool boundary() const { return boundary_; }
  [[nodiscard]] double final_power() const { return power_; }
  [[nodiscard]] const std::map<node_id, discovered_neighbor>& neighbors() const {
    return neighbors_;
  }
  /// Nodes whose Hellos this agent acked, with the power needed to
  /// reach them (the inbound side used for E_alpha radii).
  [[nodiscard]] const std::map<node_id, double>& acked() const { return acked_; }
  /// Inbound nodes that asked to be dropped (Section 3.2).
  [[nodiscard]] const std::vector<node_id>& dropped() const { return dropped_; }
  /// Hello broadcasts performed.
  [[nodiscard]] std::uint32_t rounds() const { return round_; }
  /// Power tags of the Hello levels used (for shrink-back/reconfig).
  [[nodiscard]] const std::vector<double>& level_powers() const { return level_powers_; }

  /// Converts the discovery state into the oracle's per-node record
  /// (distances recovered from required powers via the power model).
  [[nodiscard]] algo::node_result to_node_result() const;

  // -- reconfiguration hooks (Section 4) ----------------------------
  /// Drops `v` from the neighbor table (leave_u(v)).
  void forget(node_id v);
  /// Inserts/updates `v` (join_u(v)); the discovery_power acts as the
  /// shrink-back tag for later pruning.
  void learn(node_id v, const discovered_neighbor& info);
  /// Updates the stored bearing of `v` (aChange_u(v)); returns false if
  /// `v` is unknown.
  bool update_direction(node_id v, double direction);
  /// True if the current directions leave an alpha-gap.
  [[nodiscard]] bool has_gap() const;
  /// p(rad^-_u): largest required power over current neighbors.
  [[nodiscard]] double coverage_power() const;
  /// Shrink-back on the live table: removes neighbors with the largest
  /// discovery tags while cover_alpha is unchanged (Sections 3.1, 4).
  /// Returns the number of neighbors removed.
  std::size_t prune_shrink_back();
  /// Re-enters the growing phase from `start_power` (the paper re-runs
  /// CBTC with p0 = p(rad^-_u) after a leave/aChange opened a gap).
  void regrow(double start_power, std::function<void()> on_done = {});

  /// Fires on every *membership* change of the neighbor table:
  /// (v, true) when v enters, (v, false) when v leaves. Direction or
  /// power updates to an existing entry do not fire. This is the delta
  /// stream that lets the dynamic engine mirror the closure topology
  /// incrementally (graph::closure_mirror) instead of re-reading every
  /// table per connectivity evaluation.
  using table_observer = std::function<void(node_id, bool)>;
  void set_table_observer(table_observer obs) { table_observer_ = std::move(obs); }

 private:
  void table_changed(node_id v, bool added) {
    if (table_observer_) table_observer_(v, added);
  }

  enum class phase : std::uint8_t { idle, growing, done };

  void next_round();
  void evaluate_round(std::uint32_t round);
  [[nodiscard]] std::vector<double> known_directions() const;

  sim::medium& medium_;
  node_id self_;
  agent_config cfg_;

  phase phase_{phase::idle};
  double power_{0.0};  // current (last broadcast) Hello power
  std::uint32_t round_{0};
  std::vector<double> level_powers_;
  bool boundary_{false};
  std::map<node_id, discovered_neighbor> neighbors_;
  std::map<node_id, double> acked_;
  std::vector<node_id> dropped_;
  std::function<void()> on_done_;
  table_observer table_observer_;
};

}  // namespace cbtc::proto
