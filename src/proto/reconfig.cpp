#include "proto/reconfig.h"

#include <algorithm>

namespace cbtc::proto {

reconfig_agent::reconfig_agent(sim::medium& m, node_id self, const reconfig_config& cfg)
    : medium_(m), self_(self), cfg_(cfg) {
  cbtc_ = std::make_unique<cbtc_agent>(m, self, cfg.agent);
  ndp_ = std::make_unique<ndp_agent>(m, self, cfg.ndp, [this] { return beacon_power(); });
  ndp_->on_join = [this](node_id v, const ndp_entry& e) { on_join(v, e); };
  ndp_->on_leave = [this](node_id v) { on_leave(v); };
  ndp_->on_achange = [this](node_id v, const ndp_entry& e) { on_achange(v, e); };

  medium_.set_handler(self, [this](const sim::rx_info& rx, const std::any& payload) {
    const auto& msg = std::any_cast<const message&>(payload);
    if (const auto* beacon = std::get_if<beacon_msg>(&msg)) {
      ndp_->handle(rx, *beacon);
    } else {
      cbtc_->handle(rx, msg);
    }
  });
}

void reconfig_agent::start(sim::time_point ndp_until, std::function<void()> on_initial_done) {
  cbtc_->start([this, ndp_until, cb = std::move(on_initial_done)] {
    ndp_->start(ndp_until);
    if (cb) cb();
  });
}

double reconfig_agent::beacon_power() const {
  // Boundary nodes must not lower their beacon below the basic
  // algorithm's power (maximum power), or rejoining partitions would
  // never hear each other (Section 4).
  if (cbtc_->boundary()) return medium_.power().max_power();
  double p = std::max(cbtc_->final_power(), cbtc_->coverage_power());
  // Reach the inbound E_alpha side too: nodes we acked may rely on us.
  for (const auto& [v, need] : cbtc_->acked()) p = std::max(p, need);
  return std::min(p, medium_.power().max_power());
}

void reconfig_agent::on_join(node_id v, const ndp_entry& e) {
  ++stats_.joins;
  discovered_neighbor info;
  info.required_power = e.required_power;
  info.direction = e.direction;
  info.discovery_power = e.required_power;  // tag = power needed when heard
  info.level = 0;
  cbtc_->learn(v, info);
  if (cfg_.shrink_back && !regrowing_) {
    stats_.prunes += cbtc_->prune_shrink_back();
  }
  if (change_hook_) change_hook_();
}

void reconfig_agent::on_leave(node_id v) {
  ++stats_.leaves;
  cbtc_->forget(v);
  if (cbtc_->has_gap() && !regrowing_) {
    ++stats_.regrows;
    regrowing_ = true;
    cbtc_->regrow(cbtc_->coverage_power(), [this] {
      regrowing_ = false;
      if (change_hook_) change_hook_();
    });
  }
  if (change_hook_) change_hook_();
}

void reconfig_agent::on_achange(node_id v, const ndp_entry& e) {
  ++stats_.achanges;
  cbtc_->update_direction(v, e.direction);
  cbtc_->learn(v, [&] {
    discovered_neighbor info;
    info.required_power = e.required_power;
    info.direction = e.direction;
    info.discovery_power = e.required_power;
    return info;
  }());
  if (!regrowing_) {
    if (cbtc_->has_gap()) {
      ++stats_.regrows;
      regrowing_ = true;
      cbtc_->regrow(cbtc_->coverage_power(), [this] {
        regrowing_ = false;
        if (change_hook_) change_hook_();
      });
    } else if (cfg_.shrink_back) {
      stats_.prunes += cbtc_->prune_shrink_back();
    }
  }
  if (change_hook_) change_hook_();
}

}  // namespace cbtc::proto
