#include "proto/cbtc_agent.h"

#include <algorithm>
#include <utility>

#include "geom/angle.h"
#include "geom/arc_set.h"

namespace cbtc::proto {

cbtc_agent::cbtc_agent(sim::medium& m, node_id self, const agent_config& cfg)
    : medium_(m), self_(self), cfg_(cfg) {
  const double default_p0 = medium_.power().required_power(medium_.power().max_range() / 16.0);
  power_ = cfg_.params.initial_power > 0.0 ? cfg_.params.initial_power : default_p0;
}

void cbtc_agent::start(std::function<void()> on_done) {
  on_done_ = std::move(on_done);
  if (phase_ != phase::idle) return;
  // Figure 1: while (p < P and gap-alpha(D)) — with D empty the gap test
  // is vacuously true, so the agent always performs at least one round
  // unless p0 already equals maximum power.
  phase_ = phase::growing;
  next_round();
}

void cbtc_agent::next_round() {
  const double max_power = medium_.power().max_power();
  power_ = std::min(power_ * cfg_.params.increase_factor, max_power);
  level_powers_.push_back(power_);
  ++round_;
  const std::uint32_t this_round = round_;
  for (std::uint32_t i = 0; i < std::max<std::uint32_t>(1, cfg_.retries_per_level); ++i) {
    const double stagger = cfg_.round_timeout * 0.5 * static_cast<double>(i) /
                           std::max<std::uint32_t>(1, cfg_.retries_per_level);
    medium_.schedule_self(self_, stagger, [this, this_round] {
      medium_.broadcast(self_, power_, message{hello_msg{self_, power_, this_round}});
    });
  }
  medium_.schedule_self(self_, cfg_.round_timeout,
                        [this, this_round] { evaluate_round(this_round); });
}

void cbtc_agent::evaluate_round(std::uint32_t round) {
  if (phase_ != phase::growing || round != round_) return;  // stale deadline
  const std::vector<double> dirs = known_directions();
  const bool gap = geom::has_alpha_gap(dirs, cfg_.params.alpha);
  if (gap && power_ < medium_.power().max_power()) {
    next_round();
    return;
  }
  boundary_ = gap;
  phase_ = phase::done;
  if (on_done_) {
    auto cb = std::move(on_done_);
    on_done_ = {};
    cb();
  }
}

void cbtc_agent::handle(const sim::rx_info& rx, const message& msg) {
  if (const auto* hello = std::get_if<hello_msg>(&msg)) {
    // Answer with an Ack strong enough to reach the sender; remember
    // that we acked them (we may be their E_alpha neighbor).
    const double need =
        medium_.power().estimate_required_power(hello->tx_power, rx.rx_power) * cfg_.reply_margin;
    auto [it, fresh] = acked_.try_emplace(hello->sender, need);
    if (!fresh) it->second = std::max(it->second, need);
    medium_.unicast(self_, hello->sender, need,
                    message{ack_msg{self_, need, hello->tx_power}});
    return;
  }
  if (const auto* ack = std::get_if<ack_msg>(&msg)) {
    if (phase_ != phase::growing) return;  // late ack from a finished round
    const double need = medium_.power().estimate_required_power(ack->tx_power, rx.rx_power);
    auto [it, fresh] = neighbors_.try_emplace(ack->sender);
    if (fresh) {
      it->second.required_power = need;
      it->second.direction = rx.direction;
      it->second.discovery_power = ack->hello_power;
      it->second.level = round_ - 1;
      table_changed(ack->sender, true);
    } else {
      it->second.direction = rx.direction;  // keep the freshest bearing
    }
    return;
  }
  if (const auto* drop = std::get_if<drop_notice>(&msg)) {
    if (neighbors_.erase(drop->sender) > 0) {
      dropped_.push_back(drop->sender);
      table_changed(drop->sender, false);
    }
    acked_.erase(drop->sender);
    return;
  }
  // beacon_msg is handled by the NDP layer (see proto/ndp.h).
}

void cbtc_agent::send_drop_notices() {
  for (const auto& [v, need] : acked_) {
    if (neighbors_.contains(v)) continue;  // symmetric: keep
    medium_.unicast(self_, v, need * cfg_.reply_margin,
                    message{drop_notice{self_, need * cfg_.reply_margin}});
  }
}

std::vector<double> cbtc_agent::known_directions() const {
  std::vector<double> dirs;
  dirs.reserve(neighbors_.size());
  for (const auto& [id, n] : neighbors_) dirs.push_back(n.direction);
  return dirs;
}

void cbtc_agent::forget(node_id v) {
  if (neighbors_.erase(v) > 0) table_changed(v, false);
  acked_.erase(v);
}

void cbtc_agent::learn(node_id v, const discovered_neighbor& info) {
  if (neighbors_.insert_or_assign(v, info).second) table_changed(v, true);
}

bool cbtc_agent::update_direction(node_id v, double direction) {
  const auto it = neighbors_.find(v);
  if (it == neighbors_.end()) return false;
  it->second.direction = direction;
  return true;
}

bool cbtc_agent::has_gap() const {
  return geom::has_alpha_gap(known_directions(), cfg_.params.alpha);
}

double cbtc_agent::coverage_power() const {
  double p = 0.0;
  for (const auto& [v, n] : neighbors_) p = std::max(p, n.required_power);
  return p;
}

std::size_t cbtc_agent::prune_shrink_back() {
  if (neighbors_.empty()) return 0;
  std::vector<double> dirs = known_directions();
  const geom::arc_set full = geom::arc_set::cover(dirs, cfg_.params.alpha);

  // Sort ids by descending discovery tag and test removal greedily,
  // farthest-discovered first (the Section 4 variant of shrink-back).
  std::vector<std::pair<double, node_id>> order;
  order.reserve(neighbors_.size());
  for (const auto& [v, n] : neighbors_) order.push_back({n.discovery_power, v});
  std::sort(order.begin(), order.end(), std::greater<>());

  std::size_t removed = 0;
  for (const auto& [tag, v] : order) {
    if (neighbors_.size() <= 1) break;
    const discovered_neighbor saved = neighbors_.at(v);
    neighbors_.erase(v);
    std::vector<double> rest;
    rest.reserve(neighbors_.size());
    for (const auto& [w, n] : neighbors_) rest.push_back(n.direction);
    if (geom::arc_set::cover(rest, cfg_.params.alpha).approx_equals(full)) {
      ++removed;
      table_changed(v, false);  // only committed removals are deltas
    } else {
      neighbors_[v] = saved;  // removal would shrink coverage: keep
    }
  }
  return removed;
}

void cbtc_agent::regrow(double start_power, std::function<void()> on_done) {
  on_done_ = std::move(on_done);
  power_ = std::max(start_power, 0.0);
  if (power_ <= 0.0) {
    const double default_p0 = medium_.power().required_power(medium_.power().max_range() / 16.0);
    power_ = cfg_.params.initial_power > 0.0 ? cfg_.params.initial_power : default_p0;
  }
  boundary_ = false;
  phase_ = phase::growing;
  next_round();
}

algo::node_result cbtc_agent::to_node_result() const {
  algo::node_result res;
  res.level_powers = level_powers_;
  res.final_power = level_powers_.empty() ? power_ : level_powers_.back();
  res.boundary = boundary_;
  res.neighbors.reserve(neighbors_.size());
  for (const auto& [v, n] : neighbors_) {
    algo::neighbor_record rec;
    rec.id = v;
    rec.distance = medium_.power().range(n.required_power);
    rec.direction = n.direction;
    rec.level = n.level;
    rec.discovery_power = n.discovery_power;
    res.neighbors.push_back(rec);
  }
  std::sort(res.neighbors.begin(), res.neighbors.end(),
            [](const algo::neighbor_record& a, const algo::neighbor_record& b) {
              return a.distance < b.distance || (a.distance == b.distance && a.id < b.id);
            });
  return res;
}

}  // namespace cbtc::proto
