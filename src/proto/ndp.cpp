#include "proto/ndp.h"

#include <utility>
#include <vector>

#include "geom/angle.h"

namespace cbtc::proto {

ndp_agent::ndp_agent(sim::medium& m, node_id self, const ndp_config& cfg,
                     std::function<double()> beacon_power)
    : medium_(m), self_(self), cfg_(cfg), beacon_power_(std::move(beacon_power)) {}

void ndp_agent::start(sim::time_point until) {
  const double first = cfg_.beacon_interval * cfg_.phase_offset;
  medium_.schedule_self(self_, first, [this, until] { tick(until); });
}

void ndp_agent::tick(sim::time_point until) {
  if (!medium_.is_up(self_)) {
    // A crashed node stops beaconing; if it restarts, keep the ticks
    // going so it re-announces itself (schedule below).
  } else {
    medium_.broadcast(self_, beacon_power_(), message{beacon_msg{self_, beacon_power_(), seq_++}});
    ++beacons_sent_;
    sweep();
  }
  if (medium_.sim().now() + cfg_.beacon_interval <= until) {
    medium_.schedule_self(self_, cfg_.beacon_interval, [this, until] { tick(until); });
  }
}

void ndp_agent::sweep() {
  const sim::time_point now = medium_.sim().now();
  const double tau = cfg_.beacon_interval * cfg_.miss_limit;
  std::vector<node_id> expired;
  for (const auto& [v, entry] : table_) {
    if (now - entry.last_heard > tau) expired.push_back(v);
  }
  for (node_id v : expired) {
    table_.erase(v);
    if (on_leave) on_leave(v);
  }
}

void ndp_agent::handle(const sim::rx_info& rx, const beacon_msg& beacon) {
  ndp_entry entry;
  entry.direction = rx.direction;
  entry.required_power = medium_.power().estimate_required_power(beacon.tx_power, rx.rx_power);
  entry.last_heard = rx.time;

  const auto it = table_.find(beacon.sender);
  if (it == table_.end()) {
    table_.emplace(beacon.sender, entry);
    if (on_join) on_join(beacon.sender, entry);
    return;
  }
  const bool moved = geom::angle_dist(it->second.direction, entry.direction) > cfg_.achange_threshold;
  it->second = entry;
  if (moved && on_achange) on_achange(beacon.sender, entry);
}

}  // namespace cbtc::proto
