// Reconfiguration agent (Section 4): CBTC + NDP under churn.
//
// Composes the growing-phase agent with the beaconing NDP and applies
// the paper's three reconfiguration rules:
//   - leave_u(v):  drop v; if an alpha-gap opens, rerun CBTC(alpha)
//                  starting from p(rad^-_u).
//   - join_u(v):   record v's direction and required power, then
//                  shrink back (drop farthest neighbors while the cone
//                  coverage is unchanged).
//   - aChange_u(v): update v's direction; rerun if a gap opened,
//                  otherwise shrink back.
//
// Beacon power: the power reaching every neighbor the basic algorithm
// would keep — boundary nodes beacon at maximum power even after
// shrink-back, which is exactly the paper's fix for the partition-
// rejoin scenario of Section 4.
#pragma once

#include <functional>
#include <memory>

#include "proto/cbtc_agent.h"
#include "proto/ndp.h"

namespace cbtc::proto {

struct reconfig_config {
  agent_config agent{};
  ndp_config ndp{};
  /// If true, joins/aChanges trigger the shrink-back pruning pass.
  bool shrink_back{true};
};

class reconfig_agent {
 public:
  reconfig_agent(sim::medium& m, node_id self, const reconfig_config& cfg);

  /// Runs the initial growing phase, then starts NDP beaconing (which
  /// continues until sim time `ndp_until`).
  void start(sim::time_point ndp_until, std::function<void()> on_initial_done = {});

  /// The power this node beacons with (see header comment).
  [[nodiscard]] double beacon_power() const;

  [[nodiscard]] const cbtc_agent& cbtc() const { return *cbtc_; }
  [[nodiscard]] cbtc_agent& cbtc() { return *cbtc_; }
  [[nodiscard]] const ndp_agent& ndp() const { return *ndp_; }

  // Reconfiguration event counters (benchmarks).
  struct counters {
    std::uint64_t joins{0};
    std::uint64_t leaves{0};
    std::uint64_t achanges{0};
    std::uint64_t regrows{0};
    std::uint64_t prunes{0};
  };
  [[nodiscard]] const counters& stats() const { return stats_; }

  /// Fires after this agent's neighbor table changed: on every
  /// join / leave / aChange rule application and when a regrow
  /// completes. Lets observers (e.g. the engine's event-driven
  /// connectivity tracker) re-evaluate topology properties at event
  /// granularity instead of waiting for the next metric sample.
  void set_change_hook(std::function<void()> hook) { change_hook_ = std::move(hook); }

  /// Per-delta stream: (v, added) for every membership change of this
  /// agent's neighbor table, including discoveries during the initial
  /// growing phase and regrows. Feeds graph::closure_mirror so the
  /// engine never re-reads whole tables. See cbtc_agent::set_table_observer.
  void set_table_hook(cbtc_agent::table_observer hook) {
    cbtc_->set_table_observer(std::move(hook));
  }

 private:
  void on_join(node_id v, const ndp_entry& e);
  void on_leave(node_id v);
  void on_achange(node_id v, const ndp_entry& e);

  sim::medium& medium_;
  node_id self_;
  reconfig_config cfg_;
  std::unique_ptr<cbtc_agent> cbtc_;
  std::unique_ptr<ndp_agent> ndp_;
  counters stats_;
  std::function<void()> change_hook_;
  bool regrowing_{false};
};

}  // namespace cbtc::proto
