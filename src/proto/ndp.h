// Neighbor Discovery Protocol (Section 4).
//
// "A NDP is usually a simple beaconing protocol for each node to tell
// its neighbors that it is still alive. The beacon includes the
// sending node's ID and the transmission power of the beacon. A
// neighbor is considered failed if a pre-defined number of beacons are
// not received for a certain time interval tau. A node v is considered
// a new neighbor of u if a beacon is received from v and no beacon was
// received from v during the previous tau interval."
//
// The NDP agent emits three events to its owner: join_u(v),
// leave_u(v), aChange_u(v) — exactly the paper's trigger set.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "proto/messages.h"
#include "sim/medium.h"

namespace cbtc::proto {

struct ndp_config {
  double beacon_interval{1.0};
  /// Beacons missed before a leave fires (tau = miss_limit * interval).
  std::uint32_t miss_limit{3};
  /// Minimum bearing change (radians) that triggers aChange.
  double achange_threshold{0.05};
  /// Initial phase offset factor in [0, 1): node beacons at
  /// (offset + k) * interval. Staggering avoids synchronized bursts.
  double phase_offset{0.0};
};

/// What NDP currently knows about a heard neighbor.
struct ndp_entry {
  double direction{0.0};
  double required_power{0.0};  // estimated p(d) from the last beacon
  sim::time_point last_heard{0.0};
};

class ndp_agent {
 public:
  /// `beacon_power` is sampled at every beacon (the reconfiguration
  /// layer adjusts it as the topology evolves; see Section 4's
  /// discussion of why shrink-back must not lower the beacon power).
  ndp_agent(sim::medium& m, node_id self, const ndp_config& cfg,
            std::function<double()> beacon_power);

  /// Starts beaconing and liveness sweeping until sim time `until`.
  void start(sim::time_point until);

  /// Feed beacon messages here (from the node's rx handler).
  void handle(const sim::rx_info& rx, const beacon_msg& beacon);

  // Event callbacks (set before start()).
  std::function<void(node_id, const ndp_entry&)> on_join;
  std::function<void(node_id)> on_leave;
  std::function<void(node_id, const ndp_entry&)> on_achange;

  [[nodiscard]] const std::map<node_id, ndp_entry>& table() const { return table_; }
  [[nodiscard]] std::uint64_t beacons_sent() const { return beacons_sent_; }

 private:
  void tick(sim::time_point until);
  void sweep();

  sim::medium& medium_;
  node_id self_;
  ndp_config cfg_;
  std::function<double()> beacon_power_;
  std::map<node_id, ndp_entry> table_;
  std::uint64_t seq_{0};
  std::uint64_t beacons_sent_{0};
};

}  // namespace cbtc::proto
