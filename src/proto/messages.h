// Wire messages of the CBTC protocol suite.
//
// Every message carries the sender's id and its transmission power
// (Figure 1: "the power used to broadcast the message is included in
// the message"; Section 3.3: Acks carry the responder's power level so
// receivers can rank neighbor distances; Section 4: beacons carry id
// and power).
#pragma once

#include <cstdint>
#include <variant>

#include "graph/types.h"

namespace cbtc::proto {

using graph::node_id;

/// "Hello" broadcast of the growing phase.
struct hello_msg {
  node_id sender{graph::invalid_node};
  double tx_power{0.0};
  std::uint32_t round{0};  // the sender's growth round (diagnostics)
};

/// Ack reply to a Hello (unicast back to the Hello sender).
struct ack_msg {
  node_id sender{graph::invalid_node};
  double tx_power{0.0};     // the Ack's own power (distance ranking, op3)
  double hello_power{0.0};  // echoed power of the Hello being answered
};

/// Asymmetric-edge-removal notice (Section 3.2): "I acked your Hello
/// but you are not in my N_alpha; remove me when building E^-_alpha."
struct drop_notice {
  node_id sender{graph::invalid_node};
  double tx_power{0.0};
};

/// Periodic NDP beacon (Section 4).
struct beacon_msg {
  node_id sender{graph::invalid_node};
  double tx_power{0.0};
  std::uint64_t seq{0};
};

using message = std::variant<hello_msg, ack_msg, drop_notice, beacon_msg>;

}  // namespace cbtc::proto
