// Convenience driver: run the distributed CBTC protocol over a set of
// node positions and package the outcome like the centralized oracle,
// so tests can compare the two directly and benches can measure
// protocol costs (messages, energy, completion time).
#pragma once

#include <span>
#include <vector>

#include "algo/oracle.h"
#include "geom/vec2.h"
#include "proto/cbtc_agent.h"
#include "radio/channel.h"
#include "radio/direction.h"
#include "radio/power_model.h"
#include "radio/propagation.h"
#include "sim/medium.h"
#include "sim/simulator.h"

namespace cbtc::proto {

struct protocol_run_config {
  agent_config agent{};
  radio::channel_params channel{};
  double direction_noise{0.0};
  std::uint64_t seed{0};
  /// When true, agents exchange drop notices after finishing so the
  /// symmetric core E^-_alpha can be built (Section 3.2).
  bool send_drop_notices{false};
  /// Hard cap on simulated events (guards against runaway schedules).
  std::size_t max_events{50'000'000};
};

struct protocol_run_result {
  algo::cbtc_result outcome;           // same shape as the oracle's result
  sim::medium_stats stats{};           // message/energy counters
  sim::time_point completion_time{0};  // when the last agent finished
  std::vector<node_id> drop_senders;   // diagnostic: who sent drop notices
};

/// Runs the full growing phase (plus optional drop-notice round) for
/// every node and returns the collected results. `link` carries the
/// power model plus the per-link propagation; a bare power_model
/// converts implicitly (isotropic, bitwise-identical behaviour).
[[nodiscard]] protocol_run_result run_protocol(std::span<const geom::vec2> positions,
                                               const radio::link_model& link,
                                               const protocol_run_config& cfg);

}  // namespace cbtc::proto
