#include "proto/runner.h"

#include <memory>
#include <stdexcept>

namespace cbtc::proto {

protocol_run_result run_protocol(std::span<const geom::vec2> positions,
                                 const radio::link_model& link,
                                 const protocol_run_config& cfg) {
  sim::simulator simulator;
  sim::medium medium(simulator, link, radio::channel(cfg.channel, cfg.seed),
                     radio::direction_estimator(cfg.direction_noise, cfg.seed + 1));

  std::vector<std::unique_ptr<cbtc_agent>> agents;
  agents.reserve(positions.size());
  for (const geom::vec2& p : positions) {
    const node_id id = medium.add_node(p, {});
    agents.push_back(std::make_unique<cbtc_agent>(medium, id, cfg.agent));
    medium.set_handler(id, [&agents, id](const sim::rx_info& rx, const std::any& payload) {
      agents[id]->handle(rx, std::any_cast<const message&>(payload));
    });
  }

  protocol_run_result out;
  std::size_t remaining = agents.size();
  for (auto& agent : agents) {
    cbtc_agent* a = agent.get();
    a->start([&remaining, &simulator, &out] {
      if (--remaining == 0) out.completion_time = simulator.now();
    });
  }
  simulator.run(cfg.max_events);
  if (remaining != 0) throw std::runtime_error("run_protocol: agents did not all finish");

  if (cfg.send_drop_notices) {
    for (auto& agent : agents) {
      if (!agent->acked().empty()) agent->send_drop_notices();
    }
    simulator.run(cfg.max_events);
  }

  out.outcome.params = cfg.agent.params;
  out.outcome.nodes.reserve(agents.size());
  for (auto& agent : agents) {
    out.outcome.nodes.push_back(agent->to_node_result());
    if (!agent->dropped().empty()) out.drop_senders.push_back(agent->dropped().front());
  }
  out.stats = medium.stats();
  return out;
}

}  // namespace cbtc::proto
