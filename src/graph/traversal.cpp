#include "graph/traversal.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <utility>

#include "util/parallel.h"

namespace cbtc::graph {

component_labels connected_components(const undirected_graph& g) {
  const std::size_t n = g.num_nodes();
  component_labels result;
  result.label.assign(n, invalid_node);

  std::deque<node_id> queue;
  for (node_id start = 0; start < n; ++start) {
    if (result.label[start] != invalid_node) continue;
    const auto comp = static_cast<node_id>(result.count++);
    result.label[start] = comp;
    queue.push_back(start);
    while (!queue.empty()) {
      const node_id u = queue.front();
      queue.pop_front();
      for (node_id v : g.neighbors(u)) {
        if (result.label[v] == invalid_node) {
          result.label[v] = comp;
          queue.push_back(v);
        }
      }
    }
  }
  return result;
}

bool is_connected(const undirected_graph& g) {
  return connected_components(g).count <= 1;
}

bool reachable(const undirected_graph& g, node_id u, node_id v) {
  return connected_components(g).same_component(u, v);
}

namespace {

node_id uf_find(std::vector<node_id>& parent, node_id x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];  // path halving
    x = parent[x];
  }
  return x;
}

/// Builds the component forest of `g` into `parent`/`size` (union by
/// size), flattens every node to its root, and returns the component
/// count. Reuses the vectors' capacity across calls.
std::size_t uf_build(const undirected_graph& g, std::vector<node_id>& parent,
                     std::vector<std::uint32_t>& size) {
  const std::size_t n = g.num_nodes();
  parent.resize(n);
  size.assign(n, 1);
  for (node_id u = 0; u < n; ++u) parent[u] = u;
  std::size_t sets = n;
  for (node_id u = 0; u < n; ++u) {
    for (node_id v : g.neighbors(u)) {
      if (v <= u) continue;  // each edge once
      node_id ra = uf_find(parent, u);
      node_id rb = uf_find(parent, v);
      if (ra == rb) continue;
      if (size[ra] < size[rb]) std::swap(ra, rb);
      parent[rb] = ra;
      size[ra] += size[rb];
      --sets;
    }
  }
  // Flatten so the verification phase can read roots concurrently
  // without mutating the forest.
  for (node_id u = 0; u < n; ++u) parent[u] = uf_find(parent, u);
  return sets;
}

/// Every edge of `a` inside one component of `b`'s flattened forest?
bool edges_within(const undirected_graph& a, const std::vector<node_id>& root_b, std::size_t lo,
                  std::size_t hi) {
  for (std::size_t u = lo; u < hi; ++u) {
    for (node_id v : a.neighbors(static_cast<node_id>(u))) {
      if (v > u && root_b[u] != root_b[v]) return false;
    }
  }
  return true;
}

}  // namespace

bool same_connectivity(const undirected_graph& a, const undirected_graph& b) {
  connectivity_scratch scratch;
  return same_connectivity(a, b, scratch);
}

bool same_connectivity(const undirected_graph& a, const undirected_graph& b,
                       connectivity_scratch& scratch) {
  if (a.num_nodes() != b.num_nodes()) return false;
  if (uf_build(a, scratch.root_a, scratch.size_a) != uf_build(b, scratch.root_b, scratch.size_b)) {
    return false;
  }
  // Equal component counts + "a refines b" (every a-edge stays inside
  // one b-component, hence every a-component sits inside one
  // b-component) force the partitions to be equal.
  return edges_within(a, scratch.root_b, 0, a.num_nodes());
}

bool same_connectivity(const undirected_graph& a, const undirected_graph& b,
                       util::thread_pool& pool, connectivity_scratch& scratch) {
  if (a.num_nodes() != b.num_nodes()) return false;
  if (uf_build(a, scratch.root_a, scratch.size_a) != uf_build(b, scratch.root_b, scratch.size_b)) {
    return false;
  }
  return pool.reduce<bool>(
      a.num_nodes(), true,
      [&](std::size_t lo, std::size_t hi) { return edges_within(a, scratch.root_b, lo, hi); },
      [](bool& total, const bool& part) { total = total && part; });
}

std::vector<std::uint32_t> bfs_distances(const undirected_graph& g, node_id from) {
  constexpr auto inf = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(g.num_nodes(), inf);
  std::deque<node_id> queue;
  dist[from] = 0;
  queue.push_back(from);
  while (!queue.empty()) {
    const node_id u = queue.front();
    queue.pop_front();
    for (node_id v : g.neighbors(u)) {
      if (dist[v] == inf) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<node_id> bfs_path(const undirected_graph& g, node_id from, node_id to) {
  std::vector<node_id> parent(g.num_nodes(), invalid_node);
  std::vector<char> seen(g.num_nodes(), 0);
  std::deque<node_id> queue;
  seen[from] = 1;
  queue.push_back(from);
  while (!queue.empty() && !seen[to]) {
    const node_id u = queue.front();
    queue.pop_front();
    for (node_id v : g.neighbors(u)) {
      if (!seen[v]) {
        seen[v] = 1;
        parent[v] = u;
        queue.push_back(v);
      }
    }
  }
  if (!seen[to]) return {};
  std::vector<node_id> path;
  for (node_id cur = to; cur != invalid_node; cur = parent[cur]) {
    path.push_back(cur);
    if (cur == from) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace cbtc::graph
