#include "graph/traversal.h"

#include <algorithm>
#include <deque>
#include <limits>

namespace cbtc::graph {

component_labels connected_components(const undirected_graph& g) {
  const std::size_t n = g.num_nodes();
  component_labels result;
  result.label.assign(n, invalid_node);

  std::deque<node_id> queue;
  for (node_id start = 0; start < n; ++start) {
    if (result.label[start] != invalid_node) continue;
    const auto comp = static_cast<node_id>(result.count++);
    result.label[start] = comp;
    queue.push_back(start);
    while (!queue.empty()) {
      const node_id u = queue.front();
      queue.pop_front();
      for (node_id v : g.neighbors(u)) {
        if (result.label[v] == invalid_node) {
          result.label[v] = comp;
          queue.push_back(v);
        }
      }
    }
  }
  return result;
}

bool is_connected(const undirected_graph& g) {
  return connected_components(g).count <= 1;
}

bool reachable(const undirected_graph& g, node_id u, node_id v) {
  return connected_components(g).same_component(u, v);
}

bool same_connectivity(const undirected_graph& a, const undirected_graph& b) {
  if (a.num_nodes() != b.num_nodes()) return false;
  const component_labels ca = connected_components(a);
  const component_labels cb = connected_components(b);
  if (ca.count != cb.count) return false;
  // Same count + a consistent bijection between labels => same partition.
  std::vector<node_id> a_to_b(ca.count, invalid_node);
  std::vector<node_id> b_to_a(cb.count, invalid_node);
  for (node_id u = 0; u < a.num_nodes(); ++u) {
    const node_id la = ca.label[u];
    const node_id lb = cb.label[u];
    if (a_to_b[la] == invalid_node) a_to_b[la] = lb;
    if (b_to_a[lb] == invalid_node) b_to_a[lb] = la;
    if (a_to_b[la] != lb || b_to_a[lb] != la) return false;
  }
  return true;
}

std::vector<std::uint32_t> bfs_distances(const undirected_graph& g, node_id from) {
  constexpr auto inf = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(g.num_nodes(), inf);
  std::deque<node_id> queue;
  dist[from] = 0;
  queue.push_back(from);
  while (!queue.empty()) {
    const node_id u = queue.front();
    queue.pop_front();
    for (node_id v : g.neighbors(u)) {
      if (dist[v] == inf) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<node_id> bfs_path(const undirected_graph& g, node_id from, node_id to) {
  std::vector<node_id> parent(g.num_nodes(), invalid_node);
  std::vector<char> seen(g.num_nodes(), 0);
  std::deque<node_id> queue;
  seen[from] = 1;
  queue.push_back(from);
  while (!queue.empty() && !seen[to]) {
    const node_id u = queue.front();
    queue.pop_front();
    for (node_id v : g.neighbors(u)) {
      if (!seen[v]) {
        seen[v] = 1;
        parent[v] = u;
        queue.push_back(v);
      }
    }
  }
  if (!seen[to]) return {};
  std::vector<node_id> path;
  for (node_id cur = to; cur != invalid_node; cur = parent[cur]) {
    path.push_back(cur);
    if (cur == from) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace cbtc::graph
