#include "graph/robustness.h"

#include <algorithm>

#include "graph/traversal.h"

namespace cbtc::graph {

namespace {

/// Iterative Tarjan low-link DFS computing discovery/low arrays plus
/// articulation points and bridges in one pass.
struct lowlink_state {
  std::vector<std::uint32_t> disc;
  std::vector<std::uint32_t> low;
  std::vector<node_id> parent;
  std::vector<node_id> cut_vertices;
  std::vector<edge> cut_edges;

  explicit lowlink_state(std::size_t n)
      : disc(n, 0), low(n, 0), parent(n, invalid_node) {}
};

void dfs_from(const undirected_graph& g, node_id root, lowlink_state& st,
              std::uint32_t& timer) {
  struct frame {
    node_id u;
    std::size_t next_edge;
    std::size_t children;
  };
  std::vector<frame> stack;
  st.disc[root] = st.low[root] = ++timer;
  stack.push_back({root, 0, 0});
  bool root_is_cut = false;

  while (!stack.empty()) {
    frame& f = stack.back();
    const auto neighbors = g.neighbors(f.u);
    if (f.next_edge < neighbors.size()) {
      const node_id v = neighbors[f.next_edge++];
      if (st.disc[v] == 0) {
        st.parent[v] = f.u;
        ++f.children;
        st.disc[v] = st.low[v] = ++timer;
        stack.push_back({v, 0, 0});
      } else if (v != st.parent[f.u]) {
        st.low[f.u] = std::min(st.low[f.u], st.disc[v]);
      }
      continue;
    }
    // All edges of f.u explored: propagate low-link to the parent.
    const node_id u = f.u;
    const std::size_t children = f.children;
    stack.pop_back();
    if (stack.empty()) {
      if (u == root && children >= 2) root_is_cut = true;
      break;
    }
    const node_id p = stack.back().u;
    st.low[p] = std::min(st.low[p], st.low[u]);
    if (st.low[u] > st.disc[p]) st.cut_edges.push_back({std::min(p, u), std::max(p, u)});
    if (st.parent[p] != invalid_node && st.low[u] >= st.disc[p]) {
      st.cut_vertices.push_back(p);
    } else if (st.parent[p] == invalid_node && p == root) {
      // Root articulation handled by child count below.
    }
  }
  if (root_is_cut) st.cut_vertices.push_back(root);
}

}  // namespace

std::vector<node_id> articulation_points(const undirected_graph& g) {
  lowlink_state st(g.num_nodes());
  std::uint32_t timer = 0;
  for (node_id u = 0; u < g.num_nodes(); ++u) {
    if (st.disc[u] == 0) dfs_from(g, u, st, timer);
  }
  std::sort(st.cut_vertices.begin(), st.cut_vertices.end());
  st.cut_vertices.erase(std::unique(st.cut_vertices.begin(), st.cut_vertices.end()),
                        st.cut_vertices.end());
  return st.cut_vertices;
}

std::vector<edge> bridges(const undirected_graph& g) {
  lowlink_state st(g.num_nodes());
  std::uint32_t timer = 0;
  for (node_id u = 0; u < g.num_nodes(); ++u) {
    if (st.disc[u] == 0) dfs_from(g, u, st, timer);
  }
  std::sort(st.cut_edges.begin(), st.cut_edges.end(), [](const edge& a, const edge& b) {
    return a.u < b.u || (a.u == b.u && a.v < b.v);
  });
  return st.cut_edges;
}

bool is_biconnected(const undirected_graph& g) {
  if (g.num_nodes() <= 1) return true;
  if (!is_connected(g)) return false;
  if (g.num_nodes() == 2) return g.num_edges() == 1;
  return articulation_points(g).empty();
}

}  // namespace cbtc::graph
