#include "graph/shortest_path.h"

#include <cmath>
#include <limits>
#include <queue>

namespace cbtc::graph {

std::vector<double> dijkstra(const undirected_graph& g, node_id from, const edge_cost_fn& cost) {
  constexpr double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(g.num_nodes(), inf);
  using entry = std::pair<double, node_id>;
  std::priority_queue<entry, std::vector<entry>, std::greater<>> heap;
  dist[from] = 0.0;
  heap.push({0.0, from});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    for (node_id v : g.neighbors(u)) {
      const double nd = d + cost(u, v);
      if (nd < dist[v]) {
        dist[v] = nd;
        heap.push({nd, v});
      }
    }
  }
  return dist;
}

shortest_path_tree dijkstra_tree(const undirected_graph& g, node_id from,
                                 const edge_cost_fn& cost) {
  constexpr double inf = std::numeric_limits<double>::infinity();
  shortest_path_tree tree;
  tree.dist.assign(g.num_nodes(), inf);
  tree.parent.assign(g.num_nodes(), invalid_node);
  using entry = std::pair<double, node_id>;
  std::priority_queue<entry, std::vector<entry>, std::greater<>> heap;
  tree.dist[from] = 0.0;
  heap.push({0.0, from});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > tree.dist[u]) continue;
    for (node_id v : g.neighbors(u)) {
      const double nd = d + cost(u, v);
      if (nd < tree.dist[v]) {
        tree.dist[v] = nd;
        tree.parent[v] = u;
        heap.push({nd, v});
      }
    }
  }
  return tree;
}

edge_cost_fn euclidean_cost(const std::vector<geom::vec2>& positions) {
  return [&positions](node_id u, node_id v) {
    return geom::distance(positions[u], positions[v]);
  };
}

edge_cost_fn power_cost(const std::vector<geom::vec2>& positions, double exponent) {
  return [&positions, exponent](node_id u, node_id v) {
    return std::pow(geom::distance(positions[u], positions[v]), exponent);
  };
}

}  // namespace cbtc::graph
