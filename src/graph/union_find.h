// Disjoint-set forest with union by size and path halving.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/types.h"

namespace cbtc::graph {

class union_find {
 public:
  explicit union_find(std::size_t n);

  /// Representative of the set containing `x`.
  [[nodiscard]] node_id find(node_id x);

  /// Merges the sets of `a` and `b`; returns true if they were distinct.
  bool unite(node_id a, node_id b);

  [[nodiscard]] bool same(node_id a, node_id b) { return find(a) == find(b); }
  [[nodiscard]] std::size_t num_sets() const { return num_sets_; }
  [[nodiscard]] std::size_t size_of(node_id x);

 private:
  std::vector<node_id> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t num_sets_;
};

}  // namespace cbtc::graph
