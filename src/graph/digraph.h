// Directed graph over dense node ids.
//
// The raw CBTC neighbor relation N_alpha is *directed* (Example 2.1 of
// the paper shows it need not be symmetric). The paper derives two
// undirected topologies from it:
//   - E_alpha  = symmetric closure  (u,v) in N or (v,u) in N   (Section 2)
//   - E-_alpha = symmetric core     (u,v) in N and (v,u) in N  (Section 3.2)
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace cbtc::util {
class thread_pool;
}

namespace cbtc::graph {

class digraph {
 public:
  digraph() = default;
  explicit digraph(std::size_t num_nodes) : out_(num_nodes) {}

  [[nodiscard]] std::size_t num_nodes() const { return out_.size(); }
  [[nodiscard]] std::size_t num_arcs() const { return num_arcs_; }

  /// Adds the arc u -> v; ignores duplicates and self-loops.
  bool add_arc(node_id u, node_id v);
  bool remove_arc(node_id u, node_id v);
  [[nodiscard]] bool has_arc(node_id u, node_id v) const;

  [[nodiscard]] std::span<const node_id> out_neighbors(node_id u) const { return out_[u]; }
  [[nodiscard]] std::size_t out_degree(node_id u) const { return out_[u].size(); }

  /// Symmetric closure: undirected edge {u,v} iff u->v or v->u.
  [[nodiscard]] undirected_graph symmetric_closure() const;

  /// Symmetric core: undirected edge {u,v} iff u->v and v->u.
  [[nodiscard]] undirected_graph symmetric_core() const;

  /// Parallel variants: per-node adjacency lists are built in parallel
  /// slots and adopted wholesale (no per-edge insertion). Identical
  /// output for any pool width.
  [[nodiscard]] undirected_graph symmetric_closure(util::thread_pool& pool) const;
  [[nodiscard]] undirected_graph symmetric_core(util::thread_pool& pool) const;

  [[nodiscard]] friend bool operator==(const digraph&, const digraph&) = default;

 private:
  std::vector<std::vector<node_id>> out_;  // each list sorted ascending
  std::size_t num_arcs_{0};
};

}  // namespace cbtc::graph
