// Directed graph over dense node ids.
//
// The raw CBTC neighbor relation N_alpha is *directed* (Example 2.1 of
// the paper shows it need not be symmetric). The paper derives two
// undirected topologies from it:
//   - E_alpha  = symmetric closure  (u,v) in N or (v,u) in N   (Section 2)
//   - E-_alpha = symmetric core     (u,v) in N and (v,u) in N  (Section 3.2)
//
// Like undirected_graph, a digraph holds either nested per-node
// vectors (mutable) or one flat CSR out-adjacency (immutable,
// cache-dense); out_neighbors(u) returns a span either way and
// mutation transparently converts CSR back to nested lists.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace cbtc::util {
class thread_pool;
}

namespace cbtc::graph {

class digraph {
 public:
  digraph() = default;
  explicit digraph(std::size_t num_nodes) : out_(num_nodes), num_nodes_(num_nodes) {}

  [[nodiscard]] std::size_t num_nodes() const { return num_nodes_; }
  [[nodiscard]] std::size_t num_arcs() const { return num_arcs_; }

  /// Adds the arc u -> v; ignores duplicates and self-loops.
  bool add_arc(node_id u, node_id v);
  bool remove_arc(node_id u, node_id v);
  [[nodiscard]] bool has_arc(node_id u, node_id v) const;

  [[nodiscard]] std::span<const node_id> out_neighbors(node_id u) const {
    if (is_flat()) {
      return {flat_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
    }
    return out_[u];
  }
  [[nodiscard]] std::size_t out_degree(node_id u) const { return out_neighbors(u).size(); }

  /// Symmetric closure: undirected edge {u,v} iff u->v or v->u.
  [[nodiscard]] undirected_graph symmetric_closure() const;

  /// Symmetric core: undirected edge {u,v} iff u->v and v->u.
  [[nodiscard]] undirected_graph symmetric_core() const;

  /// Parallel variants producing flat CSR adjacency directly: the
  /// in-neighbor scatter is a two-pass count/fill with prefix-sum
  /// offsets (no serial O(E) pass), per-node merges run in parallel
  /// slots, and the result is adopted wholesale. Identical output for
  /// any pool width.
  [[nodiscard]] undirected_graph symmetric_closure(util::thread_pool& pool) const;
  [[nodiscard]] undirected_graph symmetric_core(util::thread_pool& pool) const;

  /// Logical equality regardless of representation.
  friend bool operator==(const digraph& a, const digraph& b);

  /// Adopts pre-built sorted out-lists wholesale (no per-arc
  /// insertion). Contract (asserted in debug builds): each list sorted
  /// ascending, no duplicates or self-loops.
  [[nodiscard]] static digraph from_adjacency(std::vector<std::vector<node_id>> out);

  /// Adopts a flat CSR out-adjacency wholesale; same contract.
  [[nodiscard]] static digraph from_csr(std::vector<std::size_t> offsets,
                                        std::vector<node_id> arcs);

  [[nodiscard]] bool is_flat() const { return !offsets_.empty(); }

 private:
  void materialize();

  std::vector<std::vector<node_id>> out_;  // nested rep: each list sorted ascending
  std::vector<std::size_t> offsets_;       // CSR rep (empty when nested)
  std::vector<node_id> flat_;
  std::size_t num_nodes_{0};
  std::size_t num_arcs_{0};
};

}  // namespace cbtc::graph
