// Shared identifiers for the graph layer.
#pragma once

#include <cstdint>
#include <limits>

namespace cbtc::graph {

/// Node identifier: dense indices [0, n).
using node_id = std::uint32_t;

inline constexpr node_id invalid_node = std::numeric_limits<node_id>::max();

}  // namespace cbtc::graph
