// The max-power graph G_R and Euclidean edge helpers.
//
// G_R = (V, E) with E = {(u,v) : d(u,v) <= R} is the graph induced when
// every node transmits at maximum power (Section 1 of the paper). It is
// the connectivity baseline every topology-control output is compared
// against. Under a non-uniform propagation model the membership test
// generalizes to "the link closes at maximum power"; the link-model
// overloads below prune by the maximum feasible link length, then
// filter per link.
#pragma once

#include <span>
#include <vector>

#include "geom/spatial_grid.h"
#include "geom/vec2.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "radio/propagation.h"

namespace cbtc::util {
class thread_pool;
}

namespace cbtc::graph {

/// Builds G_R with a spatial grid (O(n * k) for bounded density).
[[nodiscard]] undirected_graph build_max_power_graph(std::span<const geom::vec2> positions,
                                                     double max_range);

/// Gain-aware G_R: edge {u, v} iff the link closes at maximum power
/// under `link`. Delegates to the distance test when the propagation
/// is isotropic (bitwise-identical edge set).
[[nodiscard]] undirected_graph build_max_power_graph(std::span<const geom::vec2> positions,
                                                     const radio::link_model& link);

/// Parallel variants producing flat CSR adjacency directly: per-node
/// count pass, exclusive prefix sum, parallel fill — zero per-edge
/// sorted insertion. Expensive membership tests (per-link gains) are
/// evaluated once per unordered pair. Edge set identical to the serial
/// overloads for any pool width.
[[nodiscard]] undirected_graph build_max_power_graph(std::span<const geom::vec2> positions,
                                                     double max_range, util::thread_pool& pool);
[[nodiscard]] undirected_graph build_max_power_graph(std::span<const geom::vec2> positions,
                                                     const radio::link_model& link,
                                                     util::thread_pool& pool);

/// Reference O(n^2) construction, used to cross-check the grid path.
[[nodiscard]] undirected_graph build_max_power_graph_brute(std::span<const geom::vec2> positions,
                                                           double max_range);

/// Reference O(n^2) construction of the gain-aware G_R.
[[nodiscard]] undirected_graph build_max_power_graph_brute(std::span<const geom::vec2> positions,
                                                           const radio::link_model& link);

/// Length of edge {u, v} under the given layout.
[[nodiscard]] double edge_length(std::span<const geom::vec2> positions, node_id u, node_id v);

}  // namespace cbtc::graph
