// The max-power graph G_R and Euclidean edge helpers.
//
// G_R = (V, E) with E = {(u,v) : d(u,v) <= R} is the graph induced when
// every node transmits at maximum power (Section 1 of the paper). It is
// the connectivity baseline every topology-control output is compared
// against.
#pragma once

#include <span>
#include <vector>

#include "geom/spatial_grid.h"
#include "geom/vec2.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace cbtc::graph {

/// Builds G_R with a spatial grid (O(n * k) for bounded density).
[[nodiscard]] undirected_graph build_max_power_graph(std::span<const geom::vec2> positions,
                                                     double max_range);

/// Reference O(n^2) construction, used to cross-check the grid path.
[[nodiscard]] undirected_graph build_max_power_graph_brute(std::span<const geom::vec2> positions,
                                                           double max_range);

/// Length of edge {u, v} under the given layout.
[[nodiscard]] double edge_length(std::span<const geom::vec2> positions, node_id u, node_id v);

}  // namespace cbtc::graph
