#include "graph/interference.h"

#include <algorithm>

#include "geom/spatial_grid.h"

namespace cbtc::graph {

namespace {

std::size_t disk_union_count(std::span<const geom::vec2> positions, const geom::spatial_grid& grid,
                             node_id u, node_id v) {
  const double len = geom::distance(positions[u], positions[v]);
  std::vector<geom::point_index> in_u = grid.query_radius(positions[u], len);
  std::vector<geom::point_index> in_v = grid.query_radius(positions[v], len);
  std::sort(in_u.begin(), in_u.end());
  std::sort(in_v.begin(), in_v.end());
  std::vector<geom::point_index> all;
  all.reserve(in_u.size() + in_v.size());
  std::set_union(in_u.begin(), in_u.end(), in_v.begin(), in_v.end(), std::back_inserter(all));
  // Exclude the endpoints themselves.
  return all.size() - static_cast<std::size_t>(std::binary_search(all.begin(), all.end(), u)) -
         static_cast<std::size_t>(std::binary_search(all.begin(), all.end(), v));
}

}  // namespace

std::size_t edge_interference(const undirected_graph& g, std::span<const geom::vec2> positions,
                              node_id u, node_id v) {
  (void)g;
  const double len = geom::distance(positions[u], positions[v]);
  const geom::spatial_grid grid(positions, std::max(len, 1.0));
  return disk_union_count(positions, grid, u, v);
}

interference_stats topology_interference(const undirected_graph& g,
                                         std::span<const geom::vec2> positions) {
  interference_stats stats;
  const std::vector<edge> edges = g.edges();
  stats.edges = edges.size();
  if (edges.empty() || positions.empty()) return stats;

  double max_len = 1.0;
  for (const edge& e : edges) {
    max_len = std::max(max_len, geom::distance(positions[e.u], positions[e.v]));
  }
  const geom::spatial_grid grid(positions, max_len);

  double total = 0.0;
  for (const edge& e : edges) {
    const std::size_t cov = disk_union_count(positions, grid, e.u, e.v);
    total += static_cast<double>(cov);
    stats.max = std::max(stats.max, cov);
  }
  stats.mean = total / static_cast<double>(edges.size());
  return stats;
}

}  // namespace cbtc::graph
