#include "graph/live_index.h"

#include <algorithm>

namespace cbtc::graph {

live_neighbor_index::live_neighbor_index(std::span<const geom::vec2> positions, double max_range)
    : max_range_(max_range),
      grid_(max_range > 0.0 ? max_range : 1.0),
      positions_(positions.begin(), positions.end()),
      live_(positions.size(), true),
      live_count_(positions.size()),
      adj_(positions.size()) {
  build();
}

live_neighbor_index::live_neighbor_index(std::span<const geom::vec2> positions,
                                         const radio::link_model& lm)
    : max_range_(lm.max_candidate_range()),
      link_(lm.is_isotropic() ? std::nullopt : std::optional<radio::link_model>(lm)),
      grid_(lm.max_candidate_range() > 0.0 ? lm.max_candidate_range() : 1.0),
      positions_(positions.begin(), positions.end()),
      live_(positions.size(), true),
      live_count_(positions.size()),
      adj_(positions.size()) {
  if (link_) {
    position_dependent_gain_ =
        link_->propagation().kind() == radio::propagation_kind::obstacle_field;
    if (position_dependent_gain_) pos_epoch_.assign(positions_.size(), 0);
    gain_rows_.resize(positions_.size());
  }
  build();
}

void live_neighbor_index::build() {
  if (max_range_ <= 0.0) return;  // degenerate radio: no edges ever
  // Insert points one at a time and query before inserting, so every
  // reachable pair links exactly once (filter_reachable is a no-op for
  // distance indexes — the query radius already decided).
  for (node_id u = 0; u < positions_.size(); ++u) {
    scratch_.clear();
    grid_.query_radius_into(positions_[u], max_range_, geom::spatial_grid::npos, scratch_);
    filter_reachable(u, scratch_);
    grid_.insert(u, positions_[u]);
    for (const geom::point_index v : scratch_) link(u, v);
  }
}

void live_neighbor_index::filter_reachable(node_id u,
                                           std::vector<geom::point_index>& candidates) const {
  if (!link_) return;  // distance index: the query radius already decided
  std::sort(candidates.begin(), candidates.end());
  std::vector<gain_entry>& row = gain_rows_[u];
  row_scratch_.clear();
  // Same one-ulp tolerance as link_model::reaches_at; the cached gain
  // is the exact double gain() returned, so verdicts are bitwise-
  // identical to the uncached filter.
  const double budget = link_->max_power() * (1.0 + 1e-12);
  // Squared feasible-distance bounds per gain: required_power(d) / g
  // <= budget iff d <= range(budget * g), so a candidate strictly
  // inside (outside) a 1e-6 relative band around that distance is
  // decided from its squared distance alone — no pow, no sqrt. The
  // band dwarfs the few-ulp spread between hypot-based distances and
  // raw squared distances, so only true boundary candidates fall
  // through to the exact legacy arithmetic.
  const auto entry_of = [&](node_id v, double g, std::uint64_t epoch) -> gain_entry {
    const double d_max = link_->power().range(budget * g);
    const double d_in = d_max * (1.0 - 1e-6);
    const double d_out = d_max * (1.0 + 1e-6);
    return {v, g, epoch, d_in * d_in, d_out * d_out};
  };
  std::size_t ri = 0;
  std::size_t out = 0;
  for (const geom::point_index v : candidates) {
    ++gain_lookups_;
    while (ri < row.size() && row[ri].v < v) ++ri;
    const gain_entry* e;
    if (ri < row.size() && row[ri].v == v &&
        (!position_dependent_gain_ || row[ri].peer_epoch == pos_epoch_[v])) {
      e = &row[ri];
    } else {
      ++gain_misses_;
      const double g = link_->gain(u, v, positions_[u], positions_[v]);
      const std::uint64_t epoch = position_dependent_gain_ ? pos_epoch_[v] : 0;
      if (ri < row.size() && row[ri].v == v) {
        row[ri] = entry_of(v, g, epoch);  // stale obstacle gain: refresh in place
        e = &row[ri];
      } else {
        row_scratch_.push_back(entry_of(v, g, epoch));
        e = &row_scratch_.back();
      }
    }
    const double d2 = geom::distance_sq(positions_[u], positions_[v]);
    bool reachable;
    if (d2 <= e->d2_in) {
      reachable = true;
    } else if (d2 > e->d2_out) {
      reachable = false;
    } else {
      const double d = geom::distance(positions_[u], positions_[v]);
      reachable = link_->power().required_power(d) / e->gain <= budget;
    }
    if (reachable) candidates[out++] = v;
  }
  candidates.resize(out);
  if (!row_scratch_.empty()) {
    const std::size_t mid = row.size();
    row.insert(row.end(), row_scratch_.begin(), row_scratch_.end());
    std::inplace_merge(row.begin(), row.begin() + static_cast<std::ptrdiff_t>(mid), row.end(),
                       [](const gain_entry& a, const gain_entry& b) { return a.v < b.v; });
  }
}

void live_neighbor_index::link(node_id u, node_id v) {
  auto& au = adj_[u];
  au.insert(std::lower_bound(au.begin(), au.end(), v), v);
  auto& av = adj_[v];
  av.insert(std::lower_bound(av.begin(), av.end(), u), u);
  ++num_edges_;
  ++version_;
  if (observer_) observer_(std::min(u, v), std::max(u, v), true);
}

void live_neighbor_index::unlink(node_id u, node_id v) {
  auto& au = adj_[u];
  au.erase(std::lower_bound(au.begin(), au.end(), v));
  auto& av = adj_[v];
  av.erase(std::lower_bound(av.begin(), av.end(), u));
  --num_edges_;
  ++version_;
  if (observer_) observer_(std::min(u, v), std::max(u, v), false);
}

void live_neighbor_index::move(node_id u, const geom::vec2& p) {
  positions_[u] = p;
  if (position_dependent_gain_) {
    // Every gain involving u changed: u's own row wholesale, entries
    // for u in other rows lazily via the epoch check.
    ++pos_epoch_[u];
    gain_rows_[u].clear();
  }
  // The medium keeps moving crashed nodes; they re-enter the index at
  // their restart position, so only the stored position updates here.
  if (!live_[u]) return;
  note_churn(u);
  grid_.move(u, p);

  scratch_.clear();
  grid_.query_radius_into(p, max_range_, u, scratch_);
  filter_reachable(u, scratch_);
  std::sort(scratch_.begin(), scratch_.end());

  // Diff the sorted old and new neighbor sets.
  const std::vector<node_id> old = adj_[u];
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < old.size() || j < scratch_.size()) {
    if (j == scratch_.size() || (i < old.size() && old[i] < scratch_[j])) {
      unlink(u, old[i]);
      ++i;
    } else if (i == old.size() || scratch_[j] < old[i]) {
      link(u, scratch_[j]);
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
}

void live_neighbor_index::erase(node_id u) {
  if (!live_[u]) return;
  note_churn(u);
  const std::vector<node_id> nbrs = adj_[u];
  for (const node_id v : nbrs) unlink(u, v);
  grid_.erase(u);
  live_[u] = false;
  --live_count_;
  ++version_;
  if (node_observer_) node_observer_(u, false);
}

void live_neighbor_index::insert(node_id u, const geom::vec2& p) {
  if (live_[u]) return;
  note_churn(u);
  positions_[u] = p;
  if (position_dependent_gain_) {
    ++pos_epoch_[u];
    gain_rows_[u].clear();
  }
  grid_.insert(u, p);
  live_[u] = true;
  ++live_count_;
  ++version_;
  if (node_observer_) node_observer_(u, true);
  scratch_.clear();
  grid_.query_radius_into(p, max_range_, u, scratch_);
  filter_reachable(u, scratch_);
  std::sort(scratch_.begin(), scratch_.end());
  for (const geom::point_index v : scratch_) link(u, v);
}

undirected_graph live_neighbor_index::graph() const {
  undirected_graph g(adj_.size());
  for (node_id u = 0; u < adj_.size(); ++u) {
    for (const node_id v : adj_[u]) {
      if (u < v) g.add_edge(u, v);
    }
  }
  return g;
}

closure_mirror::closure_mirror(std::size_t n) : adj_(n), live_(n, true) {}

void closure_mirror::add_arc(node_id u, node_id v) {
  if (u == v) return;
  const auto bump = [](std::vector<entry>& list, node_id w) {
    const auto it = std::lower_bound(list.begin(), list.end(), w,
                                     [](const entry& e, node_id x) { return e.v < x; });
    if (it != list.end() && it->v == w) {
      ++it->arcs;
    } else {
      list.insert(it, {w, 1});
    }
  };
  bump(adj_[u], v);
  bump(adj_[v], u);
}

void closure_mirror::remove_arc(node_id u, node_id v) {
  if (u == v) return;
  const auto drop = [](std::vector<entry>& list, node_id w) {
    const auto it = std::lower_bound(list.begin(), list.end(), w,
                                     [](const entry& e, node_id x) { return e.v < x; });
    if (it == list.end() || it->v != w) return;  // tolerated: erase of unknown arc
    if (--it->arcs == 0) list.erase(it);
  };
  drop(adj_[u], v);
  drop(adj_[v], u);
}

void closure_mirror::set_live(node_id u, bool up) { live_[u] = up; }

undirected_graph closure_mirror::live_graph() const {
  const std::size_t n = adj_.size();
  std::vector<std::vector<node_id>> out(n);
  for (node_id u = 0; u < n; ++u) {
    if (!live_[u]) continue;
    out[u].reserve(adj_[u].size());
    for (const entry& e : adj_[u]) {
      if (live_[e.v]) out[u].push_back(e.v);
    }
  }
  return undirected_graph::from_adjacency(std::move(out));
}

bool same_connectivity(const closure_mirror& topology, const live_neighbor_index& max_power,
                       connectivity_scratch& scratch) {
  const std::size_t n = topology.num_nodes();
  if (n != max_power.num_nodes()) return false;
  // Both views isolate down nodes: the mirror filters by liveness, the
  // index drops a node's adjacency on erase. Partitions therefore
  // match the snapshot comparison's exactly.
  return same_connectivity_views(
      n,
      [&](node_id u, auto&& emit) { topology.for_each_live_neighbor(u, emit); },
      [&](node_id u, auto&& emit) {
        for (const node_id v : max_power.neighbors(u)) emit(v);
      },
      scratch);
}

connectivity_monitor::connectivity_monitor(live_neighbor_index& index)
    : index_(index), uf_(index.num_nodes()) {
  index_.set_observer([this](node_id u, node_id v, bool added) {
    if (added) {
      if (!stale_) uf_.unite(u, v);
    } else {
      stale_ = true;  // union-find cannot un-merge; rebuild lazily
    }
  });
  index_.set_node_observer([this](node_id, bool) {
    // A crash orphans its old unions; a restart revives a node whose
    // stale root may predate its crash. Both invalidate the forest.
    stale_ = true;
  });
}

void connectivity_monitor::rebuild() {
  uf_ = union_find(index_.num_nodes());
  for (node_id u = 0; u < index_.num_nodes(); ++u) {
    if (!index_.is_live(u)) continue;
    for (const node_id v : index_.neighbors(u)) {
      if (u < v) uf_.unite(u, v);
    }
  }
  stale_ = false;
}

bool connectivity_monitor::connected() {
  if (index_.live_count() <= 1) return true;
  if (stale_) rebuild();
  node_id first = invalid_node;
  for (node_id u = 0; u < index_.num_nodes(); ++u) {
    if (!index_.is_live(u)) continue;
    if (first == invalid_node) {
      first = u;
    } else if (!uf_.same(u, first)) {
      return false;
    }
  }
  return true;
}

}  // namespace cbtc::graph
