// Position-file I/O: load/save node layouts as CSV ("x,y" rows, with
// an optional header). Lets the CLI and examples work on externally
// produced deployments (survey data, other simulators).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "geom/vec2.h"

namespace cbtc::graph {

/// Parses "x,y" rows; skips blank lines, `#` comments, and a leading
/// "x,y" header. Throws std::runtime_error with the line number on a
/// malformed row.
[[nodiscard]] std::vector<geom::vec2> read_positions_csv(std::istream& is);

/// Loads a CSV file; throws on I/O failure.
[[nodiscard]] std::vector<geom::vec2> load_positions_csv(const std::string& path);

/// Writes "x,y" rows with a header.
void write_positions_csv(std::ostream& os, const std::vector<geom::vec2>& positions);

/// Saves to a file; throws on I/O failure.
void save_positions_csv(const std::string& path, const std::vector<geom::vec2>& positions);

}  // namespace cbtc::graph
