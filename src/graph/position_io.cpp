#include "graph/position_io.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cbtc::graph {

std::vector<geom::vec2> read_positions_csv(std::istream& is) {
  std::vector<geom::vec2> positions;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // Trim whitespace.
    const auto first = line.find_first_not_of(" \t\r\n");
    if (first == std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t\r\n");
    const std::string row = line.substr(first, last - first + 1);
    if (row.empty() || row[0] == '#') continue;
    if (line_no == 1 && row.find_first_of("0123456789") == std::string::npos) {
      continue;  // header like "x,y"
    }
    const auto comma = row.find(',');
    if (comma == std::string::npos) {
      throw std::runtime_error("positions csv line " + std::to_string(line_no) +
                               ": expected 'x,y', got '" + row + "'");
    }
    try {
      std::size_t consumed = 0;
      const double x = std::stod(row.substr(0, comma), &consumed);
      const double y = std::stod(row.substr(comma + 1));
      positions.push_back({x, y});
      (void)consumed;
    } catch (const std::exception&) {
      throw std::runtime_error("positions csv line " + std::to_string(line_no) +
                               ": malformed number in '" + row + "'");
    }
  }
  return positions;
}

std::vector<geom::vec2> load_positions_csv(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("load_positions_csv: cannot open " + path);
  return read_positions_csv(f);
}

void write_positions_csv(std::ostream& os, const std::vector<geom::vec2>& positions) {
  os << "x,y\n";
  for (const geom::vec2& p : positions) os << p.x << ',' << p.y << '\n';
}

void save_positions_csv(const std::string& path, const std::vector<geom::vec2>& positions) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("save_positions_csv: cannot open " + path);
  write_positions_csv(f, positions);
  if (!f) throw std::runtime_error("save_positions_csv: write failed for " + path);
}

}  // namespace cbtc::graph
