#include "graph/graph_io.h"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "graph/euclidean.h"

namespace cbtc::graph {

void write_svg(std::ostream& os, const undirected_graph& g, std::span<const geom::vec2> positions,
               const geom::bbox& region, const svg_style& style) {
  const double margin = style.canvas_px * 0.04;
  const double inner = style.canvas_px - 2.0 * margin;
  const double sx = inner / region.width();
  const double sy = inner / region.height();
  auto px = [&](const geom::vec2& p) { return margin + (p.x - region.min.x) * sx; };
  // SVG y grows downward; flip so plots match the paper's orientation.
  auto py = [&](const geom::vec2& p) { return margin + (region.max.y - p.y) * sy; };

  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << style.canvas_px << "\" height=\""
     << style.canvas_px << "\" viewBox=\"0 0 " << style.canvas_px << ' ' << style.canvas_px
     << "\">\n";
  os << "  <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  if (!style.title.empty()) {
    os << "  <text x=\"" << margin << "\" y=\"" << margin * 0.75
       << "\" font-family=\"sans-serif\" font-size=\"" << margin * 0.6 << "\">" << style.title
       << "</text>\n";
  }
  os << "  <g stroke=\"" << style.edge_color << "\" stroke-width=\"1\">\n";
  for (const edge& e : g.edges()) {
    os << "    <line x1=\"" << px(positions[e.u]) << "\" y1=\"" << py(positions[e.u]) << "\" x2=\""
       << px(positions[e.v]) << "\" y2=\"" << py(positions[e.v]) << "\"/>\n";
  }
  os << "  </g>\n";
  os << "  <g fill=\"" << style.node_color << "\">\n";
  for (std::size_t i = 0; i < positions.size(); ++i) {
    os << "    <circle cx=\"" << px(positions[i]) << "\" cy=\"" << py(positions[i]) << "\" r=\""
       << style.node_radius_px << "\"/>\n";
    if (style.node_labels) {
      os << "    <text x=\"" << px(positions[i]) + 3 << "\" y=\"" << py(positions[i]) - 3
         << "\" font-family=\"sans-serif\" font-size=\"8\">" << i << "</text>\n";
    }
  }
  os << "  </g>\n</svg>\n";
}

void write_dot(std::ostream& os, const undirected_graph& g, std::span<const geom::vec2> positions,
               const std::string& name) {
  os << "graph " << name << " {\n  node [shape=point];\n";
  for (std::size_t i = 0; i < positions.size(); ++i) {
    os << "  n" << i << " [pos=\"" << positions[i].x << ',' << positions[i].y << "!\"];\n";
  }
  for (const edge& e : g.edges()) {
    os << "  n" << e.u << " -- n" << e.v << ";\n";
  }
  os << "}\n";
}

void write_edge_csv(std::ostream& os, const undirected_graph& g,
                    std::span<const geom::vec2> positions) {
  os << "u,v,length\n";
  for (const edge& e : g.edges()) {
    os << e.u << ',' << e.v << ',' << edge_length(positions, e.u, e.v) << '\n';
  }
}

void save_svg(const std::string& path, const undirected_graph& g,
              std::span<const geom::vec2> positions, const geom::bbox& region,
              const svg_style& style) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("save_svg: cannot open " + path);
  write_svg(f, g, positions, region, style);
  if (!f) throw std::runtime_error("save_svg: write failed for " + path);
}

}  // namespace cbtc::graph
