// Interference metrics.
//
// The paper's motivation (Section 1): "the greater the power with which
// a node transmits, the greater the likelihood of the transmission
// interfering with other transmissions." We use the standard
// coverage-based measure: the interference of an edge {u, v} is the
// number of other nodes inside the two disks of radius d(u,v) centered
// at u and v (everyone whose reception the link's traffic can disturb).
// A topology's interference is the average / maximum over its edges.
#pragma once

#include <cstddef>
#include <span>

#include "geom/vec2.h"
#include "graph/graph.h"

namespace cbtc::graph {

/// Nodes (other than u, v) covered by the two d(u,v)-disks of the edge.
[[nodiscard]] std::size_t edge_interference(const undirected_graph& g,
                                            std::span<const geom::vec2> positions, node_id u,
                                            node_id v);

struct interference_stats {
  double mean{0.0};
  std::size_t max{0};
  std::size_t edges{0};
};

/// Coverage-based interference over all edges of the topology.
[[nodiscard]] interference_stats topology_interference(const undirected_graph& g,
                                                       std::span<const geom::vec2> positions);

}  // namespace cbtc::graph
