// Connectivity queries: components, reachability, BFS paths.
//
// The paper's central correctness claim is a connectivity-preservation
// statement ("u and v are connected in G_alpha iff they are connected
// in G_R"), so component structure comparison is the workhorse of the
// test suite.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace cbtc::util {
class thread_pool;
}

namespace cbtc::graph {

struct component_labels {
  std::vector<node_id> label;  // component id per node, dense in [0, count)
  std::size_t count{0};

  [[nodiscard]] bool same_component(node_id u, node_id v) const { return label[u] == label[v]; }
};

/// Connected components via BFS.
[[nodiscard]] component_labels connected_components(const undirected_graph& g);

/// True if the whole graph is one component (trivially true for n <= 1).
[[nodiscard]] bool is_connected(const undirected_graph& g);

/// True if u and v are in the same component.
[[nodiscard]] bool reachable(const undirected_graph& g, node_id u, node_id v);

/// Reusable buffers for same_connectivity: two disjoint-set forests.
/// Event-driven callers (the dynamic engine evaluates connectivity at
/// every topology-changing event) hold one across calls so the
/// comparison performs no allocations after the first use.
struct connectivity_scratch {
  std::vector<node_id> root_a;
  std::vector<node_id> root_b;
  std::vector<std::uint32_t> size_a;
  std::vector<std::uint32_t> size_b;
};

/// True if `a` and `b` have identical component *partitions* — the
/// paper's preservation property: every pair connected in one is
/// connected in the other. Requires equal node counts.
///
/// Implemented as a union-find comparison, not a BFS pair: build both
/// forests (union by size + path halving, O(m alpha)), compare
/// component counts, then check that every edge of `a` stays inside
/// one `b`-component — a partition that refines another with the same
/// block count equals it.
[[nodiscard]] bool same_connectivity(const undirected_graph& a, const undirected_graph& b);

/// Same, with caller-owned scratch (no per-call allocations).
[[nodiscard]] bool same_connectivity(const undirected_graph& a, const undirected_graph& b,
                                     connectivity_scratch& scratch);

/// Same, with the edge-containment check parallelized over fixed
/// node blocks on `pool` (the forests are flattened first, so the
/// parallel phase only reads). Identical verdict for any pool width.
[[nodiscard]] bool same_connectivity(const undirected_graph& a, const undirected_graph& b,
                                     util::thread_pool& pool, connectivity_scratch& scratch);

// ---- adjacency-view comparison --------------------------------------
// same_connectivity without materializing graphs: callers that hold an
// incremental adjacency (graph::closure_mirror, live_neighbor_index)
// compare partitions in place instead of snapshotting two
// undirected_graphs per evaluation. A view is a callable
// `view(u, emit)` invoking `emit(v)` for every neighbor v of u (each
// edge visible from both endpoints). The verdict is identical to the
// graph overloads: partitions — not forest shapes — decide.

namespace detail {

inline node_id view_uf_find(std::vector<node_id>& parent, node_id x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];  // path halving
    x = parent[x];
  }
  return x;
}

template <class NeighborView>
std::size_t view_uf_build(std::size_t n, NeighborView&& view, std::vector<node_id>& parent,
                          std::vector<std::uint32_t>& size) {
  parent.resize(n);
  size.assign(n, 1);
  for (node_id u = 0; u < n; ++u) parent[u] = u;
  std::size_t sets = n;
  for (node_id u = 0; u < n; ++u) {
    view(u, [&](node_id v) {
      if (v <= u) return;  // each edge once
      node_id ra = view_uf_find(parent, u);
      node_id rb = view_uf_find(parent, v);
      if (ra == rb) return;
      if (size[ra] < size[rb]) {
        const node_id t = ra;
        ra = rb;
        rb = t;
      }
      parent[rb] = ra;
      size[ra] += size[rb];
      --sets;
    });
  }
  for (node_id u = 0; u < n; ++u) parent[u] = view_uf_find(parent, u);
  return sets;
}

}  // namespace detail

/// Partition equality of two adjacency views over the same node set
/// (see above). Allocation-free after the first use of `scratch`.
template <class ViewA, class ViewB>
[[nodiscard]] bool same_connectivity_views(std::size_t n, ViewA&& a, ViewB&& b,
                                           connectivity_scratch& scratch) {
  if (detail::view_uf_build(n, a, scratch.root_a, scratch.size_a) !=
      detail::view_uf_build(n, b, scratch.root_b, scratch.size_b)) {
    return false;
  }
  // Equal component counts + "a refines b" force partition equality
  // (same argument as the graph overloads).
  bool within = true;
  for (node_id u = 0; u < n && within; ++u) {
    a(u, [&](node_id v) {
      if (v > u && scratch.root_b[u] != scratch.root_b[v]) within = false;
    });
  }
  return within;
}

/// Shortest path in hops from `from` to `to`; empty if unreachable.
/// The returned path includes both endpoints.
[[nodiscard]] std::vector<node_id> bfs_path(const undirected_graph& g, node_id from, node_id to);

/// Hop distances from `from` to every node (invalid_node if unreachable
/// is encoded as max uint32).
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const undirected_graph& g, node_id from);

}  // namespace cbtc::graph
