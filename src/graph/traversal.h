// Connectivity queries: components, reachability, BFS paths.
//
// The paper's central correctness claim is a connectivity-preservation
// statement ("u and v are connected in G_alpha iff they are connected
// in G_R"), so component structure comparison is the workhorse of the
// test suite.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace cbtc::util {
class thread_pool;
}

namespace cbtc::graph {

struct component_labels {
  std::vector<node_id> label;  // component id per node, dense in [0, count)
  std::size_t count{0};

  [[nodiscard]] bool same_component(node_id u, node_id v) const { return label[u] == label[v]; }
};

/// Connected components via BFS.
[[nodiscard]] component_labels connected_components(const undirected_graph& g);

/// True if the whole graph is one component (trivially true for n <= 1).
[[nodiscard]] bool is_connected(const undirected_graph& g);

/// True if u and v are in the same component.
[[nodiscard]] bool reachable(const undirected_graph& g, node_id u, node_id v);

/// Reusable buffers for same_connectivity: two disjoint-set forests.
/// Event-driven callers (the dynamic engine evaluates connectivity at
/// every topology-changing event) hold one across calls so the
/// comparison performs no allocations after the first use.
struct connectivity_scratch {
  std::vector<node_id> root_a;
  std::vector<node_id> root_b;
  std::vector<std::uint32_t> size_a;
  std::vector<std::uint32_t> size_b;
};

/// True if `a` and `b` have identical component *partitions* — the
/// paper's preservation property: every pair connected in one is
/// connected in the other. Requires equal node counts.
///
/// Implemented as a union-find comparison, not a BFS pair: build both
/// forests (union by size + path halving, O(m alpha)), compare
/// component counts, then check that every edge of `a` stays inside
/// one `b`-component — a partition that refines another with the same
/// block count equals it.
[[nodiscard]] bool same_connectivity(const undirected_graph& a, const undirected_graph& b);

/// Same, with caller-owned scratch (no per-call allocations).
[[nodiscard]] bool same_connectivity(const undirected_graph& a, const undirected_graph& b,
                                     connectivity_scratch& scratch);

/// Same, with the edge-containment check parallelized over fixed
/// node blocks on `pool` (the forests are flattened first, so the
/// parallel phase only reads). Identical verdict for any pool width.
[[nodiscard]] bool same_connectivity(const undirected_graph& a, const undirected_graph& b,
                                     util::thread_pool& pool, connectivity_scratch& scratch);

/// Shortest path in hops from `from` to `to`; empty if unreachable.
/// The returned path includes both endpoints.
[[nodiscard]] std::vector<node_id> bfs_path(const undirected_graph& g, node_id from, node_id to);

/// Hop distances from `from` to every node (invalid_node if unreachable
/// is encoded as max uint32).
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const undirected_graph& g, node_id from);

}  // namespace cbtc::graph
