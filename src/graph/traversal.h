// Connectivity queries: components, reachability, BFS paths.
//
// The paper's central correctness claim is a connectivity-preservation
// statement ("u and v are connected in G_alpha iff they are connected
// in G_R"), so component structure comparison is the workhorse of the
// test suite.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace cbtc::graph {

struct component_labels {
  std::vector<node_id> label;  // component id per node, dense in [0, count)
  std::size_t count{0};

  [[nodiscard]] bool same_component(node_id u, node_id v) const { return label[u] == label[v]; }
};

/// Connected components via BFS.
[[nodiscard]] component_labels connected_components(const undirected_graph& g);

/// True if the whole graph is one component (trivially true for n <= 1).
[[nodiscard]] bool is_connected(const undirected_graph& g);

/// True if u and v are in the same component.
[[nodiscard]] bool reachable(const undirected_graph& g, node_id u, node_id v);

/// True if `a` and `b` have identical component *partitions* — the
/// paper's preservation property: every pair connected in one is
/// connected in the other. Requires equal node counts.
[[nodiscard]] bool same_connectivity(const undirected_graph& a, const undirected_graph& b);

/// Shortest path in hops from `from` to `to`; empty if unreachable.
/// The returned path includes both endpoints.
[[nodiscard]] std::vector<node_id> bfs_path(const undirected_graph& g, node_id from, node_id to);

/// Hop distances from `from` to every node (invalid_node if unreachable
/// is encoded as max uint32).
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const undirected_graph& g, node_id from);

}  // namespace cbtc::graph
