#include "graph/euclidean.h"

namespace cbtc::graph {

undirected_graph build_max_power_graph(std::span<const geom::vec2> positions, double max_range) {
  undirected_graph g(positions.size());
  if (positions.empty() || max_range <= 0.0) return g;
  const geom::spatial_grid grid(positions, max_range);
  std::vector<geom::point_index> hits;
  for (node_id u = 0; u < positions.size(); ++u) {
    hits.clear();
    grid.query_radius_into(positions[u], max_range, u, hits);
    for (geom::point_index v : hits) {
      if (u < v) g.add_edge(u, v);
    }
  }
  return g;
}

undirected_graph build_max_power_graph(std::span<const geom::vec2> positions,
                                       const radio::link_model& link) {
  if (link.is_isotropic()) return build_max_power_graph(positions, link.max_range());
  undirected_graph g(positions.size());
  const double reach = link.max_candidate_range();
  if (positions.empty() || reach <= 0.0) return g;
  const geom::spatial_grid grid(positions, reach);
  const double max_power = link.max_power();
  std::vector<geom::point_index> hits;
  for (node_id u = 0; u < positions.size(); ++u) {
    hits.clear();
    grid.query_radius_into(positions[u], reach, u, hits);
    for (geom::point_index v : hits) {
      if (u < v && link.reaches(max_power, u, v, positions[u], positions[v])) g.add_edge(u, v);
    }
  }
  return g;
}

undirected_graph build_max_power_graph_brute(std::span<const geom::vec2> positions,
                                             double max_range) {
  undirected_graph g(positions.size());
  const double r_sq = max_range * max_range;
  for (node_id u = 0; u < positions.size(); ++u) {
    for (node_id v = u + 1; v < positions.size(); ++v) {
      if (geom::distance_sq(positions[u], positions[v]) <= r_sq) g.add_edge(u, v);
    }
  }
  return g;
}

undirected_graph build_max_power_graph_brute(std::span<const geom::vec2> positions,
                                             const radio::link_model& link) {
  if (link.is_isotropic()) return build_max_power_graph_brute(positions, link.max_range());
  undirected_graph g(positions.size());
  const double max_power = link.max_power();
  for (node_id u = 0; u < positions.size(); ++u) {
    for (node_id v = u + 1; v < positions.size(); ++v) {
      if (link.reaches(max_power, u, v, positions[u], positions[v])) g.add_edge(u, v);
    }
  }
  return g;
}

double edge_length(std::span<const geom::vec2> positions, node_id u, node_id v) {
  return geom::distance(positions[u], positions[v]);
}

}  // namespace cbtc::graph
