#include "graph/euclidean.h"

namespace cbtc::graph {

undirected_graph build_max_power_graph(std::span<const geom::vec2> positions, double max_range) {
  undirected_graph g(positions.size());
  if (positions.empty() || max_range <= 0.0) return g;
  const geom::spatial_grid grid(positions, max_range);
  std::vector<geom::point_index> hits;
  for (node_id u = 0; u < positions.size(); ++u) {
    hits.clear();
    grid.query_radius_into(positions[u], max_range, u, hits);
    for (geom::point_index v : hits) {
      if (u < v) g.add_edge(u, v);
    }
  }
  return g;
}

undirected_graph build_max_power_graph_brute(std::span<const geom::vec2> positions,
                                             double max_range) {
  undirected_graph g(positions.size());
  const double r_sq = max_range * max_range;
  for (node_id u = 0; u < positions.size(); ++u) {
    for (node_id v = u + 1; v < positions.size(); ++v) {
      if (geom::distance_sq(positions[u], positions[v]) <= r_sq) g.add_edge(u, v);
    }
  }
  return g;
}

double edge_length(std::span<const geom::vec2> positions, node_id u, node_id v) {
  return geom::distance(positions[u], positions[v]);
}

}  // namespace cbtc::graph
