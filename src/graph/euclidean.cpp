#include "graph/euclidean.h"

#include <algorithm>
#include <atomic>

#include "util/parallel.h"

namespace cbtc::graph {

namespace {

/// Shared body of the pooled overloads: per-node candidate count via
/// the grid, exclusive prefix sum, per-node fill + sort into one flat
/// CSR array. `accept(u, v)` is the per-candidate membership test.
template <class Accept>
undirected_graph build_csr_max_power(std::span<const geom::vec2> positions, double reach,
                                     util::thread_pool& pool, const Accept& accept) {
  const std::size_t n = positions.size();
  if (n == 0 || reach <= 0.0) return undirected_graph(n);
  const geom::spatial_grid grid(positions, reach);
  std::vector<std::size_t> deg(n);
  pool.parallel_for_chunks(n, util::reduce_block, [&](std::size_t lo, std::size_t hi) {
    std::vector<geom::point_index> hits;
    for (std::size_t u = lo; u < hi; ++u) {
      hits.clear();
      grid.query_radius_into(positions[u], reach, static_cast<geom::point_index>(u), hits);
      std::size_t count = 0;
      for (const geom::point_index v : hits) {
        if (accept(static_cast<node_id>(u), static_cast<node_id>(v))) ++count;
      }
      deg[u] = count;
    }
  });
  std::vector<std::size_t> off(n + 1, 0);
  for (std::size_t u = 0; u < n; ++u) off[u + 1] = off[u] + deg[u];
  std::vector<node_id> flat(off[n]);
  pool.parallel_for_chunks(n, util::reduce_block, [&](std::size_t lo, std::size_t hi) {
    std::vector<geom::point_index> hits;
    for (std::size_t u = lo; u < hi; ++u) {
      hits.clear();
      grid.query_radius_into(positions[u], reach, static_cast<geom::point_index>(u), hits);
      std::size_t w = off[u];
      for (const geom::point_index v : hits) {
        if (accept(static_cast<node_id>(u), static_cast<node_id>(v))) {
          flat[w++] = static_cast<node_id>(v);
        }
      }
      std::sort(flat.begin() + static_cast<std::ptrdiff_t>(off[u]),
                flat.begin() + static_cast<std::ptrdiff_t>(off[u + 1]));
    }
  });
  return undirected_graph::from_csr(std::move(off), std::move(flat));
}

/// Variant for expensive membership tests (per-link gain evaluation):
/// each unordered pair is tested exactly once, from its lower
/// endpoint. Pass 1 stores the accepted up-neighbors (v > u) per node
/// and counts the transpose with relaxed atomics; pass 2 scatters each
/// up-edge into its upper endpoint's down-segment via atomic cursors.
/// Scatter order is schedule-dependent but the per-segment sort
/// restores the unique sorted order, and down-neighbors (< u) precede
/// up-neighbors (> u), so the result is identical for any pool width
/// — and edge-identical to the serial overloads.
template <class Accept>
undirected_graph build_csr_max_power_once(std::span<const geom::vec2> positions, double reach,
                                          util::thread_pool& pool, const Accept& accept) {
  const std::size_t n = positions.size();
  if (n == 0 || reach <= 0.0) return undirected_graph(n);
  const geom::spatial_grid grid(positions, reach);
  std::vector<std::vector<node_id>> up(n);
  std::vector<std::atomic<std::uint32_t>> down(n);  // in-degree, then fill cursor
  pool.parallel_for_chunks(n, util::reduce_block, [&](std::size_t lo, std::size_t hi) {
    std::vector<geom::point_index> hits;
    for (std::size_t u = lo; u < hi; ++u) {
      hits.clear();
      grid.query_radius_into(positions[u], reach, static_cast<geom::point_index>(u), hits);
      std::vector<node_id>& list = up[u];
      for (const geom::point_index v : hits) {
        if (v > u && accept(static_cast<node_id>(u), static_cast<node_id>(v))) {
          list.push_back(static_cast<node_id>(v));
        }
      }
      std::sort(list.begin(), list.end());
      for (const node_id v : list) down[v].fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::vector<std::size_t> off(n + 1, 0);
  for (std::size_t u = 0; u < n; ++u) {
    off[u + 1] = off[u] + down[u].load(std::memory_order_relaxed) + up[u].size();
    down[u].store(0, std::memory_order_relaxed);
  }
  std::vector<node_id> flat(off[n]);
  pool.parallel_for_chunks(n, util::reduce_block, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t u = lo; u < hi; ++u) {
      for (const node_id v : up[u]) {
        const std::size_t slot = off[v] + down[v].fetch_add(1, std::memory_order_relaxed);
        flat[slot] = static_cast<node_id>(u);
      }
    }
  });
  pool.parallel_for_chunks(n, util::reduce_block, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t u = lo; u < hi; ++u) {
      const std::size_t down_len = (off[u + 1] - off[u]) - up[u].size();
      const auto begin = flat.begin() + static_cast<std::ptrdiff_t>(off[u]);
      std::sort(begin, begin + static_cast<std::ptrdiff_t>(down_len));
      std::copy(up[u].begin(), up[u].end(), begin + static_cast<std::ptrdiff_t>(down_len));
    }
  });
  return undirected_graph::from_csr(std::move(off), std::move(flat));
}

}  // namespace

undirected_graph build_max_power_graph(std::span<const geom::vec2> positions, double max_range) {
  undirected_graph g(positions.size());
  if (positions.empty() || max_range <= 0.0) return g;
  const geom::spatial_grid grid(positions, max_range);
  std::vector<geom::point_index> hits;
  for (node_id u = 0; u < positions.size(); ++u) {
    hits.clear();
    grid.query_radius_into(positions[u], max_range, u, hits);
    for (geom::point_index v : hits) {
      if (u < v) g.add_edge(u, v);
    }
  }
  return g;
}

undirected_graph build_max_power_graph(std::span<const geom::vec2> positions,
                                       const radio::link_model& link) {
  if (link.is_isotropic()) return build_max_power_graph(positions, link.max_range());
  undirected_graph g(positions.size());
  const double reach = link.max_candidate_range();
  if (positions.empty() || reach <= 0.0) return g;
  const geom::spatial_grid grid(positions, reach);
  const double max_power = link.max_power();
  std::vector<geom::point_index> hits;
  for (node_id u = 0; u < positions.size(); ++u) {
    hits.clear();
    grid.query_radius_into(positions[u], reach, u, hits);
    for (geom::point_index v : hits) {
      if (u < v && link.reaches(max_power, u, v, positions[u], positions[v])) g.add_edge(u, v);
    }
  }
  return g;
}

undirected_graph build_max_power_graph(std::span<const geom::vec2> positions, double max_range,
                                       util::thread_pool& pool) {
  return build_csr_max_power(positions, max_range, pool, [](node_id, node_id) { return true; });
}

undirected_graph build_max_power_graph(std::span<const geom::vec2> positions,
                                       const radio::link_model& link, util::thread_pool& pool) {
  if (link.is_isotropic()) return build_max_power_graph(positions, link.max_range(), pool);
  const double max_power = link.max_power();
  return build_csr_max_power_once(positions, link.max_candidate_range(), pool,
                                  [&](node_id u, node_id v) {
                                    return link.reaches(max_power, u, v, positions[u],
                                                        positions[v]);
                                  });
}

undirected_graph build_max_power_graph_brute(std::span<const geom::vec2> positions,
                                             double max_range) {
  undirected_graph g(positions.size());
  const double r_sq = max_range * max_range;
  for (node_id u = 0; u < positions.size(); ++u) {
    for (node_id v = u + 1; v < positions.size(); ++v) {
      if (geom::distance_sq(positions[u], positions[v]) <= r_sq) g.add_edge(u, v);
    }
  }
  return g;
}

undirected_graph build_max_power_graph_brute(std::span<const geom::vec2> positions,
                                             const radio::link_model& link) {
  if (link.is_isotropic()) return build_max_power_graph_brute(positions, link.max_range());
  undirected_graph g(positions.size());
  const double max_power = link.max_power();
  for (node_id u = 0; u < positions.size(); ++u) {
    for (node_id v = u + 1; v < positions.size(); ++v) {
      if (link.reaches(max_power, u, v, positions[u], positions[v])) g.add_edge(u, v);
    }
  }
  return g;
}

double edge_length(std::span<const geom::vec2> positions, node_id u, node_id v) {
  return geom::distance(positions[u], positions[v]);
}

}  // namespace cbtc::graph
