#include "graph/union_find.h"

#include <numeric>
#include <utility>

namespace cbtc::graph {

union_find::union_find(std::size_t n) : parent_(n), size_(n, 1), num_sets_(n) {
  std::iota(parent_.begin(), parent_.end(), node_id{0});
}

node_id union_find::find(node_id x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool union_find::unite(node_id a, node_id b) {
  node_id ra = find(a);
  node_id rb = find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --num_sets_;
  return true;
}

std::size_t union_find::size_of(node_id x) { return size_[find(x)]; }

}  // namespace cbtc::graph
