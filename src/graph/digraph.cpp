#include "graph/digraph.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "util/parallel.h"

namespace cbtc::graph {

void digraph::materialize() {
  if (!is_flat()) return;
  out_.resize(num_nodes_);
  for (node_id u = 0; u < num_nodes_; ++u) {
    out_[u].assign(flat_.begin() + static_cast<std::ptrdiff_t>(offsets_[u]),
                   flat_.begin() + static_cast<std::ptrdiff_t>(offsets_[u + 1]));
  }
  offsets_.clear();
  offsets_.shrink_to_fit();
  flat_.clear();
  flat_.shrink_to_fit();
}

bool digraph::add_arc(node_id u, node_id v) {
  if (u == v) return false;
  materialize();
  auto& list = out_[u];
  const auto it = std::lower_bound(list.begin(), list.end(), v);
  if (it != list.end() && *it == v) return false;
  list.insert(it, v);
  ++num_arcs_;
  return true;
}

bool digraph::remove_arc(node_id u, node_id v) {
  materialize();
  auto& list = out_[u];
  const auto it = std::lower_bound(list.begin(), list.end(), v);
  if (it == list.end() || *it != v) return false;
  list.erase(it);
  --num_arcs_;
  return true;
}

bool digraph::has_arc(node_id u, node_id v) const {
  if (u >= num_nodes_ || v >= num_nodes_) return false;
  const std::span<const node_id> list = out_neighbors(u);
  return std::binary_search(list.begin(), list.end(), v);
}

bool operator==(const digraph& a, const digraph& b) {
  if (a.num_nodes_ != b.num_nodes_ || a.num_arcs_ != b.num_arcs_) return false;
  for (node_id u = 0; u < a.num_nodes_; ++u) {
    const std::span<const node_id> la = a.out_neighbors(u);
    const std::span<const node_id> lb = b.out_neighbors(u);
    if (!std::equal(la.begin(), la.end(), lb.begin(), lb.end())) return false;
  }
  return true;
}

digraph digraph::from_adjacency(std::vector<std::vector<node_id>> out) {
  digraph d(out.size());
  std::size_t total = 0;
  for (node_id u = 0; u < out.size(); ++u) {
    assert(std::is_sorted(out[u].begin(), out[u].end()));
    assert(std::adjacent_find(out[u].begin(), out[u].end()) == out[u].end());
    assert(!std::binary_search(out[u].begin(), out[u].end(), u));
    total += out[u].size();
  }
  d.out_ = std::move(out);
  d.num_arcs_ = total;
  return d;
}

digraph digraph::from_csr(std::vector<std::size_t> offsets, std::vector<node_id> arcs) {
  assert(!offsets.empty());
  assert(offsets.front() == 0);
  assert(offsets.back() == arcs.size());
  digraph d;
  d.num_nodes_ = offsets.size() - 1;
  d.num_arcs_ = arcs.size();
#ifndef NDEBUG
  for (node_id u = 0; u < d.num_nodes_; ++u) {
    assert(offsets[u] <= offsets[u + 1]);
    const auto lo = arcs.begin() + static_cast<std::ptrdiff_t>(offsets[u]);
    const auto hi = arcs.begin() + static_cast<std::ptrdiff_t>(offsets[u + 1]);
    assert(std::is_sorted(lo, hi));
    assert(std::adjacent_find(lo, hi) == hi);
    assert(!std::binary_search(lo, hi, u));
  }
#endif
  d.offsets_ = std::move(offsets);
  d.flat_ = std::move(arcs);
  return d;
}

undirected_graph digraph::symmetric_closure() const {
  undirected_graph g(num_nodes());
  for (node_id u = 0; u < num_nodes_; ++u) {
    for (node_id v : out_neighbors(u)) g.add_edge(u, v);
  }
  return g;
}

undirected_graph digraph::symmetric_core() const {
  // Per-node adjacency built append-only (out-lists are sorted, so each
  // list comes out sorted) and adopted wholesale — no per-edge sorted
  // insertion. Mutual arcs make the relation symmetric by construction.
  std::vector<std::vector<node_id>> adj(num_nodes_);
  for (node_id u = 0; u < num_nodes_; ++u) {
    for (node_id v : out_neighbors(u)) {
      if (has_arc(v, u)) adj[u].push_back(v);
    }
  }
  return undirected_graph::from_adjacency(std::move(adj));
}

undirected_graph digraph::symmetric_closure(util::thread_pool& pool) const {
  const std::size_t n = num_nodes_;
  if (n == 0) return undirected_graph(0);
  // In-neighbor scatter as a two-pass parallel count/fill with
  // prefix-sum offsets. The counts and fill cursors are atomic (the
  // interleaving is irrelevant: each in-segment is sorted afterwards,
  // and a set of unique ids has exactly one sorted order), so the
  // output is identical for any pool width.
  std::vector<std::atomic<std::uint32_t>> in_count(n);  // value-initialized: all zero
  pool.parallel_for_chunks(n, util::reduce_block, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t u = lo; u < hi; ++u) {
      for (const node_id v : out_neighbors(static_cast<node_id>(u))) {
        in_count[v].fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::vector<std::size_t> in_off(n + 1, 0);
  for (std::size_t u = 0; u < n; ++u) {
    in_off[u + 1] = in_off[u] + in_count[u].load(std::memory_order_relaxed);
    in_count[u].store(0, std::memory_order_relaxed);  // reused as the fill cursor
  }
  std::vector<node_id> in_flat(in_off[n]);
  pool.parallel_for_chunks(n, util::reduce_block, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t u = lo; u < hi; ++u) {
      for (const node_id v : out_neighbors(static_cast<node_id>(u))) {
        const std::uint32_t slot = in_count[v].fetch_add(1, std::memory_order_relaxed);
        in_flat[in_off[v] + slot] = static_cast<node_id>(u);
      }
    }
  });
  // Per-node union sizes, then one exclusive prefix sum, then the fill.
  std::vector<std::size_t> deg(n);
  pool.parallel_for(n, [&](std::size_t u) {
    auto* seg = in_flat.data() + in_off[u];
    std::sort(seg, seg + (in_off[u + 1] - in_off[u]));
    const std::span<const node_id> out = out_neighbors(static_cast<node_id>(u));
    std::size_t i = 0;
    std::size_t j = 0;
    std::size_t count = 0;
    const std::size_t in_n = in_off[u + 1] - in_off[u];
    while (i < out.size() || j < in_n) {
      if (j == in_n || (i < out.size() && out[i] < seg[j])) {
        ++i;
      } else if (i == out.size() || seg[j] < out[i]) {
        ++j;
      } else {
        ++i;
        ++j;
      }
      ++count;
    }
    deg[u] = count;
  });
  std::vector<std::size_t> off(n + 1, 0);
  for (std::size_t u = 0; u < n; ++u) off[u + 1] = off[u] + deg[u];
  std::vector<node_id> flat(off[n]);
  pool.parallel_for(n, [&](std::size_t u) {
    const auto* seg = in_flat.data() + in_off[u];
    const std::span<const node_id> out = out_neighbors(static_cast<node_id>(u));
    std::set_union(out.begin(), out.end(), seg, seg + (in_off[u + 1] - in_off[u]),
                   flat.begin() + static_cast<std::ptrdiff_t>(off[u]));
  });
  return undirected_graph::from_csr(std::move(off), std::move(flat));
}

undirected_graph digraph::symmetric_core(util::thread_pool& pool) const {
  const std::size_t n = num_nodes_;
  if (n == 0) return undirected_graph(0);
  std::vector<std::size_t> deg(n);
  pool.parallel_for(n, [&](std::size_t u) {
    std::size_t count = 0;
    for (const node_id v : out_neighbors(static_cast<node_id>(u))) {
      if (has_arc(v, static_cast<node_id>(u))) ++count;
    }
    deg[u] = count;
  });
  std::vector<std::size_t> off(n + 1, 0);
  for (std::size_t u = 0; u < n; ++u) off[u + 1] = off[u] + deg[u];
  std::vector<node_id> flat(off[n]);
  pool.parallel_for(n, [&](std::size_t u) {
    std::size_t w = off[u];
    for (const node_id v : out_neighbors(static_cast<node_id>(u))) {
      if (has_arc(v, static_cast<node_id>(u))) flat[w++] = v;
    }
  });
  return undirected_graph::from_csr(std::move(off), std::move(flat));
}

}  // namespace cbtc::graph
