#include "graph/digraph.h"

#include <algorithm>

namespace cbtc::graph {

bool digraph::add_arc(node_id u, node_id v) {
  if (u == v) return false;
  auto& list = out_[u];
  const auto it = std::lower_bound(list.begin(), list.end(), v);
  if (it != list.end() && *it == v) return false;
  list.insert(it, v);
  ++num_arcs_;
  return true;
}

bool digraph::remove_arc(node_id u, node_id v) {
  auto& list = out_[u];
  const auto it = std::lower_bound(list.begin(), list.end(), v);
  if (it == list.end() || *it != v) return false;
  list.erase(it);
  --num_arcs_;
  return true;
}

bool digraph::has_arc(node_id u, node_id v) const {
  if (u >= out_.size() || v >= out_.size()) return false;
  const auto& list = out_[u];
  return std::binary_search(list.begin(), list.end(), v);
}

undirected_graph digraph::symmetric_closure() const {
  undirected_graph g(num_nodes());
  for (node_id u = 0; u < out_.size(); ++u) {
    for (node_id v : out_[u]) g.add_edge(u, v);
  }
  return g;
}

undirected_graph digraph::symmetric_core() const {
  undirected_graph g(num_nodes());
  for (node_id u = 0; u < out_.size(); ++u) {
    for (node_id v : out_[u]) {
      if (u < v && has_arc(v, u)) g.add_edge(u, v);
    }
  }
  return g;
}

}  // namespace cbtc::graph
