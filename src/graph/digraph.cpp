#include "graph/digraph.h"

#include <algorithm>

#include "util/parallel.h"

namespace cbtc::graph {

bool digraph::add_arc(node_id u, node_id v) {
  if (u == v) return false;
  auto& list = out_[u];
  const auto it = std::lower_bound(list.begin(), list.end(), v);
  if (it != list.end() && *it == v) return false;
  list.insert(it, v);
  ++num_arcs_;
  return true;
}

bool digraph::remove_arc(node_id u, node_id v) {
  auto& list = out_[u];
  const auto it = std::lower_bound(list.begin(), list.end(), v);
  if (it == list.end() || *it != v) return false;
  list.erase(it);
  --num_arcs_;
  return true;
}

bool digraph::has_arc(node_id u, node_id v) const {
  if (u >= out_.size() || v >= out_.size()) return false;
  const auto& list = out_[u];
  return std::binary_search(list.begin(), list.end(), v);
}

undirected_graph digraph::symmetric_closure() const {
  undirected_graph g(num_nodes());
  for (node_id u = 0; u < out_.size(); ++u) {
    for (node_id v : out_[u]) g.add_edge(u, v);
  }
  return g;
}

undirected_graph digraph::symmetric_core() const {
  undirected_graph g(num_nodes());
  for (node_id u = 0; u < out_.size(); ++u) {
    for (node_id v : out_[u]) {
      if (u < v && has_arc(v, u)) g.add_edge(u, v);
    }
  }
  return g;
}

undirected_graph digraph::symmetric_closure(util::thread_pool& pool) const {
  const std::size_t n = out_.size();
  // In-neighbor lists first: appending u in ascending order keeps each
  // list sorted. This scatter pass is serial; the per-node merge below
  // is the expensive part and parallelizes per slot.
  std::vector<std::vector<node_id>> in(n);
  for (node_id u = 0; u < n; ++u) {
    for (node_id v : out_[u]) in[v].push_back(u);
  }
  std::vector<std::vector<node_id>> adj(n);
  pool.parallel_for(n, [&](std::size_t u) {
    adj[u].resize(out_[u].size() + in[u].size());
    const auto end = std::set_union(out_[u].begin(), out_[u].end(), in[u].begin(), in[u].end(),
                                    adj[u].begin());
    adj[u].resize(static_cast<std::size_t>(end - adj[u].begin()));
  });
  return undirected_graph::from_adjacency(std::move(adj));
}

undirected_graph digraph::symmetric_core(util::thread_pool& pool) const {
  const std::size_t n = out_.size();
  std::vector<std::vector<node_id>> adj(n);
  pool.parallel_for(n, [&](std::size_t u) {
    for (node_id v : out_[u]) {
      if (has_arc(v, static_cast<node_id>(u))) adj[u].push_back(v);
    }
  });
  return undirected_graph::from_adjacency(std::move(adj));
}

}  // namespace cbtc::graph
