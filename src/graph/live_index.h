// Incrementally maintained live max-power graph G_R.
//
// Dynamic runs used to rebuild the full max-power graph from scratch
// at every metric sample. live_neighbor_index instead maintains the
// live G_R — nodes that are up, edges between live nodes at distance
// <= max_range — incrementally from the event stream (mobility moves,
// crashes, restarts), each update costing O(neighborhood) via a
// mutable spatial grid. The maintained edge set is exactly
// build_max_power_graph(positions, R).induced(up): same arithmetic,
// same inclusive <= comparison (tests assert edge identity after
// arbitrary event sequences).
//
// connectivity_monitor sits on top and answers "is the live field one
// component?" at event granularity: edge additions are united into a
// union-find immediately; removals (and liveness changes) mark it
// stale and the next query rebuilds from the maintained adjacency —
// O(n + m) without any geometry, far cheaper than a graph rebuild.
// This is what turns sample-granularity partition detection into
// exact disruption windows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "geom/dynamic_grid.h"
#include "geom/vec2.h"
#include "graph/graph.h"
#include "graph/traversal.h"
#include "graph/types.h"
#include "graph/union_find.h"
#include "radio/propagation.h"

namespace cbtc::graph {

class live_neighbor_index {
 public:
  /// Called for every edge delta: (u, v, true) when {u, v} appears,
  /// (u, v, false) when it disappears. u < v always.
  using edge_observer = std::function<void(node_id, node_id, bool)>;

  /// Builds the index over `positions`, all nodes initially up.
  live_neighbor_index(std::span<const geom::vec2> positions, double max_range);

  /// Gain-aware index: maintains the live *link-model* G_R — edges are
  /// links that close at maximum power. The grid prunes by the longest
  /// feasible link; every candidate is filtered per link. With
  /// isotropic propagation this is the distance index above, edge for
  /// edge.
  live_neighbor_index(std::span<const geom::vec2> positions, const radio::link_model& link);

  /// Moves live node `u` (no-op edge-wise when nothing enters or
  /// leaves its range).
  void move(node_id u, const geom::vec2& p);

  /// Marks `u` down and drops its incident edges.
  void erase(node_id u);

  /// Marks `u` up again at position `p` and restores its edges.
  void insert(node_id u, const geom::vec2& p);

  [[nodiscard]] bool is_live(node_id u) const { return live_[u]; }
  [[nodiscard]] std::size_t num_nodes() const { return live_.size(); }
  [[nodiscard]] std::size_t live_count() const { return live_count_; }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

  /// Bumped by every edge delta and liveness flip. A move that left
  /// the version unchanged provably changed neither the live G_R nor
  /// the live set, so observers can skip re-evaluating connectivity.
  [[nodiscard]] std::uint64_t version() const { return version_; }
  [[nodiscard]] const geom::vec2& position(node_id u) const { return positions_[u]; }

  /// Sorted live neighbors of `u` (empty when down).
  [[nodiscard]] std::span<const node_id> neighbors(node_id u) const { return adj_[u]; }

  /// Snapshot as an undirected_graph (down nodes isolated); edge-set
  /// identical to build_max_power_graph(positions, R).induced(up).
  [[nodiscard]] undirected_graph graph() const;

  /// Installs the (single) edge observer. Pass {} to detach.
  void set_observer(edge_observer obs) { observer_ = std::move(obs); }

  /// Called after a liveness flip: (u, true) on insert, (u, false) on
  /// erase. Edge deltas for the flip arrive through the edge observer.
  using node_observer = std::function<void(node_id, bool)>;
  void set_node_observer(node_observer obs) { node_observer_ = std::move(obs); }

  /// Gain-cache telemetry (always zero for distance indexes): every
  /// per-link filter is one lookup; misses are the lookups that had to
  /// evaluate the propagation model.
  [[nodiscard]] std::uint64_t gain_lookups() const { return gain_lookups_; }
  [[nodiscard]] std::uint64_t gain_misses() const { return gain_misses_; }

  /// Per-region churn telemetry for the partitioned dynamic engine:
  /// once a region map is installed (one region id per node; the
  /// engine keeps it in sync as nodes migrate), every index mutation —
  /// live move, erase, insert — is counted against the node's current
  /// region, so tests and benches can see where the field actually
  /// churned.
  void set_region_map(std::vector<std::uint32_t> map, std::uint32_t regions) {
    region_map_ = std::move(map);
    region_churn_.assign(regions, 0);
  }
  void set_node_region(node_id u, std::uint32_t region) {
    if (u < region_map_.size()) region_map_[u] = region;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& region_churn() const { return region_churn_; }

 private:
  /// Shared constructor body: populates the grid and links every
  /// reachable pair exactly once (query before insert).
  void build();
  void link(node_id u, node_id v);
  void unlink(node_id u, node_id v);
  /// Drops grid candidates whose link does not close, in place (no-op
  /// for distance indexes — the grid query radius already decided).
  /// Sorts `candidates` and merge-scans them against the node's gain
  /// row, so hits cost a sequential L1 read instead of a hash probe
  /// (point-lookup tables measured *slower* than recomputing a
  /// shadowing gain — random probes miss CPU cache; the rows don't).
  /// The cached gain then flows through arithmetic identical to
  /// link_model::reaches_at, so verdicts match the uncached filter bit
  /// for bit.
  void filter_reachable(node_id u, std::vector<geom::point_index>& candidates) const;

  /// One cached link gain of the row's owner `u`: gain({u, v}) as
  /// computed when `v`'s position epoch was `peer_epoch` (epochs only
  /// engage for obstacle fields; shadowing gains are id-pure and never
  /// stale — a move of `u` itself clears its whole row instead).
  /// `d2_in` / `d2_out` invert the max-power budget into squared
  /// feasible-distance bounds for this gain (with a conservative 1e-6
  /// relative band): candidates whose squared distance falls below /
  /// above them are accepted / rejected without evaluating `pow` or a
  /// square root; only the thin band in between pays the exact
  /// reaches_at arithmetic, so verdicts stay bitwise-identical.
  struct gain_entry {
    node_id v;
    double gain;
    std::uint64_t peer_epoch;
    double d2_in;
    double d2_out;
  };

  double max_range_;
  std::optional<radio::link_model> link_;  // engaged only for non-isotropic models
  bool position_dependent_gain_{false};    // obstacle fields: gains move with nodes
  mutable std::vector<std::vector<gain_entry>> gain_rows_;  // sorted by v; per query node
  mutable std::vector<gain_entry> row_scratch_;
  mutable std::uint64_t gain_lookups_{0};
  mutable std::uint64_t gain_misses_{0};
  std::vector<std::uint64_t> pos_epoch_;  // engaged only with position-dependent gains
  std::uint64_t version_{0};
  geom::dynamic_grid grid_;
  std::vector<geom::vec2> positions_;
  std::vector<bool> live_;
  std::size_t live_count_{0};
  std::size_t num_edges_{0};
  std::vector<std::vector<node_id>> adj_;  // sorted, live endpoints only
  edge_observer observer_;
  node_observer node_observer_;
  void note_churn(node_id u) {
    if (u < region_map_.size()) ++region_churn_[region_map_[u]];
  }
  std::vector<std::uint32_t> region_map_;
  std::vector<std::uint64_t> region_churn_;
  std::vector<geom::point_index> scratch_;
};

/// Incremental mirror of a symmetric-closure topology built from
/// per-node *directed* neighbor-table deltas plus liveness flips.
///
/// The dynamic engine's agents each own a neighbor table (the directed
/// relation N_alpha under reconfiguration); the observable topology is
/// the symmetric closure over live nodes: edge {u, v} iff u and v are
/// both up and at least one of them has the other in its table. The
/// engine used to recompute that closure from scratch — iterating all
/// n agent tables, O(n + m) map walks plus per-edge sorted inserts —
/// at every connectivity evaluation. closure_mirror instead keeps a
/// per-pair arc count (0..2) updated from the agents' table hooks, so
/// each table delta costs O(degree) and a closure snapshot is a plain
/// filtered copy of sorted adjacency (adopted wholesale, no per-edge
/// insertion). Snapshots are edge-identical to the full re-read by
/// construction (asserted in tests and kept exercisable through
/// api::sim_spec::mirror_agent_tables).
class closure_mirror {
 public:
  /// All nodes initially up, no arcs.
  explicit closure_mirror(std::size_t n);

  /// Node `u`'s table gained / lost `v` (directed). Counts are
  /// per unordered pair; both orders may be added independently.
  void add_arc(node_id u, node_id v);
  void remove_arc(node_id u, node_id v);

  /// Liveness flip; arcs are kept (a down node's table survives a
  /// crash — exactly like the agents' own state).
  void set_live(node_id u, bool up);

  [[nodiscard]] std::size_t num_nodes() const { return live_.size(); }
  [[nodiscard]] bool is_live(node_id u) const { return live_[u]; }

  /// The live symmetric closure: nodes that are down are isolated.
  [[nodiscard]] undirected_graph live_graph() const;

  /// Calls `f(v)` for every live neighbor of `u` (ascending v; nothing
  /// when `u` is down). This is the in-place adjacency view the
  /// connectivity comparison below reads — no snapshot graph needed.
  template <class F>
  void for_each_live_neighbor(node_id u, F&& f) const {
    if (!live_[u]) return;
    for (const entry& e : adj_[u]) {
      if (live_[e.v]) f(e.v);
    }
  }

 private:
  struct entry {
    node_id v;
    std::uint8_t arcs;  // directed arcs between the pair (1 or 2)
  };

  std::vector<std::vector<entry>> adj_;  // sorted by v
  std::vector<bool> live_;
};

/// In-place connectivity-preservation check: compares the partition of
/// the mirrored closure topology against the live G_R index without
/// materializing either graph — the allocation-free path the dynamic
/// engine runs at every topology-changing event (dense-churn runs used
/// to copy both graphs per evaluation). Verdict identical to
/// same_connectivity(mirror.live_graph(), index.graph(), ...).
[[nodiscard]] bool same_connectivity(const closure_mirror& topology,
                                     const live_neighbor_index& max_power,
                                     connectivity_scratch& scratch);

/// Event-driven union-find connectivity monitor over a
/// live_neighbor_index (see header comment). Installs itself as the
/// index's edge observer; the index must outlive the monitor.
class connectivity_monitor {
 public:
  explicit connectivity_monitor(live_neighbor_index& index);

  /// True when every live node lies in one component of the live G_R
  /// (trivially true for fewer than two live nodes). Amortized O(1)
  /// while edges only appear; O(n + m) rebuild after a removal.
  [[nodiscard]] bool connected();

 private:
  void rebuild();

  live_neighbor_index& index_;
  union_find uf_;
  std::size_t live_at_build_{0};
  bool stale_{true};
};

}  // namespace cbtc::graph
