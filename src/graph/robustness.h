// Structural robustness: articulation points, bridges, biconnectivity.
//
// The paper's related work (Ramanathan & Rosales-Hain, Infocom 2000)
// targets *biconnected* topologies for fault tolerance. These helpers
// let the benches quantify how fragile each topology is: a node whose
// removal splits the network is an articulation point; an edge whose
// removal splits it is a bridge.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace cbtc::graph {

/// Articulation points (cut vertices) via Tarjan's low-link DFS.
[[nodiscard]] std::vector<node_id> articulation_points(const undirected_graph& g);

/// Bridges (cut edges), each with u < v.
[[nodiscard]] std::vector<edge> bridges(const undirected_graph& g);

/// True if the graph is connected and has no articulation point
/// (trivially true for n <= 2 when connected).
[[nodiscard]] bool is_biconnected(const undirected_graph& g);

}  // namespace cbtc::graph
