// Topology metrics reported in the paper's evaluation (Section 5).
//
// Table 1 reports, per configuration, the *average node degree* and the
// *average radius*, where a node's radius is the distance to its
// farthest neighbor in the final topology (rad_u in the paper's
// notation). Stretch metrics support the competitiveness discussion.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geom/vec2.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace cbtc::graph {

/// Mean degree over all nodes (0 for an empty graph).
[[nodiscard]] double average_degree(const undirected_graph& g);

/// Distance from `u` to its farthest neighbor; `isolated_radius` for
/// nodes with no incident edge (a boundary node that found nobody still
/// broadcasts, so callers typically pass the max range R).
[[nodiscard]] double node_radius(const undirected_graph& g, std::span<const geom::vec2> positions,
                                 node_id u, double isolated_radius = 0.0);

/// Mean of node_radius over all nodes.
[[nodiscard]] double average_radius(const undirected_graph& g, std::span<const geom::vec2> positions,
                                    double isolated_radius = 0.0);

/// Largest node radius (the max transmission range anyone needs).
[[nodiscard]] double max_radius(const undirected_graph& g, std::span<const geom::vec2> positions,
                                double isolated_radius = 0.0);

/// Histogram of degrees: index d holds the number of nodes of degree d.
[[nodiscard]] std::vector<std::size_t> degree_histogram(const undirected_graph& g);

/// Mean total transmit power with per-node power p(radius) = radius^exponent.
[[nodiscard]] double average_power(const undirected_graph& g, std::span<const geom::vec2> positions,
                                   double exponent, double isolated_radius = 0.0);

struct stretch_stats {
  double mean{1.0};
  double max{1.0};
  std::size_t pairs{0};  // connected pairs measured
};

/// Power stretch of `sparse` w.r.t. `dense`: for sampled connected
/// pairs (s,t), the ratio of minimum-energy route costs (cost d^exponent
/// per hop). `sample_sources` bounds the number of Dijkstra runs;
/// pass the node count (or more) for the exact all-pairs statistic.
[[nodiscard]] stretch_stats power_stretch(const undirected_graph& sparse,
                                          const undirected_graph& dense,
                                          const std::vector<geom::vec2>& positions, double exponent,
                                          std::size_t sample_sources = 32);

/// Hop stretch of `sparse` w.r.t. `dense` (BFS hop counts).
[[nodiscard]] stretch_stats hop_stretch(const undirected_graph& sparse,
                                        const undirected_graph& dense, std::size_t sample_sources = 32);

}  // namespace cbtc::graph
