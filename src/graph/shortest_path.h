// Weighted shortest paths (Dijkstra) with pluggable edge costs.
//
// Used to measure *power stretch*: the paper's competitiveness
// discussion compares the power of the most power-efficient route in
// G_alpha against the one in G_R, with per-hop cost p(d) = d^n.
#pragma once

#include <functional>
#include <vector>

#include "geom/vec2.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace cbtc::graph {

/// Cost of traversing edge {u, v}; must be non-negative.
using edge_cost_fn = std::function<double(node_id, node_id)>;

/// Dijkstra from `from`. Unreachable nodes get +infinity.
[[nodiscard]] std::vector<double> dijkstra(const undirected_graph& g, node_id from,
                                           const edge_cost_fn& cost);

/// Shortest-path tree rooted at the Dijkstra source: `parent[u]` is the
/// next hop from `u` toward the root (invalid_node for the root itself
/// and for unreachable nodes, which keep dist = +infinity).
struct shortest_path_tree {
  std::vector<double> dist;
  std::vector<node_id> parent;
};

/// Dijkstra from `from` with parent pointers. Relaxations use strict
/// `<` improvement and the heap orders ties by (distance, node id), so
/// the tree is deterministic for a given graph and cost function. The
/// cost callback is invoked as cost(settled, neighbor).
[[nodiscard]] shortest_path_tree dijkstra_tree(const undirected_graph& g, node_id from,
                                               const edge_cost_fn& cost);

/// Edge cost equal to Euclidean length (hop-length metric).
[[nodiscard]] edge_cost_fn euclidean_cost(const std::vector<geom::vec2>& positions);

/// Edge cost equal to transmission power d^exponent (energy metric).
[[nodiscard]] edge_cost_fn power_cost(const std::vector<geom::vec2>& positions, double exponent);

}  // namespace cbtc::graph
