// Weighted shortest paths (Dijkstra) with pluggable edge costs.
//
// Used to measure *power stretch*: the paper's competitiveness
// discussion compares the power of the most power-efficient route in
// G_alpha against the one in G_R, with per-hop cost p(d) = d^n.
#pragma once

#include <functional>
#include <vector>

#include "geom/vec2.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace cbtc::graph {

/// Cost of traversing edge {u, v}; must be non-negative.
using edge_cost_fn = std::function<double(node_id, node_id)>;

/// Dijkstra from `from`. Unreachable nodes get +infinity.
[[nodiscard]] std::vector<double> dijkstra(const undirected_graph& g, node_id from,
                                           const edge_cost_fn& cost);

/// Edge cost equal to Euclidean length (hop-length metric).
[[nodiscard]] edge_cost_fn euclidean_cost(const std::vector<geom::vec2>& positions);

/// Edge cost equal to transmission power d^exponent (energy metric).
[[nodiscard]] edge_cost_fn power_cost(const std::vector<geom::vec2>& positions, double exponent);

}  // namespace cbtc::graph
