#include "graph/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/shortest_path.h"
#include "graph/traversal.h"

namespace cbtc::graph {

double average_degree(const undirected_graph& g) {
  if (g.num_nodes() == 0) return 0.0;
  return 2.0 * static_cast<double>(g.num_edges()) / static_cast<double>(g.num_nodes());
}

double node_radius(const undirected_graph& g, std::span<const geom::vec2> positions, node_id u,
                   double isolated_radius) {
  double r = 0.0;
  bool any = false;
  for (node_id v : g.neighbors(u)) {
    r = std::max(r, geom::distance(positions[u], positions[v]));
    any = true;
  }
  return any ? r : isolated_radius;
}

double average_radius(const undirected_graph& g, std::span<const geom::vec2> positions,
                      double isolated_radius) {
  if (g.num_nodes() == 0) return 0.0;
  double total = 0.0;
  for (node_id u = 0; u < g.num_nodes(); ++u) {
    total += node_radius(g, positions, u, isolated_radius);
  }
  return total / static_cast<double>(g.num_nodes());
}

double max_radius(const undirected_graph& g, std::span<const geom::vec2> positions,
                  double isolated_radius) {
  double r = 0.0;
  for (node_id u = 0; u < g.num_nodes(); ++u) {
    r = std::max(r, node_radius(g, positions, u, isolated_radius));
  }
  return r;
}

std::vector<std::size_t> degree_histogram(const undirected_graph& g) {
  std::size_t max_deg = 0;
  for (node_id u = 0; u < g.num_nodes(); ++u) max_deg = std::max(max_deg, g.degree(u));
  std::vector<std::size_t> hist(max_deg + 1, 0);
  for (node_id u = 0; u < g.num_nodes(); ++u) ++hist[g.degree(u)];
  return hist;
}

double average_power(const undirected_graph& g, std::span<const geom::vec2> positions,
                     double exponent, double isolated_radius) {
  if (g.num_nodes() == 0) return 0.0;
  double total = 0.0;
  for (node_id u = 0; u < g.num_nodes(); ++u) {
    total += std::pow(node_radius(g, positions, u, isolated_radius), exponent);
  }
  return total / static_cast<double>(g.num_nodes());
}

namespace {

stretch_stats stretch_impl(const undirected_graph& sparse, const undirected_graph& dense,
                           std::size_t sample_sources,
                           const std::function<std::vector<double>(const undirected_graph&, node_id)>& sssp) {
  stretch_stats stats;
  const std::size_t n = dense.num_nodes();
  if (n == 0) return stats;
  const std::size_t sources = std::min(sample_sources, n);
  // Deterministic sampling: evenly spaced source ids.
  const std::size_t step = std::max<std::size_t>(1, n / sources);

  double total = 0.0;
  double worst = 1.0;
  std::size_t pairs = 0;
  for (node_id s = 0; s < n; s = static_cast<node_id>(s + step)) {
    const std::vector<double> dd = sssp(dense, s);
    const std::vector<double> ds = sssp(sparse, s);
    for (node_id t = 0; t < n; ++t) {
      if (t == s) continue;
      if (!std::isfinite(dd[t]) || dd[t] <= 0.0) continue;  // unreachable in dense graph
      if (!std::isfinite(ds[t])) continue;                  // connectivity violation; skip here
      const double ratio = ds[t] / dd[t];
      total += ratio;
      worst = std::max(worst, ratio);
      ++pairs;
    }
  }
  if (pairs > 0) {
    stats.mean = total / static_cast<double>(pairs);
    stats.max = worst;
    stats.pairs = pairs;
  }
  return stats;
}

}  // namespace

stretch_stats power_stretch(const undirected_graph& sparse, const undirected_graph& dense,
                            const std::vector<geom::vec2>& positions, double exponent,
                            std::size_t sample_sources) {
  const edge_cost_fn cost = power_cost(positions, exponent);
  return stretch_impl(sparse, dense, sample_sources,
                      [&cost](const undirected_graph& g, node_id s) { return dijkstra(g, s, cost); });
}

stretch_stats hop_stretch(const undirected_graph& sparse, const undirected_graph& dense,
                          std::size_t sample_sources) {
  auto bfs_as_double = [](const undirected_graph& g, node_id s) {
    const std::vector<std::uint32_t> d = bfs_distances(g, s);
    std::vector<double> out(d.size());
    for (std::size_t i = 0; i < d.size(); ++i) {
      out[i] = d[i] == std::numeric_limits<std::uint32_t>::max()
                   ? std::numeric_limits<double>::infinity()
                   : static_cast<double>(d[i]);
    }
    return out;
  };
  return stretch_impl(sparse, dense, sample_sources, bfs_as_double);
}

}  // namespace cbtc::graph
