#include "graph/graph.h"

#include <algorithm>
#include <cassert>

namespace cbtc::graph {

namespace {

bool sorted_insert(std::vector<node_id>& list, node_id v) {
  const auto it = std::lower_bound(list.begin(), list.end(), v);
  if (it != list.end() && *it == v) return false;
  list.insert(it, v);
  return true;
}

bool sorted_erase(std::vector<node_id>& list, node_id v) {
  const auto it = std::lower_bound(list.begin(), list.end(), v);
  if (it == list.end() || *it != v) return false;
  list.erase(it);
  return true;
}

}  // namespace

bool undirected_graph::add_edge(node_id u, node_id v) {
  if (u == v) return false;
  if (!sorted_insert(adj_[u], v)) return false;
  sorted_insert(adj_[v], u);
  ++num_edges_;
  return true;
}

bool undirected_graph::remove_edge(node_id u, node_id v) {
  if (u == v) return false;
  if (!sorted_erase(adj_[u], v)) return false;
  sorted_erase(adj_[v], u);
  --num_edges_;
  return true;
}

bool undirected_graph::has_edge(node_id u, node_id v) const {
  if (u >= adj_.size() || v >= adj_.size()) return false;
  const auto& list = adj_[u];
  return std::binary_search(list.begin(), list.end(), v);
}

undirected_graph undirected_graph::induced(const std::vector<bool>& mask) const {
  undirected_graph g(num_nodes());
  for (node_id u = 0; u < adj_.size(); ++u) {
    if (u >= mask.size() || !mask[u]) continue;
    for (node_id v : adj_[u]) {
      if (u < v && v < mask.size() && mask[v]) g.add_edge(u, v);
    }
  }
  return g;
}

undirected_graph undirected_graph::from_adjacency(std::vector<std::vector<node_id>> adj) {
  undirected_graph g(adj.size());
  std::size_t total_degree = 0;
  for (node_id u = 0; u < adj.size(); ++u) {
    assert(std::is_sorted(adj[u].begin(), adj[u].end()));
    assert(std::adjacent_find(adj[u].begin(), adj[u].end()) == adj[u].end());
    assert(!std::binary_search(adj[u].begin(), adj[u].end(), u));
#ifndef NDEBUG
    for (const node_id v : adj[u]) {
      assert(std::binary_search(adj[v].begin(), adj[v].end(), u));  // symmetric
    }
#endif
    total_degree += adj[u].size();
  }
  g.adj_ = std::move(adj);
  g.num_edges_ = total_degree / 2;
  return g;
}

std::vector<edge> undirected_graph::edges() const {
  std::vector<edge> out;
  out.reserve(num_edges_);
  for (node_id u = 0; u < adj_.size(); ++u) {
    for (node_id v : adj_[u]) {
      if (u < v) out.push_back({u, v});
    }
  }
  return out;
}

}  // namespace cbtc::graph
