#include "graph/graph.h"

#include <algorithm>
#include <cassert>

namespace cbtc::graph {

namespace {

bool sorted_insert(std::vector<node_id>& list, node_id v) {
  const auto it = std::lower_bound(list.begin(), list.end(), v);
  if (it != list.end() && *it == v) return false;
  list.insert(it, v);
  return true;
}

bool sorted_erase(std::vector<node_id>& list, node_id v) {
  const auto it = std::lower_bound(list.begin(), list.end(), v);
  if (it == list.end() || *it != v) return false;
  list.erase(it);
  return true;
}

}  // namespace

void undirected_graph::materialize() {
  if (!is_flat()) return;
  adj_.resize(num_nodes_);
  for (node_id u = 0; u < num_nodes_; ++u) {
    adj_[u].assign(flat_.begin() + static_cast<std::ptrdiff_t>(offsets_[u]),
                   flat_.begin() + static_cast<std::ptrdiff_t>(offsets_[u + 1]));
  }
  offsets_.clear();
  offsets_.shrink_to_fit();
  flat_.clear();
  flat_.shrink_to_fit();
}

bool undirected_graph::add_edge(node_id u, node_id v) {
  if (u == v) return false;
  materialize();
  if (!sorted_insert(adj_[u], v)) return false;
  sorted_insert(adj_[v], u);
  ++num_edges_;
  return true;
}

bool undirected_graph::remove_edge(node_id u, node_id v) {
  if (u == v) return false;
  materialize();
  if (!sorted_erase(adj_[u], v)) return false;
  sorted_erase(adj_[v], u);
  --num_edges_;
  return true;
}

bool undirected_graph::has_edge(node_id u, node_id v) const {
  if (u >= num_nodes_ || v >= num_nodes_) return false;
  const std::span<const node_id> list = neighbors(u);
  return std::binary_search(list.begin(), list.end(), v);
}

bool operator==(const undirected_graph& a, const undirected_graph& b) {
  if (a.num_nodes_ != b.num_nodes_ || a.num_edges_ != b.num_edges_) return false;
  for (node_id u = 0; u < a.num_nodes_; ++u) {
    const std::span<const node_id> la = a.neighbors(u);
    const std::span<const node_id> lb = b.neighbors(u);
    if (!std::equal(la.begin(), la.end(), lb.begin(), lb.end())) return false;
  }
  return true;
}

undirected_graph undirected_graph::induced(const std::vector<bool>& mask) const {
  undirected_graph g(num_nodes());
  for (node_id u = 0; u < num_nodes_; ++u) {
    if (u >= mask.size() || !mask[u]) continue;
    for (node_id v : neighbors(u)) {
      if (u < v && v < mask.size() && mask[v]) g.add_edge(u, v);
    }
  }
  return g;
}

undirected_graph undirected_graph::from_adjacency(std::vector<std::vector<node_id>> adj) {
  undirected_graph g(adj.size());
  std::size_t total_degree = 0;
  for (node_id u = 0; u < adj.size(); ++u) {
    assert(std::is_sorted(adj[u].begin(), adj[u].end()));
    assert(std::adjacent_find(adj[u].begin(), adj[u].end()) == adj[u].end());
    assert(!std::binary_search(adj[u].begin(), adj[u].end(), u));
#ifndef NDEBUG
    for (const node_id v : adj[u]) {
      assert(std::binary_search(adj[v].begin(), adj[v].end(), u));  // symmetric
    }
#endif
    total_degree += adj[u].size();
  }
  g.adj_ = std::move(adj);
  g.num_edges_ = total_degree / 2;
  return g;
}

undirected_graph undirected_graph::from_csr(std::vector<std::size_t> offsets,
                                            std::vector<node_id> neighbors) {
  assert(!offsets.empty());
  assert(offsets.front() == 0);
  assert(offsets.back() == neighbors.size());
  undirected_graph g;
  g.num_nodes_ = offsets.size() - 1;
  g.num_edges_ = neighbors.size() / 2;
#ifndef NDEBUG
  for (node_id u = 0; u < g.num_nodes_; ++u) {
    assert(offsets[u] <= offsets[u + 1]);
    const auto lo = neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[u]);
    const auto hi = neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[u + 1]);
    assert(std::is_sorted(lo, hi));
    assert(std::adjacent_find(lo, hi) == hi);
    assert(!std::binary_search(lo, hi, u));
    for (auto it = lo; it != hi; ++it) {
      const auto vlo = neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[*it]);
      const auto vhi = neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[*it + 1]);
      assert(std::binary_search(vlo, vhi, u));  // symmetric
    }
  }
#endif
  g.offsets_ = std::move(offsets);
  g.flat_ = std::move(neighbors);
  return g;
}

undirected_graph undirected_graph::flattened() const {
  std::vector<std::size_t> offsets(num_nodes_ + 1, 0);
  for (node_id u = 0; u < num_nodes_; ++u) offsets[u + 1] = offsets[u] + degree(u);
  std::vector<node_id> flat(offsets.back());
  for (node_id u = 0; u < num_nodes_; ++u) {
    const std::span<const node_id> list = neighbors(u);
    std::copy(list.begin(), list.end(), flat.begin() + static_cast<std::ptrdiff_t>(offsets[u]));
  }
  return from_csr(std::move(offsets), std::move(flat));
}

std::vector<edge> undirected_graph::edges() const {
  std::vector<edge> out;
  out.reserve(num_edges_);
  for (node_id u = 0; u < num_nodes_; ++u) {
    for (node_id v : neighbors(u)) {
      if (u < v) out.push_back({u, v});
    }
  }
  return out;
}

}  // namespace cbtc::graph
