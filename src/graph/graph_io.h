// Topology writers: SVG (Figure 6 reproduction), Graphviz DOT, CSV.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "geom/bbox.h"
#include "geom/vec2.h"
#include "graph/graph.h"

namespace cbtc::graph {

struct svg_style {
  double canvas_px{600.0};     // output width/height in pixels
  double node_radius_px{2.5};  // node marker size
  bool node_labels{false};     // print node ids (as in the paper's plots)
  std::string edge_color{"#2b6cb0"};
  std::string node_color{"#1a202c"};
  std::string title;
};

/// Writes the topology as a standalone SVG image, mapping `region` to
/// the canvas. This regenerates the panels of the paper's Figure 6.
void write_svg(std::ostream& os, const undirected_graph& g, std::span<const geom::vec2> positions,
               const geom::bbox& region, const svg_style& style = {});

/// Writes a Graphviz DOT file with position attributes.
void write_dot(std::ostream& os, const undirected_graph& g, std::span<const geom::vec2> positions,
               const std::string& name = "topology");

/// Writes "u,v,length" rows.
void write_edge_csv(std::ostream& os, const undirected_graph& g,
                    std::span<const geom::vec2> positions);

/// Convenience: writes an SVG file to `path`; throws on I/O failure.
void save_svg(const std::string& path, const undirected_graph& g,
              std::span<const geom::vec2> positions, const geom::bbox& region,
              const svg_style& style = {});

}  // namespace cbtc::graph
