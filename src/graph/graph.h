// Undirected graph over dense node ids.
//
// Topologies produced by CBTC and its optimizations are undirected
// graphs (symmetric closures / symmetric cores of the neighbor
// relation N_alpha). Adjacency lists are kept sorted so neighbor scans
// and set operations are deterministic.
//
// Two physical representations behind one logical interface:
//
//   * nested  — std::vector per node; mutable (add_edge / remove_edge
//     do sorted insertion). This is the representation incremental
//     code (dynamic runs, small gadgets) works against.
//   * flat CSR — one `offsets` array (n + 1 entries) plus one
//     `neighbors` array holding every adjacency list back to back.
//     Immutable and cache-dense; this is what the parallel
//     constructions (symmetric closure / core, pairwise removal,
//     max-power graph) assemble via counting pass + exclusive
//     prefix sum, and what the metric / verification loops iterate
//     at scale.
//
// neighbors(u) returns a span either way, so consumers never care.
// Mutating a CSR graph transparently converts it back to nested lists
// first (O(E) once, amortized against the edit session that follows).
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "graph/types.h"

namespace cbtc::graph {

/// An undirected edge with u < v canonically.
struct edge {
  node_id u{invalid_node};
  node_id v{invalid_node};

  [[nodiscard]] friend constexpr bool operator==(const edge&, const edge&) = default;
};

class undirected_graph {
 public:
  undirected_graph() = default;
  explicit undirected_graph(std::size_t num_nodes) : adj_(num_nodes), num_nodes_(num_nodes) {}

  [[nodiscard]] std::size_t num_nodes() const { return num_nodes_; }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

  /// Adds the undirected edge {u, v}; ignores duplicates and self-loops.
  /// Returns true if the edge was newly inserted. Converts a CSR graph
  /// back to nested lists first.
  bool add_edge(node_id u, node_id v);

  /// Removes the edge {u, v} if present; returns true if removed.
  bool remove_edge(node_id u, node_id v);

  [[nodiscard]] bool has_edge(node_id u, node_id v) const;
  [[nodiscard]] std::span<const node_id> neighbors(node_id u) const {
    if (is_flat()) {
      return {flat_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
    }
    return adj_[u];
  }
  [[nodiscard]] std::size_t degree(node_id u) const { return neighbors(u).size(); }

  /// All edges with u < v, sorted lexicographically.
  [[nodiscard]] std::vector<edge> edges() const;

  /// Logical equality: same node count and same sorted adjacency,
  /// regardless of which representation either side uses.
  friend bool operator==(const undirected_graph& a, const undirected_graph& b);

  /// Subgraph induced by the nodes with mask[u] == true (same node-id
  /// space; masked-out nodes become isolated). Used for survivor
  /// topologies after crash failures.
  [[nodiscard]] undirected_graph induced(const std::vector<bool>& mask) const;

  /// Adopts pre-built adjacency lists wholesale — O(1), no per-edge
  /// insertion. Contract (asserted in debug builds): every list sorted
  /// ascending, no self-loops or duplicates, and the relation is
  /// symmetric (v in adj[u] iff u in adj[v]). This is how parallel
  /// constructions (digraph::symmetric_closure / symmetric_core with a
  /// thread pool) assemble their per-node results.
  [[nodiscard]] static undirected_graph from_adjacency(std::vector<std::vector<node_id>> adj);

  /// Adopts a flat CSR adjacency wholesale: `offsets` has num_nodes + 1
  /// entries with offsets[0] == 0 and offsets.back() == neighbors.size();
  /// node u's sorted neighbor list is neighbors[offsets[u]..offsets[u+1]).
  /// Same contract as from_adjacency (asserted in debug builds).
  [[nodiscard]] static undirected_graph from_csr(std::vector<std::size_t> offsets,
                                                 std::vector<node_id> neighbors);

  /// True when the graph currently holds the flat CSR representation.
  [[nodiscard]] bool is_flat() const { return !offsets_.empty(); }

  /// A copy of this graph in CSR form (the copy is flat even if this
  /// graph is nested). Round-trip helper for tests and bulk consumers.
  [[nodiscard]] undirected_graph flattened() const;

 private:
  /// Converts CSR back to nested lists in place (no-op when nested).
  void materialize();

  std::vector<std::vector<node_id>> adj_;  // nested rep: each list sorted ascending
  std::vector<std::size_t> offsets_;       // CSR rep: num_nodes + 1 entries (empty when nested)
  std::vector<node_id> flat_;              // CSR rep: concatenated sorted lists
  std::size_t num_nodes_{0};
  std::size_t num_edges_{0};
};

}  // namespace cbtc::graph
