// Undirected graph over dense node ids.
//
// Topologies produced by CBTC and its optimizations are undirected
// graphs (symmetric closures / symmetric cores of the neighbor
// relation N_alpha). Adjacency lists are kept sorted so neighbor scans
// and set operations are deterministic.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "graph/types.h"

namespace cbtc::graph {

/// An undirected edge with u < v canonically.
struct edge {
  node_id u{invalid_node};
  node_id v{invalid_node};

  [[nodiscard]] friend constexpr bool operator==(const edge&, const edge&) = default;
};

class undirected_graph {
 public:
  undirected_graph() = default;
  explicit undirected_graph(std::size_t num_nodes) : adj_(num_nodes) {}

  [[nodiscard]] std::size_t num_nodes() const { return adj_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

  /// Adds the undirected edge {u, v}; ignores duplicates and self-loops.
  /// Returns true if the edge was newly inserted.
  bool add_edge(node_id u, node_id v);

  /// Removes the edge {u, v} if present; returns true if removed.
  bool remove_edge(node_id u, node_id v);

  [[nodiscard]] bool has_edge(node_id u, node_id v) const;
  [[nodiscard]] std::span<const node_id> neighbors(node_id u) const {
    return adj_[u];
  }
  [[nodiscard]] std::size_t degree(node_id u) const { return adj_[u].size(); }

  /// All edges with u < v, sorted lexicographically.
  [[nodiscard]] std::vector<edge> edges() const;

  [[nodiscard]] friend bool operator==(const undirected_graph&, const undirected_graph&) = default;

  /// Subgraph induced by the nodes with mask[u] == true (same node-id
  /// space; masked-out nodes become isolated). Used for survivor
  /// topologies after crash failures.
  [[nodiscard]] undirected_graph induced(const std::vector<bool>& mask) const;

  /// Adopts pre-built adjacency lists wholesale — O(1), no per-edge
  /// insertion. Contract (asserted in debug builds): every list sorted
  /// ascending, no self-loops or duplicates, and the relation is
  /// symmetric (v in adj[u] iff u in adj[v]). This is how parallel
  /// constructions (digraph::symmetric_closure / symmetric_core with a
  /// thread pool) assemble their per-node results.
  [[nodiscard]] static undirected_graph from_adjacency(std::vector<std::vector<node_id>> adj);

 private:
  std::vector<std::vector<node_id>> adj_;  // each list sorted ascending
  std::size_t num_edges_{0};
};

}  // namespace cbtc::graph
