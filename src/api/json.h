// Minimal JSON document model shared by the scenario files
// (api/serialize.cpp) and the service wire format (api/wire.cpp).
//
// No external dependency: the grammar these layers need (objects,
// arrays, numbers, strings, booleans) fits in a small recursive
// descent parser, and one document tree keeps every writer and parser
// symmetric. Numbers keep their literal spelling (`raw`), so 64-bit
// integers and shortest-round-trip doubles survive a decode/encode
// cycle exactly — the wire layer's bitwise-determinism contract rests
// on that.
//
// The field helpers (`get_num`, `check_keys`, ...) implement the
// strict-parsing policy both consumers share: unknown keys and
// type-mismatched values are errors, never silently dropped.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cbtc::api::json {

struct jv {
  enum class kind { null, boolean, number, string, array, object };

  kind k{kind::null};
  bool b{false};
  double num{0.0};
  std::string raw;  // number literal as written (exact u64 round-trip)
  std::string str;
  std::vector<jv> items;
  std::vector<std::pair<std::string, jv>> fields;

  [[nodiscard]] static jv of(bool v);
  /// Throws std::invalid_argument for non-finite values (JSON has no
  /// inf/nan; writing one would produce a file every parser rejects).
  [[nodiscard]] static jv of(double v);
  [[nodiscard]] static jv of_u64(std::uint64_t v);
  [[nodiscard]] static jv of(std::string v);
  // Without this, string literals would silently decay to the bool
  // overload.
  [[nodiscard]] static jv of(const char* v) { return of(std::string(v)); }
  [[nodiscard]] static jv array();
  [[nodiscard]] static jv object();

  jv& add(std::string key, jv value) {
    fields.emplace_back(std::move(key), std::move(value));
    return *this;
  }
};

/// Pretty-prints `v` (2-space indent, scalar arrays on one line).
void write_value(std::ostream& os, const jv& v, int indent);

/// Parses one JSON value; throws std::invalid_argument with an
/// offset-annotated message on malformed input or trailing content.
[[nodiscard]] jv parse_document(std::string_view text);

// ---- object field access (strict: unknown keys are errors) ---------

[[nodiscard]] const jv* get(const jv& obj, std::string_view key);

void check_keys(const jv& obj, const char* where,
                std::initializer_list<std::string_view> allowed);

/// Throws std::invalid_argument("JSON: " + what) when !cond.
void require(bool cond, const std::string& what);

[[nodiscard]] double get_num(const jv& obj, std::string_view key, double fallback);
/// Exact for plain integer literals; accepts other spellings of an
/// exact non-negative integer (e.g. 1e3) but rejects fractions.
[[nodiscard]] std::uint64_t get_u64(const jv& obj, std::string_view key, std::uint64_t fallback);
[[nodiscard]] std::size_t get_count(const jv& obj, std::string_view key, std::size_t fallback);
[[nodiscard]] bool get_bool(const jv& obj, std::string_view key, bool fallback);
[[nodiscard]] std::string get_str(const jv& obj, std::string_view key, std::string fallback);

}  // namespace cbtc::api::json
