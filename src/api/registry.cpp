#include "api/registry.h"

#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

namespace cbtc::api {
namespace {

scenario_spec named(std::string name) {
  scenario_spec s;
  s.name = std::move(name);
  return s;
}

/// The paper's Section 5 workload: 100 nodes uniform in 1500 x 1500,
/// R = 500, p(d) = d^2, continuous (paper-matching) growth.
scenario_spec paper_base(std::string name) {
  scenario_spec s = named(std::move(name));
  s.deploy = {.kind = deployment_kind::uniform, .nodes = 100, .region_side = 1500.0};
  s.radio = {.path_loss_exponent = 2.0, .max_range = 500.0};
  s.cbtc.mode = algo::growth_mode::continuous;
  return s;
}

std::map<std::string, scenario_spec, std::less<>> built_ins() {
  std::map<std::string, scenario_spec, std::less<>> reg;
  const auto put = [&reg](scenario_spec s) { reg.insert_or_assign(s.name, std::move(s)); };

  {
    scenario_spec s = paper_base("paper_table1");
    s.opts = algo::optimization_set::all();
    put(std::move(s));
  }
  put(paper_base("paper_basic"));
  {
    scenario_spec s = paper_base("figure6");
    s.opts = algo::optimization_set::all();
    // Figure 6 is a single network; run(spec) uses its seed-0 instance.
    s.metrics.stretch = false;
    put(std::move(s));
  }
  {
    scenario_spec s = paper_base("paper_protocol");
    s.method = method_spec::protocol();
    s.cbtc.mode = algo::growth_mode::discrete;  // what agents actually run
    s.opts = {.shrink_back = true, .pairwise_removal = true};
    s.protocol.agent.round_timeout = 0.5;
    s.protocol.channel.base_delay = 0.01;  // reliable, low-latency channel
    put(std::move(s));
  }
  {
    scenario_spec s = named("dense_sensor_field");
    s.deploy = {.kind = deployment_kind::cluster,
                .nodes = 200,
                .region_side = 1500.0,
                .clusters = 5,
                .cluster_sigma = 150.0};
    s.cbtc.mode = algo::growth_mode::continuous;
    s.opts = algo::optimization_set::all();
    put(std::move(s));
  }
  {
    scenario_spec s = named("sparse_adhoc");
    s.deploy = {.kind = deployment_kind::uniform, .nodes = 60, .region_side = 2000.0};
    s.cbtc.mode = algo::growth_mode::continuous;
    s.opts = algo::optimization_set::all();
    put(std::move(s));
  }
  {
    scenario_spec s = named("grid_mesh");
    s.deploy = {.kind = deployment_kind::grid,
                .nodes = 144,
                .region_side = 1800.0,
                .grid_jitter = 0.3};
    s.cbtc.mode = algo::growth_mode::continuous;
    s.opts = algo::optimization_set::all();
    put(std::move(s));
  }
  {
    // The paper's workload under per-link lognormal shadowing: the
    // regime where unit-disk reasoning breaks (Sethu & Gerety).
    scenario_spec s = named("shadowed_field");
    s.deploy = {.kind = deployment_kind::uniform, .nodes = 120, .region_side = 1500.0};
    s.radio.propagation = {.kind = radio::propagation_kind::lognormal_shadowing,
                           .sigma_db = 4.0,
                           .clamp_db = 8.0};
    s.cbtc.mode = algo::growth_mode::continuous;
    // Theorem 3.6's angle witness is a unit-disk argument and breaks
    // preservation under per-link gains, so op3 runs as the gain-aware
    // removal (algo/gain_removal.h), whose witness is a cheaper
    // link-power path.
    s.opts = {.shrink_back = true, .gain_aware = true};
    put(std::move(s));
  }
  {
    // The same shadowed workload under Sethu-Gerety step topology
    // control — the non-uniform-path-loss comparison method.
    scenario_spec s = named("shadowed_field_stc");
    s.deploy = {.kind = deployment_kind::uniform, .nodes = 120, .region_side = 1500.0};
    s.radio.propagation = {.kind = radio::propagation_kind::lognormal_shadowing,
                           .sigma_db = 4.0,
                           .clamp_db = 8.0};
    s.method = method_spec::stc();
    put(std::move(s));
  }
  {
    // A planned mesh threaded between attenuating city blocks: links
    // crossing a building lose 9 dB.
    scenario_spec s = named("urban_obstacles");
    s.deploy = {.kind = deployment_kind::grid,
                .nodes = 144,
                .region_side = 1800.0,
                .grid_jitter = 0.3};
    s.radio.propagation.kind = radio::propagation_kind::obstacle_field;
    s.radio.propagation.obstacles = {
        {.box = {{300.0, 300.0}, {700.0, 650.0}}, .loss_db = 9.0},
        {.box = {{1000.0, 200.0}, {1400.0, 550.0}}, .loss_db = 9.0},
        {.box = {{250.0, 1000.0}, {650.0, 1450.0}}, .loss_db = 9.0},
        {.box = {{950.0, 950.0}, {1500.0, 1300.0}}, .loss_db = 9.0},
    };
    s.cbtc.mode = algo::growth_mode::continuous;
    // See shadowed_field: op3 under per-link gains is the gain-aware pass.
    s.opts = {.shrink_back = true, .gain_aware = true};
    put(std::move(s));
  }
  {
    // The obstacle mesh under Sethu-Gerety step topology control.
    scenario_spec s = named("urban_obstacles_stc");
    s.deploy = {.kind = deployment_kind::grid,
                .nodes = 144,
                .region_side = 1800.0,
                .grid_jitter = 0.3};
    s.radio.propagation.kind = radio::propagation_kind::obstacle_field;
    s.radio.propagation.obstacles = {
        {.box = {{300.0, 300.0}, {700.0, 650.0}}, .loss_db = 9.0},
        {.box = {{1000.0, 200.0}, {1400.0, 550.0}}, .loss_db = 9.0},
        {.box = {{250.0, 1000.0}, {650.0, 1450.0}}, .loss_db = 9.0},
        {.box = {{950.0, 950.0}, {1500.0, 1300.0}}, .loss_db = 9.0},
    };
    s.method = method_spec::stc();
    put(std::move(s));
  }
  return reg;
}

/// The built-in dynamic presets (scenario + sim composed).
std::map<std::string, dynamic_scenario, std::less<>> dynamic_built_ins() {
  std::map<std::string, dynamic_scenario, std::less<>> reg;
  const auto put = [&reg](dynamic_scenario d) {
    reg.insert_or_assign(d.scenario.name, std::move(d));
  };

  {
    // The canonical churn demo: mobile nodes under random crashes
    // (mirrors examples/scenarios/mobile_churn.json).
    dynamic_scenario d;
    d.scenario = named("mobile_churn");
    d.scenario.deploy = {.kind = deployment_kind::uniform, .nodes = 40, .region_side = 1200.0};
    d.scenario.method = method_spec::protocol();
    d.scenario.cbtc.mode = algo::growth_mode::discrete;
    d.scenario.protocol.agent.round_timeout = 0.25;
    d.scenario.protocol.channel.base_delay = 0.01;
    d.sim.horizon = 90.0;
    d.sim.settle = 15.0;
    d.sim.sample_every = 5.0;
    d.sim.mobility = {.kind = mobility_kind::random_waypoint,
                      .min_speed = 1.5,
                      .max_speed = 4.0,
                      .tick = 0.5,
                      .start = 15.0,
                      .until = 60.0};
    d.sim.failures = {.random_crashes = 4, .window_begin = 20.0, .window_end = 40.0};
    put(std::move(d));
  }
  {
    // Section 4's partition-rejoin scenario: one node crashes after
    // settle and restarts later; beacon powers must let it rejoin.
    dynamic_scenario d;
    d.scenario = named("crash_recovery");
    d.scenario.deploy = {.kind = deployment_kind::uniform, .nodes = 30, .region_side = 1000.0};
    d.scenario.method = method_spec::protocol();
    d.scenario.cbtc.mode = algo::growth_mode::discrete;
    d.scenario.protocol.agent.round_timeout = 0.25;
    d.scenario.protocol.channel.base_delay = 0.01;
    d.sim.horizon = 45.0;
    d.sim.settle = 12.0;
    d.sim.sample_every = 1.0;
    d.sim.failures.events.push_back({.node = 3, .time = 20.0, .restart = false});
    d.sim.failures.events.push_back({.node = 3, .time = 28.0, .restart = true});
    put(std::move(d));
  }
  {
    // Dense sampling over a clustered field with slow drift: the
    // workload the incremental live-neighbor index is built for.
    dynamic_scenario d;
    d.scenario = named("dense_mobile_field");
    d.scenario.deploy = {.kind = deployment_kind::cluster,
                         .nodes = 120,
                         .region_side = 1500.0,
                         .clusters = 4,
                         .cluster_sigma = 180.0};
    d.scenario.method = method_spec::protocol();
    d.scenario.cbtc.mode = algo::growth_mode::discrete;
    d.scenario.protocol.agent.round_timeout = 0.25;
    d.scenario.protocol.channel.base_delay = 0.01;
    d.sim.horizon = 60.0;
    d.sim.settle = 15.0;
    d.sim.sample_every = 1.0;
    d.sim.mobility = {.kind = mobility_kind::random_waypoint,
                      .min_speed = 0.5,
                      .max_speed = 2.0,
                      .tick = 0.5,
                      .start = 15.0};
    put(std::move(d));
  }
  {
    // mobile_churn under per-link lognormal shadowing: reconfiguration
    // where link budgets are properties of pairs, not distances.
    dynamic_scenario d;
    d.scenario = named("shadowed_field_mobile");
    d.scenario.deploy = {.kind = deployment_kind::uniform, .nodes = 40, .region_side = 1100.0};
    d.scenario.radio.propagation = {.kind = radio::propagation_kind::lognormal_shadowing,
                                    .sigma_db = 3.0,
                                    .clamp_db = 6.0};
    d.scenario.method = method_spec::protocol();
    d.scenario.cbtc.mode = algo::growth_mode::discrete;
    d.scenario.protocol.agent.round_timeout = 0.25;
    d.scenario.protocol.channel.base_delay = 0.01;
    d.sim.horizon = 60.0;
    d.sim.settle = 15.0;
    d.sim.sample_every = 5.0;
    d.sim.mobility = {.kind = mobility_kind::random_waypoint,
                      .min_speed = 1.0,
                      .max_speed = 3.0,
                      .tick = 0.5,
                      .start = 15.0,
                      .until = 45.0};
    d.sim.failures = {.random_crashes = 3, .window_begin = 20.0, .window_end = 35.0};
    put(std::move(d));
  }
  {
    // Crash/restart churn in the obstacle mesh: repairs must route
    // around attenuating blocks, not just distance.
    dynamic_scenario d;
    d.scenario = named("urban_obstacles_churn");
    d.scenario.deploy = {.kind = deployment_kind::grid,
                         .nodes = 64,
                         .region_side = 1200.0,
                         .grid_jitter = 0.3};
    d.scenario.radio.propagation.kind = radio::propagation_kind::obstacle_field;
    d.scenario.radio.propagation.obstacles = {
        {.box = {{250.0, 250.0}, {550.0, 500.0}}, .loss_db = 9.0},
        {.box = {{700.0, 600.0}, {1000.0, 950.0}}, .loss_db = 9.0},
    };
    d.scenario.method = method_spec::protocol();
    d.scenario.cbtc.mode = algo::growth_mode::discrete;
    d.scenario.protocol.agent.round_timeout = 0.25;
    d.scenario.protocol.channel.base_delay = 0.01;
    d.sim.horizon = 50.0;
    d.sim.settle = 12.0;
    d.sim.sample_every = 2.0;
    d.sim.failures = {.random_crashes = 4, .window_begin = 15.0, .window_end = 35.0};
    put(std::move(d));
  }
  {
    // Sink-collection data plane over the controlled topology: a static
    // lattice of sensors streams periodic readings to a corner sink
    // (mirrors examples/scenarios/convergecast_grid.json).
    dynamic_scenario d;
    d.scenario = named("convergecast_grid");
    d.scenario.deploy = {.kind = deployment_kind::grid,
                         .nodes = 64,
                         .region_side = 1200.0,
                         .grid_jitter = 0.0};
    d.scenario.method = method_spec::protocol();
    d.scenario.cbtc.mode = algo::growth_mode::discrete;
    d.scenario.protocol.agent.round_timeout = 0.25;
    d.scenario.protocol.channel.base_delay = 0.01;
    d.sim.horizon = 60.0;
    d.sim.settle = 10.0;
    d.sim.sample_every = 10.0;
    d.sim.traffic = {.period = 2.0, .sink = 0, .start = 10.0};
    put(std::move(d));
  }
  return reg;
}

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, scenario_spec, std::less<>>& registry() {
  static std::map<std::string, scenario_spec, std::less<>> reg = built_ins();
  return reg;
}

std::map<std::string, dynamic_scenario, std::less<>>& dynamic_registry() {
  static std::map<std::string, dynamic_scenario, std::less<>> reg = dynamic_built_ins();
  return reg;
}

}  // namespace

void register_scenario(scenario_spec spec) {
  if (spec.name.empty()) {
    throw std::invalid_argument("register_scenario: scenario name must not be empty");
  }
  const std::lock_guard<std::mutex> lock(registry_mutex());
  registry().insert_or_assign(spec.name, std::move(spec));
}

std::optional<scenario_spec> find_scenario(std::string_view name) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  const auto& reg = registry();
  const auto it = reg.find(name);
  if (it == reg.end()) return std::nullopt;
  return it->second;
}

scenario_spec get_scenario(std::string_view name) {
  if (auto s = find_scenario(name)) return *std::move(s);
  throw std::out_of_range("unknown scenario: " + std::string(name));
}

std::vector<std::string> scenario_names() {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, spec] : registry()) names.push_back(name);
  return names;
}

void register_dynamic_scenario(dynamic_scenario preset) {
  if (preset.scenario.name.empty()) {
    throw std::invalid_argument("register_dynamic_scenario: scenario name must not be empty");
  }
  const std::lock_guard<std::mutex> lock(registry_mutex());
  dynamic_registry().insert_or_assign(preset.scenario.name, std::move(preset));
}

std::optional<dynamic_scenario> find_dynamic_scenario(std::string_view name) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  const auto& reg = dynamic_registry();
  const auto it = reg.find(name);
  if (it == reg.end()) return std::nullopt;
  return it->second;
}

dynamic_scenario get_dynamic_scenario(std::string_view name) {
  if (auto d = find_dynamic_scenario(name)) return *std::move(d);
  throw std::out_of_range("unknown dynamic scenario: " + std::string(name));
}

std::vector<std::string> dynamic_scenario_names() {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<std::string> names;
  names.reserve(dynamic_registry().size());
  for (const auto& [name, preset] : dynamic_registry()) names.push_back(name);
  return names;
}

}  // namespace cbtc::api
