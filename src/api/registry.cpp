#include "api/registry.h"

#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

namespace cbtc::api {
namespace {

scenario_spec named(std::string name) {
  scenario_spec s;
  s.name = std::move(name);
  return s;
}

/// The paper's Section 5 workload: 100 nodes uniform in 1500 x 1500,
/// R = 500, p(d) = d^2, continuous (paper-matching) growth.
scenario_spec paper_base(std::string name) {
  scenario_spec s = named(std::move(name));
  s.deploy = {.kind = deployment_kind::uniform, .nodes = 100, .region_side = 1500.0};
  s.radio = {.path_loss_exponent = 2.0, .max_range = 500.0};
  s.cbtc.mode = algo::growth_mode::continuous;
  return s;
}

std::map<std::string, scenario_spec, std::less<>> built_ins() {
  std::map<std::string, scenario_spec, std::less<>> reg;
  const auto put = [&reg](scenario_spec s) { reg.insert_or_assign(s.name, std::move(s)); };

  {
    scenario_spec s = paper_base("paper_table1");
    s.opts = algo::optimization_set::all();
    put(std::move(s));
  }
  put(paper_base("paper_basic"));
  {
    scenario_spec s = paper_base("figure6");
    s.opts = algo::optimization_set::all();
    // Figure 6 is a single network; run(spec) uses its seed-0 instance.
    s.metrics.stretch = false;
    put(std::move(s));
  }
  {
    scenario_spec s = paper_base("paper_protocol");
    s.method = method_spec::protocol();
    s.cbtc.mode = algo::growth_mode::discrete;  // what agents actually run
    s.opts = {.shrink_back = true, .pairwise_removal = true};
    s.protocol.agent.round_timeout = 0.5;
    s.protocol.channel.base_delay = 0.01;  // reliable, low-latency channel
    put(std::move(s));
  }
  {
    scenario_spec s = named("dense_sensor_field");
    s.deploy = {.kind = deployment_kind::cluster,
                .nodes = 200,
                .region_side = 1500.0,
                .clusters = 5,
                .cluster_sigma = 150.0};
    s.cbtc.mode = algo::growth_mode::continuous;
    s.opts = algo::optimization_set::all();
    put(std::move(s));
  }
  {
    scenario_spec s = named("sparse_adhoc");
    s.deploy = {.kind = deployment_kind::uniform, .nodes = 60, .region_side = 2000.0};
    s.cbtc.mode = algo::growth_mode::continuous;
    s.opts = algo::optimization_set::all();
    put(std::move(s));
  }
  {
    scenario_spec s = named("grid_mesh");
    s.deploy = {.kind = deployment_kind::grid,
                .nodes = 144,
                .region_side = 1800.0,
                .grid_jitter = 0.3};
    s.cbtc.mode = algo::growth_mode::continuous;
    s.opts = algo::optimization_set::all();
    put(std::move(s));
  }
  return reg;
}

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, scenario_spec, std::less<>>& registry() {
  static std::map<std::string, scenario_spec, std::less<>> reg = built_ins();
  return reg;
}

}  // namespace

void register_scenario(scenario_spec spec) {
  if (spec.name.empty()) {
    throw std::invalid_argument("register_scenario: scenario name must not be empty");
  }
  const std::lock_guard<std::mutex> lock(registry_mutex());
  registry().insert_or_assign(spec.name, std::move(spec));
}

std::optional<scenario_spec> find_scenario(std::string_view name) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  const auto& reg = registry();
  const auto it = reg.find(name);
  if (it == reg.end()) return std::nullopt;
  return it->second;
}

scenario_spec get_scenario(std::string_view name) {
  if (auto s = find_scenario(name)) return *std::move(s);
  throw std::out_of_range("unknown scenario: " + std::string(name));
}

std::vector<std::string> scenario_names() {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, spec] : registry()) names.push_back(name);
  return names;
}

}  // namespace cbtc::api
