#include "api/dispatch.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "api/wire.h"
#include "net/frame.h"
#include "net/socket.h"

namespace cbtc::api {
namespace {

enum class block_state : unsigned char { pending, inflight, done };

/// Bounded exponential backoff: base * 2^failures, capped at 64x.
std::chrono::milliseconds backoff_delay(int base_ms, std::size_t consecutive_failures) {
  const std::size_t shift = std::min<std::size_t>(consecutive_failures, 6);
  return std::chrono::milliseconds(static_cast<long long>(base_ms) << shift);
}

}  // namespace

endpoint parse_endpoint(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    throw std::invalid_argument("endpoint '" + spec + "' is not host:port");
  }
  endpoint ep;
  ep.host = spec.substr(0, colon);
  const std::string port = spec.substr(colon + 1);
  unsigned long value = 0;
  try {
    std::size_t used = 0;
    value = std::stoul(port, &used);
    if (used != port.size()) throw std::invalid_argument(port);
  } catch (const std::exception&) {
    throw std::invalid_argument("endpoint '" + spec + "' has a malformed port");
  }
  if (value == 0 || value > 65535) {
    throw std::invalid_argument("endpoint '" + spec + "' port must be in [1, 65535]");
  }
  ep.port = static_cast<std::uint16_t>(value);
  return ep;
}

std::vector<endpoint> parse_endpoint_list(const std::string& csv) {
  std::vector<endpoint> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item =
        csv.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(parse_endpoint(item));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (out.empty()) throw std::invalid_argument("endpoint list '" + csv + "' is empty");
  return out;
}

shard_dispatcher::shard_dispatcher(dispatch_config cfg) : cfg_(std::move(cfg)) {
  if (cfg_.endpoints.empty()) {
    throw std::invalid_argument("shard_dispatcher needs at least one endpoint");
  }
}

template <class Report>
Report shard_dispatcher::dispatch(const wire::batch_request& base, seed_range seeds) {
  Report total;
  stats_ = dispatch_stats{};
  if (seeds.count == 0) return total;

  const std::uint64_t num_blocks = engine::num_batch_blocks(seeds);
  const std::uint64_t chunk =
      cfg_.blocks_per_request != 0
          ? cfg_.blocks_per_request
          : std::max<std::uint64_t>(
                1, num_blocks / (4 * static_cast<std::uint64_t>(cfg_.endpoints.size())));

  struct shared_state {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<block_state> state;
    std::vector<Report> partials;
    std::vector<std::size_t> retries;
    std::uint64_t done_count{0};
    std::string fatal;
    dispatch_stats stats;
  } st;
  st.state.assign(static_cast<std::size_t>(num_blocks), block_state::pending);
  st.partials.resize(static_cast<std::size_t>(num_blocks));
  st.retries.assign(static_cast<std::size_t>(num_blocks), 0);
  st.stats.blocks = num_blocks;

  const auto worker = [&](const endpoint& ep) {
    std::size_t consecutive_failures = 0;
    for (;;) {
      // ---- claim a contiguous run of pending blocks ----------------
      block_range claim{0, 0};
      {
        std::unique_lock<std::mutex> lk(st.mu);
        for (;;) {
          if (!st.fatal.empty() || st.done_count == num_blocks) return;
          std::uint64_t first = 0;
          while (first < num_blocks &&
                 st.state[static_cast<std::size_t>(first)] != block_state::pending) {
            ++first;
          }
          if (first < num_blocks) {
            std::uint64_t count = 0;
            while (first + count < num_blocks && count < chunk &&
                   st.state[static_cast<std::size_t>(first + count)] == block_state::pending) {
              st.state[static_cast<std::size_t>(first + count)] = block_state::inflight;
              ++count;
            }
            claim = {first, count};
            ++st.stats.requests;
            break;
          }
          // Everything is inflight on other workers — wait for either
          // completion or a failure that requeues blocks.
          st.cv.wait_for(lk, std::chrono::milliseconds(50));
        }
      }

      // ---- run one request against the endpoint --------------------
      bool ok = false;
      std::string error;
      try {
        net::tcp_stream conn = net::tcp_stream::connect(ep.host, ep.port, cfg_.connect_timeout_ms);
        net::write_frame(conn, wire::encode_hello(), cfg_.io_timeout_ms);
        wire::check_hello(wire::decode_message(net::read_frame(conn, cfg_.io_timeout_ms)));

        wire::batch_request req = base;
        req.blocks = claim;
        net::write_frame(conn, wire::encode_batch_request(req), cfg_.io_timeout_ms);

        for (;;) {
          const wire::message msg =
              wire::decode_message(net::read_frame(conn, cfg_.io_timeout_ms));
          if (msg.type == wire::message_type::block_partial) {
            Report partial;
            const std::uint64_t block = wire::decode_block_partial(msg, partial);
            if (block >= num_blocks) {
              throw std::invalid_argument("shard sent out-of-range block " +
                                          std::to_string(block));
            }
            const std::lock_guard<std::mutex> lk(st.mu);
            block_state& s = st.state[static_cast<std::size_t>(block)];
            if (s == block_state::done) {
              // Retried or shard-duplicated block that already landed:
              // first partial wins.
              ++st.stats.duplicate_partials;
            } else {
              st.partials[static_cast<std::size_t>(block)] = std::move(partial);
              s = block_state::done;
              ++st.done_count;
            }
          } else if (msg.type == wire::message_type::done) {
            ok = true;
            break;
          } else if (msg.type == wire::message_type::error) {
            throw std::runtime_error("shard " + ep.host + ":" + std::to_string(ep.port) +
                                     " reported: " + wire::decode_error(msg));
          } else {
            throw std::invalid_argument("unexpected message from shard");
          }
        }
      } catch (const std::exception& e) {
        error = e.what();
      }

      // ---- settle the claim ----------------------------------------
      bool endpoint_dead = false;
      {
        const std::lock_guard<std::mutex> lk(st.mu);
        // Requeue whatever the request left unfinished. On success
        // this is a shard protocol violation (done before finishing),
        // handled the same way: another shard reruns the blocks.
        bool exhausted = false;
        for (std::uint64_t b = claim.first; b < claim.first + claim.count; ++b) {
          block_state& s = st.state[static_cast<std::size_t>(b)];
          if (s != block_state::inflight) continue;
          s = block_state::pending;
          ++st.stats.requeued_blocks;
          if (++st.retries[static_cast<std::size_t>(b)] > cfg_.max_block_retries) {
            exhausted = true;
          }
        }
        if (exhausted && st.fatal.empty()) {
          st.fatal = "a block exceeded " + std::to_string(cfg_.max_block_retries) +
                     " retries; last shard error: " + (error.empty() ? "(none)" : error);
        }
        if (ok) {
          consecutive_failures = 0;
        } else {
          ++st.stats.connection_failures;
          ++consecutive_failures;
          if (consecutive_failures >= cfg_.max_endpoint_failures) {
            ++st.stats.dead_endpoints;
            endpoint_dead = true;
          }
        }
      }
      st.cv.notify_all();
      if (endpoint_dead) return;
      if (!ok) std::this_thread::sleep_for(backoff_delay(cfg_.backoff_base_ms,
                                                         consecutive_failures - 1));
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(cfg_.endpoints.size());
  for (const endpoint& ep : cfg_.endpoints) threads.emplace_back(worker, std::cref(ep));
  for (std::thread& t : threads) t.join();

  stats_ = st.stats;
  if (!st.fatal.empty()) throw std::runtime_error("dispatch failed: " + st.fatal);
  if (st.done_count != num_blocks) {
    throw std::runtime_error("dispatch failed: only " + std::to_string(st.done_count) + " of " +
                             std::to_string(num_blocks) +
                             " blocks completed (every endpoint is dead)");
  }
  // The engine's merge, verbatim: block-index order.
  for (const Report& p : st.partials) total.merge(p);
  return total;
}

batch_report shard_dispatcher::run_batch(const scenario_spec& spec, seed_range seeds) {
  wire::batch_request base;
  base.mode = wire::batch_mode::static_runs;
  base.scenario = spec;
  base.seeds = seeds;
  base.threads = cfg_.shard_threads;
  return dispatch<batch_report>(base, seeds);
}

dynamic_batch_report shard_dispatcher::run_batch(const scenario_spec& spec, const sim_spec& sim,
                                                 seed_range seeds) {
  wire::batch_request base;
  base.mode = wire::batch_mode::dynamic_runs;
  base.scenario = spec;
  base.sim = sim;
  base.seeds = seeds;
  base.threads = cfg_.shard_threads;
  return dispatch<dynamic_batch_report>(base, seeds);
}

lifetime_batch_report shard_dispatcher::run_batch(const scenario_spec& spec,
                                                  const lifetime_spec& life, seed_range seeds) {
  wire::batch_request base;
  base.mode = wire::batch_mode::lifetime_runs;
  base.scenario = spec;
  base.lifetime = life;
  base.seeds = seeds;
  base.threads = cfg_.shard_threads;
  return dispatch<lifetime_batch_report>(base, seeds);
}

}  // namespace cbtc::api
