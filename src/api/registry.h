// Named-scenario registry: canonical workloads, one registration away.
//
// Built-in names (see registry.cpp for the exact parameters):
//   paper_table1       — the paper's Section 5 workload, all
//                        optimizations, alpha = 5*pi/6 (Table 1's
//                        headline configuration)
//   paper_basic        — same workload, no optimizations
//   paper_protocol     — same workload run by the distributed protocol
//                        on the event simulator (reliable channel)
//   figure6            — the single 100-node network of Figure 6
//   dense_sensor_field — 200 clustered sensors in a 1500^2 field
//   sparse_adhoc       — 60 nodes thin in a 2000^2 region (boundary-
//                        node heavy)
//   grid_mesh          — 144 nodes on a jittered grid (planned mesh)
//
// New workloads register at runtime with `register_scenario`; names are
// unique and registration overwrites.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/scenario.h"

namespace cbtc::api {

/// Registers (or replaces) `spec` under `spec.name`.
/// Throws std::invalid_argument if the name is empty.
void register_scenario(scenario_spec spec);

/// Looks a scenario up by name; nullopt when unknown.
[[nodiscard]] std::optional<scenario_spec> find_scenario(std::string_view name);

/// Like find_scenario but throws std::out_of_range for unknown names.
[[nodiscard]] scenario_spec get_scenario(std::string_view name);

/// All registered names, sorted.
[[nodiscard]] std::vector<std::string> scenario_names();

}  // namespace cbtc::api
