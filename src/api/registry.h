// Named-scenario registry: canonical workloads, one registration away.
//
// Static built-in names (see registry.cpp for the exact parameters):
//   paper_table1       — the paper's Section 5 workload, all
//                        optimizations, alpha = 5*pi/6 (Table 1's
//                        headline configuration)
//   paper_basic        — same workload, no optimizations
//   paper_protocol     — same workload run by the distributed protocol
//                        on the event simulator (reliable channel)
//   figure6            — the single 100-node network of Figure 6
//   dense_sensor_field — 200 clustered sensors in a 1500^2 field
//   sparse_adhoc       — 60 nodes thin in a 2000^2 region (boundary-
//                        node heavy)
//   grid_mesh          — 144 nodes on a jittered grid (planned mesh)
//
// Dynamic built-ins (scenario + sim_spec presets; `cbtc_cli scenarios`
// lists both families):
//   mobile_churn       — 40 protocol nodes, random-waypoint motion,
//                        4 random crashes (the canonical churn demo)
//   crash_recovery     — static field, crash + restart of one node
//                        (Section 4's partition-rejoin scenario)
//   dense_mobile_field — 120 clustered nodes, slow waypoint drift,
//                        densely sampled
//
// New workloads register at runtime with `register_scenario` /
// `register_dynamic_scenario`; names are unique per family and
// registration overwrites.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/scenario.h"
#include "api/sim_spec.h"

namespace cbtc::api {

/// Registers (or replaces) `spec` under `spec.name`.
/// Throws std::invalid_argument if the name is empty.
void register_scenario(scenario_spec spec);

/// Looks a scenario up by name; nullopt when unknown.
[[nodiscard]] std::optional<scenario_spec> find_scenario(std::string_view name);

/// Like find_scenario but throws std::out_of_range for unknown names.
[[nodiscard]] scenario_spec get_scenario(std::string_view name);

/// All registered names, sorted.
[[nodiscard]] std::vector<std::string> scenario_names();

/// A named dynamic workload: deployment + radio + method (the static
/// scenario) composed with what happens after deployment (the sim).
struct dynamic_scenario {
  scenario_spec scenario{};
  sim_spec sim{};
};

/// Registers (or replaces) a dynamic preset under
/// `preset.scenario.name`. Throws std::invalid_argument if empty.
void register_dynamic_scenario(dynamic_scenario preset);

/// Looks a dynamic preset up by name; nullopt when unknown.
[[nodiscard]] std::optional<dynamic_scenario> find_dynamic_scenario(std::string_view name);

/// Like find_dynamic_scenario but throws std::out_of_range.
[[nodiscard]] dynamic_scenario get_dynamic_scenario(std::string_view name);

/// All registered dynamic preset names, sorted.
[[nodiscard]] std::vector<std::string> dynamic_scenario_names();

}  // namespace cbtc::api
