// cbtc::api — the library's single front door.
//
//   #include "api/api.h"
//
//   cbtc::api::engine eng;
//   auto spec  = cbtc::api::get_scenario("paper_table1");
//   auto one   = eng.run(spec);                        // one instance
//   auto batch = eng.run_batch(spec, {0, 100}, 4);     // 100 seeds, 4 threads
//
//   cbtc::api::sim_spec dyn;                           // churn / mobility
//   dyn.failures = {.random_crashes = 5, .window_begin = 20, .window_end = 40};
//   auto report = eng.run_dynamic(spec, dyn);
//
// See scenario.h (what to run), sim_spec.h (what happens over time),
// report.h (what you get back), engine.h (how it runs), registry.h
// (canonical workloads), serialize.h (JSON scenario files).
#pragma once

#include "api/engine.h"     // IWYU pragma: export
#include "api/registry.h"   // IWYU pragma: export
#include "api/report.h"     // IWYU pragma: export
#include "api/scenario.h"   // IWYU pragma: export
#include "api/serialize.h"  // IWYU pragma: export
#include "api/sim_spec.h"   // IWYU pragma: export
