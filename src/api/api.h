// cbtc::api — the library's single front door.
//
//   #include "api/api.h"
//
//   cbtc::api::engine eng;
//   auto spec  = cbtc::api::get_scenario("paper_table1");
//   auto one   = eng.run(spec);                        // one instance
//   auto batch = eng.run_batch(spec, {0, 100}, 4);     // 100 seeds, 4 threads
//
// See scenario.h (what to run), report.h (what you get back),
// engine.h (how it runs), registry.h (canonical workloads).
#pragma once

#include "api/engine.h"    // IWYU pragma: export
#include "api/registry.h"  // IWYU pragma: export
#include "api/report.h"    // IWYU pragma: export
#include "api/scenario.h"  // IWYU pragma: export
