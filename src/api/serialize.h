// JSON scenario files: pin experiment configs in version control and
// feed them to `cbtc_cli sweep --file scenario.json`.
//
// A scenario file is a JSON object with a "scenario" section (the
// static scenario_spec), an optional "sim" section (the dynamic
// sim_spec), and an optional "lifetime" section (the battery-attrition
// lifetime_spec, including the adaptation policy); a bare scenario
// object (no "scenario" key) is accepted too. Every field is optional
// and defaults to the corresponding spec default, so files only state
// what they change:
//
//   {
//     "scenario": {
//       "name": "mobile_churn",
//       "deployment": {"kind": "uniform", "nodes": 40, "region_side": 1200},
//       "method": "protocol",
//       "cbtc": {"alpha": 2.618, "mode": "discrete"}
//     },
//     "sim": {
//       "horizon": 120, "settle": 15, "sample_every": 5,
//       "beacons": {"interval": 1.0, "miss_limit": 3},
//       "mobility": {"kind": "random_waypoint", "max_speed": 6.0},
//       "failures": {"random_crashes": 4, "window": [20, 60]},
//       "traffic": {"period": 2.0, "sink": 0}
//     },
//     "lifetime": {"battery_rounds": 30, "policy": "energy_balanced",
//                  "convergecast": true, "sink": 0}
//   }
//
// The writer emits every field (a saved file is a complete, durable
// record of the experiment even if spec defaults change later); the
// parser rejects unknown keys so typos fail loudly instead of being
// silently ignored.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "api/scenario.h"
#include "api/sim_spec.h"

namespace cbtc::api {

/// A (de)serialized experiment: static scenario + optional dynamics +
/// optional lifetime experiment.
struct scenario_file {
  scenario_spec scenario{};
  std::optional<sim_spec> sim;
  std::optional<lifetime_spec> lifetime;
};

/// Serializes to pretty-printed JSON (doubles round-trip exactly).
[[nodiscard]] std::string to_json(const scenario_file& file);
[[nodiscard]] std::string to_json(const scenario_spec& spec);

/// Parses a scenario file; throws std::invalid_argument with a
/// position-annotated message on malformed JSON or unknown keys.
[[nodiscard]] scenario_file parse_scenario_json(std::string_view text);

/// File I/O convenience wrappers; throw std::runtime_error on I/O
/// failure (and propagate parse errors).
[[nodiscard]] scenario_file load_scenario_file(const std::string& path);
void save_scenario_file(const std::string& path, const scenario_file& file);

}  // namespace cbtc::api
