// Multi-machine batch dispatch: splits a seed range's blocks across
// cbtc_serve shards and merges the streamed partials.
//
// Determinism contract: the dispatcher produces results bitwise
// identical to in-process engine::run_batch, independent of shard
// count, block-to-shard assignment, timing, and shard failures. That
// holds because (a) the batch decomposes into the engine's fixed seed
// blocks, (b) every block partial crosses the wire exactly (see
// api/wire.h), and (c) partials merge in block-index order — the same
// merge the engine performs. Failures only move blocks between
// shards; they never change what any block computes.
//
// Failure handling: one worker per endpoint claims contiguous runs of
// pending blocks. A connection failure or frame timeout requeues the
// run's unfinished blocks (bounded per-block retries, exponential
// backoff per endpoint); duplicate partials — retried blocks that had
// already landed, or a shard sending twice — are suppressed by block
// id, first wins. An endpoint is abandoned after a row of consecutive
// failures; dispatch fails only when a block exhausts its retries or
// every endpoint is dead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "api/engine.h"
#include "api/report.h"
#include "api/scenario.h"
#include "api/sim_spec.h"

namespace cbtc::api {

namespace wire {
struct batch_request;
}

struct endpoint {
  std::string host;
  std::uint16_t port{0};
};

/// Parses "host:port" (throws std::invalid_argument).
[[nodiscard]] endpoint parse_endpoint(const std::string& spec);

/// Parses a comma-separated endpoint list: "hostA:1234,hostB:1234".
[[nodiscard]] std::vector<endpoint> parse_endpoint_list(const std::string& csv);

struct dispatch_config {
  std::vector<endpoint> endpoints;
  /// Engine threads on each shard (0 = the shard's own default).
  unsigned shard_threads{0};
  int connect_timeout_ms{5000};
  /// Per-frame receive/send deadline — bounds how long a hung shard
  /// can hold its blocks before they requeue elsewhere.
  int io_timeout_ms{60000};
  /// A block that failed (connection lost / timed out / shard error)
  /// this many times fails the whole dispatch.
  std::size_t max_block_retries{3};
  /// Base of the per-endpoint exponential backoff after a failure.
  int backoff_base_ms{50};
  /// Consecutive failures before an endpoint is declared dead.
  std::size_t max_endpoint_failures{3};
  /// Blocks per request; 0 sizes requests so each endpoint gets ~4
  /// (keeps shards busy while bounding requeue cost on failure).
  std::uint64_t blocks_per_request{0};
};

/// Observability counters for one dispatch run.
struct dispatch_stats {
  std::uint64_t blocks{0};
  std::uint64_t requests{0};
  std::uint64_t requeued_blocks{0};
  std::uint64_t duplicate_partials{0};
  std::uint64_t connection_failures{0};
  std::size_t dead_endpoints{0};
};

class shard_dispatcher {
 public:
  explicit shard_dispatcher(dispatch_config cfg);

  /// Distributed equivalents of engine::run_batch — same aggregates,
  /// bit for bit. Throw std::runtime_error when the batch cannot
  /// complete (retries exhausted / every endpoint dead).
  [[nodiscard]] batch_report run_batch(const scenario_spec& spec, seed_range seeds);
  [[nodiscard]] dynamic_batch_report run_batch(const scenario_spec& spec, const sim_spec& sim,
                                               seed_range seeds);
  [[nodiscard]] lifetime_batch_report run_batch(const scenario_spec& spec,
                                                const lifetime_spec& life, seed_range seeds);

  /// Counters from the most recent run_batch.
  [[nodiscard]] const dispatch_stats& stats() const { return stats_; }

 private:
  template <class Report>
  Report dispatch(const wire::batch_request& base, seed_range seeds);

  dispatch_config cfg_;
  dispatch_stats stats_;
};

}  // namespace cbtc::api
