#include "api/serialize.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "api/json.h"
#include "api/serialize_detail.h"

namespace cbtc::api {

using json::check_keys;
using json::get;
using json::get_bool;
using json::get_count;
using json::get_num;
using json::get_str;
using json::get_u64;
using json::jv;
using json::require;

std::string lifetime_policy_name(lifetime_policy p) {
  switch (p) {
    case lifetime_policy::plain_cbtc: return "plain_cbtc";
    case lifetime_policy::energy_balanced: return "energy_balanced";
    case lifetime_policy::cooperative_adaptation: return "cooperative_adaptation";
  }
  return "plain_cbtc";
}

lifetime_policy parse_lifetime_policy(const std::string& name) {
  if (name == "plain_cbtc" || name == "plain") return lifetime_policy::plain_cbtc;
  if (name == "energy_balanced" || name == "balanced") return lifetime_policy::energy_balanced;
  if (name == "cooperative_adaptation" || name == "cooperative") {
    return lifetime_policy::cooperative_adaptation;
  }
  throw std::invalid_argument("unknown lifetime policy '" + name + "'");
}

namespace {

// ---- enum names ----------------------------------------------------

std::string deployment_name(deployment_kind k) {
  switch (k) {
    case deployment_kind::uniform: return "uniform";
    case deployment_kind::cluster: return "cluster";
    case deployment_kind::grid: return "grid";
    case deployment_kind::fixed: return "fixed";
    case deployment_kind::ring: return "ring";
    case deployment_kind::tree: return "tree";
    case deployment_kind::star: return "star";
  }
  return "uniform";
}

deployment_kind parse_deployment(const std::string& name) {
  if (name == "uniform") return deployment_kind::uniform;
  if (name == "cluster") return deployment_kind::cluster;
  if (name == "grid") return deployment_kind::grid;
  if (name == "fixed") return deployment_kind::fixed;
  if (name == "ring") return deployment_kind::ring;
  if (name == "tree") return deployment_kind::tree;
  if (name == "star") return deployment_kind::star;
  throw std::invalid_argument("scenario JSON: unknown deployment kind '" + name + "'");
}

std::string propagation_name(radio::propagation_kind k) {
  switch (k) {
    case radio::propagation_kind::isotropic: return "isotropic";
    case radio::propagation_kind::lognormal_shadowing: return "lognormal_shadowing";
    case radio::propagation_kind::obstacle_field: return "obstacle_field";
  }
  return "isotropic";
}

radio::propagation_kind parse_propagation_kind(const std::string& name) {
  if (name == "isotropic") return radio::propagation_kind::isotropic;
  if (name == "lognormal_shadowing" || name == "shadowing") {
    return radio::propagation_kind::lognormal_shadowing;
  }
  if (name == "obstacle_field" || name == "obstacles") {
    return radio::propagation_kind::obstacle_field;
  }
  throw std::invalid_argument("scenario JSON: unknown propagation kind '" + name + "'");
}

std::string mobility_name(mobility_kind k) {
  switch (k) {
    case mobility_kind::none: return "none";
    case mobility_kind::random_waypoint: return "random_waypoint";
    case mobility_kind::bouncing: return "bouncing";
  }
  return "none";
}

mobility_kind parse_mobility(const std::string& name) {
  if (name == "none") return mobility_kind::none;
  if (name == "random_waypoint") return mobility_kind::random_waypoint;
  if (name == "bouncing") return mobility_kind::bouncing;
  throw std::invalid_argument("scenario JSON: unknown mobility kind '" + name + "'");
}

// ---- scenario_spec components <-> jv -------------------------------

jv deployment_to_jv(const deployment_spec& d) {
  jv o = jv::object();
  o.add("kind", jv::of(deployment_name(d.kind)));
  o.add("nodes", jv::of_u64(d.nodes));
  o.add("region_side", jv::of(d.region_side));
  o.add("clusters", jv::of_u64(d.clusters));
  o.add("cluster_sigma", jv::of(d.cluster_sigma));
  o.add("grid_jitter", jv::of(d.grid_jitter));
  // Structured-layout knobs: emitted only for the kinds that consume
  // them, so pre-existing files keep their exact shape.
  if (d.kind == deployment_kind::tree) o.add("tree_branching", jv::of_u64(d.tree_branching));
  if (d.kind == deployment_kind::star) o.add("star_arms", jv::of_u64(d.star_arms));
  if (d.kind == deployment_kind::fixed) {
    jv pts = jv::array();
    for (const geom::vec2& p : d.fixed) {
      jv pair = jv::array();
      pair.items.push_back(jv::of(p.x));
      pair.items.push_back(jv::of(p.y));
      pts.items.push_back(std::move(pair));
    }
    o.add("positions", std::move(pts));
  }
  return o;
}

deployment_spec deployment_from_jv(const jv& o) {
  check_keys(o, "deployment", {"kind", "nodes", "region_side", "clusters", "cluster_sigma",
                               "grid_jitter", "tree_branching", "star_arms", "positions"});
  deployment_spec d;
  d.kind = parse_deployment(get_str(o, "kind", "uniform"));
  d.nodes = get_count(o, "nodes", d.nodes);
  d.region_side = get_num(o, "region_side", d.region_side);
  d.clusters = get_count(o, "clusters", d.clusters);
  d.cluster_sigma = get_num(o, "cluster_sigma", d.cluster_sigma);
  d.grid_jitter = get_num(o, "grid_jitter", d.grid_jitter);
  d.tree_branching = get_count(o, "tree_branching", d.tree_branching);
  d.star_arms = get_count(o, "star_arms", d.star_arms);
  if (const jv* pts = get(o, "positions")) {
    require(d.kind == deployment_kind::fixed,
            "positions are only valid for deployment kind \"fixed\"");
    require(pts->k == jv::kind::array, "positions must be an array of [x, y] pairs");
    for (const jv& pair : pts->items) {
      require(pair.k == jv::kind::array && pair.items.size() == 2 &&
                  pair.items[0].k == jv::kind::number && pair.items[1].k == jv::kind::number,
              "each position must be an [x, y] number pair");
      d.fixed.push_back({pair.items[0].num, pair.items[1].num});
    }
    if (d.kind == deployment_kind::fixed) d.nodes = d.fixed.size();
  }
  require(d.kind != deployment_kind::fixed || !d.fixed.empty(),
          "fixed deployment needs a non-empty positions array");
  return d;
}

/// Emits only the fields the kind consumes; isotropic propagation is
/// the default and is omitted entirely by the caller, so existing
/// scenario files keep their exact shape.
jv propagation_to_jv(const propagation_spec& p) {
  jv o = jv::object();
  o.add("kind", jv::of(propagation_name(p.kind)));
  if (p.kind == radio::propagation_kind::lognormal_shadowing) {
    o.add("sigma_db", jv::of(p.sigma_db));
    o.add("clamp_db", jv::of(p.clamp_db));
    o.add("seed", jv::of_u64(p.seed));
  }
  if (p.kind == radio::propagation_kind::obstacle_field) {
    jv obs = jv::array();
    for (const radio::obstacle& ob : p.obstacles) {
      jv e = jv::object();
      jv box = jv::array();
      box.items.push_back(jv::of(ob.box.min.x));
      box.items.push_back(jv::of(ob.box.min.y));
      box.items.push_back(jv::of(ob.box.max.x));
      box.items.push_back(jv::of(ob.box.max.y));
      e.add("box", std::move(box));
      e.add("loss_db", jv::of(ob.loss_db));
      obs.items.push_back(std::move(e));
    }
    o.add("obstacles", std::move(obs));
  }
  return o;
}

propagation_spec propagation_from_jv(const jv& o) {
  require(o.k == jv::kind::object, "radio.propagation must be an object");
  check_keys(o, "radio.propagation", {"kind", "sigma_db", "clamp_db", "seed", "obstacles"});
  propagation_spec p;
  p.kind = parse_propagation_kind(get_str(o, "kind", "isotropic"));
  // Kind-foreign keys are rejected, not dropped: a stray sigma_db on
  // an isotropic block almost certainly means the kind is wrong, and
  // silently running without it would also vanish on re-serialization.
  const bool shadowing_kind = p.kind == radio::propagation_kind::lognormal_shadowing;
  for (const std::string_view key : {"sigma_db", "clamp_db", "seed"}) {
    require(shadowing_kind || get(o, key) == nullptr,
            std::string(key) + " is only valid for propagation kind \"lognormal_shadowing\"");
  }
  p.sigma_db = get_num(o, "sigma_db", p.sigma_db);
  p.clamp_db = get_num(o, "clamp_db", p.clamp_db);
  p.seed = get_u64(o, "seed", p.seed);
  require(p.sigma_db >= 0.0, "radio.propagation.sigma_db must be non-negative");
  require(p.clamp_db >= 0.0, "radio.propagation.clamp_db must be non-negative");
  if (const jv* obs = get(o, "obstacles")) {
    require(p.kind == radio::propagation_kind::obstacle_field,
            "obstacles are only valid for propagation kind \"obstacle_field\"");
    require(obs->k == jv::kind::array, "radio.propagation.obstacles must be an array");
    for (const jv& e : obs->items) {
      require(e.k == jv::kind::object, "each obstacle must be an object");
      check_keys(e, "obstacle", {"box", "loss_db"});
      const jv* box = get(e, "box");
      require(box != nullptr && box->k == jv::kind::array && box->items.size() == 4,
              "obstacle.box must be an [x0, y0, x1, y1] array");
      for (const jv& c : box->items) {
        require(c.k == jv::kind::number, "obstacle.box entries must be numbers");
      }
      radio::obstacle ob;
      ob.box = {{box->items[0].num, box->items[1].num}, {box->items[2].num, box->items[3].num}};
      require(ob.box.min.x <= ob.box.max.x && ob.box.min.y <= ob.box.max.y,
              "obstacle.box must satisfy x0 <= x1 and y0 <= y1");
      ob.loss_db = get_num(e, "loss_db", ob.loss_db);
      require(ob.loss_db > 0.0, "obstacle.loss_db must be positive");
      p.obstacles.push_back(ob);
    }
  }
  require(p.kind != radio::propagation_kind::obstacle_field || !p.obstacles.empty(),
          "propagation kind \"obstacle_field\" needs a non-empty obstacles array");
  return p;
}

jv method_to_jv(const method_spec& m) {
  jv o = jv::object();
  o.add("name", jv::of(method_name(m)));
  if (m.k == method_spec::kind::baseline && m.baseline == baseline_kind::yao) {
    o.add("yao_cones", jv::of_u64(m.yao_cones));
  }
  if (m.k == method_spec::kind::baseline && m.baseline == baseline_kind::knn) {
    o.add("knn_k", jv::of_u64(m.knn_k));
  }
  return o;
}

method_spec method_from_jv(const jv& v) {
  if (v.k == jv::kind::string) return parse_method(v.str);
  require(v.k == jv::kind::object, "method must be a name or an object");
  check_keys(v, "method", {"name", "yao_cones", "knn_k"});
  method_spec m = parse_method(get_str(v, "name", "oracle"));
  m.yao_cones = get_count(v, "yao_cones", m.yao_cones);
  m.knn_k = get_count(v, "knn_k", m.knn_k);
  return m;
}

}  // namespace

// ---- full specs <-> jv (shared with the wire layer) -----------------

namespace detail {

jv scenario_to_jv(const scenario_spec& s) {
  jv o = jv::object();
  o.add("name", jv::of(s.name));
  o.add("deployment", deployment_to_jv(s.deploy));
  {
    jv rad = jv::object();
    rad.add("path_loss_exponent", jv::of(s.radio.path_loss_exponent));
    rad.add("max_range", jv::of(s.radio.max_range));
    if (s.radio.propagation.kind != radio::propagation_kind::isotropic) {
      rad.add("propagation", propagation_to_jv(s.radio.propagation));
    }
    o.add("radio", std::move(rad));
  }
  o.add("method", method_to_jv(s.method));
  {
    jv cbtc = jv::object();
    cbtc.add("alpha", jv::of(s.cbtc.alpha));
    cbtc.add("mode", jv::of(std::string(
                         s.cbtc.mode == algo::growth_mode::continuous ? "continuous" : "discrete")));
    cbtc.add("initial_power", jv::of(s.cbtc.initial_power));
    cbtc.add("increase_factor", jv::of(s.cbtc.increase_factor));
    cbtc.add("intra_threads", jv::of_u64(s.cbtc.intra_threads));
    cbtc.add("relabel_min_nodes", jv::of_u64(s.cbtc.relabel_min_nodes));
    o.add("cbtc", std::move(cbtc));
  }
  {
    jv opts = jv::object();
    opts.add("shrink_back", jv::of(s.opts.shrink_back));
    opts.add("asymmetric_removal", jv::of(s.opts.asymmetric_removal));
    opts.add("pairwise_removal", jv::of(s.opts.pairwise_removal));
    opts.add("gain_aware", jv::of(s.opts.gain_aware));
    o.add("optimizations", std::move(opts));
  }
  {
    jv proto = jv::object();
    proto.add("round_timeout", jv::of(s.protocol.agent.round_timeout));
    proto.add("reply_margin", jv::of(s.protocol.agent.reply_margin));
    proto.add("retries_per_level", jv::of_u64(s.protocol.agent.retries_per_level));
    proto.add("direction_noise", jv::of(s.protocol.direction_noise));
    proto.add("max_events", jv::of_u64(s.protocol.max_events));
    jv ch = jv::object();
    ch.add("drop_prob", jv::of(s.protocol.channel.drop_prob));
    ch.add("dup_prob", jv::of(s.protocol.channel.dup_prob));
    ch.add("base_delay", jv::of(s.protocol.channel.base_delay));
    ch.add("delay_per_unit", jv::of(s.protocol.channel.delay_per_unit));
    ch.add("jitter_max", jv::of(s.protocol.channel.jitter_max));
    proto.add("channel", std::move(ch));
    o.add("protocol", std::move(proto));
  }
  o.add("base_seed", jv::of_u64(s.base_seed));
  {
    jv metrics = jv::object();
    metrics.add("stretch", jv::of(s.metrics.stretch));
    metrics.add("stretch_samples", jv::of_u64(s.metrics.stretch_samples));
    metrics.add("interference", jv::of(s.metrics.interference));
    metrics.add("robustness", jv::of(s.metrics.robustness));
    o.add("metrics", std::move(metrics));
  }
  {
    jv post = jv::object();
    post.add("bridge_augmentation", jv::of(s.post.bridge_augmentation));
    o.add("post", std::move(post));
  }
  return o;
}

scenario_spec scenario_from_jv(const jv& o) {
  check_keys(o, "scenario", {"name", "deployment", "radio", "method", "cbtc", "optimizations",
                             "protocol", "base_seed", "metrics", "post"});
  scenario_spec s;
  s.name = get_str(o, "name", s.name);
  if (const jv* d = get(o, "deployment")) s.deploy = deployment_from_jv(*d);
  if (const jv* r = get(o, "radio")) {
    check_keys(*r, "radio", {"path_loss_exponent", "max_range", "propagation"});
    s.radio.path_loss_exponent = get_num(*r, "path_loss_exponent", s.radio.path_loss_exponent);
    s.radio.max_range = get_num(*r, "max_range", s.radio.max_range);
    if (const jv* p = get(*r, "propagation")) s.radio.propagation = propagation_from_jv(*p);
  }
  if (const jv* m = get(o, "method")) s.method = method_from_jv(*m);
  if (const jv* c = get(o, "cbtc")) {
    check_keys(*c, "cbtc", {"alpha", "mode", "initial_power", "increase_factor", "intra_threads",
                            "relabel_min_nodes"});
    s.cbtc.alpha = get_num(*c, "alpha", s.cbtc.alpha);
    const std::string mode = get_str(*c, "mode", "discrete");
    require(mode == "discrete" || mode == "continuous",
            "cbtc.mode must be \"discrete\" or \"continuous\"");
    s.cbtc.mode =
        mode == "continuous" ? algo::growth_mode::continuous : algo::growth_mode::discrete;
    s.cbtc.initial_power = get_num(*c, "initial_power", s.cbtc.initial_power);
    s.cbtc.increase_factor = get_num(*c, "increase_factor", s.cbtc.increase_factor);
    s.cbtc.intra_threads =
        static_cast<unsigned>(get_u64(*c, "intra_threads", s.cbtc.intra_threads));
    s.cbtc.relabel_min_nodes = get_count(*c, "relabel_min_nodes", s.cbtc.relabel_min_nodes);
  }
  if (const jv* opt = get(o, "optimizations")) {
    check_keys(*opt, "optimizations",
               {"shrink_back", "asymmetric_removal", "pairwise_removal", "gain_aware"});
    s.opts.shrink_back = get_bool(*opt, "shrink_back", s.opts.shrink_back);
    s.opts.asymmetric_removal = get_bool(*opt, "asymmetric_removal", s.opts.asymmetric_removal);
    s.opts.pairwise_removal = get_bool(*opt, "pairwise_removal", s.opts.pairwise_removal);
    s.opts.gain_aware = get_bool(*opt, "gain_aware", s.opts.gain_aware);
  }
  if (const jv* p = get(o, "protocol")) {
    check_keys(*p, "protocol", {"round_timeout", "reply_margin", "retries_per_level",
                                "direction_noise", "max_events", "channel"});
    s.protocol.agent.round_timeout = get_num(*p, "round_timeout", s.protocol.agent.round_timeout);
    s.protocol.agent.reply_margin = get_num(*p, "reply_margin", s.protocol.agent.reply_margin);
    s.protocol.agent.retries_per_level = static_cast<std::uint32_t>(
        get_u64(*p, "retries_per_level", s.protocol.agent.retries_per_level));
    s.protocol.direction_noise = get_num(*p, "direction_noise", s.protocol.direction_noise);
    s.protocol.max_events = get_count(*p, "max_events", s.protocol.max_events);
    if (const jv* ch = get(*p, "channel")) {
      check_keys(*ch, "protocol.channel",
                 {"drop_prob", "dup_prob", "base_delay", "delay_per_unit", "jitter_max"});
      s.protocol.channel.drop_prob = get_num(*ch, "drop_prob", s.protocol.channel.drop_prob);
      s.protocol.channel.dup_prob = get_num(*ch, "dup_prob", s.protocol.channel.dup_prob);
      s.protocol.channel.base_delay = get_num(*ch, "base_delay", s.protocol.channel.base_delay);
      s.protocol.channel.delay_per_unit =
          get_num(*ch, "delay_per_unit", s.protocol.channel.delay_per_unit);
      s.protocol.channel.jitter_max = get_num(*ch, "jitter_max", s.protocol.channel.jitter_max);
    }
  }
  s.base_seed = get_u64(o, "base_seed", s.base_seed);
  if (const jv* m = get(o, "metrics")) {
    check_keys(*m, "metrics", {"stretch", "stretch_samples", "interference", "robustness"});
    s.metrics.stretch = get_bool(*m, "stretch", s.metrics.stretch);
    s.metrics.stretch_samples = get_count(*m, "stretch_samples", s.metrics.stretch_samples);
    s.metrics.interference = get_bool(*m, "interference", s.metrics.interference);
    s.metrics.robustness = get_bool(*m, "robustness", s.metrics.robustness);
  }
  if (const jv* p = get(o, "post")) {
    check_keys(*p, "post", {"bridge_augmentation"});
    s.post.bridge_augmentation = get_bool(*p, "bridge_augmentation", s.post.bridge_augmentation);
  }
  return s;
}

jv sim_to_jv(const sim_spec& s) {
  jv o = jv::object();
  o.add("horizon", jv::of(s.horizon));
  o.add("settle", jv::of(s.settle));
  o.add("sample_every", jv::of(s.sample_every));
  o.add("mirror_agent_tables", jv::of(s.mirror_agent_tables));
  {
    jv b = jv::object();
    b.add("interval", jv::of(s.beacons.interval));
    b.add("miss_limit", jv::of_u64(s.beacons.miss_limit));
    b.add("achange_threshold", jv::of(s.beacons.achange_threshold));
    b.add("shrink_back", jv::of(s.beacons.shrink_back));
    o.add("beacons", std::move(b));
  }
  {
    jv m = jv::object();
    m.add("kind", jv::of(mobility_name(s.mobility.kind)));
    m.add("min_speed", jv::of(s.mobility.min_speed));
    m.add("max_speed", jv::of(s.mobility.max_speed));
    m.add("pause", jv::of(s.mobility.pause));
    m.add("tick", jv::of(s.mobility.tick));
    m.add("start", jv::of(s.mobility.start));
    m.add("until", jv::of(s.mobility.until));
    o.add("mobility", std::move(m));
  }
  {
    jv f = jv::object();
    f.add("random_crashes", jv::of_u64(s.failures.random_crashes));
    jv window = jv::array();
    window.items.push_back(jv::of(s.failures.window_begin));
    window.items.push_back(jv::of(s.failures.window_end));
    f.add("window", std::move(window));
    jv events = jv::array();
    for (const failure_event& e : s.failures.events) {
      jv ev = jv::object();
      ev.add("node", jv::of_u64(e.node));
      ev.add("time", jv::of(e.time));
      ev.add("restart", jv::of(e.restart));
      events.items.push_back(std::move(ev));
    }
    f.add("events", std::move(events));
    o.add("failures", std::move(f));
  }
  // Partition knobs: emitted only when non-default, so every spec
  // saved before the partitioned engine round-trips unchanged.
  if (s.partition.regions != 0 || s.partition.min_nodes != partition_spec{}.min_nodes) {
    jv part = jv::object();
    part.add("regions", jv::of_u64(s.partition.regions));
    part.add("min_nodes", jv::of_u64(s.partition.min_nodes));
    o.add("partition", std::move(part));
  }
  // Traffic block: same conditional-emission pattern (period 0 = off).
  if (s.traffic.enabled()) {
    jv t = jv::object();
    t.add("period", jv::of(s.traffic.period));
    t.add("sink", jv::of_u64(s.traffic.sink));
    t.add("start", jv::of(s.traffic.start));
    t.add("until", jv::of(s.traffic.until));
    t.add("service_time", jv::of(s.traffic.service_time));
    t.add("route_refresh", jv::of(s.traffic.route_refresh));
    t.add("queue_capacity", jv::of_u64(s.traffic.queue_capacity));
    o.add("traffic", std::move(t));
  }
  return o;
}

sim_spec sim_from_jv(const jv& o) {
  check_keys(o, "sim", {"horizon", "settle", "sample_every", "mirror_agent_tables", "beacons",
                        "mobility", "failures", "partition", "traffic"});
  sim_spec s;
  s.horizon = get_num(o, "horizon", s.horizon);
  s.settle = get_num(o, "settle", s.settle);
  s.sample_every = get_num(o, "sample_every", s.sample_every);
  s.mirror_agent_tables = get_bool(o, "mirror_agent_tables", s.mirror_agent_tables);
  if (const jv* b = get(o, "beacons")) {
    check_keys(*b, "beacons", {"interval", "miss_limit", "achange_threshold", "shrink_back"});
    s.beacons.interval = get_num(*b, "interval", s.beacons.interval);
    s.beacons.miss_limit = static_cast<std::uint32_t>(get_u64(*b, "miss_limit", s.beacons.miss_limit));
    s.beacons.achange_threshold = get_num(*b, "achange_threshold", s.beacons.achange_threshold);
    s.beacons.shrink_back = get_bool(*b, "shrink_back", s.beacons.shrink_back);
  }
  if (const jv* m = get(o, "mobility")) {
    check_keys(*m, "mobility",
               {"kind", "min_speed", "max_speed", "pause", "tick", "start", "until"});
    s.mobility.kind = parse_mobility(get_str(*m, "kind", "none"));
    s.mobility.min_speed = get_num(*m, "min_speed", s.mobility.min_speed);
    s.mobility.max_speed = get_num(*m, "max_speed", s.mobility.max_speed);
    s.mobility.pause = get_num(*m, "pause", s.mobility.pause);
    s.mobility.tick = get_num(*m, "tick", s.mobility.tick);
    s.mobility.start = get_num(*m, "start", s.mobility.start);
    s.mobility.until = get_num(*m, "until", s.mobility.until);
  }
  if (const jv* part = get(o, "partition")) {
    check_keys(*part, "partition", {"regions", "min_nodes"});
    s.partition.regions = static_cast<std::uint32_t>(get_u64(*part, "regions", s.partition.regions));
    s.partition.min_nodes = get_u64(*part, "min_nodes", s.partition.min_nodes);
  }
  if (const jv* t = get(o, "traffic")) {
    check_keys(*t, "traffic", {"period", "sink", "start", "until", "service_time",
                               "route_refresh", "queue_capacity"});
    s.traffic.period = get_num(*t, "period", s.traffic.period);
    s.traffic.sink = static_cast<graph::node_id>(get_u64(*t, "sink", s.traffic.sink));
    s.traffic.start = get_num(*t, "start", s.traffic.start);
    s.traffic.until = get_num(*t, "until", s.traffic.until);
    s.traffic.service_time = get_num(*t, "service_time", s.traffic.service_time);
    s.traffic.route_refresh = get_num(*t, "route_refresh", s.traffic.route_refresh);
    s.traffic.queue_capacity = get_count(*t, "queue_capacity", s.traffic.queue_capacity);
    require(s.traffic.period >= 0.0, "traffic.period must be non-negative");
    require(s.traffic.service_time > 0.0, "traffic.service_time must be positive");
    require(s.traffic.route_refresh > 0.0, "traffic.route_refresh must be positive");
    require(s.traffic.queue_capacity > 0, "traffic.queue_capacity must be positive");
  }
  if (const jv* f = get(o, "failures")) {
    check_keys(*f, "failures", {"random_crashes", "window", "events"});
    s.failures.random_crashes = get_count(*f, "random_crashes", s.failures.random_crashes);
    if (const jv* w = get(*f, "window")) {
      require(w->k == jv::kind::array && w->items.size() == 2 &&
                  w->items[0].k == jv::kind::number && w->items[1].k == jv::kind::number,
              "failures.window must be a [begin, end] number pair");
      s.failures.window_begin = w->items[0].num;
      s.failures.window_end = w->items[1].num;
    }
    if (const jv* evs = get(*f, "events")) {
      require(evs->k == jv::kind::array, "failures.events must be an array");
      for (const jv& ev : evs->items) {
        require(ev.k == jv::kind::object, "each failure event must be an object");
        check_keys(ev, "failure event", {"node", "time", "restart"});
        failure_event e;
        e.node = static_cast<graph::node_id>(get_u64(ev, "node", 0));
        e.time = get_num(ev, "time", 0.0);
        e.restart = get_bool(ev, "restart", false);
        s.failures.events.push_back(e);
      }
    }
  }
  return s;
}

jv lifetime_to_jv(const lifetime_spec& s) {
  jv o = jv::object();
  o.add("battery_rounds", jv::of(s.battery_rounds));
  o.add("flows", jv::of_u64(s.flows));
  o.add("max_rounds", jv::of_u64(s.max_rounds));
  // Policy knobs: emitted only when non-default (conditional-emission
  // pattern), so pre-policy lifetime blocks keep their exact shape.
  if (s.policy != lifetime_policy::plain_cbtc) {
    o.add("policy", jv::of(lifetime_policy_name(s.policy)));
  }
  if (s.convergecast) o.add("convergecast", jv::of(s.convergecast));
  if (s.sink != 0) o.add("sink", jv::of_u64(s.sink));
  return o;
}

lifetime_spec lifetime_from_jv(const jv& o) {
  check_keys(o, "lifetime",
             {"battery_rounds", "flows", "max_rounds", "policy", "convergecast", "sink"});
  lifetime_spec s;
  s.battery_rounds = get_num(o, "battery_rounds", s.battery_rounds);
  s.flows = get_count(o, "flows", s.flows);
  s.max_rounds = get_count(o, "max_rounds", s.max_rounds);
  if (const jv* p = get(o, "policy")) {
    require(p->k == jv::kind::string, "lifetime.policy must be a string");
    s.policy = parse_lifetime_policy(p->str);
  }
  s.convergecast = get_bool(o, "convergecast", s.convergecast);
  s.sink = static_cast<graph::node_id>(get_u64(o, "sink", s.sink));
  return s;
}

}  // namespace detail

std::string to_json(const scenario_file& file) {
  jv root = jv::object();
  root.add("scenario", detail::scenario_to_jv(file.scenario));
  if (file.sim) root.add("sim", detail::sim_to_jv(*file.sim));
  if (file.lifetime) root.add("lifetime", detail::lifetime_to_jv(*file.lifetime));
  std::ostringstream os;
  json::write_value(os, root, 0);
  os << '\n';
  return os.str();
}

std::string to_json(const scenario_spec& spec) {
  return to_json(scenario_file{.scenario = spec, .sim = std::nullopt});
}

scenario_file parse_scenario_json(std::string_view text) {
  try {
    const jv root = json::parse_document(text);
    require(root.k == jv::kind::object, "top level must be an object");

    scenario_file out;
    if (const jv* scenario = get(root, "scenario")) {
      check_keys(root, "top level", {"scenario", "sim", "lifetime"});
      require(scenario->k == jv::kind::object, "\"scenario\" must be an object");
      out.scenario = detail::scenario_from_jv(*scenario);
      if (const jv* sim = get(root, "sim")) {
        require(sim->k == jv::kind::object, "\"sim\" must be an object");
        out.sim = detail::sim_from_jv(*sim);
      }
      if (const jv* life = get(root, "lifetime")) {
        require(life->k == jv::kind::object, "\"lifetime\" must be an object");
        out.lifetime = detail::lifetime_from_jv(*life);
      }
    } else {
      // Bare scenario object (no "scenario"/"sim" wrapper).
      out.scenario = detail::scenario_from_jv(root);
    }
    return out;
  } catch (const std::invalid_argument& e) {
    // The generic json layer prefixes "JSON:"; scenario-file consumers
    // (and the CLI's documented error format) expect "scenario JSON:".
    const std::string_view what = e.what();
    if (what.rfind("JSON: ", 0) == 0) {
      throw std::invalid_argument("scenario " + std::string(what));
    }
    throw;
  }
}

scenario_file load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open scenario file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_scenario_json(buf.str());
}

void save_scenario_file(const std::string& path, const scenario_file& file) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write scenario file: " + path);
  out << to_json(file);
  if (!out) throw std::runtime_error("failed writing scenario file: " + path);
}

}  // namespace cbtc::api
