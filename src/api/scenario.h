// Scenario descriptions for the cbtc::api façade.
//
// A `scenario_spec` is a complete, value-typed description of one
// experiment family: how nodes are deployed, what radio they carry,
// which topology-control method runs (centralized oracle, distributed
// protocol, or a position-based baseline), and which metrics to
// compute. A spec plus a seed fully determines a network instance, so
// batches are reproducible by construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "algo/params.h"
#include "algo/pipeline.h"
#include "geom/bbox.h"
#include "geom/vec2.h"
#include "proto/runner.h"
#include "radio/power_model.h"
#include "radio/propagation.h"

namespace cbtc::api {

/// How the nodes are placed.
enum class deployment_kind {
  uniform,  ///< uniform in a square region (the paper's Section 5 setup)
  cluster,  ///< gaussian clusters (dense spots, thin bridges)
  grid,     ///< jittered grid (planned mesh deployments); jitter 0 = exact lattice
  fixed,    ///< explicit positions (CSV imports, analytic gadgets)
  ring,     ///< perimeter circle (structured, seed-free)
  tree,     ///< complete b-ary aggregation tiers (structured, seed-free)
  star,     ///< hub and spokes (structured, seed-free)
};

struct deployment_spec {
  deployment_kind kind{deployment_kind::uniform};
  std::size_t nodes{100};
  double region_side{1500.0};
  // cluster-only knobs
  std::size_t clusters{5};
  double cluster_sigma{150.0};
  // grid-only knob; <= 0 selects the exact seed-free lattice
  double grid_jitter{0.3};
  // tree-only knob
  std::size_t tree_branching{2};
  // star-only knob
  std::size_t star_arms{4};
  // kind == fixed: the positions themselves (seed is ignored)
  std::vector<geom::vec2> fixed;

  [[nodiscard]] static deployment_spec fixed_positions(std::vector<geom::vec2> positions);
};

/// Per-link propagation on top of the power law (radio/propagation.h).
/// The default is isotropic: every link of the same length has the
/// same budget, bitwise-equivalent to the plain power-model path.
struct propagation_spec {
  radio::propagation_kind kind{radio::propagation_kind::isotropic};
  // lognormal_shadowing knobs (dB); clamp bounds the per-link
  // deviation so the longest feasible link stays bounded.
  double sigma_db{4.0};
  double clamp_db{8.0};
  /// Extra entropy for the shadowing hash. Mixed with the *instance*
  /// seed, so every seed of a batch draws its own gain field and the
  /// whole batch stays reproducible.
  std::uint64_t seed{0};
  // obstacle_field knob: the attenuating rectangles.
  std::vector<radio::obstacle> obstacles;

  /// The concrete model for one instance (`instance_seed` is
  /// base_seed + run seed; only shadowing consumes it).
  [[nodiscard]] radio::propagation_model model(std::uint64_t instance_seed) const;
};

/// Radio parameters; the power model is derived as p(d) = d^exponent
/// with maximum range R (see radio::power_model), and `propagation`
/// selects the per-link gain layer on top.
struct radio_spec {
  double path_loss_exponent{2.0};
  double max_range{500.0};
  propagation_spec propagation{};
};

enum class baseline_kind {
  euclidean_mst,
  relative_neighborhood,
  gabriel,
  yao,
  knn,
  max_power,  ///< no topology control: everyone transmits at P
};

/// Which algorithm builds the topology. `stc` is Sethu-Gerety step
/// topology control (algo/stc.h): purely link-power based, so it is
/// the natural comparison method for CBTC under non-isotropic
/// propagation.
struct method_spec {
  enum class kind { oracle, protocol, baseline, stc };

  kind k{kind::oracle};
  baseline_kind baseline{baseline_kind::max_power};
  std::size_t yao_cones{6};  ///< baseline_kind::yao
  std::size_t knn_k{3};      ///< baseline_kind::knn

  [[nodiscard]] static method_spec oracle() { return {}; }
  [[nodiscard]] static method_spec protocol() { return {.k = kind::protocol}; }
  [[nodiscard]] static method_spec stc() { return {.k = kind::stc}; }
  [[nodiscard]] static method_spec of_baseline(baseline_kind b) {
    return {.k = kind::baseline, .baseline = b};
  }
};

/// Which (potentially costly) metrics the engine computes per run.
/// Degree/radius/power and the paper's invariant checks are always on.
struct metric_options {
  bool stretch{true};               ///< power + hop stretch vs G_R (Dijkstra/BFS)
  std::size_t stretch_samples{8};   ///< sources sampled per stretch run
  bool interference{true};          ///< coverage-based edge interference
  bool robustness{true};            ///< articulation-point count
};

/// Library-level post-processing applied after the method finishes.
struct post_options {
  /// Extension: back up bridge edges for single-failure resilience
  /// (algo::augment_bridge_resilience).
  bool bridge_augmentation{false};
};

/// A complete scenario: deployment + radio + method + parameters.
struct scenario_spec {
  std::string name;  ///< registry key / display label (may be empty)
  deployment_spec deploy{};
  radio_spec radio{};
  method_spec method{};
  /// CBTC parameters (oracle and protocol methods). The protocol
  /// method always runs discrete growth — the distributed agents
  /// implement the Increase(p) schedule only — so `mode` affects the
  /// oracle method alone.
  algo::cbtc_params cbtc{};
  /// Post-growth optimizations (oracle and protocol methods).
  algo::optimization_set opts{};
  /// Protocol substrate (channel, timeouts); `agent.params` and `seed`
  /// are overwritten by the engine from `cbtc` and the run seed.
  proto::protocol_run_config protocol{};
  /// Offset added to every run seed, so different scenarios draw
  /// different instance streams from the same seed range.
  std::uint64_t base_seed{20010601};
  metric_options metrics{};
  post_options post{};

  /// Positions of instance `seed` (deterministic; `base_seed + seed`
  /// feeds the generator). `fixed` deployments ignore the seed.
  [[nodiscard]] std::vector<geom::vec2> make_positions(std::uint64_t seed) const;

  /// The derived radio power model.
  [[nodiscard]] radio::power_model power() const;

  /// The per-link radio budget of instance `seed`: power model plus
  /// the propagation layer (isotropic unless the spec says otherwise).
  [[nodiscard]] radio::link_model link(std::uint64_t seed) const;

  /// Nominal deployment region (bounding box of `fixed` deployments).
  [[nodiscard]] geom::bbox region() const;
};

/// Half-open run range: seeds `first, first + 1, ..., first + count - 1`.
struct seed_range {
  std::uint64_t first{0};
  std::uint64_t count{1};
};

/// Short human-readable name of a method ("oracle", "protocol",
/// "gabriel", ...).
[[nodiscard]] std::string method_name(const method_spec& m);

/// Parses `method_name` output (and a few aliases: "mst", "rng");
/// throws std::invalid_argument on unknown names.
[[nodiscard]] method_spec parse_method(const std::string& name);

}  // namespace cbtc::api
